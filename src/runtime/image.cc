#include "runtime/image.h"

#include "support/panic.h"

namespace mxl {

ImageBuilder::ImageBuilder(const RuntimeLayout &layout,
                           const TagScheme &scheme)
    : layout_(layout), scheme_(scheme),
      staticWords_(layout.staticLimit / 4, 0),
      allocPtr_(layout.staticDataBase)
{
    // nil and t exist from the start; their value cells name themselves.
    uint32_t nilAddr = symbolAddr("nil");
    uint32_t tAddr = symbolAddr("t");
    setWord(nilAddr + symoff::value, symbolWord("nil"));
    setWord(tAddr + symoff::value, symbolWord("t"));
}

uint32_t
ImageBuilder::allocStatic(uint32_t bytes, uint32_t align)
{
    uint32_t addr = (allocPtr_ + align - 1) & ~(align - 1);
    if (addr + bytes > layout_.staticLimit)
        fatal("static area exhausted (", layout_.staticLimit, " bytes)");
    allocPtr_ = addr + bytes;
    return addr;
}

void
ImageBuilder::setWord(uint32_t addr, uint32_t w)
{
    MXL_ASSERT(addr % 4 == 0 && addr / 4 < staticWords_.size(),
               "bad static address ", addr);
    staticWords_[addr / 4] = w;
}

uint32_t
ImageBuilder::getWord(uint32_t addr) const
{
    MXL_ASSERT(addr % 4 == 0 && addr / 4 < staticWords_.size(),
               "bad static address ", addr);
    return staticWords_[addr / 4];
}

uint32_t
ImageBuilder::symbolAddr(const std::string &name)
{
    auto it = symbols_.find(name);
    if (it != symbols_.end())
        return it->second;

    uint32_t addr = allocStatic(symoff::size,
                                scheme_.alignment(TypeId::Symbol));
    symbols_.emplace(name, addr);
    setWord(addr + symoff::header, (5u << 3) | SubtSymbol);
    setWord(addr + symoff::name, stringWord(name));
    // Value cell: nil (note: interning "nil" itself recurses one level;
    // the constructor patches nil's own value cell afterwards).
    uint32_t nilWord = name == "nil"
        ? scheme_.encodePointer(TypeId::Symbol, addr)
        : symbolWord("nil");
    setWord(addr + symoff::value, nilWord);
    setWord(addr + symoff::plist, nilWord);
    setWord(addr + symoff::fn, 0); // code index 0 = undefined-fn stub

    // The mutable symbol cells are GC roots.
    rootCells_.push_back(addr + symoff::value);
    rootCells_.push_back(addr + symoff::plist);
    return addr;
}

uint32_t
ImageBuilder::symbolWord(const std::string &name)
{
    return scheme_.encodePointer(TypeId::Symbol, symbolAddr(name));
}

uint32_t
ImageBuilder::stringWord(const std::string &s)
{
    auto it = strings_.find(s);
    if (it != strings_.end())
        return it->second;
    uint32_t len = static_cast<uint32_t>(s.size());
    uint32_t addr = allocStatic(4 * (len + 1),
                                scheme_.alignment(TypeId::String));
    setWord(addr, (len << 3) | SubtString);
    for (uint32_t i = 0; i < len; ++i)
        setWord(addr + 4 + 4 * i, static_cast<unsigned char>(s[i]));
    uint32_t w = scheme_.encodePointer(TypeId::String, addr);
    strings_.emplace(s, w);
    return w;
}

uint32_t
ImageBuilder::constWord(const Sx *form)
{
    switch (form->kind) {
      case SxKind::Int:
        return scheme_.encodeFixnum(form->ival);
      case SxKind::Sym:
        return symbolWord(form->text);
      case SxKind::Str:
        return stringWord(form->text);
      case SxKind::Pair: {
        auto it = consts_.find(form);
        if (it != consts_.end())
            return it->second;
        uint32_t addr =
            allocStatic(8, scheme_.alignment(TypeId::Pair));
        uint32_t w = scheme_.encodePointer(TypeId::Pair, addr);
        // Memoize before recursing so cyclic constants fail loudly in
        // the recursion depth rather than looping (source can't express
        // cycles anyway).
        consts_.emplace(form, w);
        setWord(addr, constWord(form->car));
        setWord(addr + 4, constWord(form->cdr));
        return w;
      }
    }
    panic("constWord: bad node");
}

Memory
ImageBuilder::finalize()
{
    // Root list.
    if (rootCells_.size() > layout_.rootReserveWords)
        fatal("too many GC roots: ", rootCells_.size());
    for (size_t i = 0; i < rootCells_.size(); ++i)
        setWord(layout_.rootBase + 4 * static_cast<uint32_t>(i),
                rootCells_[i]);

    // Runtime cells: semispace A is the initial from-space.
    setWord(layout_.cellAddr(Cell::FromLo), layout_.heapABase);
    setWord(layout_.cellAddr(Cell::FromHi),
            layout_.heapABase + layout_.heapBytes);
    setWord(layout_.cellAddr(Cell::ToLo), layout_.heapBBase);
    setWord(layout_.cellAddr(Cell::ToHi),
            layout_.heapBBase + layout_.heapBytes);
    setWord(layout_.cellAddr(Cell::StackTop), layout_.stackTop);
    setWord(layout_.cellAddr(Cell::RootBase), layout_.rootBase);
    setWord(layout_.cellAddr(Cell::RootCount),
            static_cast<uint32_t>(rootCells_.size()));
    setWord(layout_.cellAddr(Cell::GcCount), 0);
    setWord(layout_.cellAddr(Cell::HeapUsed), 0);

    Memory mem(layout_.memBytes);
    for (uint32_t i = 0; i < staticWords_.size(); ++i)
        mem.word(i) = staticWords_[i];
    return mem;
}

} // namespace mxl
