/**
 * @file
 * Instruction annotations: the measurement methodology of the paper made
 * explicit. Every instruction the compiler emits is labeled with the tag
 * operation it implements (§2.1's four operations, or "useful" work) and
 * with the checking category it belongs to (Table 1's arith/vector/list
 * split). The machine tallies executed cycles per annotation.
 */

#ifndef MXLISP_ISA_ANNOTATION_H_
#define MXLISP_ISA_ANNOTATION_H_

#include <cstdint>
#include <string>

namespace mxl {

/** What a cycle is spent on. */
enum class Purpose : uint8_t
{
    Useful,      ///< real computation
    TagInsert,   ///< constructing a tagged item (§3.1)
    TagRemove,   ///< masking a tag to use the data part (§3.2)
    TagExtract,  ///< isolating the tag for comparison (§3.3)
    TagCheck,    ///< comparing/branching on a tag value (§3.4)
    Dispatch,    ///< out-of-line generic-operation dispatch work (§6.2.2)
    OtherCheck,  ///< non-tag checking work (vector bounds, headers)
};

/** Which kind of run-time check an instruction belongs to (Table 1). */
enum class CheckCat : uint8_t
{
    None,    ///< not part of a check
    List,    ///< car/cdr/rplaca/rplacd operand checks
    Vector,  ///< vector tag + bounds + index-type checks
    Arith,   ///< generic arithmetic type/overflow checks
    User,    ///< type predicates written in the source program
};

/** Per-instruction annotation. */
struct Annotation
{
    Purpose purpose = Purpose::Useful;
    CheckCat cat = CheckCat::None;
    /**
     * True if this instruction exists only because full run-time
     * checking is enabled (the dark-grey component of Figure 1).
     */
    bool fromChecking = false;
    /**
     * True if the emitter stated a Purpose explicitly (any annotation
     * built through the Purpose constructor). A default-constructed
     * annotation is unstamped; the linker can require completeness
     * (link(buf, true)) so the static analyzer's idiom recognition
     * (src/analysis/) can trust that no check or tag operation reached
     * it unlabeled.
     */
    bool stamped = false;

    Annotation() = default;
    Annotation(Purpose p, CheckCat c = CheckCat::None, bool f = false)
        : purpose(p), cat(c), fromChecking(f), stamped(true)
    {}
};

std::string purposeName(Purpose p);
std::string checkCatName(CheckCat c);

inline constexpr int numPurposes = 7;
inline constexpr int numCheckCats = 5;

} // namespace mxl

#endif // MXLISP_ISA_ANNOTATION_H_
