/**
 * Tests for the tag schemes, mostly parameterized across all four so
 * every property is checked uniformly (TEST_P sweeps).
 */

#include <gtest/gtest.h>

#include <vector>

#include "support/panic.h"
#include "tags/high_tag.h"
#include "tags/low_tag.h"
#include "tags/tag_scheme.h"

namespace mxl {
namespace {

class SchemeTest : public ::testing::TestWithParam<SchemeKind>
{
  protected:
    void SetUp() override { scheme = makeScheme(GetParam()); }
    std::unique_ptr<TagScheme> scheme;
};

TEST_P(SchemeTest, FixnumRoundTrip)
{
    for (int64_t v : {int64_t{0}, int64_t{1}, int64_t{-1}, int64_t{42},
                      int64_t{-1000}, int64_t{123456}, int64_t{-123456},
                      int64_t{(1 << 24)}, int64_t{-(1 << 24)}}) {
        ASSERT_TRUE(scheme->fixnumInRange(v)) << v;
        uint32_t w = scheme->encodeFixnum(v);
        EXPECT_EQ(scheme->decodeFixnum(w), v) << v;
        EXPECT_TRUE(scheme->wordIsFixnum(w)) << v;
    }
}

TEST_P(SchemeTest, FixnumBoundary)
{
    // Find the extreme in-range values for this scheme.
    int64_t hi = 1;
    while (scheme->fixnumInRange(hi * 2))
        hi *= 2;
    // hi is a power of two in range; hi*2 is out. Check neighbors.
    EXPECT_TRUE(scheme->fixnumInRange(hi));
    EXPECT_FALSE(scheme->fixnumInRange(hi * 2));
    EXPECT_EQ(scheme->decodeFixnum(scheme->encodeFixnum(hi)), hi);
    EXPECT_TRUE(scheme->fixnumInRange(-hi * 2 + 1));
    EXPECT_EQ(scheme->decodeFixnum(scheme->encodeFixnum(-hi * 2 + 1)),
              -hi * 2 + 1);
}

TEST_P(SchemeTest, FixnumScaleMatchesRepresentation)
{
    // repr(v) == v * scale mod 2^32 — this is what lets compiled code
    // add fixnums with the plain machine add.
    int scale = scheme->fixnumScale();
    for (int64_t v : {int64_t{1}, int64_t{7}, int64_t{-3}}) {
        EXPECT_EQ(scheme->encodeFixnum(v),
                  static_cast<uint32_t>(v * scale));
    }
}

TEST_P(SchemeTest, NativeAddOnRepresentations)
{
    // add of representations == representation of add (no overflow).
    uint32_t a = scheme->encodeFixnum(1234);
    uint32_t b = scheme->encodeFixnum(-234);
    EXPECT_EQ(a + b, scheme->encodeFixnum(1000));
}

TEST_P(SchemeTest, SignedOrderPreserved)
{
    // blt on representations must order fixnums correctly.
    auto lt = [&](int64_t x, int64_t y) {
        return static_cast<int32_t>(scheme->encodeFixnum(x)) <
               static_cast<int32_t>(scheme->encodeFixnum(y));
    };
    EXPECT_TRUE(lt(-5, 3));
    EXPECT_TRUE(lt(2, 1000));
    EXPECT_FALSE(lt(7, 7));
    EXPECT_FALSE(lt(3, -5));
}

TEST_P(SchemeTest, PointerRoundTrip)
{
    for (TypeId t : {TypeId::Pair, TypeId::Symbol, TypeId::Vector,
                     TypeId::String}) {
        uint32_t align = scheme->alignment(t);
        uint32_t addr = 0x1000 + align * 7;
        ASSERT_EQ(addr % align, 0u);
        uint32_t w = scheme->encodePointer(t, addr);
        EXPECT_EQ(scheme->detagAddr(w), addr) << typeName(t);
        EXPECT_FALSE(scheme->wordIsFixnum(w)) << typeName(t);
        EXPECT_EQ(scheme->primaryTag(w), scheme->pointerTag(t))
            << typeName(t);
    }
}

TEST_P(SchemeTest, CharRoundTrip)
{
    for (uint32_t c : {0u, 65u, 255u}) {
        uint32_t w = scheme->encodeChar(c);
        EXPECT_EQ(scheme->charCode(w), c);
        EXPECT_FALSE(scheme->wordIsFixnum(w));
    }
}

TEST_P(SchemeTest, PointerTagsDistinguishUnlessHeadered)
{
    // Two types either have different tags or are both
    // header-discriminated.
    TypeId types[] = {TypeId::Pair, TypeId::Symbol, TypeId::Vector,
                      TypeId::String};
    for (TypeId a : types) {
        for (TypeId b : types) {
            if (a == b)
                continue;
            if (scheme->pointerTag(a) == scheme->pointerTag(b)) {
                bool bothHeadered = scheme->headerDiscriminated(a) &&
                                    scheme->headerDiscriminated(b);
                EXPECT_TRUE(bothHeadered)
                    << typeName(a) << " vs " << typeName(b);
            }
        }
    }
}

TEST_P(SchemeTest, OffsetAdjustAbsorbsTag)
{
    // For low-tag schemes: (tagged + adjusted offset) with the bottom
    // two address bits dropped must hit the object's first word.
    if (scheme->placement() != TagPlacement::Low)
        return;
    for (TypeId t : {TypeId::Pair, TypeId::Symbol, TypeId::Vector,
                     TypeId::String}) {
        uint32_t addr = 0x2000; // aligned for every type
        uint32_t w = scheme->encodePointer(t, addr);
        uint32_t eff = (w + static_cast<uint32_t>(
                                scheme->offsetAdjust(t))) &
                       ~3u;
        EXPECT_EQ(eff, addr) << typeName(t);
    }
}

TEST_P(SchemeTest, FixnumsNeverLookLikePointers)
{
    for (int64_t v : {int64_t{0}, int64_t{100}, int64_t{-100}}) {
        uint32_t w = scheme->encodeFixnum(v);
        for (TypeId t : {TypeId::Pair, TypeId::Vector}) {
            if (!scheme->headerDiscriminated(t)) {
                EXPECT_NE(scheme->primaryTag(w), scheme->pointerTag(t));
            }
        }
        EXPECT_TRUE(scheme->wordIsFixnum(w));
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SchemeTest,
    ::testing::Values(SchemeKind::High5, SchemeKind::High6,
                      SchemeKind::Low2, SchemeKind::Low3),
    [](const ::testing::TestParamInfo<SchemeKind> &info) {
        return schemeKindName(info.param);
    });

TEST(HighTag5, IntegerTagsAreSignExtension)
{
    HighTag5 s;
    EXPECT_EQ(s.primaryTag(s.encodeFixnum(5)), 0u);
    EXPECT_EQ(s.primaryTag(s.encodeFixnum(-5)), 31u);
}

TEST(HighTag6, SumCheckProperty)
{
    // §4.2: the sum of two tag values (with any carry from the data
    // part) can never be an integer tag unless both operands were
    // integers. Verify exhaustively over the used tag values.
    HighTag6 s;
    std::vector<uint32_t> nonIntTags = {
        s.pointerTag(TypeId::Pair), s.pointerTag(TypeId::Symbol),
        s.pointerTag(TypeId::Vector), s.pointerTag(TypeId::String),
        s.charTag(),
    };
    ASSERT_TRUE(s.sumCheckSound());
    for (uint32_t t1 : nonIntTags) {
        EXPECT_GE(t1, 8u);
        EXPECT_LE(t1, 23u);
        // non-integer + any tag value (integer or not), any carry
        std::vector<uint32_t> allTags = nonIntTags;
        allTags.push_back(0);
        allTags.push_back(63);
        for (uint32_t t2 : allTags) {
            for (uint32_t carry : {0u, 1u}) {
                uint32_t sum = (t1 + t2 + carry) & 63u;
                EXPECT_NE(sum, 0u) << t1 << "+" << t2 << "+" << carry;
                EXPECT_NE(sum, 63u) << t1 << "+" << t2 << "+" << carry;
            }
        }
    }
}

TEST(HighTag6, OverflowPerturbsTag)
{
    // Adding two positive fixnums that overflow must yield a word that
    // fails the integer test.
    HighTag6 s;
    int64_t big = (1 << 24);
    uint32_t a = s.encodeFixnum(big);
    uint32_t sum = a + a; // 2^25: out of range
    EXPECT_FALSE(s.wordIsFixnum(sum));
    // And for negatives.
    uint32_t n = s.encodeFixnum(-big);
    uint32_t nsum = n + n + n; // -3*2^24 < -2^25
    EXPECT_FALSE(s.wordIsFixnum(nsum));
}

TEST(LowTag3, EvenOddFixnumTags)
{
    LowTag3 s;
    EXPECT_EQ(s.primaryTag(s.encodeFixnum(2)), 0u);  // even: 000
    EXPECT_EQ(s.primaryTag(s.encodeFixnum(3)), 4u);  // odd: 100
    EXPECT_TRUE(s.wordIsFixnum(s.encodeFixnum(2)));
    EXPECT_TRUE(s.wordIsFixnum(s.encodeFixnum(3)));
}

TEST(LowTag2, HeapTypesShareTag)
{
    LowTag2 s;
    EXPECT_EQ(s.pointerTag(TypeId::Symbol), s.pointerTag(TypeId::Vector));
    EXPECT_TRUE(s.headerDiscriminated(TypeId::Symbol));
    EXPECT_FALSE(s.headerDiscriminated(TypeId::Pair));
}

TEST(Schemes, FactoryNames)
{
    EXPECT_EQ(makeScheme(SchemeKind::High5)->name(), "high5");
    EXPECT_EQ(makeScheme(SchemeKind::High6)->name(), "high6");
    EXPECT_EQ(makeScheme(SchemeKind::Low2)->name(), "low2");
    EXPECT_EQ(makeScheme(SchemeKind::Low3)->name(), "low3");
}

TEST(Schemes, MisalignedPointerPanics)
{
    LowTag3 s;
    EXPECT_THROW(s.encodePointer(TypeId::Pair, 0x1004), MxlError);
}

TEST(Schemes, OutOfRangeFixnumPanics)
{
    HighTag5 s;
    EXPECT_THROW(s.encodeFixnum(int64_t{1} << 40), MxlError);
}

} // namespace
} // namespace mxl
