/**
 * @file
 * Simulated data memory: a flat, word-aligned 32-bit address space.
 *
 * Like MIPS-X, memory is word-addressed: the bottom two bits of every
 * effective address are dropped before the access (this is what makes
 * 2-bit low tags free, §5.2).
 *
 * Out-of-range accesses are deterministic, never UB: load()/store()
 * beyond the image raise fatal() (an MxlError), and callers that need a
 * non-throwing path — the Machine turns a wild access into a
 * StopReason::IllegalAccess stop — probe with inBounds() first.
 */

#ifndef MXLISP_MACHINE_MEMORY_H_
#define MXLISP_MACHINE_MEMORY_H_

#include <cstdint>
#include <vector>

namespace mxl {

class Memory
{
  public:
    explicit Memory(uint32_t bytes);

    /** Size in bytes. */
    uint32_t size() const { return static_cast<uint32_t>(words_.size()) * 4; }

    /** True if byte address @p addr falls inside the image. */
    bool
    inBounds(uint32_t addr) const
    {
        return (addr >> 2) < words_.size();
    }

    /** Load the word at byte address @p addr (bottom 2 bits dropped).
     *  fatal() when out of range. */
    uint32_t load(uint32_t addr) const;

    /** Store @p w at byte address @p addr (bottom 2 bits dropped).
     *  fatal() when out of range. */
    void store(uint32_t addr, uint32_t w);

    /** Direct word access for image building and tests. */
    uint32_t &word(uint32_t index);
    uint32_t word(uint32_t index) const;

    /** The whole image, word-indexed (snapshot capture/restore). */
    const std::vector<uint32_t> &words() const { return words_; }

    /** Replace the image contents; @p w must match the current size. */
    void setWords(const std::vector<uint32_t> &w);

  private:
    std::vector<uint32_t> words_;
};

} // namespace mxl

#endif // MXLISP_MACHINE_MEMORY_H_
