#include "obs/log.h"

#include <chrono>

namespace mxl {

const char *
EventLog::levelName(Level level)
{
    switch (level) {
      case Level::Debug:
        return "debug";
      case Level::Info:
        return "info";
      case Level::Warn:
        return "warn";
      case Level::Error:
        return "error";
    }
    return "info";
}

EventLog::~EventLog()
{
    close();
}

bool
EventLog::openFile(const std::string &path, std::string *err)
{
    std::FILE *f = std::fopen(path.c_str(), "a");
    if (f == nullptr) {
        if (err != nullptr)
            *err = "cannot open event log '" + path + "'";
        return false;
    }
    std::lock_guard<std::mutex> lk(mu_);
    if (f_ != nullptr)
        std::fclose(f_);
    f_ = f;
    return true;
}

void
EventLog::close()
{
    std::lock_guard<std::mutex> lk(mu_);
    if (f_ != nullptr) {
        std::fclose(f_);
        f_ = nullptr;
    }
}

bool
EventLog::enabled() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return f_ != nullptr;
}

void
EventLog::setMinLevel(Level level)
{
    std::lock_guard<std::mutex> lk(mu_);
    min_ = level;
}

void
EventLog::event(Level level, const std::string &name, const Json &fields)
{
    uint64_t ts = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
    Json line = Json::object();
    line.set("ts", ts);
    line.set("level", levelName(level));
    line.set("event", name);
    if (fields.isObject()) {
        for (size_t i = 0; i < fields.size(); ++i) {
            const auto &[key, value] = fields.entry(i);
            line.set(key, value);
        }
    }
    std::string text = line.dump();
    std::lock_guard<std::mutex> lk(mu_);
    if (f_ == nullptr || level < min_)
        return;
    std::fprintf(f_, "%s\n", text.c_str());
    std::fflush(f_);
    ++emitted_;
}

uint64_t
EventLog::emitted() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return emitted_;
}

} // namespace mxl
