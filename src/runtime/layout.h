/**
 * @file
 * Simulated memory layout of an MX-Lisp image.
 *
 *   [0, staticBase)            unmapped guard (so no valid pointer is 0)
 *   [staticBase, staticLimit)  static area: runtime cells, GC root list,
 *                              symbol blocks, interned strings, quoted
 *                              constants
 *   [heapABase, heapALimit)    semispace A   (copying collector, §dedgc)
 *   [heapBBase, heapBLimit)    semispace B
 *   [..., stackTop)            control/value stack, grows down from
 *                              stackTop; every slot holds a tagged value
 *                              (return addresses are naturally fixnums)
 *
 * A handful of runtime cells at fixed addresses communicate layout
 * facts to the sys-Lisp runtime (GC): semispace bounds, the stack scan
 * bound, and the GC root list location. All cell values are raw byte
 * addresses, which are valid fixnum representations in every scheme
 * (word alignment), so the cells themselves are GC-inert.
 */

#ifndef MXLISP_RUNTIME_LAYOUT_H_
#define MXLISP_RUNTIME_LAYOUT_H_

#include <cstdint>

#include "compiler/options.h"

namespace mxl {

/** Runtime communication cells (word-indexed from cellBase). */
enum class Cell : int
{
    FromLo = 0,   ///< current from-space base (allocation space)
    FromHi,       ///< current from-space limit
    ToLo,         ///< current to-space base
    ToHi,         ///< current to-space limit
    StackTop,     ///< initial sp; GC scans [entry sp, StackTop)
    RootBase,     ///< address of the GC root list
    RootCount,    ///< number of root cells
    GcCount,      ///< collections performed (raw counter)
    HeapUsed,     ///< bytes copied by the last collection
    NumCells,
};

/** Symbol block layout (bytes from the block base). */
namespace symoff {
inline constexpr int header = 0;
inline constexpr int name = 4;
inline constexpr int value = 8;
inline constexpr int plist = 12;
inline constexpr int fn = 16;
inline constexpr int size = 20;
} // namespace symoff

struct RuntimeLayout
{
    uint32_t memBytes = 0;
    uint32_t staticBase = 0;
    uint32_t staticLimit = 0;
    uint32_t cellBase = 0;      ///< runtime cells (within static area)
    uint32_t rootBase = 0;      ///< root list reserve (within static)
    uint32_t rootReserveWords = 0;
    uint32_t staticDataBase = 0; ///< first allocatable static address
    uint32_t heapABase = 0;
    uint32_t heapBBase = 0;
    uint32_t heapBytes = 0;     ///< per semispace
    uint32_t stackTop = 0;
    uint32_t stackLimit = 0;    ///< lowest legal sp

    static RuntimeLayout compute(const CompilerOptions &opts);

    uint32_t
    cellAddr(Cell c) const
    {
        return cellBase + 4u * static_cast<uint32_t>(c);
    }
};

} // namespace mxl

#endif // MXLISP_RUNTIME_LAYOUT_H_
