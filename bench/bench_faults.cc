/**
 * Fault-injection campaign: what does each degree of tag-checking
 * support actually catch?
 *
 * The paper (and bench_table2) measures what checking costs; this
 * harness measures what it buys. A fixed-seed campaign injects three
 * fault classes — static tag-field corruption, single-bit flips in the
 * pristine image, and ill-typed call arguments — into three kernels,
 * and runs every (config × class × trial) cell through mxl::Engine
 * under a Table-2-style hardware ladder:
 *
 *   unchecked      the §2.1 high-tag implementation, no checking;
 *   software       the same, with full compiled software checks;
 *   lowtag-sw      LowTag3 software checking (§5.2);
 *   hw-traps       full checking on branch-on-tag + generic-arith +
 *                  checked-memory(All) hardware (Table 2 row 7 flavor);
 *   spur-like      the §7 combination: lists-only checked loads.
 *
 * Output is the detection-coverage matrix (campaign.h's taxonomy) plus
 * acceptance checks: the run is deterministic (fixed seed), the full
 * checked-memory configuration detects strictly more injected tag
 * corruptions than the unchecked baseline, and no fault ever escapes
 * the simulator (zero host-process crashes — every outcome is a
 * classified RunReport).
 */

#include <cstdio>

#include "core/engine.h"
#include "core/experiment.h"
#include "faults/campaign.h"
#include "support/format.h"

using namespace mxl;

namespace {

const char *const kSumList =
    "(de sumlist (l) (if (null l) 0 (+ (car l) (sumlist (cdr l)))))"
    "(print (sumlist (quote (1 2 3 4 5 6 7 8 9 10 11 12))))";

const char *const kRev =
    "(de rev (l acc) (if (null l) acc (rev (cdr l) (cons (car l) acc))))"
    "(de len (l) (if (null l) 0 (add1 (len (cdr l)))))"
    "(print (len (rev (quote (a b c d e f g h i j)) nil)))";

const char *const kFib =
    "(de fib (n) (if (lessp n 2) n (+ (fib (- n 1)) (fib (- n 2)))))"
    "(print (fib 13))";

Campaign
buildCampaign()
{
    Campaign c;
    c.programs.push_back({"sumlist", kSumList, 5'000'000});
    c.programs.push_back({"rev", kRev, 5'000'000});
    c.programs.push_back({"fib", kFib, 5'000'000});

    c.configs.push_back({"unchecked", baselineOptions(Checking::Off)});
    c.configs.push_back({"software", baselineOptions(Checking::Full)});
    c.configs.push_back(
        {"lowtag-sw", lowTagSoftwareOptions(Checking::Full)});

    CompilerOptions hwTraps = baselineOptions(Checking::Full);
    hwTraps.hw.branchOnTag = true;
    hwTraps.hw.genericArith = true;
    hwTraps.hw.checkedMemory = CheckedMem::All;
    c.configs.push_back({"hw-traps", hwTraps});

    CompilerOptions spur = baselineOptions(Checking::Full);
    spur.hw.ignoreTagOnMemory = true;
    spur.hw.branchOnTag = true;
    spur.hw.genericArith = true;
    spur.hw.checkedMemory = CheckedMem::Lists;
    c.configs.push_back({"spur-like", spur});

    c.classes = {FaultClass::TagCorrupt, FaultClass::BitFlip,
                 FaultClass::CallArgType};
    c.trials = 25;
    c.seed = 19870401; // fixed: the matrix below is reproducible
    c.deadlineSeconds = 20;
    return c;
}

} // namespace

int
main()
{
    std::printf("Fault-injection campaign: detection coverage by degree "
                "of tag-checking support\n");

    Campaign campaign = buildCampaign();
    std::printf("(%zu programs x %zu configs x %zu fault classes x %d "
                "trials, seed %llu)\n\n",
                campaign.programs.size(), campaign.configs.size(),
                campaign.classes.size(), campaign.trials,
                static_cast<unsigned long long>(campaign.seed));

    Engine eng;
    CampaignResult r = runCampaign(eng, campaign);
    std::printf("%s\n", r.renderMatrix().c_str());
    std::printf("per cell: %zu programs x %d trials = %d faults; "
                "det = detected, hw-traps/sw-checks split the detected "
                "column\n\n",
                campaign.programs.size(), campaign.trials,
                static_cast<int>(campaign.programs.size()) *
                    campaign.trials);

    // ---- acceptance checks ----
    int failures = 0;
    auto check = [&](bool ok, const std::string &what) {
        std::printf("%s  %s\n", ok ? "PASS" : "FAIL", what.c_str());
        if (!ok)
            ++failures;
    };

    // TagCorrupt is class 0; unchecked is config 0, hw-traps config 3.
    int uncheckedDet = r.cell(0, 0).detected();
    int hwDet = r.cell(3, 0).detected();
    check(hwDet > uncheckedDet,
          strcat("checked-memory hardware detects strictly more tag "
                 "corruptions than unchecked (",
                 hwDet, " > ", uncheckedDet, ")"));
    check(r.cell(3, 0).hardwareTraps > 0,
          strcat("hw-traps detections include hardware traps (",
                 r.cell(3, 0).hardwareTraps, ")"));
    check(r.cell(1, 0).detected() > uncheckedDet,
          strcat("software checking also beats unchecked (",
                 r.cell(1, 0).detected(), " > ", uncheckedDet, ")"));

    // Zero host crashes: every trial came back classified.
    size_t expected = campaign.programs.size() * campaign.configs.size() *
                      campaign.classes.size() *
                      static_cast<size_t>(campaign.trials);
    check(r.trials.size() == expected,
          strcat("every fault classified, none escaped the simulator (",
                 r.trials.size(), "/", expected, ")"));

    // Determinism: replay the campaign and compare the whole matrix.
    Engine eng2(2);
    CampaignResult again = runCampaign(eng2, campaign);
    check(again.renderMatrix() == r.renderMatrix(),
          "fixed-seed campaign replays to an identical matrix");

    auto cs = eng.cacheStats();
    std::printf("\nengine: %u worker(s), cache %llu hit / %llu miss "
                "(one compile per (program, config))\n",
                eng.threadCount(),
                static_cast<unsigned long long>(cs.hits),
                static_cast<unsigned long long>(cs.misses));
    return failures == 0 ? 0 : 1;
}
