#include "faults/stats.h"

#include <algorithm>
#include <cmath>

#include "support/format.h"
#include "support/table.h"

namespace mxl {

Interval
wilsonInterval(int successes, int n, double z)
{
    Interval iv;
    if (n <= 0) {
        iv.lo = 0;
        iv.hi = 1;
        return iv;
    }
    double nn = static_cast<double>(n);
    double p = static_cast<double>(successes) / nn;
    double z2 = z * z;
    double denom = 1.0 + z2 / nn;
    double center = p + z2 / (2.0 * nn);
    double margin =
        z * std::sqrt(p * (1.0 - p) / nn + z2 / (4.0 * nn * nn));
    iv.lo = std::max(0.0, (center - margin) / denom);
    iv.hi = std::min(1.0, (center + margin) / denom);
    return iv;
}

namespace {

/** Nearest-rank: smallest element with at least ceil(q*count) at or
 *  below it. @p sorted must be nonempty and ascending. */
uint64_t
nearestRank(const std::vector<uint64_t> &sorted, double q)
{
    size_t rank = static_cast<size_t>(
        std::ceil(q * static_cast<double>(sorted.size())));
    if (rank == 0)
        rank = 1;
    if (rank > sorted.size())
        rank = sorted.size();
    return sorted[rank - 1];
}

} // namespace

PercentileSummary
percentileSummary(const std::vector<uint64_t> &sample)
{
    PercentileSummary s;
    if (sample.empty())
        return s;
    std::vector<uint64_t> sorted = sample;
    std::sort(sorted.begin(), sorted.end());
    s.count = sorted.size();
    s.min = sorted.front();
    s.max = sorted.back();
    s.p50 = nearestRank(sorted, 0.50);
    s.p90 = nearestRank(sorted, 0.90);
    s.p99 = nearestRank(sorted, 0.99);
    return s;
}

void
CycleHistogram::add(uint64_t v)
{
    size_t b = 0;
    while (v != 0) {
        v >>= 1;
        ++b;
    }
    ++buckets[b];
    ++count;
}

uint64_t
CycleHistogram::quantileBound(double q) const
{
    if (count == 0)
        return 0;
    uint64_t rank = static_cast<uint64_t>(
        std::ceil(q * static_cast<double>(count)));
    if (rank == 0)
        rank = 1;
    uint64_t seen = 0;
    for (size_t b = 0; b < buckets.size(); ++b) {
        seen += buckets[b];
        if (seen >= rank)
            return b == 0 ? 0 : (uint64_t{1} << b) - 1;
    }
    return ~uint64_t{0};
}

void
finishCoverageCell(CoverageCell *cell)
{
    int ran = cell->total - cell->skipped;
    cell->coverage =
        ran > 0 ? static_cast<double>(cell->detected) / ran : 0.0;
    cell->ci = wilsonInterval(cell->detected, ran);
}

Json
coverageCellJson(const CoverageCell &cell)
{
    Json j = Json::object();
    j.set("config", cell.config);
    j.set("class", cell.cls);
    j.set("detected", static_cast<int64_t>(cell.detected));
    j.set("total", static_cast<int64_t>(cell.total));
    j.set("skipped", static_cast<int64_t>(cell.skipped));
    j.set("coverage", cell.coverage);
    j.set("ci_lo", cell.ci.lo);
    j.set("ci_hi", cell.ci.hi);
    return j;
}

bool
extractCoverageCells(const Json &doc, std::vector<CoverageCell> *out,
                     std::string *err)
{
    out->clear();
    const Json *matrix = doc.find("matrix");
    if (!matrix || !matrix->isArray()) {
        *err = "document has no top-level \"matrix\" array";
        return false;
    }
    for (size_t i = 0; i < matrix->size(); ++i) {
        const Json &e = matrix->at(i);
        if (!e.isObject())
            continue;
        const Json *config = e.find("config");
        const Json *cls = e.find("class");
        const Json *detected = e.find("detected");
        const Json *total = e.find("total");
        if (!config || !config->isString() || !cls || !cls->isString() ||
            !detected || !detected->isNumber() || !total ||
            !total->isNumber())
            continue;
        CoverageCell cell;
        cell.config = config->str();
        cell.cls = cls->str();
        cell.detected = static_cast<int>(detected->asInt());
        cell.total = static_cast<int>(total->asInt());
        if (const Json *skipped = e.find("skipped"))
            cell.skipped = static_cast<int>(skipped->asInt());
        // Recompute rather than trust the file: the gate must hold even
        // against a hand-edited or stale "coverage" field.
        finishCoverageCell(&cell);
        out->push_back(std::move(cell));
    }
    if (out->empty()) {
        *err = "\"matrix\" array has no coverage cells "
               "(config/class/detected/total keys)";
        return false;
    }
    return true;
}

bool
compareCoverage(const std::vector<CoverageCell> &before,
                const std::vector<CoverageCell> &after,
                std::string *report)
{
    auto pct = [](double v) {
        return strcat(static_cast<uint64_t>(v * 1000 + 0.5) / 10, ".",
                      static_cast<uint64_t>(v * 1000 + 0.5) % 10, "%");
    };
    bool ok = true;
    TextTable t;
    t.addRow({"config", "class", "before", "after", "ci(after)", "note"});
    for (const CoverageCell &b : before) {
        const CoverageCell *a = nullptr;
        for (const CoverageCell &c : after)
            if (c.config == b.config && c.cls == b.cls) {
                a = &c;
                break;
            }
        std::vector<std::string> row{b.config, b.cls, pct(b.coverage)};
        if (!a) {
            ok = false;
            row.push_back("-");
            row.push_back("-");
            row.push_back("FAIL: cell disappeared");
        } else {
            row.push_back(pct(a->coverage));
            row.push_back(
                strcat("[", pct(a->ci.lo), ", ", pct(a->ci.hi), "]"));
            if (a->skipped > b.skipped) {
                ok = false;
                row.push_back(strcat("FAIL: skipped ", b.skipped, " -> ",
                                     a->skipped));
            } else if (a->ci.hi < b.ci.lo) {
                ok = false;
                row.push_back(strcat("FAIL: below before-ci lo ",
                                     pct(b.ci.lo)));
            } else if (a->coverage < b.coverage) {
                row.push_back("lower, within noise");
            } else {
                row.push_back("ok");
            }
        }
        t.addRow(std::move(row));
    }
    for (const CoverageCell &a : after) {
        bool known = false;
        for (const CoverageCell &b : before)
            known |= b.config == a.config && b.cls == a.cls;
        if (!known)
            t.addRow({a.config, a.cls, "-", pct(a.coverage),
                      strcat("[", pct(a.ci.lo), ", ", pct(a.ci.hi), "]"),
                      "new cell"});
    }
    *report += t.render();
    return ok;
}

} // namespace mxl
