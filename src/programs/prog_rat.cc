#include "programs/programs.h"

namespace mxl {

/*
 * rat: "a rational function evaluator that comes with the PSL system".
 *
 * Rational numbers are pairs (num . den), den > 0, reduced with gcd
 * after every operation (which also keeps every intermediate inside
 * the smallest fixnum range, so all tag schemes compute identical
 * results). The workload evaluates rational polynomials by Horner's
 * rule, their derivatives, and telescoping/harmonic-style series —
 * the arithmetic-dominated profile of Table 1's `rat` row.
 */
const std::string &
progRat()
{
    static const std::string src = R"lisp(
;; -- rational arithmetic ----------------------------------------------

(de rmake (n d)
  (cond ((zerop d) (error 9))
        ((minusp d) (rmake (minus n) (minus d)))
        (t (let ((g (gcd n d)))
             (if (zerop g)
                 (cons 0 1)
                 (cons (quotient n g) (quotient d g)))))))

(de rnum (r) (car r))
(de rden (r) (cdr r))

(de radd (a b)
  (rmake (+ (* (rnum a) (rden b)) (* (rnum b) (rden a)))
         (* (rden a) (rden b))))

(de rsub (a b)
  (rmake (- (* (rnum a) (rden b)) (* (rnum b) (rden a)))
         (* (rden a) (rden b))))

(de rmul (a b)
  (rmake (* (rnum a) (rnum b)) (* (rden a) (rden b))))

(de rdiv (a b)
  (if (zerop (rnum b))
      (error 9)
      (rmake (* (rnum a) (rden b)) (* (rden a) (rnum b)))))

(de requal (a b)
  (and (eqn (rnum a) (rnum b)) (eqn (rden a) (rden b))))

(de rzero () (cons 0 1))
(de rone () (cons 1 1))
(de rfix (n) (cons n 1))

;; -- integer polynomials (dense coefficient lists, low order first) ---
;; Coefficients stay small by construction so every scheme computes the
;; same fixnum results.

(de ipadd (p q)
  (cond ((null p) q)
        ((null q) p)
        (t (cons (+ (car p) (car q)) (ipadd (cdr p) (cdr q))))))

(de ipscale (p k)
  (if (null p) nil (cons (* k (car p)) (ipscale (cdr p) k))))

(de ipmul (p q)
  (if (null p)
      nil
      (ipadd (ipscale q (car p)) (cons 0 (ipmul (cdr p) q)))))

(de ipderiv (p)
  (let ((k 1) (out nil))
    (setq p (cdr p))
    (while (pairp p)
      (setq out (cons (* k (car p)) out))
      (setq k (add1 k))
      (setq p (cdr p)))
    (reverse out)))

(de ipsum (p)
  (if (null p) 0 (+ (car p) (ipsum (cdr p)))))

;; Evaluate the rational function p(x)/q(x) at the rational point x.
(de ratfun-eval (p q x)
  (rdiv (ipoly-eval-rat p x) (ipoly-eval-rat q x)))

(de ipoly-eval-rat (p x)
  (let ((acc (rzero)) (rp (reverse p)))
    (while (pairp rp)
      (setq acc (radd (rmul acc x) (rfix (car rp))))
      (setq rp (cdr rp)))
    acc))

;; -- rational-coefficient polynomials ----------------------------------

(de poly-eval (p x)
  (let ((acc (rzero)) (rp (reverse p)))
    (while (pairp rp)
      (setq acc (radd (rmul acc x) (car rp)))
      (setq rp (cdr rp)))
    acc))

(de poly-deriv (p)
  (let ((k 1) (out nil))
    (setq p (cdr p))
    (while (pairp p)
      (setq out (cons (rmul (rfix k) (car p)) out))
      (setq k (add1 k))
      (setq p (cdr p)))
    (reverse out)))

(de poly-add (p q)
  (cond ((null p) q)
        ((null q) p)
        (t (cons (radd (car p) (car q)) (poly-add (cdr p) (cdr q))))))

;; -- series ------------------------------------------------------------

;; sum of 1/(k(k+1)) for k = 1..n; telescopes to n/(n+1).
(de telescope-sum (n)
  (let ((acc (rzero)) (k 1))
    (while (leq k n)
      (setq acc (radd acc (rmake 1 (* k (add1 k)))))
      (setq k (add1 k)))
    acc))

;; alternating unit-fraction sum with small denominators (kept to
;; n <= 8 so the unreduced intermediate products stay within the
;; smallest fixnum range of any scheme)
(de alt-sum (n)
  (let ((acc (rzero)) (k 1) (sign 1))
    (while (leq k n)
      (setq acc (radd acc (rmake sign (* k (add1 k)))))
      (setq sign (minus sign))
      (setq k (add1 k)))
    acc))

;; continued fraction [a; a, a, ...] of depth n
(de cfrac (a n)
  (if (zerop n)
      (rfix a)
      (radd (rfix a) (rdiv (rone) (cfrac a (sub1 n))))))

(de rat-check (r)
  (+ (abs (rnum r)) (abs (rden r))))

(de rat-main (reps)
  ;; The bulk of the work is symbolic: integer polynomial sums,
  ;; products, and derivatives over coefficient lists, followed by
  ;; rational-function evaluation at a few rational points. All
  ;; coefficients stay far below the smallest fixnum range, so every
  ;; scheme computes identical results.
  (let ((p1 '(3 -2 5 1 -4 2))
        (p2 '(1 4 -3 2))
        (q1 '(2 1 1))
        (total 0))
    (while (greaterp reps 0)
      (let* ((prod (ipmul p1 p2))
             (dp (ipderiv prod))
             (s (ipadd prod (ipadd dp (ipscale p1 3)))))
        (setq total (+ total (ipsum s)))
        ;; rational-function evaluation p(x)/q(x) on three points
        (let ((i 1))
          (while (leq i 3)
            (setq total
                  (+ total
                     (rat-check (ratfun-eval s q1 (rmake i 4)))))
            (setq i (add1 i)))))
      (setq total (+ total (rat-check (telescope-sum 20))))
      (setq total (+ total (rat-check (cfrac 1 10))))
      (setq total (remainder total 999983))
      (setq reps (sub1 reps)))
    (print total))
  (print (ipmul '(1 1) '(1 1)))
  (print (telescope-sum 40))
  (print (cfrac 1 14))
  (print (requal (telescope-sum 24) (rmake 24 25))))
)lisp";
    return src;
}

} // namespace mxl
