/**
 * @file
 * The measurement service suite (`serve` ctest label).
 *
 * Three layers, matching src/serve/:
 *  - wire units: frame codec robustness and the cell <-> RunRequest
 *    round trip (the admission decoder IS the worker decoder);
 *  - admission units: all-or-nothing shedding and the
 *    backlog-proportional retry hint;
 *  - end-to-end: a real Server on a real Unix socket, driven through
 *    ServeClient — streaming, deadline propagation, overload, worker
 *    crash/hang containment (chaos cells), graceful drain, and the
 *    degraded in-process fallback.
 *
 * The e2e invariant under test everywhere: EXACTLY ONE terminal
 * response per request, and every admitted cell resolves to exactly
 * one report, no matter what the workers do. Run under
 * -DMXL_SANITIZE=address (pipe/buffer bookkeeping) and
 * -DMXL_SANITIZE=thread (the pid mirror and requestStop seams):
 *   ctest --test-dir build -L serve --output-on-failure
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "serve/admission.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/wire.h"

using namespace mxl;

namespace {

// ---------------------------------------------------------------- wire

TEST(Wire, FrameRoundTripsThroughByteAtATimeFeed)
{
    std::string a = encodeFrame(std::string("{\"x\":1}"));
    std::string b = encodeFrame(std::string("{\"y\":\"two\"}"));
    std::string stream = a + b;
    FrameReader reader;
    std::vector<std::string> got;
    std::string payload;
    for (char c : stream) {
        reader.feed(&c, 1);
        while (reader.next(&payload))
            got.push_back(payload);
    }
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0], "{\"x\":1}");
    EXPECT_EQ(got[1], "{\"y\":\"two\"}");
    EXPECT_FALSE(reader.error());
    EXPECT_EQ(reader.pendingBytes(), 0u);
}

TEST(Wire, MakeTraceIdIsUniqueAndWellFormed)
{
    std::set<std::string> seen;
    for (int i = 0; i < 1000; ++i) {
        std::string id = makeTraceId();
        ASSERT_EQ(id.size(), 17u) << id;
        ASSERT_EQ(id[0], 't');
        for (size_t c = 1; c < id.size(); ++c)
            ASSERT_TRUE(std::isxdigit(
                static_cast<unsigned char>(id[c])))
                << id;
        EXPECT_TRUE(seen.insert(id).second) << "duplicate " << id;
    }
}

TEST(Wire, TraceIdRidesTheGridFrameAndUnknownKeysStayIgnored)
{
    // The grid request schema gained "traceId"; parseCell must keep
    // ignoring keys it doesn't model so traced and untraced peers
    // interoperate (the cell decoder sees request-level keys only via
    // forwarding mistakes — either way, unknown keys never reject).
    Json cell = Json::object();
    cell.set("label", "x");
    cell.set("source", "(exit 0)");
    cell.set("traceId", "t0123456789abcdef");
    WireCell wc;
    std::string err;
    ASSERT_TRUE(parseCell(cell, &wc, &err)) << err;
    EXPECT_EQ(wc.request.label, "x");
}

TEST(Wire, FrameReaderPoisonsOnGarbagePrefix)
{
    FrameReader reader;
    reader.feed("hello, not a frame\n");
    std::string payload;
    EXPECT_FALSE(reader.next(&payload));
    EXPECT_TRUE(reader.error());
    // Poisoned stays poisoned, even fed a valid frame.
    reader.feed(encodeFrame(std::string("{}")));
    EXPECT_FALSE(reader.next(&payload));
    EXPECT_TRUE(reader.error());
}

TEST(Wire, FrameReaderRejectsOversizedAndUnterminated)
{
    FrameReader oversized;
    oversized.feed(std::to_string(kMaxFrameBytes + 1) + "\n");
    std::string payload;
    EXPECT_FALSE(oversized.next(&payload));
    EXPECT_TRUE(oversized.error());

    FrameReader unterminated;
    unterminated.feed("2\n{}X"); // payload not newline-terminated
    EXPECT_FALSE(unterminated.next(&payload));
    EXPECT_TRUE(unterminated.error());
}

TEST(Wire, ParseCellResolvesProgramsAndOptions)
{
    Json cell = Json::object();
    cell.set("program", "inter");
    Json o = Json::object();
    o.set("scheme", "low2");
    o.set("checking", "off");
    cell.set("options", std::move(o));
    cell.set("deadlineMs", static_cast<uint64_t>(1500));
    cell.set("backend", "interpreter");

    WireCell wc;
    std::string err;
    ASSERT_TRUE(parseCell(cell, &wc, &err)) << err;
    EXPECT_EQ(wc.request.label, "inter");
    EXPECT_FALSE(wc.request.source.empty());
    EXPECT_EQ(wc.request.opts.scheme, SchemeKind::Low2);
    EXPECT_EQ(wc.request.opts.checking, Checking::Off);
    EXPECT_DOUBLE_EQ(wc.request.exec.deadlineSeconds, 1.5);
    EXPECT_EQ(wc.request.exec.backend, Backend::Interpreter);
    EXPECT_FALSE(wc.hasFault);
}

TEST(Wire, ParseCellRejectsMalformedInput)
{
    WireCell wc;
    std::string err;

    Json noSource = Json::object();
    noSource.set("label", "x");
    EXPECT_FALSE(parseCell(noSource, &wc, &err));
    EXPECT_NE(err.find("source"), std::string::npos);

    Json badProgram = Json::object();
    badProgram.set("program", "no-such-benchmark");
    EXPECT_FALSE(parseCell(badProgram, &wc, &err));

    Json badScheme = Json::object();
    badScheme.set("source", "(exit 0)");
    Json o = Json::object();
    o.set("scheme", "high9");
    badScheme.set("options", std::move(o));
    EXPECT_FALSE(parseCell(badScheme, &wc, &err));

    EXPECT_FALSE(parseCell(Json("not an object"), &wc, &err));
}

TEST(Wire, ParseCellArmsFaults)
{
    Json cell = Json::object();
    cell.set("source", "(exit 0)");
    Json fault = Json::object();
    fault.set("class", "tag-corrupt");
    fault.set("seed", static_cast<uint64_t>(7));
    cell.set("fault", std::move(fault));

    WireCell wc;
    std::string err;
    ASSERT_TRUE(parseCell(cell, &wc, &err)) << err;
    EXPECT_TRUE(wc.hasFault);
    EXPECT_TRUE(static_cast<bool>(wc.request.hooks.imageMutator) ||
                wc.request.hooks.needsInterpreter());

    // A heap-resident class without a pause cycle is rejected, not
    // silently armed as a no-op.
    Json bad = Json::object();
    bad.set("source", "(exit 0)");
    Json badFault = Json::object();
    badFault.set("class", "heap-tag-corrupt");
    bad.set("fault", std::move(badFault));
    EXPECT_FALSE(parseCell(bad, &wc, &err));
    EXPECT_NE(err.find("pause"), std::string::npos);
}

TEST(Wire, CellJsonRoundTripsThroughParseCell)
{
    RunRequest req;
    req.label = "rt";
    req.source = "(print 42)";
    req.opts.scheme = SchemeKind::High6;
    req.opts.checking = Checking::Full;
    req.exec.maxCycles = 123456;
    req.exec.deadlineSeconds = 2.0;
    req.exec.backend = Backend::Translated;

    WireCell wc;
    std::string err;
    ASSERT_TRUE(parseCell(cellToJson(req), &wc, &err)) << err;
    EXPECT_EQ(wc.request.label, req.label);
    EXPECT_EQ(wc.request.source, req.source);
    EXPECT_EQ(wc.request.opts.scheme, req.opts.scheme);
    EXPECT_EQ(wc.request.opts.checking, req.opts.checking);
    EXPECT_EQ(wc.request.exec.maxCycles, req.exec.maxCycles);
    EXPECT_DOUBLE_EQ(wc.request.exec.deadlineSeconds, 2.0);
    EXPECT_EQ(wc.request.exec.backend, Backend::Translated);
}

// ----------------------------------------------------------- admission

TEST(Admission, AllOrNothingAdmissionAndShedAccounting)
{
    AdmissionQueue q(4, 2);
    EXPECT_TRUE(q.canAdmit(4));
    EXPECT_FALSE(q.canAdmit(5));
    q.push(1);
    q.push(2);
    q.push(3);
    EXPECT_TRUE(q.canAdmit(1));
    EXPECT_FALSE(q.canAdmit(2)); // 3 queued + 2 > 4: whole request shed
    q.shed(2);
    EXPECT_EQ(q.shedRequests(), 1u);
    EXPECT_EQ(q.shedCells(), 2u);
    EXPECT_EQ(q.admittedCells(), 3u);
    EXPECT_EQ(q.depth(), 3u);
    EXPECT_EQ(q.front(), 1u);
    q.pop();
    EXPECT_EQ(q.front(), 2u);
}

TEST(Admission, RetryHintGrowsWithBacklogAndServiceTime)
{
    AdmissionQueue q(100, 1);
    int64_t empty = q.retryAfterMs(1);
    EXPECT_GE(empty, 50); // floor: never tell a client to busy-spin
    for (uint64_t i = 0; i < 50; ++i)
        q.push(i);
    int64_t backlogged = q.retryAfterMs(1);
    EXPECT_GE(backlogged, empty);
    // Slow observed service times push the hint up.
    for (int i = 0; i < 64; ++i)
        q.observeServiceSeconds(1.0);
    EXPECT_GT(q.retryAfterMs(1), backlogged);
}

// ----------------------------------------------------------------- e2e

std::string
uniqueSocketPath()
{
    static std::atomic<int> counter{0};
    return "/tmp/mxl_serve_t" + std::to_string(::getpid()) + "_" +
           std::to_string(counter.fetch_add(1)) + ".sock";
}

Json
sourceCell(const std::string &label, const std::string &source)
{
    Json cell = Json::object();
    cell.set("label", label);
    cell.set("source", source);
    return cell;
}

/** A server on a unique socket, its loop on a background thread. */
class ServeTest : public ::testing::Test
{
  protected:
    void
    startServer(ServerOptions options)
    {
        options.unixPath = socketPath_ = uniqueSocketPath();
        server_ = std::make_unique<Server>(std::move(options));
        std::string err;
        ASSERT_TRUE(server_->start(&err)) << err;
        loop_ = std::thread([this] { server_->serve(); });
    }

    void
    TearDown() override
    {
        if (server_) {
            server_->requestStop();
            if (loop_.joinable())
                loop_.join();
            server_.reset();
        }
        ::unlink(socketPath_.c_str());
    }

    ServeClient
    connect()
    {
        ServeClient client;
        std::string err;
        // The listener is bound before serve() starts, so no race.
        EXPECT_TRUE(client.connectUnix(socketPath_, &err)) << err;
        return client;
    }

    std::string socketPath_;
    std::unique_ptr<Server> server_;
    std::thread loop_;
};

TEST_F(ServeTest, GridStreamsEveryCellThenExactlyOneDone)
{
    ServerOptions options;
    options.workers = 2;
    startServer(options);
    ServeClient client = connect();

    std::vector<Json> cells;
    for (int i = 0; i < 4; ++i)
        cells.push_back(sourceCell("c" + std::to_string(i),
                                   "(print (+ " + std::to_string(i) +
                                       " 10))"));
    std::map<size_t, Json> reports;
    ServeClient::GridOutcome outcome = client.runGrid(
        "stream", cells, 0, [&](size_t index, const Json &report) {
            EXPECT_EQ(reports.count(index), 0u)
                << "duplicate report for cell " << index;
            reports[index] = report;
        });
    ASSERT_EQ(outcome.kind, ServeClient::GridOutcome::Kind::Done);
    EXPECT_EQ(outcome.cells, 4u);
    EXPECT_EQ(outcome.failed, 0u);
    ASSERT_EQ(reports.size(), 4u);
    for (size_t i = 0; i < 4; ++i) {
        const Json *ok = reports[i].find("statusOk");
        ASSERT_NE(ok, nullptr);
        EXPECT_TRUE(ok->asBool(false));
        const Json *output = reports[i].find("output");
        ASSERT_NE(output, nullptr);
        EXPECT_EQ(output->str(),
                  std::to_string(i + 10) + "\n");
    }
}

TEST_F(ServeTest, CellDeadlinePropagatesIntoExecPolicy)
{
    ServerOptions options;
    options.workers = 1;
    startServer(options);
    ServeClient client = connect();

    Json spin = sourceCell(
        "spin", "(setq i 0) (while t (setq i (add1 i)))");
    spin.set("deadlineMs", static_cast<uint64_t>(300));
    Json report;
    ServeClient::GridOutcome outcome =
        client.runGrid("deadline", {spin}, 0,
                       [&](size_t, const Json &r) { report = r; });
    ASSERT_EQ(outcome.kind, ServeClient::GridOutcome::Kind::Done);
    EXPECT_EQ(outcome.failed, 1u);
    const Json *code = report.find("statusCode");
    ASSERT_NE(code, nullptr);
    // Timeout from the simulator's own deadline check, not a worker
    // death: the engine caught it, the worker survived.
    EXPECT_EQ(code->asInt(-1),
              static_cast<int64_t>(RunStatus::Code::Timeout));
    EXPECT_EQ(report.find("workerDeath"), nullptr);
}

TEST_F(ServeTest, RequestDeadlineBoundsQueuedCells)
{
    ServerOptions options;
    options.workers = 1;
    startServer(options);
    ServeClient client = connect();

    // One worker, three spin cells, 400ms request budget: the first
    // cell burns the budget in the worker, the queued rest expire
    // server-side. Every cell still reports, done still arrives.
    std::vector<Json> cells;
    for (int i = 0; i < 3; ++i)
        cells.push_back(sourceCell(
            "q" + std::to_string(i),
            "(setq i 0) (while t (setq i (add1 i)))"));
    size_t timeouts = 0, got = 0;
    ServeClient::GridOutcome outcome = client.runGrid(
        "budget", cells, 400, [&](size_t, const Json &r) {
            ++got;
            const Json *code = r.find("statusCode");
            if (code &&
                code->asInt(-1) ==
                    static_cast<int64_t>(RunStatus::Code::Timeout))
                ++timeouts;
        });
    ASSERT_EQ(outcome.kind, ServeClient::GridOutcome::Kind::Done);
    EXPECT_EQ(got, 3u);
    EXPECT_EQ(timeouts, 3u);
    EXPECT_EQ(outcome.failed, 3u);
}

TEST_F(ServeTest, OverCapacityRequestShedsWithRetryHint)
{
    ServerOptions options;
    options.workers = 1;
    options.queueCapacity = 2;
    startServer(options);
    ServeClient client = connect();

    std::vector<Json> three;
    for (int i = 0; i < 3; ++i)
        three.push_back(sourceCell("s" + std::to_string(i), "(exit 0)"));
    ServeClient::GridOutcome shed =
        client.runGrid("big", three, 0, nullptr);
    ASSERT_EQ(shed.kind, ServeClient::GridOutcome::Kind::Overloaded);
    EXPECT_GE(shed.retryAfterMs, 50);

    // A fitting request on the same connection still admits: shedding
    // is per-request, not a connection death sentence.
    std::vector<Json> two;
    for (int i = 0; i < 2; ++i)
        two.push_back(sourceCell("t" + std::to_string(i), "(exit 0)"));
    ServeClient::GridOutcome admitted =
        client.runGrid("small", two, 0, nullptr);
    EXPECT_EQ(admitted.kind, ServeClient::GridOutcome::Kind::Done);
}

TEST_F(ServeTest, WorkerCrashBecomesStructuredCellErrorAndPoolRecovers)
{
    ServerOptions options;
    options.workers = 1;
    options.enableChaosCells = true;
    startServer(options);
    ServeClient client = connect();

    Json crash = sourceCell("__chaos:crash", "(exit 0)");
    Json report;
    ServeClient::GridOutcome outcome =
        client.runGrid("crash", {crash}, 0,
                       [&](size_t, const Json &r) { report = r; });
    ASSERT_EQ(outcome.kind, ServeClient::GridOutcome::Kind::Done);
    EXPECT_EQ(outcome.failed, 1u);
    const Json *death = report.find("workerDeath");
    ASSERT_NE(death, nullptr);
    EXPECT_EQ(death->find("kind")->str(), "signal");
    EXPECT_EQ(death->find("signal")->asInt(0), SIGABRT);

    // The slot respawns (backoff-bounded) and serves the next request.
    ServeClient::GridOutcome after = client.runGrid(
        "after-crash", {sourceCell("ok", "(print 5)")}, 0, nullptr);
    EXPECT_EQ(after.kind, ServeClient::GridOutcome::Kind::Done);
    EXPECT_EQ(after.failed, 0u);
}

TEST_F(ServeTest, HungWorkerIsKilledAndReportedAsHang)
{
    ServerOptions options;
    options.workers = 1;
    options.enableChaosCells = true;
    options.watchdogGraceMs = 300;
    startServer(options);
    ServeClient client = connect();

    Json hang = sourceCell("__chaos:hang", "(exit 0)");
    hang.set("deadlineMs", static_cast<uint64_t>(200));
    Json report;
    ServeClient::GridOutcome outcome =
        client.runGrid("hang", {hang}, 0,
                       [&](size_t, const Json &r) { report = r; });
    ASSERT_EQ(outcome.kind, ServeClient::GridOutcome::Kind::Done);
    EXPECT_EQ(outcome.failed, 1u);
    const Json *death = report.find("workerDeath");
    ASSERT_NE(death, nullptr);
    EXPECT_EQ(death->find("kind")->str(), "hang");
    const Json *code = report.find("statusCode");
    EXPECT_EQ(code->asInt(-1),
              static_cast<int64_t>(RunStatus::Code::Timeout));
}

TEST_F(ServeTest, DrainFinishesInFlightWorkAndAnswersEveryRequest)
{
    ServerOptions options;
    options.workers = 2;
    options.drainMs = 5000;
    startServer(options);
    ServeClient client = connect();

    std::vector<Json> cells;
    for (int i = 0; i < 6; ++i)
        cells.push_back(
            sourceCell("d" + std::to_string(i), "(print 1)"));
    // Stop the server the moment the first cell streams back: the
    // remaining cells are mid-queue/mid-flight, exactly what drain
    // must resolve.
    size_t got = 0;
    ServeClient::GridOutcome outcome = client.runGrid(
        "drain", cells, 0, [&](size_t, const Json &) {
            if (++got == 1)
                server_->requestStop();
        });
    ASSERT_EQ(outcome.kind, ServeClient::GridOutcome::Kind::Done);
    EXPECT_EQ(got, 6u);
    loop_.join(); // serve() must return on its own after the drain
}

TEST_F(ServeTest, DegradedModeServesInProcess)
{
    ServerOptions options;
    options.disableFork = true; // circuit breaker opens immediately
    startServer(options);
    ServeClient client = connect();

    Json health;
    std::string err;
    ASSERT_TRUE(client.health(&health, &err)) << err;
    EXPECT_TRUE(health.find("degraded")->asBool(false));

    Json report;
    ServeClient::GridOutcome outcome = client.runGrid(
        "degraded", {sourceCell("inline", "(print 9)")}, 0,
        [&](size_t, const Json &r) { report = r; });
    ASSERT_EQ(outcome.kind, ServeClient::GridOutcome::Kind::Done);
    EXPECT_EQ(outcome.failed, 0u);
    EXPECT_EQ(report.find("output")->str(), "9\n");

    // Chaos cells are refused inline — a hang would wedge the loop.
    Json chaos = sourceCell("__chaos:hang", "(exit 0)");
    ServeClient::GridOutcome refused =
        client.runGrid("degraded-chaos", {chaos}, 0, nullptr);
    ASSERT_EQ(refused.kind, ServeClient::GridOutcome::Kind::Done);
    EXPECT_EQ(refused.failed, 1u);
}

TEST_F(ServeTest, BadCellRejectsWholeRequestWithTerminalError)
{
    ServerOptions options;
    startServer(options);
    ServeClient client = connect();

    std::vector<Json> cells;
    cells.push_back(sourceCell("good", "(exit 0)"));
    Json bad = Json::object();
    bad.set("program", "no-such-benchmark");
    cells.push_back(bad);
    size_t got = 0;
    ServeClient::GridOutcome outcome = client.runGrid(
        "mixed", cells, 0, [&](size_t, const Json &) { ++got; });
    ASSERT_EQ(outcome.kind, ServeClient::GridOutcome::Kind::Error);
    EXPECT_NE(outcome.message.find("cell 1"), std::string::npos);
    EXPECT_EQ(got, 0u); // all-or-nothing: the good cell never ran
}

TEST_F(ServeTest, HealthReportsMetricsSnapshot)
{
    ServerOptions options;
    options.workers = 1;
    startServer(options);
    ServeClient client = connect();

    client.runGrid("warm", {sourceCell("w", "(exit 0)")}, 0, nullptr);
    Json health;
    std::string err;
    ASSERT_TRUE(client.health(&health, &err)) << err;
    const Json *metrics = health.find("metrics");
    ASSERT_NE(metrics, nullptr);
    const Json *counters = metrics->find("counters");
    ASSERT_NE(counters, nullptr);
    const Json *cellsServed = counters->find("serve.cells");
    ASSERT_NE(cellsServed, nullptr);
    EXPECT_GE(cellsServed->asUint(0), 1u);
    EXPECT_EQ(health.find("queueCapacity")->asUint(0), 256u);
}

TEST_F(ServeTest, MalformedFramingDropsOnlyTheOffendingConnection)
{
    ServerOptions options;
    startServer(options);

    // Drive a raw socket past the framing layer: garbage poisons the
    // server-side FrameReader, which must hang up on this connection
    // without harming its neighbors.
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::snprintf(addr.sun_path, sizeof addr.sun_path, "%s",
                  socketPath_.c_str());
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof addr),
              0);
    const char garbage[] = "this is not a length-prefixed frame\n";
    ASSERT_GT(::write(fd, garbage, sizeof garbage - 1), 0);
    char buf[64];
    EXPECT_EQ(::read(fd, buf, sizeof buf), 0); // server hung up
    ::close(fd);

    ServeClient fine = connect();
    std::string err;
    EXPECT_TRUE(fine.ping(&err)) << err;
}

TEST_F(ServeTest, TraceAndMetricsRelayHomeAcrossTheForkBoundary)
{
    std::string tracePath = "/tmp/mxl_serve_trace_" +
                            std::to_string(::getpid()) + ".json";
    ::unlink(tracePath.c_str());
    ServerOptions options;
    options.workers = 1;
    options.warmCache = true; // workers inherit a warm cache COW
    options.tracePath = tracePath;
    startServer(options);
    ServeClient client = connect();

    // A warmed program cell (COW cache hit inside the worker) plus a
    // source cell; both run in the forked worker.
    Json warm = Json::object();
    warm.set("label", "warm");
    warm.set("program", "inter");
    std::vector<Json> cells{warm, sourceCell("src", "(print 3)")};
    ServeClient::GridOutcome outcome =
        client.runGrid("traced", cells, 0, nullptr);
    ASSERT_EQ(outcome.kind, ServeClient::GridOutcome::Kind::Done);
    EXPECT_EQ(outcome.failed, 0u);
    ASSERT_FALSE(outcome.traceId.empty());

    // The health snapshot must aggregate worker-side engine counters:
    // the parent process never ran a cell, so nonzero runs (and the
    // COW cache hit) prove the per-result metric deltas merged home.
    Json health;
    std::string err;
    ASSERT_TRUE(client.health(&health, &err)) << err;
    const Json *counters = health.find("metrics")->find("counters");
    ASSERT_NE(counters, nullptr);
    EXPECT_GE(counters->find("engine.runs")->asUint(0), 2u);
    ASSERT_NE(counters->find("engine.cache.hits"), nullptr);
    EXPECT_GE(counters->find("engine.cache.hits")->asUint(0), 1u);
    const Json *hists = health.find("metrics")->find("histograms");
    ASSERT_NE(hists, nullptr);
    for (const char *name :
         {"serve.admission_wait_micros", "serve.queue_micros",
          "serve.exec_micros", "serve.e2e_micros"}) {
        const Json *h = hists->find(name);
        ASSERT_NE(h, nullptr) << name;
        EXPECT_GE(h->find("count")->asUint(0), 1u) << name;
    }

    // Drain writes the merged trace; every span of the completed
    // request carries its trace id, and the worker's engine spans
    // landed on the worker's own lane (2 + slot = 2), not the
    // server's.
    server_->requestStop();
    loop_.join();

    std::ifstream in(tracePath);
    ASSERT_TRUE(in.good());
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    Json tdoc;
    ASSERT_TRUE(Json::parse(text, &tdoc));
    ASSERT_TRUE(tdoc.isArray());
    std::set<std::string> spanNames;
    size_t tracedSpans = 0, workerLaneSpans = 0;
    for (size_t i = 0; i < tdoc.size(); ++i) {
        const Json &e = tdoc.at(i);
        if (e.find("cat") && e.find("cat")->str() == "__metadata")
            continue;
        const Json *args = e.find("args");
        const Json *tid = args ? args->find("traceId") : nullptr;
        if (tid && tid->str() == outcome.traceId) {
            ++tracedSpans;
            spanNames.insert(e.find("name")->str());
            if (e.find("pid")->asInt() == 2)
                ++workerLaneSpans;
        }
    }
    // Parent request + per-cell exec spans; worker cell + engine
    // compile/run spans, all stamped with the request's trace id.
    EXPECT_EQ(spanNames.count("request"), 1u);
    EXPECT_EQ(spanNames.count("exec"), 1u);
    EXPECT_EQ(spanNames.count("cell"), 1u);
    EXPECT_EQ(spanNames.count("run"), 1u);
    EXPECT_GE(tracedSpans, 5u); // request + 2 exec + 2 cell at least
    EXPECT_GE(workerLaneSpans, 2u);
    ::unlink(tracePath.c_str());
}

TEST_F(ServeTest, WorkerDeathAppearsExactlyOnceInTheStructuredLog)
{
    std::string logPath = "/tmp/mxl_serve_events_" +
                          std::to_string(::getpid()) + ".jsonl";
    ::unlink(logPath.c_str());
    ServerOptions options;
    options.workers = 1;
    options.enableChaosCells = true;
    options.eventLogPath = logPath;
    startServer(options);
    ServeClient client = connect();

    // A crash cell between two healthy cells: the worker dies exactly
    // once, and so must the worker.death event — the log is evidence,
    // not a repeating alarm.
    std::vector<Json> cells{sourceCell("before", "(print 1)"),
                            sourceCell("__chaos:crash", "(exit 0)"),
                            sourceCell("after", "(print 2)")};
    ServeClient::GridOutcome outcome =
        client.runGrid("chaos-log", cells, 0, nullptr);
    ASSERT_EQ(outcome.kind, ServeClient::GridOutcome::Kind::Done);
    EXPECT_EQ(outcome.failed, 1u);
    ASSERT_FALSE(outcome.traceId.empty());

    server_->requestStop();
    loop_.join();

    std::ifstream in(logPath);
    ASSERT_TRUE(in.good());
    std::string line;
    size_t deaths = 0, dones = 0;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        Json e;
        ASSERT_TRUE(Json::parse(line, &e)) << line;
        const std::string &name = e.find("event")->str();
        if (name == "worker.death") {
            ++deaths;
            EXPECT_EQ(e.find("level")->str(), "error");
            EXPECT_EQ(e.find("kind")->str(), "signal");
            EXPECT_EQ(e.find("signal")->asInt(0), SIGABRT);
            ASSERT_NE(e.find("traceId"), nullptr);
            EXPECT_EQ(e.find("traceId")->str(), outcome.traceId);
            EXPECT_EQ(e.find("requestId")->str(), "chaos-log");
            EXPECT_EQ(e.find("label")->str(), "__chaos:crash");
        } else if (name == "request.done") {
            ++dones;
            EXPECT_EQ(e.find("traceId")->str(), outcome.traceId);
        }
    }
    EXPECT_EQ(deaths, 1u);
    EXPECT_EQ(dones, 1u);
    ::unlink(logPath.c_str());
}

} // namespace
