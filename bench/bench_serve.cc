/**
 * @file
 * Chaos load test for the measurement service (src/serve/): a real
 * mxl server on a Unix socket, a fleet of client threads firing grid
 * requests at it, and two saboteurs working against them — a killer
 * thread SIGKILLing random pool workers mid-request, and periodic
 * `__chaos:hang` cells that wedge a worker until the per-task
 * watchdog executes it.
 *
 * The invariant under load is the service's reason to exist: EVERY
 * request concludes with EXACTLY ONE terminal response (done /
 * overloaded / error), every admitted cell resolves to exactly one
 * streamed report (worker deaths become structured per-cell errors,
 * never dropped requests), and the server itself survives. After the
 * load phase the harness raises SIGTERM and checks the graceful drain
 * completes within its bound. Any violation prints FAIL and exits
 * nonzero.
 *
 * Default scale is --requests 1000 completed grid requests across
 * --clients 8 connections against --workers 4, with a worker kill
 * every --kill-every-ms 60 and a hang cell roughly every --hang-every
 * 83rd request. Overload sheds are expected and counted (clients
 * honor retryAfterMs and retry), not failures.
 *
 * Results land in BENCH_serve.json: a bench_diff-compatible grid (a
 * post-chaos golden request's per-cell reports, whose simulated cycle
 * counts are deterministic) plus service-level results — throughput,
 * request-latency p50/p99, shed / worker-death / hang-kill / respawn
 * counts, and the measured drain time. The embedded metrics snapshot
 * carries the four service latency histograms (gate them with
 * `bench_diff --latency`) and the engine counters merged home from
 * the workers' per-result metric deltas. The server also runs with
 * --trace and --log equivalents on: BENCH_serve_trace.json must be a
 * valid merged Perfetto trace with one lane per worker and the
 * sampled requests' trace ids on its spans, and
 * BENCH_serve_events.jsonl a parseable structured event log.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include <unistd.h>

#include "bench_export.h"
#include "serve/client.h"
#include "serve/server.h"
#include "support/json.h"

using namespace mxl;

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

Json
sourceCell(const std::string &label, const std::string &source)
{
    Json cell = Json::object();
    cell.set("label", label);
    cell.set("source", source);
    return cell;
}

Json
hangCell(int64_t deadlineMs)
{
    Json cell = Json::object();
    cell.set("label", "__chaos:hang");
    cell.set("deadlineMs", static_cast<uint64_t>(deadlineMs));
    return cell;
}

/** Everything the client fleet observes, merged under one mutex. */
struct LoadLedger
{
    std::mutex mu;
    uint64_t completed = 0;      ///< done terminals
    uint64_t failedCells = 0;    ///< statusOk=false reports (expected
                                 ///< under chaos: deaths, hang kills)
    uint64_t shedRetries = 0;    ///< overloaded terminals (retried)
    uint64_t duplicateCells = 0; ///< same index reported twice
    uint64_t missingCells = 0;   ///< done without all cell reports
    uint64_t transportErrors = 0;
    uint64_t serverErrors = 0;
    std::vector<double> latencies; ///< seconds, done requests only
    std::vector<std::string> traceIds; ///< done requests (sampled)
};

/** How many done-request trace ids to sample for trace validation. */
constexpr size_t kTraceIdSample = 64;

struct LoadConfig
{
    std::string socketPath;
    uint64_t requests = 1000;
    int clients = 8;
    int hangEvery = 83;
    int64_t hangDeadlineMs = 150;
};

/**
 * One client thread: issue grid requests until the fleet-wide target
 * is reached. A shed request is retried after its hint (capped — this
 * is a stress test, not a politeness test); everything else must
 * conclude as done with a complete, duplicate-free report set.
 */
void
clientMain(const LoadConfig &cfg, int clientIndex,
           std::atomic<uint64_t> *issued, LoadLedger *ledger)
{
    ServeClient client;
    std::string err;
    if (!client.connectUnix(cfg.socketPath, &err)) {
        std::lock_guard<std::mutex> lock(ledger->mu);
        ledger->transportErrors++;
        return;
    }
    for (;;) {
        uint64_t seq = issued->fetch_add(1);
        if (seq >= cfg.requests)
            return;
        std::vector<Json> cells;
        const int nCells = 1 + static_cast<int>(seq % 3);
        for (int c = 0; c < nCells; ++c)
            cells.push_back(sourceCell(
                "r" + std::to_string(seq) + "c" + std::to_string(c),
                "(print (+ " + std::to_string(seq % 7) + " " +
                    std::to_string(c) + "))"));
        // Every 4th request also runs a precompiled benchmark program:
        // the parent warmed it before forking, so the worker's first
        // use is a copy-on-write cache hit — the load that proves the
        // workers' engine counters (nonzero engine.cache.hits) merge
        // home through the per-result metric deltas.
        if (seq % 4 == 0) {
            Json warm = Json::object();
            warm.set("label", "r" + std::to_string(seq) + "warm");
            warm.set("program", "inter");
            cells.push_back(std::move(warm));
        }
        const bool withHang =
            cfg.hangEvery > 0 && seq % cfg.hangEvery == 0;
        if (withHang)
            cells.push_back(hangCell(cfg.hangDeadlineMs));

        const std::string id = "c" + std::to_string(clientIndex) +
                               "-" + std::to_string(seq);
        for (;;) {
            std::map<size_t, int> reports;
            uint64_t duplicates = 0;
            Clock::time_point t0 = Clock::now();
            ServeClient::GridOutcome out = client.runGrid(
                id, cells, 0, [&](size_t index, const Json &) {
                    if (reports.count(index))
                        duplicates++;
                    reports[index] = 1;
                });
            double wall = secondsSince(t0);

            if (out.kind ==
                ServeClient::GridOutcome::Kind::Overloaded) {
                {
                    std::lock_guard<std::mutex> lock(ledger->mu);
                    ledger->duplicateCells += duplicates;
                    ledger->shedRetries++;
                }
                int64_t backoff = std::max<int64_t>(
                    1, std::min<int64_t>(out.retryAfterMs, 200));
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(backoff));
                continue; // same request, new attempt
            }
            std::lock_guard<std::mutex> lock(ledger->mu);
            ledger->duplicateCells += duplicates;
            if (out.kind == ServeClient::GridOutcome::Kind::Done) {
                ledger->completed++;
                ledger->failedCells += out.failed;
                if (ledger->traceIds.size() < kTraceIdSample)
                    ledger->traceIds.push_back(out.traceId);
                if (reports.size() != cells.size())
                    ledger->missingCells +=
                        cells.size() - reports.size();
                ledger->latencies.push_back(wall);
            } else if (out.kind ==
                       ServeClient::GridOutcome::Kind::Error) {
                ledger->serverErrors++;
            } else {
                ledger->transportErrors++;
            }
            break;
        }
    }
}

/** SIGKILL a live worker every @p everyMs until told to stop. */
void
killerMain(Server *server, int everyMs, std::atomic<bool> *stop,
           std::atomic<uint64_t> *kills)
{
    size_t rotor = 0;
    while (!stop->load()) {
        // Sleep in small slices so stopping doesn't wait out a long
        // kill interval.
        for (int slept = 0; slept < everyMs && !stop->load();
             slept += 10)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
        if (stop->load())
            return;
        std::vector<int> pids = server->workerPids();
        if (pids.empty())
            continue;
        int victim = pids[rotor++ % pids.size()];
        if (victim > 0 && ::kill(victim, SIGKILL) == 0)
            kills->fetch_add(1);
    }
}

double
percentile(std::vector<double> sorted, double p)
{
    if (sorted.empty())
        return 0;
    size_t idx = static_cast<size_t>(p * (sorted.size() - 1) + 0.5);
    return sorted[std::min(idx, sorted.size() - 1)];
}

uint64_t
healthCounter(const Json &health, const char *field)
{
    const Json *v = health.find(field);
    return v ? v->asUint() : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    LoadConfig cfg;
    int workers = 4;
    size_t queueCapacity = 16;
    int killEveryMs = 150;
    int drainBoundMs = 15000;
    for (int i = 1; i < argc; ++i) {
        auto intArg = [&](const char *flag, auto *out) {
            if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) {
                *out = static_cast<std::remove_pointer_t<decltype(out)>>(
                    std::strtoll(argv[++i], nullptr, 10));
                return true;
            }
            return false;
        };
        if (intArg("--requests", &cfg.requests) ||
            intArg("--clients", &cfg.clients) ||
            intArg("--workers", &workers) ||
            intArg("--queue", &queueCapacity) ||
            intArg("--kill-every-ms", &killEveryMs) ||
            intArg("--hang-every", &cfg.hangEvery) ||
            intArg("--drain-bound-ms", &drainBoundMs))
            continue;
        std::fprintf(stderr,
                     "usage: bench_serve [--requests N] [--clients N] "
                     "[--workers N] [--queue N] [--kill-every-ms N] "
                     "[--hang-every N] [--drain-bound-ms N]\n");
        return 2;
    }

    cfg.socketPath = "/tmp/mxl_bench_serve_" +
                     std::to_string(::getpid()) + ".sock";
    const std::string tracePath = "BENCH_serve_trace.json";
    const std::string eventLogPath = "BENCH_serve_events.jsonl";
    // The event log appends; a stale file from a previous run would
    // pollute this one's validation.
    ::unlink(tracePath.c_str());
    ::unlink(eventLogPath.c_str());
    ServerOptions options;
    options.unixPath = cfg.socketPath;
    options.workers = workers;
    options.queueCapacity = queueCapacity;
    options.enableChaosCells = true;
    options.warmCache = true;
    options.watchdogGraceMs = 250;
    options.backoffBaseMs = 20;
    options.backoffCapMs = 200;
    options.drainMs = drainBoundMs;
    options.maxCellSeconds = 30;
    options.tracePath = tracePath;
    options.eventLogPath = eventLogPath;

    Server server(std::move(options));
    std::string err;
    if (!server.start(&err)) {
        std::fprintf(stderr, "bench_serve: start failed: %s\n",
                     err.c_str());
        return 1;
    }
    server.installSignalHandlers();
    std::thread loop([&] { server.serve(); });

    std::printf("bench_serve: %llu requests, %d clients, %d workers, "
                "queue %zu, kill every %dms, hang every %d\n",
                static_cast<unsigned long long>(cfg.requests),
                cfg.clients, workers, queueCapacity, killEveryMs,
                cfg.hangEvery);

    // ---------------------------------------------------- load phase
    std::atomic<uint64_t> issued{0};
    std::atomic<uint64_t> kills{0};
    std::atomic<bool> stopKiller{false};
    LoadLedger ledger;
    Clock::time_point loadStart = Clock::now();

    std::thread killer(killerMain, &server, killEveryMs, &stopKiller,
                       &kills);
    std::vector<std::thread> fleet;
    for (int c = 0; c < cfg.clients; ++c)
        fleet.emplace_back(clientMain, std::cref(cfg), c, &issued,
                           &ledger);
    for (std::thread &t : fleet)
        t.join();
    double loadSeconds = secondsSince(loadStart);
    stopKiller.store(true);
    killer.join();

    // ------------------------------------- post-chaos health + probes
    ServeClient probe;
    Json health;
    bool healthy = probe.connectUnix(cfg.socketPath, &err) &&
                   probe.health(&health, &err);
    if (!healthy)
        std::fprintf(stderr, "bench_serve: post-chaos health probe "
                             "failed: %s\n",
                     err.c_str());

    // Let the last kills finish their respawn backoff: poll health
    // until the full worker complement is idle (bounded wait).
    auto settle = [&](int boundMs) {
        Clock::time_point t0 = Clock::now();
        while (healthy && secondsSince(t0) * 1e3 < boundMs) {
            Json h;
            if (!probe.health(&h, &err))
                break;
            const Json *idle = h.find("workersIdle");
            if (idle &&
                idle->asUint() == static_cast<uint64_t>(workers))
                return true;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(25));
        }
        return false;
    };
    settle(5000);

    // With the killer stopped, a lone hang cell MUST be executed by
    // the per-task watchdog and classified as a hang — during the
    // load phase the killer usually beats the watchdog to a hung
    // worker, so this is the deterministic check of that machinery.
    bool hangClassified = false;
    if (healthy) {
        std::vector<Json> hp{hangCell(cfg.hangDeadlineMs)};
        ServeClient::GridOutcome out = probe.runGrid(
            "hang-probe", hp, 0, [&](size_t, const Json &report) {
                const Json *wd = report.find("workerDeath");
                const Json *kind = wd ? wd->find("kind") : nullptr;
                hangClassified = kind && kind->isString() &&
                                 kind->str() == "hang";
            });
        hangClassified = hangClassified &&
                         out.kind ==
                             ServeClient::GridOutcome::Kind::Done &&
                         out.failed == 1;
    }
    settle(5000);

    // A clean request after the chaos stops: its per-cell reports are
    // the bench_diff grid (simulated cycles are deterministic), and it
    // proves the pool recovered rather than merely not crashing. A
    // few attempts are allowed — the aftermath of the last kill may
    // still fail one dispatch.
    std::vector<Json> golden;
    const char *goldenSrc[] = {
        "(print (+ 1 2))",
        "(print (* 6 7))",
        "(print (- 100 58))",
    };
    for (size_t i = 0; i < 3; ++i)
        golden.push_back(sourceCell("serve/golden" + std::to_string(i),
                                    goldenSrc[i]));
    Json grid = Json::array();
    bool goldenOk = false;
    for (int attempt = 0; healthy && !goldenOk && attempt < 5;
         ++attempt) {
        grid = Json::array();
        ServeClient::GridOutcome out = probe.runGrid(
            "golden" + std::to_string(attempt), golden, 0,
            [&](size_t, const Json &report) { grid.push(report); });
        goldenOk =
            out.kind == ServeClient::GridOutcome::Kind::Done &&
            out.failed == 0 && grid.size() == golden.size();
        if (!goldenOk)
            settle(2000);
    }
    if (healthy) // refresh counters to include the probes
        probe.health(&health, &err);
    probe.close();

    // ----------------------------------------------------- drain test
    Clock::time_point drainStart = Clock::now();
    ::raise(SIGTERM);
    loop.join();
    double drainSeconds = secondsSince(drainStart);
    ::unlink(cfg.socketPath.c_str());

    // --------------------------------------- observability artifacts
    // The refreshed health snapshot must carry the four service
    // latency histograms (bench_diff --latency gates on them) and
    // engine counters the parent process never increments itself —
    // cache hits and runs happen inside forked workers, so nonzero
    // values prove the per-result metric deltas merged home.
    auto metricsSection = [&](const char *kind) -> const Json * {
        const Json *m = health.find("metrics");
        const Json *s = m ? m->find(kind) : nullptr;
        return s && s->isObject() ? s : nullptr;
    };
    bool latencyHistogramsOk = true;
    {
        const Json *hists = metricsSection("histograms");
        for (const char *name :
             {"serve.admission_wait_micros", "serve.queue_micros",
              "serve.exec_micros", "serve.e2e_micros"}) {
            const Json *h = hists ? hists->find(name) : nullptr;
            const Json *count = h ? h->find("count") : nullptr;
            if (!count || count->asUint() == 0) {
                latencyHistogramsOk = false;
                std::fprintf(stderr,
                             "bench_serve: histogram %s missing or "
                             "empty in health metrics\n",
                             name);
            }
        }
    }
    bool workerCountersOk = false;
    {
        const Json *counters = metricsSection("counters");
        auto counterValue = [&](const char *name) -> uint64_t {
            const Json *c = counters ? counters->find(name) : nullptr;
            return c ? c->asUint() : 0;
        };
        workerCountersOk = counterValue("engine.cache.hits") > 0 &&
                           counterValue("engine.runs") > 0;
    }

    // The merged Perfetto trace, written when the drain finished:
    // every event well-formed, at least two lanes (server + a
    // worker), and the sampled done-requests' trace ids present.
    bool traceOk = false;
    {
        std::ifstream in(tracePath, std::ios::binary);
        std::ostringstream text;
        text << in.rdbuf();
        Json tdoc;
        if (in && Json::parse(text.str(), &tdoc) && tdoc.isArray() &&
            tdoc.size() > 0) {
            bool shaped = true;
            std::set<int64_t> lanes;
            std::set<std::string> tracedIds;
            for (size_t i = 0; i < tdoc.size(); ++i) {
                const Json &e = tdoc.at(i);
                const Json *pid = e.find("pid");
                if (!e.isObject() || !e.find("name") ||
                    !e.find("ph") || !e.find("ts") || !pid ||
                    !e.find("tid")) {
                    shaped = false;
                    break;
                }
                lanes.insert(pid->asInt(0));
                const Json *args = e.find("args");
                const Json *tid = args ? args->find("traceId") : nullptr;
                if (tid && tid->isString())
                    tracedIds.insert(tid->str());
            }
            size_t sampledFound = 0;
            for (const std::string &id : ledger.traceIds)
                if (tracedIds.count(id))
                    ++sampledFound;
            traceOk = shaped && lanes.size() >= 2 &&
                      !ledger.traceIds.empty() &&
                      sampledFound == ledger.traceIds.size();
            if (!traceOk)
                std::fprintf(stderr,
                             "bench_serve: trace check: shaped=%d "
                             "lanes=%zu sampled=%zu/%zu\n",
                             shaped ? 1 : 0, lanes.size(),
                             sampledFound, ledger.traceIds.size());
        } else {
            std::fprintf(stderr,
                         "bench_serve: %s missing or not a JSON "
                         "array\n",
                         tracePath.c_str());
        }
    }

    // The structured event log: every line parses, and the lifecycle
    // events the load phase must have produced are present.
    bool eventLogOk = false;
    {
        std::ifstream in(eventLogPath);
        std::string line;
        bool parsed = in.good();
        uint64_t doneEvents = 0, startEvents = 0, drainEvents = 0;
        while (parsed && std::getline(in, line)) {
            if (line.empty())
                continue;
            Json e;
            if (!Json::parse(line, &e) || !e.isObject() ||
                !e.find("ts") || !e.find("level") || !e.find("event")) {
                parsed = false;
                break;
            }
            const std::string &name = e.find("event")->str();
            if (name == "request.done")
                ++doneEvents;
            else if (name == "server.start")
                ++startEvents;
            else if (name == "server.drain.end")
                ++drainEvents;
        }
        eventLogOk = parsed && startEvents == 1 && drainEvents == 1 &&
                     doneEvents >= ledger.completed;
        if (!eventLogOk)
            std::fprintf(stderr,
                         "bench_serve: event log check: parsed=%d "
                         "start=%llu drain=%llu done=%llu\n",
                         parsed ? 1 : 0,
                         static_cast<unsigned long long>(startEvents),
                         static_cast<unsigned long long>(drainEvents),
                         static_cast<unsigned long long>(doneEvents));
    }

    // ------------------------------------------------------- verdicts
    std::sort(ledger.latencies.begin(), ledger.latencies.end());
    double p50 = percentile(ledger.latencies, 0.50) * 1e3;
    double p99 = percentile(ledger.latencies, 0.99) * 1e3;
    double rps = loadSeconds > 0 ? ledger.completed / loadSeconds : 0;
    uint64_t respawns = healthCounter(health, "workerRespawns");
    uint64_t deaths = healthCounter(health, "workerDeaths");
    uint64_t hangKills = healthCounter(health, "workerHangKills");

    std::printf("\n%llu/%llu requests completed in %.2fs "
                "(%.0f req/s), latency p50 %.1fms p99 %.1fms\n",
                static_cast<unsigned long long>(ledger.completed),
                static_cast<unsigned long long>(cfg.requests),
                loadSeconds, rps, p50, p99);
    std::printf("chaos: %llu worker kills, %llu hang kills, %llu "
                "worker deaths, %llu respawns, %llu failed cells, "
                "%llu sheds (retried)\n",
                static_cast<unsigned long long>(kills.load()),
                static_cast<unsigned long long>(hangKills),
                static_cast<unsigned long long>(deaths),
                static_cast<unsigned long long>(respawns),
                static_cast<unsigned long long>(ledger.failedCells),
                static_cast<unsigned long long>(ledger.shedRetries));

    bool failed = false;
    auto verdict = [&](bool ok, const char *what) {
        std::printf("%s  %s\n", ok ? "PASS" : "FAIL", what);
        if (!ok)
            failed = true;
    };
    verdict(ledger.completed == cfg.requests,
            "every request reached exactly one done terminal");
    verdict(ledger.transportErrors == 0 && ledger.serverErrors == 0,
            "zero dropped connections or server errors under chaos");
    verdict(ledger.duplicateCells == 0 && ledger.missingCells == 0,
            "every admitted cell reported exactly once");
    verdict(healthy, "server answered health after the chaos phase");
    verdict(hangClassified,
            "watchdog killed and classified the hang probe");
    verdict(goldenOk, "pool recovered: clean post-chaos golden grid");
    verdict(drainSeconds * 1e3 <= drainBoundMs + 2000,
            "SIGTERM drain completed within bound");
    verdict(latencyHistogramsOk,
            "health exports the four service latency histograms");
    verdict(workerCountersOk,
            "worker engine counters merged home (cache hits, runs)");
    verdict(traceOk,
            "merged Perfetto trace has per-worker lanes and the "
            "sampled trace ids");
    verdict(eventLogOk,
            "structured event log parses with full lifecycle events");

    // ------------------------------------------------------- artifact
    Json doc = benchDoc("serve", std::move(grid));
    Json results = Json::object();
    results.set("requests", ledger.completed);
    results.set("attempts",
                ledger.completed + ledger.shedRetries);
    results.set("clients", static_cast<uint64_t>(cfg.clients));
    results.set("workers", static_cast<uint64_t>(workers));
    results.set("loadSeconds", loadSeconds);
    results.set("throughputRps", rps);
    results.set("latencyP50Ms", p50);
    results.set("latencyP99Ms", p99);
    results.set("shedRequests", ledger.shedRetries);
    results.set("failedCells", ledger.failedCells);
    results.set("workerKills", kills.load());
    results.set("workerDeaths", deaths);
    results.set("workerRespawns", respawns);
    results.set("workerHangKills", hangKills);
    results.set("drainSeconds", drainSeconds);
    doc.set("serve", std::move(results));
    if (const Json *m = health.find("metrics"))
        doc.set("metrics", *m);
    if (!writeBenchJson("serve", doc))
        failed = true;

    std::printf("%s  measurement service chaos load\n",
                failed ? "FAIL" : "PASS");
    return failed ? 1 : 0;
}
