#include "isa/annotation.h"

namespace mxl {

std::string
purposeName(Purpose p)
{
    switch (p) {
      case Purpose::Useful:     return "useful";
      case Purpose::TagInsert:  return "insertion";
      case Purpose::TagRemove:  return "removal";
      case Purpose::TagExtract: return "extraction";
      case Purpose::TagCheck:   return "checking";
      case Purpose::Dispatch:   return "dispatch";
      case Purpose::OtherCheck: return "other-check";
    }
    return "?";
}

std::string
checkCatName(CheckCat c)
{
    switch (c) {
      case CheckCat::None:   return "none";
      case CheckCat::List:   return "list";
      case CheckCat::Vector: return "vector";
      case CheckCat::Arith:  return "arith";
      case CheckCat::User:   return "user";
    }
    return "?";
}

} // namespace mxl
