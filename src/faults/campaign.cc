#include "faults/campaign.h"

#include <utility>

#include "runtime/stubs.h"
#include "support/format.h"
#include "support/panic.h"
#include "support/table.h"

namespace mxl {

namespace {

/**
 * Per-trial fault seed. Mixed from the campaign seed and the trial's
 * (program, class, trial) coordinates only — configurations share the
 * fault population (see campaign.h).
 */
uint64_t
trialSeed(const Campaign &c, int prog, int cls, int trial)
{
    uint64_t key = (static_cast<uint64_t>(prog) * c.classes.size() +
                    static_cast<uint64_t>(cls)) *
                       static_cast<uint64_t>(c.trials) +
                   static_cast<uint64_t>(trial);
    return FaultRng::mix(c.seed, key + 1);
}

} // namespace

const char *
outcomeName(Outcome o)
{
    switch (o) {
      case Outcome::Detected:
        return "detected";
      case Outcome::SilentWrongAnswer:
        return "silent-wrong";
      case Outcome::CrashIllegalAccess:
        return "crash";
      case Outcome::CycleLimit:
        return "cycle-limit";
      case Outcome::Masked:
        return "masked";
      case Outcome::NumOutcomes:
        break;
    }
    return "?";
}

const char *
detectChannelName(DetectChannel c)
{
    switch (c) {
      case DetectChannel::None:
        return "none";
      case DetectChannel::SoftwareCheck:
        return "software";
      case DetectChannel::HardwareTrap:
        return "hw-trap";
    }
    return "?";
}

Outcome
classifyOutcome(const RunReport &faulted, const RunReport &golden,
                DetectChannel *channel)
{
    DetectChannel ch = DetectChannel::None;
    Outcome out;

    switch (faulted.status.code) {
      case RunStatus::Code::Timeout:
        out = Outcome::CycleLimit;
        break;
      case RunStatus::Code::CompileError:
      case RunStatus::Code::InternalError:
        // Faults are injected after compilation, so this is the
        // simulator losing control of the run (e.g. a wild sp taking
        // the runtime's own bookkeeping out of range).
        out = Outcome::CrashIllegalAccess;
        break;
      case RunStatus::Code::Ok:
        switch (faulted.result.stop) {
          case StopReason::Halted:
            out = (faulted.result.output == golden.result.output &&
                   faulted.result.exitValue == golden.result.exitValue)
                      ? Outcome::Masked
                      : Outcome::SilentWrongAnswer;
            break;
          case StopReason::Errored: {
            int64_t code = faulted.result.errorCode;
            if (isUnhandledTrapCode(code) || code == rtcode::tagTrap) {
                // Raw hardware trap, or the software fallback handler a
                // hardware trap vectored into.
                out = Outcome::Detected;
                ch = DetectChannel::HardwareTrap;
            } else if (code == kDivideByZeroCode) {
                out = Outcome::CrashIllegalAccess;
            } else {
                // Compiled type checks (rt_error), calls through
                // corrupted function cells (rt_undef), and Lisp-level
                // `error` are all software-side detection.
                out = Outcome::Detected;
                ch = DetectChannel::SoftwareCheck;
            }
            break;
          }
          case StopReason::IllegalAccess:
            out = Outcome::CrashIllegalAccess;
            break;
          case StopReason::CycleLimit:
          case StopReason::Running:
            out = Outcome::CycleLimit;
            break;
          default:
            out = Outcome::CrashIllegalAccess;
            break;
        }
        break;
      default:
        out = Outcome::CrashIllegalAccess;
        break;
    }

    if (channel)
        *channel = out == Outcome::Detected ? ch : DetectChannel::None;
    return out;
}

std::string
CampaignResult::renderMatrix() const
{
    TextTable t;
    std::vector<std::string> head;
    head.push_back("config");
    for (const std::string &cls : classLabels) {
        head.push_back(cls + " det");
        head.push_back("silent");
        head.push_back("crash");
        head.push_back("limit");
        head.push_back("masked");
    }
    head.push_back("hw-traps");
    head.push_back("sw-checks");
    t.addRow(std::move(head));
    for (size_t c = 0; c < configCount; ++c) {
        std::vector<std::string> row;
        row.push_back(configLabels[c]);
        int hw = 0, sw = 0;
        for (size_t k = 0; k < classCount; ++k) {
            const CampaignCell &cell = this->cell(c, k);
            row.push_back(std::to_string(cell.detected()));
            row.push_back(
                std::to_string(cell.count(Outcome::SilentWrongAnswer)));
            row.push_back(
                std::to_string(cell.count(Outcome::CrashIllegalAccess)));
            row.push_back(std::to_string(cell.count(Outcome::CycleLimit)));
            row.push_back(std::to_string(cell.count(Outcome::Masked)));
            hw += cell.hardwareTraps;
            sw += cell.softwareChecks;
        }
        row.push_back(std::to_string(hw));
        row.push_back(std::to_string(sw));
        t.addRow(std::move(row));
    }
    return t.render();
}

CampaignResult
runCampaign(Engine &engine, const Campaign &campaign)
{
    const size_t nProg = campaign.programs.size();
    const size_t nCfg = campaign.configs.size();
    const size_t nCls = campaign.classes.size();
    MXL_ASSERT(nProg && nCfg && nCls && campaign.trials > 0,
               "empty campaign");

    // ---- goldens: one clean run per (program, config) ----
    std::vector<RunRequest> goldenReqs;
    goldenReqs.reserve(nProg * nCfg);
    for (size_t p = 0; p < nProg; ++p)
        for (size_t c = 0; c < nCfg; ++c) {
            RunRequest req;
            req.source = campaign.programs[p].source;
            req.opts = campaign.configs[c].opts;
            req.maxCycles = campaign.programs[p].maxCycles;
            req.label = strcat("golden/", campaign.programs[p].name, "/",
                               campaign.configs[c].label);
            goldenReqs.push_back(std::move(req));
        }
    std::vector<RunReport> goldens = engine.runGrid(goldenReqs);
    for (const RunReport &g : goldens)
        if (!g.ok())
            fatal(strcat("campaign golden run failed: ", g.label, ": ",
                         g.status.message.empty()
                             ? strcat("stop=",
                                      static_cast<int>(g.result.stop),
                                      " errorCode=", g.result.errorCode)
                             : g.status.message));

    // ---- faulted trials, one grid batch ----
    std::vector<RunRequest> reqs;
    std::vector<TrialRecord> records;
    reqs.reserve(nProg * nCfg * nCls * campaign.trials);
    records.reserve(reqs.capacity());
    for (size_t p = 0; p < nProg; ++p)
        for (size_t c = 0; c < nCfg; ++c)
            for (size_t k = 0; k < nCls; ++k)
                for (int t = 0; t < campaign.trials; ++t) {
                    TrialRecord rec;
                    rec.program = static_cast<int>(p);
                    rec.config = static_cast<int>(c);
                    rec.cls = static_cast<int>(k);
                    rec.trial = t;
                    rec.faultSeed = trialSeed(campaign, static_cast<int>(p),
                                              static_cast<int>(k), t);

                    FaultSpec spec;
                    spec.cls = campaign.classes[k];
                    spec.seed = rec.faultSeed;

                    RunRequest req;
                    req.source = campaign.programs[p].source;
                    req.opts = campaign.configs[c].opts;
                    req.maxCycles = campaign.programs[p].maxCycles;
                    req.deadlineSeconds = campaign.deadlineSeconds;
                    req.label =
                        strcat(campaign.programs[p].name, "/",
                               campaign.configs[c].label, "/",
                               spec.describe(), "/t", t);
                    armFault(req, spec);

                    reqs.push_back(std::move(req));
                    records.push_back(rec);
                }
    std::vector<RunReport> reports = engine.runGrid(reqs);

    // ---- classify ----
    CampaignResult result;
    result.configCount = nCfg;
    result.classCount = nCls;
    for (const CampaignConfigEntry &c : campaign.configs)
        result.configLabels.push_back(c.label);
    for (FaultClass cls : campaign.classes)
        result.classLabels.push_back(faultClassName(cls));
    result.cells.assign(nCfg * nCls, CampaignCell());

    for (size_t i = 0; i < reports.size(); ++i) {
        TrialRecord &rec = records[i];
        const RunReport &golden =
            goldens[static_cast<size_t>(rec.program) * nCfg +
                    static_cast<size_t>(rec.config)];
        rec.outcome = classifyOutcome(reports[i], golden, &rec.channel);
        rec.errorCode = reports[i].result.errorCode;
        rec.faultIndex = reports[i].result.faultIndex;

        CampaignCell &cell = result.cell(static_cast<size_t>(rec.config),
                                         static_cast<size_t>(rec.cls));
        ++cell.byOutcome[static_cast<int>(rec.outcome)];
        if (rec.channel == DetectChannel::HardwareTrap)
            ++cell.hardwareTraps;
        else if (rec.channel == DetectChannel::SoftwareCheck)
            ++cell.softwareChecks;
    }
    result.trials = std::move(records);
    return result;
}

} // namespace mxl
