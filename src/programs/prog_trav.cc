#include "programs/programs.h"

namespace mxl {

/*
 * trav: "a short version of the traverse benchmark; creates and
 * traverses a tree structure; uses structures which are implemented as
 * vectors" (Gabriel).
 *
 * Nodes are 6-slot vectors [id mark visits children parents scratch];
 * the builder wires a deterministic pseudo-random graph and the
 * traverser repeatedly walks it flipping the mark sense, as in the
 * original.
 */
const std::string &
progTrav()
{
    static const std::string src = R"lisp(
;; Structure slots (a vector, like the original's defstruct):
;;   0 id, 1 mark, 2 visits, 3 sons, 4 parents, 5 entry1, 6 entry2
(de node-id (n) (getv n 0))
(de node-mark (n) (getv n 1))
(de node-visits (n) (getv n 2))
(de node-kids (n) (getv n 3))
(de node-parents (n) (getv n 4))
(de node-entry1 (n) (getv n 5))
(de node-entry2 (n) (getv n 6))

(de make-node (id)
  (let ((n (mkvect 7)))
    (putv n 0 id)
    (putv n 1 nil)     ; mark
    (putv n 2 0)       ; visits
    (putv n 3 nil)     ; sons (list)
    (putv n 4 nil)     ; parents (list)
    (putv n 5 0)
    (putv n 6 0)
    n))

(de add-edge (a b)
  (putv a 3 (cons b (node-kids a)))
  (putv b 4 (cons a (node-parents b))))

;; Build n nodes in a vector: a spanning ring plus random chords.
(de build-graph (n extra)
  (let ((nodes (mkvect n)) (i 0))
    (while (lessp i n)
      (putv nodes i (make-node i))
      (setq i (add1 i)))
    (setq i 0)
    (while (lessp i n)
      (add-edge (getv nodes i)
                (getv nodes (remainder (add1 i) n)))
      (setq i (add1 i)))
    (while (greaterp extra 0)
      (let ((a (random n)) (b (random n)))
        (add-edge (getv nodes a) (getv nodes b)))
      (setq extra (sub1 extra)))
    nodes))

;; Depth-first traversal; `sense` flips every pass so no re-init is
;; needed. Each visit touches several structure slots (the original
;; traverse churns its struct fields the same way).
(de traverse (node sense)
  (if (eq (node-mark node) sense)
      nil
      (progn
        (putv node 1 sense)
        (putv node 2 (add1 (node-visits node)))
        (putv node 5 (node-id node))
        (putv node 6 (node-entry1 node))
        (traverse-kids (node-kids node) sense))))

(de traverse-kids (kids sense)
  (while (pairp kids)
    (traverse (car kids) sense)
    (setq kids (cdr kids))))

(de total-visits (nodes n)
  (let ((i 0) (sum 0))
    (while (lessp i n)
      (setq sum (+ sum (node-visits (getv nodes i))))
      (setq i (add1 i)))
    sum))

(de trav-main (nodes-n extra passes)
  (seed-random 777)
  (let ((nodes (build-graph nodes-n extra))
        (sense t))
    (while (greaterp passes 0)
      (traverse (getv nodes (random nodes-n)) sense)
      (setq sense (not sense))
      (setq passes (sub1 passes)))
    (print (total-visits nodes nodes-n))
    (print (node-visits (getv nodes 0)))
    (print (node-entry2 (getv nodes 5)))))
)lisp";
    return src;
}

} // namespace mxl
