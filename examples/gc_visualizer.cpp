/**
 * gc_visualizer: drives the sys-Lisp copying collector with a
 * configurable live-set / garbage ratio and draws semispace occupancy
 * after each collection — the dedgc experiment made visible.
 */

#include <cstdio>

#include "core/run.h"
#include "support/format.h"

using namespace mxl;

namespace {

std::string
bar(double frac, int width = 40)
{
    int n = static_cast<int>(frac * width + 0.5);
    std::string s(static_cast<size_t>(n), '#');
    s += std::string(static_cast<size_t>(width - n), '.');
    return s;
}

} // namespace

int
main()
{
    // Live set of `keep` lists, churning `junk` garbage per round.
    const char *src = R"lisp(
        (de iota (n) (if (zerop n) nil (cons n (iota (sub1 n)))))
        (de sum (l) (if (null l) 0 (+ (car l) (sum (cdr l)))))
        (setq *live* nil)
        (let ((round 0))
          (while (lessp round 40)
            (setq *live* (cons (iota 40) *live*))
            (if (greaterp (length *live*) 12)
                (setq *live* (reverse (cdr (reverse *live*))))
                nil)
            (let ((j 0))
              (while (lessp j 20) (iota 25) (setq j (add1 j))))
            (setq round (add1 round))))
        (let ((tot 0) (l *live*))
          (while (pairp l)
            (setq tot (+ tot (sum (car l))))
            (setq l (cdr l)))
          (print tot))
    )lisp";

    std::printf("Copying-collector visualizer (dedgc's mechanism)\n\n");
    std::printf("%-10s %-10s %-8s %s\n", "semispace", "collections",
                "GC share", "live occupancy after last GC");

    CompilerOptions big;
    big.heapBytes = 4u << 20;
    RunResult base = compileAndRun(src, big, 800'000'000);

    for (uint32_t kb : {128u, 64u, 32u, 16u, 8u, 6u}) {
        CompilerOptions opts;
        opts.heapBytes = kb << 10;
        RunResult r = compileAndRun(src, opts, 800'000'000);
        if (r.stop != StopReason::Halted) {
            std::printf("%6u KiB  heap exhausted (error %lld)\n", kb,
                        static_cast<long long>(r.errorCode));
            continue;
        }
        double share = 100.0 *
            (static_cast<double>(r.stats.total) -
             static_cast<double>(base.stats.total)) /
            static_cast<double>(r.stats.total);
        double occupancy = static_cast<double>(r.heapUsed) /
                           static_cast<double>(opts.heapBytes);
        std::printf("%6u KiB  %8llu  %7s  |%s|\n", kb,
                    static_cast<unsigned long long>(r.gcCount),
                    percent(share).c_str(), bar(occupancy).c_str());
        if (r.output != base.output)
            std::printf("          !! output mismatch\n");
    }

    std::printf("\nSame program, same answers — only the collector "
                "runs more often as the\nsemispaces shrink. The paper's "
                "dedgc pins this share at ~50%%.\n");
    return 0;
}
