#include "analysis/verify.h"

#include <deque>
#include <map>

#include "support/format.h"
#include "support/panic.h"

namespace mxl {

const char *
verifyCodeName(VerifyCode c)
{
    switch (c) {
      case VerifyCode::Ok:                 return "Ok";
      case VerifyCode::MalformedUnit:      return "MalformedUnit";
      case VerifyCode::UnguardedAccess:    return "UnguardedAccess";
      case VerifyCode::GuardWrongRegister: return "GuardWrongRegister";
      case VerifyCode::GuardClobbered:     return "GuardClobbered";
      case VerifyCode::GuardNotDominating: return "GuardNotDominating";
    }
    return "?";
}

std::string
VerifyResult::render() const
{
    if (ok())
        return "";
    return strcat("rejected [", verifyCodeName(code), "] at @", pc, ": ",
                  detail);
}

namespace {

constexpr int kNoTag = -1;

/** How a once-proven fact was lost (rejection-diagnostic telemetry;
 *  best-effort — not part of the convergence criterion). */
enum class Loss : uint8_t
{
    None,
    Join,   ///< fact held on some but not all joined paths
    Killed, ///< the register was overwritten
};

/** Minimal provenance: which check idiom output this register is. */
enum class PKind : uint8_t
{
    None,
    Extract, ///< reg == full tag field of src
    Sxt1,    ///< reg == src << tagBits (first half of the fixnum pair)
    Detag,   ///< reg == src with the tag field cleared
    Slot,    ///< reg mirrors the stack slot at entry-relative `slot`
};

struct VReg
{
    int tag = kNoTag;     ///< exact tag-field value, or kNoTag
    bool byCheck = false; ///< proven by an executed check (not ABI/const)
    Loss lost = Loss::None;
    int lossPc = -1;
    PKind prov = PKind::None;
    Reg src = 0;
    int32_t slot = 0;

    bool
    sameFacts(const VReg &o) const
    {
        return tag == o.tag && byCheck == o.byCheck && prov == o.prov &&
               src == o.src && slot == o.slot;
    }
};

struct VSlot
{
    int tag = kNoTag;
    bool byCheck = false;
};

struct VState
{
    bool present = false;
    VReg regs[32];
    bool spKnown = false;
    int32_t spDelta = 0;
    std::map<int32_t, VSlot> slots;
};

class Verifier
{
  public:
    Verifier(const Program &prog, const TagScheme &scheme,
             const CompilerOptions &opts, const std::vector<int> &roots)
        : prog_(prog), scheme_(scheme), opts_(opts), roots_(roots),
          n_(static_cast<int>(prog.code.size()))
    {
        tagMask_ = (1u << scheme.tagBits()) - 1u;
        high_ = scheme.placement() == TagPlacement::High;
        for (TypeId t : {TypeId::Pair, TypeId::Symbol, TypeId::Vector,
                         TypeId::String})
            pointerTags_ |= 1ull << scheme.pointerTag(t);
    }

    VerifyResult
    run()
    {
        if (!scanStructure())
            return res_;
        solve();
        if (opts_.checking == Checking::Full)
            judgeAll();
        return res_;
    }

  private:
    // --- structure ------------------------------------------------------

    bool
    trapping(Opcode op) const
    {
        return op == Opcode::Sys || op == Opcode::Ldt ||
               op == Opcode::Stt || op == Opcode::Addt ||
               op == Opcode::Subt;
    }

    /** Mark delay slots and check the structural rules the machine's
     *  squash semantics depend on. Independent of analysis/cfg.cc. */
    bool
    scanStructure()
    {
        isSlot_.assign(static_cast<size_t>(n_), false);
        for (int i = 0; i < n_; ++i) {
            if (!isControl(prog_.code[i].op))
                continue;
            if (i + 2 >= n_)
                return reject(VerifyCode::MalformedUnit, i,
                              "delay group truncated by end of program");
            for (int s = i + 1; s <= i + 2; ++s) {
                const Opcode sop = prog_.code[s].op;
                if (isControl(sop) || trapping(sop))
                    return reject(VerifyCode::MalformedUnit, s,
                                  strcat(opcodeName(sop),
                                         " inside a delay slot of @", i));
                isSlot_[s] = true;
            }
            i += 2;
        }
        for (int i = 0; i < n_; ++i) {
            const Instruction &q = prog_.code[i];
            if (!isControl(q.op) || q.op == Opcode::Jr ||
                q.op == Opcode::Jalr)
                continue;
            if (q.target < 0 || q.target >= n_)
                return reject(VerifyCode::MalformedUnit, i,
                              strcat("branch target ", q.target,
                                     " out of range"));
            if (isSlot_[q.target])
                return reject(VerifyCode::MalformedUnit, i,
                              strcat("branch target @", q.target,
                                     " lands inside a delay slot"));
        }
        return true;
    }

    // --- abstract domain ------------------------------------------------

    bool
    isPointerTag(int tag) const
    {
        return tag >= 0 && ((pointerTags_ >> tag) & 1) != 0;
    }

    VState
    entryState() const
    {
        VState s;
        s.present = true;
        s.regs[abi::zero].tag = static_cast<int>(scheme_.primaryTag(0));
        const int symTag =
            static_cast<int>(scheme_.pointerTag(TypeId::Symbol));
        s.regs[abi::treg].tag = symTag;
        s.regs[abi::nilreg].tag = symTag;
        if (high_)
            s.regs[abi::maskreg].tag = 0;
        s.regs[abi::sp].tag = 0;
        s.regs[abi::stkbase].tag = 0;
        s.spKnown = true;
        s.spDelta = 0;
        return s;
    }

    void
    dropProvsOn(VState &s, Reg r) const
    {
        for (auto &v : s.regs)
            if (v.prov != PKind::None && v.prov != PKind::Slot &&
                v.src == r)
                v.prov = PKind::None;
    }

    void
    dropSlotMirrors(VState &s, int32_t off) const
    {
        for (auto &v : s.regs)
            if (v.prov == PKind::Slot && v.slot == off)
                v.prov = PKind::None;
    }

    /** A write to sp by anything but the Addi frame push/pop loses
     *  slot tracking entirely. */
    void
    loseSpTracking(VState &s, Reg rd) const
    {
        if (rd == abi::sp) {
            s.spKnown = false;
            s.slots.clear();
        }
    }

    /** Overwrite @p rd, recording the loss of a proven pointer fact. */
    void
    kill(VState &s, Reg rd, int pc) const
    {
        if (rd == abi::zero)
            return;
        dropProvsOn(s, rd);
        loseSpTracking(s, rd);
        VReg fresh;
        if (s.regs[rd].byCheck && isPointerTag(s.regs[rd].tag)) {
            fresh.lost = Loss::Killed;
            fresh.lossPc = pc;
        } else {
            fresh.lost = s.regs[rd].lost;
            fresh.lossPc = s.regs[rd].lossPc;
        }
        s.regs[rd] = fresh;
    }

    void
    setReg(VState &s, Reg rd, VReg v) const
    {
        if (rd == abi::zero)
            return;
        // A provenance naming the register being written is stale.
        if (v.prov != PKind::None && v.prov != PKind::Slot && v.src == rd)
            v.prov = PKind::None;
        dropProvsOn(s, rd);
        loseSpTracking(s, rd);
        s.regs[rd] = v;
    }

    /** Prove a tag on @p r (and write the fact through a slot mirror). */
    void
    prove(VState &s, Reg r, int tag) const
    {
        if (r == abi::zero)
            return;
        s.regs[r].tag = tag;
        s.regs[r].byCheck = true;
        s.regs[r].lost = Loss::None;
        s.regs[r].lossPc = -1;
        if (s.regs[r].prov == PKind::Slot)
            s.slots[s.regs[r].slot] = VSlot{tag, true};
    }

    void
    apply(VState &s, const Instruction &q, int pc) const
    {
        switch (q.op) {
          case Opcode::Li: {
            VReg v;
            v.tag = static_cast<int>(
                scheme_.primaryTag(static_cast<uint32_t>(q.imm)));
            setReg(s, q.rd, v);
            return;
          }
          case Opcode::Mov: {
            VReg v = s.regs[q.rs];
            v.lost = Loss::None;
            v.lossPc = -1;
            setReg(s, q.rd, v);
            return;
          }
          case Opcode::Addi:
            if (q.rd == abi::sp && q.rs == abi::sp) {
                if (s.spKnown)
                    s.spDelta += static_cast<int32_t>(q.imm);
                return; // sp keeps its tag-0 fact
            }
            if (q.imm == 0) {
                VReg v = s.regs[q.rs];
                v.lost = Loss::None;
                v.lossPc = -1;
                setReg(s, q.rd, v);
                return;
            }
            kill(s, q.rd, pc);
            return;
          case Opcode::And:
            // And with the data-part mask register is a detag — but
            // only while maskreg provably still holds the mask.
            if (high_ && (q.rs == abi::maskreg || q.rt == abi::maskreg) &&
                s.regs[abi::maskreg].tag == 0 &&
                s.regs[abi::maskreg].prov == PKind::None) {
                const Reg other = q.rs == abi::maskreg ? q.rt : q.rs;
                VReg v;
                v.tag = 0; // tag field masked off
                v.prov = PKind::Detag;
                v.src = other;
                setReg(s, q.rd, v);
                return;
            }
            kill(s, q.rd, pc);
            return;
          case Opcode::Andi: {
            const uint32_t imm = static_cast<uint32_t>(q.imm);
            if (!high_ && imm == ~tagMask_ && q.rd != q.rs) {
                VReg v;
                v.tag = 0;
                v.prov = PKind::Detag;
                v.src = q.rs;
                setReg(s, q.rd, v);
                return;
            }
            if (imm == tagMask_ && !high_ && q.rd != q.rs) {
                VReg v;
                v.prov = PKind::Extract;
                v.src = q.rs;
                setReg(s, q.rd, v);
                return;
            }
            kill(s, q.rd, pc);
            return;
          }
          case Opcode::Srli:
            if (high_ && q.imm == static_cast<int64_t>(scheme_.tagShift()) &&
                q.rd != q.rs) {
                VReg v;
                v.prov = PKind::Extract;
                v.src = q.rs;
                setReg(s, q.rd, v);
                return;
            }
            kill(s, q.rd, pc);
            return;
          case Opcode::Slli:
            if (q.imm == static_cast<int64_t>(scheme_.tagBits()) &&
                q.rd != q.rs) {
                VReg v;
                v.prov = PKind::Sxt1;
                v.src = q.rs;
                setReg(s, q.rd, v);
                return;
            }
            kill(s, q.rd, pc);
            return;
          case Opcode::Ld:
            if (q.rs == abi::sp && s.spKnown) {
                const int32_t off =
                    s.spDelta + static_cast<int32_t>(q.imm);
                VReg v;
                auto it = s.slots.find(off);
                if (it != s.slots.end()) {
                    v.tag = it->second.tag;
                    v.byCheck = it->second.byCheck;
                }
                v.prov = PKind::Slot;
                v.slot = off;
                setReg(s, q.rd, v);
                return;
            }
            kill(s, q.rd, pc);
            return;
          case Opcode::Ldt:
            kill(s, q.rd, pc);
            prove(s, q.rs, static_cast<int>(q.timm));
            return;
          case Opcode::St:
          case Opcode::Stt:
            if (q.rs == abi::sp && s.spKnown) {
                const int32_t off =
                    s.spDelta + static_cast<int32_t>(q.imm);
                dropSlotMirrors(s, off);
                s.slots[off] =
                    VSlot{s.regs[q.rt].tag, s.regs[q.rt].byCheck};
                if (q.rt != abi::zero) {
                    s.regs[q.rt].prov = PKind::Slot;
                    s.regs[q.rt].slot = off;
                }
            }
            // Non-sp stores never touch the verified frame's slots
            // (the compiler's stack discipline; docs/ANALYSIS.md).
            if (q.op == Opcode::Stt)
                prove(s, q.rs, static_cast<int>(q.timm));
            return;
          case Opcode::Ori: {
            // Tag insertion onto a clean tag-0 base (tagging a fresh
            // heap address): the result carries exactly imm's tag.
            const uint32_t imm = static_cast<uint32_t>(q.imm);
            const uint32_t fieldMask = tagMask_ << scheme_.tagShift();
            if (imm != 0 && (imm & ~fieldMask) == 0 &&
                s.regs[q.rs].tag == 0) {
                VReg v;
                v.tag = static_cast<int>(scheme_.primaryTag(imm));
                setReg(s, q.rd, v);
                return;
            }
            kill(s, q.rd, pc);
            return;
          }
          case Opcode::Srai:
          default: {
            // Srai completing a sign-extension pair proves nothing the
            // list verifier needs (fixnum facts feed arithmetic checks
            // only), so it and every remaining op just kill their
            // destination.
            const int wr = q.writeReg();
            if (wr >= 0)
                kill(s, static_cast<Reg>(wr), pc);
            return;
          }
        }
    }

    /** Branch-condition refinement on one outgoing direction. */
    void
    refine(VState &s, const Instruction &x, bool taken) const
    {
        switch (x.op) {
          case Opcode::Beqi:
          case Opcode::Bnei: {
            const VReg &v = s.regs[x.rs];
            if (v.prov != PKind::Extract)
                return;
            const bool eqEdge = (x.op == Opcode::Beqi) == taken;
            if (eqEdge)
                prove(s, v.src,
                      static_cast<int>(static_cast<uint32_t>(x.imm) &
                                       tagMask_));
            return;
          }
          case Opcode::Btag:
          case Opcode::Bntag: {
            const bool eqEdge = (x.op == Opcode::Btag) == taken;
            if (eqEdge)
                prove(s, x.rs, static_cast<int>(x.timm));
            return;
          }
          default:
            return;
        }
    }

    /** Caller-visible effect of a call returning. */
    void
    clobber(VState &s, int pc) const
    {
        const VState entry = entryState();
        for (int r = 0; r < 32; ++r) {
            switch (r) {
              case abi::zero:
              case abi::treg:
              case abi::nilreg:
              case abi::maskreg:
              case abi::stkbase:
              case abi::sp:
                if (s.regs[r].prov != PKind::None &&
                    s.regs[r].prov != PKind::Slot)
                    s.regs[r].prov = PKind::None;
                break;
              default:
                kill(s, static_cast<Reg>(r), pc);
                s.regs[r].tag = entry.regs[r].tag;
                break;
            }
        }
        // Slot facts survive: callees only touch frames below the
        // caller's sp, and the GC forwards pointers tag-preservingly.
    }

    // --- join and propagation -------------------------------------------

    /** Join @p src into @p dst; true if dst's *facts* changed (loss
     *  telemetry is carried along but never drives the worklist). */
    bool
    joinInto(VState &dst, const VState &src, int pc) const
    {
        if (!src.present)
            return false;
        if (!dst.present) {
            dst = src;
            return true;
        }
        bool changed = false;
        for (int r = 0; r < 32; ++r) {
            VReg &d = dst.regs[r];
            const VReg &o = src.regs[r];
            VReg m = d;
            if (d.tag != o.tag)
                m.tag = kNoTag;
            m.byCheck = d.byCheck && o.byCheck && m.tag != kNoTag;
            if (!(d.prov == o.prov && d.src == o.src && d.slot == o.slot))
                m.prov = PKind::None;
            const bool dProven = isPointerTag(d.tag) && d.byCheck;
            const bool oProven = isPointerTag(o.tag) && o.byCheck;
            if ((dProven || oProven) &&
                !(isPointerTag(m.tag) && m.byCheck)) {
                // A proof that held on either side but not after the
                // merge was path-dependent — remember where it died.
                m.lost = Loss::Join;
                m.lossPc = pc;
            } else if (m.lost == Loss::None && o.lost != Loss::None) {
                m.lost = o.lost;
                m.lossPc = o.lossPc;
            }
            if (!m.sameFacts(d))
                changed = true;
            d = m;
        }
        if (dst.spKnown && (!src.spKnown || dst.spDelta != src.spDelta)) {
            dst.spKnown = false;
            dst.slots.clear();
            changed = true;
        } else if (dst.spKnown) {
            for (auto it = dst.slots.begin(); it != dst.slots.end();) {
                auto o = src.slots.find(it->first);
                if (o == src.slots.end() ||
                    o->second.tag != it->second.tag) {
                    it = dst.slots.erase(it);
                    changed = true;
                } else {
                    if (it->second.byCheck && !o->second.byCheck) {
                        it->second.byCheck = false;
                        changed = true;
                    }
                    ++it;
                }
            }
        }
        return changed;
    }

    void
    propagate(int pc, const VState &s)
    {
        if (pc < 0 || pc >= n_ || !s.present)
            return;
        if (joinInto(in_[pc], s, pc) && !inWl_[pc]) {
            inWl_[pc] = true;
            wl_.push_back(pc);
        }
    }

    bool
    slotsExecute(const Instruction &x, bool taken) const
    {
        if (!isCondBranch(x.op))
            return true;
        switch (x.annul) {
          case Annul::Never:      return true;
          case Annul::OnTaken:    return !taken;
          case Annul::OnNotTaken: return taken;
        }
        return true;
    }

    /** Step a control-transfer group [pc, pc+2] from @p s0, invoking
     *  @p sink(destPc, state) per outgoing direction (destPc -1 = path
     *  ends) and @p judge(slotPc, state) per executed slot. */
    template <typename Sink, typename Judge>
    void
    stepGroup(int pc, const VState &s0, Sink &&sink, Judge &&judge) const
    {
        const Instruction &x = prog_.code[pc];
        auto runSlots = [&](VState &s, bool taken) {
            if (!slotsExecute(x, taken))
                return;
            for (int si = pc + 1; si <= pc + 2; ++si) {
                judge(si, s);
                apply(s, prog_.code[si], si);
            }
        };
        if (isCondBranch(x.op)) {
            for (bool taken : {true, false}) {
                VState s = s0;
                refine(s, x, taken);
                runSlots(s, taken);
                sink(taken ? x.target : pc + 3, s);
            }
            return;
        }
        VState s = s0;
        apply(s, x, pc); // Jal/Jalr write the link register
        runSlots(s, /*taken=*/true);
        switch (x.op) {
          case Opcode::J:
            sink(x.target, s);
            return;
          case Opcode::Jal:
          case Opcode::Jalr:
            clobber(s, pc);
            sink(pc + 3, s);
            return;
          case Opcode::Jr:
          default:
            sink(-1, s); // return: path ends here
            return;
        }
    }

    void
    solve()
    {
        in_.assign(static_cast<size_t>(n_), VState{});
        inWl_.assign(static_cast<size_t>(n_), false);
        const VState entry = entryState();
        std::vector<int> rootPcs = roots_;
        for (const auto &[name, idx] : prog_.symbols) {
            (void)name;
            rootPcs.push_back(idx);
        }
        for (int r : rootPcs) {
            if (r < 0 || r >= n_ || isSlot_[r])
                continue;
            propagate(r, entry);
        }
        // Exact tags only descend (known -> unknown), slot maps only
        // shrink, so the per-pc lattice is finite and this converges;
        // the budget guards against implementation bugs.
        size_t budget = static_cast<size_t>(n_ + 1) * 4096;
        while (!wl_.empty()) {
            MXL_ASSERT(budget-- > 0,
                       "verifier worklist failed to converge");
            const int pc = wl_.front();
            wl_.pop_front();
            inWl_[pc] = false;
            const VState s0 = in_[pc];
            if (!s0.present)
                continue;
            const Instruction &q = prog_.code[pc];
            if (isControl(q.op)) {
                stepGroup(
                    pc, s0,
                    [&](int dest, const VState &s) { propagate(dest, s); },
                    [&](int, const VState &) {});
                continue;
            }
            if (q.op == Opcode::Sys &&
                (q.imm == static_cast<int64_t>(SysCode::Halt) ||
                 q.imm == static_cast<int64_t>(SysCode::Error)))
                continue; // execution stops
            VState s = s0;
            apply(s, q, pc);
            propagate(pc + 1, s);
        }
    }

    // --- judgment -------------------------------------------------------

    std::string
    pcName(int pc) const
    {
        const auto syms = sortedSymbols(prog_);
        const std::pair<int, std::string> *best = nullptr;
        for (const auto &s : syms) {
            if (s.first > pc)
                break;
            best = &s;
        }
        if (!best)
            return strcat("@", pc);
        if (best->first == pc)
            return best->second;
        return strcat(best->second, "+", pc - best->first);
    }

    bool
    reject(VerifyCode code, int pc, std::string detail)
    {
        if (!res_.ok())
            return false; // keep the first (lowest-pc) rejection
        res_.code = code;
        res_.pc = pc;
        res_.detail = strcat(detail, " [", pcName(pc), "]");
        return false;
    }

    void
    judgeAccess(const VState &s, int pc)
    {
        const Instruction &q = prog_.code[pc];
        if (q.op == Opcode::Ldt || q.op == Opcode::Stt) {
            if (q.ann.cat == CheckCat::List)
                ++res_.accessesTrusted;
            return;
        }
        if ((q.op != Opcode::Ld && q.op != Opcode::St) ||
            q.ann.cat != CheckCat::List)
            return;
        // sp-relative accesses address the frame, not the heap: they
        // are stack-discipline territory (slot spills/reloads — e.g. a
        // hoisted check's slot read carries the check's category), not
        // list accesses needing a pointer-tag guard.
        if (q.rs == abi::sp)
            return;
        const Reg base = q.rs;
        Reg eff = base;
        if (s.regs[base].prov == PKind::Detag)
            eff = s.regs[base].src;
        const VReg &v = s.regs[eff];
        if (isPointerTag(v.tag)) {
            ++res_.accessesProven;
            return;
        }
        if (v.lost == Loss::Killed) {
            reject(VerifyCode::GuardClobbered, pc,
                   strcat("guard on r", int{eff},
                          " was overwritten at @", v.lossPc,
                          " before this access"));
            return;
        }
        if (v.lost == Loss::Join) {
            reject(VerifyCode::GuardNotDominating, pc,
                   strcat("guard on r", int{eff},
                          " does not hold on every path (lost at join "
                          "@", v.lossPc, ")"));
            return;
        }
        for (int r = 0; r < 32; ++r) {
            if (r == int{eff} || r == int{base})
                continue;
            if (s.regs[r].byCheck && isPointerTag(s.regs[r].tag)) {
                reject(VerifyCode::GuardWrongRegister, pc,
                       strcat("base r", int{eff}, " is unproven, but a "
                              "live guard proves r", r,
                              " — guard on the wrong register"));
                return;
            }
        }
        reject(VerifyCode::UnguardedAccess, pc,
               strcat("no tag guard proves base r", int{eff},
                      " on any path to this access"));
    }

    void
    judgeAll()
    {
        for (int pc = 0; pc < n_ && res_.ok(); ++pc) {
            if (isSlot_[pc] || !in_[pc].present)
                continue;
            const Instruction &q = prog_.code[pc];
            if (isControl(q.op)) {
                // Delay slots are judged under the per-direction state
                // they actually execute in (squash-aware).
                stepGroup(
                    pc, in_[pc], [&](int, const VState &) {},
                    [&](int si, const VState &s) { judgeAccess(s, si); });
                continue;
            }
            judgeAccess(in_[pc], pc);
        }
    }

    const Program &prog_;
    const TagScheme &scheme_;
    const CompilerOptions &opts_;
    std::vector<int> roots_;
    const int n_;

    uint32_t tagMask_ = 0;
    bool high_ = false;
    uint64_t pointerTags_ = 0;

    std::vector<bool> isSlot_;
    std::vector<VState> in_;
    std::vector<bool> inWl_;
    std::deque<int> wl_;

    VerifyResult res_;
};

} // namespace

VerifyResult
verifyProgram(const Program &prog, const TagScheme &scheme,
              const CompilerOptions &opts,
              const std::vector<int> &extraRoots)
{
    return Verifier(prog, scheme, opts, extraRoots).run();
}

VerifyResult
verifyUnit(const CompiledUnit &unit)
{
    std::vector<int> roots;
    for (int r : {unit.entry, unit.arithTrap, unit.tagTrap})
        if (r >= 0)
            roots.push_back(r);
    return verifyProgram(unit.prog, *unit.scheme, unit.opts, roots);
}

} // namespace mxl
