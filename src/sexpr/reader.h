/**
 * @file
 * MX-Lisp reader: text -> S-expressions.
 *
 * Supports integers, symbols, strings, lists, dotted pairs, quote ('x),
 * and ';' comments. Symbol names are case-sensitive and lower-case by
 * convention.
 */

#ifndef MXLISP_SEXPR_READER_H_
#define MXLISP_SEXPR_READER_H_

#include <string>
#include <vector>

#include "sexpr/sexpr.h"

namespace mxl {

/** Parse every top-level form in @p text. Throws fatal() on errors. */
std::vector<Sx *> readAll(SxArena &arena, const std::string &text);

/** Parse exactly one form; fatal if none or trailing garbage. */
Sx *readOne(SxArena &arena, const std::string &text);

} // namespace mxl

#endif // MXLISP_SEXPR_READER_H_
