/**
 * Process-isolation tests for fault campaigns (faults/sandbox.h): the
 * sandboxed execution path must produce the same coverage matrix as
 * the in-process path, contain injected child crashes and hangs
 * without losing the parent, classify abandoned culprits from their
 * death evidence, and interoperate with the resume journal. The suite
 * forks real children, so it carries its own ctest label (`sandbox`)
 * and should also be run under -DMXL_SANITIZE=address to check the
 * parent's pipe bookkeeping.
 */

#include <csignal>

#include <gtest/gtest.h>

#ifdef __unix__
#include <unistd.h>
#endif

#include "core/engine.h"
#include "core/experiment.h"
#include "faults/campaign.h"
#include "faults/sandbox.h"
#include "support/json.h"

#include <fstream>
#include <string>
#include <vector>

using namespace mxl;

namespace {

/** Small campaign shared by the equivalence tests: 2 configs x 3
 *  classes x 8 trials of one list-heavy program = 48 trials. */
Campaign
smallCampaign()
{
    Campaign c;
    CampaignProgram rev;
    rev.name = "rev";
    rev.source =
        "(de rev (l acc) (if (null l) acc (rev (cdr l) (cons (car l) acc))))"
        "(de iota (n) (if (eq n 0) (quote ()) (cons n (iota (- n 1)))))"
        "(print (rev (iota 30) (quote ())))";
    c.programs.push_back(rev);
    c.configs = {{"unchecked", lowTagSoftwareOptions(Checking::Off)},
                 {"checked", lowTagSoftwareOptions(Checking::Full)}};
    c.classes = {FaultClass::TagCorrupt, FaultClass::HeapTagCorrupt,
                 FaultClass::StackTagCorrupt};
    c.trials = 8;
    c.seed = 2026;
    c.deadlineSeconds = 10;
    return c;
}

/** Per-trial classification fingerprint, for matrix equality checks. */
std::string
matrixKey(const CampaignResult &r)
{
    std::string s;
    for (const TrialRecord &t : r.trials) {
        s += outcomeName(t.outcome);
        s += '/';
        s += detectChannelName(t.channel);
        s += ';';
    }
    return s;
}

CampaignRunOptions
sandboxOptions()
{
    CampaignRunOptions o;
    o.sandbox.enabled = true;
    o.sandbox.procs = 2;
    o.sandbox.batchTrials = 6; // several batches, several spawns
    o.sandbox.watchdogSeconds = 20;
    o.sandbox.backoffBaseMs = 10; // keep retry tests fast
    o.sandbox.backoffCapMs = 50;
    return o;
}

} // namespace

TEST(Sandbox, SupportedOnThisPlatform)
{
    // The rest of the suite forks; this pins the gate it relies on.
    ASSERT_TRUE(sandboxSupported());
}

TEST(Sandbox, RunSandboxedRoutesPayloadsAndSkipsDoneTrials)
{
    Engine eng(1);
    SandboxJob job;
    job.count = 9;
    job.engine = &eng;
    job.runTrial = [](size_t ordinal, int attempt) {
        return "payload-" + std::to_string(ordinal) + "-" +
               std::to_string(attempt);
    };
    std::vector<std::string> payloads(job.count);
    job.onDone = [&](size_t ordinal, const std::string &payload) {
        payloads[ordinal] = payload;
    };
    job.onAbandoned = [](size_t, bool, int) { FAIL(); };

    std::vector<char> done(job.count, 0);
    done[3] = 1; // pre-marked (e.g. restored from a journal): skipped
    SandboxOptions opts = sandboxOptions().sandbox;
    SandboxStats stats = runSandboxed(job, opts, done);

    EXPECT_GT(stats.spawns, 0);
    EXPECT_EQ(stats.deaths, 0);
    EXPECT_EQ(stats.abandoned, 0);
    EXPECT_FALSE(stats.degraded);
    for (size_t i = 0; i < job.count; ++i) {
        EXPECT_EQ(done[i], 1) << i;
        if (i == 3)
            EXPECT_EQ(payloads[i], ""); // never ran
        else
            EXPECT_EQ(payloads[i],
                      "payload-" + std::to_string(i) + "-0");
    }
}

TEST(Sandbox, CampaignMatrixMatchesInProcess)
{
    Campaign c = smallCampaign();
    Engine e1(2);
    CampaignResult inproc = runCampaign(e1, c);

    Engine e2(2);
    CampaignResult sandboxed = runCampaign(e2, c, sandboxOptions());

    EXPECT_GT(sandboxed.sandbox.spawns, 1);
    EXPECT_EQ(sandboxed.sandbox.deaths, 0);
    EXPECT_EQ(matrixKey(sandboxed), matrixKey(inproc));
    EXPECT_EQ(sandboxed.renderMatrix(), inproc.renderMatrix());
    ASSERT_EQ(sandboxed.trials.size(), inproc.trials.size());
    for (size_t i = 0; i < inproc.trials.size(); ++i) {
        EXPECT_EQ(sandboxed.trials[i].errorCode, inproc.trials[i].errorCode)
            << i;
        EXPECT_EQ(sandboxed.trials[i].cycles, inproc.trials[i].cycles) << i;
    }
}

TEST(Sandbox, ContainsChildCrashAndHangThenConverges)
{
    Campaign c = smallCampaign();
    Engine e1(2);
    CampaignResult inproc = runCampaign(e1, c);

    // Chaos: one trial SIGSEGVs its child and one hangs it, first
    // attempt only — both must classify normally on retry, and the
    // parent must survive both deaths.
    Engine e2(2);
    CampaignRunOptions chaos = sandboxOptions();
    chaos.sandbox.watchdogSeconds = 3;
    chaos.sandbox.childFaultHook = [](size_t ordinal, int attempt) {
        if (attempt > 0)
            return;
        if (ordinal == 5)
            raise(SIGSEGV);
        if (ordinal == 11)
            for (;;)
                sleep(1);
    };
    CampaignResult r = runCampaign(e2, c, chaos);

    EXPECT_GE(r.sandbox.deaths, 2); // the SEGV and the hang-kill
    // >=, not ==: under a sanitizer's slowdown innocent batches can
    // trip the short progress watchdog too; retries absorb those.
    EXPECT_GE(r.sandbox.watchdogKills, 1);
    EXPECT_GT(r.sandbox.requeues, 0);
    EXPECT_EQ(r.sandbox.abandoned, 0);
    EXPECT_FALSE(r.sandbox.degraded);
    EXPECT_EQ(matrixKey(r), matrixKey(inproc));
}

TEST(Sandbox, PersistentCrashIsAbandonedAsItsDeathEvidence)
{
    Campaign c = smallCampaign();
    Engine e1(2);
    CampaignResult inproc = runCampaign(e1, c);

    Engine e2(2);
    CampaignRunOptions opts = sandboxOptions();
    opts.sandbox.maxAttempts = 2;
    // SIGKILL, not SIGSEGV: sanitizer runtimes intercept SEGV and turn
    // the death into a plain exit, which would hide the signal number.
    opts.sandbox.childFaultHook = [](size_t ordinal, int) {
        if (ordinal == 3)
            raise(SIGKILL); // every attempt: a deterministic killer
    };
    CampaignResult r = runCampaign(e2, c, opts);

    // The culprit classifies from its death: a fatal signal is a
    // crash, with the signal number preserved in the error code.
    const TrialRecord &culprit = r.trials[3];
    EXPECT_EQ(culprit.outcome, Outcome::CrashIllegalAccess);
    EXPECT_EQ(culprit.errorCode, -SIGKILL);
    EXPECT_EQ(culprit.channel, DetectChannel::None);
    EXPECT_EQ(culprit.cycles, 0u);
    EXPECT_EQ(r.sandbox.abandoned, 1);
    EXPECT_GE(r.sandbox.deaths, opts.sandbox.maxAttempts);

    // Only the culprit diverges from the in-process matrix.
    ASSERT_EQ(r.trials.size(), inproc.trials.size());
    for (size_t i = 0; i < r.trials.size(); ++i) {
        if (i == 3)
            continue;
        EXPECT_EQ(r.trials[i].outcome, inproc.trials[i].outcome) << i;
        EXPECT_EQ(r.trials[i].channel, inproc.trials[i].channel) << i;
    }
}

TEST(Sandbox, HangExhaustsRetriesThenClassifiesCycleLimit)
{
    // Retry-exhaustion ordering for hangs: the watchdog must kill the
    // hung child once per attempt — maxAttempts kills, then
    // abandonment as CycleLimit (a hang is a budget problem, not a
    // crash).
    Campaign c = smallCampaign();
    c.trials = 2; // 12 trials: keep the two watchdog periods cheap
    Engine e1(2);
    CampaignResult inproc = runCampaign(e1, c);
    Engine eng(2);
    CampaignRunOptions opts = sandboxOptions();
    opts.sandbox.maxAttempts = 2;
    opts.sandbox.watchdogSeconds = 2;
    opts.sandbox.childFaultHook = [](size_t ordinal, int) {
        if (ordinal == 1)
            for (;;)
                sleep(1); // hangs every attempt
    };
    CampaignResult r = runCampaign(eng, c, opts);

    const TrialRecord &culprit = r.trials[1];
    EXPECT_EQ(culprit.outcome, Outcome::CycleLimit);
    EXPECT_EQ(culprit.errorCode, 0);
    EXPECT_EQ(culprit.channel, DetectChannel::None);
    EXPECT_EQ(r.sandbox.watchdogKills, opts.sandbox.maxAttempts);
    EXPECT_EQ(r.sandbox.abandoned, 1);
    ASSERT_EQ(r.trials.size(), inproc.trials.size());
    for (size_t i = 0; i < r.trials.size(); ++i) {
        if (i != 1)
            EXPECT_EQ(r.trials[i].outcome, inproc.trials[i].outcome) << i;
    }
}

TEST(Sandbox, SandboxJournalResumesInProcess)
{
    // The journal is backend-of-execution agnostic: a campaign whose
    // first half ran sandboxed must resume in-process (and vice versa)
    // and converge on the same matrix.
    const std::string path = testing::TempDir() + "sandbox_resume.jsonl";
    std::remove(path.c_str());

    Campaign c = smallCampaign();
    Engine e1(2);
    CampaignRunOptions opts = sandboxOptions();
    opts.journalPath = path;
    CampaignResult full = runCampaign(e1, c, opts);
    EXPECT_GT(full.sandbox.spawns, 0);

    // Keep the header plus the first half of the trial lines.
    std::vector<std::string> lines;
    {
        std::ifstream in(path);
        std::string line;
        while (std::getline(in, line))
            if (!line.empty())
                lines.push_back(line);
    }
    ASSERT_GT(lines.size(), 3u);
    const size_t keep = (lines.size() - 1) / 2;
    {
        std::ofstream out(path, std::ios::trunc);
        for (size_t i = 0; i <= keep; ++i)
            out << lines[i] << "\n";
    }

    Engine e2(2);
    CampaignRunOptions resume; // sandbox disabled: in-process remainder
    resume.journalPath = path;
    resume.resume = true;
    CampaignResult resumed = runCampaign(e2, c, resume);

    EXPECT_EQ(resumed.journaled, keep);
    EXPECT_EQ(resumed.sandbox.spawns, 0);
    EXPECT_EQ(matrixKey(resumed), matrixKey(full));
    EXPECT_EQ(resumed.renderMatrix(), full.renderMatrix());
    std::remove(path.c_str());
}
