/**
 * Check placement vs elimination vs baseline: a three-rung ladder.
 *
 * PR 5's tag-flow analyzer proved some full-checking branches
 * redundant and deleted them (analysis/checkelim.h). The placement
 * engine (analysis/checkplace.h) goes further: it hoists
 * loop-invariant checks to preheaders, lets the slot fact flowing
 * around the back edge make the in-loop copies provably redundant,
 * then removes cross-block dead extract feeders and error paths
 * orphaned by deleted checks. This harness measures all three rungs
 * per benchmark program in the paper's software-checked baseline
 * configuration (High5 tags, Checking::Full, no hardware):
 *
 *   baseline — the golden unit as compiled;
 *   elim     — redundant-check elimination only (PR 5's transform);
 *   place    — the full placement engine (hoist + eliminate + sink).
 *
 * Soundness is checked three ways, not assumed: every transformed run
 * must produce byte-identical output, the same exit value, and the
 * same stop reason as its golden run; every placement-transformed
 * unit must be accepted by the independent load-time verifier
 * (analysis/verify.h) — the engine also verifies transformed units on
 * its own, so a verifier rejection fails the run outright; and each
 * unit is linted with finding counts exported through the metrics
 * registry as mxlint.<program>.{errors,warnings,infos}.
 *
 * Self-gates (the bench fails if placement regresses):
 *   - >=1 loop-invariant hoist on at least 4 of the ten programs;
 *   - total place cycles strictly below total elim cycles;
 *   - verifier accepts every transformed unit.
 *
 * Results land in BENCH_checkelim.json: one grid cell per program
 * with per-rung cycles, hoist counts, and verifier-proven check
 * counts; tools/bench_diff --checks gates on provenChecks and the
 * place-rung cycle totals.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/checkelim.h"
#include "analysis/checkplace.h"
#include "analysis/lint.h"
#include "analysis/verify.h"
#include "bench_export.h"
#include "core/engine.h"
#include "core/experiment.h"
#include "programs/programs.h"
#include "support/json.h"

using namespace mxl;

int
main()
{
    Engine eng;
    CompilerOptions base = baselineOptions(Checking::Full);

    Json grid = Json::array();
    bool allIdentical = true, allReduced = true, lintClean = true;
    bool allVerified = true;
    int programsWithHoists = 0;
    uint64_t goldenTotal = 0, elimTotal = 0, placeTotal = 0;

    std::printf("%-8s %9s %6s %6s %12s %12s %12s %7s\n", "program",
                "checks", "hoist", "sunk", "golden", "elim", "place",
                "place%");
    for (const auto &bp : benchmarkPrograms()) {
        RunRequest req;
        req.source = bp.source;
        req.opts = base;
        req.opts.heapBytes = bp.heapBytes;
        req.exec.maxCycles = bp.maxCycles;
        req.label = bp.name;

        // Lint the cached unit; export finding counts as metrics.
        Engine::CompileOutcome c = eng.compile(req.source, req.opts);
        if (!c.status.ok()) {
            std::printf("FAIL  %s does not compile: %s\n",
                        bp.name.c_str(), c.status.message.c_str());
            return 1;
        }
        LintReport lint = lintUnit(*c.unit);
        const std::string m = "mxlint." + bp.name + ".";
        eng.metrics().counter(m + "errors").inc(
            static_cast<uint64_t>(lint.errors));
        eng.metrics().counter(m + "warnings").inc(
            static_cast<uint64_t>(lint.warnings));
        eng.metrics().counter(m + "infos").inc(
            static_cast<uint64_t>(lint.infos));
        if (lint.errors != 0) {
            lintClean = false;
            std::fputs(lint.render().c_str(), stdout);
        }

        RunReport golden = eng.run(req);
        if (!golden.status.ok()) {
            std::printf("FAIL  %s golden run: %s\n", bp.name.c_str(),
                        golden.status.message.c_str());
            return 1;
        }

        // Rung 2: elimination only.
        ElimStats est;
        RunRequest elim = req;
        elim.hooks.unitTransform =
            [&est](std::shared_ptr<const CompiledUnit> unit) {
                return checkElimTransform(unit, &est);
            };
        RunReport elimRun = eng.run(elim);
        if (!elimRun.status.ok()) {
            std::printf("FAIL  %s elim run: %s\n", bp.name.c_str(),
                        elimRun.status.message.c_str());
            return 1;
        }

        // Rung 3: full placement. Keep the transformed unit so the
        // independent verifier's verdict can be reported here too (the
        // engine already gates on it internally).
        PlaceStats pst;
        std::shared_ptr<const CompiledUnit> placed;
        RunRequest place = req;
        place.hooks.unitTransform =
            [&pst, &placed](std::shared_ptr<const CompiledUnit> unit) {
                placed = checkPlaceTransform(unit, &pst);
                return placed;
            };
        RunReport placeRun = eng.run(place);
        if (!placeRun.status.ok()) {
            std::printf("FAIL  %s place run: %s\n", bp.name.c_str(),
                        placeRun.status.message.c_str());
            return 1;
        }
        VerifyResult ver = placed ? verifyUnit(*placed) : VerifyResult{};
        if (!ver.ok()) {
            allVerified = false;
            std::printf("FAIL  %s verifier: %s\n", bp.name.c_str(),
                        ver.render().c_str());
        }

        const bool identical =
            elimRun.result.output == golden.result.output &&
            elimRun.result.exitValue == golden.result.exitValue &&
            elimRun.result.stop == golden.result.stop &&
            placeRun.result.output == golden.result.output &&
            placeRun.result.exitValue == golden.result.exitValue &&
            placeRun.result.stop == golden.result.stop;
        if (!identical)
            allIdentical = false;

        const uint64_t gCycles = golden.result.stats.total;
        const uint64_t eCycles = elimRun.result.stats.total;
        const uint64_t pCycles = placeRun.result.stats.total;
        if (pCycles >= gCycles)
            allReduced = false;
        if (pst.hoisted > 0)
            ++programsWithHoists;
        goldenTotal += gCycles;
        elimTotal += eCycles;
        placeTotal += pCycles;

        const size_t codeSize = c.unit->prog.code.size();
        const double placePct =
            gCycles ? 100.0 * (static_cast<double>(gCycles) -
                               static_cast<double>(pCycles)) /
                          static_cast<double>(gCycles)
                    : 0.0;
        std::printf("%-8s %4d/%4d %6d %6d %12llu %12llu %12llu %6.2f%%%s\n",
                    bp.name.c_str(), pst.elim.checksEliminated,
                    pst.elim.checksConsidered, pst.hoisted,
                    pst.sunkInstructions,
                    static_cast<unsigned long long>(gCycles),
                    static_cast<unsigned long long>(eCycles),
                    static_cast<unsigned long long>(pCycles), placePct,
                    identical ? "" : "  OUTPUT DIFFERS");

        Json cell = Json::object();
        cell.set("program", bp.name);
        // label + stats.total: the shape obs/bench_compare.h pairs on,
        // so bench_diff tracks the place-rung cycle counts over time.
        cell.set("label", bp.name);
        Json stats = Json::object();
        stats.set("total", static_cast<int64_t>(pCycles));
        cell.set("stats", std::move(stats));
        cell.set("checksConsidered", pst.elim.checksConsidered);
        cell.set("checksEliminated", pst.elim.checksEliminated);
        cell.set("instructionsRemoved", pst.elim.instructionsRemoved);
        cell.set("extractsRemoved", pst.elim.extractsRemoved);
        cell.set("padsRemoved", pst.elim.padsRemoved);
        cell.set("loopsFound", pst.loopsFound);
        cell.set("hoistCandidates", pst.hoistCandidates);
        cell.set("hoists", pst.hoisted);
        cell.set("hoistInstructions", pst.hoistInstructions);
        cell.set("feedersRemoved", pst.feedersRemoved);
        cell.set("sunkInstructions", pst.sunkInstructions);
        cell.set("provenChecks", ver.accessesProven);
        cell.set("verifierAccepts", ver.ok());
        cell.set("codeSize", static_cast<int64_t>(codeSize));
        cell.set("goldenCycles", static_cast<int64_t>(gCycles));
        cell.set("elimCycles", static_cast<int64_t>(eCycles));
        cell.set("placeCycles", static_cast<int64_t>(pCycles));
        cell.set("optimizedCycles", static_cast<int64_t>(pCycles));
        cell.set("cycleReductionPct", placePct);
        cell.set("outputIdentical", identical);
        cell.set("lintErrors", lint.errors);
        cell.set("lintWarnings", lint.warnings);
        grid.push(std::move(cell));
    }

    auto pct = [](uint64_t golden, uint64_t opt) {
        return golden ? 100.0 * (static_cast<double>(golden) -
                                 static_cast<double>(opt)) /
                            static_cast<double>(golden)
                      : 0.0;
    };
    const double elimPct = pct(goldenTotal, elimTotal);
    const double placePct = pct(goldenTotal, placeTotal);
    std::printf("total cycle reduction: elim %.2f%%, place %.2f%%\n",
                elimPct, placePct);

    const bool enoughHoists = programsWithHoists >= 4;
    const bool beatsElim = placeTotal < elimTotal;
    std::printf("%s  transformed output byte-identical to golden on all "
                "programs\n",
                allIdentical ? "PASS" : "FAIL");
    std::printf("%s  placement uses fewer simulated cycles than baseline "
                "on all programs\n",
                allReduced ? "PASS" : "FAIL");
    std::printf("%s  >=1 loop-invariant hoist on >=4 programs (%d/10)\n",
                enoughHoists ? "PASS" : "FAIL", programsWithHoists);
    std::printf("%s  placement beats elimination-only in total cycles\n",
                beatsElim ? "PASS" : "FAIL");
    std::printf("%s  independent verifier accepts every transformed "
                "unit\n",
                allVerified ? "PASS" : "FAIL");
    std::printf("%s  mxlint reports zero errors on every unit\n",
                lintClean ? "PASS" : "FAIL");

    bool wrote = writeBenchJson("checkelim",
                                benchDoc("checkelim", std::move(grid),
                                         &eng));
    return (allIdentical && allReduced && enoughHoists && beatsElim &&
            allVerified && lintClean && wrote)
               ? 0
               : 1;
}
