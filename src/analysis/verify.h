/**
 * @file
 * Load-time tag-discipline verifier: an independent abstract
 * interpreter that re-proves, from nothing but the linked instruction
 * stream, that every list-class memory access in a unit is tag-guarded
 * on every path.
 *
 * This is deliberately NOT shared code with the optimizer stack
 * (analysis/tagflow.h, analysis/checkplace.h): the optimizer is
 * untrusted and its output is re-proven here, so the two cannot share a
 * bug. The verifier is the trusted computing base and is kept simpler
 * than the optimizer on every axis:
 *
 *   - It runs at instruction granularity (no basic-block layer; delay
 *     groups are stepped atomically per branch direction, mirroring
 *     the machine's squash semantics directly).
 *   - Its domain is an *exact* tag per register (known value or
 *     unknown), not the optimizer's tag *bitsets*; plus the minimal
 *     provenance needed to connect the compiler's check idioms to the
 *     values they prove, and the same entry-relative stack-slot facts
 *     the optimizer's soundness argument rests on (docs/ANALYSIS.md).
 *   - It only ever *weakens* facts at joins and kills; there is no
 *     never-taken-edge pruning, no redundancy reasoning, no rewriting.
 *
 * Rejections carry a structured code chosen by *why* the proof failed
 * at the offending access: the guarded fact was overwritten
 * (GuardClobbered, e.g. a check clobbered in a delay slot), the fact
 * held on some but not all paths (GuardNotDominating, e.g. a hoisted
 * check that no longer dominates its use), a live guard proves a
 * different register (GuardWrongRegister), or no guard exists at all
 * (UnguardedAccess).
 */

#ifndef MXLISP_ANALYSIS_VERIFY_H_
#define MXLISP_ANALYSIS_VERIFY_H_

#include <string>
#include <vector>

#include "compiler/options.h"
#include "compiler/unit.h"
#include "isa/instruction.h"
#include "tags/tag_scheme.h"

namespace mxl {

enum class VerifyCode
{
    Ok,
    MalformedUnit,      ///< delay-group/target structure is broken
    UnguardedAccess,    ///< no guard for the access's base on any path
    GuardWrongRegister, ///< a live guard exists, on a different register
    GuardClobbered,     ///< the guarded fact was overwritten before use
    GuardNotDominating, ///< the guard covers only some paths to the use
};

const char *verifyCodeName(VerifyCode c);

struct VerifyResult
{
    VerifyCode code = VerifyCode::Ok;
    int pc = -1;         ///< offending instruction (rejections)
    std::string detail;  ///< human-readable diagnostic

    int accessesProven = 0;  ///< list accesses proven software-guarded
    int accessesTrusted = 0; ///< hardware-checked (Ldt/Stt) accesses

    bool ok() const { return code == VerifyCode::Ok; }
    /** "rejected [Code] at pc: detail" (empty when ok). */
    std::string render() const;
};

/**
 * Verify @p prog under @p scheme / @p opts. Roots are the exported
 * symbols plus @p extraRoots (entry point and trap handlers when
 * verifying an installed unit). Under Checking::Off only the
 * structural rules are enforced (no guards exist to prove).
 */
VerifyResult verifyProgram(const Program &prog, const TagScheme &scheme,
                           const CompilerOptions &opts,
                           const std::vector<int> &extraRoots = {});

/** Verify a compiled unit (roots: entry and installed trap handlers). */
VerifyResult verifyUnit(const CompiledUnit &unit);

} // namespace mxl

#endif // MXLISP_ANALYSIS_VERIFY_H_
