/**
 * @file
 * mxl::Engine — the batch execution API over the (program × options)
 * measurement grid.
 *
 * The paper's experiments, and every bench harness in this repo, walk a
 * grid of (benchmark program, compiler configuration) cells. The Engine
 * turns that walk into a first-class operation:
 *
 *  - a compiled-unit cache keyed by (source, canonicalized
 *    CompilerOptions), so a configuration that appears in several
 *    tables is compiled once;
 *  - a worker thread pool: runGrid() fans requests out across N threads
 *    (simulations share no mutable state, so they are embarrassingly
 *    parallel) and returns reports in deterministic request order with
 *    cycle counts identical to serial execution;
 *  - Status-style error reporting: compile failures come back in
 *    RunReport::status instead of being thrown, so one bad cell does
 *    not abort a 140-cell sweep.
 *
 * Typical use:
 *
 *     mxl::Engine eng;                       // hardware_concurrency workers
 *     std::vector<mxl::RunRequest> grid = ...;
 *     for (const mxl::RunReport &rep : eng.runGrid(grid))
 *         if (rep.ok()) consume(rep.result);
 *
 * The legacy free functions compileAndRun()/runUnit() in core/run.h
 * remain as thin wrappers over Engine::defaultEngine().
 */

#ifndef MXLISP_CORE_ENGINE_H_
#define MXLISP_CORE_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "compiler/options.h"
#include "compiler/unit.h"
#include "core/run.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mxl {

struct TranslatedUnit; // exec/texec.h

/** Outcome classification of an Engine request (before run semantics). */
struct RunStatus
{
    enum class Code
    {
        Ok,            ///< compiled and simulated; see RunResult::stop
        CompileError,  ///< fatal(): bad Lisp source or configuration
        InternalError, ///< panic(): a bug inside mxlisp itself
        Timeout,       ///< RunRequest::deadlineSeconds expired mid-run
    };

    Code code = Code::Ok;
    std::string message; ///< diagnostic text when code != Ok

    bool ok() const { return code == Code::Ok; }
};

/**
 * Which execution backend a request runs on.
 *
 * `Auto` is the default tier policy: use the translated backend when
 * the unit translates and the request carries no hook the translated
 * executor lacks a seam for, otherwise fall back to the interpreter
 * (counted in `engine.backend.fallbacks`, stamped in
 * RunReport::backend). `Interpreter` pins the reference
 * machine/machine.cc path; `Translated` demands the threaded backend
 * and fails the request with InternalError when it cannot run there.
 * Both backends produce byte-identical RunResults for every request
 * the translated tier accepts (tests/test_backend.cc).
 */
enum class Backend : uint8_t
{
    Auto,
    Interpreter,
    Translated,
};

const char *backendName(Backend b);

/**
 * How to execute a cell: budget, deadline, backend tier, and the two
 * run knobs both backends honor. Everything here is supported by both
 * execution tiers — a request whose hooks are empty runs translated
 * under `Auto` whenever its unit translates.
 */
struct ExecPolicy
{
    uint64_t maxCycles = kDefaultMaxCycles;

    /**
     * Per-request wall-clock deadline in seconds; 0 means none. The
     * simulation runs in cycle chunks (both backends use the same
     * chunking) and a cell that overruns comes back with
     * `status.code == Timeout` — one pathological cell cannot stall a
     * campaign. Runs that finish in time are cycle-identical to
     * deadline-free runs.
     */
    double deadlineSeconds = 0;

    /** Backend tier; see Backend. */
    Backend backend = Backend::Auto;

    /**
     * Install the unit's compiled software fallback trap handlers
     * (rt_arithtrap / rt_tagtrap). Campaigns set this false to measure
     * the bare unhandled-trap semantics (machine/machine.h).
     */
    bool installTrapHandlers = true;
};

/**
 * The instrumentation and mutation seams of a request. None of these
 * participate in the compiled-unit cache key — requests that differ
 * only in hooks share a compilation. Every hook except imageMutator
 * needs the interpreter's seams, so setting one makes an `Auto`
 * request fall back (see needsInterpreter()); imageMutator mutates the
 * per-run image copy, which both backends consume identically.
 */
struct Hooks
{
    /**
     * Applied to the freshly expanded pristine image before execution
     * (the cached compiled unit is never touched). This is the
     * fault-injection seam (src/faults/): memory perturbations happen
     * on the per-run copy, so cache hits stay sound. Supported by both
     * backends.
     */
    std::function<void(Memory &, const CompiledUnit &)> imageMutator;

    /** Forwarded to RunControls::machineSetup (register/hook faults).
     *  Interpreter-only: the hook touches a live Machine. */
    std::function<void(Machine &, const CompiledUnit &)> machineSetup;

    /**
     * Pause the run once its cycle count first exceeds this value and
     * hand a MachineSnapshot of the live state (registers, run-time
     * heap, pipeline state) to @p snapshotHook, which may mutate it;
     * the run then resumes from the (mutated) snapshot. 0, or a missing
     * hook, disables the pause. This is the heap-resident fault seam
     * (src/faults/): unlike imageMutator, the hook sees state the
     * program built at run time, not the pristine image.
     * Interpreter-only. See RunControls::pauseAtCycle.
     */
    uint64_t pauseAtCycle = 0;

    /** Forwarded to RunControls::snapshotHook. */
    std::function<void(MachineSnapshot &, const CompiledUnit &)>
        snapshotHook;

    /**
     * Collect the per-PC instruction profile for this cell
     * (RunControls::collectProfile); the histogram comes back in
     * RunReport::result.profile. Interpreter-only: the translated
     * executor keeps per-index counts in a different shape.
     */
    bool collectProfile = false;

    /**
     * Applied to the compiled unit after compilation (or a cache hit)
     * and before the image is expanded: the seam for static rewriters
     * (analysis/checkelim.h runs here). The transform must return a
     * new or unchanged unit — the cached unit itself is shared and
     * immutable; returning null is an InternalError. Interpreter-only:
     * the cached translation describes the untransformed unit.
     */
    std::function<std::shared_ptr<const CompiledUnit>(
        std::shared_ptr<const CompiledUnit>)>
        unitTransform;

    /**
     * Re-prove tag discipline on whatever unitTransform returns before
     * it executes (analysis/verify.h). The transform is untrusted code
     * by design — the independent verifier is the trusted base — so a
     * rewriter bug surfaces as a structured InternalError ("transformed
     * unit rejected by load-time verifier: ...") instead of a silently
     * wrong simulation. On by default; meaningless without a
     * unitTransform. Skipped when the transform returns the cached
     * unit unchanged.
     */
    bool verifyTransformed = true;

    /** True when any hook set here requires the interpreter's seams. */
    bool needsInterpreter() const
    {
        return static_cast<bool>(machineSetup) ||
               static_cast<bool>(unitTransform) || collectProfile ||
               (pauseAtCycle > 0 && static_cast<bool>(snapshotHook));
    }
};

/** One cell of the measurement grid. */
struct RunRequest
{
    std::string source;       ///< MX-Lisp top-level forms
    CompilerOptions opts;
    std::string label;        ///< free-form tag, echoed in the report
    ExecPolicy exec;          ///< budget / deadline / backend tier
    Hooks hooks;              ///< instrumentation and mutation seams
};

/** Everything the engine knows about one executed request. */
struct RunReport
{
    std::string label;       ///< RunRequest::label, echoed back
    RunStatus status;        ///< compile/internal outcome
    RunResult result;        ///< meaningful only when status.ok()
    double wallSeconds = 0;  ///< compile (on miss) + simulation wall time
    bool cacheHit = false;   ///< compiled unit came from the cache

    /** Backend that actually executed the cell (never Auto). */
    Backend backend = Backend::Interpreter;

    /** True when an Auto request wanted the translated tier but ran on
     *  the interpreter; backendNote says why. */
    bool backendFellBack = false;
    std::string backendNote;

    /** Compiled, ran, and halted cleanly. */
    bool ok() const { return status.ok() && result.ok(); }
};

class Engine
{
  public:
    /** Default compiled-unit cache byte budget (trimmed image bytes). */
    static constexpr size_t kDefaultCacheBytes = 256u << 20;

    /**
     * @param threads worker count for runGrid(); 0 means
     *        std::thread::hardware_concurrency(). Workers are started
     *        lazily on the first runGrid() call, so an engine used only
     *        through run() never spawns a thread.
     * @param cacheCapacity maximum number of compiled units kept
     *        (least-recently-used eviction). Cached units hold only the
     *        live prefix of their pristine memory image, so an entry
     *        costs roughly the program's static-data footprint, not the
     *        full simulated address space.
     * @param cacheMaxBytes cap on the *sum of trimmed image bytes* the
     *        cache may hold; eviction is LRU and runs when either bound
     *        is exceeded (the most recent entry always survives, so one
     *        oversized unit still caches). 0 means entry-bounded only.
     */
    explicit Engine(unsigned threads = 0, size_t cacheCapacity = 256,
                    size_t cacheMaxBytes = kDefaultCacheBytes);
    ~Engine();

    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    /** Compile (through the cache) and simulate one request, inline on
     *  the calling thread. Never throws for bad Lisp source; see
     *  RunReport::status. */
    RunReport run(const RunRequest &req);

    /** Per-cell completion callback; see runGrid. */
    using GridProgress =
        std::function<void(size_t index, const RunReport &report)>;

    /**
     * Fan @p reqs out across the worker pool. Reports come back in
     * request order, and each cell's CycleStats is identical to what a
     * serial run() of the same request produces (simulations are
     * per-run state; nothing mutable is shared).
     *
     * A call from inside one of this engine's own workers is detected
     * and returns one InternalError report per request instead of
     * self-deadlocking on the pool.
     *
     * @p progress, when set, is invoked once per cell as it completes,
     * on the worker thread that ran it (completion order, not request
     * order) — the observability hook for long sweeps.
     */
    std::vector<RunReport> runGrid(const std::vector<RunRequest> &reqs,
                                   const GridProgress &progress = {});

    /** Result of a cache-mediated compilation. */
    struct CompileOutcome
    {
        /**
         * The cached unit; null when !status.ok(). Its `memory` member
         * is trimmed to the live image prefix — use Engine::run (which
         * re-expands it) to execute, not runUnit().
         */
        std::shared_ptr<const CompiledUnit> unit;
        RunStatus status;
        bool cacheHit = false;
    };

    /** Compile @p source under @p opts through the cache (no run). */
    CompileOutcome compile(const std::string &source,
                           const CompilerOptions &opts);

    /**
     * Make this engine safe for inline use in a child process created
     * by fork() (the trial sandbox, src/faults/sandbox.h). Call it once
     * in the child, immediately after the fork: it detaches the trace
     * recorder (which lives in, and keeps writing for, the parent) and
     * marks the engine forked so runGrid() refuses instead of blocking
     * on a worker pool whose threads did not survive the fork. run()
     * stays fully usable and keeps the parent's warm compiled-unit
     * cache (copy-on-write). Contract: fork only while no grid is in
     * flight (every cached compile future completed), and leave the
     * child via _exit() so the engine's destructor never runs there.
     */
    void postFork();

    struct CacheStats
    {
        uint64_t hits = 0;    ///< lookups served from the cache
        uint64_t misses = 0;  ///< lookups that triggered a compile
        uint64_t entries = 0; ///< units currently cached
        uint64_t bytes = 0;   ///< sum of cached trimmed image bytes
        uint64_t byteLimit = 0;  ///< configured cap (0 = unbounded)
        uint64_t evictions = 0;  ///< entries evicted over either bound
    };
    CacheStats cacheStats() const;
    void clearCache();

    /** Worker count runGrid() uses. */
    unsigned threadCount() const { return threads_; }

    /**
     * This engine's metrics registry (obs/metrics.h). The engine itself
     * maintains: engine.cache.{hits,misses,evictions} and
     * engine.{compile,run}_micros counters, engine.runs,
     * engine.timeouts (deadline expiries), engine.backend.fallbacks,
     * engine.queue_wait_micros and engine.cell_micros histograms, and
     * one engine.worker.<n>.busy_micros counter per started worker
     * (utilization = busy_micros / grid wall time). Callers (bench
     * harnesses, campaigns) hang their own metrics off the same
     * registry; snapshot() is the export point.
     */
    MetricsRegistry &metrics() { return metrics_; }
    const MetricsRegistry &metrics() const { return metrics_; }

    /**
     * Attach (or detach, with nullptr) a Chrome-trace recorder
     * (obs/trace.h). While attached, every executed request emits a
     * "compile" span (cache misses only) and a "run" span on its
     * worker's track — the run span's category names the backend that
     * executed it ("engine/interpreter" or "engine/translated") — plus
     * a "snapshot" instant at a pauseAtCycle pause. The recorder must outlive all runs made while attached;
     * the pointer itself is read atomically, so attaching around a
     * runGrid() call from the calling thread is safe.
     */
    void setTrace(TraceRecorder *t)
    {
        trace_.store(t, std::memory_order_release);
    }
    TraceRecorder *trace() const
    {
        return trace_.load(std::memory_order_acquire);
    }

    /**
     * Trace track id for the calling thread: 1..N on an engine worker,
     * 0 anywhere else (the inline/run() path). Campaign code uses this
     * to put per-trial instants on the worker that ran the trial.
     */
    static int currentWorkerId();

    /**
     * Canonical cache key for (source, options, backend tier): every
     * CompilerOptions field is serialized in a fixed order, so two
     * option structs that compare field-wise equal always map to the
     * same key. Entries are keyed per backend *tier*: Interpreter
     * requests share one entry, Auto and Translated requests share
     * another (the latter carries the unit's translation alongside the
     * compilation).
     */
    static std::string cacheKey(const std::string &source,
                                const CompilerOptions &opts,
                                Backend backend = Backend::Interpreter);

    /** The process-wide engine behind compileAndRun(). */
    static Engine &defaultEngine();

  private:
    struct Compiled
    {
        std::shared_ptr<const CompiledUnit> unit; ///< trimmed image
        RunStatus status;

        /** Translation for the threaded backend; attempted only for
         *  translated-tier cache entries. Null with transNote set when
         *  the translator refused the unit. */
        std::shared_ptr<const TranslatedUnit> trans;
        std::string transNote;
    };

    struct CacheEntry
    {
        std::string key;
        std::shared_future<Compiled> future;
        size_t bytes = 0; ///< trimmed image bytes; 0 until compiled
    };

    Compiled getOrCompile(const std::string &source,
                          const CompilerOptions &opts, Backend backend,
                          bool *cacheHit);
    RunReport execute(const RunRequest &req);
    void evictOverLimits(); ///< caller holds cacheMu_
    void ensureWorkers();
    void workerLoop(unsigned id);

    const unsigned threads_;
    const size_t cacheCapacity_;
    const size_t cacheMaxBytes_;

    // Observability. The hot-path counters are resolved once here so
    // execute() never takes the registry lock; metrics_ must be
    // declared before the references it seeds.
    MetricsRegistry metrics_;
    Counter &mCacheHits_ = metrics_.counter("engine.cache.hits");
    Counter &mCacheMisses_ = metrics_.counter("engine.cache.misses");
    Counter &mCacheEvictions_ = metrics_.counter("engine.cache.evictions");
    Counter &mCompileMicros_ = metrics_.counter("engine.compile_micros");
    Counter &mTranslateMicros_ =
        metrics_.counter("engine.translate_micros");
    Counter &mRunMicros_ = metrics_.counter("engine.run_micros");
    Counter &mRuns_ = metrics_.counter("engine.runs");
    Counter &mTimeouts_ = metrics_.counter("engine.timeouts");
    Counter &mFallbacks_ = metrics_.counter("engine.backend.fallbacks");
    Histogram &mQueueWait_ =
        metrics_.histogram("engine.queue_wait_micros");
    Histogram &mCellMicros_ = metrics_.histogram("engine.cell_micros");
    std::atomic<TraceRecorder *> trace_{nullptr};

    // Compiled-unit cache: LRU list front = most recent.
    mutable std::mutex cacheMu_;
    std::list<CacheEntry> lru_;
    std::unordered_map<std::string, std::list<CacheEntry>::iterator> cache_;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    uint64_t cacheBytes_ = 0;
    uint64_t evictions_ = 0;

    // Worker pool.
    std::mutex poolMu_;
    std::condition_variable poolCv_;
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    bool stopping_ = false;
    std::atomic<bool> forked_{false}; ///< postFork() was called (child)
};

} // namespace mxl

#endif // MXLISP_CORE_ENGINE_H_
