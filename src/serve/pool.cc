#include "serve/pool.h"

#include "serve/wire.h"
#include "support/format.h"
#include "support/panic.h"

#if defined(__unix__) || defined(__APPLE__)
#define MXL_SERVE_POSIX 1
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#include <cerrno>
#include <cstring>
#endif

#include <chrono>

namespace mxl {

namespace {

using Clock = std::chrono::steady_clock;

int64_t
millisUntil(Clock::time_point when)
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               when - Clock::now())
        .count();
}

} // namespace

/**
 * One pool slot. Lifecycle: Dead --spawn--> Idle <--> Busy, with any
 * abnormal exit returning to Dead plus a backoff gate (notBefore).
 */
struct WorkerPool::Worker
{
    enum class State { Dead, Idle, Busy };

    State state = State::Dead;
    int slot = 0; ///< index in workers_ (the trace-lane namespace)
    int pid = -1;
    int taskFd = -1;   ///< parent -> child task frames (blocking)
    int resultFd = -1; ///< child -> parent result frames (nonblocking)
    FrameReader frames;

    // In-flight task (Busy only).
    uint64_t taskId = 0;
    Clock::time_point watchdog{};
    bool killedByWatchdog = false;

    // Respawn backoff (Dead only).
    int consecutiveDeaths = 0;
    Clock::time_point notBefore{};
};

WorkerPool::WorkerPool(WorkerPoolOptions options, ResultFn onResult,
                       FailureFn onFailure, AuxFn onAux)
    : options_(std::move(options)), onResult_(std::move(onResult)),
      onFailure_(std::move(onFailure)), onAux_(std::move(onAux))
{
    MXL_ASSERT(options_.runCell && onResult_ && onFailure_,
               "WorkerPool needs runCell/onResult/onFailure");
    if (options_.workers < 1)
        options_.workers = 1;
    workers_.resize(static_cast<size_t>(options_.workers));
    for (size_t i = 0; i < workers_.size(); ++i)
        workers_[i].slot = static_cast<int>(i);
}

WorkerPool::~WorkerPool()
{
    shutdown(0);
}

#if MXL_SERVE_POSIX

namespace {

/**
 * Child main: read task frames off the pipe, run each cell, write the
 * result frame back. EOF on the task pipe is the orderly shutdown
 * signal. Exit codes mirror procpool's children: 2 = task machinery
 * threw, 3 = result pipe broke.
 */
[[noreturn]] void
workerChildMain(const WorkerPoolOptions &options, int slot, int taskFd,
                int resultFd)
{
    if (options.childInit)
        options.childInit(slot);
    // The parent enforces deadlines from outside; a worker blocked in
    // read() between tasks must die quietly when the pipe closes.
    ::signal(SIGPIPE, SIG_DFL);
    FrameReader frames;
    std::string payload;
    char buf[4096];
    for (;;) {
        while (frames.next(&payload)) {
            std::string out;
            Json task;
            if (!Json::parse(payload, &task))
                _exit(2);
            const Json *cell = task.find("cell");
            if (!cell)
                _exit(2);
            uint64_t id = 0;
            double deadlineSeconds = 0;
            std::string traceId;
            if (const Json *t = task.find("t"))
                id = t->asUint(0);
            if (const Json *d = task.find("deadlineMs"))
                deadlineSeconds =
                    static_cast<double>(d->asUint(0)) / 1000.0;
            if (const Json *tr = task.find("trace"))
                traceId = tr->str();
            try {
                std::string report =
                    options.runCell(*cell, deadlineSeconds, traceId);
                std::string aux;
                if (options.childCollect) {
                    Json collected = options.childCollect(traceId);
                    if (collected.isObject() && collected.size() > 0)
                        aux = strcat(",\"aux\":", collected.dump());
                }
                out = strcat("{\"t\":", id, aux,
                             ",\"report\":", report, "}");
            } catch (...) {
                _exit(2);
            }
            if (!writeAllFd(resultFd, encodeFrame(out)))
                _exit(3);
        }
        if (frames.error())
            _exit(2);
        ssize_t n = ::read(taskFd, buf, sizeof buf);
        if (n == 0)
            _exit(0); // parent closed the task pipe: drain complete
        if (n < 0) {
            if (errno == EINTR)
                continue;
            _exit(2);
        }
        frames.feed(buf, static_cast<size_t>(n));
    }
}

} // namespace

bool
WorkerPool::spawn(Worker &w)
{
    if (options_.disableFork) {
        ++stats_.spawnFailures;
        ++consecutiveSpawnFailures_;
        return false;
    }
    int down[2]; // parent -> child
    int up[2];   // child -> parent
    if (::pipe(down) != 0) {
        ++stats_.spawnFailures;
        ++consecutiveSpawnFailures_;
        return false;
    }
    if (::pipe(up) != 0) {
        ::close(down[0]);
        ::close(down[1]);
        ++stats_.spawnFailures;
        ++consecutiveSpawnFailures_;
        return false;
    }
    pid_t pid = ::fork();
    if (pid < 0) {
        ::close(down[0]);
        ::close(down[1]);
        ::close(up[0]);
        ::close(up[1]);
        ++stats_.spawnFailures;
        ++consecutiveSpawnFailures_;
        return false;
    }
    if (pid == 0) {
        ::close(down[1]);
        ::close(up[0]);
        workerChildMain(options_, w.slot, down[0], up[1]);
    }
    ::close(down[0]);
    ::close(up[1]);
    ::fcntl(up[0], F_SETFL, O_NONBLOCK);
    w.state = Worker::State::Idle;
    w.pid = pid;
    w.taskFd = down[1];
    w.resultFd = up[0];
    w.frames = FrameReader();
    w.killedByWatchdog = false;
    ++stats_.spawns;
    if (stats_.spawns > options_.workers)
        ++stats_.respawns;
    consecutiveSpawnFailures_ = 0;
    return true;
}

void
WorkerPool::killWorker(Worker &w)
{
    if (w.pid > 0)
        ::kill(w.pid, SIGKILL);
}

/**
 * A worker's result pipe hit EOF (or the watchdog fired): collect the
 * exit evidence, fail any in-flight task, and gate the slot's respawn
 * behind exponential backoff.
 */
void
WorkerPool::reap(Worker &w, bool viaWatchdog)
{
    if (w.pid > 0) {
        int status = 0;
        ::waitpid(w.pid, &status, 0);
        int termSignal =
            WIFSIGNALED(status) ? WTERMSIG(status) : 0;
        bool clean = WIFEXITED(status) && WEXITSTATUS(status) == 0;
        bool hadTask = w.state == Worker::State::Busy;
        if (hadTask || !clean)
            ++stats_.deaths;
        if (viaWatchdog || w.killedByWatchdog)
            ++stats_.hangKills;
        if (hadTask)
            onFailure_(w.taskId, viaWatchdog || w.killedByWatchdog,
                       termSignal);
    }
    if (w.taskFd >= 0)
        ::close(w.taskFd);
    if (w.resultFd >= 0)
        ::close(w.resultFd);
    w.taskFd = w.resultFd = -1;
    w.pid = -1;
    w.state = Worker::State::Dead;
    ++w.consecutiveDeaths;
    w.notBefore =
        Clock::now() + std::chrono::milliseconds(backoffMillis(
                           options_.backoffBaseMs, options_.backoffCapMs,
                           w.consecutiveDeaths));
}

void
WorkerPool::start()
{
    if (shutdown_)
        return;
    for (Worker &w : workers_) {
        if (!spawn(w) &&
            consecutiveSpawnFailures_ >= options_.maxSpawnFailures) {
            breakerOpen_ = true;
            stats_.breakerOpen = true;
            break;
        }
    }
}

bool
WorkerPool::dispatch(uint64_t taskId, const std::string &cellJson,
                     double deadlineSeconds, const std::string &traceId,
                     int *slotOut)
{
    if (breakerOpen_ || shutdown_)
        return false;
    for (Worker &w : workers_) {
        if (w.state != Worker::State::Idle)
            continue;
        double watchdogSeconds =
            (deadlineSeconds > 0 ? deadlineSeconds
                                 : options_.defaultTaskSeconds) +
            static_cast<double>(options_.watchdogGraceMs) / 1000.0;
        uint64_t deadlineMs = deadlineSeconds > 0
                                  ? static_cast<uint64_t>(
                                        deadlineSeconds * 1000.0)
                                  : 0;
        std::string trace =
            traceId.empty() ? std::string()
                            : strcat(",\"trace\":", Json(traceId).dump());
        std::string frame = encodeFrame(
            strcat("{\"t\":", taskId, ",\"deadlineMs\":", deadlineMs,
                   trace, ",\"cell\":", cellJson, "}"));
        // At most one task is in flight per worker and the child reads
        // between tasks, so this blocking write cannot deadlock; a
        // write failure means the child died and EOF handling follows.
        if (!writeAllFd(w.taskFd, frame)) {
            reap(w, /*viaWatchdog=*/false);
            continue;
        }
        w.state = Worker::State::Busy;
        w.taskId = taskId;
        w.killedByWatchdog = false;
        w.watchdog = Clock::now() +
                     std::chrono::milliseconds(static_cast<int64_t>(
                         watchdogSeconds * 1000.0));
        if (slotOut != nullptr)
            *slotOut = w.slot;
        return true;
    }
    return false;
}

void
WorkerPool::collectFds(std::vector<struct pollfd> &out) const
{
    for (const Worker &w : workers_)
        if (w.resultFd >= 0)
            out.push_back({w.resultFd, POLLIN, 0});
}

void
WorkerPool::onReadable()
{
    for (Worker &w : workers_) {
        if (w.resultFd < 0)
            continue;
        char buf[4096];
        bool eof = false;
        for (;;) {
            ssize_t n = ::read(w.resultFd, buf, sizeof buf);
            if (n > 0) {
                w.frames.feed(buf, static_cast<size_t>(n));
                continue;
            }
            if (n == 0)
                eof = true;
            else if (errno == EINTR)
                continue;
            break; // EAGAIN (no more data) or EOF or error
        }
        std::string payload;
        while (w.frames.next(&payload)) {
            uint64_t id = w.taskId;
            std::string report;
            const Json *aux = nullptr;
            Json env;
            if (Json::parse(payload, &env)) {
                if (const Json *t = env.find("t"))
                    id = t->asUint(id);
                if (const Json *rep = env.find("report"))
                    report = rep->dump();
                aux = env.find("aux");
            }
            if (w.state == Worker::State::Busy && id == w.taskId) {
                w.state = Worker::State::Idle;
                w.consecutiveDeaths = 0;
                // Relay first: merged metrics and imported spans must
                // be visible before the report is delivered.
                if (aux != nullptr && onAux_)
                    onAux_(w.slot, *aux);
                if (!report.empty())
                    onResult_(id, report);
                else
                    onFailure_(id, /*hang=*/false, /*termSignal=*/0);
            }
        }
        if (w.frames.error() && w.state != Worker::State::Dead) {
            killWorker(w);
            reap(w, /*viaWatchdog=*/false);
            continue;
        }
        if (eof)
            reap(w, /*viaWatchdog=*/false);
    }
}

void
WorkerPool::tick()
{
    if (shutdown_)
        return;
    Clock::time_point now = Clock::now();
    for (Worker &w : workers_) {
        if (w.state == Worker::State::Busy && now >= w.watchdog &&
            !w.killedByWatchdog) {
            // Presumed hung: SIGKILL now; the EOF on its result pipe
            // routes through reap() with the hang evidence.
            w.killedByWatchdog = true;
            killWorker(w);
        }
        if (w.state == Worker::State::Dead && !breakerOpen_ &&
            now >= w.notBefore) {
            if (!spawn(w) &&
                consecutiveSpawnFailures_ >= options_.maxSpawnFailures) {
                breakerOpen_ = true;
                stats_.breakerOpen = true;
            }
        }
    }
}

int
WorkerPool::nextDeadlineMs(int cap) const
{
    int64_t best = cap;
    for (const Worker &w : workers_) {
        int64_t ms = -1;
        if (w.state == Worker::State::Busy)
            ms = millisUntil(w.watchdog);
        else if (w.state == Worker::State::Dead && !breakerOpen_ &&
                 !shutdown_)
            ms = millisUntil(w.notBefore);
        else
            continue;
        if (ms < 0)
            ms = 0;
        if (ms < best)
            best = ms;
    }
    return static_cast<int>(best);
}

std::vector<int>
WorkerPool::workerPids() const
{
    std::vector<int> pids;
    for (const Worker &w : workers_)
        if (w.pid > 0)
            pids.push_back(w.pid);
    return pids;
}

void
WorkerPool::shutdown(int waitMs)
{
    if (shutdown_)
        return;
    shutdown_ = true;
    // Close task pipes: idle workers exit on EOF immediately; busy
    // workers finish their task first (their result still streams).
    for (Worker &w : workers_) {
        if (w.taskFd >= 0)
            ::close(w.taskFd);
        w.taskFd = -1;
    }
    Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(waitMs);
    for (;;) {
        std::vector<struct pollfd> fds;
        collectFds(fds);
        if (fds.empty())
            break;
        int64_t remaining = millisUntil(deadline);
        if (remaining < 0)
            remaining = 0;
        int rc = ::poll(fds.data(), fds.size(),
                        static_cast<int>(remaining > 100 ? 100
                                                         : remaining));
        if (rc < 0 && errno != EINTR)
            break;
        onReadable();
        if (Clock::now() >= deadline)
            break;
    }
    // Stragglers did not finish within the drain bound: kill them and
    // report their tasks as hangs so no request is left dangling.
    for (Worker &w : workers_) {
        if (w.pid > 0) {
            bool busy = w.state == Worker::State::Busy;
            if (busy)
                w.killedByWatchdog = true;
            killWorker(w);
            reap(w, /*viaWatchdog=*/busy);
        }
    }
}

bool
WorkerPool::degraded() const
{
    return breakerOpen_;
}

#else // !MXL_SERVE_POSIX

bool
WorkerPool::spawn(Worker &)
{
    return false;
}

void
WorkerPool::reap(Worker &, bool)
{
}

void
WorkerPool::killWorker(Worker &)
{
}

void
WorkerPool::start()
{
    breakerOpen_ = true;
    stats_.breakerOpen = true;
}

bool
WorkerPool::dispatch(uint64_t, const std::string &, double,
                     const std::string &, int *)
{
    return false;
}

void
WorkerPool::collectFds(std::vector<struct pollfd> &) const
{
}

void
WorkerPool::onReadable()
{
}

void
WorkerPool::tick()
{
}

int
WorkerPool::nextDeadlineMs(int cap) const
{
    return cap;
}

std::vector<int>
WorkerPool::workerPids() const
{
    return {};
}

void
WorkerPool::shutdown(int)
{
    shutdown_ = true;
}

bool
WorkerPool::degraded() const
{
    return true;
}

#endif // MXL_SERVE_POSIX

int
WorkerPool::idleWorkers() const
{
    int n = 0;
    for (const Worker &w : workers_)
        if (w.state == Worker::State::Idle)
            ++n;
    return n;
}

int
WorkerPool::busyWorkers() const
{
    int n = 0;
    for (const Worker &w : workers_)
        if (w.state == Worker::State::Busy)
            ++n;
    return n;
}

} // namespace mxl
