#include "machine/cycle_stats.h"

#include <sstream>

#include "support/format.h"

namespace mxl {

double
CycleStats::pctPurpose(Purpose p, bool fromCheckingOnly) const
{
    if (total == 0)
        return 0;
    int i = static_cast<int>(p);
    uint64_t c = fromCheckingOnly ? byPurpose[i][1]
                                  : byPurpose[i][0] + byPurpose[i][1];
    return 100.0 * static_cast<double>(c) / static_cast<double>(total);
}

std::string
CycleStats::summary() const
{
    std::ostringstream os;
    os << "cycles " << total << "  instructions " << instructions << "\n";
    for (int p = 0; p < numPurposes; ++p) {
        uint64_t c = byPurpose[p][0] + byPurpose[p][1];
        if (!c)
            continue;
        os << "  " << padRight(purposeName(static_cast<Purpose>(p)), 11)
           << padLeft(strcat(c), 12) << "  ("
           << percent(100.0 * static_cast<double>(c) /
                      static_cast<double>(total ? total : 1))
           << ")\n";
    }
    os << "  and " << andOps << "  move " << moveOps << "  noop " << noops
       << "  squashed " << squashed << "  stalls " << loadStalls << "\n";
    return os.str();
}

} // namespace mxl
