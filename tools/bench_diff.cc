/**
 * @file
 * bench_diff — compare two BENCH_*.json exports cell by cell.
 *
 *     bench_diff [--threshold PCT] BEFORE.json AFTER.json
 *
 * Pairs grid cells by label and prints each one's simulated-cycle delta
 * (stats.total — deterministic per commit, unlike wall time), then a
 * verdict against the regression threshold (default 0%: any cycle
 * increase fails). Exit status: 0 when no cell regressed beyond the
 * threshold, 1 when one did, 2 on usage or input errors — so CI can
 * gate on `bench_diff baseline.json current.json`.
 *
 * Documents that carry an engine metrics snapshot are also checked for
 * static-verifier regressions: any "mxlint.<unit>.errors" counter that
 * increased (or appeared nonzero) between BEFORE and AFTER fails the
 * diff, independent of the cycle threshold.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/bench_compare.h"

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: bench_diff [--threshold PCT] BEFORE.json "
                 "AFTER.json\n");
    return 2;
}

bool
loadJson(const std::string &path, mxl::Json *out)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "bench_diff: cannot open %s\n", path.c_str());
        return false;
    }
    std::ostringstream text;
    text << in.rdbuf();
    if (!mxl::Json::parse(text.str(), out)) {
        std::fprintf(stderr, "bench_diff: %s is not valid JSON\n",
                     path.c_str());
        return false;
    }
    return true;
}

/** "mxlint.<unit>.errors" counters from a doc's metrics snapshot. */
std::vector<std::pair<std::string, uint64_t>>
lintErrorCounters(const mxl::Json &doc)
{
    std::vector<std::pair<std::string, uint64_t>> out;
    const mxl::Json *metrics = doc.find("metrics");
    const mxl::Json *counters = metrics ? metrics->find("counters") : nullptr;
    if (!counters || !counters->isObject())
        return out;
    for (size_t i = 0; i < counters->size(); ++i) {
        const auto &[name, value] = counters->entry(i);
        if (name.rfind("mxlint.", 0) == 0 &&
            name.size() > 7 + 7 &&
            name.compare(name.size() - 7, 7, ".errors") == 0)
            out.emplace_back(name, value.asUint());
    }
    return out;
}

/**
 * Flag every mxlint error counter that increased (or appeared nonzero)
 * in @p after. Prints one line per flagged counter; true when any was
 * flagged.
 */
bool
diffLintErrors(const mxl::Json &before, const mxl::Json &after)
{
    const auto b = lintErrorCounters(before);
    const auto a = lintErrorCounters(after);
    auto beforeValue = [&](const std::string &name) -> uint64_t {
        for (const auto &kv : b)
            if (kv.first == name)
                return kv.second;
        return 0;
    };
    bool flagged = false;
    for (const auto &[name, count] : a) {
        const uint64_t was = beforeValue(name);
        if (count > was) {
            std::printf("LINT  %s: %llu -> %llu error(s) — new "
                        "tag-discipline violations\n",
                        name.c_str(),
                        static_cast<unsigned long long>(was),
                        static_cast<unsigned long long>(count));
            flagged = true;
        }
    }
    return flagged;
}

} // namespace

int
main(int argc, char **argv)
{
    double thresholdPct = 0.0;
    std::string paths[2];
    int nPaths = 0;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--threshold") {
            if (++i >= argc)
                return usage();
            char *end = nullptr;
            thresholdPct = std::strtod(argv[i], &end);
            if (!end || *end != '\0')
                return usage();
        } else if (nPaths < 2) {
            paths[nPaths++] = arg;
        } else {
            return usage();
        }
    }
    if (nPaths != 2)
        return usage();

    mxl::Json before, after;
    if (!loadJson(paths[0], &before) || !loadJson(paths[1], &after))
        return 2;
    std::vector<mxl::BenchDelta> probe;
    if (!mxl::extractBenchCells(before, &probe)) {
        std::fprintf(stderr, "bench_diff: %s has no bench grid\n",
                     paths[0].c_str());
        return 2;
    }
    probe.clear();
    if (!mxl::extractBenchCells(after, &probe)) {
        std::fprintf(stderr, "bench_diff: %s has no bench grid\n",
                     paths[1].c_str());
        return 2;
    }

    mxl::BenchComparison cmp = mxl::compareBenchJson(before, after);
    bool failed = false;
    std::fputs(mxl::renderComparison(cmp, thresholdPct, &failed).c_str(),
               stdout);
    if (diffLintErrors(before, after))
        failed = true;
    return failed ? 1 : 0;
}
