/**
 * Reproduces Table 1: percentage increase in execution time when full
 * run-time checking is added, per program, split into the arith /
 * vector / list checking categories.
 *
 * This harness is also the observability showcase: every cell runs with
 * the instruction profiler attached (per-PC cycle histograms, checked
 * here against the CycleStats totals on all ten programs), the
 * symbolized "who pays the tag-checking tax" attribution is printed for
 * a representative program, the engine's metrics registry and a Chrome
 * trace of the grid are exported, and the whole measurement lands in
 * BENCH_table1.json (validated through support/json.h's parser).
 */

#include <algorithm>
#include <cstdio>

#include "bench_export.h"
#include "core/engine.h"
#include "core/experiment.h"
#include "core/paper.h"
#include "core/report.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "support/stats.h"
#include "support/format.h"
#include "support/table.h"

using namespace mxl;

namespace {

/** Sum of per-cell wall times for one (warm-cache) run of @p grid. */
double
gridComputeSeconds(Engine &eng, std::vector<RunRequest> grid,
                   bool profiled)
{
    for (RunRequest &req : grid) {
        req.hooks.collectProfile = profiled;
        // Profiled cells fall back to the interpreter (the translated
        // backend has no per-PC seam), so pin the interpreter on both
        // sides — this measures the profiler, not the backend.
        req.exec.backend = Backend::Interpreter;
    }
    double sum = 0;
    for (const RunReport &rep : eng.runGrid(grid))
        sum += rep.wallSeconds;
    return sum;
}

} // namespace

int
main()
{
    std::printf("Table 1: %% increase in execution time when run-time "
                "checking is added\n");
    std::printf("(measured on mxlisp; paper values in parentheses)\n\n");

    Engine eng;
    TraceRecorder trace;
    eng.setTrace(&trace);

    std::vector<RunRequest> reqs;
    std::vector<RunReport> reports;
    auto ms = measureAll(eng, baselineOptions(Checking::Off), &reqs,
                         &reports, /*collectProfile=*/true);

    TextTable t;
    t.addRow({"program", "arith", "vector", "list", "total",
              "(paper total)"});
    std::vector<double> totals;
    for (size_t i = 0; i < ms.size(); ++i) {
        auto r = table1Row(ms[i]);
        const auto &p = paper::table1()[i];
        t.addRow({r.program, fixed(r.arith, 2), fixed(r.vector, 2),
                  fixed(r.list, 2), fixed(r.total, 2),
                  strcat("(", fixed(p.total, 2), ")")});
        totals.push_back(r.total);
    }
    t.addRule();
    t.addRow({"average", "", "", "", fixed(mean(totals), 2),
              strcat("(", fixed(paper::table1Average, 2), ")")});
    std::printf("%s\n", t.render().c_str());

    std::printf("shape checks:\n");
    std::printf("  checking slows every program ........ %s\n",
                minOf(totals) > 0 ? "yes" : "NO");
    std::printf("  list checks dominate most programs .. (see rows)\n");
    std::printf("  opt & trav are the vector-heavy pair, rat the "
                "arith-heavy one\n\n");

    int failures = 0;
    auto check = [&](bool ok, const std::string &what) {
        std::printf("%s  %s\n", ok ? "PASS" : "FAIL", what.c_str());
        if (!ok)
            ++failures;
    };

    // ---- profiler invariants on every cell (20 = ten programs × 2) ----
    const size_t stride = ms.size();
    bool cyclesExact = true, issuesExact = true, attribExact = true;
    Json attribution = Json::array();
    for (size_t i = 0; i < reports.size(); ++i) {
        const RunResult &r = reports[i].result;
        cyclesExact = cyclesExact && r.profile &&
                      r.profile->totalCycles() == r.stats.total;
        issuesExact = issuesExact && r.profile &&
                      r.profile->totalExecuted() == r.stats.instructions;
        if (!r.profile)
            continue;
        // Symbolized attribution must conserve the same total. The
        // compile is a cache hit — the grid above already compiled it.
        auto c = eng.compile(reqs[i].source, reqs[i].opts);
        auto funcs = symbolize(c.unit->prog, *r.profile);
        uint64_t funcCycles = 0;
        for (const FunctionProfile &f : funcs)
            funcCycles += f.cycles;
        attribExact = attribExact && funcCycles == r.stats.total;
        if (i >= stride) { // the checking-full half
            Json entry = Json::object();
            entry.set("program", reports[i].label);
            entry.set("functions", functionProfileJson(funcs));
            attribution.push(std::move(entry));
        }
    }
    check(cyclesExact, "per-PC cycle histograms sum exactly to "
                       "CycleStats totals (all 20 cells)");
    check(issuesExact, "per-PC issue counts sum exactly to the "
                       "instruction counts");
    check(attribExact, "per-function attribution conserves every cycle");

    // ---- who pays the tag-checking tax (symbolized, boyer/full) ----
    {
        size_t boyer = stride;
        for (size_t i = stride; i < reports.size(); ++i)
            if (reports[i].label == "full/boyer")
                boyer = i;
        auto c = eng.compile(reqs[boyer].source, reqs[boyer].opts);
        auto funcs = symbolize(c.unit->prog, *reports[boyer].result.profile);
        std::printf("\ntag-checking tax, boyer with full checking "
                    "(top 8 functions by checking cycles):\n%s\n",
                    renderCheckingTax(funcs, 8).c_str());
    }

    // ---- profiling overhead on the same warm-cache grid ----
    {
        double unprofiled = 1e99, profiled = 1e99;
        for (int rep = 0; rep < 3; ++rep) {
            unprofiled =
                std::min(unprofiled, gridComputeSeconds(eng, reqs, false));
            profiled =
                std::min(profiled, gridComputeSeconds(eng, reqs, true));
        }
        double pct = 100.0 * (profiled - unprofiled) / unprofiled;
        check(profiled <= unprofiled * 1.10,
              strcat("profiling overhead within 10% (", fixed(pct, 1),
                     "% on ", fixed(unprofiled, 2), "s of simulation)"));
    }

    // ---- machine-readable export ----
    Json doc = benchDoc("table1", gridJson(reqs, reports), &eng);
    doc.set("attribution", std::move(attribution));
    if (!writeBenchJson("table1", doc))
        ++failures;
    eng.setTrace(nullptr);
    if (!writeBenchTrace("table1", trace))
        ++failures;

    return failures == 0 ? 0 : 1;
}
