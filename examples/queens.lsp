;; Eight queens, for the lisp_runner example:
;;
;;   build/examples/lisp_runner examples/queens.lsp
;;   build/examples/lisp_runner --scheme low3 --check examples/queens.lsp
;;
;; Boards are lists of column numbers, one per placed row.

(de safe? (col placed dist)
  (cond ((null placed) t)
        ((eqn (car placed) col) nil)
        ((eqn (abs (- (car placed) col)) dist) nil)
        (t (safe? col (cdr placed) (add1 dist)))))

(de place (n placed size)
  (if (eqn n size)
      1
      (let ((col 0) (count 0))
        (while (lessp col size)
          (if (safe? col placed 1)
              (setq count (+ count (place (add1 n)
                                          (cons col placed)
                                          size)))
              nil)
          (setq col (add1 col)))
        count)))

(de queens (size) (place 0 nil size))

(print (queens 6))
(print (queens 7))
(print (queens 8))
