/**
 * @file
 * Chrome trace-event export: per-worker spans of an engine grid or
 * fault campaign, loadable in chrome://tracing or Perfetto.
 *
 * The recorder collects complete ('X') and instant ('i') events with
 * microsecond timestamps relative to its own epoch and serializes them
 * as the trace-event JSON array format — each event an object with at
 * least {name, ph, ts, pid, tid} — through support/json.h, so the file
 * both loads in the standard viewers and round-trips through our own
 * parser (the bench harnesses' acceptance path relies on this).
 *
 * Lanes: every event carries a *lane*, serialized as the Chrome
 * `pid`. A recorder stamps its current lane (default 1) on each event
 * it records, so recorders living in different processes — the served
 * engine's forked workers — keep their events on distinct Perfetto
 * process tracks after merging, even though their thread ids (engine
 * worker indices, 0..N in every process) collide. setLane() picks the
 * lane, nameLane() attaches a human-readable process_name metadata
 * record, and drainJson()/importJson() move events across the fork
 * boundary: the child drains its recorder into the result-pipe
 * payload, the parent imports the events verbatim (lanes, tids and
 * trace ids intact) into the service-wide recorder. CLOCK_MONOTONIC
 * is system-wide on Linux, so child timestamps recorded against a
 * fork-inherited epoch merge onto the parent timeline directly;
 * alignEpoch() pins two recorders to the same epoch explicitly.
 *
 * Threading: record from any thread; a mutex guards the event vector.
 * Events are sorted by timestamp at serialization time, so completion-
 * order recording from a worker pool still yields a monotone trace.
 * Recording costs a steady_clock read plus a short critical section —
 * fine at grid-cell granularity (events per cell, not per simulated
 * instruction).
 *
 * Attach a recorder to an engine with Engine::setTrace(); see
 * docs/OBSERVABILITY.md for the span vocabulary (compile / run /
 * snapshot / trial) and how to open a trace in Perfetto.
 */

#ifndef MXLISP_OBS_TRACE_H_
#define MXLISP_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "support/json.h"

namespace mxl {

class TraceRecorder
{
  public:
    TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}

    /** Microseconds since this recorder's construction. */
    uint64_t nowMicros() const;

    /**
     * The Perfetto process track (`pid`) stamped on events recorded
     * from now on. Default 1. The serve layer uses 1 for the server
     * process and 2 + worker-slot inside each forked worker, so
     * merged traces render one lane per worker.
     */
    void setLane(int64_t lane);
    int64_t lane() const;

    /** Adopt @p other's epoch so the two recorders share a timeline
     *  (their nowMicros() values become directly comparable). */
    void alignEpoch(const TraceRecorder &other);

    /** Attach a process_name metadata record to @p lane — shown as
     *  the Perfetto track title. */
    void nameLane(int64_t lane, const std::string &name);

    /**
     * A complete ('X') event: a span of @p durMicros starting at
     * @p tsMicros on track @p tid (0 = the calling/inline thread,
     * 1..N = engine workers). @p arg, when nonempty, lands in
     * args.label — the grid cell or trial the span belongs to —
     * and @p traceId in args.traceId (the request the span serves).
     */
    void complete(const std::string &name, const std::string &cat,
                  int tid, uint64_t tsMicros, uint64_t durMicros,
                  const std::string &arg = "",
                  const std::string &traceId = "");

    /** An instant ('i') event at now() on track @p tid. */
    void instant(const std::string &name, const std::string &cat,
                 int tid, const std::string &arg = "",
                 const std::string &traceId = "");

    size_t size() const;

    /**
     * Remove and return every recorded event as a compact JSON array
     * (field names: name/cat/ph/lane/tid/ts/dur/arg/trace, empty
     * strings omitted) — the result-pipe relay format, re-absorbed by
     * importJson(). Events without a trace id get @p fillTraceId:
     * workers run one cell at a time, so everything drained after a
     * cell belongs to that cell's request.
     */
    Json drainJson(const std::string &fillTraceId = "");

    /** Append events produced by another recorder's drainJson(),
     *  keeping their lanes, tids, timestamps and trace ids. */
    void importJson(const Json &events);

    /**
     * The trace as a JSON array of event objects, sorted by
     * (ts, lane, tid), each with name/cat/ph/ts/dur(X only)/pid/tid
     * and optional args (label, traceId). Lane names registered via
     * nameLane() lead the array as process_name 'M' metadata records.
     */
    Json toJson() const;

    /** Serialize to @p path (pretty-printed). False on I/O failure. */
    bool writeFile(const std::string &path) const;

  private:
    struct Event
    {
        std::string name;
        std::string cat;
        char ph;
        int64_t lane;
        int tid;
        uint64_t ts;
        uint64_t dur;
        std::string arg;
        std::string trace;
    };

    std::chrono::steady_clock::time_point epoch_;
    mutable std::mutex mu_;
    int64_t lane_ = 1;
    std::vector<Event> events_;
    std::vector<std::pair<int64_t, std::string>> laneNames_;
};

} // namespace mxl

#endif // MXLISP_OBS_TRACE_H_
