/**
 * @file
 * Umbrella header: the full public API of mxlisp.
 *
 * Typical use (see docs/API.md):
 *
 *     #include "mxlisp/mxlisp.h"
 *
 *     mxl::Engine eng;                      // cache + worker pool
 *     mxl::RunRequest req;
 *     req.source = "(print (+ 1 2))";
 *     req.opts = mxl::CompilerOptions{};    // scheme/checking/hardware
 *     mxl::RunReport rep = eng.run(req);    // rep.status / rep.result
 *                                           // (rep.backend: which tier ran)
 *
 *     // Grids fan out across the pool, results in request order:
 *     std::vector<mxl::RunReport> reps = eng.runGrid(requests);
 *
 * The one-shot free function compileAndRun() in core/run.h remains as
 * a thin wrapper over Engine::defaultEngine().
 *
 * Finer-grained layers, top to bottom:
 *  - faults/    fault injection + detection-coverage campaigns (FAULTS.md)
 *  - core/      the Engine, experiment configs, measurement, paper numbers
 *  - exec/      the translated (directly-threaded) backend (BACKEND.md)
 *  - programs/  the ten Appendix benchmark programs
 *  - compiler/  MX-Lisp -> MX compilation (unit.h is the entry point)
 *  - runtime/   memory image, layout, Lisp-level runtime sources
 *  - machine/   the MX simulator and its cycle accounting
 *  - isa/       instructions, annotations, assembler/disassembler
 *  - tags/      the four tag schemes
 *  - sexpr/     reader/printer
 */

#ifndef MXLISP_MXLISP_H_
#define MXLISP_MXLISP_H_

#include "compiler/options.h"
#include "compiler/unit.h"
#include "core/engine.h"
#include "core/experiment.h"
#include "core/paper.h"
#include "core/report.h"
#include "core/run.h"
#include "exec/texec.h"
#include "faults/campaign.h"
#include "faults/fault_injector.h"
#include "isa/assembler.h"
#include "isa/instruction.h"
#include "machine/machine.h"
#include "programs/programs.h"
#include "runtime/layout.h"
#include "sexpr/printer.h"
#include "sexpr/reader.h"
#include "support/format.h"
#include "support/stats.h"
#include "support/table.h"
#include "tags/tag_scheme.h"

#endif // MXLISP_MXLISP_H_
