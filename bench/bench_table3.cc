/**
 * Reproduces Table 3: static statistics of the ten programs —
 * procedures, source lines (without comments), and object-code words.
 * Absolute values differ from the paper (different dialect, library
 * and code generator); what should match is the relative ordering:
 * comp/opt/frl are the big programs, inter/trav/boyer the small ones.
 */

#include <cstdio>

#include "bench_export.h"
#include "compiler/unit.h"
#include "core/engine.h"
#include "core/experiment.h"
#include "core/paper.h"
#include "core/report.h"
#include "programs/programs.h"
#include "support/format.h"
#include "support/panic.h"
#include "support/table.h"

using namespace mxl;

int
main()
{
    std::printf("Table 3: the ten test programs\n");
    std::printf("(procedure counts include the runtime library "
                "modules, as in the paper)\n\n");

    TextTable t;
    t.addRow({"program", "procs", "lines", "object words",
              "(paper procs)", "(paper lines)", "(paper words)"});
    Engine eng;
    for (size_t i = 0; i < benchmarkPrograms().size(); ++i) {
        const auto &p = benchmarkPrograms()[i];
        CompilerOptions opts = baselineOptions(Checking::Off);
        opts.heapBytes = p.heapBytes;
        auto c = eng.compile(p.source, opts);
        if (!c.status.ok())
            fatal("compiling ", p.name, ": ", c.status.message);
        const auto &u = *c.unit;
        const auto &pp = paper::table3()[i];
        t.addRow({p.name, strcat(u.procedures), strcat(u.sourceLines),
                  strcat(u.objectWords), strcat("(", pp.procedures, ")"),
                  strcat("(", pp.sourceLines, ")"),
                  strcat("(", pp.objectWords, ")")});
    }
    std::printf("%s\n", t.render().c_str());

    // Machine-readable export: the static statistics above plus one
    // measured baseline run per program (compilations above are cache
    // hits for this grid), so table3's artifact carries comparable
    // cycle cells like every other BENCH_*.json.
    std::vector<RunRequest> grid =
        programGrid(baselineOptions(Checking::Off));
    std::vector<RunReport> reports = eng.runGrid(grid);
    Json statics = Json::array();
    for (const auto &p : benchmarkPrograms()) {
        CompilerOptions opts = baselineOptions(Checking::Off);
        opts.heapBytes = p.heapBytes;
        const auto &u = *eng.compile(p.source, opts).unit;
        Json row = Json::object();
        row.set("program", p.name);
        row.set("procedures", static_cast<uint64_t>(u.procedures));
        row.set("sourceLines", static_cast<uint64_t>(u.sourceLines));
        row.set("objectWords", static_cast<uint64_t>(u.objectWords));
        statics.push(std::move(row));
    }
    Json doc = benchDoc("table3", gridJson(grid, reports), &eng);
    doc.set("statics", std::move(statics));
    return writeBenchJson("table3", doc) ? 0 : 1;
}
