/**
 * @file
 * Shared internals of the translated backend: the dispatch-token enum
 * the translator assigns and the executor's handler table resolves.
 * Private to src/exec/.
 */

#ifndef MXLISP_EXEC_TEXEC_INTERNAL_H_
#define MXLISP_EXEC_TEXEC_INTERNAL_H_

#include <cstdint>

namespace mxl {

/**
 * Specialized dispatch kinds. One per straight-line opcode semantics
 * (with the tag-scheme placement baked in where it matters), one per
 * control transfer, one per Sys code, plus the pc-out-of-range
 * sentinel appended after the last instruction. Order must match the
 * executor's label table (texec.cc).
 */
enum TKind : uint16_t
{
    // ALU register-register
    TAdd, TSub, TAnd, TOr, TXor, TSll, TSrl, TSra, TMul, TDiv, TRem,
    // ALU register-immediate
    TAddi, TAndi, TOri, TXori, TSlli, TSrli, TSrai,
    // Moves / constants
    TLi, TMov, TNoop,
    // Memory
    TLd, TSt, TLdt, TStt,
    // Trapping tagged arithmetic, by tag placement
    TAddtHigh, TSubtHigh, TAddtLow, TSubtLow,
    // Sys, by code
    TSysHalt, TSysPutChar, TSysPutFixRaw, TSysPutFix, TSysError,
    // Control transfers (executed fused with their two delay slots)
    TBeq, TBne, TBlt, TBge, TBle, TBgt, TBeqi, TBnei, TBtag, TBntag,
    TJ, TJal, TJr, TJalr,
    // Sentinel at instruction index n
    TEnd,
    // Fused straight-line pairs: one dispatch executes two adjacent
    // instructions (both accounting sequence points preserved). The
    // translator installs these as the *handler* of the first op only —
    // every index keeps its standalone TKind, so delay-slot execution,
    // computed jumps, and trap returns that land on either op still
    // behave. Chosen by dynamic pair frequency over the benchmark
    // suite; these 14 cover >90% of the fusable issue stream.
    TF_Addi_St, TF_St_Ld, TF_St_St, TF_And_Ld, TF_Ld_Srli, TF_Ld_Addi,
    TF_Ld_And, TF_Ld_Ld, TF_Ld_Li, TF_Mov_Ld, TF_Slli_Srai, TF_Addi_Ld,
    TF_St_Li, TF_Ld_Slli,
    kNumTKinds,
};

/**
 * Host dispatch addresses indexed by TKind, or null when the build has
 * no computed-goto support (translation then refuses every unit and
 * the engine stays on the interpreter tier).
 */
const void *const *texecLabelTable();

} // namespace mxl

#endif // MXLISP_EXEC_TEXEC_INTERNAL_H_
