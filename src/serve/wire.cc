#include "serve/wire.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <random>

#include "faults/fault_injector.h"
#include "programs/programs.h"
#include "support/format.h"

namespace mxl {

std::string
makeTraceId()
{
    // Per-process random base so forked/parallel clients don't
    // collide; a golden-ratio stride walks the 64-bit space without
    // repeating per call.
    static const uint64_t base = [] {
        std::random_device rd;
        return (static_cast<uint64_t>(rd()) << 32) ^ rd();
    }();
    static std::atomic<uint64_t> seq{0};
    uint64_t n =
        base ^ ((seq.fetch_add(1, std::memory_order_relaxed) + 1) *
                0x9e3779b97f4a7c15ull);
    char buf[20];
    std::snprintf(buf, sizeof buf, "t%016llx",
                  static_cast<unsigned long long>(n));
    return buf;
}

namespace {

bool
schemeKindFromName(const std::string &name, SchemeKind *out)
{
    for (SchemeKind k : {SchemeKind::High5, SchemeKind::High6,
                         SchemeKind::Low2, SchemeKind::Low3})
        if (name == schemeKindName(k)) {
            *out = k;
            return true;
        }
    return false;
}

bool
backendFromName(const std::string &name, Backend *out)
{
    for (Backend b :
         {Backend::Auto, Backend::Interpreter, Backend::Translated})
        if (name == backendName(b)) {
            *out = b;
            return true;
        }
    return false;
}

bool
faultClassFromName(const std::string &name, FaultClass *out)
{
    for (FaultClass c :
         {FaultClass::TagCorrupt, FaultClass::BitFlip,
          FaultClass::CallArgType, FaultClass::HeapTagCorrupt,
          FaultClass::HeapBitFlip, FaultClass::StackTagCorrupt,
          FaultClass::StackBitFlip})
        if (name == faultClassName(c)) {
            *out = c;
            return true;
        }
    return false;
}

/** Optional scalar field helpers: absent keys keep the default. */
bool
fieldBool(const Json &o, const char *key, bool dflt)
{
    const Json *v = o.find(key);
    return v ? v->asBool(dflt) : dflt;
}

uint64_t
fieldUint(const Json &o, const char *key, uint64_t dflt)
{
    const Json *v = o.find(key);
    return v && v->isNumber() ? v->asUint(dflt) : dflt;
}

} // namespace

std::string
encodeFrame(const std::string &payload)
{
    std::string out = std::to_string(payload.size());
    out += '\n';
    out += payload;
    out += '\n';
    return out;
}

std::string
encodeFrame(const Json &j)
{
    return encodeFrame(j.dump());
}

void
FrameReader::feed(const char *data, size_t n)
{
    if (error_)
        return;
    buf_.append(data, n);
}

bool
FrameReader::next(std::string *payload)
{
    if (error_)
        return false;
    // <digits>'\n'<len bytes>'\n'
    size_t nl = buf_.find('\n');
    if (nl == std::string::npos) {
        if (buf_.size() > 32) {
            error_ = true;
            errorText_ = "frame length prefix is not a number";
        }
        return false;
    }
    if (nl == 0 || nl > 20) {
        error_ = true;
        errorText_ = "frame length prefix is not a number";
        return false;
    }
    size_t len = 0;
    for (size_t i = 0; i < nl; ++i) {
        char c = buf_[i];
        if (!std::isdigit(static_cast<unsigned char>(c))) {
            error_ = true;
            errorText_ = "frame length prefix is not a number";
            return false;
        }
        len = len * 10 + static_cast<size_t>(c - '0');
    }
    if (len > kMaxFrameBytes) {
        error_ = true;
        errorText_ = strcat("frame of ", len, " bytes exceeds the ",
                            kMaxFrameBytes, "-byte limit");
        return false;
    }
    if (buf_.size() < nl + 1 + len + 1)
        return false; // incomplete; wait for more bytes
    if (buf_[nl + 1 + len] != '\n') {
        error_ = true;
        errorText_ = "frame payload is not newline-terminated";
        return false;
    }
    payload->assign(buf_, nl + 1, len);
    buf_.erase(0, nl + 1 + len + 1);
    return true;
}

bool
parseCell(const Json &cell, WireCell *out, std::string *err)
{
    if (!cell.isObject()) {
        *err = "cell is not an object";
        return false;
    }
    RunRequest req;

    const Json *label = cell.find("label");
    if (label && label->isString())
        req.label = label->str();

    const Json *source = cell.find("source");
    const Json *program = cell.find("program");
    if (source && source->isString()) {
        req.source = source->str();
    } else if (program && program->isString()) {
        const BenchmarkProgram *found = nullptr;
        for (const BenchmarkProgram &p : benchmarkPrograms())
            if (p.name == program->str()) {
                found = &p;
                break;
            }
        if (!found) {
            *err = strcat("unknown benchmark program '", program->str(),
                          "'");
            return false;
        }
        req.source = found->source;
        req.opts.heapBytes = found->heapBytes;
        req.exec.maxCycles = found->maxCycles;
        if (req.label.empty())
            req.label = found->name;
    } else {
        *err = "cell has neither 'source' nor 'program'";
        return false;
    }

    if (const Json *options = cell.find("options")) {
        if (!options->isObject()) {
            *err = "'options' is not an object";
            return false;
        }
        CompilerOptions &o = req.opts;
        if (const Json *scheme = options->find("scheme")) {
            if (!scheme->isString() ||
                !schemeKindFromName(scheme->str(), &o.scheme)) {
                *err = strcat("unknown scheme '", scheme->str(), "'");
                return false;
            }
        }
        if (const Json *checking = options->find("checking")) {
            if (checking->str() == "full")
                o.checking = Checking::Full;
            else if (checking->str() == "off")
                o.checking = Checking::Off;
            else {
                *err = strcat("unknown checking mode '", checking->str(),
                              "' (want 'off' or 'full')");
                return false;
            }
        }
        if (const Json *am = options->find("arithMode")) {
            int64_t v = am->asInt(-1);
            if (v < 0 ||
                v > static_cast<int64_t>(ArithMode::ForceDispatch)) {
                *err = "arithMode out of range";
                return false;
            }
            o.arithMode = static_cast<ArithMode>(v);
        }
        o.hw.ignoreTagOnMemory =
            fieldBool(*options, "ignoreTagOnMemory", o.hw.ignoreTagOnMemory);
        o.hw.branchOnTag =
            fieldBool(*options, "branchOnTag", o.hw.branchOnTag);
        o.hw.genericArith =
            fieldBool(*options, "genericArith", o.hw.genericArith);
        o.hw.memTagging =
            fieldBool(*options, "memTagging", o.hw.memTagging);
        if (const Json *cm = options->find("checkedMemory")) {
            int64_t v = cm->asInt(-1);
            if (v < 0 || v > static_cast<int64_t>(CheckedMem::All)) {
                *err = "checkedMemory out of range";
                return false;
            }
            o.hw.checkedMemory = static_cast<CheckedMem>(v);
        }
        o.fillDelaySlots =
            fieldBool(*options, "fillDelaySlots", o.fillDelaySlots);
        o.overlapChecks =
            fieldBool(*options, "overlapChecks", o.overlapChecks);
        o.memBytes = static_cast<uint32_t>(
            fieldUint(*options, "memBytes", o.memBytes));
        o.staticBytes = static_cast<uint32_t>(
            fieldUint(*options, "staticBytes", o.staticBytes));
        o.heapBytes = static_cast<uint32_t>(
            fieldUint(*options, "heapBytes", o.heapBytes));
    }

    req.exec.maxCycles =
        fieldUint(cell, "maxCycles", req.exec.maxCycles);
    uint64_t deadlineMs = fieldUint(cell, "deadlineMs", 0);
    if (deadlineMs > 0)
        req.exec.deadlineSeconds =
            static_cast<double>(deadlineMs) / 1000.0;
    req.exec.installTrapHandlers = fieldBool(
        cell, "installTrapHandlers", req.exec.installTrapHandlers);
    if (const Json *backend = cell.find("backend")) {
        if (!backend->isString() ||
            !backendFromName(backend->str(), &req.exec.backend)) {
            *err = strcat("unknown backend '", backend->str(), "'");
            return false;
        }
    }

    out->hasFault = false;
    if (const Json *fault = cell.find("fault")) {
        if (!fault->isObject()) {
            *err = "'fault' is not an object";
            return false;
        }
        FaultSpec spec;
        const Json *cls = fault->find("class");
        if (!cls || !cls->isString() ||
            !faultClassFromName(cls->str(), &spec.cls)) {
            *err = strcat("unknown fault class '",
                          cls && cls->isString() ? cls->str() : "", "'");
            return false;
        }
        spec.seed = fieldUint(*fault, "seed", 0);
        spec.pauseCycle = fieldUint(*fault, "pause", 0);
        if (faultClassNeedsPause(spec.cls) && spec.pauseCycle == 0) {
            *err = strcat("fault class '", cls->str(),
                          "' needs a nonzero 'pause' cycle");
            return false;
        }
        armFault(req, spec);
        out->hasFault = true;
    }

    out->request = std::move(req);
    return true;
}

Json
cellToJson(const RunRequest &req)
{
    // Inverse of parseCell for the fields a RunRequest can carry over
    // the wire. Hooks (fault arming) are NOT representable here; the
    // server forwards the client's original cell JSON to workers
    // instead of re-encoding, so this is only used by clients and
    // tests building cells programmatically.
    Json j = Json::object();
    j.set("label", req.label);
    j.set("source", req.source);
    Json o = Json::object();
    o.set("scheme", schemeKindName(req.opts.scheme));
    o.set("checking",
          req.opts.checking == Checking::Full ? "full" : "off");
    o.set("arithMode", static_cast<int64_t>(req.opts.arithMode));
    o.set("ignoreTagOnMemory", req.opts.hw.ignoreTagOnMemory);
    o.set("branchOnTag", req.opts.hw.branchOnTag);
    o.set("genericArith", req.opts.hw.genericArith);
    o.set("checkedMemory",
          static_cast<int64_t>(req.opts.hw.checkedMemory));
    o.set("memTagging", req.opts.hw.memTagging);
    o.set("fillDelaySlots", req.opts.fillDelaySlots);
    o.set("overlapChecks", req.opts.overlapChecks);
    o.set("memBytes", req.opts.memBytes);
    o.set("staticBytes", req.opts.staticBytes);
    o.set("heapBytes", req.opts.heapBytes);
    j.set("options", std::move(o));
    j.set("maxCycles", req.exec.maxCycles);
    if (req.exec.deadlineSeconds > 0)
        j.set("deadlineMs",
              static_cast<uint64_t>(req.exec.deadlineSeconds * 1000.0));
    j.set("backend", backendName(req.exec.backend));
    j.set("installTrapHandlers", req.exec.installTrapHandlers);
    return j;
}

Json
reportToJson(const RunReport &rep)
{
    Json j = Json::object();
    j.set("label", rep.label);
    j.set("statusOk", rep.status.ok());
    j.set("statusCode", static_cast<int64_t>(rep.status.code));
    if (!rep.status.ok())
        j.set("statusMessage", rep.status.message);
    j.set("stop", static_cast<int64_t>(rep.result.stop));
    j.set("errorCode", rep.result.errorCode);
    j.set("exitValue", rep.result.exitValue);
    Json stats = Json::object();
    stats.set("total", rep.result.stats.total);
    stats.set("instructions", rep.result.stats.instructions);
    j.set("stats", std::move(stats));
    j.set("output", rep.result.output);
    j.set("wallSeconds", rep.wallSeconds);
    j.set("cacheHit", rep.cacheHit);
    j.set("backend", backendName(rep.backend));
    if (rep.backendFellBack)
        j.set("backendNote", rep.backendNote);
    return j;
}

} // namespace mxl
