#include "support/stats.h"

#include <algorithm>
#include <cmath>

namespace mxl {

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0;
    double s = 0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

double
stddev(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0;
    double m = mean(xs);
    double s = 0;
    for (double x : xs)
        s += (x - m) * (x - m);
    return std::sqrt(s / static_cast<double>(xs.size()));
}

double
minOf(const std::vector<double> &xs)
{
    return xs.empty() ? 0 : *std::min_element(xs.begin(), xs.end());
}

double
maxOf(const std::vector<double> &xs)
{
    return xs.empty() ? 0 : *std::max_element(xs.begin(), xs.end());
}

} // namespace mxl
