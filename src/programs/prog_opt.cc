#include "programs/programs.h"

namespace mxl {

/*
 * opt: "the optimizer that was added to the compiler. It uses lists,
 * and vectors."
 *
 * A local optimizer over straight-line three-address code: the code
 * array and the analysis tables (known values, use counts) are
 * vectors; the instructions themselves are lists (op dest src1 src2).
 * Passes: constant propagation, algebraic simplification, dead-code
 * elimination. The mix of vector tables and list instructions gives
 * the list+vector checking profile of Table 1's `opt` row.
 */
const std::string &
progOpt()
{
    static const std::string src = R"lisp(
;; Instruction encoding: ops are small integers.
;;   0 = li   dest <- src1 (constant)
;;   1 = add  dest <- r[src1] + r[src2]
;;   2 = sub  dest <- r[src1] - r[src2]
;;   3 = mul  dest <- r[src1] * r[src2]
;;   4 = mov  dest <- r[src1]
;;   5 = out  emit r[src1]
;;   9 = nop

(de mkinstr (op dest s1 s2)
  (list op dest s1 s2))

(de iop (i) (car i))
(de idest (i) (cadr i))
(de is1 (i) (caddr i))
(de is2 (i) (cadddr i))

;; Build a pseudo-random but deterministic program of n instructions
;; over nregs virtual registers.
(de gen-program (n nregs)
  (let ((code (mkvect n)) (i 0))
    ;; make sure every register starts defined
    (while (lessp i nregs)
      (putv code i (mkinstr 0 i (add1 i) 0))
      (setq i (add1 i)))
    (while (lessp i n)
      (let ((r (random 10)))
        (cond ((lessp r 3)
               (putv code i (mkinstr 0 (random nregs)
                                     (random 50) 0)))
              ((lessp r 5)
               (putv code i (mkinstr 1 (random nregs)
                                     (random nregs) (random nregs))))
              ((lessp r 6)
               (putv code i (mkinstr 2 (random nregs)
                                     (random nregs) (random nregs))))
              ((lessp r 7)
               (putv code i (mkinstr 3 (random nregs)
                                     (random nregs) (random nregs))))
              ((lessp r 9)
               (putv code i (mkinstr 4 (random nregs)
                                     (random nregs) 0)))
              (t
               (putv code i (mkinstr 5 0 (random nregs) 0)))))
      (setq i (add1 i)))
    code))

;; -- constant propagation -------------------------------------------------
;; vals[r] holds the known constant for r, or -1 (unknown).

(de const-prop (code n nregs)
  (let ((vals (mkvect nregs)) (i 0) (changed 0))
    (while (lessp i nregs)
      (putv vals i -1)
      (setq i (add1 i)))
    (setq i 0)
    (while (lessp i n)
      (let* ((ins (getv code i)) (op (iop ins)))
        (cond ((eq op 0)
               (putv vals (idest ins) (is1 ins)))
              ((eq op 4)
               (let ((v (getv vals (is1 ins))))
                 (cond ((geq v 0)
                        (putv code i (mkinstr 0 (idest ins) v 0))
                        (putv vals (idest ins) v)
                        (setq changed (add1 changed)))
                       (t (putv vals (idest ins) -1)))))
              ((or (eq op 1) (eq op 2) (eq op 3))
               (let ((a (getv vals (is1 ins)))
                     (b (getv vals (is2 ins))))
                 (cond ((and (geq a 0) (geq b 0))
                        (let ((v (opt-apply op a b)))
                          (cond ((and (geq v 0) (lessp v 100000))
                                 (putv code i
                                       (mkinstr 0 (idest ins) v 0))
                                 (putv vals (idest ins) v)
                                 (setq changed (add1 changed)))
                                (t (putv vals (idest ins) -1)))))
                       (t (putv vals (idest ins) -1)))))
              (t nil)))
      (setq i (add1 i)))
    changed))

(de opt-apply (op a b)
  (cond ((eq op 1) (+ a b))
        ((eq op 2) (- a b))
        (t (remainder (* a b) 99991))))

;; -- algebraic simplification ----------------------------------------------

(de simplify (code n)
  (let ((i 0) (changed 0))
    (while (lessp i n)
      (let* ((ins (getv code i)) (op (iop ins)))
        ;; x + x -> 2*x kept; x - x -> 0; mul by self untouched
        (cond ((and (eq op 2) (eq (is1 ins) (is2 ins)))
               (putv code i (mkinstr 0 (idest ins) 0 0))
               (setq changed (add1 changed)))
              ((and (eq op 1) (eq (is1 ins) (is2 ins)))
               ;; x + x -> mov then caught by later passes
               (putv code i (mkinstr 4 (idest ins) (is1 ins) 0))
               (setq changed (add1 changed)))
              (t nil)))
      (setq i (add1 i)))
    changed))

;; -- dead code elimination ---------------------------------------------------

(de dead-code (code n nregs)
  (let ((uses (mkvect nregs)) (i 0) (removed 0))
    (while (lessp i nregs)
      (putv uses i 0)
      (setq i (add1 i)))
    ;; count uses
    (setq i 0)
    (while (lessp i n)
      (let* ((ins (getv code i)) (op (iop ins)))
        (cond ((or (eq op 1) (eq op 2) (eq op 3))
               (putv uses (is1 ins) (add1 (getv uses (is1 ins))))
               (putv uses (is2 ins) (add1 (getv uses (is2 ins)))))
              ((eq op 4)
               (putv uses (is1 ins) (add1 (getv uses (is1 ins)))))
              ((eq op 5)
               (putv uses (is1 ins) (add1 (getv uses (is1 ins)))))
              (t nil)))
      (setq i (add1 i)))
    ;; kill writes to registers nobody reads (scan backwards once)
    (setq i (sub1 n))
    (while (geq i 0)
      (let* ((ins (getv code i)) (op (iop ins)))
        (cond ((and (not (eq op 5)) (not (eq op 9))
                    (eq (getv uses (idest ins)) 0))
               (putv code i (mkinstr 9 0 0 0))
               (setq removed (add1 removed)))
              (t nil)))
      (setq i (sub1 i)))
    removed))

(de checksum (code n)
  (let ((i 0) (sum 0))
    (while (lessp i n)
      (let ((ins (getv code i)))
        (setq sum (remainder (+ (* sum 31)
                                (+ (iop ins)
                                   (+ (idest ins)
                                      (+ (is1 ins) (is2 ins)))))
                             999983)))
      (setq i (add1 i)))
    sum))

(de opt-main (rounds size nregs)
  (seed-random 12345)
  (let ((total 0))
    (while (greaterp rounds 0)
      (let ((code (gen-program size nregs)))
        (let ((c1 (const-prop code size nregs))
              (c2 (simplify code size)))
          (let ((c3 (const-prop code size nregs))
                (c4 (dead-code code size nregs)))
            (setq total (remainder
                         (+ total
                            (+ (checksum code size)
                               (+ c1 (+ c2 (+ c3 c4)))))
                         999983)))))
      (setq rounds (sub1 rounds)))
    (print total)))
)lisp";
    return src;
}

} // namespace mxl
