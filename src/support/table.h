/**
 * @file
 * A plain-text table printer used by the benchmark harnesses to render
 * the paper's tables next to measured values.
 */

#ifndef MXLISP_SUPPORT_TABLE_H_
#define MXLISP_SUPPORT_TABLE_H_

#include <string>
#include <vector>

namespace mxl {

/**
 * Column-aligned text table. Cells are strings; the first row added is
 * treated as the header and underlined when rendered.
 */
class TextTable
{
  public:
    /** Append a row of cells. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator line. */
    void addRule();

    /** Render with two-space gutters; numeric-looking cells right-align. */
    std::string render() const;

  private:
    static bool looksNumeric(const std::string &s);

    std::vector<std::vector<std::string>> rows_;
    std::vector<size_t> ruleAfter_;
};

} // namespace mxl

#endif // MXLISP_SUPPORT_TABLE_H_
