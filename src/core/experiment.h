/**
 * @file
 * Named experiment configurations: the measurement space of the paper.
 *
 * Table 2's rows are specific (scheme, hardware) combinations evaluated
 * at both checking settings against the §2.1 baseline; §4.2 and §6.2.2
 * add arithmetic-mode variants.
 */

#ifndef MXLISP_CORE_EXPERIMENT_H_
#define MXLISP_CORE_EXPERIMENT_H_

#include <string>
#include <vector>

#include "compiler/options.h"

namespace mxl {

/** The straightforward §2.1 implementation: HighTag5, no hardware. */
CompilerOptions baselineOptions(Checking checking);

/** One row of Table 2. */
struct Table2Config
{
    std::string id;      ///< "row1" ... "row7"
    std::string label;   ///< the paper's row description
    CompilerOptions opts; ///< checking field is overwritten per column

    CompilerOptions
    withChecking(Checking c) const
    {
        CompilerOptions o = opts;
        o.checking = c;
        return o;
    }
};

/** The seven rows of Table 2 (baseline excluded). */
std::vector<Table2Config> table2Configs();

/**
 * The software-only equivalent of row 1: a low-tag scheme instead of
 * address-masking hardware ("the software schemes that place the tag in
 * the bottom two or three bits are very attractive").
 */
CompilerOptions lowTagSoftwareOptions(Checking checking,
                                      SchemeKind scheme = SchemeKind::Low3);

/** §4.2: the arithmetic-friendly 6-bit tag encoding. */
CompilerOptions sumCheckOptions(Checking checking);

/** §6.2.2: every arithmetic operation goes through the dispatcher. */
CompilerOptions forceDispatchOptions(Checking checking);

} // namespace mxl

#endif // MXLISP_CORE_EXPERIMENT_H_
