/**
 * @file
 * The runtime data types of MX-Lisp.
 *
 * These are the types the paper's programs exercise (§2.2: "numbers,
 * symbols, lists, or vectors", with strings/structures layered on top).
 * Bignums — the generic-arithmetic fallback representation — are vectors
 * at the tag level, discriminated by the object header.
 */

#ifndef MXLISP_TAGS_TYPE_ID_H_
#define MXLISP_TAGS_TYPE_ID_H_

#include <string>

namespace mxl {

/** Primary runtime types, as seen by the tag system. */
enum class TypeId
{
    Fixnum,  ///< immediate integer
    Pair,    ///< cons cell (two words)
    Symbol,  ///< pointer to a 5-word symbol block
    Vector,  ///< pointer to header + elements (also bignums)
    String,  ///< pointer to header + one char per word
    Char,    ///< immediate character
};

/** Printable name of a TypeId. */
std::string typeName(TypeId t);

/** Object-header subtypes for header-discriminated schemes and the GC. */
enum HeaderSubtype : unsigned
{
    SubtVector = 1,
    SubtString = 2,
    SubtBignum = 3,
    SubtSymbol = 4,
};

} // namespace mxl

#endif // MXLISP_TAGS_TYPE_ID_H_
