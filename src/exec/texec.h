/**
 * @file
 * The translated execution backend: a CompiledUnit is translated once
 * into directly-threaded code (one pre-decoded op per instruction, each
 * holding the host address of its handler) and then executed by a
 * computed-goto dispatch loop, with each control transfer *fused* with
 * its two delay slots into a single dispatch — the per-block epilogue
 * that folds delay-slot/squash semantics and the load interlock into
 * the basic-block boundary instead of a per-instruction pipeline model.
 *
 * The contract is byte-identical equivalence with machine/machine.cc:
 * CycleStats, program output, stop reason, error code, exit value,
 * fault index, and the GC cells all match the interpreter exactly, for
 * every program the translator accepts (tests/test_backend.cc proves
 * this differentially over the whole benchmark suite). Accounting is
 * kept per instruction index (execution / stall / squash counters) and
 * folded into a CycleStats at run end, so the hot loop carries three
 * array increments instead of the interpreter's full attribution work.
 *
 * What the backend does NOT support — and why refusal is safe:
 * translateUnit() declines units it cannot prove equivalent (malformed
 * delay-slot structure per analysis::buildCfg, tag-hardware opcodes
 * without the matching HardwareConfig bit, trap-capable ops scheduled
 * into delay slots), and runTranslated() has no machineSetup /
 * snapshot / pause / per-PC-profile seams. The Engine treats both as
 * tier-fallback conditions: with ExecPolicy::backend == Auto the run
 * transparently drops to the interpreter (core/engine.h).
 */

#ifndef MXLISP_EXEC_TEXEC_H_
#define MXLISP_EXEC_TEXEC_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "compiler/unit.h"
#include "core/run.h"

namespace mxl {

/**
 * Pre-decoded instruction: operands flattened, handler resolved.
 * Packed to exactly 32 bytes (two per cache line, never split across
 * one) — the executor's working set is this array.
 */
struct TranslatedOp
{
    const void *handler = nullptr; ///< host dispatch address
    uint32_t idx = 0;              ///< own instruction index (accounting)
    uint32_t readMask = 0;         ///< bit r set when the op reads reg r
    uint32_t uimm = 0;             ///< uint32(imm); Beqi/Bnei compare i32
    int32_t target = -1;           ///< static control-transfer target
    uint8_t kind = 0;              ///< TKind (texec.cc's dispatch token)
    uint8_t wslot = 32;            ///< write slot; 32 discards (rd == 0)
    uint8_t rs = 0;
    uint8_t rt = 0;
    uint8_t pendReg = 0;           ///< load interlock register (inst.rd)
    uint8_t cycles = 1;            ///< opCycles(op)
    uint8_t annul = 0;             ///< bit0 annul-on-taken, bit1 on-fall
    uint8_t timm = 0;              ///< tag immediate (Ldt/Stt/Btag/Bntag)
};
static_assert(sizeof(TranslatedOp) == 32);

/**
 * A unit translated for the threaded executor. Immutable after
 * translation and safe to share across threads (the engine caches one
 * per (source, options, backend) cache entry). Holds no pointer back
 * into the CompiledUnit; runTranslated() takes both.
 */
struct TranslatedUnit
{
    /** One op per instruction plus a pc-out-of-range sentinel. */
    std::vector<TranslatedOp> ops;
    size_t nInsts = 0; ///< ops.size() - 1

    int entry = -1;

    // Tag-scheme specialization: the virtual TagScheme calls of the
    // interpreter become constant masks and shifts.
    uint32_t tagShift = 0;  ///< primaryTag(w) = (w >> tagShift) & tagMask
    uint32_t tagMask = 0;
    uint32_t detagMask = 0xffffffffu; ///< detagAddr(w) = w & detagMask
    uint32_t memMask = 0xffffffffu;   ///< effective-address mask
                                      ///< (detagMask when
                                      ///< hw.ignoreTagOnMemory, else ~0)
    unsigned dataBits = 32; ///< fixnum field width (high-tag schemes)
    bool lowTags = false;   ///< fixnum encoding family

    // Trap handler indices, pre-gated exactly like runUnitOn(): set
    // only when the hardware feature is on and the unit compiled a
    // handler. RunControls-equivalent installTrapHandlers gates them
    // again at run time.
    int arithTrap = -1;
    int tagTrap = -1;

    uint32_t gcCountAddr = 0;
    uint32_t heapUsedAddr = 0;
};

/** Outcome of a translation attempt. */
struct TranslateResult
{
    std::shared_ptr<const TranslatedUnit> unit; ///< null on refusal
    std::string note; ///< refusal reason when unit is null
};

/**
 * Translate @p unit for the threaded backend. Never throws for
 * refusable input: a unit the translator cannot prove equivalent comes
 * back with a null `unit` and a diagnostic `note` (the engine's Auto
 * tier falls back to the interpreter on refusal).
 */
TranslateResult translateUnit(const CompiledUnit &unit);

/** The execution knobs the translated backend supports. */
struct TranslatedControls
{
    uint64_t maxCycles = kDefaultMaxCycles;
    /** Wall-clock budget; same chunked semantics as RunControls. */
    double deadlineSeconds = 0;
    /** Honor the unit's software trap handlers (RunControls). */
    bool installTrapHandlers = true;
};

/**
 * Execute @p tu (translated from @p unit) on @p image. Semantics and
 * RunResult contents are byte-identical to
 * runUnitOn(unit, image, controls) for the supported control set.
 */
RunResult runTranslated(const CompiledUnit &unit, const TranslatedUnit &tu,
                        Memory image, const TranslatedControls &controls);

} // namespace mxl

#endif // MXLISP_EXEC_TEXEC_H_
