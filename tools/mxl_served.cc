/**
 * @file
 * mxl-served: the long-running measurement server (serve/server.h).
 *
 * Serves grid/health/ping requests over a Unix-domain socket (and an
 * optional loopback TCP listener) on a pool of forked crash-isolated
 * workers. SIGTERM/SIGINT trigger a graceful drain: in-flight cells
 * finish (bounded by --drain-ms), every open request gets its
 * terminal response, then the process exits 0.
 *
 * Usage:
 *   mxl-served --socket PATH [options]
 *     --socket PATH       Unix-domain socket to serve on (required)
 *     --tcp PORT          also listen on 127.0.0.1:PORT (0 = ephemeral)
 *     --workers N         forked worker complement (default 2)
 *     --queue N           admission queue capacity, cells (default 256)
 *     --drain-ms N        graceful-drain bound (default 10000)
 *     --max-cell-s N      watchdog for deadline-less cells (default 300)
 *     --warm              precompile built-in benchmarks before forking
 *     --chaos             honor __chaos:* cell labels (bench/test only)
 *     --no-fork           test seam: degrade to in-process execution
 *     --trace PATH        record a service trace (parent + worker
 *                         spans) and write merged Perfetto JSON at
 *                         drain
 *     --log PATH          append structured JSONL events (request
 *                         lifecycle, worker deaths, drain)
 *     --slow-ms N         log request.slow above this end-to-end wall
 *                         time (default 1000; 0 = off)
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "serve/server.h"

using namespace mxl;

namespace {

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s --socket PATH [--tcp PORT] [--workers N] "
                 "[--queue N] [--drain-ms N] [--max-cell-s N] [--warm] "
                 "[--chaos] [--no-fork] [--trace PATH] [--log PATH] "
                 "[--slow-ms N]\n",
                 argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    ServerOptions options;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--socket")
            options.unixPath = value();
        else if (arg == "--tcp") {
            int port = std::atoi(value());
            options.tcpPort = port == 0 ? -1 : port; // 0: ephemeral
        }
        else if (arg == "--workers")
            options.workers = std::atoi(value());
        else if (arg == "--queue")
            options.queueCapacity =
                static_cast<size_t>(std::atol(value()));
        else if (arg == "--drain-ms")
            options.drainMs = std::atoi(value());
        else if (arg == "--max-cell-s")
            options.maxCellSeconds = std::atof(value());
        else if (arg == "--warm")
            options.warmCache = true;
        else if (arg == "--chaos")
            options.enableChaosCells = true;
        else if (arg == "--no-fork")
            options.disableFork = true;
        else if (arg == "--trace")
            options.tracePath = value();
        else if (arg == "--log")
            options.eventLogPath = value();
        else if (arg == "--slow-ms")
            options.slowRequestMs = std::atoi(value());
        else
            return usage(argv[0]);
    }
    if (options.unixPath.empty())
        return usage(argv[0]);

    Server server(std::move(options));
    std::string err;
    if (!server.start(&err)) {
        std::fprintf(stderr, "mxl-served: %s\n", err.c_str());
        return 1;
    }
    server.installSignalHandlers();
    std::fprintf(stderr, "mxl-served: listening (workers ready)\n");
    if (server.boundTcpPort() > 0)
        std::fprintf(stderr, "mxl-served: tcp 127.0.0.1:%d\n",
                     server.boundTcpPort());
    server.serve();
    std::fprintf(stderr, "mxl-served: drained, exiting\n");
    return 0;
}
