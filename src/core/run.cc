#include "core/run.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "core/engine.h"
#include "support/panic.h"

namespace mxl {

namespace {

/**
 * Cycle granularity of the wall-clock deadline check: small enough that
 * sub-second deadlines are honored promptly, large enough that the
 * pause/resume bookkeeping is invisible in the simulation rate.
 */
constexpr uint64_t kDeadlineChunkCycles = 1'000'000;

} // namespace

RunResult
runUnitOn(const CompiledUnit &unit, Memory image,
          const RunControls &controls)
{
    Machine m(unit.prog, std::move(image), unit.opts.hw,
              unit.scheme.get());
    if (controls.installUnitTrapHandlers) {
        if (unit.opts.hw.genericArith && unit.arithTrap >= 0)
            m.setTrapHandler(TrapKind::ArithFail, unit.arithTrap);
        if (unit.opts.hw.checkedMemory != CheckedMem::None &&
            unit.tagTrap >= 0)
            m.setTrapHandler(TrapKind::TagMismatch, unit.tagTrap);
    }
    if (controls.machineSetup)
        controls.machineSetup(m, unit);

    RunResult r;
    if (controls.deadlineSeconds > 0) {
        auto start = std::chrono::steady_clock::now();
        auto expired = [&] {
            return std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count() >= controls.deadlineSeconds;
        };
        uint64_t budget = std::min(controls.maxCycles,
                                   kDeadlineChunkCycles);
        r.stop = m.run(unit.entry, budget);
        while (r.stop == StopReason::CycleLimit &&
               budget < controls.maxCycles) {
            if (expired()) {
                r.timedOut = true;
                break;
            }
            budget = std::min(controls.maxCycles,
                              budget + kDeadlineChunkCycles);
            r.stop = m.resume(budget);
        }
    } else {
        r.stop = m.run(unit.entry, controls.maxCycles);
    }
    r.stats = m.stats();
    r.output = m.output();
    r.errorCode = m.errorCode();
    r.exitValue = m.exitValue();
    r.faultIndex = m.faultIndex();
    r.gcCount = m.memory().load(unit.layout.cellAddr(Cell::GcCount));
    r.heapUsed = m.memory().load(unit.layout.cellAddr(Cell::HeapUsed));
    return r;
}

RunResult
runUnitOn(const CompiledUnit &unit, Memory image, uint64_t maxCycles)
{
    RunControls controls;
    controls.maxCycles = maxCycles;
    return runUnitOn(unit, std::move(image), controls);
}

RunResult
runUnit(const CompiledUnit &unit, uint64_t maxCycles)
{
    return runUnitOn(unit, unit.memory, maxCycles);
}

RunResult
compileAndRun(const std::string &source, const CompilerOptions &opts,
              uint64_t maxCycles)
{
    RunRequest req;
    req.source = source;
    req.opts = opts;
    req.maxCycles = maxCycles;
    RunReport rep = Engine::defaultEngine().run(req);
    // Legacy contract: compile/internal failures throw, run errors are
    // encoded in the result (see run.h).
    if (rep.status.code == RunStatus::Code::CompileError)
        throw MxlError(MxlError::Kind::Fatal, rep.status.message);
    if (rep.status.code == RunStatus::Code::InternalError)
        throw MxlError(MxlError::Kind::Panic, rep.status.message);
    return rep.result;
}

} // namespace mxl
