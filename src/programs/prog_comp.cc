#include "programs/programs.h"

namespace mxl {

/*
 * comp: "the first pass of the front-end of the PSL compiler".
 *
 * A realistic front-end pass over quoted source programs: expansion of
 * derived forms (let -> lambda application, and/or/cond -> if chains),
 * alpha-renaming with an environment (renamed variables are (sym . n)
 * pairs, sidestepping runtime interning), constant folding of integer
 * primitives, and a free-variable analysis. List- and assq-heavy, like
 * a real compiler front end.
 */
const std::string &
progComp()
{
    static const std::string src = R"lisp(
;; -- derived-form expansion --------------------------------------------

(de cexpand (x)
  (cond ((atom x) x)
        ((eq (car x) 'quote) x)
        ((eq (car x) 'let) (cexpand-let x))
        ((eq (car x) 'and) (cexpand-and (cdr x)))
        ((eq (car x) 'or) (cexpand-or (cdr x)))
        ((eq (car x) 'cond) (cexpand-cond (cdr x)))
        (t (cexpand-list x))))

(de cexpand-list (l)
  (if (null l) nil (cons (cexpand (car l)) (cexpand-list (cdr l)))))

(de cexpand-let (x)
  ;; (let ((v e) ...) body) -> ((lambda (v ...) body) e ...)
  (let ((binds (cadr x)) (body (caddr x)))
    (cons (list 'lambda (cmap-car binds) (cexpand body))
          (cexpand-list (cmap-cadr binds)))))

(de cmap-car (l)
  (if (null l) nil (cons (caar l) (cmap-car (cdr l)))))

(de cmap-cadr (l)
  (if (null l) nil (cons (cadar l) (cmap-cadr (cdr l)))))

(de cexpand-and (l)
  (cond ((null l) 1)
        ((null (cdr l)) (cexpand (car l)))
        (t (list 'if (cexpand (car l)) (cexpand-and (cdr l)) 0))))

(de cexpand-or (l)
  (cond ((null l) 0)
        ((null (cdr l)) (cexpand (car l)))
        (t (list 'if (cexpand (car l)) 1 (cexpand-or (cdr l))))))

(de cexpand-cond (cls)
  (cond ((null cls) 0)
        ((eq (caar cls) 't) (cexpand (cadar cls)))
        (t (list 'if (cexpand (caar cls))
                 (cexpand (cadar cls))
                 (cexpand-cond (cdr cls))))))

;; -- alpha renaming ------------------------------------------------------

(de crename (x env)
  (cond ((fixp x) x)
        ((symbolp x)
         (let ((b (assq x env)))
           (if b (cdr b) x)))
        ((atom x) x)
        ((eq (car x) 'quote) x)
        ((eq (car x) 'lambda)
         (let ((env2 (crename-params (cadr x) env)))
           (list 'lambda
                 (crename-list (cadr x) env2)
                 (crename (caddr x) env2))))
        (t (crename-list x env))))

(de crename-params (params env)
  (if (null params)
      env
      (progn
        (setq *rename-counter* (add1 *rename-counter*))
        (cons (cons (car params)
                    (cons (car params) *rename-counter*))
              (crename-params (cdr params) env)))))

(de crename-list (l env)
  (if (null l) nil (cons (crename (car l) env)
                         (crename-list (cdr l) env))))

;; -- constant folding -----------------------------------------------------

(de cfold (x)
  (cond ((atom x) x)
        ((fixp (cdr x)) x)          ; renamed variable: (sym . n)
        ((eq (car x) 'quote) x)
        (t (let ((args (cfold-list (cdr x))))
             (cond ((and (eq (car x) 'add)
                         (cnum-args args))
                    (+ (car args) (cadr args)))
                   ((and (eq (car x) 'sub) (cnum-args args))
                    (- (car args) (cadr args)))
                   ((and (eq (car x) 'mul) (cnum-args args))
                    (* (car args) (cadr args)))
                   ((and (eq (car x) 'if) (fixp (car args)))
                    (if (zerop (car args)) (caddr args) (cadr args)))
                   (t (cons (car x) args)))))))

(de cnum-args (args)
  (and (pairp args) (fixp (car args))
       (pairp (cdr args)) (fixp (cadr args))))

(de cfold-list (l)
  (if (null l) nil (cons (cfold (car l)) (cfold-list (cdr l)))))

;; -- free variables --------------------------------------------------------

(de cfree (x bound acc)
  (cond ((fixp x) acc)
        ((symbolp x)
         (if (or (memq x bound) (memq x acc)) acc (cons x acc)))
        ((atom x) acc)
        ((fixp (cdr x)) acc)        ; renamed variable: always bound
        ((eq (car x) 'quote) acc)
        ((eq (car x) 'lambda)
         (cfree (caddr x) (append (cadr x) bound) acc))
        (t (cfree-list x bound acc))))

(de cfree-list (l bound acc)
  (if (null l) acc (cfree-list (cdr l) bound (cfree (car l) bound acc))))

;; -- tree size (result checksum) -------------------------------------------

(de csize (x)
  (cond ((null x) 0)
        ((atom x) 1)
        (t (+ (csize (car x)) (csize (cdr x))))))

(de comp-one (prog)
  (let* ((e (cexpand prog))
         (r (crename e nil))
         (f (cfold r)))
    (+ (csize f) (length (cfree f nil nil)))))

(de comp-main (reps)
  (let ((programs
         '((let ((x (add 1 2)) (y (mul 3 4)))
             (cond ((less x y) (add x y))
                   (t (sub x y))))
           (lambda (f g)
             (let ((h (f (g 1 2) (g 3 4))))
               (and (less h 10) (or (eq h 5) (eq h 6)) h)))
           (let ((a 1) (b 2) (c 3))
             (let ((d (add a (add b c))))
               (mul d (sub d (add 2 3)))))
           (cond ((eq kind 'leaf) (make-leaf val))
                 ((eq kind 'node) (make-node (build left)
                                             (build right)))
                 (t (error)))
           (lambda (n)
             (cond ((less n 2) n)
                   (t (add (fib (sub n 1)) (fib (sub n 2))))))
           (let ((table (make-table 64)))
             (and (insert table k1 (add 10 20))
                  (insert table k2 (mul 5 5))
                  (or (lookup table k1) (lookup table k2))))))
        (total 0))
    (setq *rename-counter* 0)
    (while (greaterp reps 0)
      (let ((ps programs))
        (while (pairp ps)
          (setq total (+ total (comp-one (car ps))))
          (setq ps (cdr ps))))
      (setq reps (sub1 reps)))
    (print total)
    (print (cfold (cexpand '(add (mul 2 3) (sub 10 (add 1 2))))))
    (print (length (cfree (cexpand (car programs)) nil nil)))))
)lisp";
    return src;
}

} // namespace mxl
