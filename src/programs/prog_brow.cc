#include "programs/programs.h"

namespace mxl {

/*
 * brow: "a short version of the browse benchmark; creates and browses
 * through an AI-like database of units" (Gabriel).
 *
 * Units are symbols carrying pattern data on their property lists; the
 * browser matches query patterns (with `?` matching one element and
 * `*` matching any span) against every unit's data, shuffling the
 * database between passes like the original.
 */
const std::string &
progBrow()
{
    static const std::string src = R"lisp(
;; -- pattern matcher (? = one, * = segment) ----------------------------

(de match (pat dat)
  (cond ((null pat) (null dat))
        ((eq (car pat) '*) (match-star (cdr pat) dat))
        ((null dat) nil)
        ((eq (car pat) '?) (match (cdr pat) (cdr dat)))
        ((and (pairp (car pat)) (pairp (car dat)))
         (and (match (car pat) (car dat))
              (match (cdr pat) (cdr dat))))
        ((eq (car pat) (car dat)) (match (cdr pat) (cdr dat)))
        (t nil)))

(de match-star (pat dat)
  (cond ((match pat dat) t)
        ((null dat) nil)
        (t (match-star pat (cdr dat)))))

;; -- the unit database ---------------------------------------------------

(de init-units (names)
  (setq *units* nil)
  (let ((ns names) (i 0))
    (while (pairp ns)
      (let ((u (car ns)))
        (put u 'pats (gen-pats i))
        (setq *units* (cons u *units*)))
      (setq i (add1 i))
      (setq ns (cdr ns)))))

(de gen-pats (i)
  ;; four data patterns per unit, deterministic but varied
  (list
   (list 'a (remainder i 3) 'b (list 'c (remainder i 5)) 'd)
   (list 'x (list 'y (remainder i 4)) 'z (remainder i 7))
   (list 'p 'q (list 'r (remainder i 2) 's) (remainder i 6) 'v)
   (list 'm (remainder i 5) (list 'n (remainder i 3)) 'o)))

;; Move the first unit to a random position (the original's shuffle).
(de shuffle ()
  (let ((u (car *units*)) (rest (cdr *units*)))
    (if (null rest)
        nil
        (let ((k (random (length rest))))
          (setq *units* (shuffle-insert u rest k))))))

(de shuffle-insert (u l k)
  (if (zerop k)
      (cons u l)
      (cons (car l) (shuffle-insert u (cdr l) (sub1 k)))))

(de browse-pattern (pat)
  (let ((us *units*) (hits 0))
    (while (pairp us)
      (let ((ps (get (car us) 'pats)))
        (while (pairp ps)
          (if (match pat (car ps)) (setq hits (add1 hits)) nil)
          (setq ps (cdr ps))))
      (setq us (cdr us)))
    hits))

(de brow-main (rounds)
  (seed-random 331)
  (init-units '(u1 u2 u3 u4 u5 u6 u7 u8 u9 u10 u11 u12 u13 u14 u15
                u16 u17 u18 u19 u20 u21 u22 u23 u24 u25))
  (let ((patterns '((a ? b * d)
                    (* (c 2) *)
                    (x (y ?) z *)
                    (p q (r ? s) * v)
                    (m * (n 1) o)
                    (* 3 *)
                    (a 1 * d)
                    (? ? (r 0 s) ? ?)))
        (total 0))
    (while (greaterp rounds 0)
      (let ((ps patterns))
        (while (pairp ps)
          (setq total (+ total (browse-pattern (car ps))))
          (setq ps (cdr ps))))
      (shuffle)
      (setq rounds (sub1 rounds)))
    (print total)
    (print (browse-pattern '(* (c 2) *)))
    (print (match '(a ? b * d) '(a 1 b (c 1) d)))))
)lisp";
    return src;
}

} // namespace mxl
