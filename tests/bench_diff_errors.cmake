# Exit-code and diagnostic tests for bench_diff's artifact loading:
# a missing, directory, empty, or unparseable artifact path must exit 2
# with a diagnostic naming the path, in every mode (default, --coverage,
# --backends) — never exit 0 and never masquerade as a bench verdict.
#
# ctest can assert PASS/FAIL but not specific exit codes, so this runs
# as a -P script:
#   cmake -DBENCH_DIFF=<path-to-binary> -P bench_diff_errors.cmake

if(NOT DEFINED BENCH_DIFF)
  message(FATAL_ERROR "pass -DBENCH_DIFF=<path to bench_diff>")
endif()

set(workdir "${CMAKE_CURRENT_BINARY_DIR}/bench_diff_errors.tmp")
file(REMOVE_RECURSE "${workdir}")
file(MAKE_DIRECTORY "${workdir}")

file(WRITE "${workdir}/empty.json" "")
file(WRITE "${workdir}/garbage.json" "this is { not json")
file(WRITE "${workdir}/valid.json"
     "{\"grid\": [{\"label\": \"x\", \"statusOk\": true, "
     "\"stats\": {\"total\": 100}, \"wallSeconds\": 0.5}]}")
file(MAKE_DIRECTORY "${workdir}/a_directory")

set(failures 0)

# expect_case(<name> <expected-rc> <stderr-substring> <args...>)
function(expect_case name expected_rc expected_text)
  execute_process(
    COMMAND "${BENCH_DIFF}" ${ARGN}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  set(ok TRUE)
  if(NOT rc EQUAL ${expected_rc})
    set(ok FALSE)
    message(WARNING "${name}: exit ${rc}, expected ${expected_rc}")
  endif()
  if(NOT "${expected_text}" STREQUAL "" AND
     NOT "${err}${out}" MATCHES "${expected_text}")
    set(ok FALSE)
    message(WARNING
            "${name}: diagnostic missing \"${expected_text}\";\n"
            "stderr was: ${err}")
  endif()
  if(ok)
    message(STATUS "PASS  ${name}")
  else()
    math(EXPR n "${failures} + 1")
    set(failures ${n} PARENT_SCOPE)
  endif()
endfunction()

set(missing "${workdir}/does_not_exist.json")
set(valid "${workdir}/valid.json")

# Missing artifact path, every mode.
expect_case(default_missing_before 2 "does_not_exist"
            "${missing}" "${valid}")
expect_case(default_missing_after 2 "does_not_exist"
            "${valid}" "${missing}")
expect_case(coverage_missing 2 "does_not_exist"
            --coverage "${missing}" "${valid}")
expect_case(backends_missing 2 "does_not_exist"
            --backends "${missing}")

# A directory is not an artifact (and must not read as "invalid JSON").
expect_case(default_directory 2 "not a regular file"
            "${workdir}/a_directory" "${valid}")
expect_case(backends_directory 2 "not a regular file"
            --backends "${workdir}/a_directory")

# Empty and unparseable artifacts, distinctly diagnosed.
expect_case(default_empty 2 "is empty"
            "${workdir}/empty.json" "${valid}")
expect_case(coverage_empty 2 "is empty"
            --coverage "${workdir}/empty.json" "${valid}")
expect_case(default_garbage 2 "not valid JSON"
            "${workdir}/garbage.json" "${valid}")
expect_case(backends_garbage 2 "not valid JSON"
            --backends "${workdir}/garbage.json")

# Usage errors keep exiting 2.
expect_case(no_arguments 2 "usage")
expect_case(too_many_paths 2 "usage" a b c)

# Sanity: a well-formed pair still succeeds (exit 0), so the error
# paths above are not just a tool that always fails.
expect_case(valid_self_diff 0 "" "${valid}" "${valid}")

file(REMOVE_RECURSE "${workdir}")

if(failures GREATER 0)
  message(FATAL_ERROR "${failures} bench_diff error-path case(s) failed")
endif()
message(STATUS "all bench_diff error-path cases passed")
