#include "core/report.h"

#include "support/panic.h"

namespace mxl {

const char *const fig1OpNames[fig1Ops] = {
    "insertion", "removal", "extraction", "checking",
};

namespace {

Purpose
fig1Purpose(int i)
{
    switch (i) {
      case 0: return Purpose::TagInsert;
      case 1: return Purpose::TagRemove;
      case 2: return Purpose::TagExtract;
      case 3: return Purpose::TagCheck;
    }
    panic("fig1Purpose");
}

double
pct(uint64_t part, uint64_t whole)
{
    return whole ? 100.0 * static_cast<double>(part) /
                       static_cast<double>(whole)
                 : 0.0;
}

} // namespace

ProgramMeasurement
measureProgram(const BenchmarkProgram &prog, const CompilerOptions &base)
{
    ProgramMeasurement m;
    m.program = prog.name;

    CompilerOptions off = base;
    off.checking = Checking::Off;
    off.heapBytes = prog.heapBytes;
    m.off = compileAndRun(prog.source, off, prog.maxCycles);

    CompilerOptions full = base;
    full.checking = Checking::Full;
    full.heapBytes = prog.heapBytes;
    m.full = compileAndRun(prog.source, full, prog.maxCycles);

    if (!m.off.ok() || !m.full.ok())
        fatal("benchmark ", prog.name, " did not halt cleanly");
    if (m.off.output != m.full.output)
        fatal("benchmark ", prog.name,
              " output differs between checking modes");
    return m;
}

std::vector<ProgramMeasurement>
measureAll(Engine &eng, const CompilerOptions &base)
{
    return measureAll(eng, base, nullptr, nullptr);
}

std::vector<ProgramMeasurement>
measureAll(Engine &eng, const CompilerOptions &base,
           std::vector<RunRequest> *reqsOut,
           std::vector<RunReport> *reportsOut, bool collectProfile)
{
    // One grid of 2×10 cells: all off-runs, then all full-runs.
    CompilerOptions off = base;
    off.checking = Checking::Off;
    CompilerOptions full = base;
    full.checking = Checking::Full;
    std::vector<RunRequest> grid = programGrid(off);
    std::vector<RunRequest> fullGrid = programGrid(full);
    grid.insert(grid.end(), fullGrid.begin(), fullGrid.end());
    // Unique labels per cell, so exported grids pair up by label in
    // tools/bench_diff.
    for (size_t i = 0; i < grid.size(); ++i)
        grid[i].label = (i < grid.size() / 2 ? "off/" : "full/") +
                        grid[i].label;
    if (collectProfile)
        for (RunRequest &req : grid)
            req.hooks.collectProfile = true;

    std::vector<RunReport> reports = eng.runGrid(grid);
    auto results = unwrapReports(reports);
    if (reqsOut)
        *reqsOut = grid;
    if (reportsOut)
        *reportsOut = std::move(reports);
    const auto &progs = benchmarkPrograms();
    std::vector<ProgramMeasurement> out;
    for (size_t i = 0; i < progs.size(); ++i) {
        ProgramMeasurement m;
        m.program = progs[i].name;
        m.off = results[i];
        m.full = results[i + progs.size()];
        if (!m.off.ok() || !m.full.ok())
            fatal("benchmark ", m.program, " did not halt cleanly");
        if (m.off.output != m.full.output)
            fatal("benchmark ", m.program,
                  " output differs between checking modes");
        out.push_back(std::move(m));
    }
    return out;
}

std::vector<ProgramMeasurement>
measureAll(const CompilerOptions &base)
{
    return measureAll(Engine::defaultEngine(), base);
}

std::vector<RunRequest>
programGrid(const CompilerOptions &base)
{
    std::vector<RunRequest> grid;
    for (const auto &p : benchmarkPrograms()) {
        RunRequest req;
        req.source = p.source;
        req.opts = base;
        req.opts.heapBytes = p.heapBytes;
        req.exec.maxCycles = p.maxCycles;
        req.label = p.name;
        grid.push_back(std::move(req));
    }
    return grid;
}

std::vector<RunResult>
runPrograms(Engine &eng, const CompilerOptions &base)
{
    return unwrapReports(eng.runGrid(programGrid(base)));
}

std::vector<RunResult>
unwrapReports(const std::vector<RunReport> &reports)
{
    std::vector<RunResult> out;
    out.reserve(reports.size());
    for (const auto &rep : reports) {
        if (rep.status.code == RunStatus::Code::Timeout)
            fatal("grid cell '", rep.label, "' exceeded its deadline: ",
                  rep.status.message,
                  " (raise ExecPolicy::deadlineSeconds or drop it)");
        if (!rep.status.ok())
            fatal("grid cell '", rep.label, "' failed: ",
                  rep.status.message);
        out.push_back(rep.result);
    }
    return out;
}

Table1Row
table1Row(const ProgramMeasurement &m)
{
    Table1Row r;
    r.program = m.program;
    uint64_t offTotal = m.off.stats.total;
    // The added cost of each checking category, relative to the
    // unchecked execution time (Table 1's columns).
    r.arith = pct(m.full.stats.catChecking(CheckCat::Arith), offTotal);
    r.vector = pct(m.full.stats.catChecking(CheckCat::Vector), offTotal);
    r.list = pct(m.full.stats.catChecking(CheckCat::List), offTotal);
    r.total = pct(m.full.stats.total, offTotal) - 100.0;
    return r;
}

Figure1Bars
figure1Bars(const ProgramMeasurement &m)
{
    Figure1Bars f;
    for (int i = 0; i < fig1Ops; ++i) {
        Purpose p = fig1Purpose(i);
        f.withoutRtc[i] = pct(m.off.stats.purposeTotal(p),
                              m.off.stats.total);
        int pi = static_cast<int>(p);
        f.addedByRtc[i] = pct(m.full.stats.byPurpose[pi][1],
                              m.full.stats.total);
        f.withRtc[i] = pct(m.full.stats.purposeTotal(p),
                           m.full.stats.total);
        f.totalWithout += f.withoutRtc[i];
        f.totalWith += f.withRtc[i];
    }
    return f;
}

Figure1Bars
figure1Average(const std::vector<ProgramMeasurement> &ms)
{
    Figure1Bars avg;
    if (ms.empty())
        return avg;
    for (const auto &m : ms) {
        Figure1Bars f = figure1Bars(m);
        for (int i = 0; i < fig1Ops; ++i) {
            avg.withoutRtc[i] += f.withoutRtc[i];
            avg.addedByRtc[i] += f.addedByRtc[i];
            avg.withRtc[i] += f.withRtc[i];
        }
        avg.totalWithout += f.totalWithout;
        avg.totalWith += f.totalWith;
    }
    double n = static_cast<double>(ms.size());
    for (int i = 0; i < fig1Ops; ++i) {
        avg.withoutRtc[i] /= n;
        avg.addedByRtc[i] /= n;
        avg.withRtc[i] /= n;
    }
    avg.totalWithout /= n;
    avg.totalWith /= n;
    return avg;
}

Figure2Data
figure2Data(const RunResult &base, const RunResult &noMask)
{
    Figure2Data d;
    uint64_t denom = base.stats.total;
    auto delta = [&](uint64_t a, uint64_t b) {
        return 100.0 * (static_cast<double>(a) - static_cast<double>(b)) /
               static_cast<double>(denom ? denom : 1);
    };
    d.andOps = delta(base.stats.andOps, noMask.stats.andOps);
    d.moveOps = delta(base.stats.moveOps, noMask.stats.moveOps);
    d.noops = delta(base.stats.noops + base.stats.loadStalls,
                    noMask.stats.noops + noMask.stats.loadStalls);
    d.squashed = delta(base.stats.squashed, noMask.stats.squashed);
    d.total = delta(base.stats.total, noMask.stats.total);
    return d;
}

Table2Cell
table2Cell(const RunResult &base, const RunResult &cfg)
{
    Table2Cell c;
    uint64_t denom = base.stats.total;
    auto delta = [&](uint64_t a, uint64_t b) {
        return 100.0 * (static_cast<double>(a) - static_cast<double>(b)) /
               static_cast<double>(denom ? denom : 1);
    };
    c.total = delta(base.stats.total, cfg.stats.total);
    c.mask = delta(base.stats.purposeTotal(Purpose::TagRemove),
                   cfg.stats.purposeTotal(Purpose::TagRemove));
    uint64_t baseCheck = base.stats.purposeTotal(Purpose::TagExtract) +
                         base.stats.purposeTotal(Purpose::TagCheck) +
                         base.stats.purposeTotal(Purpose::OtherCheck);
    uint64_t cfgCheck = cfg.stats.purposeTotal(Purpose::TagExtract) +
                        cfg.stats.purposeTotal(Purpose::TagCheck) +
                        cfg.stats.purposeTotal(Purpose::OtherCheck);
    c.check = delta(baseCheck, cfgCheck);
    return c;
}

Json
cycleStatsJson(const CycleStats &s)
{
    Json j = Json::object();
    j.set("total", s.total);
    j.set("instructions", s.instructions);
    Json purposes = Json::object();
    for (int p = 0; p < numPurposes; ++p) {
        if (s.byPurpose[p][0] == 0 && s.byPurpose[p][1] == 0)
            continue;
        Json split = Json::object();
        split.set("base", s.byPurpose[p][0]);
        split.set("checking", s.byPurpose[p][1]);
        purposes.set(purposeName(static_cast<Purpose>(p)),
                     std::move(split));
    }
    j.set("byPurpose", std::move(purposes));
    Json cats = Json::object();
    for (int c = 0; c < numCheckCats; ++c) {
        if (s.byCat[c][0] == 0 && s.byCat[c][1] == 0)
            continue;
        Json split = Json::object();
        split.set("base", s.byCat[c][0]);
        split.set("checking", s.byCat[c][1]);
        cats.set(checkCatName(static_cast<CheckCat>(c)),
                 std::move(split));
    }
    j.set("byCat", std::move(cats));
    j.set("andOps", s.andOps);
    j.set("moveOps", s.moveOps);
    j.set("noops", s.noops);
    j.set("squashed", s.squashed);
    j.set("loadStalls", s.loadStalls);
    j.set("loads", s.loads);
    j.set("stores", s.stores);
    j.set("branches", s.branches);
    return j;
}

Json
compilerOptionsJson(const CompilerOptions &o)
{
    Json j = Json::object();
    j.set("scheme", schemeKindName(o.scheme));
    j.set("checking", o.checking == Checking::Full ? "full" : "off");
    j.set("arithMode", static_cast<int64_t>(o.arithMode));
    j.set("ignoreTagOnMemory", o.hw.ignoreTagOnMemory);
    j.set("branchOnTag", o.hw.branchOnTag);
    j.set("genericArith", o.hw.genericArith);
    j.set("checkedMemory", static_cast<int64_t>(o.hw.checkedMemory));
    j.set("fillDelaySlots", o.fillDelaySlots);
    j.set("overlapChecks", o.overlapChecks);
    j.set("memBytes", o.memBytes);
    j.set("staticBytes", o.staticBytes);
    j.set("heapBytes", o.heapBytes);
    return j;
}

Json
runReportJson(const RunRequest &req, const RunReport &rep)
{
    Json j = Json::object();
    j.set("label", rep.label);
    j.set("options", compilerOptionsJson(req.opts));
    j.set("statusOk", rep.status.ok());
    if (!rep.status.ok())
        j.set("statusMessage", rep.status.message);
    j.set("stop", static_cast<int64_t>(rep.result.stop));
    j.set("errorCode", rep.result.errorCode);
    j.set("exitValue", rep.result.exitValue);
    j.set("stats", cycleStatsJson(rep.result.stats));
    j.set("wallSeconds", rep.wallSeconds);
    j.set("cacheHit", rep.cacheHit);
    j.set("backend", backendName(rep.backend));
    if (rep.backendFellBack)
        j.set("backendNote", rep.backendNote);
    return j;
}

Json
gridJson(const std::vector<RunRequest> &reqs,
         const std::vector<RunReport> &reports)
{
    MXL_ASSERT(reqs.size() == reports.size(),
               "gridJson: requests and reports must pair up");
    Json arr = Json::array();
    for (size_t i = 0; i < reqs.size(); ++i)
        arr.push(runReportJson(reqs[i], reports[i]));
    return arr;
}

Table2Cell
table2Average(const std::vector<RunResult> &bases,
              const std::vector<RunResult> &cfgs)
{
    MXL_ASSERT(bases.size() == cfgs.size() && !bases.empty(),
               "mismatched measurement sets");
    Table2Cell avg;
    for (size_t i = 0; i < bases.size(); ++i) {
        Table2Cell c = table2Cell(bases[i], cfgs[i]);
        avg.total += c.total;
        avg.check += c.check;
        avg.mask += c.mask;
    }
    double n = static_cast<double>(bases.size());
    avg.total /= n;
    avg.check /= n;
    avg.mask /= n;
    return avg;
}

} // namespace mxl
