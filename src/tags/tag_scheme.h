/**
 * @file
 * The tag-scheme abstraction: where tags live in a 32-bit word, what the
 * tag values are, and how fixnums/pointers/immediates are encoded.
 *
 * This is the independent variable of the paper. Four concrete schemes
 * are provided:
 *   - HighTag5: the PSL/MIPS-X baseline of §2.1 (5-bit high tags,
 *     positive integers tag 0, negative integers tag 31);
 *   - HighTag6: the §4.2 arithmetic-friendly 6-bit encoding;
 *   - LowTag2:  §5.2, tag in the bottom 2 bits of word-aligned pointers;
 *   - LowTag3:  §5.2, bottom 3 bits, even/odd fixnums 000/100.
 *
 * The scheme is consulted both by the compiler (code generation) and by
 * the machine (hardware tag support is "built into the architecture",
 * §6.1), and by the runtime image builder (static data encoding).
 */

#ifndef MXLISP_TAGS_TAG_SCHEME_H_
#define MXLISP_TAGS_TAG_SCHEME_H_

#include <cstdint>
#include <memory>
#include <string>

#include "tags/type_id.h"

namespace mxl {

/** Where in the word the tag field lives. */
enum class TagPlacement { High, Low };

/**
 * Abstract tag scheme.
 *
 * Address-bearing words ("pointers") carry byte addresses; the data part
 * of a code pointer is the byte address of an instruction, which in every
 * scheme is naturally a fixnum (word alignment makes the low bits zero,
 * and code addresses are small enough for high-tag schemes), so return
 * addresses and function cells need no separate code tag and are GC-inert.
 */
class TagScheme
{
  public:
    virtual ~TagScheme() = default;

    /** Short scheme name, e.g. "high5". */
    virtual std::string name() const = 0;

    virtual TagPlacement placement() const = 0;

    /** Width of the tag field in bits. */
    virtual unsigned tagBits() const = 0;

    /** Bit position of the low end of the tag field. */
    unsigned
    tagShift() const
    {
        return placement() == TagPlacement::High ? 32 - tagBits() : 0;
    }

    /** Raw tag-field value of a word. */
    uint32_t
    primaryTag(uint32_t w) const
    {
        return (w >> tagShift()) & ((1u << tagBits()) - 1u);
    }

    /** Number of bits available for the data part. */
    unsigned
    dataBits() const
    {
        return 32 - tagBits();
    }

    // --- fixnums --------------------------------------------------------

    /**
     * Multiplier between a fixnum's value and its machine representation.
     * 1 for high-tag schemes (LISP integer == two's-complement machine
     * integer, §2.1); 4 for low-tag schemes (value << 2), which is what
     * makes word-vector indexing free there (§5.2).
     */
    virtual int fixnumScale() const = 0;

    virtual bool fixnumInRange(int64_t v) const = 0;

    /** Encode an in-range fixnum. */
    virtual uint32_t encodeFixnum(int64_t v) const = 0;

    virtual int64_t decodeFixnum(uint32_t w) const = 0;

    /** True if the word is a fixnum (what integer-test hardware checks). */
    virtual bool wordIsFixnum(uint32_t w) const = 0;

    // --- pointers -------------------------------------------------------

    /**
     * The tag value used for pointers of type @p t. For schemes with too
     * few tags (LowTag2), several types share a tag and are further
     * discriminated by an object header; see headerDiscriminated().
     * @p t must be a pointer type (Pair/Symbol/Vector/String).
     */
    virtual uint32_t pointerTag(TypeId t) const = 0;

    /** True if a type check on @p t must also inspect the object header. */
    virtual bool headerDiscriminated(TypeId t) const = 0;

    /** Encode a pointer to byte address @p addr with type @p t. */
    virtual uint32_t encodePointer(TypeId t, uint32_t addr) const = 0;

    /** Strip the tag field, yielding a byte address. */
    virtual uint32_t detagAddr(uint32_t w) const = 0;

    /**
     * Constant to add to a memory-access offset so that the tag of a
     * pointer of type @p t is absorbed without masking. Always 0 for
     * high-tag schemes (they must mask); -tag for low-tag schemes.
     */
    virtual int32_t offsetAdjust(TypeId t) const = 0;

    /**
     * Required address alignment (bytes) for objects of type @p t, so
     * that low-tag bits are zero in the raw address.
     */
    virtual uint32_t alignment(TypeId t) const = 0;

    // --- immediates -----------------------------------------------------

    virtual uint32_t encodeChar(uint32_t code) const = 0;
    virtual uint32_t charCode(uint32_t w) const = 0;
    virtual uint32_t charTag() const = 0;

    // --- generic arithmetic (§4.2) ---------------------------------------

    /**
     * True if adding two tagged words and type-checking only the result
     * is a sound generic-add implementation (the §4.2 property: the sum
     * of two non-integer tags can never be an integer tag, and integer
     * overflow always perturbs the tag).
     */
    virtual bool sumCheckSound() const = 0;
};

/** Identifiers for the built-in schemes. */
enum class SchemeKind { High5, High6, Low2, Low3 };

/** Construct one of the built-in schemes. */
std::unique_ptr<TagScheme> makeScheme(SchemeKind kind);

/** All built-in scheme kinds (for parameterized tests/benches). */
const char *schemeKindName(SchemeKind kind);

} // namespace mxl

#endif // MXLISP_TAGS_TAG_SCHEME_H_
