/**
 * Reproduces Table 1: percentage increase in execution time when full
 * run-time checking is added, per program, split into the arith /
 * vector / list checking categories.
 */

#include <cstdio>

#include "core/engine.h"
#include "core/experiment.h"
#include "core/paper.h"
#include "core/report.h"
#include "support/stats.h"
#include "support/format.h"
#include "support/table.h"

using namespace mxl;

int
main()
{
    std::printf("Table 1: %% increase in execution time when run-time "
                "checking is added\n");
    std::printf("(measured on mxlisp; paper values in parentheses)\n\n");

    Engine eng;
    auto ms = measureAll(eng, baselineOptions(Checking::Off));

    TextTable t;
    t.addRow({"program", "arith", "vector", "list", "total",
              "(paper total)"});
    std::vector<double> totals;
    for (size_t i = 0; i < ms.size(); ++i) {
        auto r = table1Row(ms[i]);
        const auto &p = paper::table1()[i];
        t.addRow({r.program, fixed(r.arith, 2), fixed(r.vector, 2),
                  fixed(r.list, 2), fixed(r.total, 2),
                  strcat("(", fixed(p.total, 2), ")")});
        totals.push_back(r.total);
    }
    t.addRule();
    t.addRow({"average", "", "", "", fixed(mean(totals), 2),
              strcat("(", fixed(paper::table1Average, 2), ")")});
    std::printf("%s\n", t.render().c_str());

    std::printf("shape checks:\n");
    std::printf("  checking slows every program ........ %s\n",
                minOf(totals) > 0 ? "yes" : "NO");
    std::printf("  list checks dominate most programs .. (see rows)\n");
    std::printf("  opt & trav are the vector-heavy pair, rat the "
                "arith-heavy one\n");
    return 0;
}
