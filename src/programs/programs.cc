#include "programs/programs.h"

#include "support/panic.h"

namespace mxl {

const std::vector<BenchmarkProgram> &
benchmarkPrograms()
{
    static const std::vector<BenchmarkProgram> progs = [] {
        std::vector<BenchmarkProgram> v;
        const uint32_t defaultHeap = 4u << 20;
        const uint64_t guard = 800'000'000;

        v.push_back({"inter",
                     "Lisp-in-Lisp interpreter: fib(10) and a sort",
                     progInter(), defaultHeap, guard});
        v.push_back({"deduce",
                     "deductive retriever over a discrimination tree",
                     progDeduce() + "\n(deduce-main 25)\n", defaultHeap,
                     guard});
        // dedgc: same program, heap sized so the copying collector
        // accounts for roughly half the execution time (Appendix says
        // "about 50% of its time in the garbage collector"); 10 KiB
        // semispaces measure at ~51%.
        v.push_back({"dedgc",
                     "deduce with a copying GC dominating (~50%)",
                     progDeduce() + progDedgcDriver(), 10u << 10, guard});
        v.push_back({"rat", "rational function evaluator",
                     progRat() + "\n(rat-main 120)\n", defaultHeap, guard});
        v.push_back({"comp", "compiler front-end first pass",
                     progComp() + "\n(comp-main 60)\n", defaultHeap,
                     guard});
        v.push_back({"opt", "optimizer over vector-held code",
                     progOpt() + "\n(opt-main 10 120 12)\n", defaultHeap,
                     guard});
        v.push_back({"frl", "frame-representation-language inventory",
                     progFrl() + "\n(frl-main 80)\n", defaultHeap, guard});
        v.push_back({"boyer", "rewrite-based tautology prover",
                     progBoyer() + "\n(boyer-main 1)\n", defaultHeap,
                     guard});
        v.push_back({"brow", "browse an AI-like unit database",
                     progBrow() + "\n(brow-main 40)\n", defaultHeap,
                     guard});
        v.push_back({"trav", "build and traverse a vector graph",
                     progTrav() + "\n(trav-main 100 150 60)\n",
                     defaultHeap, guard});
        return v;
    }();
    return progs;
}

const BenchmarkProgram &
programByName(const std::string &name)
{
    for (const auto &p : benchmarkPrograms()) {
        if (p.name == name)
            return p;
    }
    fatal("unknown benchmark program '", name, "'");
}

} // namespace mxl
