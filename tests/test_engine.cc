/**
 * mxl::Engine: compiled-unit cache accounting, deterministic parallel
 * grids (byte-identical CycleStats vs the serial path), non-throwing
 * compile-error reporting, LRU eviction, and a concurrent stress test
 * written to be clean under ThreadSanitizer (-DMXL_SANITIZE=thread).
 */

#include <algorithm>
#include <cstring>
#include <mutex>
#include <type_traits>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/experiment.h"
#include "core/run.h"
#include "support/panic.h"

using namespace mxl;

namespace {

const char *const kLoop =
    "(de tri (n) (if (lessp n 1) 0 (+ n (tri (sub1 n)))))"
    "(print (tri 40))";

const char *const kLists =
    "(de build (n) (if (lessp n 1) nil (cons n (build (sub1 n)))))"
    "(print (length (build 50)))";

RunRequest
request(const char *source, Checking checking,
        SchemeKind scheme = SchemeKind::High5)
{
    RunRequest req;
    req.source = source;
    req.opts = baselineOptions(checking);
    req.opts.scheme = scheme;
    return req;
}

static_assert(std::is_trivially_copyable_v<CycleStats>,
              "CycleStats must stay memcmp-comparable");

bool
sameStats(const CycleStats &a, const CycleStats &b)
{
    return std::memcmp(&a, &b, sizeof(CycleStats)) == 0;
}

} // namespace

TEST(Engine, RunProducesSameResultAsDirectPath)
{
    Engine eng(2);
    RunRequest req = request(kLoop, Checking::Full);
    RunReport rep = eng.run(req);
    ASSERT_TRUE(rep.ok()) << rep.status.message;

    CompiledUnit unit = compileUnit(req.source, req.opts);
    RunResult direct = runUnit(unit);
    EXPECT_TRUE(sameStats(rep.result.stats, direct.stats));
    EXPECT_EQ(rep.result.output, direct.output);
    EXPECT_EQ(rep.result.output, "820\n");
}

TEST(Engine, CacheHitAndMissAccounting)
{
    Engine eng(2);
    RunRequest req = request(kLoop, Checking::Off);

    RunReport first = eng.run(req);
    ASSERT_TRUE(first.ok());
    EXPECT_FALSE(first.cacheHit);

    RunReport second = eng.run(req);
    ASSERT_TRUE(second.ok());
    EXPECT_TRUE(second.cacheHit);
    EXPECT_TRUE(sameStats(first.result.stats, second.result.stats));

    auto cs = eng.cacheStats();
    EXPECT_EQ(cs.hits, 1u);
    EXPECT_EQ(cs.misses, 1u);
    EXPECT_EQ(cs.entries, 1u);

    // A different configuration of the same source is a distinct unit.
    RunReport other = eng.run(request(kLoop, Checking::Full));
    ASSERT_TRUE(other.ok());
    EXPECT_FALSE(other.cacheHit);
    EXPECT_EQ(eng.cacheStats().entries, 2u);
}

TEST(Engine, EveryRepeatedPairHitsTheCache)
{
    Engine eng(2);
    std::vector<RunRequest> grid;
    for (Checking chk : {Checking::Off, Checking::Full})
        for (const char *src : {kLoop, kLists})
            grid.push_back(request(src, chk));
    std::vector<RunRequest> twice = grid;
    twice.insert(twice.end(), grid.begin(), grid.end());

    auto reports = eng.runGrid(twice);
    ASSERT_EQ(reports.size(), twice.size());
    for (size_t i = 0; i < grid.size(); ++i) {
        ASSERT_TRUE(reports[i + grid.size()].ok());
        EXPECT_TRUE(sameStats(reports[i].result.stats,
                              reports[i + grid.size()].result.stats));
    }
    auto cs = eng.cacheStats();
    EXPECT_EQ(cs.misses, grid.size());
    EXPECT_GE(cs.hits, grid.size()); // ≥1 observed hit per repeated pair
}

TEST(Engine, GridIsDeterministicAndOrdered)
{
    // Serial baseline via the direct (non-engine) path.
    std::vector<RunRequest> grid;
    grid.push_back(request(kLoop, Checking::Off));
    grid.push_back(request(kLoop, Checking::Full));
    grid.push_back(request(kLists, Checking::Off, SchemeKind::Low3));
    grid.push_back(request(kLists, Checking::Full, SchemeKind::Low2));
    for (size_t i = 0; i < grid.size(); ++i)
        grid[i].label = "cell" + std::to_string(i);

    std::vector<RunResult> serial;
    for (const auto &req : grid)
        serial.push_back(runUnit(compileUnit(req.source, req.opts),
                                 req.exec.maxCycles));

    Engine eng(4);
    auto reports = eng.runGrid(grid);
    ASSERT_EQ(reports.size(), grid.size());
    for (size_t i = 0; i < grid.size(); ++i) {
        EXPECT_EQ(reports[i].label, "cell" + std::to_string(i));
        ASSERT_TRUE(reports[i].ok()) << reports[i].status.message;
        EXPECT_TRUE(sameStats(reports[i].result.stats, serial[i].stats))
            << "cell " << i << " diverged from serial execution";
        EXPECT_EQ(reports[i].result.output, serial[i].output);
    }
}

TEST(Engine, ConcurrentGridSharesNoMutableState)
{
    // Two workers hammer two shared cached units from many grid cells;
    // run under -DMXL_SANITIZE=thread to let TSan check the claim.
    Engine eng(2);
    std::vector<RunRequest> grid;
    for (int i = 0; i < 8; ++i)
        grid.push_back(request(i % 2 ? kLoop : kLists, Checking::Full));

    auto first = eng.runGrid(grid);
    auto second = eng.runGrid(grid);
    ASSERT_EQ(first.size(), grid.size());
    for (size_t i = 0; i < grid.size(); ++i) {
        ASSERT_TRUE(first[i].ok());
        ASSERT_TRUE(second[i].ok());
        EXPECT_TRUE(sameStats(first[i].result.stats,
                              second[i].result.stats));
    }
    // 2 distinct units; every other cell is a hit.
    EXPECT_EQ(eng.cacheStats().entries, 2u);
    EXPECT_EQ(eng.cacheStats().misses, 2u);
}

TEST(Engine, CompileErrorsAreReportedNotThrown)
{
    Engine eng(2);
    RunRequest bad = request("(undefined-fn 1)", Checking::Off);
    RunReport rep;
    EXPECT_NO_THROW(rep = eng.run(bad));
    EXPECT_FALSE(rep.ok());
    EXPECT_EQ(rep.status.code, RunStatus::Code::CompileError);
    EXPECT_NE(rep.status.message.find("undefined-fn"), std::string::npos);
    // The failed compile is cached too: same diagnostic, now a hit.
    RunReport again = eng.run(bad);
    EXPECT_TRUE(again.cacheHit);
    EXPECT_EQ(again.status.code, RunStatus::Code::CompileError);
    EXPECT_EQ(again.status.message, rep.status.message);
}

TEST(Engine, GridSurvivesMixedGoodAndBadCells)
{
    Engine eng(2);
    std::vector<RunRequest> grid;
    grid.push_back(request(kLoop, Checking::Off));
    grid.push_back(request("(de f (a) a) (f 1 2)", Checking::Off));
    grid.push_back(request(kLists, Checking::Off));
    auto reports = eng.runGrid(grid);
    ASSERT_EQ(reports.size(), 3u);
    EXPECT_TRUE(reports[0].ok());
    EXPECT_EQ(reports[1].status.code, RunStatus::Code::CompileError);
    EXPECT_TRUE(reports[2].ok());
}

TEST(Engine, RunErrorsLandInResultNotStatus)
{
    Engine eng(1);
    RunReport rep = eng.run(request("(car 5)", Checking::Full));
    EXPECT_TRUE(rep.status.ok());            // compiled fine
    EXPECT_EQ(rep.result.stop, StopReason::Errored);

    RunRequest limited = request(kLoop, Checking::Off);
    limited.exec.maxCycles = 100;
    rep = eng.run(limited);
    EXPECT_TRUE(rep.status.ok());
    EXPECT_EQ(rep.result.stop, StopReason::CycleLimit);
}

TEST(Engine, LegacyWrapperTranslatesErrorsBack)
{
    // compileAndRun throws on compile errors (historical contract)...
    EXPECT_THROW(compileAndRun("(undefined-fn 1)",
                               baselineOptions(Checking::Off)),
                 MxlError);
    // ...but encodes run errors in the result.
    auto r = compileAndRun("(car 5)", baselineOptions(Checking::Full),
                           10'000'000);
    EXPECT_EQ(r.stop, StopReason::Errored);
}

TEST(Engine, LruEvictionRespectsCapacity)
{
    Engine eng(1, /*cacheCapacity=*/1);
    eng.run(request(kLoop, Checking::Off));
    eng.run(request(kLists, Checking::Off)); // evicts kLoop
    eng.run(request(kLoop, Checking::Off));  // miss again
    auto cs = eng.cacheStats();
    EXPECT_EQ(cs.entries, 1u);
    EXPECT_EQ(cs.misses, 3u);
    EXPECT_EQ(cs.hits, 0u);
}

TEST(Engine, ByteBoundEvictsWhenImagesOutgrowTheLimit)
{
    // A byte limit far below two compiled images: the second compile
    // must evict the first even though the entry-count capacity (256)
    // is nowhere near exhausted.
    Engine eng(1, /*cacheCapacity=*/256, /*cacheMaxBytes=*/1);
    eng.run(request(kLoop, Checking::Off));
    auto one = eng.cacheStats();
    // The most recent unit always survives, even oversized — otherwise
    // a large image could never be cached at all.
    EXPECT_EQ(one.entries, 1u);
    EXPECT_GT(one.bytes, one.byteLimit);
    EXPECT_EQ(one.byteLimit, 1u);
    EXPECT_EQ(one.evictions, 0u);

    eng.run(request(kLists, Checking::Off));
    auto two = eng.cacheStats();
    EXPECT_EQ(two.entries, 1u);
    EXPECT_EQ(two.evictions, 1u);

    // kLoop was evicted: rerunning it is a miss, not a hit.
    eng.run(request(kLoop, Checking::Off));
    auto three = eng.cacheStats();
    EXPECT_EQ(three.hits, 0u);
    EXPECT_EQ(three.misses, 3u);
    EXPECT_EQ(three.evictions, 2u);
}

TEST(Engine, GenerousByteBoundKeepsBothEntries)
{
    Engine eng(1, /*cacheCapacity=*/256,
               /*cacheMaxBytes=*/Engine::kDefaultCacheBytes);
    eng.run(request(kLoop, Checking::Off));
    eng.run(request(kLists, Checking::Off));
    eng.run(request(kLoop, Checking::Off)); // hit
    auto cs = eng.cacheStats();
    EXPECT_EQ(cs.entries, 2u);
    EXPECT_EQ(cs.hits, 1u);
    EXPECT_EQ(cs.misses, 2u);
    EXPECT_EQ(cs.evictions, 0u);
    EXPECT_GT(cs.bytes, 0u);
    EXPECT_LE(cs.bytes, cs.byteLimit);
}

TEST(Engine, ClearCacheResetsByteAccounting)
{
    Engine eng(1);
    eng.run(request(kLoop, Checking::Off));
    ASSERT_GT(eng.cacheStats().bytes, 0u);
    eng.clearCache();
    auto cs = eng.cacheStats();
    EXPECT_EQ(cs.entries, 0u);
    EXPECT_EQ(cs.bytes, 0u);
    // Re-populating after a clear accounts bytes afresh.
    eng.run(request(kLoop, Checking::Off));
    EXPECT_GT(eng.cacheStats().bytes, 0u);
}

TEST(Engine, CompileOutcomeExposesCachedUnit)
{
    Engine eng(1);
    auto opts = baselineOptions(Checking::Off);
    auto c = eng.compile(kLoop, opts);
    ASSERT_TRUE(c.status.ok()) << c.status.message;
    ASSERT_NE(c.unit, nullptr);
    EXPECT_FALSE(c.cacheHit);
    EXPECT_GT(c.unit->procedures, 0);
    EXPECT_GT(c.unit->objectWords, 0);
    // The cached image is trimmed well below the full address space.
    EXPECT_LT(c.unit->memory.size(), c.unit->layout.memBytes);

    // A run of the same cell reuses the compilation.
    RunReport rep = eng.run(request(kLoop, Checking::Off));
    EXPECT_TRUE(rep.cacheHit);
    EXPECT_TRUE(rep.ok());
}

TEST(Engine, WallTimeAndThreadCountAreReported)
{
    Engine eng(3);
    EXPECT_EQ(eng.threadCount(), 3u);
    RunReport rep = eng.run(request(kLoop, Checking::Off));
    EXPECT_GT(rep.wallSeconds, 0.0);
}

TEST(Engine, DeadlineSurfacesTimeout)
{
    Engine eng(1);
    RunRequest spin =
        request("(setq i 0) (while t (setq i (add1 i)))", Checking::Off);
    spin.exec.deadlineSeconds = 0.2;
    RunReport rep = eng.run(spin);
    EXPECT_EQ(rep.status.code, RunStatus::Code::Timeout);
    EXPECT_FALSE(rep.ok());
    EXPECT_TRUE(rep.result.timedOut);
    EXPECT_EQ(rep.result.stop, StopReason::CycleLimit);
    EXPECT_NE(rep.status.message.find("deadline"), std::string::npos);
}

TEST(Engine, DeadlineRunThatFinishesIsCycleIdentical)
{
    // The deadline machinery chunks execution through Machine::resume;
    // a run that beats its deadline must be indistinguishable from a
    // deadline-free run.
    Engine eng(1);
    RunReport plain = eng.run(request(kLoop, Checking::Full));
    RunRequest limited = request(kLoop, Checking::Full);
    limited.exec.deadlineSeconds = 30;
    RunReport rep = eng.run(limited);
    ASSERT_TRUE(plain.ok());
    ASSERT_TRUE(rep.ok());
    EXPECT_FALSE(rep.result.timedOut);
    EXPECT_TRUE(sameStats(plain.result.stats, rep.result.stats));
    EXPECT_EQ(plain.result.output, rep.result.output);
}

TEST(Engine, GridOfExpiringCellsCancelsEveryCellAndFreesWorkers)
{
    // Mid-runGrid cancellation: more spinning cells than workers, each
    // with a short deadline. Every cell must come back Timeout (no
    // cell is silently dropped, none runs forever), and the pool must
    // come out of it reusable — a wedged worker would hang the next
    // grid.
    Engine eng(2);
    const char *spin = "(setq i 0) (while t (setq i (add1 i)))";
    std::vector<RunRequest> reqs;
    for (int i = 0; i < 5; ++i) {
        RunRequest r = request(spin, Checking::Off);
        r.label = "spin" + std::to_string(i);
        r.exec.deadlineSeconds = 0.15;
        reqs.push_back(std::move(r));
    }
    std::vector<RunReport> reports = eng.runGrid(reqs);
    ASSERT_EQ(reports.size(), reqs.size());
    for (size_t i = 0; i < reports.size(); ++i) {
        EXPECT_EQ(reports[i].status.code, RunStatus::Code::Timeout)
            << "cell " << i;
        EXPECT_TRUE(reports[i].result.timedOut) << "cell " << i;
        EXPECT_EQ(reports[i].label, reqs[i].label);
    }
    EXPECT_EQ(eng.metrics().counter("engine.timeouts").value(),
              reqs.size());

    // The workers survived the cancellations: a normal grid on the
    // same engine completes with correct results.
    std::vector<RunRequest> after(3, request(kLoop, Checking::Off));
    std::vector<RunReport> ok = eng.runGrid(after);
    ASSERT_EQ(ok.size(), 3u);
    for (const RunReport &rep : ok)
        EXPECT_TRUE(rep.ok());
}

TEST(Engine, NestedRunGridFromWorkerIsRefused)
{
    // runGrid() from one of the engine's own workers (reachable through
    // the progress callback, which runs on the worker that completed
    // the cell) must fail fast instead of self-deadlocking. Run under
    // -DMXL_SANITIZE=thread to check the guard's publication too.
    Engine eng(2);
    std::vector<RunRequest> outer;
    outer.push_back(request(kLoop, Checking::Off));
    std::vector<RunRequest> inner;
    inner.push_back(request(kLists, Checking::Off));
    inner[0].label = "nested";

    std::vector<RunReport> nested;
    auto reports = eng.runGrid(outer, [&](size_t, const RunReport &) {
        nested = eng.runGrid(inner);
    });
    ASSERT_EQ(reports.size(), 1u);
    EXPECT_TRUE(reports[0].ok());
    ASSERT_EQ(nested.size(), 1u);
    EXPECT_EQ(nested[0].status.code, RunStatus::Code::InternalError);
    EXPECT_EQ(nested[0].label, "nested");
    EXPECT_NE(nested[0].status.message.find("worker"), std::string::npos);

    // A separate engine is the documented escape hatch.
    Engine other(1);
    auto viaOther = other.runGrid(inner);
    ASSERT_EQ(viaOther.size(), 1u);
    EXPECT_TRUE(viaOther[0].ok()) << viaOther[0].status.message;
}

TEST(Engine, ProgressReportsEveryCell)
{
    Engine eng(2);
    std::vector<RunRequest> grid;
    for (int i = 0; i < 6; ++i)
        grid.push_back(request(i % 2 ? kLoop : kLists, Checking::Off));

    std::mutex mu;
    std::vector<size_t> seen;
    auto reports = eng.runGrid(grid, [&](size_t i, const RunReport &rep) {
        std::lock_guard<std::mutex> lk(mu);
        EXPECT_TRUE(rep.status.ok());
        seen.push_back(i);
    });
    ASSERT_EQ(reports.size(), grid.size());
    std::sort(seen.begin(), seen.end());
    ASSERT_EQ(seen.size(), grid.size());
    for (size_t i = 0; i < seen.size(); ++i)
        EXPECT_EQ(seen[i], i);
}

TEST(Engine, TrapHandlerInstallationIsControllable)
{
    // (+ 1 'a) under genericArith hardware traps in addt. With the
    // unit's software fallback installed (default) the trap vectors to
    // the generic-arithmetic slow path, which raises a Lisp-level type
    // error; without it, the run stops with the documented
    // unhandled-trap encoding.
    RunRequest req = request("(print (+ 1 (quote a)))", Checking::Full);
    req.opts.hw.genericArith = true;

    Engine eng(1);
    RunReport handled = eng.run(req);
    ASSERT_TRUE(handled.status.ok()) << handled.status.message;
    EXPECT_EQ(handled.result.stop, StopReason::Errored);
    EXPECT_FALSE(isUnhandledTrapCode(handled.result.errorCode));

    req.exec.installTrapHandlers = false;
    RunReport bare = eng.run(req);
    ASSERT_TRUE(bare.status.ok()) << bare.status.message;
    EXPECT_EQ(bare.result.stop, StopReason::Errored);
    ASSERT_TRUE(isUnhandledTrapCode(bare.result.errorCode));
    EXPECT_EQ(unhandledTrapKind(bare.result.errorCode),
              TrapKind::ArithFail);
    EXPECT_EQ(unhandledTrapIndex(bare.result.errorCode),
              bare.result.faultIndex);
    // Same compiled unit served both runs (hooks are not cache keys).
    EXPECT_TRUE(bare.cacheHit);
}
