/**
 * @file
 * The MX instruction-level simulator.
 *
 * Models the MIPS-X properties the paper's measurements rest on:
 *  - one cycle per instruction (Mul/Div cost more, see opCycles());
 *  - two delay slots after every control transfer, with optional
 *    squashing (annulled slots still cost their cycles);
 *  - a one-cycle load delay, interlocked (a stall cycle is counted when
 *    the next instruction uses the loaded register);
 *  - word-addressed memory: the bottom two bits of every effective
 *    address are dropped (§5.2).
 *
 * Optional tag hardware (§5–§6) is enabled through HardwareConfig; the
 * corresponding instructions are illegal when the feature is off.
 */

#ifndef MXLISP_MACHINE_MACHINE_H_
#define MXLISP_MACHINE_MACHINE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "isa/instruction.h"
#include "machine/cycle_stats.h"
#include "machine/memory.h"
#include "tags/tag_scheme.h"

namespace mxl {

/** Which memory accesses may be tag-checked in hardware (§6.2.1). */
enum class CheckedMem { None, Lists, All };

/** The tag-support features of Table 2. */
struct HardwareConfig
{
    /** Row 1 (hardware variant): addresses lose their tag bits. */
    bool ignoreTagOnMemory = false;
    /** Row 2: Btag/Bntag compare the tag field without extraction. */
    bool branchOnTag = false;
    /** Row 4: Addt/Subt trap on non-integer operands or overflow. */
    bool genericArith = false;
    /** Rows 5/6: Ldt/Stt check the operand tag during the access. */
    CheckedMem checkedMemory = CheckedMem::None;

    /**
     * MTE-style lock-and-key memory tagging (Serebryany et al.): every
     * memory word carries a lock; a load through a pointer-tagged base
     * register checks the pointer's tag (the key) against the word's
     * lock and traps (TrapKind::TagMismatch) on mismatch. Stores
     * through a tagged base (re)paint the word's lock with the key;
     * stores through a raw (fixnum-looking) base unpaint it — the
     * allocator and GC write through raw addresses, so recycled memory
     * never keeps a stale lock. An unpainted word is painted by its
     * first keyed access. Orthogonal to checkedMemory: this checks
     * every Ld/St/Ldt/Stt, needs no compiled checks, and works with
     * Checking::Off code as long as the scheme keeps base registers
     * tagged at access time (low-tag schemes; see tags/low_tag.cc).
     */
    bool memTagging = false;

    std::string describe() const;
};

/**
 * Default runaway guard for simulated executions, in cycles. The single
 * definition behind every `maxCycles` default in the stack (Machine::run,
 * core/run.h, core/engine.h).
 */
inline constexpr uint64_t kDefaultMaxCycles = 2'000'000'000;

/** Why a trap was taken. */
enum class TrapKind : int
{
    ArithFail = 1,   ///< Addt/Subt operands not fixnums, or overflow
    TagMismatch = 2, ///< Ldt/Stt tag check failed
};

/** How a run ended. */
enum class StopReason
{
    Running,
    Halted,        ///< Sys halt
    Errored,       ///< Sys error (Lisp-level runtime error) or a trap
                   ///< with no handler installed (see encodeUnhandledTrap)
    CycleLimit,
    IllegalAccess, ///< load/store outside the memory image
};

/** errorCode() for Div/Rem by zero (StopReason::Errored). */
inline constexpr int64_t kDivideByZeroCode = 2000;

/**
 * errorCode() encoding for a trap taken with no handler installed:
 * the run stops with StopReason::Errored and
 * `errorCode == kUnhandledTrapBase + kind * kUnhandledTrapStride + index`,
 * where `index` is the faulting instruction index. The stride leaves
 * room for any realistic code size, and the base keeps the range
 * disjoint from every Lisp-level and machine-level error code.
 */
inline constexpr int64_t kUnhandledTrapBase = 1'000'000'000;
inline constexpr int64_t kUnhandledTrapStride = 100'000'000;

inline int64_t
encodeUnhandledTrap(TrapKind kind, int index)
{
    return kUnhandledTrapBase +
           static_cast<int64_t>(kind) * kUnhandledTrapStride + index;
}

inline bool
isUnhandledTrapCode(int64_t code)
{
    return code >= kUnhandledTrapBase + kUnhandledTrapStride &&
           code < kUnhandledTrapBase + 3 * kUnhandledTrapStride;
}

inline TrapKind
unhandledTrapKind(int64_t code)
{
    return static_cast<TrapKind>((code - kUnhandledTrapBase) /
                                 kUnhandledTrapStride);
}

inline int
unhandledTrapIndex(int64_t code)
{
    return static_cast<int>((code - kUnhandledTrapBase) %
                            kUnhandledTrapStride);
}

struct MachineSnapshot;

class Machine
{
  public:
    /**
     * @param scheme the tag scheme "built into" the hardware; required
     *        whenever any HardwareConfig feature is on.
     */
    Machine(const Program &prog, Memory mem, HardwareConfig hw,
            const TagScheme *scheme);

    /** Set the handler entry (instruction index) for a trap kind. */
    void setTrapHandler(TrapKind kind, int target);

    /** Run from instruction index @p entry until halt/error/limit. */
    StopReason run(int entry, uint64_t maxCycles = kDefaultMaxCycles);

    /**
     * Continue a run paused by StopReason::CycleLimit until the *total*
     * cycle count reaches @p maxCycles. Pausing and resuming is
     * invisible to the simulation: a run chopped into chunks produces
     * the same CycleStats, output, and stop as one uninterrupted run,
     * even when the pause lands between a branch and its delay slots or
     * on a pending load delay — all pipeline state is machine state
     * (this is what wall-clock deadlines and snapshots are built on;
     * core/run.h, machine/snapshot.h).
     */
    StopReason resume(uint64_t maxCycles);

    /**
     * Capture the complete execution state: registers, memory image,
     * cycle/stall accounting, output, trap-handler installs, and the
     * pipeline state (pending load delay, in-flight branch and its
     * remaining delay slots). A snapshot taken from a CycleLimit pause
     * can be restore()d — into this machine or any machine built on the
     * same Program and configuration — and resume()d, and the continued
     * run is cycle-identical to one that was never interrupted.
     */
    MachineSnapshot snapshot() const;

    /** Adopt @p snap wholesale (memory sizes must match). */
    void restore(const MachineSnapshot &snap);

    uint32_t reg(Reg r) const { return regs_[r]; }
    void setReg(Reg r, uint32_t v) { if (r) regs_[r] = v; }

    Memory &memory() { return mem_; }
    const Memory &memory() const { return mem_; }

    const CycleStats &stats() const { return stats_; }
    const std::string &output() const { return out_; }
    uint32_t exitValue() const { return exitValue_; }
    int64_t errorCode() const { return errorCode_; }
    StopReason stopReason() const { return stop_; }

    /**
     * Instruction index of the access that stopped the run with
     * IllegalAccess or an unhandled trap; -1 otherwise. For
     * IllegalAccess, errorCode() holds the wild byte address.
     */
    int faultIndex() const { return faultIndex_; }

    /** Byte address of instruction index @p i (code pointers/returns). */
    static uint32_t
    codeAddr(int i)
    {
        return static_cast<uint32_t>(i) << 2;
    }

    /**
     * Debug hook: called before each executed instruction with its
     * index. Slows simulation; intended for tests and debugging only.
     * Both issue paths (the straight-line path and the delay-slot /
     * control path) funnel through one observation point, so the hook
     * sees every executed instruction exactly once, in issue order;
     * annulled delay slots do not fire it (they are charged cycles but
     * never execute). For measurement, prefer attachProfile(): the
     * counting path costs two array increments per instruction instead
     * of a std::function call.
     */
    std::function<void(int, const Instruction &)> traceHook;

    /**
     * Attach per-PC profile buffers (the obs/ instruction profiler's
     * fast counting path; obs/profiler.h owns the vectors). Both arrays
     * must have one slot per instruction of the program. While
     * attached, `execCounts[i]` accumulates how often instruction i
     * issued and `cycleCounts[i]` every cycle the run charged to it —
     * including its load-interlock stalls and, for a squashing branch,
     * its annulled slot cycles — so the cycle histogram sums exactly to
     * the CycleStats charged while attached. Pass nullptrs to detach.
     * Buffers are per-run accessories, not machine state: snapshots do
     * not carry them.
     */
    void
    attachProfile(uint64_t *execCounts, uint64_t *cycleCounts)
    {
        profExec_ = execCounts;
        profCycles_ = cycleCounts;
    }

    /** memTagging: the lock value of a word no key has claimed. */
    static constexpr uint8_t kMemTagUnpainted = 0xff;

    /**
     * memTagging lock byte for memory word index @p w (kMemTagUnpainted
     * when unpainted or the feature is off). Exposed for tests and for
     * snapshot carry.
     */
    uint8_t
    memTagLock(uint32_t w) const
    {
        return w < memLocks_.size() ? memLocks_[w] : kMemTagUnpainted;
    }

  private:
    StopReason runGuarded(uint64_t maxCycles);
    StopReason runLoop(uint64_t maxCycles);

    /** Execute one non-control instruction; returns false on halt. */
    void execute(const Instruction &inst, int idx);
    void doSys(const Instruction &inst);
    void trap(TrapKind kind, int idx);
    void illegalAccess(uint32_t addr, int idx);
    uint32_t effAddr(const Instruction &inst, bool checked) const;

    /**
     * memTagging lock-and-key check for an access to in-bounds byte
     * address @p addr through base-register word @p baseWord. Returns
     * false when the access trapped (the caller must return without
     * performing it).
     */
    bool memTagAccess(uint32_t baseWord, uint32_t addr, bool isStore,
                      int idx);
    void chargeAndCount(const Instruction &inst, int idx);

    /**
     * The single pre-issue observation point: every executed
     * instruction — straight-line, delay-slot, or control — passes
     * through here exactly once, so traceHook and the profiler see
     * identical streams regardless of path.
     */
    void
    observeIssue(int idx, const Instruction &inst)
    {
        if (profExec_)
            profExec_[idx]++;
        if (traceHook)
            traceHook(idx, inst);
    }

    /** Profiler counterpart of CycleStats::charge for instruction @p idx. */
    void
    profCharge(int idx, int cycles)
    {
        if (profCycles_)
            profCycles_[idx] += static_cast<uint64_t>(cycles);
    }

    const Program &prog_;
    Memory mem_;
    HardwareConfig hw_;
    const TagScheme *scheme_;
    uint32_t regs_[32] = {};
    int pc_ = 0;
    int trapHandler_[3] = {-1, -1, -1};
    CycleStats stats_;
    std::string out_;
    uint32_t exitValue_ = 0;
    int64_t errorCode_ = 0;
    StopReason stop_ = StopReason::Running;
    int faultIndex_ = -1;
    int pendingLoadReg_ = -1;  ///< load-delay interlock tracking
    std::vector<uint8_t> memLocks_; ///< memTagging per-word locks
    uint64_t *profExec_ = nullptr;   ///< attachProfile issue counts
    uint64_t *profCycles_ = nullptr; ///< attachProfile cycle counts

    // In-flight branch state. Delay slots execute as separate loop
    // steps, so a cycle-limit pause (and therefore a snapshot) can land
    // between a control transfer and its slots; these fields carry the
    // branch across that boundary.
    int slotsRemaining_ = 0;   ///< delay slots left to execute (0..2)
    bool branchTaken_ = false; ///< condition result of the branch
    bool annulSlots_ = false;  ///< slots are squashed, not executed
    int branchTarget_ = -1;    ///< resolved target instruction index
    int branchIdx_ = -1;       ///< index of the branch (squash charging)
};

} // namespace mxl

#endif // MXLISP_MACHINE_MACHINE_H_
