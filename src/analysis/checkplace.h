/**
 * @file
 * Check placement: the tag-flow solver (analysis/tagflow.h) used to
 * *move* checks, not just delete them.
 *
 * Three transformations, applied in order by placeChecks():
 *
 *   1. Loop-invariant hoisting. A tag-check branch inside a natural
 *      loop (analysis/dom.h) whose checked value round-trips through a
 *      stack slot that no instruction in the loop stores to is checked
 *      once in a new *preheader* — a check sequence inserted
 *      immediately before the loop header, on the path every loop
 *      entry takes (loop entries are retargeted to it; back edges keep
 *      targeting the header). The preheader's branch refinement then
 *      flows around the loop through the slot fact, which survives
 *      calls and joins, making every in-loop check of that slot
 *      provably redundant.
 *   2. Redundant-check elimination (analysis/checkelim.h): deletes the
 *      now-redundant in-loop checks along with everything it already
 *      proved.
 *   3. Global cleanup: extract feeders whose register is dead under a
 *      whole-program liveness analysis (checkelim's same-block scan
 *      misses cross-block dead extracts), and *check sinking* — error
 *      blocks whose only predecessors were deleted never-taken check
 *      branches are unreachable from every root and are removed
 *      entirely, so the checks that lived on those cold paths vanish
 *      from the unit.
 *
 * Placement legality (docs/ANALYSIS.md states the full argument):
 * hoisting may execute a check *earlier* than the original program
 * would — "look before you leap". On every type-correct execution the
 * hoisted check passes exactly like its in-loop original and the
 * executed useful-instruction sequence is unchanged; on an erroneous
 * execution the unit reaches the same error handler, possibly before
 * entering the loop. Checks are only hoisted when their error target
 * is the terminal error stub (never a resuming slow path), the slot is
 * provably loop-invariant, sp tracking is intact, and the scratch
 * registers used are dead at both the header and the error target.
 *
 * The optimizer is *untrusted*: every transformed unit is re-proven by
 * the independent load-time verifier (analysis/verify.h) before the
 * engine runs it.
 */

#ifndef MXLISP_ANALYSIS_CHECKPLACE_H_
#define MXLISP_ANALYSIS_CHECKPLACE_H_

#include <memory>
#include <string>

#include "analysis/checkelim.h"
#include "compiler/unit.h"

namespace mxl {

struct PlaceStats
{
    int loopsFound = 0;        ///< natural loops in the unit
    int hoistCandidates = 0;   ///< in-loop invariant checks seen
    int hoisted = 0;           ///< preheader check sequences inserted
    int hoistInstructions = 0; ///< instructions those sequences added
    int feedersRemoved = 0;    ///< cross-block dead extracts deleted
    int sunkInstructions = 0;  ///< orphaned error-path instructions
    ElimStats elim;            ///< the elimination pass that follows
    bool skipped = false;      ///< malformed CFG: unit left untouched
    std::string diagnostic;    ///< why the unit was skipped

    /** Net instruction-count change (inserted - removed). */
    int
    netInstructions() const
    {
        return hoistInstructions - elim.instructionsRemoved -
               feedersRemoved - sunkInstructions;
    }
};

/**
 * Optimize check placement in @p unit in place: hoist loop-invariant
 * checks, eliminate proven-redundant ones, remove dead feeders and
 * orphaned error paths. Renumbers branch targets, symbols, entry/trap
 * points and image function cells.
 */
PlaceStats placeChecks(CompiledUnit &unit);

/**
 * Hooks::unitTransform adapter (core/engine.h): clone @p unit, run
 * placeChecks, return the optimized copy.
 */
std::shared_ptr<const CompiledUnit>
checkPlaceTransform(const std::shared_ptr<const CompiledUnit> &unit,
                    PlaceStats *stats = nullptr);

struct FixStats
{
    int unproven = 0;   ///< list accesses with no dominating check
    int inserted = 0;   ///< guard sequences inserted (mxlint --fix)
    int unfixable = 0;  ///< sites no sound guard could be built for
    int instructionsInserted = 0;
    bool skipped = false; ///< malformed CFG: unit left untouched
};

/**
 * Insert provably-missing tag checks (mxlint --fix): every list-class
 * memory access whose base is not proven to carry a single pointer tag
 * on all paths gets a guard sequence inserted immediately before it,
 * branching to the terminal error stub. Only sound insertions are
 * made: the tagged source register must be known (detag provenance)
 * and a dead scratch register must exist at the site; anything else is
 * counted unfixable and left for the verifier to reject.
 */
FixStats insertMissingChecks(CompiledUnit &unit);

} // namespace mxl

#endif // MXLISP_ANALYSIS_CHECKPLACE_H_
