/**
 * @file
 * Host-side S-expression object model.
 *
 * These objects exist only inside the compiler (parsing MX-Lisp source
 * and representing quoted constants); they are not the simulated runtime
 * representation — that is defined by the tag scheme and built into the
 * memory image by the runtime image builder.
 *
 * Nodes are owned by an SxArena and referenced by raw pointer; symbols
 * are interned per arena, so symbol identity is pointer identity.
 */

#ifndef MXLISP_SEXPR_SEXPR_H_
#define MXLISP_SEXPR_SEXPR_H_

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

namespace mxl {

enum class SxKind : uint8_t { Int, Sym, Str, Pair };

/** One S-expression node. */
struct Sx
{
    SxKind kind;
    int64_t ival = 0;    ///< Int
    std::string text;    ///< Sym name / Str contents
    Sx *car = nullptr;   ///< Pair
    Sx *cdr = nullptr;   ///< Pair

    bool isInt() const { return kind == SxKind::Int; }
    bool isSym() const { return kind == SxKind::Sym; }
    bool isStr() const { return kind == SxKind::Str; }
    bool isPair() const { return kind == SxKind::Pair; }
    /** True for the interned symbol `nil`. */
    bool isNil() const { return isSym() && text == "nil"; }
    bool isSym(const char *name) const { return isSym() && text == name; }
};

/** Arena owning Sx nodes; symbols are interned. */
class SxArena
{
  public:
    SxArena();

    /** The interned symbol with @p name. */
    Sx *sym(const std::string &name);

    Sx *num(int64_t v);
    Sx *str(std::string s);
    Sx *cons(Sx *car, Sx *cdr);

    Sx *nil() { return nil_; }
    Sx *t() { return t_; }

    /** Build a proper list from @p elems. */
    Sx *list(const std::vector<Sx *> &elems);

  private:
    std::deque<Sx> nodes_;
    std::unordered_map<std::string, Sx *> symbols_;
    Sx *nil_;
    Sx *t_;
};

/** Length of a proper list (nil == 0); fatal on improper lists. */
int listLength(const Sx *l);

/** The @p n-th element (0-based) of a proper list; fatal if too short. */
Sx *listNth(Sx *l, int n);

/** Collect the elements of a proper list. */
std::vector<Sx *> listElems(Sx *l);

} // namespace mxl

#endif // MXLISP_SEXPR_SEXPR_H_
