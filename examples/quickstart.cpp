/**
 * Quickstart: compile a Lisp program for the simulated MX machine,
 * run it with and without run-time type checking, and print where the
 * cycles went — the paper's experiment in twenty lines.
 */

#include <cstdio>

#include "core/run.h"

using namespace mxl;

int
main()
{
    const std::string program = R"lisp(
        (de fib (n)
          (if (lessp n 2) n (+ (fib (- n 1)) (fib (- n 2)))))
        (de make-table (n)
          (if (zerop n) nil (cons (cons n (fib n)) (make-table (sub1 n)))))
        (print (make-table 12))
    )lisp";

    for (Checking chk : {Checking::Off, Checking::Full}) {
        CompilerOptions opts;                 // HighTag5: the paper's
        opts.scheme = SchemeKind::High5;      // baseline implementation
        opts.checking = chk;

        RunResult r = compileAndRun(program, opts);
        std::printf("--- run-time checking %s ---\n",
                    chk == Checking::Full ? "ON" : "OFF");
        std::printf("output: %s", r.output.c_str());
        std::printf("%s\n", r.stats.summary().c_str());
    }

    std::printf("The second run is slower: every car/cdr checks its "
                "operand's tag\nand every + tests both operands and "
                "the result (overflow), exactly\nthe costs the paper "
                "quantifies.\n");
    return 0;
}
