/**
 * @file
 * The measurement service's crash-isolated worker pool.
 *
 * Where the campaign sandbox (faults/sandbox.h, support/procpool.h)
 * hands each forked child a fixed batch of trials, the serving pool
 * keeps N long-lived forked workers and feeds them tasks one at a
 * time over a bidirectional pipe pair, because a server's work
 * arrives dynamically and each task already carries its own deadline.
 * The containment obligations are the same, and met the same way:
 *
 *  - a worker executes exactly one task at a time; the parent writes
 *    the task as a wire frame (serve/wire.h) to the worker's stdin
 *    pipe and polls its stdout pipe for the one result frame;
 *  - a worker that dies mid-task (signal, _exit, OOM kill) is
 *    detected by pipe EOF, reaped, and its in-flight task reported
 *    through onFailure with the death evidence (signal number, or
 *    hang when the kill was ours) — a task is never silently lost;
 *  - a worker that stops answering past its task's watchdog deadline
 *    is SIGKILLed (evidence: hang) — one stuck request cannot pin a
 *    pool slot forever;
 *  - dead slots respawn with bounded exponential backoff (a
 *    crash-looping host gets breathing room, a one-off death gets a
 *    fresh worker immediately); respawned workers inherit the
 *    parent engine's compiled-unit cache copy-on-write via childInit
 *    (Engine::postFork), so they come up warm;
 *  - when fork itself fails maxSpawnFailures times in a row the
 *    circuit breaker opens (degraded() == true) and stays open: the
 *    server stops dispatching here and executes tasks in-process —
 *    graceful degradation instead of a spin of doomed forks.
 *
 * The pool owns no threads. It is driven by the server's poll loop:
 * collectFds() contributes the worker pipes to the poll set,
 * onReadable() consumes results, tick() runs the watchdog/respawn
 * clock, and nextDeadlineMs() bounds the poll timeout.
 */

#ifndef MXLISP_SERVE_POOL_H_
#define MXLISP_SERVE_POOL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "support/json.h"
#include "support/procpool.h"

struct pollfd; // <poll.h>

namespace mxl {

struct WorkerPoolOptions
{
    int workers = 2;

    /** CHILD SIDE: once after fork, before any task (Engine::postFork,
     *  trace-lane setup, metrics baseline). @p slot is the worker's
     *  pool-slot index (0-based) — the lane namespace for its spans. */
    std::function<void(int slot)> childInit;

    /**
     * CHILD SIDE: execute one task. @p cell is the wire CELL object;
     * @p deadlineSeconds the effective per-cell deadline (0 = none);
     * @p traceId the request trace id carried in the task frame
     * (possibly empty). Returns the result payload (a report JSON
     * text) to stream back. Anything thrown exits the child
     * abnormally — the parent reports the death, never a dropped task.
     */
    std::function<std::string(const Json &cell, double deadlineSeconds,
                              const std::string &traceId)>
        runCell;

    /**
     * CHILD SIDE (optional): after each task, collect the relay
     * payload that rides back with the result — the engine metrics
     * delta since the previous task and the spans recorded during
     * this one. A non-empty returned object is embedded in the result
     * envelope as "aux" and handed to the parent's aux handler; the
     * fork boundary is how it gets home, the result batch is the only
     * scheduled crossing.
     */
    std::function<Json(const std::string &traceId)> childCollect;

    /** Respawn backoff after a worker death: base * 2^(n-1), capped. */
    int backoffBaseMs = 50;
    int backoffCapMs = 2000;

    /** Consecutive spawn (fork/pipe) failures before the circuit
     *  breaker opens permanently (degraded()). */
    int maxSpawnFailures = 3;

    /** Watchdog slack added to each task's deadline before the worker
     *  is presumed hung and killed. */
    int watchdogGraceMs = 2000;

    /** Watchdog for tasks with no deadline of their own. */
    double defaultTaskSeconds = 300;

    /** Test seam: every spawn fails, as if fork were exhausted. */
    bool disableFork = false;
};

/** Pool observability counters (also mirrored into server metrics). */
struct WorkerPoolStats
{
    int spawns = 0;         ///< workers forked (incl. respawns)
    int respawns = 0;       ///< spawns after the initial complement
    int deaths = 0;         ///< abnormal worker exits
    int hangKills = 0;      ///< workers we killed past a task watchdog
    int spawnFailures = 0;  ///< fork/pipe failures
    bool breakerOpen = false; ///< degraded(): fork exhausted
};

class WorkerPool
{
  public:
    /** Task @p taskId finished; @p payload is the child's result line
     *  (report JSON text). */
    using ResultFn =
        std::function<void(uint64_t taskId, const std::string &payload)>;

    /** Task @p taskId's worker died. @p hang: our watchdog kill;
     *  otherwise @p termSignal killed it (0 = plain nonzero exit). */
    using FailureFn =
        std::function<void(uint64_t taskId, bool hang, int termSignal)>;

    /** PARENT SIDE: a result envelope carried an "aux" relay object
     *  (childCollect's return). @p slot is the producing worker's
     *  pool slot. Invoked before the task's ResultFn so merged
     *  metrics are visible when the report is delivered. */
    using AuxFn = std::function<void(int slot, const Json &aux)>;

    WorkerPool(WorkerPoolOptions options, ResultFn onResult,
               FailureFn onFailure, AuxFn onAux = AuxFn());
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /** Fork the initial worker complement. Safe to call when
     *  unsupported (pool just reports degraded). */
    void start();

    /** Circuit breaker state: true once fork is exhausted (or the
     *  platform cannot fork at all) — dispatch() will always refuse. */
    bool degraded() const;

    /** Workers alive and not running a task. */
    int idleWorkers() const;

    /** Workers currently executing a task. */
    int busyWorkers() const;

    /**
     * Hand @p cellJson (compact text of the wire CELL object) to an
     * idle worker. @p deadlineSeconds is the effective cell deadline
     * (0 = none; the watchdog then uses defaultTaskSeconds);
     * @p traceId rides in the task frame to the worker. False when no
     * idle worker is available (caller keeps the task queued) or the
     * breaker is open; on success @p slotOut (when non-null) receives
     * the chosen worker's slot index.
     */
    bool dispatch(uint64_t taskId, const std::string &cellJson,
                  double deadlineSeconds,
                  const std::string &traceId = std::string(),
                  int *slotOut = nullptr);

    /** Append the worker result fds to the server's poll set. */
    void collectFds(std::vector<struct pollfd> &out) const;

    /** Drain any readable worker pipes after a poll round. */
    void onReadable();

    /** Watchdog + reap + respawn clock; call once per loop iteration. */
    void tick();

    /** Milliseconds until the nearest watchdog/backoff deadline, or
     *  @p cap when none is sooner. */
    int nextDeadlineMs(int cap) const;

    /** Live worker pids (bench chaos: kill them mid-flight). */
    std::vector<int> workerPids() const;

    /**
     * Graceful shutdown: close task pipes (idle workers exit on EOF),
     * wait up to @p waitMs for busy workers to finish (results still
     * delivered), then SIGKILL stragglers — their tasks report back
     * through onFailure as hangs. Idempotent.
     */
    void shutdown(int waitMs);

    WorkerPoolStats stats() const { return stats_; }

  private:
    struct Worker;

    bool spawn(Worker &w);
    void reap(Worker &w, bool viaWatchdog);
    void killWorker(Worker &w);

    WorkerPoolOptions options_;
    ResultFn onResult_;
    FailureFn onFailure_;
    AuxFn onAux_;
    std::vector<Worker> workers_;
    WorkerPoolStats stats_;
    int consecutiveSpawnFailures_ = 0;
    bool breakerOpen_ = false;
    bool shutdown_ = false;
};

} // namespace mxl

#endif // MXLISP_SERVE_POOL_H_
