/**
 * @file
 * CompiledUnit -> TranslatedUnit: the discovery/validation pass of the
 * translated backend. analysis::buildCfg() proves the delay-slot
 * structure well-formed (no control transfers, trap-capable ops, or
 * Sys calls inside slots; no targets into slots; no truncated groups),
 * and the per-instruction pass pre-decodes operands, bakes the tag
 * scheme into constant masks, and resolves every op to its executor
 * handler address.
 *
 * Refusal, never failure: any unit the translator cannot prove
 * equivalent to the interpreter comes back with a diagnostic note and
 * no TranslatedUnit. In the engine's Auto tier a refusal just means the
 * interpreter runs — including for units whose execution would panic
 * (e.g. tag-hardware opcodes without the hardware bit), so the
 * interpreter's diagnostics are preserved verbatim.
 */

#include <cstdint>
#include <initializer_list>

#include "analysis/cfg.h"
#include "exec/texec.h"
#include "exec/texec_internal.h"
#include "support/format.h"

namespace mxl {

namespace {

TranslateResult
refuse(std::string note)
{
    return {nullptr, std::move(note)};
}

} // namespace

TranslateResult
translateUnit(const CompiledUnit &unit)
{
    const void *const *labels = texecLabelTable();
    if (!labels)
        return refuse("host compiler has no computed-goto support");
    if (!unit.scheme)
        return refuse("unit has no tag scheme");

    const auto &code = unit.prog.code;
    const int n = static_cast<int>(code.size());
    if (n == 0)
        return refuse("empty program");
    if (unit.entry < 0 || unit.entry >= n)
        return refuse(strcat("entry point ", unit.entry, " out of range"));

    const Cfg cfg = buildCfg(unit.prog);
    if (!cfg.ok()) {
        const auto &m = cfg.malformed.front();
        return refuse(strcat("malformed delay-slot structure at pc ",
                             m.pc, ": ", m.what));
    }

    const TagScheme &scheme = *unit.scheme;
    const HardwareConfig &hw = unit.opts.hw;
    if (hw.memTagging)
        return refuse("memory-tagging hardware is interpreter-only");
    const bool lowTags = scheme.placement() == TagPlacement::Low;

    auto tu = std::make_shared<TranslatedUnit>();
    tu->nInsts = static_cast<size_t>(n);
    tu->entry = unit.entry;
    tu->tagShift = scheme.tagShift();
    tu->tagMask = (1u << scheme.tagBits()) - 1u;
    // All built-in schemes detag with a constant mask; derive it from
    // the virtual call and verify the model holds so a future
    // non-mask scheme refuses instead of mistranslating.
    tu->detagMask = scheme.detagAddr(0xffffffffu);
    for (uint32_t probe : {0u, 0x5a5a5a5au, 0xa5a5a5a5u, 0x00000007u}) {
        if (scheme.detagAddr(probe) != (probe & tu->detagMask) ||
            scheme.primaryTag(probe) !=
                ((probe >> tu->tagShift) & tu->tagMask))
            return refuse(strcat("tag scheme '", scheme.name(),
                                 "' is not mask-representable"));
    }
    // The executor's fixnum handling (Addt/Subt, sys putfix) hardcodes
    // the two built-in encoding families.
    switch (unit.opts.scheme) {
      case SchemeKind::High5:
      case SchemeKind::High6:
      case SchemeKind::Low2:
      case SchemeKind::Low3:
        break;
      default:
        return refuse(strcat("unknown scheme kind for '", scheme.name(),
                             "'"));
    }
    tu->memMask = hw.ignoreTagOnMemory ? tu->detagMask : 0xffffffffu;
    tu->dataBits = scheme.dataBits();
    tu->lowTags = lowTags;

    // Pre-gate trap handlers exactly like runUnitOn(): a handler is
    // live only when the hardware feature exists and the unit compiled
    // one. A live handler must be a real instruction index (the
    // executor dispatches straight to it).
    tu->arithTrap =
        (hw.genericArith && unit.arithTrap >= 0) ? unit.arithTrap : -1;
    tu->tagTrap = (hw.checkedMemory != CheckedMem::None &&
                   unit.tagTrap >= 0)
                      ? unit.tagTrap
                      : -1;
    if (tu->arithTrap >= n)
        return refuse(strcat("arith trap handler ", tu->arithTrap,
                             " out of range"));
    if (tu->tagTrap >= n)
        return refuse(strcat("tag trap handler ", tu->tagTrap,
                             " out of range"));

    tu->gcCountAddr = unit.layout.cellAddr(Cell::GcCount);
    tu->heapUsedAddr = unit.layout.cellAddr(Cell::HeapUsed);

    tu->ops.resize(static_cast<size_t>(n) + 1);
    for (int i = 0; i < n; ++i) {
        const Instruction &inst = code[i];
        TranslatedOp &op = tu->ops[i];

        int kind = -1;
        switch (inst.op) {
          case Opcode::Add:  kind = TAdd;  break;
          case Opcode::Sub:  kind = TSub;  break;
          case Opcode::And:  kind = TAnd;  break;
          case Opcode::Or:   kind = TOr;   break;
          case Opcode::Xor:  kind = TXor;  break;
          case Opcode::Sll:  kind = TSll;  break;
          case Opcode::Srl:  kind = TSrl;  break;
          case Opcode::Sra:  kind = TSra;  break;
          case Opcode::Mul:  kind = TMul;  break;
          case Opcode::Div:  kind = TDiv;  break;
          case Opcode::Rem:  kind = TRem;  break;
          case Opcode::Addi: kind = TAddi; break;
          case Opcode::Andi: kind = TAndi; break;
          case Opcode::Ori:  kind = TOri;  break;
          case Opcode::Xori: kind = TXori; break;
          case Opcode::Slli: kind = TSlli; break;
          case Opcode::Srli: kind = TSrli; break;
          case Opcode::Srai: kind = TSrai; break;
          case Opcode::Li:   kind = TLi;   break;
          case Opcode::Mov:  kind = TMov;  break;
          case Opcode::Noop: kind = TNoop; break;
          case Opcode::Ld:   kind = TLd;   break;
          case Opcode::St:   kind = TSt;   break;
          case Opcode::Ldt:
          case Opcode::Stt:
            if (hw.checkedMemory == CheckedMem::None)
                return refuse(strcat(opcodeName(inst.op), " at pc ", i,
                                     " without checked-memory hardware"));
            kind = inst.op == Opcode::Ldt ? TLdt : TStt;
            break;
          case Opcode::Addt:
          case Opcode::Subt:
            if (!hw.genericArith)
                return refuse(strcat(opcodeName(inst.op), " at pc ", i,
                                     " without generic-arith hardware"));
            if (inst.op == Opcode::Addt)
                kind = lowTags ? TAddtLow : TAddtHigh;
            else
                kind = lowTags ? TSubtLow : TSubtHigh;
            break;
          case Opcode::Beq:  kind = TBeq;  break;
          case Opcode::Bne:  kind = TBne;  break;
          case Opcode::Blt:  kind = TBlt;  break;
          case Opcode::Bge:  kind = TBge;  break;
          case Opcode::Ble:  kind = TBle;  break;
          case Opcode::Bgt:  kind = TBgt;  break;
          case Opcode::Beqi: kind = TBeqi; break;
          case Opcode::Bnei: kind = TBnei; break;
          case Opcode::Btag:
          case Opcode::Bntag:
            if (!hw.branchOnTag)
                return refuse(strcat(opcodeName(inst.op), " at pc ", i,
                                     " without branch-on-tag hardware"));
            kind = inst.op == Opcode::Btag ? TBtag : TBntag;
            break;
          case Opcode::J:    kind = TJ;    break;
          case Opcode::Jal:  kind = TJal;  break;
          case Opcode::Jr:   kind = TJr;   break;
          case Opcode::Jalr: kind = TJalr; break;
          case Opcode::Sys:
            switch (inst.imm) {
              case static_cast<int>(SysCode::Halt):
                kind = TSysHalt;
                break;
              case static_cast<int>(SysCode::PutChar):
                kind = TSysPutChar;
                break;
              case static_cast<int>(SysCode::PutFixRaw):
                kind = TSysPutFixRaw;
                break;
              case static_cast<int>(SysCode::PutFix):
                kind = TSysPutFix;
                break;
              case static_cast<int>(SysCode::Error):
                kind = TSysError;
                break;
              default:
                return refuse(strcat("unknown sys code ", inst.imm,
                                     " at pc ", i));
            }
            break;
        }
        if (kind < 0)
            return refuse(strcat("untranslatable opcode at pc ", i));

        // A statically-targeted transfer must land inside the program
        // (the executor threads straight to ops[target]).
        if (isControl(inst.op) && inst.op != Opcode::Jr &&
            inst.op != Opcode::Jalr &&
            (inst.target < 0 || inst.target >= n))
            return refuse(strcat("branch target ", inst.target,
                                 " out of range at pc ", i));

        // uimm preserves interpreter semantics for every user: ALU
        // immediates and memory offsets truncate to uint32, shift
        // amounts mask to 5 bits, and Beqi/Bnei compare int32 — which
        // is only equivalent when the immediate fits int32.
        if ((inst.op == Opcode::Beqi || inst.op == Opcode::Bnei) &&
            (inst.imm < INT32_MIN || inst.imm > INT32_MAX))
            return refuse(strcat("branch immediate ", inst.imm,
                                 " out of int32 range at pc ", i));
        if (inst.timm > 0xff)
            return refuse(strcat("tag immediate ", inst.timm,
                                 " out of range at pc ", i));

        op.kind = static_cast<uint8_t>(kind);
        op.handler = labels[kind];
        op.idx = static_cast<uint32_t>(i);
        op.uimm = static_cast<uint32_t>(inst.imm);
        op.timm = static_cast<uint8_t>(inst.timm);
        op.target = inst.target;
        op.rs = inst.rs;
        op.rt = inst.rt;
        op.wslot = inst.rd == 0 ? 32 : inst.rd;
        op.pendReg = inst.rd;
        op.cycles = static_cast<uint8_t>(opCycles(inst.op));
        op.annul = (inst.annul == Annul::OnTaken ? 1 : 0) |
                   (inst.annul == Annul::OnNotTaken ? 2 : 0);

        Reg rr[3];
        int nr = 0;
        inst.readRegs(rr, nr);
        for (int k = 0; k < nr; ++k)
            op.readMask |= 1u << rr[k];
    }

    // Fusion pass: adjacent straight-line ops whose (kind, kind) pair
    // has a fused handler dispatch as one. Only the first op's handler
    // changes — its TKind and the second op stay untouched, so any
    // entry at the second index (delay-slot dispatch cannot occur here,
    // but computed jumps and trap returns can land anywhere) still runs
    // the standalone semantics. Pairs never span a control group, and
    // greedy pairing restarts at every static join point so the fused
    // path stays aligned with actual control flow.
    {
        std::vector<char> grp(static_cast<size_t>(n), 0);
        std::vector<char> leader(static_cast<size_t>(n), 0);
        for (int i = 0; i < n; ++i) {
            if (!isControl(code[i].op))
                continue;
            for (int k = i; k < std::min(i + 3, n); ++k)
                grp[k] = 1;
        }
        leader[unit.entry] = 1;
        if (tu->arithTrap >= 0)
            leader[tu->arithTrap] = 1;
        if (tu->tagTrap >= 0)
            leader[tu->tagTrap] = 1;
        for (int i = 0; i < n; ++i) {
            const Instruction &inst = code[i];
            if (isControl(inst.op) && inst.op != Opcode::Jr &&
                inst.op != Opcode::Jalr)
                leader[inst.target] = 1;
            // Trap returns re-enter at the faulting index + 1.
            if ((inst.op == Opcode::Ldt || inst.op == Opcode::Stt ||
                 inst.op == Opcode::Addt || inst.op == Opcode::Subt) &&
                i + 1 < n)
                leader[i + 1] = 1;
        }
        auto fusedKind = [](uint8_t a, uint8_t b) -> int {
            switch (a) {
              case TAddi:
                return b == TSt ? TF_Addi_St
                       : b == TLd ? TF_Addi_Ld : -1;
              case TSt:
                return b == TLd   ? TF_St_Ld
                       : b == TSt ? TF_St_St
                       : b == TLi ? TF_St_Li : -1;
              case TAnd:
                return b == TLd ? TF_And_Ld : -1;
              case TLd:
                switch (b) {
                  case TSrli: return TF_Ld_Srli;
                  case TAddi: return TF_Ld_Addi;
                  case TAnd:  return TF_Ld_And;
                  case TLd:   return TF_Ld_Ld;
                  case TLi:   return TF_Ld_Li;
                  case TSlli: return TF_Ld_Slli;
                  default:    return -1;
                }
              case TMov:
                return b == TLd ? TF_Mov_Ld : -1;
              case TSlli:
                return b == TSrai ? TF_Slli_Srai : -1;
              default:
                return -1;
            }
        };
        for (int i = 0; i + 1 < n;) {
            if (grp[i] || grp[i + 1] || leader[i + 1]) {
                ++i;
                continue;
            }
            const int fk = fusedKind(tu->ops[i].kind, tu->ops[i + 1].kind);
            if (fk >= 0) {
                tu->ops[i].handler = labels[fk];
                i += 2;
            } else {
                ++i;
            }
        }
    }

    // Sentinel: falling off the end dispatches to the pc-out-of-range
    // handler instead of reading past the array.
    TranslatedOp &end = tu->ops[n];
    end.kind = TEnd;
    end.handler = labels[TEnd];
    end.idx = static_cast<uint32_t>(n);

    return {std::move(tu), ""};
}

} // namespace mxl
