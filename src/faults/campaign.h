/**
 * @file
 * Fault-injection campaigns: the detection-coverage counterpart of the
 * paper's cost tables.
 *
 * A Campaign names a grid of (program × hardware/compiler configuration
 * × fault class) cells and a trial count; runCampaign() first computes
 * one fault-free golden run per (program, configuration), then fans
 * every faulted trial through Engine::runGrid and classifies each
 * outcome against its golden:
 *
 *   Detected           the run stopped with an error the checking
 *                      machinery raised (software check, software trap
 *                      fallback, or an unhandled hardware trap);
 *   SilentWrongAnswer  the run halted "cleanly" but its output or exit
 *                      value differs from the golden — the outcome tag
 *                      checking exists to prevent;
 *   CrashIllegalAccess the run went wild (load/store outside the image,
 *                      division by zero, or a simulator-internal error);
 *   CycleLimit         the run neither halted nor erred within its
 *                      cycle budget or wall-clock deadline;
 *   Masked             the run halted with output identical to the
 *                      golden — the fault was absorbed.
 *
 * Every trial's fault is derived deterministically from Campaign::seed
 * and the trial's (program, class, trial) coordinates — deliberately
 * NOT from the configuration, so all configurations face the same fault
 * population and detection rates are directly comparable across rows.
 */

#ifndef MXLISP_FAULTS_CAMPAIGN_H_
#define MXLISP_FAULTS_CAMPAIGN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/engine.h"
#include "faults/fault_injector.h"

namespace mxl {

/** How a Detected outcome was detected. */
enum class DetectChannel
{
    None,          ///< outcome is not Detected
    SoftwareCheck, ///< compiled inline check or runtime `error`
    HardwareTrap,  ///< Addt/Subt or Ldt/Stt trap (handled or not)
};

/** Classified outcome of one faulted trial (see file comment). */
enum class Outcome
{
    Detected,
    SilentWrongAnswer,
    CrashIllegalAccess,
    CycleLimit,
    Masked,
    NumOutcomes,
};

const char *outcomeName(Outcome o);
const char *detectChannelName(DetectChannel c);

/** One benchmark program of a campaign. */
struct CampaignProgram
{
    std::string name;
    std::string source;
    uint64_t maxCycles = 50'000'000;
};

/** One hardware/compiler configuration (a Table-2-style ladder rung). */
struct CampaignConfigEntry
{
    std::string label;
    CompilerOptions opts;
};

/** The full campaign grid. */
struct Campaign
{
    std::vector<CampaignProgram> programs;
    std::vector<CampaignConfigEntry> configs;
    std::vector<FaultClass> classes;
    int trials = 20;           ///< faulted trials per (prog, config, class)
    uint64_t seed = 1;         ///< root of every per-trial fault seed
    double deadlineSeconds = 0; ///< per-trial wall-clock guard (0 = none)
};

/** One classified trial. */
struct TrialRecord
{
    int program = 0; ///< index into Campaign::programs
    int config = 0;  ///< index into Campaign::configs
    int cls = 0;     ///< index into Campaign::classes
    int trial = 0;
    uint64_t faultSeed = 0;
    Outcome outcome = Outcome::Masked;
    DetectChannel channel = DetectChannel::None;
    int64_t errorCode = 0;  ///< RunResult::errorCode of the faulted run
    int faultIndex = -1;    ///< faulting instruction index, when known
};

/** Aggregated counts for one (config, class) matrix cell. */
struct CampaignCell
{
    int byOutcome[static_cast<int>(Outcome::NumOutcomes)] = {};
    int hardwareTraps = 0;  ///< Detected via DetectChannel::HardwareTrap
    int softwareChecks = 0; ///< Detected via DetectChannel::SoftwareCheck

    int count(Outcome o) const { return byOutcome[static_cast<int>(o)]; }
    int detected() const { return count(Outcome::Detected); }
    int
    total() const
    {
        int t = 0;
        for (int n : byOutcome)
            t += n;
        return t;
    }
};

/** Everything runCampaign() measures. */
struct CampaignResult
{
    size_t configCount = 0;
    size_t classCount = 0;
    std::vector<std::string> configLabels;
    std::vector<std::string> classLabels;
    /** configs × classes, row-major by config. */
    std::vector<CampaignCell> cells;
    std::vector<TrialRecord> trials;

    const CampaignCell &
    cell(size_t config, size_t cls) const
    {
        return cells[config * classCount + cls];
    }
    CampaignCell &
    cell(size_t config, size_t cls)
    {
        return cells[config * classCount + cls];
    }

    /**
     * Render the detection-coverage matrix: one row per configuration,
     * one column group per fault class with detected/silent/crash/
     * limit/masked counts, plus the hardware-vs-software detection
     * split.
     */
    std::string renderMatrix() const;
};

/**
 * Classify one faulted run against its fault-free golden. Exposed for
 * unit tests; @p channel (optional) receives the detection channel.
 * @p golden must be a clean (ok()) run of the same (program, config).
 */
Outcome classifyOutcome(const RunReport &faulted, const RunReport &golden,
                        DetectChannel *channel = nullptr);

/**
 * Run the whole campaign through @p engine: goldens first (fatal() if
 * any program fails to run cleanly under some configuration — campaign
 * programs must be correct), then every faulted trial in one
 * Engine::runGrid batch. Deterministic: same campaign, same result.
 */
CampaignResult runCampaign(Engine &engine, const Campaign &campaign);

} // namespace mxl

#endif // MXLISP_FAULTS_CAMPAIGN_H_
