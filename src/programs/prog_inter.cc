#include "programs/programs.h"

namespace mxl {

/*
 * inter: "a simple interpreter for a subset of LISP is used to
 * calculate the Fibonacci number 10, and to sort a list of numbers"
 * (after Winston & Horn's Lisp-in-Lisp).
 *
 * The interpreted language has numbers, variables, quote, if, lambda,
 * and calls; environments are association lists; primitives bridge to
 * the host through `apply`.
 */
const std::string &
progInter()
{
    static const std::string src = R"lisp(
;; -- the meta-circular evaluator ------------------------------------

(de xeval (x env)
  (cond ((fixp x) x)
        ((null x) nil)
        ((eq x 'true) t)
        ((symbolp x) (xlookup x env))
        ((eq (car x) 'quote) (cadr x))
        ((eq (car x) 'if)
         (if (xeval (cadr x) env)
             (xeval (caddr x) env)
             (xeval (cadddr x) env)))
        ((eq (car x) 'lambda) (list 'closure x env))
        (t (xapply (xeval (car x) env) (xevlis (cdr x) env)))))

(de xlookup (v env)
  (let ((b (assq v env)))
    (if b (cdr b) (xglobal v))))

(de xglobal (v)
  (let ((b (assq v *xdefs*)))
    (if b (cdr b) (error 7))))

(de xevlis (l env)
  (if (null l) nil (cons (xeval (car l) env) (xevlis (cdr l) env))))

(de xapply (f args)
  (cond ((eq (car f) 'prim) (apply (cadr f) args))
        ((eq (car f) 'closure)
         (let ((fn (cadr f)) (env (caddr f)))
           (xeval (caddr fn) (xbind (cadr fn) args env))))
        (t (error 8))))

(de xbind (params args env)
  (if (null params)
      env
      (cons (cons (car params) (car args))
            (xbind (cdr params) (cdr args) env))))

;; host primitives for the interpreted language
(de xprim-add (a b) (+ a b))
(de xprim-sub (a b) (- a b))
(de xprim-less (a b) (lessp a b))
(de xprim-cons (a b) (cons a b))
(de xprim-car (a) (car a))
(de xprim-cdr (a) (cdr a))
(de xprim-null (a) (null a))

(de xdefine (name val)
  (setq *xdefs* (cons (cons name val) *xdefs*)))

(de inter-setup ()
  (setq *xdefs* nil)
  (xdefine 'add (list 'prim 'xprim-add))
  (xdefine 'sub (list 'prim 'xprim-sub))
  (xdefine 'less (list 'prim 'xprim-less))
  (xdefine 'kons (list 'prim 'xprim-cons))
  (xdefine 'kar (list 'prim 'xprim-car))
  (xdefine 'kdr (list 'prim 'xprim-cdr))
  (xdefine 'nullp (list 'prim 'xprim-null))
  ;; interpreted fib
  (xdefine 'fib
    (xeval '(lambda (n)
              (if (less n 2)
                  n
                  (add (fib (sub n 1)) (fib (sub n 2)))))
           nil))
  ;; interpreted insertion sort
  (xdefine 'insert
    (xeval '(lambda (x l)
              (if (nullp l)
                  (kons x (quote ()))
                  (if (less x (kar l))
                      (kons x l)
                      (kons (kar l) (insert x (kdr l))))))
           nil))
  (xdefine 'isort
    (xeval '(lambda (l)
              (if (nullp l)
                  (quote ())
                  (insert (kar l) (isort (kdr l)))))
           nil)))

(de inter-run ()
  (print (xeval '(fib 10) nil))
  (print (xeval '(isort (quote (9 3 7 1 8 2 6 4 5 0 19 13 17 11 18
                                12 16 14 15 10)))
                nil))
  ;; a second round exercises the interpreter on list building
  (print (xeval '(fib 12) nil)))

(inter-setup)
(inter-run)
)lisp";
    return src;
}

} // namespace mxl
