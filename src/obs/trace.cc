#include "obs/trace.h"

#include <algorithm>
#include <fstream>

namespace mxl {

uint64_t
TraceRecorder::nowMicros() const
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
}

void
TraceRecorder::setLane(int64_t lane)
{
    std::lock_guard<std::mutex> lk(mu_);
    lane_ = lane;
}

int64_t
TraceRecorder::lane() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return lane_;
}

void
TraceRecorder::alignEpoch(const TraceRecorder &other)
{
    std::lock_guard<std::mutex> lk(mu_);
    epoch_ = other.epoch_;
}

void
TraceRecorder::nameLane(int64_t lane, const std::string &name)
{
    std::lock_guard<std::mutex> lk(mu_);
    for (auto &[l, n] : laneNames_) {
        if (l == lane) {
            n = name;
            return;
        }
    }
    laneNames_.emplace_back(lane, name);
}

void
TraceRecorder::complete(const std::string &name, const std::string &cat,
                        int tid, uint64_t tsMicros, uint64_t durMicros,
                        const std::string &arg, const std::string &traceId)
{
    std::lock_guard<std::mutex> lk(mu_);
    events_.push_back(Event{name, cat, 'X', lane_, tid, tsMicros,
                            durMicros, arg, traceId});
}

void
TraceRecorder::instant(const std::string &name, const std::string &cat,
                       int tid, const std::string &arg,
                       const std::string &traceId)
{
    uint64_t ts = nowMicros();
    std::lock_guard<std::mutex> lk(mu_);
    events_.push_back(
        Event{name, cat, 'i', lane_, tid, ts, 0, arg, traceId});
}

size_t
TraceRecorder::size() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return events_.size();
}

Json
TraceRecorder::drainJson(const std::string &fillTraceId)
{
    std::vector<Event> drained;
    {
        std::lock_guard<std::mutex> lk(mu_);
        drained.swap(events_);
    }
    Json arr = Json::array();
    for (Event &e : drained) {
        if (e.trace.empty())
            e.trace = fillTraceId;
        Json j = Json::object();
        j.set("name", e.name);
        j.set("cat", e.cat);
        j.set("ph", std::string(1, e.ph));
        j.set("lane", e.lane);
        j.set("tid", static_cast<int64_t>(e.tid));
        j.set("ts", e.ts);
        if (e.dur != 0)
            j.set("dur", e.dur);
        if (!e.arg.empty())
            j.set("arg", e.arg);
        if (!e.trace.empty())
            j.set("trace", e.trace);
        arr.push(std::move(j));
    }
    return arr;
}

void
TraceRecorder::importJson(const Json &events)
{
    if (!events.isArray())
        return;
    std::lock_guard<std::mutex> lk(mu_);
    for (size_t i = 0; i < events.size(); ++i) {
        const Json &j = events.at(i);
        if (!j.isObject())
            continue;
        Event e;
        const Json *f = j.find("name");
        e.name = f != nullptr ? f->str() : "";
        f = j.find("cat");
        e.cat = f != nullptr ? f->str() : "";
        f = j.find("ph");
        e.ph = f != nullptr && !f->str().empty() ? f->str()[0] : 'X';
        f = j.find("lane");
        e.lane = f != nullptr ? f->asInt(1) : 1;
        f = j.find("tid");
        e.tid = f != nullptr ? static_cast<int>(f->asInt(0)) : 0;
        f = j.find("ts");
        e.ts = f != nullptr ? f->asUint(0) : 0;
        f = j.find("dur");
        e.dur = f != nullptr ? f->asUint(0) : 0;
        f = j.find("arg");
        e.arg = f != nullptr ? f->str() : "";
        f = j.find("trace");
        e.trace = f != nullptr ? f->str() : "";
        events_.push_back(std::move(e));
    }
}

Json
TraceRecorder::toJson() const
{
    std::vector<Event> sorted;
    std::vector<std::pair<int64_t, std::string>> lanes;
    {
        std::lock_guard<std::mutex> lk(mu_);
        sorted = events_;
        lanes = laneNames_;
    }
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const Event &a, const Event &b) {
                         if (a.ts != b.ts)
                             return a.ts < b.ts;
                         if (a.lane != b.lane)
                             return a.lane < b.lane;
                         return a.tid < b.tid;
                     });
    std::stable_sort(lanes.begin(), lanes.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });

    Json arr = Json::array();
    for (const auto &[lane, name] : lanes) {
        Json j = Json::object();
        j.set("name", "process_name");
        j.set("cat", "__metadata");
        j.set("ph", "M");
        j.set("ts", uint64_t{0});
        j.set("pid", lane);
        j.set("tid", int64_t{0});
        Json args = Json::object();
        args.set("name", name);
        j.set("args", std::move(args));
        arr.push(std::move(j));
    }
    for (const Event &e : sorted) {
        Json j = Json::object();
        j.set("name", e.name);
        j.set("cat", e.cat);
        j.set("ph", std::string(1, e.ph));
        j.set("ts", e.ts);
        if (e.ph == 'X')
            j.set("dur", e.dur);
        j.set("pid", e.lane);
        j.set("tid", static_cast<int64_t>(e.tid));
        if (e.ph == 'i')
            j.set("s", "t"); // instant scope: thread
        if (!e.arg.empty() || !e.trace.empty()) {
            Json args = Json::object();
            if (!e.arg.empty())
                args.set("label", e.arg);
            if (!e.trace.empty())
                args.set("traceId", e.trace);
            j.set("args", std::move(args));
        }
        arr.push(std::move(j));
    }
    return arr;
}

bool
TraceRecorder::writeFile(const std::string &path) const
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        return false;
    out << toJson().dump(1) << "\n";
    return static_cast<bool>(out);
}

} // namespace mxl
