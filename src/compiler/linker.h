/**
 * @file
 * Linker: flattens a scheduled AsmBuffer into an executable Program,
 * resolving labels to absolute instruction indices.
 */

#ifndef MXLISP_COMPILER_LINKER_H_
#define MXLISP_COMPILER_LINKER_H_

#include "compiler/asm_buffer.h"
#include "isa/instruction.h"

namespace mxl {

/** Link @p buf; throws on undefined labels. */
Program link(const AsmBuffer &buf);

} // namespace mxl

#endif // MXLISP_COMPILER_LINKER_H_
