/**
 * @file
 * Hand-built runtime stubs: program entry, error handling, the
 * allocator (cons/mkvect/mkstring with GC retry), apply, the
 * generic-arithmetic slow-path wrappers, and the hardware trap
 * handlers. Everything else in the runtime is Lisp code (see
 * syslisp.h) compiled through the normal pipeline.
 */

#ifndef MXLISP_RUNTIME_STUBS_H_
#define MXLISP_RUNTIME_STUBS_H_

#include "compiler/codegen.h"

namespace mxl {

/**
 * SysCode::Error codes raised by the stubs, surfaced as
 * RunResult::errorCode on a StopReason::Errored run. Fault-injection
 * campaigns (src/faults/) classify on these, so they are named here
 * rather than repeated as magic numbers.
 */
namespace rtcode {
inline constexpr int undefinedFunction = 99; ///< call through an empty fn cell
inline constexpr int typeError = 100;        ///< compiled software type check
inline constexpr int tagTrap = 101;          ///< Ldt/Stt software fallback
} // namespace rtcode

struct StubSet
{
    RuntimeLabels labels;
    int start = -1;      ///< rt_start label id
    int arithTrap = -1;  ///< Addt/Subt failure handler label id
    int tagTrap = -1;    ///< Ldt/Stt mismatch handler label id
};

/**
 * Emit the stubs into @p cg's buffer. Must be called before any Lisp
 * function bodies are emitted (the undefined-function stub must sit at
 * instruction index 0, where empty function cells point), and after
 * all Lisp functions are declared (stubs call gc-reclaim and the
 * generic-* functions).
 */
StubSet emitStubs(CodeGen &cg, SxArena &arena);

} // namespace mxl

#endif // MXLISP_RUNTIME_STUBS_H_
