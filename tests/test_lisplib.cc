/**
 * Standard-library behaviour (src/runtime/lisplib.cc): the Lisp-level
 * utilities every benchmark leans on.
 */

#include <gtest/gtest.h>

#include "core/run.h"

namespace mxl {
namespace {

std::string
lib(const std::string &src, Checking chk = Checking::Off)
{
    CompilerOptions opts;
    opts.checking = chk;
    auto r = compileAndRun(src, opts, 100'000'000);
    EXPECT_EQ(r.stop, StopReason::Halted) << "err=" << r.errorCode;
    return r.output;
}

TEST(LispLib, PrintForms)
{
    EXPECT_EQ(lib("(print nil)"), "nil\n");
    EXPECT_EQ(lib("(print '(1 . 2))"), "(1 . 2)\n");
    EXPECT_EQ(lib("(print '(1 2 . 3))"), "(1 2 . 3)\n");
    EXPECT_EQ(lib("(print \"str\")"), "\"str\"\n");
    EXPECT_EQ(lib("(let ((v (mkvect 3))) (putv v 1 'x) (print v))"),
              "[nil x nil]\n");
    EXPECT_EQ(lib("(print '())"), "nil\n");
    // print returns its argument
    EXPECT_EQ(lib("(print (print 5))"), "5\n5\n");
}

TEST(LispLib, Terpri)
{
    EXPECT_EQ(lib("(putfixnum 1) (terpri) (putfixnum 2)"), "1\n2");
}

TEST(LispLib, ListFunctions)
{
    EXPECT_EQ(lib("(print (length nil))"), "0\n");
    EXPECT_EQ(lib("(print (append nil '(1)))"), "(1)\n");
    EXPECT_EQ(lib("(print (append '(1) nil))"), "(1)\n");
    EXPECT_EQ(lib("(print (reverse nil))"), "nil\n");
    EXPECT_EQ(lib("(print (memq 'z '(a b)))"), "nil\n");
    EXPECT_EQ(lib("(print (member '(1) '((0) (1) (2))))"),
              "((1) (2))\n");
    EXPECT_EQ(lib("(print (assq 'z '((a . 1))))"), "nil\n");
    EXPECT_EQ(lib("(print (nthcdr '(a b c d) 2))"), "(c d)\n");
    EXPECT_EQ(lib("(print (copy-list '(1 2 3)))"), "(1 2 3)\n");
    EXPECT_EQ(lib("(print (delq 'b '(a b c b)))"), "(a c)\n");
}

TEST(LispLib, CopyListIsFresh)
{
    EXPECT_EQ(lib(R"(
        (let* ((orig '(1 2 3)) (copy (copy-list orig)))
          (print (eq orig copy))
          (print (equal orig copy)))
    )"), "nil\nt\n");
}

TEST(LispLib, NconcMutates)
{
    EXPECT_EQ(lib(R"(
        (let ((a (list 1 2)))
          (nconc a (list 3))
          (print a))
    )"), "(1 2 3)\n");
    EXPECT_EQ(lib("(print (nconc nil (list 1)))"), "(1)\n");
}

TEST(LispLib, EqualSemantics)
{
    EXPECT_EQ(lib("(print (equal \"a\" \"a\"))"), "t\n"); // interned
    EXPECT_EQ(lib("(print (equal 5 '(5)))"), "nil\n");
    EXPECT_EQ(lib("(print (equal nil nil))"), "t\n");
}

TEST(LispLib, NumericHelpers)
{
    EXPECT_EQ(lib("(print (gcd 0 5))"), "5\n");
    EXPECT_EQ(lib("(print (gcd -12 18))"), "6\n");
    EXPECT_EQ(lib("(print (expt 3 0))"), "1\n");
    EXPECT_EQ(lib("(print (evenp 4))"), "t\n");
    EXPECT_EQ(lib("(print (evenp 7))"), "nil\n");
    EXPECT_EQ(lib("(print (abs 0))"), "0\n");
}

TEST(LispLib, RandomIsDeterministicAndBounded)
{
    std::string out = lib(R"(
        (seed-random 42)
        (let ((i 0) (ok t))
          (while (lessp i 200)
            (let ((r (random 10)))
              (if (or (minusp r) (geq r 10)) (setq ok nil) nil))
            (setq i (add1 i)))
          (print ok))
        (seed-random 42)
        (print (random 1000))
        (seed-random 42)
        (print (random 1000))
    )");
    // Bounded, and identical for identical seeds.
    auto firstNl = out.find('\n');
    EXPECT_EQ(out.substr(0, firstNl), "t");
    auto rest = out.substr(firstNl + 1);
    auto mid = rest.find('\n');
    EXPECT_EQ(rest.substr(0, mid), rest.substr(mid + 1, mid));
}

TEST(LispLib, PropertyListEdgeCases)
{
    EXPECT_EQ(lib(R"(
        (put 'p 'a 1) (put 'p 'b 2) (put 'p 'c 3)
        (remprop 'p 'b)
        (print (get 'p 'a))
        (print (get 'p 'b))
        (print (get 'p 'c))
        (print (length (plist 'p)))
    )"), "1\nnil\n3\n2\n");
    // put returns the value; get of missing prop is nil.
    EXPECT_EQ(lib("(print (put 'q 'k 9))"), "9\n");
    EXPECT_EQ(lib("(print (get 'fresh-symbol 'anything))"), "nil\n");
}

TEST(LispLib, LibraryWorksUnderFullChecking)
{
    EXPECT_EQ(lib(R"(
        (print (append (reverse '(3 2 1)) '(4)))
        (print (gcd 48 36))
        (print (assoc 2 '((1 . a) (2 . b))))
    )", Checking::Full),
              "(1 2 3 4)\n12\n(2 . b)\n");
}

} // namespace
} // namespace mxl
