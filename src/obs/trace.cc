#include "obs/trace.h"

#include <algorithm>
#include <fstream>

namespace mxl {

uint64_t
TraceRecorder::nowMicros() const
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
}

void
TraceRecorder::complete(const std::string &name, const std::string &cat,
                        int tid, uint64_t tsMicros, uint64_t durMicros,
                        const std::string &arg)
{
    std::lock_guard<std::mutex> lk(mu_);
    events_.push_back(
        Event{name, cat, 'X', tid, tsMicros, durMicros, arg});
}

void
TraceRecorder::instant(const std::string &name, const std::string &cat,
                       int tid, const std::string &arg)
{
    uint64_t ts = nowMicros();
    std::lock_guard<std::mutex> lk(mu_);
    events_.push_back(Event{name, cat, 'i', tid, ts, 0, arg});
}

size_t
TraceRecorder::size() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return events_.size();
}

Json
TraceRecorder::toJson() const
{
    std::vector<Event> sorted;
    {
        std::lock_guard<std::mutex> lk(mu_);
        sorted = events_;
    }
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const Event &a, const Event &b) {
                         if (a.ts != b.ts)
                             return a.ts < b.ts;
                         return a.tid < b.tid;
                     });

    Json arr = Json::array();
    for (const Event &e : sorted) {
        Json j = Json::object();
        j.set("name", e.name);
        j.set("cat", e.cat);
        j.set("ph", std::string(1, e.ph));
        j.set("ts", e.ts);
        if (e.ph == 'X')
            j.set("dur", e.dur);
        j.set("pid", uint64_t{1});
        j.set("tid", static_cast<int64_t>(e.tid));
        if (e.ph == 'i')
            j.set("s", "t"); // instant scope: thread
        if (!e.arg.empty()) {
            Json args = Json::object();
            args.set("label", e.arg);
            j.set("args", std::move(args));
        }
        arr.push(std::move(j));
    }
    return arr;
}

bool
TraceRecorder::writeFile(const std::string &path) const
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        return false;
    out << toJson().dump(1) << "\n";
    return static_cast<bool>(out);
}

} // namespace mxl
