#include "core/run.h"

#include <utility>

#include "core/engine.h"
#include "support/panic.h"

namespace mxl {

RunResult
runUnitOn(const CompiledUnit &unit, Memory image, uint64_t maxCycles)
{
    Machine m(unit.prog, std::move(image), unit.opts.hw,
              unit.scheme.get());
    if (unit.opts.hw.genericArith && unit.arithTrap >= 0)
        m.setTrapHandler(TrapKind::ArithFail, unit.arithTrap);
    if (unit.opts.hw.checkedMemory != CheckedMem::None &&
        unit.tagTrap >= 0)
        m.setTrapHandler(TrapKind::TagMismatch, unit.tagTrap);

    RunResult r;
    r.stop = m.run(unit.entry, maxCycles);
    r.stats = m.stats();
    r.output = m.output();
    r.errorCode = m.errorCode();
    r.exitValue = m.exitValue();
    r.gcCount = m.memory().load(unit.layout.cellAddr(Cell::GcCount));
    r.heapUsed = m.memory().load(unit.layout.cellAddr(Cell::HeapUsed));
    return r;
}

RunResult
runUnit(const CompiledUnit &unit, uint64_t maxCycles)
{
    return runUnitOn(unit, unit.memory, maxCycles);
}

RunResult
compileAndRun(const std::string &source, const CompilerOptions &opts,
              uint64_t maxCycles)
{
    RunRequest req;
    req.source = source;
    req.opts = opts;
    req.maxCycles = maxCycles;
    RunReport rep = Engine::defaultEngine().run(req);
    // Legacy contract: compile/internal failures throw, run errors are
    // encoded in the result (see run.h).
    if (rep.status.code == RunStatus::Code::CompileError)
        throw MxlError(MxlError::Kind::Fatal, rep.status.message);
    if (rep.status.code == RunStatus::Code::InternalError)
        throw MxlError(MxlError::Kind::Panic, rep.status.message);
    return rep.result;
}

} // namespace mxl
