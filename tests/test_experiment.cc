/**
 * Tests for the measurement framework (core/): experiment configs,
 * report math, and the paper's published-number tables.
 */

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/paper.h"
#include "core/report.h"

namespace mxl {
namespace {

TEST(Experiment, BaselineIsHigh5NoHardware)
{
    CompilerOptions o = baselineOptions(Checking::Full);
    EXPECT_EQ(o.scheme, SchemeKind::High5);
    EXPECT_EQ(o.checking, Checking::Full);
    EXPECT_FALSE(o.hw.ignoreTagOnMemory);
    EXPECT_FALSE(o.hw.branchOnTag);
    EXPECT_FALSE(o.hw.genericArith);
    EXPECT_EQ(o.hw.checkedMemory, CheckedMem::None);
}

TEST(Experiment, Table2RowsMatchThePaper)
{
    auto rows = table2Configs();
    ASSERT_EQ(rows.size(), 7u);
    EXPECT_TRUE(rows[0].opts.hw.ignoreTagOnMemory);  // row1
    EXPECT_TRUE(rows[1].opts.hw.branchOnTag);        // row2
    EXPECT_TRUE(rows[2].opts.hw.ignoreTagOnMemory && // row3
                rows[2].opts.hw.branchOnTag);
    EXPECT_TRUE(rows[3].opts.hw.genericArith);       // row4
    EXPECT_EQ(rows[4].opts.hw.checkedMemory, CheckedMem::Lists);
    EXPECT_EQ(rows[5].opts.hw.checkedMemory, CheckedMem::All);
    EXPECT_TRUE(rows[6].opts.hw.ignoreTagOnMemory && // row7
                rows[6].opts.hw.branchOnTag &&
                rows[6].opts.hw.genericArith &&
                rows[6].opts.hw.checkedMemory == CheckedMem::All);
}

TEST(Experiment, VariantOptionBuilders)
{
    EXPECT_EQ(lowTagSoftwareOptions(Checking::Off).scheme,
              SchemeKind::Low3);
    EXPECT_EQ(sumCheckOptions(Checking::Full).arithMode,
              ArithMode::SumCheck);
    EXPECT_EQ(sumCheckOptions(Checking::Full).scheme, SchemeKind::High6);
    EXPECT_EQ(forceDispatchOptions(Checking::Full).arithMode,
              ArithMode::ForceDispatch);
}

TEST(Report, MeasureProgramProducesBothModes)
{
    BenchmarkProgram tiny{
        "tiny", "test",
        "(de f (n) (if (zerop n) 0 (+ n (f (sub1 n))))) (print (f 20))",
        1u << 20, 50'000'000};
    auto m = measureProgram(tiny, baselineOptions(Checking::Off));
    EXPECT_EQ(m.off.output, "210\n");
    EXPECT_EQ(m.full.output, "210\n");
    EXPECT_GT(m.full.stats.total, m.off.stats.total);

    auto row = table1Row(m);
    EXPECT_GT(row.total, 0);
    EXPECT_GT(row.arith, 0);
    EXPECT_NEAR(row.total,
                100.0 * (static_cast<double>(m.full.stats.total) /
                             static_cast<double>(m.off.stats.total) -
                         1.0),
                1e-9);
}

TEST(Report, Figure1BarsConsistent)
{
    BenchmarkProgram tiny{
        "tiny", "test",
        "(de w (l) (if (null l) 0 (add1 (w (cdr l)))))"
        "(print (w '(1 2 3 4 5 6 7 8)))",
        1u << 20, 50'000'000};
    auto m = measureProgram(tiny, baselineOptions(Checking::Off));
    auto f = figure1Bars(m);
    for (int i = 0; i < fig1Ops; ++i) {
        EXPECT_GE(f.withoutRtc[i], 0.0);
        EXPECT_LE(f.withoutRtc[i], 100.0);
        // The added component can never exceed the full bar.
        EXPECT_LE(f.addedByRtc[i], f.withRtc[i] + 1e-9);
    }
    // A list walk with checking must show checking time.
    EXPECT_GT(f.withRtc[3], f.withoutRtc[3]);
    EXPECT_GT(f.totalWith, 0.0);
}

TEST(Report, Figure1AverageIsMeanOfBars)
{
    BenchmarkProgram tiny{
        "tiny", "t", "(print (car '(1)))", 1u << 20, 10'000'000};
    auto m = measureProgram(tiny, baselineOptions(Checking::Off));
    auto one = figure1Bars(m);
    auto avg = figure1Average({m, m});
    for (int i = 0; i < fig1Ops; ++i)
        EXPECT_NEAR(avg.withRtc[i], one.withRtc[i], 1e-9);
}

TEST(Report, Table2CellMath)
{
    RunResult base;
    base.stats.total = 1000;
    base.stats.byPurpose[static_cast<int>(Purpose::TagRemove)][0] = 80;
    RunResult cfg;
    cfg.stats.total = 920;
    cfg.stats.byPurpose[static_cast<int>(Purpose::TagRemove)][0] = 0;
    auto cell = table2Cell(base, cfg);
    EXPECT_NEAR(cell.total, 8.0, 1e-9);
    EXPECT_NEAR(cell.mask, 8.0, 1e-9);
    auto avg = table2Average({base, base}, {cfg, cfg});
    EXPECT_NEAR(avg.total, 8.0, 1e-9);
}

TEST(Report, Figure2Math)
{
    RunResult base;
    base.stats.total = 1000;
    base.stats.andOps = 90;
    base.stats.moveOps = 10;
    base.stats.noops = 50;
    RunResult noMask;
    noMask.stats.total = 943;
    noMask.stats.andOps = 5;
    noMask.stats.moveOps = 22;
    noMask.stats.noops = 60;
    auto d = figure2Data(base, noMask);
    EXPECT_NEAR(d.andOps, 8.5, 1e-9);
    EXPECT_NEAR(d.moveOps, -1.2, 1e-9);
    EXPECT_NEAR(d.noops, -1.0, 1e-9);
    EXPECT_NEAR(d.total, 5.7, 1e-9);
}

TEST(Paper, TablesWellFormed)
{
    EXPECT_EQ(paper::table1().size(), 10u);
    EXPECT_EQ(paper::table2().size(), 7u);
    EXPECT_EQ(paper::table3().size(), 10u);
    EXPECT_EQ(paper::figure1().size(), 4u);
    EXPECT_EQ(paper::figure2().size(), 5u);

    // Table 1's published average.
    double sum = 0;
    for (const auto &row : paper::table1())
        sum += row.total;
    EXPECT_NEAR(sum / 10.0, paper::table1Average, 0.05);

    // Table 2 row 7 dominates rows 1-6 in the checking column.
    for (size_t i = 0; i + 1 < paper::table2().size(); ++i) {
        EXPECT_LE(paper::table2()[i].withChecking,
                  paper::table2().back().withChecking);
    }
}

TEST(Paper, KeyConstants)
{
    EXPECT_EQ(paper::genericAddCyclesBiased, 10);
    EXPECT_EQ(paper::genericAddCyclesSumCheck, 4);
    EXPECT_NEAR(paper::figure2TotalSpeedup, 5.7, 1e-9);
}

} // namespace
} // namespace mxl
