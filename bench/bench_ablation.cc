/**
 * Ablations on the design choices DESIGN.md calls out:
 *  - delay-slot filling on/off (how much the scheduler matters);
 *  - §6.2.1 check overlap (protected op in the squashing slots);
 *  - the four tag schemes head to head at both checking settings.
 */

#include <cstdio>

#include "bench_export.h"
#include "core/engine.h"
#include "core/experiment.h"
#include "core/report.h"
#include "core/run.h"
#include "programs/programs.h"
#include "support/stats.h"
#include "support/format.h"
#include "support/table.h"

using namespace mxl;

namespace {

/** Every measured cell across all variants, for the JSON export. */
struct GridCollector
{
    std::vector<RunRequest> reqs;
    std::vector<RunReport> reports;
};

double
averageCycles(Engine &eng, const CompilerOptions &base,
              const std::string &tag, GridCollector &coll)
{
    std::vector<RunRequest> grid = programGrid(base);
    for (RunRequest &req : grid)
        req.label = tag + "/" + req.label;
    std::vector<RunReport> reports = eng.runGrid(grid);
    double sum = 0;
    for (const auto &r : unwrapReports(reports))
        sum += static_cast<double>(r.stats.total);
    coll.reqs.insert(coll.reqs.end(), grid.begin(), grid.end());
    coll.reports.insert(coll.reports.end(), reports.begin(),
                        reports.end());
    return sum;
}

} // namespace

int
main()
{
    std::printf("Ablations (ten-program aggregate cycles, relative to "
                "the baseline)\n\n");

    Engine eng;
    GridCollector coll;
    for (Checking chk : {Checking::Off, Checking::Full}) {
        const char *mode = chk == Checking::Full ? "checking" : "no-check";
        double base = averageCycles(eng, baselineOptions(chk),
                                    strcat(mode, "/baseline"), coll);

        auto rel = [&](CompilerOptions o, const std::string &tag) {
            return 100.0 *
                   (base - averageCycles(eng, o, strcat(mode, "/", tag),
                                         coll)) /
                   base;
        };

        TextTable t;
        t.addRow({strcat("variant (", mode, ")"), "cycles saved"});

        CompilerOptions noFill = baselineOptions(chk);
        noFill.fillDelaySlots = false;
        t.addRow({"no delay-slot filling",
                  percent(rel(noFill, "no-fill"))});

        CompilerOptions overlap = baselineOptions(chk);
        overlap.overlapChecks = true;
        t.addRow({"6.2.1 check overlap",
                  percent(rel(overlap, "overlap"))});

        for (SchemeKind sk : {SchemeKind::High6, SchemeKind::Low2,
                              SchemeKind::Low3}) {
            CompilerOptions o = baselineOptions(chk);
            o.scheme = sk;
            t.addRow({strcat("scheme ", schemeKindName(sk)),
                      percent(rel(o, schemeKindName(sk)))});
        }
        std::printf("%s\n", t.render().c_str());
    }

    std::printf("notes:\n");
    std::printf("  - negative numbers mean the variant is slower than "
                "the baseline\n");
    std::printf("  - the low-tag rows are the paper's 'software "
                "schemes ... very attractive' result\n");
    std::printf("  - check overlap approaches the hardware rows "
                "without any hardware\n\n");

    return writeBenchJson("ablation",
                          benchDoc("ablation",
                                   gridJson(coll.reqs, coll.reports),
                                   &eng))
               ? 0
               : 1;
}
