#include "compiler/scheduler.h"

#include "support/panic.h"

namespace mxl {

namespace {

/** True if @p inst may be placed in a delay slot at all. */
bool
slotSafe(const Instruction &inst)
{
    if (isControl(inst.op))
        return false;
    switch (inst.op) {
      case Opcode::Sys:
        // Halt/error in a slot would be legal but confusing; keep out.
        return false;
      case Opcode::Ldt:
      case Opcode::Stt:
      case Opcode::Addt:
      case Opcode::Subt:
        // The machine does not support traps inside delay slots.
        return false;
      default:
        return true;
    }
}

bool
readsReg(const Instruction &inst, int r)
{
    Reg rr[3];
    int n;
    inst.readRegs(rr, n);
    for (int i = 0; i < n; ++i) {
        if (rr[i] == r)
            return true;
    }
    return false;
}

/** May @p inst move from before @p xfer into its delay slots? */
bool
movableAcross(const Instruction &inst, const Instruction &xfer)
{
    if (!slotSafe(inst))
        return false;
    // Must not change the transfer's condition/target/link registers.
    Reg xr[3];
    int n;
    xfer.readRegs(xr, n);
    int w = inst.writeReg();
    if (w > 0) {
        for (int i = 0; i < n; ++i) {
            if (xr[i] == w)
                return false;
        }
    }
    int linkw = xfer.writeReg(); // jal/jalr link register
    if (linkw > 0) {
        if (w == linkw)
            return false;
        if (readsReg(inst, linkw))
            return false;
    }
    return true;
}

} // namespace

void
scheduleDelaySlots(AsmBuffer &buf, bool fill, bool overlapChecks)
{
    const std::vector<AsmEntry> in = std::move(buf.entries());
    std::vector<AsmEntry> out;
    out.reserve(in.size() + in.size() / 4);

    // Index into `out` of the first instruction of the current
    // unbroken run (no labels, no control transfers) — instructions at
    // or after this point are candidates for fill-from-above.
    size_t blockStart = 0;

    auto emitEntry = [&](const AsmEntry &e) { out.push_back(e); };

    for (size_t i = 0; i < in.size(); ++i) {
        const AsmEntry &e = in[i];
        if (e.isLabel) {
            emitEntry(e);
            blockStart = out.size();
            continue;
        }
        if (!isControl(e.inst.op)) {
            emitEntry(e);
            continue;
        }

        Instruction xfer = e.inst;
        std::vector<AsmEntry> slots;

        if (fill && overlapChecks && xfer.hintFall &&
            isCondBranch(xfer.op)) {
            // Rarely-taken check: pull from the fall-through path and
            // squash on taken.
            size_t j = i + 1;
            while (slots.size() < 2 && j < in.size() &&
                   !in[j].isLabel && slotSafe(in[j].inst) &&
                   !isControl(in[j].inst.op)) {
                slots.push_back(in[j]);
                ++j;
            }
            if (!slots.empty()) {
                xfer.annul = Annul::OnTaken;
                i = j - 1; // consume the moved instructions
            }
        }

        if (fill && slots.empty()) {
            // Fill from the contiguous suffix of the preceding block.
            size_t avail = out.size() - blockStart;
            size_t take = 0;
            while (take < 2 && take < avail) {
                const AsmEntry &cand = out[out.size() - 1 - take];
                if (cand.isLabel || !movableAcross(cand.inst, xfer))
                    break;
                ++take;
            }
            if (take > 0) {
                slots.assign(out.end() - static_cast<long>(take),
                             out.end());
                out.erase(out.end() - static_cast<long>(take), out.end());
            }
        }

        while (slots.size() < 2) {
            AsmEntry pad;
            pad.inst.op = Opcode::Noop;
            pad.inst.ann = xfer.ann;
            slots.push_back(pad);
        }

        AsmEntry xe;
        xe.inst = xfer;
        emitEntry(xe);
        emitEntry(slots[0]);
        emitEntry(slots[1]);
        blockStart = out.size();
    }

    buf.entries() = std::move(out);
}

} // namespace mxl
