/**
 * @file
 * Small string-formatting helpers (GCC 12 lacks std::format).
 */

#ifndef MXLISP_SUPPORT_FORMAT_H_
#define MXLISP_SUPPORT_FORMAT_H_

#include <cstdint>
#include <sstream>
#include <string>

namespace mxl {

/** Concatenate the stream representations of all arguments. */
template <typename... Args>
std::string
strcat(const Args &...args)
{
    std::ostringstream os;
    ((os << args), ...);
    return os.str();
}

/** Format @p v with @p prec digits after the decimal point. */
std::string fixed(double v, int prec = 1);

/** Format @p v as a percentage string, e.g. "24.6%". */
std::string percent(double v, int prec = 1);

/** Format a 32-bit word as 0x%08x. */
std::string hex32(uint32_t v);

/** Left-pad @p s with spaces to width @p w. */
std::string padLeft(const std::string &s, size_t w);

/** Right-pad @p s with spaces to width @p w. */
std::string padRight(const std::string &s, size_t w);

} // namespace mxl

#endif // MXLISP_SUPPORT_FORMAT_H_
