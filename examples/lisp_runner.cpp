/**
 * lisp_runner: a command-line driver for the whole system. Runs an
 * MX-Lisp file (or an inline expression) under a chosen tag scheme,
 * checking mode, and hardware configuration, and reports the cycle
 * breakdown.
 *
 * Usage:
 *   lisp_runner [options] file.lsp
 *   lisp_runner [options] -e '(print (+ 1 2))'
 *
 * Options:
 *   --scheme high5|high6|low2|low3    tag scheme (default high5)
 *   --check                           enable full run-time checking
 *   --hw feature[,feature...]         ignoretag, btag, genarith,
 *                                     ckmem-lists, ckmem-all
 *   --heap BYTES                      semispace size (default 4 MiB)
 *   --overlap                         §6.2.1 check overlap
 *   --no-fill                         disable delay-slot filling
 *   --disasm                          dump the compiled program
 *   --benchmark NAME                  run a built-in benchmark program
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "core/engine.h"
#include "core/run.h"
#include "isa/assembler.h"
#include "programs/programs.h"
#include "support/panic.h"

using namespace mxl;

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: lisp_runner [--scheme S] [--check] [--hw F,..] "
                 "[--heap N]\n"
                 "                   [--overlap] [--no-fill] [--disasm]\n"
                 "                   (file.lsp | -e EXPR | --benchmark "
                 "NAME)\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    CompilerOptions opts;
    std::string source;
    bool haveSource = false;
    bool disasm = false;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::exit(usage());
            }
            return argv[++i];
        };
        if (a == "--scheme") {
            std::string s = next();
            if (s == "high5")
                opts.scheme = SchemeKind::High5;
            else if (s == "high6")
                opts.scheme = SchemeKind::High6;
            else if (s == "low2")
                opts.scheme = SchemeKind::Low2;
            else if (s == "low3")
                opts.scheme = SchemeKind::Low3;
            else
                return usage();
        } else if (a == "--check") {
            opts.checking = Checking::Full;
        } else if (a == "--hw") {
            std::stringstream ss(next());
            std::string f;
            while (std::getline(ss, f, ',')) {
                if (f == "ignoretag")
                    opts.hw.ignoreTagOnMemory = true;
                else if (f == "btag")
                    opts.hw.branchOnTag = true;
                else if (f == "genarith")
                    opts.hw.genericArith = true;
                else if (f == "ckmem-lists")
                    opts.hw.checkedMemory = CheckedMem::Lists;
                else if (f == "ckmem-all")
                    opts.hw.checkedMemory = CheckedMem::All;
                else
                    return usage();
            }
        } else if (a == "--heap") {
            opts.heapBytes = static_cast<uint32_t>(atoi(next()));
        } else if (a == "--overlap") {
            opts.overlapChecks = true;
        } else if (a == "--no-fill") {
            opts.fillDelaySlots = false;
        } else if (a == "--disasm") {
            disasm = true;
        } else if (a == "-e") {
            source = next();
            haveSource = true;
        } else if (a == "--benchmark") {
            try {
                const auto &p = programByName(next());
                source = p.source;
                opts.heapBytes = p.heapBytes;
            } catch (const MxlError &e) {
                std::fprintf(stderr, "%s\n", e.what());
                return 1;
            }
            haveSource = true;
        } else if (a[0] != '-') {
            std::ifstream in(a);
            if (!in) {
                std::fprintf(stderr, "cannot open %s\n", a.c_str());
                return 1;
            }
            std::stringstream ss;
            ss << in.rdbuf();
            source = ss.str();
            haveSource = true;
        } else {
            return usage();
        }
    }
    if (!haveSource)
        return usage();

    try {
        Engine eng;
        RunRequest req;
        req.source = source;
        req.opts = opts;
        if (disasm) {
            auto c = eng.compile(source, opts);
            if (!c.status.ok()) {
                std::fprintf(stderr, "%s\n", c.status.message.c_str());
                return 1;
            }
            std::printf("%s\n", disassemble(c.unit->prog).c_str());
        }

        RunReport rep = eng.run(req); // disasm path: a cache hit
        if (!rep.status.ok()) {
            std::fprintf(stderr, "%s\n", rep.status.message.c_str());
            return 1;
        }
        const RunResult &r = rep.result;
        std::printf("%s", r.output.c_str());
        std::printf("---\n");
        std::printf("config: %s\n", opts.describe().c_str());
        std::printf("status: %s",
                    r.stop == StopReason::Halted   ? "halted\n"
                    : r.stop == StopReason::Errored ? "ERROR "
                                                     : "cycle limit\n");
        if (r.stop == StopReason::Errored)
            std::printf("(code %lld)\n",
                        static_cast<long long>(r.errorCode));
        std::printf("%s", r.stats.summary().c_str());
        if (r.gcCount)
            std::printf("collections: %llu (last live %llu bytes)\n",
                        static_cast<unsigned long long>(r.gcCount),
                        static_cast<unsigned long long>(r.heapUsed));
        return r.stop == StopReason::Halted ? 0 : 1;
    } catch (const MxlError &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
