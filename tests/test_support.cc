/** Tests for the support layer: formatting, bits, stats, tables. */

#include <gtest/gtest.h>

#include "support/bits.h"
#include "support/format.h"
#include "support/json.h"
#include "support/panic.h"
#include "support/stats.h"
#include "support/table.h"

namespace mxl {
namespace {

TEST(Format, Strcat)
{
    EXPECT_EQ(strcat("a", 1, "b", 2.5), "a1b2.5");
    EXPECT_EQ(strcat(), "");
}

TEST(Format, Fixed)
{
    EXPECT_EQ(fixed(3.14159, 2), "3.14");
    EXPECT_EQ(fixed(-0.5, 1), "-0.5");
    EXPECT_EQ(fixed(2.0, 0), "2");
}

TEST(Format, Percent)
{
    EXPECT_EQ(percent(24.59, 2), "24.59%");
    EXPECT_EQ(percent(5.7), "5.7%");
}

TEST(Format, Hex32)
{
    EXPECT_EQ(hex32(0), "0x00000000");
    EXPECT_EQ(hex32(0xdeadbeef), "0xdeadbeef");
}

TEST(Format, Padding)
{
    EXPECT_EQ(padLeft("ab", 4), "  ab");
    EXPECT_EQ(padRight("ab", 4), "ab  ");
    EXPECT_EQ(padLeft("abcd", 2), "abcd");
    EXPECT_EQ(padRight("abcd", 2), "abcd");
}

TEST(Bits, BitsOf)
{
    EXPECT_EQ(bitsOf(0xabcd1234, 0, 4), 0x4u);
    EXPECT_EQ(bitsOf(0xabcd1234, 28, 4), 0xau);
    EXPECT_EQ(bitsOf(0xffffffff, 5, 3), 7u);
}

TEST(Bits, MaskBits)
{
    EXPECT_EQ(maskBits(0, 5), 0x1fu);
    EXPECT_EQ(maskBits(27, 5), 0xf8000000u);
    EXPECT_EQ(maskBits(0, 32), 0xffffffffu);
}

TEST(Bits, SignExtend)
{
    EXPECT_EQ(signExtend(0x7ffffff, 27), -1);
    EXPECT_EQ(signExtend(0x4000000, 27), -(1 << 26));
    EXPECT_EQ(signExtend(0x3ffffff, 27), (1 << 26) - 1);
    EXPECT_EQ(signExtend(0xffffffff, 32), -1);
    EXPECT_EQ(signExtend(0x80, 8), -128);
    EXPECT_EQ(signExtend(0x7f, 8), 127);
}

TEST(Bits, FitsSigned)
{
    EXPECT_TRUE(fitsSigned(0, 27));
    EXPECT_TRUE(fitsSigned((1 << 26) - 1, 27));
    EXPECT_FALSE(fitsSigned(1 << 26, 27));
    EXPECT_TRUE(fitsSigned(-(1 << 26), 27));
    EXPECT_FALSE(fitsSigned(-(1 << 26) - 1, 27));
}

TEST(Stats, Mean)
{
    EXPECT_DOUBLE_EQ(mean({}), 0);
    EXPECT_DOUBLE_EQ(mean({2, 4, 6}), 4);
}

TEST(Stats, Stddev)
{
    EXPECT_DOUBLE_EQ(stddev({5}), 0);
    EXPECT_NEAR(stddev({2, 4, 4, 4, 5, 5, 7, 9}), 2.0, 1e-9);
}

TEST(Stats, MinMax)
{
    EXPECT_DOUBLE_EQ(minOf({3, 1, 2}), 1);
    EXPECT_DOUBLE_EQ(maxOf({3, 1, 2}), 3);
    EXPECT_DOUBLE_EQ(minOf({}), 0);
}

TEST(Table, RendersAligned)
{
    TextTable t;
    t.addRow({"name", "value"});
    t.addRow({"x", "1.5%"});
    t.addRow({"longer", "22"});
    std::string s = t.render();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("1.5%"), std::string::npos);
    EXPECT_NE(s.find("-----"), std::string::npos);
}

TEST(Table, NumericRightAlign)
{
    TextTable t;
    t.addRow({"h", "num"});
    t.addRow({"a", "7"});
    std::string s = t.render();
    // "num" is 3 wide; the 7 should be right-aligned under it.
    EXPECT_NE(s.find("  7"), std::string::npos);
}

TEST(Panic, PanicThrows)
{
    try {
        panic("boom ", 42);
        FAIL() << "did not throw";
    } catch (const MxlError &e) {
        EXPECT_EQ(e.kind, MxlError::Kind::Panic);
        EXPECT_NE(std::string(e.what()).find("boom 42"),
                  std::string::npos);
    }
}

TEST(Panic, FatalThrows)
{
    try {
        fatal("user error");
        FAIL() << "did not throw";
    } catch (const MxlError &e) {
        EXPECT_EQ(e.kind, MxlError::Kind::Fatal);
    }
}

TEST(Panic, AssertMacro)
{
    EXPECT_NO_THROW(MXL_ASSERT(1 + 1 == 2, "fine"));
    EXPECT_THROW(MXL_ASSERT(1 == 2, "bad"), MxlError);
}

TEST(Json, ObjectsKeepInsertionOrderAndDumpDeterministically)
{
    Json j = Json::object();
    j.set("zeta", 1).set("alpha", "two").set("flag", true);
    j.set("inner", Json::array().push(1).push(Json()).push(-3));
    EXPECT_EQ(j.dump(),
              "{\"zeta\": 1, \"alpha\": \"two\", \"flag\": true, "
              "\"inner\": [1, null, -3]}");
    // Equal construction sequences give byte-identical text.
    Json k = Json::object();
    k.set("zeta", 1).set("alpha", "two").set("flag", true);
    k.set("inner", Json::array().push(1).push(Json()).push(-3));
    EXPECT_EQ(j.dump(), k.dump());
    EXPECT_NE(j.dump(2).find("\n"), std::string::npos);
}

TEST(Json, Uint64RoundTripsExactly)
{
    // Fault seeds are full-width splitmix64 values: they must survive
    // dump/parse without passing through double.
    const uint64_t seed = 0xDEADBEEFCAFEF00Dull;
    Json j = Json::object();
    j.set("seed", seed).set("neg", static_cast<int64_t>(-42));
    Json back;
    ASSERT_TRUE(Json::parse(j.dump(), &back));
    ASSERT_NE(back.find("seed"), nullptr);
    EXPECT_EQ(back.find("seed")->asUint(), seed);
    EXPECT_EQ(back.find("neg")->asInt(), -42);
    EXPECT_EQ(back.dump(), j.dump());
}

TEST(Json, ParseAcceptsValidRejectsMalformed)
{
    Json v;
    ASSERT_TRUE(Json::parse("  {\"a\": [1, 2.5, \"x\\n\", false]} ", &v));
    ASSERT_TRUE(v.isObject());
    const Json *a = v.find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_EQ(a->size(), 4u);
    EXPECT_EQ(a->at(0).asUint(), 1u);
    EXPECT_EQ(a->at(1).asReal(), 2.5);
    EXPECT_EQ(a->at(2).str(), "x\n");
    EXPECT_FALSE(a->at(3).asBool(true));

    EXPECT_FALSE(Json::parse("", &v));
    EXPECT_FALSE(Json::parse("{", &v));
    EXPECT_FALSE(Json::parse("{\"a\": }", &v));
    EXPECT_FALSE(Json::parse("[1,]", &v));
    EXPECT_FALSE(Json::parse("1 2", &v)); // trailing content
    EXPECT_FALSE(Json::parse("nul", &v));
}

TEST(Json, StringEscapesRoundTrip)
{
    Json j("quote \" backslash \\ tab \t newline \n ctrl \x01");
    Json back;
    ASSERT_TRUE(Json::parse(j.dump(), &back));
    EXPECT_EQ(back.str(), j.str());
}

} // namespace
} // namespace mxl
