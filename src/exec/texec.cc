/**
 * @file
 * The directly-threaded executor. One computed-goto dispatch per
 * straight-line instruction; one dispatch per control-transfer *group*
 * (the branch and both delay slots execute fused, including squash
 * cycles and the load interlock) — the per-block epilogue of the
 * translation scheme (docs/BACKEND.md).
 *
 * Equivalence discipline: every accounting rule of machine/machine.cc's
 * runLoop() is reproduced at the same sequence point — the cycle-limit
 * guard runs before every instruction step (including each delay-slot
 * and squash step), the load interlock charges the stalled reader and
 * always clears, squashed cycles charge the branch's annotation, traps
 * charge before redirecting, and Div/Rem/memory errors stop before any
 * register or memory write. Per-index execution/stall/squash counters
 * are folded into a CycleStats once at run end; an assertion checks the
 * rebuilt total against the live cycle counter on every run.
 */

#include "exec/texec.h"

#include <algorithm>
#include <chrono>

#include "exec/texec_internal.h"
#include "support/bits.h"
#include "support/format.h"
#include "support/panic.h"

namespace mxl {

namespace {

/** Must match core/run.cc's deadline chunking. */
constexpr uint64_t kDeadlineChunkCycles = 1'000'000;

/**
 * Re-raise an executor panic with the same context suffix
 * Machine::runGuarded() appends: pc, nearest preceding symbol, cycle.
 */
[[noreturn]] void
contextPanic(const Program &prog, int pc, uint64_t cycle,
             const std::string &msg)
{
    std::string near;
    for (const auto &[name, idx] : prog.symbols) {
        if (idx <= pc && (near.empty() || idx > prog.symbols.at(near)))
            near = name;
    }
    throw MxlError(MxlError::Kind::Panic,
                   strcat("panic: ", msg, " [at pc=", pc, " near '", near,
                          "', cycle ", cycle, "]"));
}

#if defined(__GNUC__)

/**
 * The executor. When @p labelsOut is non-null this is a *bind* call:
 * the function publishes its handler-label table (indexed by TKind)
 * and returns without touching the other arguments. GCC resolves
 * &&label identically on every call of the same function, so the
 * table bound here is valid for all later run calls.
 */
RunResult
coreRun(const CompiledUnit &unit, const TranslatedUnit &tu, Memory &image,
        const TranslatedControls &controls,
        const void *const **labelsOut)
{
    if (labelsOut) {
        // Order must match TKind (texec_internal.h).
        static const void *const table[kNumTKinds] = {
            &&L_Add, &&L_Sub, &&L_And, &&L_Or, &&L_Xor, &&L_Sll, &&L_Srl,
            &&L_Sra, &&L_Mul, &&L_Div, &&L_Rem,
            &&L_Addi, &&L_Andi, &&L_Ori, &&L_Xori, &&L_Slli, &&L_Srli,
            &&L_Srai,
            &&L_Li, &&L_Mov, &&L_Noop,
            &&L_Ld, &&L_St, &&L_Ldt, &&L_Stt,
            &&L_AddtHigh, &&L_SubtHigh, &&L_AddtLow, &&L_SubtLow,
            &&L_SysHalt, &&L_SysPutChar, &&L_SysPutFixRaw, &&L_SysPutFix,
            &&L_SysError,
            &&L_Beq, &&L_Bne, &&L_Blt, &&L_Bge, &&L_Ble, &&L_Bgt,
            &&L_Beqi, &&L_Bnei, &&L_Btag, &&L_Bntag,
            &&L_J, &&L_Jal, &&L_Jr, &&L_Jalr,
            &&L_End,
            &&L_F_Addi_St, &&L_F_St_Ld, &&L_F_St_St, &&L_F_And_Ld,
            &&L_F_Ld_Srli, &&L_F_Ld_Addi, &&L_F_Ld_And, &&L_F_Ld_Ld,
            &&L_F_Ld_Li, &&L_F_Mov_Ld, &&L_F_Slli_Srai, &&L_F_Addi_Ld,
            &&L_F_St_Li, &&L_F_Ld_Slli,
        };
        *labelsOut = table;
        return {};
    }

    const TranslatedOp *const ops = tu.ops.data();
    const int n = static_cast<int>(tu.nInsts);
    MXL_ASSERT(tu.entry >= 0 && tu.entry < n, "bad entry point");

    // Machine state. Slot 32 is the write sink for rd == 0 (reads of
    // r0 always see the never-written regs[0] == 0).
    uint32_t regs[33] = {};
    uint32_t *const mem = image.size() ? &image.word(0) : nullptr;
    const uint32_t nWords = image.size() / 4;
    int pending = -1; // load-interlock register, -1 none

    // Per-index accounting, folded into CycleStats at the end.
    std::vector<uint64_t> counts(static_cast<size_t>(n) * 3, 0);
    uint64_t *const EC = counts.data();          // executions
    uint64_t *const ST = EC + n;                 // stall cycles
    uint64_t *const SQ = ST + n;                 // squash cycles
    uint64_t cycles = 0;

    int trapHandler[3] = {-1, -1, -1};
    if (controls.installTrapHandlers) {
        trapHandler[static_cast<int>(TrapKind::ArithFail)] = tu.arithTrap;
        trapHandler[static_cast<int>(TrapKind::TagMismatch)] = tu.tagTrap;
    }

    // Scheme/hardware constants.
    const uint32_t tagShift = tu.tagShift;
    const uint32_t tagMask = tu.tagMask;
    const uint32_t detagMask = tu.detagMask;
    const uint32_t memMask = tu.memMask;
    const unsigned dataBits = tu.dataBits;

    // Budget: effLimit == maxCycles without a deadline; with one, the
    // run pauses every kDeadlineChunkCycles to poll the wall clock,
    // exactly like runUnitOn()'s Machine::resume chunking.
    const uint64_t maxCycles = controls.maxCycles;
    const bool deadlined = controls.deadlineSeconds > 0;
    const auto start = std::chrono::steady_clock::now();
    uint64_t effLimit =
        deadlined ? std::min(maxCycles, kDeadlineChunkCycles) : maxCycles;

    StopReason stop = StopReason::Running;
    int64_t errorCode = 0;
    uint32_t exitValue = 0;
    int faultIndex = -1;
    bool timedOut = false;
    std::string out;

    // True when the run must stop (cycle limit / deadline); false when
    // only the deadline-poll chunk expired and execution continues.
    auto overBudget = [&]() -> bool {
        if (cycles > maxCycles) {
            stop = StopReason::CycleLimit;
            return true;
        }
        if (std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count() >= controls.deadlineSeconds) {
            timedOut = true;
            stop = StopReason::CycleLimit;
            return true;
        }
        effLimit = std::min(maxCycles, cycles + kDeadlineChunkCycles);
        return false;
    };

#define IDX(p) ((p)->idx)

    // The loop-top cycle guard: runs before every step, like runLoop().
#define BUDGET()                                                            \
    do {                                                                    \
        if (__builtin_expect(cycles > effLimit, 0)) {                       \
            if (overBudget())                                               \
                goto done;                                                  \
        }                                                                   \
    } while (0)

    // Issue one instruction at *p: load interlock, execution count,
    // base cycle charge. Mirrors observeIssue + the stall check +
    // chargeAndCount's charge.
#define ISSUE(p)                                                            \
    do {                                                                    \
        if (pending >= 0) {                                                 \
            if (((p)->readMask >> pending) & 1u) {                          \
                cycles++;                                                   \
                ST[IDX(p)]++;                                               \
            }                                                               \
            pending = -1;                                                   \
        }                                                                   \
        EC[IDX(p)]++;                                                       \
        cycles += (p)->cycles;                                              \
    } while (0)

#define NEXT(nip)                                                           \
    do {                                                                    \
        ip = (nip);                                                         \
        BUDGET();                                                           \
        goto *const_cast<void *>(ip->handler);                              \
    } while (0)

#define STOP_ILLEGAL(p, a)                                                  \
    do {                                                                    \
        errorCode = static_cast<int64_t>(a);                                \
        faultIndex = static_cast<int>(IDX(p));                              \
        stop = StopReason::IllegalAccess;                                   \
        goto done;                                                          \
    } while (0)

#define STOP_DIV0()                                                         \
    do {                                                                    \
        errorCode = kDivideByZeroCode;                                      \
        stop = StopReason::Errored;                                         \
        goto done;                                                          \
    } while (0)

    // Take a trap at ip with @p kind; @p scratchVal is what
    // abi::scratch holds on entry to the handler (the trap kind, or
    // the Addt/Subt op code which overwrites it).
#define TRAP(kind, scratchVal)                                              \
    do {                                                                    \
        const int h_ = trapHandler[static_cast<int>(kind)];                 \
        if (h_ < 0) {                                                       \
            errorCode =                                                     \
                encodeUnhandledTrap(kind, static_cast<int>(IDX(ip)));       \
            faultIndex = static_cast<int>(IDX(ip));                         \
            stop = StopReason::Errored;                                     \
            goto done;                                                      \
        }                                                                   \
        regs[abi::trapRet] =                                                \
            Machine::codeAddr(static_cast<int>(IDX(ip)) + 1);               \
        regs[abi::scratch] = static_cast<uint32_t>(scratchVal);             \
        NEXT(ops + h_);                                                     \
    } while (0)

    // One delay-slot instruction's semantics (issue accounting is done
    // by the caller). Only the kinds the translator admits into slots
    // can appear: non-control, non-trapping, non-Sys.
#define SLOT_EXEC(p)                                                        \
    do {                                                                    \
        const TranslatedOp *const s_ = (p);                                 \
        switch (s_->kind) {                                                 \
          case TAdd: regs[s_->wslot] = regs[s_->rs] + regs[s_->rt]; break;  \
          case TSub: regs[s_->wslot] = regs[s_->rs] - regs[s_->rt]; break;  \
          case TAnd: regs[s_->wslot] = regs[s_->rs] & regs[s_->rt]; break;  \
          case TOr:  regs[s_->wslot] = regs[s_->rs] | regs[s_->rt]; break;  \
          case TXor: regs[s_->wslot] = regs[s_->rs] ^ regs[s_->rt]; break;  \
          case TSll:                                                        \
            regs[s_->wslot] = regs[s_->rs] << (regs[s_->rt] & 31u);         \
            break;                                                          \
          case TSrl:                                                        \
            regs[s_->wslot] = regs[s_->rs] >> (regs[s_->rt] & 31u);         \
            break;                                                          \
          case TSra:                                                        \
            regs[s_->wslot] = static_cast<uint32_t>(                        \
                static_cast<int32_t>(regs[s_->rs]) >>                       \
                (regs[s_->rt] & 31u));                                      \
            break;                                                          \
          case TMul:                                                        \
            regs[s_->wslot] = static_cast<uint32_t>(                        \
                static_cast<int32_t>(regs[s_->rs]) *                        \
                static_cast<int64_t>(                                       \
                    static_cast<int32_t>(regs[s_->rt])));                   \
            break;                                                          \
          case TDiv:                                                        \
            if (static_cast<int32_t>(regs[s_->rt]) == 0)                    \
                STOP_DIV0();                                                \
            regs[s_->wslot] = static_cast<uint32_t>(                        \
                static_cast<int32_t>(regs[s_->rs]) /                        \
                static_cast<int32_t>(regs[s_->rt]));                        \
            break;                                                          \
          case TRem:                                                        \
            if (static_cast<int32_t>(regs[s_->rt]) == 0)                    \
                STOP_DIV0();                                                \
            regs[s_->wslot] = static_cast<uint32_t>(                        \
                static_cast<int32_t>(regs[s_->rs]) %                        \
                static_cast<int32_t>(regs[s_->rt]));                        \
            break;                                                          \
          case TAddi:                                                       \
            regs[s_->wslot] =                                               \
                regs[s_->rs] + s_->uimm;              \
            break;                                                          \
          case TAndi:                                                       \
            regs[s_->wslot] =                                               \
                regs[s_->rs] & s_->uimm;              \
            break;                                                          \
          case TOri:                                                        \
            regs[s_->wslot] =                                               \
                regs[s_->rs] | s_->uimm;              \
            break;                                                          \
          case TXori:                                                       \
            regs[s_->wslot] =                                               \
                regs[s_->rs] ^ s_->uimm;              \
            break;                                                          \
          case TSlli:                                                       \
            regs[s_->wslot] = regs[s_->rs] << (s_->uimm & 31);               \
            break;                                                          \
          case TSrli:                                                       \
            regs[s_->wslot] = regs[s_->rs] >> (s_->uimm & 31);               \
            break;                                                          \
          case TSrai:                                                       \
            regs[s_->wslot] = static_cast<uint32_t>(                        \
                static_cast<int32_t>(regs[s_->rs]) >> (s_->uimm & 31));      \
            break;                                                          \
          case TLi:                                                         \
            regs[s_->wslot] = s_->uimm;               \
            break;                                                          \
          case TMov: regs[s_->wslot] = regs[s_->rs]; break;                 \
          case TNoop: break;                                                \
          case TLd: {                                                       \
            const uint32_t a_ =                                             \
                (regs[s_->rs] + s_->uimm) & memMask;  \
            if ((a_ >> 2) >= nWords)                                        \
                STOP_ILLEGAL(s_, a_);                                       \
            regs[s_->wslot] = mem[a_ >> 2];                                 \
            pending = s_->pendReg;                                          \
            break;                                                          \
          }                                                                 \
          case TSt: {                                                       \
            const uint32_t a_ =                                             \
                (regs[s_->rs] + s_->uimm) & memMask;  \
            if ((a_ >> 2) >= nWords)                                        \
                STOP_ILLEGAL(s_, a_);                                       \
            mem[a_ >> 2] = regs[s_->rt];                                    \
            break;                                                          \
          }                                                                 \
          default:                                                          \
            panic("unexpected opcode in a delay slot");                     \
        }                                                                   \
    } while (0)

    // Semantic actions shared by standalone and fused-pair handlers
    // (issue accounting and dispatch stay with the caller). Only the
    // kinds that participate in fusion need one.
#define SEM_ADDI(p) (regs[(p)->wslot] = regs[(p)->rs] + (p)->uimm)
#define SEM_AND(p) (regs[(p)->wslot] = regs[(p)->rs] & regs[(p)->rt])
#define SEM_SLLI(p) (regs[(p)->wslot] = regs[(p)->rs] << ((p)->uimm & 31))
#define SEM_SRLI(p) (regs[(p)->wslot] = regs[(p)->rs] >> ((p)->uimm & 31))
#define SEM_SRAI(p)                                                         \
    (regs[(p)->wslot] = static_cast<uint32_t>(                              \
         static_cast<int32_t>(regs[(p)->rs]) >> ((p)->uimm & 31)))
#define SEM_LI(p) (regs[(p)->wslot] = (p)->uimm)
#define SEM_MOV(p) (regs[(p)->wslot] = regs[(p)->rs])
#define SEM_LD(p)                                                           \
    do {                                                                    \
        const uint32_t a_ = (regs[(p)->rs] + (p)->uimm) & memMask;          \
        if ((a_ >> 2) >= nWords)                                            \
            STOP_ILLEGAL(p, a_);                                            \
        regs[(p)->wslot] = mem[a_ >> 2];                                    \
        pending = (p)->pendReg;                                             \
    } while (0)
#define SEM_ST(p)                                                           \
    do {                                                                    \
        const uint32_t a_ = (regs[(p)->rs] + (p)->uimm) & memMask;          \
        if ((a_ >> 2) >= nWords)                                            \
            STOP_ILLEGAL(p, a_);                                            \
        mem[a_ >> 2] = regs[(p)->rt];                                       \
    } while (0)

    // A fused pair: two instructions, one dispatch. Both sequence
    // points are intact — the cycle guard runs between the halves and
    // the second half does its own interlock check, so the accounting
    // is bit-for-bit what two standalone dispatches produce.
#define FUSED2(SEMA, SEMB)                                                  \
    do {                                                                    \
        ISSUE(ip);                                                          \
        SEMA(ip);                                                           \
        const TranslatedOp *const q_ = ip + 1;                              \
        BUDGET();                                                           \
        ISSUE(q_);                                                          \
        SEMB(q_);                                                           \
        NEXT(ip + 2);                                                       \
    } while (0)

    const TranslatedOp *ip = ops + tu.entry;
    // Shared control-group tail state (set by every branch handler).
    const TranslatedOp *br = nullptr;
    int btarget = -1;
    bool btaken = false;

    BUDGET();
    goto *const_cast<void *>(ip->handler);

    // ------------------------------------------------------------------
    // Straight-line handlers (also reachable mid-block via trap returns
    // and computed jumps; delay-slot positions keep standalone handlers
    // for exactly that case).
    // ------------------------------------------------------------------

L_Add:
    ISSUE(ip);
    regs[ip->wslot] = regs[ip->rs] + regs[ip->rt];
    NEXT(ip + 1);
L_Sub:
    ISSUE(ip);
    regs[ip->wslot] = regs[ip->rs] - regs[ip->rt];
    NEXT(ip + 1);
L_And:
    ISSUE(ip);
    SEM_AND(ip);
    NEXT(ip + 1);
L_Or:
    ISSUE(ip);
    regs[ip->wslot] = regs[ip->rs] | regs[ip->rt];
    NEXT(ip + 1);
L_Xor:
    ISSUE(ip);
    regs[ip->wslot] = regs[ip->rs] ^ regs[ip->rt];
    NEXT(ip + 1);
L_Sll:
    ISSUE(ip);
    regs[ip->wslot] = regs[ip->rs] << (regs[ip->rt] & 31u);
    NEXT(ip + 1);
L_Srl:
    ISSUE(ip);
    regs[ip->wslot] = regs[ip->rs] >> (regs[ip->rt] & 31u);
    NEXT(ip + 1);
L_Sra:
    ISSUE(ip);
    regs[ip->wslot] = static_cast<uint32_t>(
        static_cast<int32_t>(regs[ip->rs]) >> (regs[ip->rt] & 31u));
    NEXT(ip + 1);
L_Mul:
    ISSUE(ip);
    regs[ip->wslot] = static_cast<uint32_t>(
        static_cast<int32_t>(regs[ip->rs]) *
        static_cast<int64_t>(static_cast<int32_t>(regs[ip->rt])));
    NEXT(ip + 1);
L_Div:
    ISSUE(ip);
    if (static_cast<int32_t>(regs[ip->rt]) == 0)
        STOP_DIV0();
    regs[ip->wslot] =
        static_cast<uint32_t>(static_cast<int32_t>(regs[ip->rs]) /
                              static_cast<int32_t>(regs[ip->rt]));
    NEXT(ip + 1);
L_Rem:
    ISSUE(ip);
    if (static_cast<int32_t>(regs[ip->rt]) == 0)
        STOP_DIV0();
    regs[ip->wslot] =
        static_cast<uint32_t>(static_cast<int32_t>(regs[ip->rs]) %
                              static_cast<int32_t>(regs[ip->rt]));
    NEXT(ip + 1);
L_Addi:
    ISSUE(ip);
    SEM_ADDI(ip);
    NEXT(ip + 1);
L_Andi:
    ISSUE(ip);
    regs[ip->wslot] = regs[ip->rs] & ip->uimm;
    NEXT(ip + 1);
L_Ori:
    ISSUE(ip);
    regs[ip->wslot] = regs[ip->rs] | ip->uimm;
    NEXT(ip + 1);
L_Xori:
    ISSUE(ip);
    regs[ip->wslot] = regs[ip->rs] ^ ip->uimm;
    NEXT(ip + 1);
L_Slli:
    ISSUE(ip);
    SEM_SLLI(ip);
    NEXT(ip + 1);
L_Srli:
    ISSUE(ip);
    SEM_SRLI(ip);
    NEXT(ip + 1);
L_Srai:
    ISSUE(ip);
    SEM_SRAI(ip);
    NEXT(ip + 1);
L_Li:
    ISSUE(ip);
    SEM_LI(ip);
    NEXT(ip + 1);
L_Mov:
    ISSUE(ip);
    SEM_MOV(ip);
    NEXT(ip + 1);
L_Noop:
    ISSUE(ip);
    NEXT(ip + 1);

L_Ld:
    ISSUE(ip);
    SEM_LD(ip);
    NEXT(ip + 1);
L_St:
    ISSUE(ip);
    SEM_ST(ip);
    NEXT(ip + 1);
L_Ldt: {
    ISSUE(ip);
    const uint32_t w = regs[ip->rs];
    if (((w >> tagShift) & tagMask) != ip->timm) {
        regs[abi::trapA] = w;
        regs[abi::trapB] = ip->timm;
        TRAP(TrapKind::TagMismatch,
             static_cast<int>(TrapKind::TagMismatch));
    }
    const uint32_t a =
        ((w & detagMask) + ip->uimm) & memMask;
    if ((a >> 2) >= nWords)
        STOP_ILLEGAL(ip, a);
    regs[ip->wslot] = mem[a >> 2];
    pending = ip->pendReg;
    NEXT(ip + 1);
}
L_Stt: {
    ISSUE(ip);
    const uint32_t w = regs[ip->rs];
    if (((w >> tagShift) & tagMask) != ip->timm) {
        regs[abi::trapA] = w;
        regs[abi::trapB] = ip->timm;
        TRAP(TrapKind::TagMismatch,
             static_cast<int>(TrapKind::TagMismatch));
    }
    const uint32_t a =
        ((w & detagMask) + ip->uimm) & memMask;
    if ((a >> 2) >= nWords)
        STOP_ILLEGAL(ip, a);
    mem[a >> 2] = regs[ip->rt];
    NEXT(ip + 1);
}

    // Trapping tagged arithmetic. High-tag: §4.1 method 2, the fixnum
    // test is sign-extend-and-compare; low-tag: both low schemes tag
    // fixnums 00 in the bottom bits. A failed op latches the operands
    // in trapA/trapB and leaves the op code (1=addt, 2=subt) in
    // scratch, exactly like Machine::execute.
L_AddtHigh: {
    ISSUE(ip);
    const uint32_t a = regs[ip->rs], b = regs[ip->rt];
    if (static_cast<uint32_t>(signExtend(a, dataBits)) == a &&
        static_cast<uint32_t>(signExtend(b, dataBits)) == b) {
        const int64_t v = static_cast<int64_t>(signExtend(a, dataBits)) +
                          signExtend(b, dataBits);
        if (fitsSigned(v, dataBits)) {
            regs[ip->wslot] = static_cast<uint32_t>(v & 0xffffffff);
            NEXT(ip + 1);
        }
    }
    regs[abi::trapA] = a;
    regs[abi::trapB] = b;
    TRAP(TrapKind::ArithFail, 1);
}
L_SubtHigh: {
    ISSUE(ip);
    const uint32_t a = regs[ip->rs], b = regs[ip->rt];
    if (static_cast<uint32_t>(signExtend(a, dataBits)) == a &&
        static_cast<uint32_t>(signExtend(b, dataBits)) == b) {
        const int64_t v = static_cast<int64_t>(signExtend(a, dataBits)) -
                          signExtend(b, dataBits);
        if (fitsSigned(v, dataBits)) {
            regs[ip->wslot] = static_cast<uint32_t>(v & 0xffffffff);
            NEXT(ip + 1);
        }
    }
    regs[abi::trapA] = a;
    regs[abi::trapB] = b;
    TRAP(TrapKind::ArithFail, 2);
}
L_AddtLow: {
    ISSUE(ip);
    const uint32_t a = regs[ip->rs], b = regs[ip->rt];
    if (((a | b) & 3u) == 0) {
        const int64_t v =
            static_cast<int64_t>(static_cast<int32_t>(a) >> 2) +
            (static_cast<int32_t>(b) >> 2);
        if (fitsSigned(v, 30)) {
            regs[ip->wslot] = static_cast<uint32_t>(v) << 2;
            NEXT(ip + 1);
        }
    }
    regs[abi::trapA] = a;
    regs[abi::trapB] = b;
    TRAP(TrapKind::ArithFail, 1);
}
L_SubtLow: {
    ISSUE(ip);
    const uint32_t a = regs[ip->rs], b = regs[ip->rt];
    if (((a | b) & 3u) == 0) {
        const int64_t v =
            static_cast<int64_t>(static_cast<int32_t>(a) >> 2) -
            (static_cast<int32_t>(b) >> 2);
        if (fitsSigned(v, 30)) {
            regs[ip->wslot] = static_cast<uint32_t>(v) << 2;
            NEXT(ip + 1);
        }
    }
    regs[abi::trapA] = a;
    regs[abi::trapB] = b;
    TRAP(TrapKind::ArithFail, 2);
}

L_SysHalt:
    ISSUE(ip);
    exitValue = regs[ip->rs];
    stop = StopReason::Halted;
    goto done;
L_SysPutChar:
    ISSUE(ip);
    out += static_cast<char>(regs[ip->rs] & 0xff);
    NEXT(ip + 1);
L_SysPutFixRaw:
    ISSUE(ip);
    out += strcat(static_cast<int32_t>(regs[ip->rs]));
    NEXT(ip + 1);
L_SysPutFix:
    ISSUE(ip);
    out += strcat(tu.lowTags
                      ? static_cast<int64_t>(
                            static_cast<int32_t>(regs[ip->rs]) >> 2)
                      : static_cast<int64_t>(
                            signExtend(regs[ip->rs], dataBits)));
    NEXT(ip + 1);
L_SysError:
    ISSUE(ip);
    errorCode = static_cast<int32_t>(regs[ip->rs]);
    stop = StopReason::Errored;
    goto done;

    // ------------------------------------------------------------------
    // Control transfers: resolve the condition, then run the whole
    // group (two delay slots or two squash cycles) in the shared tail.
    // ------------------------------------------------------------------

L_Beq:
    ISSUE(ip);
    btaken = regs[ip->rs] == regs[ip->rt];
    btarget = ip->target;
    br = ip;
    goto branch_common;
L_Bne:
    ISSUE(ip);
    btaken = regs[ip->rs] != regs[ip->rt];
    btarget = ip->target;
    br = ip;
    goto branch_common;
L_Blt:
    ISSUE(ip);
    btaken = static_cast<int32_t>(regs[ip->rs]) <
             static_cast<int32_t>(regs[ip->rt]);
    btarget = ip->target;
    br = ip;
    goto branch_common;
L_Bge:
    ISSUE(ip);
    btaken = static_cast<int32_t>(regs[ip->rs]) >=
             static_cast<int32_t>(regs[ip->rt]);
    btarget = ip->target;
    br = ip;
    goto branch_common;
L_Ble:
    ISSUE(ip);
    btaken = static_cast<int32_t>(regs[ip->rs]) <=
             static_cast<int32_t>(regs[ip->rt]);
    btarget = ip->target;
    br = ip;
    goto branch_common;
L_Bgt:
    ISSUE(ip);
    btaken = static_cast<int32_t>(regs[ip->rs]) >
             static_cast<int32_t>(regs[ip->rt]);
    btarget = ip->target;
    br = ip;
    goto branch_common;
L_Beqi:
    ISSUE(ip);
    btaken = static_cast<int32_t>(regs[ip->rs]) ==
             static_cast<int32_t>(ip->uimm);
    btarget = ip->target;
    br = ip;
    goto branch_common;
L_Bnei:
    ISSUE(ip);
    btaken = static_cast<int32_t>(regs[ip->rs]) !=
             static_cast<int32_t>(ip->uimm);
    btarget = ip->target;
    br = ip;
    goto branch_common;
L_Btag:
    ISSUE(ip);
    btaken = ((regs[ip->rs] >> tagShift) & tagMask) == ip->timm;
    btarget = ip->target;
    br = ip;
    goto branch_common;
L_Bntag:
    ISSUE(ip);
    btaken = ((regs[ip->rs] >> tagShift) & tagMask) != ip->timm;
    btarget = ip->target;
    br = ip;
    goto branch_common;
L_J:
    ISSUE(ip);
    btaken = true;
    btarget = ip->target;
    br = ip;
    goto branch_common;
L_Jal:
    ISSUE(ip);
    btaken = true;
    btarget = ip->target;
    // Link written at resolve time, before the slots run.
    regs[ip->wslot] =
        Machine::codeAddr(static_cast<int>(IDX(ip)) + 3);
    br = ip;
    goto branch_common;
L_Jr:
    ISSUE(ip);
    btaken = true;
    btarget = static_cast<int>(regs[ip->rs] >> 2);
    br = ip;
    goto branch_common;
L_Jalr:
    ISSUE(ip);
    btaken = true;
    // Target reads rs before the link write (rd may alias rs).
    btarget = static_cast<int>(regs[ip->rs] >> 2);
    regs[ip->wslot] =
        Machine::codeAddr(static_cast<int>(IDX(ip)) + 3);
    br = ip;
    goto branch_common;

branch_common: {
    const int bidx = static_cast<int>(IDX(br));
    if (br->annul & (btaken ? 1 : 2)) {
        // Two squashed cycles, charged to the branch. The branch's own
        // issue already cleared the load interlock, matching the
        // interpreter's per-squash pendingLoadReg_ reset.
        BUDGET();
        cycles++;
        SQ[bidx]++;
        BUDGET();
        cycles++;
        SQ[bidx]++;
    } else {
        const TranslatedOp *s = br + 1;
        BUDGET();
        ISSUE(s);
        SLOT_EXEC(s);
        s = br + 2;
        BUDGET();
        ISSUE(s);
        SLOT_EXEC(s);
    }
    if (btaken) {
        if (btarget < 0 || btarget >= n)
            contextPanic(unit.prog, bidx + 2, cycles,
                         "bad branch target");
        NEXT(ops + btarget);
    }
    NEXT(br + 3);
}

    // ------------------------------------------------------------------
    // Fused pairs (installed as the first op's handler by the
    // translator; the second op keeps its standalone handler for
    // mid-pair entries).
    // ------------------------------------------------------------------

L_F_Addi_St:
    FUSED2(SEM_ADDI, SEM_ST);
L_F_St_Ld:
    FUSED2(SEM_ST, SEM_LD);
L_F_St_St:
    FUSED2(SEM_ST, SEM_ST);
L_F_And_Ld:
    FUSED2(SEM_AND, SEM_LD);
L_F_Ld_Srli:
    FUSED2(SEM_LD, SEM_SRLI);
L_F_Ld_Addi:
    FUSED2(SEM_LD, SEM_ADDI);
L_F_Ld_And:
    FUSED2(SEM_LD, SEM_AND);
L_F_Ld_Ld:
    FUSED2(SEM_LD, SEM_LD);
L_F_Ld_Li:
    FUSED2(SEM_LD, SEM_LI);
L_F_Mov_Ld:
    FUSED2(SEM_MOV, SEM_LD);
L_F_Slli_Srai:
    FUSED2(SEM_SLLI, SEM_SRAI);
L_F_Addi_Ld:
    FUSED2(SEM_ADDI, SEM_LD);
L_F_St_Li:
    FUSED2(SEM_ST, SEM_LI);
L_F_Ld_Slli:
    FUSED2(SEM_LD, SEM_SLLI);

L_End:
    // Fell off the end of the code (or a trap return landed there).
    contextPanic(unit.prog, n, cycles, strcat("pc out of range: ", n));

done: {
    // ------------------------------------------------------------------
    // Fold the per-index counters into the interpreter's CycleStats.
    // ------------------------------------------------------------------
    RunResult r;
    CycleStats &st = r.stats;
    const auto &code = unit.prog.code;
    for (int i = 0; i < n; ++i) {
        const uint64_t e = EC[i], stl = ST[i], sq = SQ[i];
        if ((e | stl | sq) == 0)
            continue;
        const Instruction &inst = code[i];
        const int f = inst.ann.fromChecking ? 1 : 0;
        const uint64_t charged =
            e * static_cast<uint64_t>(opCycles(inst.op)) + stl + sq;
        st.total += charged;
        st.byPurpose[static_cast<int>(inst.ann.purpose)][f] += charged;
        st.byCat[static_cast<int>(inst.ann.cat)][f] += charged;
        st.loadStalls += stl;
        st.squashed += sq;
        if (e == 0)
            continue;
        st.instructions += e;
        switch (inst.op) {
          case Opcode::And:
          case Opcode::Andi:
            st.andOps += e;
            break;
          case Opcode::Mov:
            st.moveOps += e;
            break;
          case Opcode::Noop:
            st.noops += e;
            break;
          case Opcode::Ld:
          case Opcode::Ldt:
            st.loads += e;
            break;
          case Opcode::St:
          case Opcode::Stt:
            st.stores += e;
            break;
          default:
            if (isCondBranch(inst.op))
                st.branches += e;
            break;
        }
    }
    MXL_ASSERT(st.total == cycles,
               "translated-backend cycle accounting diverged: rebuilt ",
               st.total, " vs live ", cycles);

    r.output = std::move(out);
    r.stop = stop;
    r.errorCode = errorCode;
    r.exitValue = exitValue;
    r.faultIndex = faultIndex;
    r.timedOut = timedOut;
    r.gcCount = image.load(tu.gcCountAddr);
    r.heapUsed = image.load(tu.heapUsedAddr);
    return r;
}

#undef FUSED2
#undef SEM_ST
#undef SEM_LD
#undef SEM_MOV
#undef SEM_LI
#undef SEM_SRAI
#undef SEM_SRLI
#undef SEM_SLLI
#undef SEM_AND
#undef SEM_ADDI
#undef SLOT_EXEC
#undef TRAP
#undef STOP_DIV0
#undef STOP_ILLEGAL
#undef NEXT
#undef ISSUE
#undef BUDGET
#undef IDX
}

/**
 * Label-table retrieval: the addresses live inside coreRun, so they
 * are fetched through a one-time bind call. The function-local static
 * makes concurrent first calls race-free.
 */
const void *const *
labelTable()
{
    static const void *const *table = [] {
        const void *const *t = nullptr;
        CompiledUnit dummyUnit;
        TranslatedUnit dummyTu;
        Memory dummyMem(0);
        TranslatedControls dummyControls;
        coreRun(dummyUnit, dummyTu, dummyMem, dummyControls, &t);
        return t;
    }();
    return table;
}

#endif // __GNUC__

} // namespace

#if defined(__GNUC__)

const void *const *
texecLabelTable()
{
    return labelTable();
}

RunResult
runTranslated(const CompiledUnit &unit, const TranslatedUnit &tu,
              Memory image, const TranslatedControls &controls)
{
    return coreRun(unit, tu, image, controls, nullptr);
}

#else // !__GNUC__

const void *const *
texecLabelTable()
{
    return nullptr;
}

RunResult
runTranslated(const CompiledUnit &, const TranslatedUnit &, Memory,
              const TranslatedControls &)
{
    panic("translated backend requires computed-goto support");
}

#endif

} // namespace mxl
