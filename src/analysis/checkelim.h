/**
 * @file
 * Proven redundant-check elimination.
 *
 * A tag check the compiler emitted under Checking::Full is *redundant*
 * when the tag-flow solver (analysis/tagflow.h) proves its error edge
 * dead — the checked value carries a compatible tag on every path into
 * the check. Such a check branch is deleted, together with its Noop
 * delay-slot pads and its tag-extract feeder instructions when the
 * extracted temp is provably dead afterwards; all branch targets,
 * symbols and image function cells are then re-linked to the renumbered
 * instruction indices.
 *
 * Soundness: only never-taken branches are deleted, so the executed
 * instruction sequence on every dynamic path is unchanged except for
 * the removed (side-effect-free) check instructions; a jump into a
 * removed region lands on the next kept instruction, which is exactly
 * where execution would have continued. A unit whose CFG is malformed
 * (Cfg::malformed non-empty) is left untouched.
 *
 * Validation is end-to-end: bench_checkelim runs every benchmark
 * program in both forms through mxl::Engine and requires byte-identical
 * output (tests/test_analysis.cc does the same in tier 1).
 */

#ifndef MXLISP_ANALYSIS_CHECKELIM_H_
#define MXLISP_ANALYSIS_CHECKELIM_H_

#include <memory>
#include <string>

#include "compiler/unit.h"

namespace mxl {

struct ElimStats
{
    int checksConsidered = 0;   ///< fromChecking tag-check branches seen
    int checksEliminated = 0;   ///< branches proven never-taken, deleted
    int instructionsRemoved = 0; ///< total instructions deleted
    int extractsRemoved = 0;    ///< feeder tag-extract instructions
    int padsRemoved = 0;        ///< Noop delay-slot pads
    /** Unit refused and left untouched: malformed CFG, or the trap
     *  table referenced an instruction the rewrite would delete. */
    bool skipped = false;
    std::string diagnostic;     ///< why the unit was refused
};

/** Deep-copy a compiled unit (the scheme is re-made from opts). */
CompiledUnit cloneUnit(const CompiledUnit &unit);

/**
 * Delete provably redundant checks from @p unit in place, renumbering
 * branch targets, symbols, entry/trap points and image function cells.
 */
ElimStats eliminateRedundantChecks(CompiledUnit &unit);

/**
 * Hooks::unitTransform adapter (core/engine.h): clone @p unit, eliminate,
 * return the optimized copy. @p stats (optional) receives the counts.
 */
std::shared_ptr<const CompiledUnit>
checkElimTransform(const std::shared_ptr<const CompiledUnit> &unit,
                   ElimStats *stats = nullptr);

} // namespace mxl

#endif // MXLISP_ANALYSIS_CHECKELIM_H_
