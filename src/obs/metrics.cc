#include "obs/metrics.h"

#include <bit>
#include <cmath>
#include <cstdlib>

#include "support/panic.h"

namespace mxl {

void
Histogram::observe(uint64_t v)
{
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    buckets_[std::bit_width(v)].fetch_add(1, std::memory_order_relaxed);
    uint64_t seen = max_.load(std::memory_order_relaxed);
    while (v > seen &&
           !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed))
        ;
}

double
Histogram::mean() const
{
    uint64_t n = count();
    return n ? static_cast<double>(sum()) / static_cast<double>(n) : 0.0;
}

uint64_t
Histogram::percentile(double p) const
{
    uint64_t n = count();
    if (n == 0)
        return 0;
    if (p < 0.0)
        p = 0.0;
    if (p > 1.0)
        p = 1.0;
    uint64_t rank =
        static_cast<uint64_t>(std::ceil(p * static_cast<double>(n)));
    if (rank < 1)
        rank = 1;
    if (rank > n)
        rank = n;
    uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
        seen += bucket(i);
        if (seen >= rank) {
            // Upper bound of bit-width bucket i: widths i >= 1 cover
            // [2^(i-1), 2^i - 1]; width 0 is the value 0. Clamp to
            // the exact observed max so the tail bucket never reports
            // past reality.
            uint64_t hi = i == 0 ? 0
                          : i >= 64
                              ? ~uint64_t{0}
                              : (uint64_t{1} << i) - 1;
            uint64_t mx = max();
            return hi < mx ? hi : mx;
        }
    }
    // Concurrent observe() can leave the bucket sum transiently below
    // count; the observed max is the honest upper bound then.
    return max();
}

void
Histogram::mergeDelta(const Json &delta)
{
    if (const Json *c = delta.find("count"))
        count_.fetch_add(c->asUint(0), std::memory_order_relaxed);
    if (const Json *s = delta.find("sum"))
        sum_.fetch_add(s->asUint(0), std::memory_order_relaxed);
    if (const Json *m = delta.find("max")) {
        uint64_t v = m->asUint(0);
        uint64_t seen = max_.load(std::memory_order_relaxed);
        while (v > seen && !max_.compare_exchange_weak(
                               seen, v, std::memory_order_relaxed))
            ;
    }
    const Json *b = delta.find("buckets");
    if (b == nullptr || !b->isObject())
        return;
    for (size_t i = 0; i < b->size(); ++i) {
        const auto &[lo, n] = b->entry(i);
        uint64_t loVal = std::strtoull(lo.c_str(), nullptr, 10);
        int idx = loVal == 0 ? 0 : static_cast<int>(std::bit_width(loVal));
        if (idx < kBuckets)
            buckets_[idx].fetch_add(n.asUint(0),
                                    std::memory_order_relaxed);
    }
}

Json
Histogram::toJson() const
{
    Json j = Json::object();
    j.set("count", count());
    j.set("sum", sum());
    j.set("max", max());
    j.set("mean", mean());
    j.set("p50", percentile(0.50));
    j.set("p95", percentile(0.95));
    j.set("p99", percentile(0.99));
    Json b = Json::object();
    for (int i = 0; i < kBuckets; ++i) {
        uint64_t n = bucket(i);
        if (n == 0)
            continue;
        // Key each bucket by its lower bound: bit width i covers
        // [2^(i-1), 2^i); width 0 is the value 0.
        uint64_t lo = i == 0 ? 0 : uint64_t{1} << (i - 1);
        b.set(std::to_string(lo), n);
    }
    j.set("buckets", std::move(b));
    return j;
}

MetricsRegistry::Entry &
MetricsRegistry::resolve(const std::string &name, Kind kind)
{
    std::lock_guard<std::mutex> lk(mu_);
    auto it = metrics_.find(name);
    if (it == metrics_.end()) {
        Entry e;
        e.kind = kind;
        switch (kind) {
          case Kind::Counter:
            e.counter = std::make_unique<Counter>();
            break;
          case Kind::Gauge:
            e.gauge = std::make_unique<Gauge>();
            break;
          case Kind::Histogram:
            e.histogram = std::make_unique<Histogram>();
            break;
        }
        it = metrics_.emplace(name, std::move(e)).first;
    } else if (it->second.kind != kind) {
        panic("metric '", name, "' registered as a different kind");
    }
    return it->second;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    return *resolve(name, Kind::Counter).counter;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    return *resolve(name, Kind::Gauge).gauge;
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    return *resolve(name, Kind::Histogram).histogram;
}

Json
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lk(mu_);
    Json counters = Json::object();
    Json gauges = Json::object();
    Json histograms = Json::object();
    for (const auto &[name, e] : metrics_) {
        switch (e.kind) {
          case Kind::Counter:
            counters.set(name, e.counter->value());
            break;
          case Kind::Gauge:
            gauges.set(name, e.gauge->value());
            break;
          case Kind::Histogram:
            histograms.set(name, e.histogram->toJson());
            break;
        }
    }
    Json j = Json::object();
    j.set("counters", std::move(counters));
    j.set("gauges", std::move(gauges));
    j.set("histograms", std::move(histograms));
    return j;
}

namespace {

const Json *
sectionOf(const Json *doc, const char *name)
{
    if (doc == nullptr || !doc->isObject())
        return nullptr;
    const Json *s = doc->find(name);
    return s != nullptr && s->isObject() ? s : nullptr;
}

/** Histogram delta between two toJson() entries: bucket/count/sum
 *  increments, max absolute. Returns a Null Json when nothing grew. */
Json
histogramDelta(const Json &cur, const Json *old)
{
    uint64_t curCount =
        cur.find("count") ? cur.find("count")->asUint(0) : 0;
    uint64_t oldCount = 0;
    if (old != nullptr && old->find("count"))
        oldCount = old->find("count")->asUint(0);
    if (curCount <= oldCount)
        return Json();
    Json d = Json::object();
    d.set("count", curCount - oldCount);
    uint64_t curSum = cur.find("sum") ? cur.find("sum")->asUint(0) : 0;
    uint64_t oldSum = 0;
    if (old != nullptr && old->find("sum"))
        oldSum = old->find("sum")->asUint(0);
    d.set("sum", curSum >= oldSum ? curSum - oldSum : 0);
    d.set("max", cur.find("max") ? cur.find("max")->asUint(0) : 0);
    Json buckets = Json::object();
    const Json *curB = sectionOf(&cur, "buckets");
    const Json *oldB = old != nullptr ? sectionOf(old, "buckets") : nullptr;
    if (curB != nullptr) {
        for (size_t i = 0; i < curB->size(); ++i) {
            const auto &[lo, n] = curB->entry(i);
            uint64_t curN = n.asUint(0);
            uint64_t oldN = 0;
            if (oldB != nullptr && oldB->find(lo))
                oldN = oldB->find(lo)->asUint(0);
            if (curN > oldN)
                buckets.set(lo, curN - oldN);
        }
    }
    d.set("buckets", std::move(buckets));
    return d;
}

} // namespace

Json
MetricsRegistry::deltaJson(Json *baseline) const
{
    Json cur = snapshot();
    const Json *bC = sectionOf(baseline, "counters");
    const Json *bG = sectionOf(baseline, "gauges");
    const Json *bH = sectionOf(baseline, "histograms");

    Json dCounters = Json::object();
    const Json *cC = cur.find("counters");
    for (size_t i = 0; i < cC->size(); ++i) {
        const auto &[name, v] = cC->entry(i);
        uint64_t now = v.asUint(0);
        uint64_t then = 0;
        if (bC != nullptr && bC->find(name))
            then = bC->find(name)->asUint(0);
        if (now > then)
            dCounters.set(name, now - then);
    }

    Json dGauges = Json::object();
    const Json *cG = cur.find("gauges");
    for (size_t i = 0; i < cG->size(); ++i) {
        const auto &[name, v] = cG->entry(i);
        const Json *old = bG != nullptr ? bG->find(name) : nullptr;
        if (old == nullptr || old->asInt(0) != v.asInt(0))
            dGauges.set(name, v);
    }

    Json dHists = Json::object();
    const Json *cH = cur.find("histograms");
    for (size_t i = 0; i < cH->size(); ++i) {
        const auto &[name, v] = cH->entry(i);
        Json d = histogramDelta(v, bH != nullptr ? bH->find(name) : nullptr);
        if (!d.isNull())
            dHists.set(name, std::move(d));
    }

    Json delta = Json::object();
    delta.set("counters", std::move(dCounters));
    delta.set("gauges", std::move(dGauges));
    delta.set("histograms", std::move(dHists));
    if (baseline != nullptr)
        *baseline = std::move(cur);
    return delta;
}

void
MetricsRegistry::merge(const Json &delta)
{
    if (const Json *c = sectionOf(&delta, "counters")) {
        for (size_t i = 0; i < c->size(); ++i) {
            const auto &[name, v] = c->entry(i);
            counter(name).inc(v.asUint(0));
        }
    }
    if (const Json *g = sectionOf(&delta, "gauges")) {
        for (size_t i = 0; i < g->size(); ++i) {
            const auto &[name, v] = g->entry(i);
            gauge(name).set(v.asInt(0));
        }
    }
    if (const Json *h = sectionOf(&delta, "histograms")) {
        for (size_t i = 0; i < h->size(); ++i) {
            const auto &[name, v] = h->entry(i);
            histogram(name).mergeDelta(v);
        }
    }
}

} // namespace mxl
