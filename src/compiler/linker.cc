#include "compiler/linker.h"

#include "analysis/verify.h"
#include "support/panic.h"

namespace mxl {

Program
link(const AsmBuffer &buf, bool requireAnnotations,
     const LinkVerify *verify)
{
    Program prog;
    prog.labelNames = buf.labelNames();

    std::vector<int> target(buf.numLabels(), -1);
    for (const auto &e : buf.entries()) {
        if (e.isLabel) {
            MXL_ASSERT(target[e.labelId] == -1, "label placed twice: ",
                       buf.labelNames()[e.labelId]);
            target[e.labelId] = static_cast<int>(prog.code.size());
        } else {
            if (requireAnnotations && !e.inst.ann.stamped)
                fatal("unannotated instruction at index ",
                      prog.code.size(), " (", opcodeName(e.inst.op),
                      "): every emitted instruction must state a Purpose");
            prog.code.push_back(e.inst);
        }
    }

    for (auto &inst : prog.code) {
        if (inst.label >= 0) {
            int t = target[inst.label];
            if (t < 0)
                fatal("undefined label '", buf.labelNames()[inst.label],
                      "'");
            inst.target = t;
        }
    }

    for (int id = 0; id < buf.numLabels(); ++id) {
        if (buf.exported()[id]) {
            MXL_ASSERT(target[id] >= 0, "exported label not placed: ",
                       buf.labelNames()[id]);
            prog.symbols[buf.labelNames()[id]] = target[id];
        }
    }

    if (verify && verify->scheme && verify->opts) {
        VerifyResult res =
            verifyProgram(prog, *verify->scheme, *verify->opts);
        if (!res.ok())
            fatal("linked program rejected by tag-discipline verifier: ",
                  res.render());
    }
    return prog;
}

} // namespace mxl
