/**
 * @file
 * The MX-Lisp code generator.
 *
 * A one-pass, tree-walking compiler in the Portable Standard Lisp
 * tradition: top-level functions only (no closures), locals on the
 * stack under a strict push/pop discipline (see frame.h), expression
 * temporaries in r10..r19, arguments in r2..r9, result in r1.
 *
 * Code generation is parameterized by the tag scheme, the checking
 * mode, and the hardware features (CompilerOptions) — together these
 * select one cell of the paper's measurement space. Every emitted
 * instruction carries an Annotation identifying the tag operation it
 * implements, which is what the machine's cycle accounting aggregates.
 *
 * Temp-register invariant: no expression temporary is live across a
 * call to a user function (the caller pushes intermediates first).
 * Out-of-line runtime helpers that can be entered with live temps (the
 * generic-arithmetic slow path, the trap handlers) save and restore
 * r10..r19, and the GC updates the saved copies like any other stack
 * slots.
 */

#ifndef MXLISP_COMPILER_CODEGEN_H_
#define MXLISP_COMPILER_CODEGEN_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "compiler/asm_buffer.h"
#include "compiler/frame.h"
#include "compiler/options.h"
#include "runtime/image.h"
#include "sexpr/sexpr.h"
#include "tags/tag_scheme.h"

namespace mxl {

/** Labels of the runtime stubs codegen emits calls/branches to. */
struct RuntimeLabels
{
    int error = -1;     ///< type/bounds error (never returns)
    int cons = -1;      ///< rt_cons: car r2, cdr r3 -> r1
    int mkvect = -1;    ///< rt_mkvect: length r2 -> r1 (nil-filled)
    int mkstring = -1;  ///< rt_mkstring: length r2 -> r1 (zero-filled)
    int genAdd = -1;    ///< generic-arith slow paths (preserve temps)
    int genSub = -1;
    int genMul = -1;
    int genDiv = -1;
    int genRem = -1;
    int genLess = -1;   ///< generic compare slow paths -> t/nil in r1
    int genEqn = -1;
    int apply = -1;     ///< rt_apply: fn r2, arg list r3 -> r1
};

class CodeGen
{
  public:
    CodeGen(SxArena &arena, ImageBuilder &image, AsmBuffer &buf,
            const CompilerOptions &opts, const TagScheme &scheme);

    void setRuntimeLabels(const RuntimeLabels &labels) { rt_ = labels; }

    /**
     * While true, generic arithmetic compiles with the inline
     * integer-biased sequence regardless of opts.arithMode. Set when
     * compiling the runtime library: the ForceDispatch experiment
     * (§6.2.2) must not make the dispatch routine dispatch to itself.
     */
    void setLibArithInline(bool v) { libArithInline_ = v; }

    /** Pass 1: declare a function so calls can be resolved. */
    void declareFunction(Sx *name, int arity);

    bool isDeclared(Sx *name) const;

    /** Pass 2: compile `(de name (args...) body...)`. */
    void compileFunction(Sx *def);

    /**
     * Compile the program entry: runs @p topForms in order, then halts
     * with the last value. Exported as "main".
     */
    void compileMain(const std::vector<Sx *> &topForms);

    /** Label of a declared function (fatal if unknown/arity mismatch). */
    int functionLabel(Sx *name, int arity);

    int proceduresCompiled() const { return procedures_; }

    const CompilerOptions &options() const { return opts_; }
    const TagScheme &scheme() const { return scheme_; }
    ImageBuilder &image() { return image_; }
    AsmBuffer &buf() { return buf_; }

  private:
    friend class PrimHandlers;

    struct FnInfo
    {
        int label;
        int arity;
    };

    // ---- expression compilation (codegen.cc) ----
    void expr(Sx *e, Reg target);
    void compileCall(Sx *head, const std::vector<Sx *> &args, Reg target);

    /** Marshal @p args and call the code at @p label (user or stub). */
    void compileCallTo(int label, const std::vector<Sx *> &args,
                       Reg target, Annotation callAnn = {Purpose::Useful});

    /**
     * Evaluate two operands left-to-right into fresh temps. When @p b
     * contains a call, @p a's value is protected on the stack across it
     * (the no-live-temps-at-calls invariant).
     */
    void evalTwo(Sx *a, Sx *b, Reg &ra, Reg &rb);

    /** Like expr(), but integer literals load as raw machine words —
     *  the convention of the sys-Lisp layer the GC is written in. */
    void exprSys(Sx *e, Reg target);

    /** evalTwo with sys-layer literal semantics. */
    void evalTwoSys(Sx *a, Sx *b, Reg &ra, Reg &rb);
    void compileBody(Sx *forms, Reg target); ///< progn-style list
    void condBranchFalse(Sx *cond, int falseLabel); ///< jump if nil
    void condBranchTrue(Sx *cond, int trueLabel);   ///< jump if non-nil

    // Special forms.
    void formIf(Sx *e, Reg target);
    void formCond(Sx *e, Reg target);
    void formLet(Sx *e, Reg target, bool sequential);
    void formSetq(Sx *e, Reg target);
    void formWhile(Sx *e, Reg target);
    void formAndOr(Sx *e, Reg target, bool isAnd);

    // ---- helpers ----
    bool isSimple(Sx *e) const;      ///< no calls, O(1) temps
    bool containsCall(Sx *e) const;  ///< may clobber temp registers

    Reg allocTemp();
    void freeTemp(Reg r);
    void freeTempsAbove(int mark);
    int tempMark() const { return tempTop_; }

    void pushReg(Reg r);             ///< push a tagged value
    void popTo(Reg r);               ///< pop into a register
    void dropWords(int n);           ///< pop n words without reading

    void loadConstant(Sx *quoted, Reg target);
    void loadVar(Sx *sym, Reg target);
    void storeVar(Sx *sym, Reg value);

    /** Emit `target <- nil/t` from a just-computed condition. */
    void materializeBool(int trueLabel, Reg target);

    // ---- type checks & tagged access (codegen_checks.cc) ----

    /** Branch to the error stub unless tag(x) == t. No-op when
     *  checking is off or hardware will check in parallel. */
    void emitTypeCheck(Reg x, TypeId t, CheckCat cat);

    /** Branch to @p label unless @p x is a fixnum (§4.1 method 2). */
    void emitFixnumCheckBranch(Reg x, int label, CheckCat cat,
                               bool fromChecking);

    /** Branch to @p label if @p x IS a fixnum. */
    void emitFixnumBranchIf(Reg x, int label, CheckCat cat,
                            bool fromChecking);

    /**
     * Load the word at byte offset @p off of the object @p base (a
     * tagged pointer of type @p t) into @p target, handling tag
     * removal/offset adjustment/checked-load selection. @p checked
     * requests the type check (when checking is Full).
     */
    void emitLoadField(Reg target, Reg base, TypeId t, int off,
                       CheckCat cat, bool checked);

    /** Store @p value into the object field (see emitLoadField). */
    void emitStoreField(Reg value, Reg base, TypeId t, int off,
                        CheckCat cat, bool checked);

    /** Compute the detagged address of @p base into @p target. */
    void emitDetag(Reg target, Reg base, TypeId t, Annotation ann);

    /**
     * Produce a register usable as a memory base for an object of type
     * @p t: masks the tag for high-tag schemes (a fresh temp), or
     * returns @p base itself with @p adj set to the offset adjustment.
     * When the result would equal @p avoid (the load target), inserts
     * an idempotency copy (the Figure 2 `move` effect). The caller
     * frees any temp via freeTempsAbove().
     */
    Reg prepareBase(Reg base, TypeId t, int &adj, Reg avoid);

    /** Branch to @p label unless tag(x) == t (software or btag). */
    void emitTagBranchNe(Reg x, TypeId t, int label, CheckCat cat,
                         bool fromChecking, bool hintFall);

    /** Branch to @p label if tag(x) == t. */
    void emitTagBranchEq(Reg x, TypeId t, int label, CheckCat cat,
                         bool fromChecking);

    /** Generic arithmetic (+ - * quotient remainder): §2.2/§4.2/§6.2.2. */
    void emitArith(const std::string &op, Sx *a, Sx *b, Reg target);

    /** Numeric comparison with generic fallback; materializes t/nil. */
    void emitCompare(const std::string &op, Sx *a, Sx *b, Reg target);

    /** Branch form of a numeric comparison (branch if FALSE). */
    void emitCompareBranchFalse(const std::string &op, Sx *a, Sx *b,
                                int falseLabel);

    /** Vector/string indexed read/write with optional full checking. */
    void emitIndexedLoad(Sx *vec, Sx *idx, Reg target, TypeId t);
    void emitIndexedStore(Sx *vec, Sx *idx, Sx *val, Reg target, TypeId t);

    // ---- primitives (codegen_prims.cc) ----

    /** Compile a primitive call; returns false if @p name is not one. */
    bool compilePrimitive(const std::string &name,
                          const std::vector<Sx *> &args, Reg target);

    /** Branch-form predicates; returns false if not handled. */
    bool primCondBranch(Sx *e, int label, bool branchIfTrue);

    /** Expand c[ad]+r chains (cadr, caddr, ...). */
    bool isCxr(const std::string &name) const;
    void compileCxr(const std::string &name, Sx *arg, Reg target);

    /** Integer-test shift amount for high-tag schemes. */
    int highShift() const { return static_cast<int>(scheme_.tagBits()); }

    bool checkingOn() const { return opts_.checking == Checking::Full; }

    void emitSlowBinop(int stubLabel, Reg a, Reg b, Reg target,
                       int doneLabel, CheckCat cat);

    // Cold-section blocks appended after the current function body.
    void addCold(std::function<void()> emitFn);
    void flushCold();

    SxArena &arena_;
    ImageBuilder &image_;
    AsmBuffer &buf_;
    const CompilerOptions &opts_;
    const TagScheme &scheme_;
    RuntimeLabels rt_;

    std::unordered_map<const Sx *, FnInfo> functions_;
    FrameEnv env_;
    int tempTop_ = 0; ///< temps r10..r10+tempTop_-1 in use
    bool libArithInline_ = false;
    int procedures_ = 0;
    std::vector<std::function<void()>> cold_;
    std::string currentFunction_;
};

} // namespace mxl

#endif // MXLISP_COMPILER_CODEGEN_H_
