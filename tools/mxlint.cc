/**
 * @file
 * mxlint: command-line front end for the static tag-discipline verifier
 * (analysis/lint.h).
 *
 * Compiles the named benchmark programs (default: all ten) under the
 * requested scheme/checking configuration, runs the linter over each
 * linked unit, and prints the findings. Exit status is 1 when any unit
 * produced an Error-severity finding, 0 otherwise — so the tool can
 * gate a build.
 *
 * Usage:
 *   mxlint [options] [program ...]
 *     --scheme high5|high6|low2|low3   tag placement (default high5)
 *     --checking off|full              checking level (default full)
 *     --info                           also print Info findings
 *     --elim                           report redundant-check elimination
 *     --fix                            insert provably-missing checks
 *                                      (analysis/checkplace.h), re-lint
 *                                      and re-verify the fixed unit;
 *                                      exit status reflects the fixed
 *                                      unit
 *     --json                           machine output: one JSON object
 *                                      per finding on stdout (stable
 *                                      schema: tool, program, kind,
 *                                      severity, pc, where, text,
 *                                      message), plus one fix-summary
 *                                      object per program under --fix
 *     --dump                           disassemble each unit after linting
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/checkelim.h"
#include "analysis/checkplace.h"
#include "analysis/lint.h"
#include "analysis/verify.h"
#include "compiler/unit.h"
#include "isa/assembler.h"
#include "programs/programs.h"
#include "support/json.h"
#include "support/panic.h"

using namespace mxl;

namespace {

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--scheme high5|high6|low2|low3] "
                 "[--checking off|full] [--info] [--elim] [--fix] "
                 "[--json] [--dump] [program ...]\n",
                 argv0);
    return 2;
}

/** One finding as a single-line JSON object (the --json schema). */
void
printFindingJson(const std::string &program, const LintFinding &f)
{
    Json j = Json::object();
    j.set("tool", "mxlint");
    j.set("program", program);
    j.set("kind", lintKindName(f.kind));
    j.set("severity", lintSeverityName(f.severity));
    j.set("pc", f.pc);
    j.set("where", f.where);
    j.set("text", f.text);
    j.set("message", f.message);
    std::printf("%s\n", j.dump().c_str());
}

SchemeKind
parseScheme(const std::string &s)
{
    if (s == "high5")
        return SchemeKind::High5;
    if (s == "high6")
        return SchemeKind::High6;
    if (s == "low2")
        return SchemeKind::Low2;
    if (s == "low3")
        return SchemeKind::Low3;
    fatal("unknown scheme: ", s);
}

} // namespace

int
main(int argc, char **argv)
{
    CompilerOptions opts;
    opts.checking = Checking::Full;
    bool showInfo = false, elim = false, dump = false;
    bool fix = false, json = false;
    std::vector<std::string> names;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--scheme" && i + 1 < argc)
            opts.scheme = parseScheme(argv[++i]);
        else if (a == "--checking" && i + 1 < argc)
            opts.checking =
                std::strcmp(argv[i + 1], "full") == 0 ? Checking::Full
                                                      : Checking::Off,
            ++i;
        else if (a == "--info")
            showInfo = true;
        else if (a == "--elim")
            elim = true;
        else if (a == "--fix")
            fix = true;
        else if (a == "--json")
            json = true;
        else if (a == "--dump")
            dump = true;
        else if (!a.empty() && a[0] == '-')
            return usage(argv[0]);
        else
            names.push_back(a);
    }
    if (names.empty())
        for (const auto &p : benchmarkPrograms())
            names.push_back(p.name);

    int exitCode = 0;
    try {
        for (const auto &name : names) {
            const BenchmarkProgram &bp = programByName(name);
            CompilerOptions po = opts;
            po.heapBytes = bp.heapBytes;
            CompiledUnit unit = compileUnit(bp.source, po);
            LintReport rep = lintUnit(unit);
            if (json) {
                for (const LintFinding &f : rep.findings)
                    printFindingJson(name, f);
            } else {
                std::printf("%s: %d error(s), %d warning(s), %d info\n",
                            name.c_str(), rep.errors, rep.warnings,
                            rep.infos);
                const std::string body = rep.render(showInfo);
                if (!body.empty())
                    std::fputs(body.c_str(), stdout);
            }
            if (rep.errors > 0 && !fix)
                exitCode = 1;

            if (fix) {
                // Insert provably-missing checks, then hold the fixed
                // unit to the same two bars as compiler output: a clean
                // re-lint and the independent verifier. Exit status
                // reflects the *fixed* unit.
                FixStats fst = insertMissingChecks(unit);
                LintReport after = lintUnit(unit);
                VerifyResult ver = verifyUnit(unit);
                if (json) {
                    Json j = Json::object();
                    j.set("tool", "mxlint-fix");
                    j.set("program", name);
                    j.set("unproven", fst.unproven);
                    j.set("inserted", fst.inserted);
                    j.set("unfixable", fst.unfixable);
                    j.set("instructionsInserted",
                          fst.instructionsInserted);
                    j.set("skipped", fst.skipped);
                    j.set("errorsBefore", rep.errors);
                    j.set("errorsAfter", after.errors);
                    j.set("verifierAccepts", ver.ok());
                    if (!ver.ok())
                        j.set("verifierDiagnostic", ver.render());
                    std::printf("%s\n", j.dump().c_str());
                } else {
                    std::printf("%s: fix: %d unproven, %d guard(s) "
                                "inserted (%d instructions), %d "
                                "unfixable%s; re-lint %d error(s); "
                                "verifier %s\n",
                                name.c_str(), fst.unproven, fst.inserted,
                                fst.instructionsInserted, fst.unfixable,
                                fst.skipped ? " [skipped: malformed CFG]"
                                            : "",
                                after.errors,
                                ver.ok() ? "accepts"
                                         : ver.render().c_str());
                }
                if (after.errors > 0 || !ver.ok())
                    exitCode = 1;
            }

            if (elim) {
                ElimStats st = eliminateRedundantChecks(unit);
                std::printf("%s: elim: %d/%d checks removed "
                            "(%d instructions: %d branches+pads, "
                            "%d extracts)%s\n",
                            name.c_str(), st.checksEliminated,
                            st.checksConsidered, st.instructionsRemoved,
                            st.checksEliminated + st.padsRemoved,
                            st.extractsRemoved,
                            st.skipped ? " [skipped: malformed CFG]" : "");
            }
            if (dump)
                std::fputs(disassembleAsm(unit.prog).c_str(), stdout);
        }
    } catch (const MxlError &e) {
        std::fprintf(stderr, "mxlint: %s\n", e.what());
        return 2;
    }
    return exitCode;
}
