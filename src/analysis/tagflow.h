/**
 * @file
 * Tag-flow dataflow analysis: a forward worklist solver over the CFG
 * (analysis/cfg.h) that tracks, per register and per stack slot, which
 * tag-field values a word may carry.
 *
 * The lattice per location is a pair:
 *
 *   tags   — a bitset over the scheme's tag-field values. Empty means
 *            unreachable (bottom), a singleton is an exact tag, the
 *            full set is top. Every scheme fits in 64 bits (tagBits
 *            <= 6).
 *   fixnum — true when the word is *proven* equal to the sign
 *            extension of its data bits, i.e. proven to be a fixnum.
 *            This is strictly stronger than "tag in the fixnum tag
 *            set" for high-tag schemes: a word with tag 0 whose data
 *            sign bit is set is not a fixnum, so tag membership alone
 *            never proves fixnum-ness there.
 *
 * To connect checks to the values they check, each abstract value also
 * carries a *provenance*: the check idioms the compiler emits
 * (compiler/codegen_checks.cc) route through a temp — Srli/Andi tag
 * extraction, Slli;Srai sign-extension pairs, And-with-maskreg detag —
 * and the provenance records which source location that temp mirrors.
 * A conditional branch on such a temp then refines the *source*:
 * falling through `Srli t,x,27; Bnei t,9,err` proves tag(x) == 9.
 * Provenance is invalidated eagerly: writing a register clears every
 * provenance that mentions it, storing to a stack slot clears every
 * provenance that mirrors that slot, so a surviving provenance always
 * describes the current value.
 *
 * Stack slots matter because compiled locals round-trip through
 * sp-relative loads/stores on every reference. Slots are keyed by
 * entry-relative byte offset (sp tracked as a known delta from the
 * block-entry sp), refined through Prov::Slot when a loaded copy is
 * checked, and *kept across calls and non-sp stores* under the
 * compiler's stack discipline: compiled code addresses its own frame
 * only through sp, callees touch only frames below the caller's, and
 * the GC rewrites stack words tag-preservingly (forwarding a pointer
 * never changes its tag class). docs/ANALYSIS.md states and argues
 * these assumptions.
 */

#ifndef MXLISP_ANALYSIS_TAGFLOW_H_
#define MXLISP_ANALYSIS_TAGFLOW_H_

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "analysis/cfg.h"
#include "isa/instruction.h"
#include "tags/tag_scheme.h"

namespace mxl {

/** How a register's value relates to another location (see above). */
struct Prov
{
    enum class Kind : uint8_t
    {
        None,
        TagExtract, ///< reg == (tagField(src) & mask)
        SxtPartial, ///< reg == src << tagBits (first half of the pair)
        SxtOf,      ///< reg == signExtend(dataBits(src))
        Detag,      ///< reg == src with the tag field cleared
        Slot,       ///< reg mirrors stack slot at entry-relative `slot`
    };

    Kind kind = Kind::None;
    Reg src = 0;      ///< source register (all kinds except Slot)
    uint32_t mask = 0; ///< TagExtract keep-mask over the tag field
    int32_t slot = 0;  ///< Slot: entry-relative byte offset

    bool
    operator==(const Prov &o) const
    {
        return kind == o.kind && src == o.src && mask == o.mask &&
               slot == o.slot;
    }
    bool operator!=(const Prov &o) const { return !(*this == o); }
};

/** Abstract value of one register or stack slot. */
struct AbsVal
{
    uint64_t tags = 0;   ///< possible tag-field values (bitset)
    bool fixnum = false; ///< proven fixnum (see file comment)
    Prov prov;

    bool
    sameFacts(const AbsVal &o) const
    {
        return tags == o.tags && fixnum == o.fixnum && prov == o.prov;
    }
};

/** Abstract machine state at a program point. */
struct TagState
{
    bool reachable = false;
    std::array<AbsVal, 32> regs;
    /** sp == entry sp + spDelta, when known. */
    bool spKnown = false;
    int32_t spDelta = 0;
    /** Entry-relative byte offset -> value. Missing key = top. */
    std::map<int32_t, AbsVal> slots;
};

class TagFlow
{
  public:
    /** Cap on tracked stack slots per state (beyond it, new slot facts
     *  are dropped; joins only ever shrink the map). */
    static constexpr size_t kMaxSlots = 128;

    TagFlow(const Program &prog, const Cfg &cfg, const TagScheme &scheme);

    /** Run the worklist to a fixed point over the reachable blocks. */
    void solve();

    const TagState &blockIn(int block) const { return in_[block]; }

    /** State after replaying the block body, just before its
     *  terminator (or after the whole block when it has none). */
    TagState stateAtXfer(int block) const;

    /**
     * Replay block @p block, invoking @p f with each instruction index
     * and the state *before* it. Slot instructions are visited in
     * program order under the unrefined pre-branch state (sound for
     * diagnostics; the edge-exact states are what solve() propagates).
     */
    void walkBlock(int block,
                   const std::function<void(int idx, const TagState &before)>
                       &f) const;

    /** One instruction's transfer function (public for tests). */
    void applyInst(TagState &s, const Instruction &inst) const;

    /** Apply the condition of @p branch on the taken/fall edge to @p s
     *  (register refinement through provenance). */
    void refineEdge(TagState &s, const Instruction &branch,
                    bool taken) const;

    /**
     * True when the taken (or fall-through) edge of @p branch is
     * provably never executed under @p atXfer — the never-taken /
     * always-taken proof behind CheckNeverFails, CheckAlwaysFails and
     * the redundant-check eliminator.
     */
    bool edgeDead(const TagState &atXfer, const Instruction &branch,
                  bool taken) const;

    /** Caller-visible effect of a call returning (CallCont edges). */
    void applyCallClobber(TagState &s) const;

    /** Root entry state: ABI invariants known, everything else top. */
    TagState entryState() const;

    uint64_t topTags() const { return topTags_; }
    /** Tag-field values a fixnum can carry under this scheme. */
    uint64_t fixnumTags() const { return fixnumTags_; }
    /** Tag values of the four pointer types (singleton => type known). */
    uint64_t pointerTags() const { return pointerTags_; }

    const Cfg &cfg() const { return cfg_; }

  private:
    bool joinInto(TagState &dst, const TagState &src) const;
    void writeRegVal(TagState &s, Reg rd, const AbsVal &v) const;
    void invalidateRegProvs(TagState &s, Reg r) const;
    void invalidateSlotProvs(TagState &s, int32_t off) const;
    void refineReg(TagState &s, Reg r,
                   const std::function<void(AbsVal &)> &f) const;
    void storeToSlot(TagState &s, int32_t off, Reg src) const;
    void clearSlots(TagState &s) const;
    AbsVal topVal() const;

    const Program &prog_;
    const Cfg &cfg_;
    const TagScheme &scheme_;

    uint64_t topTags_ = 0;
    uint64_t fixnumTags_ = 0;
    uint64_t pointerTags_ = 0;
    uint32_t tagMask_ = 0; ///< (1 << tagBits) - 1
    bool high_ = false;

    std::vector<TagState> in_;
};

} // namespace mxl

#endif // MXLISP_ANALYSIS_TAGFLOW_H_
