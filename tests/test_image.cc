/**
 * Runtime layout and memory-image builder tests: symbol blocks,
 * interning, quoted constants, the GC root list, and the runtime cells.
 */

#include <gtest/gtest.h>

#include "runtime/image.h"
#include "sexpr/reader.h"
#include "support/panic.h"

namespace mxl {
namespace {

class ImageTest : public ::testing::TestWithParam<SchemeKind>
{
  protected:
    ImageTest()
        : opts(), layout(RuntimeLayout::compute(opts)),
          scheme(makeScheme(GetParam())), image(layout, *scheme)
    {
    }

    CompilerOptions opts;
    RuntimeLayout layout;
    std::unique_ptr<TagScheme> scheme;
    ImageBuilder image;
    SxArena arena;
};

TEST_P(ImageTest, LayoutIsSane)
{
    EXPECT_LT(layout.staticBase, layout.staticLimit);
    EXPECT_LE(layout.staticLimit, layout.heapABase);
    EXPECT_EQ(layout.heapABase % 8, 0u);
    EXPECT_EQ(layout.heapBBase, layout.heapABase + layout.heapBytes);
    EXPECT_LT(layout.heapBBase + layout.heapBytes, layout.stackTop);
    EXPECT_EQ(layout.stackTop % 8, 0u);
}

TEST_P(ImageTest, NilAndTExistWithSelfValues)
{
    uint32_t nilAddr = image.symbolAddr("nil");
    uint32_t nilWord = image.symbolWord("nil");
    EXPECT_EQ(scheme->detagAddr(nilWord), nilAddr);
    EXPECT_EQ(image.getWord(nilAddr + symoff::value), nilWord);
    uint32_t tWord = image.symbolWord("t");
    EXPECT_EQ(image.getWord(scheme->detagAddr(tWord) + symoff::value),
              tWord);
}

TEST_P(ImageTest, SymbolsInternOnce)
{
    uint32_t a1 = image.symbolAddr("foo");
    uint32_t a2 = image.symbolAddr("foo");
    EXPECT_EQ(a1, a2);
    EXPECT_NE(image.symbolAddr("bar"), a1);
    EXPECT_EQ(a1 % scheme->alignment(TypeId::Symbol), 0u);
}

TEST_P(ImageTest, SymbolBlockLayout)
{
    uint32_t a = image.symbolAddr("widget");
    // header: length 5 block, symbol subtype
    EXPECT_EQ(image.getWord(a + symoff::header), (5u << 3) | SubtSymbol);
    // name: a string whose chars spell the name
    uint32_t nameWord = image.getWord(a + symoff::name);
    uint32_t nameAddr = scheme->detagAddr(nameWord);
    EXPECT_EQ(image.getWord(nameAddr), (6u << 3) | SubtString);
    EXPECT_EQ(image.getWord(nameAddr + 4), uint32_t{'w'});
    EXPECT_EQ(image.getWord(nameAddr + 24), uint32_t{'t'});
    // fresh symbol: value/plist nil, function cell -> instruction 0
    EXPECT_EQ(image.getWord(a + symoff::value), image.symbolWord("nil"));
    EXPECT_EQ(image.getWord(a + symoff::fn), 0u);
}

TEST_P(ImageTest, StringsInternByContent)
{
    EXPECT_EQ(image.stringWord("abc"), image.stringWord("abc"));
    EXPECT_NE(image.stringWord("abc"), image.stringWord("abd"));
}

TEST_P(ImageTest, QuotedConstantsBuildStructure)
{
    Sx *form = readOne(arena, "(1 (two) . 3)");
    uint32_t w = image.constWord(form);
    uint32_t addr = scheme->detagAddr(w);
    EXPECT_EQ(scheme->primaryTag(w), scheme->pointerTag(TypeId::Pair));
    // car = fixnum 1
    EXPECT_EQ(image.getWord(addr), scheme->encodeFixnum(1));
    // cdr = ((two) . 3)
    uint32_t cdr = image.getWord(addr + 4);
    uint32_t cdrAddr = scheme->detagAddr(cdr);
    uint32_t cadr = image.getWord(cdrAddr);
    EXPECT_EQ(image.getWord(scheme->detagAddr(cadr)),
              image.symbolWord("two"));
    EXPECT_EQ(image.getWord(cdrAddr + 4), scheme->encodeFixnum(3));
}

TEST_P(ImageTest, ConstantsMemoizedByNode)
{
    Sx *form = readOne(arena, "(a b)");
    EXPECT_EQ(image.constWord(form), image.constWord(form));
}

TEST_P(ImageTest, FinalizeWritesCellsAndRoots)
{
    image.symbolAddr("extra1");
    image.symbolAddr("extra2");
    int syms = image.numSymbols();
    Memory mem = image.finalize();

    EXPECT_EQ(mem.load(layout.cellAddr(Cell::FromLo)), layout.heapABase);
    EXPECT_EQ(mem.load(layout.cellAddr(Cell::FromHi)),
              layout.heapABase + layout.heapBytes);
    EXPECT_EQ(mem.load(layout.cellAddr(Cell::ToLo)), layout.heapBBase);
    EXPECT_EQ(mem.load(layout.cellAddr(Cell::StackTop)), layout.stackTop);
    EXPECT_EQ(mem.load(layout.cellAddr(Cell::GcCount)), 0u);

    // Two root cells (value + plist) per symbol.
    uint32_t count = mem.load(layout.cellAddr(Cell::RootCount));
    EXPECT_EQ(count, static_cast<uint32_t>(2 * syms));
    uint32_t rootBase = mem.load(layout.cellAddr(Cell::RootBase));
    EXPECT_EQ(rootBase, layout.rootBase);
    // Every listed root must be a static cell address.
    for (uint32_t i = 0; i < count; ++i) {
        uint32_t cell = mem.load(rootBase + 4 * i);
        EXPECT_GE(cell, layout.staticBase);
        EXPECT_LT(cell, layout.staticLimit);
    }
}

TEST_P(ImageTest, StaticExhaustionIsFatal)
{
    EXPECT_THROW(image.allocStatic(1u << 30, 8), MxlError);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, ImageTest,
    ::testing::Values(SchemeKind::High5, SchemeKind::High6,
                      SchemeKind::Low2, SchemeKind::Low3),
    [](const ::testing::TestParamInfo<SchemeKind> &info) {
        return schemeKindName(info.param);
    });

TEST(Layout, RejectsImpossibleConfigurations)
{
    CompilerOptions opts;
    opts.memBytes = 1u << 20;  // 1 MiB total
    opts.heapBytes = 4u << 20; // but 4 MiB semispaces
    EXPECT_THROW(RuntimeLayout::compute(opts), MxlError);
}

TEST(Layout, CellAddressesAreDistinct)
{
    CompilerOptions opts;
    RuntimeLayout l = RuntimeLayout::compute(opts);
    EXPECT_EQ(l.cellAddr(Cell::FromLo) + 4, l.cellAddr(Cell::FromHi));
    EXPECT_LT(l.cellAddr(Cell::HeapUsed), l.rootBase);
}

} // namespace
} // namespace mxl
