/**
 * The campaign sandbox is a thin adapter over the shared process-pool
 * batch core (support/procpool.h): SandboxJob/SandboxOptions map
 * field-for-field onto ProcBatchJob/ProcBatchOptions, with
 * Engine::postFork() injected as the child-side initializer. The
 * containment semantics documented in sandbox.h (culprit indictment,
 * bounded backoff, watchdog kills, fork-exhaustion degradation) live
 * in runProcBatch(), where the measurement service's worker pool
 * shares them.
 */

#include "faults/sandbox.h"

#include "core/engine.h"
#include "support/panic.h"
#include "support/procpool.h"

namespace mxl {

bool
sandboxSupported()
{
    return procPoolSupported();
}

SandboxStats
runSandboxed(const SandboxJob &job, const SandboxOptions &options,
             std::vector<char> &done)
{
    MXL_ASSERT(job.engine && job.runTrial && job.onDone && job.onAbandoned,
               "incomplete SandboxJob");

    ProcBatchJob pj;
    pj.count = job.count;
    Engine *engine = job.engine;
    pj.childInit = [engine] { engine->postFork(); };
    pj.runTask = job.runTrial;
    pj.onDone = job.onDone;
    pj.onAbandoned = job.onAbandoned;

    ProcBatchOptions po;
    po.procs = options.procs;
    po.batchTasks = options.batchTrials;
    po.maxAttempts = options.maxAttempts;
    po.watchdogSeconds = options.watchdogSeconds;
    po.backoffBaseMs = options.backoffBaseMs;
    po.backoffCapMs = options.backoffCapMs;
    po.childTaskHook = options.childFaultHook;

    ProcBatchStats ps = runProcBatch(pj, po, done);

    SandboxStats stats;
    stats.spawns = ps.spawns;
    stats.deaths = ps.deaths;
    stats.watchdogKills = ps.watchdogKills;
    stats.requeues = ps.requeues;
    stats.abandoned = ps.abandoned;
    stats.degraded = ps.degraded;
    return stats;
}

} // namespace mxl
