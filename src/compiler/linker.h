/**
 * @file
 * Linker: flattens a scheduled AsmBuffer into an executable Program,
 * resolving labels to absolute instruction indices.
 */

#ifndef MXLISP_COMPILER_LINKER_H_
#define MXLISP_COMPILER_LINKER_H_

#include "compiler/asm_buffer.h"
#include "isa/instruction.h"

namespace mxl {

/**
 * Link @p buf; throws on undefined labels. With @p requireAnnotations,
 * also throws if any emitted instruction carries no explicit Purpose
 * annotation (Annotation::stamped) — the completeness guarantee the
 * static analyzer (src/analysis/) relies on for idiom recognition. The
 * compiler links with it on; hand-built test buffers default to off.
 */
Program link(const AsmBuffer &buf, bool requireAnnotations = false);

} // namespace mxl

#endif // MXLISP_COMPILER_LINKER_H_
