/**
 * @file
 * The MX instruction representation and the executable Program container.
 *
 * Instructions are kept in decoded form (this is an instruction-level
 * simulator; no binary encoding is defined). Control transfers carry a
 * resolved absolute instruction index in `target` once a program has
 * been linked; before linking they refer to labels by id.
 */

#ifndef MXLISP_ISA_INSTRUCTION_H_
#define MXLISP_ISA_INSTRUCTION_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "isa/annotation.h"
#include "isa/opcode.h"

namespace mxl {

using Reg = uint8_t;

/** Well-known registers of the MX-Lisp ABI. */
namespace abi {
inline constexpr Reg zero = 0;    ///< always 0
inline constexpr Reg ret = 1;     ///< function result
inline constexpr Reg arg0 = 2;    ///< first argument (args in r2..r9)
inline constexpr Reg argLast = 9;
inline constexpr Reg tmp0 = 10;   ///< expression temporaries r10..r19
inline constexpr Reg tmpLast = 19;
inline constexpr Reg trapRet = 20;  ///< return byte address after a trap
inline constexpr Reg trapA = 21;    ///< trapping instruction operand 1
inline constexpr Reg trapB = 22;    ///< trapping instruction operand 2
inline constexpr Reg scratch = 23;  ///< assembler/stub scratch
inline constexpr Reg treg = 24;     ///< the symbol t
inline constexpr Reg nilreg = 25;   ///< the symbol nil
inline constexpr Reg maskreg = 26;  ///< data-part mask (§3.2: one cycle)
inline constexpr Reg hl = 27;       ///< heap limit
inline constexpr Reg hp = 28;       ///< heap allocation pointer
inline constexpr Reg sp = 29;       ///< stack pointer (grows down)
inline constexpr Reg stkbase = 30;  ///< stack scan base (top of stack)
inline constexpr Reg link = 31;     ///< return address from jal/jalr
} // namespace abi

/** Branch-squashing mode (MIPS-X squashed delayed branches, §6.2.1). */
enum class Annul : uint8_t
{
    Never,       ///< plain delayed branch: slots always execute
    OnTaken,     ///< slots annulled when the branch is taken
    OnNotTaken,  ///< slots annulled when the branch falls through
};

/** One decoded MX instruction. */
struct Instruction
{
    Opcode op = Opcode::Noop;
    Reg rd = 0;
    Reg rs = 0;
    Reg rt = 0;
    int64_t imm = 0;    ///< immediate / memory offset / sys code
    uint32_t timm = 0;  ///< tag immediate for Ldt/Stt/Btag/Bntag
    int32_t label = -1; ///< pre-link label id for control transfers
    int32_t target = -1; ///< post-link absolute instruction index
    Annul annul = Annul::Never;
    /**
     * Compiler hint: this conditional branch almost always falls
     * through (error checks). The delay-slot scheduler then prefers
     * filling the slots from the fall-through path with OnTaken
     * squashing (§6.2.1: the protected operation runs concurrently
     * with its tag check).
     */
    bool hintFall = false;
    Annotation ann;

    /** Registers this instruction reads (for the scheduler). */
    void readRegs(Reg out[3], int &n) const;

    /** Register this instruction writes, or -1. */
    int writeReg() const;
};

/** A linked, executable MX program. */
struct Program
{
    std::vector<Instruction> code;
    /** Entry points and runtime stubs by name -> instruction index. */
    std::unordered_map<std::string, int> symbols;
    /** Optional label names by id (diagnostics). */
    std::vector<std::string> labelNames;

    int
    symbol(const std::string &name) const
    {
        auto it = symbols.find(name);
        return it == symbols.end() ? -1 : it->second;
    }
};

/**
 * The label table in address order: (instruction index, name) pairs
 * sorted ascending by index (name breaks ties; the first name at an
 * index wins, aliases are dropped). This is the symbolizer's view of a
 * program — consecutive entries bound each function's PC range
 * (obs/profiler.h) — and is also handy for diagnostics.
 */
std::vector<std::pair<int, std::string>>
sortedSymbols(const Program &prog);

} // namespace mxl

#endif // MXLISP_ISA_INSTRUCTION_H_
