#include "faults/fault_injector.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "support/format.h"
#include "support/panic.h"

namespace mxl {

namespace {

/**
 * The CallArgType injector corrupts an argument at the N-th executed
 * call, with N drawn from [0, kCallWindow). A small window keeps the
 * fault early enough that most trials actually reach it (trials where
 * the program performs fewer calls are classified Masked — the fault
 * never fired, which is itself a data point).
 */
constexpr uint64_t kCallWindow = 16;

/** Word indices of the static data area of @p unit's layout. */
void
staticDataRange(const CompiledUnit &unit, uint32_t *lo, uint32_t *hi)
{
    *lo = unit.layout.staticDataBase / 4;
    *hi = unit.layout.staticLimit / 4;
}

/**
 * Candidate words for TagCorrupt: static-area words carrying a
 * pair-typed pointer back into the static area — the cells of quoted
 * list structure. Corrupting one models exactly the fault tag checking
 * exists to catch: a list cell whose type field no longer matches its
 * contents.
 */
std::vector<uint32_t>
pairPointerWords(const Memory &image, const CompiledUnit &unit)
{
    const TagScheme &s = *unit.scheme;
    uint32_t lo, hi;
    staticDataRange(unit, &lo, &hi);
    std::vector<uint32_t> out;
    for (uint32_t i = lo; i < hi && i < image.size() / 4; ++i) {
        uint32_t w = image.word(i);
        if (w == 0 || s.primaryTag(w) != s.pointerTag(TypeId::Pair))
            continue;
        uint32_t a = s.detagAddr(w);
        if (a >= unit.layout.staticBase && a < unit.layout.staticLimit)
            out.push_back(i);
    }
    return out;
}

/** All nonzero static-data words (BitFlip targets, TagCorrupt fallback). */
std::vector<uint32_t>
nonzeroWords(const Memory &image, const CompiledUnit &unit)
{
    uint32_t lo, hi;
    staticDataRange(unit, &lo, &hi);
    std::vector<uint32_t> out;
    for (uint32_t i = lo; i < hi && i < image.size() / 4; ++i)
        if (image.word(i) != 0)
            out.push_back(i);
    return out;
}

void
injectTagCorrupt(Memory &image, const CompiledUnit &unit, uint64_t seed)
{
    FaultRng rng(seed);
    const TagScheme &s = *unit.scheme;
    std::vector<uint32_t> sites = pairPointerWords(image, unit);
    if (sites.empty())
        sites = nonzeroWords(image, unit);
    if (sites.empty())
        return; // nothing to corrupt; the trial will classify as Masked
    uint32_t idx = sites[rng.below(sites.size())];
    // XOR a nonzero delta into the tag field: the word keeps its data
    // part (address) but claims a different type.
    uint32_t tagMask = (1u << s.tagBits()) - 1u;
    uint32_t delta = 1u + static_cast<uint32_t>(rng.below(tagMask));
    image.word(idx) ^= delta << s.tagShift();
}

void
injectBitFlip(Memory &image, const CompiledUnit &unit, uint64_t seed)
{
    FaultRng rng(seed);
    std::vector<uint32_t> sites = nonzeroWords(image, unit);
    if (sites.empty())
        return;
    uint32_t idx = sites[rng.below(sites.size())];
    image.word(idx) ^= 1u << rng.below(32);
}

/**
 * The live heap of a paused run, as word indices into the snapshot's
 * memory: [from-space base, heap allocation pointer). Everything in
 * this range was allocated by the program itself since startup (or
 * survived its last collection).
 */
void
liveHeapRange(const MachineSnapshot &snap, const CompiledUnit &unit,
              uint32_t *lo, uint32_t *hi)
{
    uint32_t fromLo =
        snap.memory[unit.layout.cellAddr(Cell::FromLo) / 4];
    uint32_t hp = snap.regs[abi::hp];
    uint32_t words = static_cast<uint32_t>(snap.memory.size());
    *lo = std::min(fromLo / 4, words);
    *hi = std::min(hp / 4, words);
    if (*hi < *lo)
        *hi = *lo;
}

/**
 * Candidate words for HeapTagCorrupt: live-heap words carrying a
 * pair-typed pointer back into the live heap — the cons cells of
 * structure the program built at run time.
 */
std::vector<uint32_t>
heapPairPointerWords(const MachineSnapshot &snap, const CompiledUnit &unit)
{
    const TagScheme &s = *unit.scheme;
    uint32_t lo, hi;
    liveHeapRange(snap, unit, &lo, &hi);
    std::vector<uint32_t> out;
    for (uint32_t i = lo; i < hi; ++i) {
        uint32_t w = snap.memory[i];
        if (w == 0 || s.primaryTag(w) != s.pointerTag(TypeId::Pair))
            continue;
        uint32_t a = s.detagAddr(w);
        if (a / 4 >= lo && a / 4 < hi)
            out.push_back(i);
    }
    return out;
}

/** All nonzero live-heap words (HeapBitFlip targets, fallback sites). */
std::vector<uint32_t>
heapNonzeroWords(const MachineSnapshot &snap, const CompiledUnit &unit)
{
    uint32_t lo, hi;
    liveHeapRange(snap, unit, &lo, &hi);
    std::vector<uint32_t> out;
    for (uint32_t i = lo; i < hi; ++i)
        if (snap.memory[i] != 0)
            out.push_back(i);
    return out;
}

void
injectHeapTagCorrupt(MachineSnapshot &snap, const CompiledUnit &unit,
                     uint64_t seed)
{
    FaultRng rng(seed);
    const TagScheme &s = *unit.scheme;
    std::vector<uint32_t> sites = heapPairPointerWords(snap, unit);
    if (sites.empty())
        sites = heapNonzeroWords(snap, unit);
    if (sites.empty())
        return; // empty heap at the pause point: trial classifies Masked
    uint32_t idx = sites[rng.below(sites.size())];
    uint32_t tagMask = (1u << s.tagBits()) - 1u;
    uint32_t delta = 1u + static_cast<uint32_t>(rng.below(tagMask));
    snap.memory[idx] ^= delta << s.tagShift();
}

void
injectHeapBitFlip(MachineSnapshot &snap, const CompiledUnit &unit,
                  uint64_t seed)
{
    FaultRng rng(seed);
    std::vector<uint32_t> sites = heapNonzeroWords(snap, unit);
    if (sites.empty())
        return;
    uint32_t idx = sites[rng.below(sites.size())];
    snap.memory[idx] ^= 1u << rng.below(32);
}

/**
 * The live stack of a paused run, as word indices into the snapshot's
 * memory: [sp, stackTop). The stack grows down from stackTop and sp is
 * a raw byte address, so every word in this range is a live slot —
 * saved registers, spilled values, return addresses.
 */
void
liveStackRange(const MachineSnapshot &snap, const CompiledUnit &unit,
               uint32_t *lo, uint32_t *hi)
{
    uint32_t sp = snap.regs[abi::sp];
    uint32_t words = static_cast<uint32_t>(snap.memory.size());
    *lo = std::min(sp / 4, words);
    *hi = std::min(unit.layout.stackTop / 4, words);
    if (*hi < *lo)
        *hi = *lo;
}

/**
 * Candidate slots for StackTagCorrupt: stack words carrying a
 * pair-typed pointer into the heap or static area — saved list values.
 * Fallback: any nonzero slot (return addresses, fixnums), where a tag
 * corruption turns a datum into something pointer-shaped.
 */
std::vector<uint32_t>
stackPairPointerWords(const MachineSnapshot &snap, const CompiledUnit &unit)
{
    const TagScheme &s = *unit.scheme;
    uint32_t lo, hi;
    liveStackRange(snap, unit, &lo, &hi);
    std::vector<uint32_t> out;
    for (uint32_t i = lo; i < hi; ++i) {
        uint32_t w = snap.memory[i];
        if (w == 0 || s.primaryTag(w) != s.pointerTag(TypeId::Pair))
            continue;
        uint32_t a = s.detagAddr(w);
        if (a >= unit.layout.staticBase && a < unit.layout.stackTop)
            out.push_back(i);
    }
    return out;
}

/** All nonzero live stack slots (StackBitFlip targets, fallback sites). */
std::vector<uint32_t>
stackNonzeroWords(const MachineSnapshot &snap, const CompiledUnit &unit)
{
    uint32_t lo, hi;
    liveStackRange(snap, unit, &lo, &hi);
    std::vector<uint32_t> out;
    for (uint32_t i = lo; i < hi; ++i)
        if (snap.memory[i] != 0)
            out.push_back(i);
    return out;
}

void
injectStackTagCorrupt(MachineSnapshot &snap, const CompiledUnit &unit,
                      uint64_t seed)
{
    FaultRng rng(seed);
    const TagScheme &s = *unit.scheme;
    std::vector<uint32_t> sites = stackPairPointerWords(snap, unit);
    if (sites.empty())
        sites = stackNonzeroWords(snap, unit);
    if (sites.empty())
        return; // empty stack at the pause point: trial classifies Masked
    uint32_t idx = sites[rng.below(sites.size())];
    uint32_t tagMask = (1u << s.tagBits()) - 1u;
    uint32_t delta = 1u + static_cast<uint32_t>(rng.below(tagMask));
    snap.memory[idx] ^= delta << s.tagShift();
}

void
injectStackBitFlip(MachineSnapshot &snap, const CompiledUnit &unit,
                   uint64_t seed)
{
    FaultRng rng(seed);
    std::vector<uint32_t> sites = stackNonzeroWords(snap, unit);
    if (sites.empty())
        return;
    uint32_t idx = sites[rng.below(sites.size())];
    snap.memory[idx] ^= 1u << rng.below(32);
}

void
installCallArgFault(Machine &m, const CompiledUnit &unit, uint64_t seed)
{
    FaultRng rng(seed);
    uint64_t targetCall = rng.below(kCallWindow);
    Reg argReg = static_cast<Reg>(abi::arg0 + rng.below(2));
    const TagScheme *s = unit.scheme.get();

    // Precompute both replacement words: an ill-typed value is one whose
    // type differs from what the register held when the call fired.
    uint32_t align = s->alignment(TypeId::Pair);
    uint32_t pairAddr = (unit.layout.heapABase + align - 1) & ~(align - 1);
    uint32_t pairWord = s->encodePointer(TypeId::Pair, pairAddr);
    uint32_t fixWord =
        s->encodeFixnum(static_cast<int64_t>(1 + rng.below(1000)));

    auto calls = std::make_shared<uint64_t>(0);
    Machine *mp = &m;
    m.traceHook = [calls, targetCall, argReg, s, pairWord, fixWord,
                   mp](int, const Instruction &inst) {
        if (inst.op != Opcode::Jal && inst.op != Opcode::Jalr)
            return;
        if ((*calls)++ != targetCall)
            return;
        uint32_t cur = mp->reg(argReg);
        mp->setReg(argReg, s->wordIsFixnum(cur) ? pairWord : fixWord);
    };
}

} // namespace

const char *
faultClassName(FaultClass cls)
{
    switch (cls) {
      case FaultClass::TagCorrupt:
        return "tag-corrupt";
      case FaultClass::BitFlip:
        return "bit-flip";
      case FaultClass::CallArgType:
        return "call-arg-type";
      case FaultClass::HeapTagCorrupt:
        return "heap-tag-corrupt";
      case FaultClass::HeapBitFlip:
        return "heap-bit-flip";
      case FaultClass::StackTagCorrupt:
        return "stack-tag-corrupt";
      case FaultClass::StackBitFlip:
        return "stack-bit-flip";
    }
    return "?";
}

bool
faultClassIsHeap(FaultClass cls)
{
    return cls == FaultClass::HeapTagCorrupt ||
           cls == FaultClass::HeapBitFlip;
}

bool
faultClassIsStack(FaultClass cls)
{
    return cls == FaultClass::StackTagCorrupt ||
           cls == FaultClass::StackBitFlip;
}

bool
faultClassNeedsPause(FaultClass cls)
{
    return faultClassIsHeap(cls) || faultClassIsStack(cls);
}

std::string
FaultSpec::describe() const
{
    if (faultClassNeedsPause(cls))
        return strcat(faultClassName(cls), "(seed=", seed,
                      ",pause=", pauseCycle, ")");
    return strcat(faultClassName(cls), "(seed=", seed, ")");
}

void
armFault(RunRequest &req, const FaultSpec &spec)
{
    switch (spec.cls) {
      case FaultClass::TagCorrupt:
        req.hooks.imageMutator = [seed = spec.seed](Memory &image,
                                              const CompiledUnit &unit) {
            injectTagCorrupt(image, unit, seed);
        };
        break;
      case FaultClass::BitFlip:
        req.hooks.imageMutator = [seed = spec.seed](Memory &image,
                                              const CompiledUnit &unit) {
            injectBitFlip(image, unit, seed);
        };
        break;
      case FaultClass::CallArgType:
        req.hooks.machineSetup = [seed = spec.seed](Machine &m,
                                              const CompiledUnit &unit) {
            installCallArgFault(m, unit, seed);
        };
        break;
      case FaultClass::HeapTagCorrupt:
        MXL_ASSERT(spec.pauseCycle > 0,
                   "heap-resident faults need FaultSpec::pauseCycle");
        req.hooks.pauseAtCycle = spec.pauseCycle;
        req.hooks.snapshotHook = [seed = spec.seed](MachineSnapshot &snap,
                                              const CompiledUnit &unit) {
            injectHeapTagCorrupt(snap, unit, seed);
        };
        break;
      case FaultClass::HeapBitFlip:
        MXL_ASSERT(spec.pauseCycle > 0,
                   "heap-resident faults need FaultSpec::pauseCycle");
        req.hooks.pauseAtCycle = spec.pauseCycle;
        req.hooks.snapshotHook = [seed = spec.seed](MachineSnapshot &snap,
                                              const CompiledUnit &unit) {
            injectHeapBitFlip(snap, unit, seed);
        };
        break;
      case FaultClass::StackTagCorrupt:
        MXL_ASSERT(spec.pauseCycle > 0,
                   "stack-resident faults need FaultSpec::pauseCycle");
        req.hooks.pauseAtCycle = spec.pauseCycle;
        req.hooks.snapshotHook = [seed = spec.seed](MachineSnapshot &snap,
                                              const CompiledUnit &unit) {
            injectStackTagCorrupt(snap, unit, seed);
        };
        break;
      case FaultClass::StackBitFlip:
        MXL_ASSERT(spec.pauseCycle > 0,
                   "stack-resident faults need FaultSpec::pauseCycle");
        req.hooks.pauseAtCycle = spec.pauseCycle;
        req.hooks.snapshotHook = [seed = spec.seed](MachineSnapshot &snap,
                                              const CompiledUnit &unit) {
            injectStackBitFlip(snap, unit, seed);
        };
        break;
    }
}

} // namespace mxl
