/**
 * google-benchmark microbenchmarks of the substrate itself: simulator
 * dispatch throughput, compilation speed, and GC cost. These are about
 * mxlisp's own performance, not the paper's numbers.
 */

#include <benchmark/benchmark.h>

#include "core/experiment.h"
#include "core/run.h"
#include "isa/assembler.h"

using namespace mxl;

namespace {

void
BM_SimulatorDispatch(benchmark::State &state)
{
    // A tight counted loop: ~6 cycles per iteration.
    Program p = assemble(R"(
        main:
            li r2, 0
            li r3, 100000
        loop:
            addi r2, r2, 1
            blt r2, r3, loop
            noop
            noop
            sys halt, r2
    )");
    for (auto _ : state) {
        Machine m(p, Memory(4096), {}, nullptr);
        m.run(p.symbol("main"));
        benchmark::DoNotOptimize(m.exitValue());
        state.counters["sim_cycles/s"] = benchmark::Counter(
            static_cast<double>(m.stats().total),
            benchmark::Counter::kIsIterationInvariantRate);
    }
}
BENCHMARK(BM_SimulatorDispatch)->Unit(benchmark::kMillisecond);

void
BM_CompileUnit(benchmark::State &state)
{
    const std::string src =
        "(de fib (n) (if (lessp n 2) n (+ (fib (- n 1)) (fib (- n 2)))))"
        "(print (fib 10))";
    for (auto _ : state) {
        CompiledUnit u = compileUnit(src, baselineOptions(Checking::Full));
        benchmark::DoNotOptimize(u.prog.code.size());
    }
}
BENCHMARK(BM_CompileUnit)->Unit(benchmark::kMillisecond);

void
BM_RunFib(benchmark::State &state)
{
    const std::string src =
        "(de fib (n) (if (lessp n 2) n (+ (fib (- n 1)) (fib (- n 2)))))"
        "(print (fib 15))";
    CompiledUnit u = compileUnit(
        src, baselineOptions(static_cast<Checking>(state.range(0))));
    for (auto _ : state) {
        auto r = runUnit(u);
        benchmark::DoNotOptimize(r.stats.total);
    }
}
BENCHMARK(BM_RunFib)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void
BM_GarbageCollection(benchmark::State &state)
{
    const std::string src = R"(
        (de iota (n) (if (zerop n) nil (cons n (iota (sub1 n)))))
        (let ((i 0)) (while (lessp i 200) (iota 40) (setq i (add1 i))))
        (print 'done)
    )";
    CompilerOptions opts = baselineOptions(Checking::Off);
    opts.heapBytes = static_cast<uint32_t>(state.range(0));
    CompiledUnit u = compileUnit(src, opts);
    for (auto _ : state) {
        auto r = runUnit(u);
        state.counters["collections"] =
            static_cast<double>(r.gcCount);
        benchmark::DoNotOptimize(r.stats.total);
    }
}
BENCHMARK(BM_GarbageCollection)
    ->Arg(8 << 10)
    ->Arg(64 << 10)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
