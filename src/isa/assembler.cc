#include "isa/assembler.h"

#include <cctype>
#include <map>
#include <optional>
#include <sstream>

#include "support/format.h"
#include "support/panic.h"

namespace mxl {

namespace {

/** Tokenizer for one assembly line: splits on spaces, commas, parens. */
std::vector<std::string>
tokenize(const std::string &line)
{
    std::vector<std::string> toks;
    std::string cur;
    for (char c : line) {
        if (c == ';')
            break;
        if (std::isspace(static_cast<unsigned char>(c)) || c == ',' ||
            c == '(' || c == ')') {
            if (!cur.empty()) {
                toks.push_back(cur);
                cur.clear();
            }
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        toks.push_back(cur);
    return toks;
}

Reg
parseReg(const std::string &t, int lineNo)
{
    if (t.size() < 2 || (t[0] != 'r' && t[0] != 'R'))
        fatal("asm line ", lineNo, ": expected register, got '", t, "'");
    int n = std::stoi(t.substr(1));
    if (n < 0 || n > 31)
        fatal("asm line ", lineNo, ": bad register '", t, "'");
    return static_cast<Reg>(n);
}

int64_t
parseImm(const std::string &t, int lineNo)
{
    try {
        return std::stoll(t, nullptr, 0);
    } catch (...) {
        fatal("asm line ", lineNo, ": expected immediate, got '", t, "'");
    }
}

struct OpSpec
{
    Opcode op;
    Annul annul = Annul::Never;
};

std::optional<OpSpec>
lookupOp(std::string mn)
{
    Annul annul = Annul::Never;
    auto dot = mn.find('.');
    if (dot != std::string::npos) {
        std::string suffix = mn.substr(dot + 1);
        mn = mn.substr(0, dot);
        if (suffix == "t")
            annul = Annul::OnTaken;
        else if (suffix == "nt")
            annul = Annul::OnNotTaken;
        else
            return std::nullopt;
    }
    static const std::map<std::string, Opcode> ops = {
        {"add", Opcode::Add}, {"sub", Opcode::Sub}, {"and", Opcode::And},
        {"or", Opcode::Or}, {"xor", Opcode::Xor}, {"sll", Opcode::Sll},
        {"srl", Opcode::Srl}, {"sra", Opcode::Sra}, {"mul", Opcode::Mul},
        {"div", Opcode::Div}, {"rem", Opcode::Rem},
        {"addi", Opcode::Addi}, {"andi", Opcode::Andi},
        {"ori", Opcode::Ori}, {"xori", Opcode::Xori},
        {"slli", Opcode::Slli}, {"srli", Opcode::Srli},
        {"srai", Opcode::Srai},
        {"li", Opcode::Li}, {"mov", Opcode::Mov},
        {"ld", Opcode::Ld}, {"st", Opcode::St},
        {"ldt", Opcode::Ldt}, {"stt", Opcode::Stt},
        {"beq", Opcode::Beq}, {"bne", Opcode::Bne},
        {"blt", Opcode::Blt}, {"bge", Opcode::Bge},
        {"ble", Opcode::Ble}, {"bgt", Opcode::Bgt},
        {"beqi", Opcode::Beqi}, {"bnei", Opcode::Bnei},
        {"btag", Opcode::Btag}, {"bntag", Opcode::Bntag},
        {"j", Opcode::J}, {"jal", Opcode::Jal}, {"jr", Opcode::Jr},
        {"jalr", Opcode::Jalr},
        {"addt", Opcode::Addt}, {"subt", Opcode::Subt},
        {"noop", Opcode::Noop}, {"sys", Opcode::Sys},
    };
    auto it = ops.find(mn);
    if (it == ops.end())
        return std::nullopt;
    return OpSpec{it->second, annul};
}

int
sysCodeOf(const std::string &t, int lineNo)
{
    if (t == "halt")
        return static_cast<int>(SysCode::Halt);
    if (t == "putchar")
        return static_cast<int>(SysCode::PutChar);
    if (t == "putfixraw")
        return static_cast<int>(SysCode::PutFixRaw);
    if (t == "putfix")
        return static_cast<int>(SysCode::PutFix);
    if (t == "error")
        return static_cast<int>(SysCode::Error);
    return static_cast<int>(parseImm(t, lineNo));
}

} // namespace

Program
assemble(const std::string &text)
{
    Program prog;
    std::map<std::string, int> labelIds;   // name -> label id
    std::vector<int> labelTarget;          // label id -> instr index (-1)

    auto labelId = [&](const std::string &name) {
        auto it = labelIds.find(name);
        if (it != labelIds.end())
            return it->second;
        int id = static_cast<int>(labelTarget.size());
        labelIds.emplace(name, id);
        labelTarget.push_back(-1);
        prog.labelNames.push_back(name);
        return id;
    };

    std::istringstream in(text);
    std::string line;
    int lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        auto toks = tokenize(line);
        if (toks.empty())
            continue;

        // Labels (possibly several) at the start of the line.
        while (!toks.empty() && toks[0].back() == ':') {
            std::string name = toks[0].substr(0, toks[0].size() - 1);
            int id = labelId(name);
            if (labelTarget[id] != -1)
                fatal("asm line ", lineNo, ": duplicate label '", name,
                      "'");
            labelTarget[id] = static_cast<int>(prog.code.size());
            prog.symbols[name] = static_cast<int>(prog.code.size());
            toks.erase(toks.begin());
        }
        if (toks.empty())
            continue;

        auto spec = lookupOp(toks[0]);
        if (!spec)
            fatal("asm line ", lineNo, ": unknown mnemonic '", toks[0],
                  "'");
        Instruction inst;
        inst.op = spec->op;
        inst.annul = spec->annul;
        auto arg = [&](size_t i) -> const std::string & {
            if (i >= toks.size())
                fatal("asm line ", lineNo, ": missing operand");
            return toks[i];
        };

        switch (inst.op) {
          case Opcode::Add: case Opcode::Sub: case Opcode::And:
          case Opcode::Or: case Opcode::Xor: case Opcode::Sll:
          case Opcode::Srl: case Opcode::Sra: case Opcode::Mul:
          case Opcode::Div: case Opcode::Rem:
          case Opcode::Addt: case Opcode::Subt:
            inst.rd = parseReg(arg(1), lineNo);
            inst.rs = parseReg(arg(2), lineNo);
            inst.rt = parseReg(arg(3), lineNo);
            break;
          case Opcode::Addi: case Opcode::Andi: case Opcode::Ori:
          case Opcode::Xori: case Opcode::Slli: case Opcode::Srli:
          case Opcode::Srai:
            inst.rd = parseReg(arg(1), lineNo);
            inst.rs = parseReg(arg(2), lineNo);
            inst.imm = parseImm(arg(3), lineNo);
            break;
          case Opcode::Li:
            inst.rd = parseReg(arg(1), lineNo);
            inst.imm = parseImm(arg(2), lineNo);
            break;
          case Opcode::Mov:
            inst.rd = parseReg(arg(1), lineNo);
            inst.rs = parseReg(arg(2), lineNo);
            break;
          case Opcode::Ld:
          case Opcode::Ldt:
            inst.rd = parseReg(arg(1), lineNo);
            inst.imm = parseImm(arg(2), lineNo);
            inst.rs = parseReg(arg(3), lineNo);
            if (inst.op == Opcode::Ldt)
                inst.timm = static_cast<uint32_t>(parseImm(arg(4), lineNo));
            break;
          case Opcode::St:
          case Opcode::Stt:
            inst.rt = parseReg(arg(1), lineNo);
            inst.imm = parseImm(arg(2), lineNo);
            inst.rs = parseReg(arg(3), lineNo);
            if (inst.op == Opcode::Stt)
                inst.timm = static_cast<uint32_t>(parseImm(arg(4), lineNo));
            break;
          case Opcode::Beq: case Opcode::Bne: case Opcode::Blt:
          case Opcode::Bge: case Opcode::Ble: case Opcode::Bgt:
            inst.rs = parseReg(arg(1), lineNo);
            inst.rt = parseReg(arg(2), lineNo);
            inst.label = labelId(arg(3));
            break;
          case Opcode::Beqi:
          case Opcode::Bnei:
            inst.rs = parseReg(arg(1), lineNo);
            inst.imm = parseImm(arg(2), lineNo);
            inst.label = labelId(arg(3));
            break;
          case Opcode::Btag:
          case Opcode::Bntag:
            inst.rs = parseReg(arg(1), lineNo);
            inst.timm = static_cast<uint32_t>(parseImm(arg(2), lineNo));
            inst.label = labelId(arg(3));
            break;
          case Opcode::J:
            inst.label = labelId(arg(1));
            break;
          case Opcode::Jal:
            inst.rd = parseReg(arg(1), lineNo);
            inst.label = labelId(arg(2));
            break;
          case Opcode::Jr:
            inst.rs = parseReg(arg(1), lineNo);
            break;
          case Opcode::Jalr:
            inst.rd = parseReg(arg(1), lineNo);
            inst.rs = parseReg(arg(2), lineNo);
            break;
          case Opcode::Sys:
            inst.imm = sysCodeOf(arg(1), lineNo);
            if (toks.size() > 2)
                inst.rs = parseReg(arg(2), lineNo);
            break;
          case Opcode::Noop:
            break;
        }
        prog.code.push_back(inst);
    }

    // Resolve labels.
    for (auto &inst : prog.code) {
        if (inst.label >= 0) {
            int t = labelTarget[inst.label];
            if (t < 0)
                fatal("asm: undefined label '",
                      prog.labelNames[inst.label], "'");
            inst.target = t;
        }
    }
    return prog;
}

namespace {

/** Render one instruction with the branch target already formatted. */
std::string
renderInst(const Instruction &inst, const std::string &target)
{
    std::string annulSuffix;
    if (inst.annul == Annul::OnTaken)
        annulSuffix = ".t";
    else if (inst.annul == Annul::OnNotTaken)
        annulSuffix = ".nt";

    auto lbl = [&]() -> const std::string & { return target; };
    auto r = [](Reg x) { return strcat("r", int{x}); };

    std::string name = opcodeName(inst.op) + annulSuffix;
    switch (inst.op) {
      case Opcode::Add: case Opcode::Sub: case Opcode::And:
      case Opcode::Or: case Opcode::Xor: case Opcode::Sll:
      case Opcode::Srl: case Opcode::Sra: case Opcode::Mul:
      case Opcode::Div: case Opcode::Rem:
      case Opcode::Addt: case Opcode::Subt:
        return strcat(name, " ", r(inst.rd), ", ", r(inst.rs), ", ",
                      r(inst.rt));
      case Opcode::Addi: case Opcode::Andi: case Opcode::Ori:
      case Opcode::Xori: case Opcode::Slli: case Opcode::Srli:
      case Opcode::Srai:
        return strcat(name, " ", r(inst.rd), ", ", r(inst.rs), ", ",
                      inst.imm);
      case Opcode::Li:
        return strcat(name, " ", r(inst.rd), ", ", inst.imm);
      case Opcode::Mov:
        return strcat(name, " ", r(inst.rd), ", ", r(inst.rs));
      case Opcode::Ld:
        return strcat(name, " ", r(inst.rd), ", ", inst.imm, "(",
                      r(inst.rs), ")");
      case Opcode::Ldt:
        return strcat(name, " ", r(inst.rd), ", ", inst.imm, "(",
                      r(inst.rs), "), ", inst.timm);
      case Opcode::St:
        return strcat(name, " ", r(inst.rt), ", ", inst.imm, "(",
                      r(inst.rs), ")");
      case Opcode::Stt:
        return strcat(name, " ", r(inst.rt), ", ", inst.imm, "(",
                      r(inst.rs), "), ", inst.timm);
      case Opcode::Beq: case Opcode::Bne: case Opcode::Blt:
      case Opcode::Bge: case Opcode::Ble: case Opcode::Bgt:
        return strcat(name, " ", r(inst.rs), ", ", r(inst.rt), ", ",
                      lbl());
      case Opcode::Beqi: case Opcode::Bnei:
        return strcat(name, " ", r(inst.rs), ", ", inst.imm, ", ",
                      lbl());
      case Opcode::Btag: case Opcode::Bntag:
        return strcat(name, " ", r(inst.rs), ", ", inst.timm, ", ",
                      lbl());
      case Opcode::J:
        return strcat(name, " ", lbl());
      case Opcode::Jal:
        return strcat(name, " ", r(inst.rd), ", ", lbl());
      case Opcode::Jr:
        return strcat(name, " ", r(inst.rs));
      case Opcode::Jalr:
        return strcat(name, " ", r(inst.rd), ", ", r(inst.rs));
      case Opcode::Sys:
        return strcat(name, " ", inst.imm, ", ", r(inst.rs));
      case Opcode::Noop:
        return name;
    }
    return "?";
}

} // namespace

std::string
disassemble(const Instruction &inst, const Program *prog)
{
    std::string target;
    if (prog && inst.label >= 0 &&
        inst.label < static_cast<int>(prog->labelNames.size()) &&
        !prog->labelNames[inst.label].empty()) {
        target = prog->labelNames[inst.label];
    } else if (prog && inst.target >= 0) {
        // Compiled code uses anonymous labels; a program symbol at the
        // target address names the destination just as well.
        for (const auto &[name, idx] : prog->symbols) {
            if (idx == inst.target &&
                (target.empty() || name < target))
                target = name;
        }
    }
    if (target.empty())
        target = strcat("@", inst.target);
    return renderInst(inst, target);
}

std::string
disassemble(const Program &prog)
{
    // Invert the symbol table for labeling.
    std::map<int, std::string> at;
    for (const auto &[name, idx] : prog.symbols)
        at[idx] = name;

    std::ostringstream os;
    for (size_t i = 0; i < prog.code.size(); ++i) {
        auto it = at.find(static_cast<int>(i));
        if (it != at.end())
            os << it->second << ":\n";
        os << padLeft(strcat(i), 6) << "    "
           << disassemble(prog.code[i], &prog) << '\n';
    }
    return os.str();
}

std::string
disassembleAsm(const Program &prog)
{
    // Every branch target needs a label line. Prefer the program's own
    // symbol names (sortedSymbols dedups deterministically), generate
    // "L<index>" for anonymous targets.
    std::map<int, std::string> labelAt;
    for (const auto &[idx, name] : sortedSymbols(prog))
        labelAt.emplace(idx, name);
    for (const auto &inst : prog.code) {
        if (isControl(inst.op) && inst.target >= 0 &&
            inst.target <= static_cast<int>(prog.code.size()))
            labelAt.emplace(inst.target, strcat("L", inst.target));
    }

    std::ostringstream os;
    for (size_t i = 0; i < prog.code.size(); ++i) {
        auto it = labelAt.find(static_cast<int>(i));
        if (it != labelAt.end())
            os << it->second << ":\n";
        const Instruction &inst = prog.code[i];
        std::string target;
        if (isControl(inst.op) && inst.target >= 0) {
            auto lt = labelAt.find(inst.target);
            if (lt != labelAt.end())
                target = lt->second;
        }
        if (target.empty())
            target = strcat("@", inst.target);
        os << "    " << renderInst(inst, target) << '\n';
    }
    // A branch may target one past the last instruction (a fall-off
    // label); place it so the text still assembles.
    auto it = labelAt.find(static_cast<int>(prog.code.size()));
    if (it != labelAt.end())
        os << it->second << ":\n    noop\n";
    return os.str();
}

} // namespace mxl
