/**
 * @file
 * The MX instruction set: a MIPS-X-like RISC ISA.
 *
 * MX preserves the properties of MIPS-X that the paper's measurements
 * depend on: one cycle per (simple) instruction, two-delay-slot branches
 * with optional squashing, a one-cycle load delay, and explicit tag
 * manipulation via ordinary ALU operations. It also carries the optional
 * tag-support instructions the paper evaluates: branch-on-tag-field
 * (§6.1), checked loads/stores (§6.2.1), and trapping integer arithmetic
 * (§6.2.2) — each only legal when the corresponding hardware feature is
 * enabled on the machine.
 */

#ifndef MXLISP_ISA_OPCODE_H_
#define MXLISP_ISA_OPCODE_H_

#include <cstdint>
#include <string>

namespace mxl {

enum class Opcode : uint8_t
{
    // ALU, register-register
    Add, Sub, And, Or, Xor, Sll, Srl, Sra, Mul, Div, Rem,
    // ALU, register-immediate
    Addi, Andi, Ori, Xori, Slli, Srli, Srai,
    // Register moves / constants
    Li,       ///< rd <- 32-bit immediate
    Mov,      ///< rd <- rs
    // Memory
    Ld,       ///< rd <- mem[rs + imm]
    St,       ///< mem[rs + imm] <- rt
    Ldt,      ///< checked load: trap unless tag(rs) == timm (hardware)
    Stt,      ///< checked store (hardware)
    // Control transfer (two delay slots each)
    Beq, Bne, Blt, Bge, Ble, Bgt,   ///< compare rs, rt
    Beqi, Bnei,                     ///< compare rs with a small immediate
    Btag,     ///< branch if tag-field(rs) == timm (hardware, §6.1)
    Bntag,    ///< branch if tag-field(rs) != timm (hardware, §6.1)
    J,        ///< jump to label
    Jal,      ///< rd <- return byte address; jump to label
    Jr,       ///< jump to byte address in rs
    Jalr,     ///< rd <- return byte address; jump to byte address in rs
    // Trapping tagged arithmetic (hardware, §6.2.2)
    Addt,     ///< rd <- rs + rt; trap unless both fixnums, no overflow
    Subt,
    // Misc
    Noop,
    Sys,      ///< system call; code in imm, argument in rs
};

/** Coarse opcode classes, used for the Figure 2 frequency counts. */
enum class OpClass : uint8_t
{
    Alu, AluImm, Move, Load, Store, Branch, Jump, Noop, Sys,
};

/** System-call codes (the machine implements these natively). */
enum class SysCode : int
{
    Halt = 0,       ///< stop execution; rs holds the result word
    PutChar = 1,    ///< append raw char code in rs to the output stream
    PutFixRaw = 2,  ///< append decimal of raw signed word in rs
    Error = 3,      ///< runtime error; rs holds an error code; stops
    PutFix = 4,     ///< append decimal of the fixnum in rs (scheme-decoded)
};

/** Printable mnemonic. */
std::string opcodeName(Opcode op);

/** Coarse class of an opcode. */
OpClass opClass(Opcode op);

/** Cycle cost (1 for everything except Mul/Div/Rem). */
int opCycles(Opcode op);

/** True for the conditional branches (incl. Btag/Bntag). */
bool isCondBranch(Opcode op);

/** True for any control transfer (branches and jumps). */
bool isControl(Opcode op);

} // namespace mxl

#endif // MXLISP_ISA_OPCODE_H_
