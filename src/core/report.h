/**
 * @file
 * Aggregation of run measurements into the paper's tables and figures.
 */

#ifndef MXLISP_CORE_REPORT_H_
#define MXLISP_CORE_REPORT_H_

#include <string>
#include <vector>

#include "core/engine.h"
#include "core/run.h"
#include "programs/programs.h"
#include "support/json.h"

namespace mxl {

/** One program measured with checking off and on (same base config). */
struct ProgramMeasurement
{
    std::string program;
    RunResult off;
    RunResult full;
};

/** Run @p prog both ways on top of @p base (its checking is ignored). */
ProgramMeasurement measureProgram(const BenchmarkProgram &prog,
                                  const CompilerOptions &base);

/** Measure all ten programs through @p eng (one parallel grid). */
std::vector<ProgramMeasurement>
measureAll(Engine &eng, const CompilerOptions &base);

/**
 * As above, also exposing the grid itself: @p reqsOut / @p reportsOut
 * (either may be null) receive the 20 cells — ten checking-off then
 * ten checking-full, request order — ready for gridJson(). With
 * @p collectProfile every cell carries its per-PC instruction profile
 * (RunResult::profile) for symbolized attribution (obs/profiler.h).
 */
std::vector<ProgramMeasurement>
measureAll(Engine &eng, const CompilerOptions &base,
           std::vector<RunRequest> *reqsOut,
           std::vector<RunReport> *reportsOut,
           bool collectProfile = false);

/** Measure all ten programs on the process-wide default engine. */
std::vector<ProgramMeasurement>
measureAll(const CompilerOptions &base);

/**
 * One RunRequest per benchmark program on top of @p base, with each
 * program's heap size and cycle guard applied and its name as label.
 */
std::vector<RunRequest> programGrid(const CompilerOptions &base);

/**
 * Fan programGrid(base) out on @p eng and unwrap; fatal() if any cell
 * failed to compile.
 */
std::vector<RunResult> runPrograms(Engine &eng,
                                   const CompilerOptions &base);

/** Unwrap reports into results; fatal() on any non-ok status
 *  (Timeout cells get a dedicated deadline diagnostic). */
std::vector<RunResult>
unwrapReports(const std::vector<RunReport> &reports);

// ---- Table 1: % increase when run-time checking is added -------------

struct Table1Row
{
    std::string program;
    double arith;   ///< checking cycles in the arith category
    double vector;  ///< ... vector category
    double list;    ///< ... list category
    double total;   ///< overall slowdown
};

Table1Row table1Row(const ProgramMeasurement &m);

// ---- Figure 1: time per tag operation ---------------------------------

/** Index order: insertion, removal, extraction, checking. */
inline constexpr int fig1Ops = 4;
extern const char *const fig1OpNames[fig1Ops];

struct Figure1Bars
{
    double withoutRtc[fig1Ops] = {};  ///< % of the unchecked run
    double addedByRtc[fig1Ops] = {};  ///< added component, % of checked run
    double withRtc[fig1Ops] = {};     ///< % of the checked run
    double totalWithout = 0;          ///< summary §3.5 (22%..32% band)
    double totalWith = 0;
};

Figure1Bars figure1Bars(const ProgramMeasurement &m);
Figure1Bars figure1Average(const std::vector<ProgramMeasurement> &ms);

// ---- Figure 2: instruction-frequency reduction -------------------------

/**
 * Reduction in dynamic event frequencies when tag removal is
 * eliminated, as a percentage of the baseline run's cycles (positive =
 * fewer). `total` is the overall cycle reduction (§5.1: ~5.7%).
 */
struct Figure2Data
{
    double andOps = 0;
    double moveOps = 0;   ///< negative: idempotent-load copies appear
    double noops = 0;     ///< negative: fewer slot fillers available
    double squashed = 0;
    double total = 0;
};

Figure2Data figure2Data(const RunResult &base, const RunResult &noMask);

// ---- Table 2: speedup per hardware configuration ------------------------

struct Table2Cell
{
    double total = 0;  ///< % cycles eliminated vs baseline
    double check = 0;  ///< component from checking-cycle reduction
    double mask = 0;   ///< component from tag-removal reduction
};

Table2Cell table2Cell(const RunResult &base, const RunResult &cfg);

/** Average of per-program speedups. */
Table2Cell table2Average(const std::vector<RunResult> &bases,
                         const std::vector<RunResult> &cfgs);

// ---- JSON export -------------------------------------------------------

/** All counters of one CycleStats, purpose/category split included. */
Json cycleStatsJson(const CycleStats &s);

/** The independent variables of a run (every CompilerOptions field). */
Json compilerOptionsJson(const CompilerOptions &o);

/**
 * One executed grid cell: label, options, outcome, CycleStats, wall
 * time, cache hit. @p req must be the request that produced @p rep.
 */
Json runReportJson(const RunRequest &req, const RunReport &rep);

/**
 * A whole (requests, reports) grid as a JSON array in request order —
 * the machine-readable counterpart of the bench harnesses' tables.
 */
Json gridJson(const std::vector<RunRequest> &reqs,
              const std::vector<RunReport> &reports);

} // namespace mxl

#endif // MXLISP_CORE_REPORT_H_
