#include "obs/metrics.h"

#include <bit>

#include "support/panic.h"

namespace mxl {

void
Histogram::observe(uint64_t v)
{
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    buckets_[std::bit_width(v)].fetch_add(1, std::memory_order_relaxed);
    uint64_t seen = max_.load(std::memory_order_relaxed);
    while (v > seen &&
           !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed))
        ;
}

double
Histogram::mean() const
{
    uint64_t n = count();
    return n ? static_cast<double>(sum()) / static_cast<double>(n) : 0.0;
}

Json
Histogram::toJson() const
{
    Json j = Json::object();
    j.set("count", count());
    j.set("sum", sum());
    j.set("max", max());
    j.set("mean", mean());
    Json b = Json::object();
    for (int i = 0; i < kBuckets; ++i) {
        uint64_t n = bucket(i);
        if (n == 0)
            continue;
        // Key each bucket by its lower bound: bit width i covers
        // [2^(i-1), 2^i); width 0 is the value 0.
        uint64_t lo = i == 0 ? 0 : uint64_t{1} << (i - 1);
        b.set(std::to_string(lo), n);
    }
    j.set("buckets", std::move(b));
    return j;
}

MetricsRegistry::Entry &
MetricsRegistry::resolve(const std::string &name, Kind kind)
{
    std::lock_guard<std::mutex> lk(mu_);
    auto it = metrics_.find(name);
    if (it == metrics_.end()) {
        Entry e;
        e.kind = kind;
        switch (kind) {
          case Kind::Counter:
            e.counter = std::make_unique<Counter>();
            break;
          case Kind::Gauge:
            e.gauge = std::make_unique<Gauge>();
            break;
          case Kind::Histogram:
            e.histogram = std::make_unique<Histogram>();
            break;
        }
        it = metrics_.emplace(name, std::move(e)).first;
    } else if (it->second.kind != kind) {
        panic("metric '", name, "' registered as a different kind");
    }
    return it->second;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    return *resolve(name, Kind::Counter).counter;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    return *resolve(name, Kind::Gauge).gauge;
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    return *resolve(name, Kind::Histogram).histogram;
}

Json
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lk(mu_);
    Json counters = Json::object();
    Json gauges = Json::object();
    Json histograms = Json::object();
    for (const auto &[name, e] : metrics_) {
        switch (e.kind) {
          case Kind::Counter:
            counters.set(name, e.counter->value());
            break;
          case Kind::Gauge:
            gauges.set(name, e.gauge->value());
            break;
          case Kind::Histogram:
            histograms.set(name, e.histogram->toJson());
            break;
        }
    }
    Json j = Json::object();
    j.set("counters", std::move(counters));
    j.set("gauges", std::move(gauges));
    j.set("histograms", std::move(histograms));
    return j;
}

} // namespace mxl
