/**
 * @file
 * Campaign statistics: confidence intervals, cycle percentiles, and
 * interval-aware coverage comparison.
 *
 * A detection-coverage number from a finite campaign is an estimate,
 * and gating a CI on raw point estimates turns sampling noise into
 * build failures. This module gives every matrix cell a Wilson score
 * interval (the binomial interval that stays honest at the extremes —
 * 0/N and N/N cells get intervals that actually contain the truth,
 * where the naive normal interval collapses to a point), summarizes
 * per-trial cycle counts as percentiles, and defines the regression
 * gate bench_diff --coverage applies: a cell regresses only when the
 * after-interval lies entirely below the before-interval — i.e. the
 * data is inconsistent with "coverage is unchanged" — or when trials
 * silently vanished into Skipped.
 *
 * Everything here is shared between the campaign bench (which writes
 * the statistics into BENCH_faults.json) and tools/bench_diff (which
 * reads two such files and gates), so the two sides can never disagree
 * about what an interval means.
 */

#ifndef MXLISP_FAULTS_STATS_H_
#define MXLISP_FAULTS_STATS_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "support/json.h"

namespace mxl {

/** A closed real interval [lo, hi]. */
struct Interval
{
    double lo = 0;
    double hi = 0;
};

/**
 * Wilson score interval for @p successes detections in @p n trials at
 * confidence z (1.96 = 95%). n == 0 returns [0, 1] — no data restricts
 * nothing.
 */
Interval wilsonInterval(int successes, int n, double z = 1.96);

/** Nearest-rank percentile summary of a sample of cycle counts. */
struct PercentileSummary
{
    uint64_t count = 0;
    uint64_t min = 0;
    uint64_t p50 = 0;
    uint64_t p90 = 0;
    uint64_t p99 = 0;
    uint64_t max = 0;
};

/** Exact nearest-rank percentiles (sorts a copy of @p sample). */
PercentileSummary percentileSummary(const std::vector<uint64_t> &sample);

/**
 * Power-of-two bucket histogram for cycle counts: value v lands in
 * bucket floor(log2(v)) + 1 (0 for v == 0). O(1) memory regardless of
 * campaign size — the streaming alternative to percentileSummary()
 * when keeping every sample is too much, at the cost of quantiles
 * quantized to bucket upper bounds.
 */
struct CycleHistogram
{
    std::array<uint64_t, 65> buckets{};
    uint64_t count = 0;

    void add(uint64_t v);

    /** Upper bound of the bucket holding the q-quantile (q in [0, 1]);
     *  0 when empty. */
    uint64_t quantileBound(double q) const;
};

/** One (config, class) cell's coverage statistics, as exported to and
 *  re-read from BENCH_faults.json. */
struct CoverageCell
{
    std::string config;
    std::string cls;
    int detected = 0;
    int total = 0;   ///< all trials, including skipped
    int skipped = 0;
    double coverage = 0; ///< detected / (total - skipped); 0 if no data
    Interval ci;         ///< Wilson 95% on the same ratio
};

/** Compute the derived fields (coverage, ci) from the counts. */
void finishCoverageCell(CoverageCell *cell);

/** The cell's JSON form inside the bench matrix (flat keys: config,
 *  class, detected, total, skipped, coverage, ci_lo, ci_hi). */
Json coverageCellJson(const CoverageCell &cell);

/**
 * Extract coverage cells from a BENCH_faults.json document: every
 * entry of the top-level "matrix" array carrying the coverageCellJson
 * keys. Entries without them are ignored. Returns false (and sets
 * @p err) when the document has no usable matrix at all.
 */
bool extractCoverageCells(const Json &doc, std::vector<CoverageCell> *out,
                          std::string *err);

/**
 * The --coverage gate: compare @p after against @p before cell by cell
 * (matched on config + class). A cell FAILS when
 *
 *   - after.ci.hi < before.ci.lo (the intervals are disjoint with
 *     after below: a statistically unambiguous coverage drop), or
 *   - after.skipped > before.skipped (trials quietly stopped running —
 *     a masked regression no interval can see), or
 *   - the cell disappeared from @p after.
 *
 * Cells new in @p after are reported but never fail. Appends a
 * human-readable table to @p report; returns true when no cell failed.
 */
bool compareCoverage(const std::vector<CoverageCell> &before,
                     const std::vector<CoverageCell> &after,
                     std::string *report);

} // namespace mxl

#endif // MXLISP_FAULTS_STATS_H_
