/**
 * Delay-slot scheduler unit tests: slot insertion, fill-from-above
 * legality, the §6.2.1 overlap mode, and label preservation.
 */

#include <gtest/gtest.h>

#include "compiler/asm_buffer.h"
#include "compiler/linker.h"
#include "compiler/scheduler.h"
#include "support/panic.h"

namespace mxl {
namespace {

/** Count instructions by opcode after scheduling+linking. */
int
countOp(const Program &p, Opcode op)
{
    int n = 0;
    for (const auto &i : p.code) {
        if (i.op == op)
            ++n;
    }
    return n;
}

TEST(Scheduler, InsertsTwoSlotsAfterEveryTransfer)
{
    AsmBuffer buf;
    int l = buf.defineSymbol("top");
    buf.jump(l);
    scheduleDelaySlots(buf, /*fill=*/false, /*overlap=*/false);
    Program p = link(buf);
    ASSERT_EQ(p.code.size(), 3u);
    EXPECT_EQ(p.code[0].op, Opcode::J);
    EXPECT_EQ(p.code[1].op, Opcode::Noop);
    EXPECT_EQ(p.code[2].op, Opcode::Noop);
}

TEST(Scheduler, FillsFromAboveWhenIndependent)
{
    AsmBuffer buf;
    int l = buf.defineSymbol("top");
    buf.op3(Opcode::Add, 5, 6, 7);    // independent of the branch
    buf.op3(Opcode::Add, 8, 6, 7);
    buf.branch(Opcode::Beq, 2, 3, l);
    scheduleDelaySlots(buf, true, false);
    Program p = link(buf);
    // Both adds move into the slots: branch first.
    ASSERT_EQ(p.code.size(), 3u);
    EXPECT_EQ(p.code[0].op, Opcode::Beq);
    EXPECT_EQ(p.code[1].op, Opcode::Add);
    EXPECT_EQ(p.code[1].rd, 5);
    EXPECT_EQ(p.code[2].rd, 8);
    EXPECT_EQ(countOp(p, Opcode::Noop), 0);
}

TEST(Scheduler, WillNotMoveConditionFeeders)
{
    AsmBuffer buf;
    int l = buf.defineSymbol("top");
    buf.op3(Opcode::Add, 2, 6, 7);    // writes the branch source r2
    buf.branch(Opcode::Beq, 2, 3, l);
    scheduleDelaySlots(buf, true, false);
    Program p = link(buf);
    // The add must stay put; slots are noops.
    EXPECT_EQ(p.code[0].op, Opcode::Add);
    EXPECT_EQ(p.code[1].op, Opcode::Beq);
    EXPECT_EQ(countOp(p, Opcode::Noop), 2);
}

TEST(Scheduler, WillNotCrossLabels)
{
    AsmBuffer buf;
    buf.defineSymbol("entry");
    buf.op3(Opcode::Add, 5, 6, 7);
    int mid = buf.defineSymbol("mid"); // label between add and branch
    buf.branch(Opcode::Beq, 2, 3, mid);
    scheduleDelaySlots(buf, true, false);
    Program p = link(buf);
    // The add is before the label (a possible join point): not movable.
    EXPECT_EQ(p.code[0].op, Opcode::Add);
    EXPECT_EQ(p.code[1].op, Opcode::Beq);
    EXPECT_EQ(countOp(p, Opcode::Noop), 2);
    EXPECT_EQ(p.symbol("mid"), 1);
}

TEST(Scheduler, JalLinkRegisterConstraints)
{
    AsmBuffer buf;
    int f = buf.defineSymbol("f");
    // This instruction reads r31, which jal writes: not movable.
    buf.op3(Opcode::Add, 5, 31, 7);
    buf.jal(31, f);
    scheduleDelaySlots(buf, true, false);
    Program p = link(buf);
    EXPECT_EQ(p.code[0].op, Opcode::Add);
    EXPECT_EQ(p.code[1].op, Opcode::Jal);
    EXPECT_EQ(countOp(p, Opcode::Noop), 2);
}

TEST(Scheduler, OverlapFillsFromBelowAndSquashes)
{
    AsmBuffer buf;
    int err = buf.defineSymbol("err");
    buf.branch(Opcode::Bnei, 4, 0, err, {}, /*hintFall=*/true);
    buf.op3(Opcode::Add, 5, 6, 7); // the protected operation
    buf.op3(Opcode::Add, 8, 6, 7);
    buf.sys(SysCode::Halt, 1);

    AsmBuffer overlap = buf;
    scheduleDelaySlots(overlap, true, /*overlap=*/true);
    Program po = link(overlap);
    EXPECT_EQ(po.code[0].op, Opcode::Bnei);
    EXPECT_EQ(po.code[0].annul, Annul::OnTaken);
    EXPECT_EQ(po.code[1].op, Opcode::Add);
    EXPECT_EQ(po.code[2].op, Opcode::Add);

    AsmBuffer plain = buf;
    scheduleDelaySlots(plain, true, /*overlap=*/false);
    Program pp = link(plain);
    // Without overlap the hinted branch cannot take from below; no
    // instructions precede it, so the slots are padding.
    EXPECT_EQ(pp.code[1].op, Opcode::Noop);
    EXPECT_EQ(pp.code[2].op, Opcode::Noop);
}

TEST(Scheduler, PaddingInheritsBranchAnnotation)
{
    AsmBuffer buf;
    int err = buf.defineSymbol("err");
    buf.branch(Opcode::Bnei, 4, 0, err,
               {Purpose::TagCheck, CheckCat::List, true}, true);
    buf.sys(SysCode::Halt, 1);
    scheduleDelaySlots(buf, true, false);
    Program p = link(buf);
    // The paper charges unused delay slots of a tag check to checking.
    EXPECT_EQ(p.code[1].op, Opcode::Noop);
    EXPECT_EQ(p.code[1].ann.purpose, Purpose::TagCheck);
    EXPECT_EQ(p.code[1].ann.cat, CheckCat::List);
    EXPECT_TRUE(p.code[1].ann.fromChecking);
}

TEST(Scheduler, TrappingOpsStayOutOfSlots)
{
    AsmBuffer buf;
    int l = buf.defineSymbol("top");
    buf.op3(Opcode::Addt, 1, 6, 7); // may trap: not slot-safe
    buf.branch(Opcode::Beq, 2, 3, l);
    scheduleDelaySlots(buf, true, false);
    Program p = link(buf);
    EXPECT_EQ(p.code[0].op, Opcode::Addt);
    EXPECT_EQ(countOp(p, Opcode::Noop), 2);
}

TEST(Scheduler, NoFillModePadsEverything)
{
    AsmBuffer buf;
    int l = buf.defineSymbol("top");
    buf.op3(Opcode::Add, 5, 6, 7);
    buf.op3(Opcode::Add, 8, 6, 7);
    buf.branch(Opcode::Beq, 2, 3, l);
    scheduleDelaySlots(buf, false, false);
    Program p = link(buf);
    ASSERT_EQ(p.code.size(), 5u);
    EXPECT_EQ(countOp(p, Opcode::Noop), 2);
    EXPECT_EQ(p.code[2].op, Opcode::Beq);
}

TEST(Linker, ResolvesAndExports)
{
    AsmBuffer buf;
    int a = buf.defineSymbol("a");
    buf.jump(a);
    buf.noop();
    buf.noop();
    int b = buf.newLabel("b_internal");
    buf.placeLabel(b);
    buf.jump(b);
    buf.noop();
    buf.noop();
    Program p = link(buf);
    EXPECT_EQ(p.symbol("a"), 0);
    EXPECT_EQ(p.symbol("b_internal"), -1); // not exported
    EXPECT_EQ(p.code[0].target, 0);
    EXPECT_EQ(p.code[3].target, 3);
}

TEST(Linker, UndefinedLabelFatal)
{
    AsmBuffer buf;
    int l = buf.newLabel("missing");
    buf.jump(l);
    buf.noop();
    buf.noop();
    EXPECT_THROW(link(buf), MxlError);
}

} // namespace
} // namespace mxl
