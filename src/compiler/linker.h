/**
 * @file
 * Linker: flattens a scheduled AsmBuffer into an executable Program,
 * resolving labels to absolute instruction indices.
 */

#ifndef MXLISP_COMPILER_LINKER_H_
#define MXLISP_COMPILER_LINKER_H_

#include "compiler/asm_buffer.h"
#include "isa/instruction.h"

namespace mxl {

class TagScheme;
struct CompilerOptions;

/**
 * Optional load-time verification gate for link(). When supplied, the
 * linked program is handed to the independent tag-discipline verifier
 * (analysis/verify.h) rooted at its exported symbols, and link()
 * throws on rejection — the compiled binary never reaches execution
 * with an unguarded list access. Enabled from compileUnit() by
 * CompilerOptions::verifyLinked.
 */
struct LinkVerify
{
    const TagScheme *scheme = nullptr;
    const CompilerOptions *opts = nullptr;
};

/**
 * Link @p buf; throws on undefined labels. With @p requireAnnotations,
 * also throws if any emitted instruction carries no explicit Purpose
 * annotation (Annotation::stamped) — the completeness guarantee the
 * static analyzer (src/analysis/) relies on for idiom recognition. The
 * compiler links with it on; hand-built test buffers default to off.
 * With @p verify, the linked program must additionally pass the
 * tag-discipline verifier (see LinkVerify).
 */
Program link(const AsmBuffer &buf, bool requireAnnotations = false,
             const LinkVerify *verify = nullptr);

} // namespace mxl

#endif // MXLISP_COMPILER_LINKER_H_
