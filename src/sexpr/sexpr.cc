#include "sexpr/sexpr.h"

#include "support/panic.h"

namespace mxl {

SxArena::SxArena()
{
    nil_ = sym("nil");
    t_ = sym("t");
}

Sx *
SxArena::sym(const std::string &name)
{
    auto it = symbols_.find(name);
    if (it != symbols_.end())
        return it->second;
    Sx &n = nodes_.emplace_back();
    n.kind = SxKind::Sym;
    n.text = name;
    symbols_.emplace(name, &n);
    return &n;
}

Sx *
SxArena::num(int64_t v)
{
    Sx &n = nodes_.emplace_back();
    n.kind = SxKind::Int;
    n.ival = v;
    return &n;
}

Sx *
SxArena::str(std::string s)
{
    Sx &n = nodes_.emplace_back();
    n.kind = SxKind::Str;
    n.text = std::move(s);
    return &n;
}

Sx *
SxArena::cons(Sx *car, Sx *cdr)
{
    Sx &n = nodes_.emplace_back();
    n.kind = SxKind::Pair;
    n.car = car;
    n.cdr = cdr;
    return &n;
}

Sx *
SxArena::list(const std::vector<Sx *> &elems)
{
    Sx *l = nil_;
    for (auto it = elems.rbegin(); it != elems.rend(); ++it)
        l = cons(*it, l);
    return l;
}

int
listLength(const Sx *l)
{
    int n = 0;
    while (l->isPair()) {
        ++n;
        l = l->cdr;
    }
    if (!l->isNil())
        fatal("improper list where proper list expected");
    return n;
}

Sx *
listNth(Sx *l, int n)
{
    while (n-- > 0) {
        MXL_ASSERT(l->isPair(), "list too short");
        l = l->cdr;
    }
    MXL_ASSERT(l->isPair(), "list too short");
    return l->car;
}

std::vector<Sx *>
listElems(Sx *l)
{
    std::vector<Sx *> out;
    while (l->isPair()) {
        out.push_back(l->car);
        l = l->cdr;
    }
    if (!l->isNil())
        fatal("improper list where proper list expected");
    return out;
}

} // namespace mxl
