#include "compiler/asm_buffer.h"

#include "support/panic.h"

namespace mxl {

int
AsmBuffer::newLabel(const std::string &name)
{
    int id = static_cast<int>(names_.size());
    names_.push_back(name);
    exported_.push_back(false);
    return id;
}

void
AsmBuffer::placeLabel(int label)
{
    MXL_ASSERT(label >= 0 && label < numLabels(), "bad label id");
    AsmEntry e;
    e.isLabel = true;
    e.labelId = label;
    entries_.push_back(e);
}

int
AsmBuffer::defineSymbol(const std::string &name)
{
    int id = newLabel(name);
    exported_[id] = true;
    placeLabel(id);
    return id;
}

void
AsmBuffer::emit(const Instruction &inst)
{
    AsmEntry e;
    e.inst = inst;
    entries_.push_back(e);
}

void
AsmBuffer::op3(Opcode op, Reg rd, Reg rs, Reg rt, Annotation ann)
{
    Instruction i;
    i.op = op;
    i.rd = rd;
    i.rs = rs;
    i.rt = rt;
    i.ann = ann;
    emit(i);
}

void
AsmBuffer::opImm(Opcode op, Reg rd, Reg rs, int64_t imm, Annotation ann)
{
    Instruction i;
    i.op = op;
    i.rd = rd;
    i.rs = rs;
    i.imm = imm;
    i.ann = ann;
    emit(i);
}

void
AsmBuffer::li(Reg rd, int64_t imm, Annotation ann)
{
    Instruction i;
    i.op = Opcode::Li;
    i.rd = rd;
    i.imm = imm;
    i.ann = ann;
    emit(i);
}

void
AsmBuffer::mov(Reg rd, Reg rs, Annotation ann)
{
    Instruction i;
    i.op = Opcode::Mov;
    i.rd = rd;
    i.rs = rs;
    i.ann = ann;
    emit(i);
}

void
AsmBuffer::ld(Reg rd, Reg base, int32_t off, Annotation ann)
{
    MXL_ASSERT(rd != base, "non-idempotent load (rd == base)");
    Instruction i;
    i.op = Opcode::Ld;
    i.rd = rd;
    i.rs = base;
    i.imm = off;
    i.ann = ann;
    emit(i);
}

void
AsmBuffer::st(Reg val, Reg base, int32_t off, Annotation ann)
{
    Instruction i;
    i.op = Opcode::St;
    i.rt = val;
    i.rs = base;
    i.imm = off;
    i.ann = ann;
    emit(i);
}

void
AsmBuffer::ldt(Reg rd, Reg base, int32_t off, uint32_t tag, Annotation ann)
{
    MXL_ASSERT(rd != base, "non-idempotent load (rd == base)");
    Instruction i;
    i.op = Opcode::Ldt;
    i.rd = rd;
    i.rs = base;
    i.imm = off;
    i.timm = tag;
    i.ann = ann;
    emit(i);
}

void
AsmBuffer::stt(Reg val, Reg base, int32_t off, uint32_t tag, Annotation ann)
{
    Instruction i;
    i.op = Opcode::Stt;
    i.rt = val;
    i.rs = base;
    i.imm = off;
    i.timm = tag;
    i.ann = ann;
    emit(i);
}

void
AsmBuffer::branch(Opcode op, Reg rs, Reg rt, int label, Annotation ann,
                  bool hintFall)
{
    MXL_ASSERT(isCondBranch(op), "branch() with non-branch opcode");
    Instruction i;
    i.op = op;
    i.rs = rs;
    i.rt = rt;
    i.label = label;
    i.ann = ann;
    i.hintFall = hintFall;
    emit(i);
}

void
AsmBuffer::btag(Opcode op, Reg rs, uint32_t tag, int label, Annotation ann,
                bool hintFall)
{
    MXL_ASSERT(op == Opcode::Btag || op == Opcode::Bntag, "btag opcode");
    Instruction i;
    i.op = op;
    i.rs = rs;
    i.timm = tag;
    i.label = label;
    i.ann = ann;
    i.hintFall = hintFall;
    emit(i);
}

void
AsmBuffer::jump(int label, Annotation ann)
{
    Instruction i;
    i.op = Opcode::J;
    i.label = label;
    i.ann = ann;
    emit(i);
}

void
AsmBuffer::jal(Reg linkReg, int label, Annotation ann)
{
    Instruction i;
    i.op = Opcode::Jal;
    i.rd = linkReg;
    i.label = label;
    i.ann = ann;
    emit(i);
}

void
AsmBuffer::jr(Reg rs, Annotation ann)
{
    Instruction i;
    i.op = Opcode::Jr;
    i.rs = rs;
    i.ann = ann;
    emit(i);
}

void
AsmBuffer::jalr(Reg linkReg, Reg rs, Annotation ann)
{
    Instruction i;
    i.op = Opcode::Jalr;
    i.rd = linkReg;
    i.rs = rs;
    i.ann = ann;
    emit(i);
}

void
AsmBuffer::sys(SysCode code, Reg rs, Annotation ann)
{
    Instruction i;
    i.op = Opcode::Sys;
    i.imm = static_cast<int64_t>(code);
    i.rs = rs;
    i.ann = ann;
    emit(i);
}

void
AsmBuffer::noop(Annotation ann)
{
    Instruction i;
    i.op = Opcode::Noop;
    i.ann = ann;
    emit(i);
}

} // namespace mxl
