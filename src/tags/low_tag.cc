#include "tags/low_tag.h"

#include "support/bits.h"
#include "support/panic.h"

namespace mxl {

bool
LowTagScheme::fixnumInRange(int64_t v) const
{
    return fitsSigned(v, 30);
}

uint32_t
LowTagScheme::encodeFixnum(int64_t v) const
{
    MXL_ASSERT(fixnumInRange(v), "fixnum out of range: ", v);
    return static_cast<uint32_t>(v) << 2;
}

int64_t
LowTagScheme::decodeFixnum(uint32_t w) const
{
    return static_cast<int32_t>(w) >> 2;
}

uint32_t
LowTagScheme::encodePointer(TypeId t, uint32_t addr) const
{
    MXL_ASSERT(addr % alignment(t) == 0,
               "misaligned ", typeName(t), " at ", addr);
    return addr | pointerTag(t);
}

uint32_t
LowTagScheme::detagAddr(uint32_t w) const
{
    return w & ~maskBits(0, tagBits());
}

int32_t
LowTagScheme::offsetAdjust(TypeId t) const
{
    // Memory is word-addressed: the bottom two bits of every effective
    // address are dropped by the machine (§5.2), so only tag bits above
    // bit 1 must be compensated in the offset (LowTag3 tags with bit 2
    // set; as in the T system and Lucid CL).
    return -static_cast<int32_t>(pointerTag(t) & ~3u);
}

uint32_t
LowTagScheme::encodeChar(uint32_t code) const
{
    return (code << 8) | charTag();
}

uint32_t
LowTagScheme::charCode(uint32_t w) const
{
    return (w >> 8) & 0xff;
}

uint32_t
LowTag2::pointerTag(TypeId t) const
{
    switch (t) {
      case TypeId::Pair:
        return 1;
      case TypeId::Symbol:
      case TypeId::Vector:
      case TypeId::String:
        return 2; // shared heap-object tag; header discriminates
      default:
        panic("pointerTag: not a pointer type: ", typeName(t));
    }
}

bool
LowTag2::headerDiscriminated(TypeId t) const
{
    return t == TypeId::Symbol || t == TypeId::Vector ||
           t == TypeId::String;
}

uint32_t
LowTag2::alignment(TypeId) const
{
    return 4;
}

uint32_t
LowTag3::pointerTag(TypeId t) const
{
    switch (t) {
      case TypeId::Pair:    return 1;
      case TypeId::Symbol:  return 2;
      case TypeId::Vector:  return 5;
      case TypeId::String:  return 6;
      default:
        panic("pointerTag: not a pointer type: ", typeName(t));
    }
}

bool
LowTag3::headerDiscriminated(TypeId) const
{
    return false;
}

uint32_t
LowTag3::alignment(TypeId t) const
{
    switch (t) {
      case TypeId::Pair:
      case TypeId::Symbol:
      case TypeId::Vector:
      case TypeId::String:
        return 8;
      default:
        return 4;
    }
}

} // namespace mxl
