/**
 * @file
 * Builds the initial data-memory image: symbol blocks, interned strings,
 * quoted constants, runtime cells, and the GC root list.
 *
 * Static data is immutable at the Lisp level except for symbol cells
 * (value/plist/function), which are exactly the cells registered in the
 * GC root list. Quoted constants therefore never point into the heap
 * and the collector neither moves nor scans them.
 */

#ifndef MXLISP_RUNTIME_IMAGE_H_
#define MXLISP_RUNTIME_IMAGE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "machine/memory.h"
#include "runtime/layout.h"
#include "sexpr/sexpr.h"
#include "tags/tag_scheme.h"

namespace mxl {

class ImageBuilder
{
  public:
    ImageBuilder(const RuntimeLayout &layout, const TagScheme &scheme);

    /** Allocate @p bytes of static space aligned to @p align. */
    uint32_t allocStatic(uint32_t bytes, uint32_t align);

    /** Write a raw word at byte address @p addr. */
    void setWord(uint32_t addr, uint32_t w);
    uint32_t getWord(uint32_t addr) const;

    /** Intern @p name; returns the symbol block's byte address. */
    uint32_t symbolAddr(const std::string &name);

    /** Tagged word for the symbol @p name. */
    uint32_t symbolWord(const std::string &name);

    /** Tagged word for an interned static string. */
    uint32_t stringWord(const std::string &s);

    /** Tagged word for a quoted constant (builds static structure). */
    uint32_t constWord(const Sx *form);

    /** Number of interned symbols so far. */
    int numSymbols() const { return static_cast<int>(symbols_.size()); }

    /** Write runtime cells and the root list; then build the Memory. */
    Memory finalize();

    const RuntimeLayout &layout() const { return layout_; }
    const TagScheme &scheme() const { return scheme_; }

  private:
    const RuntimeLayout &layout_;
    const TagScheme &scheme_;
    std::vector<uint32_t> staticWords_;
    uint32_t allocPtr_;
    std::unordered_map<std::string, uint32_t> symbols_;   // name -> addr
    std::unordered_map<std::string, uint32_t> strings_;   // text -> word
    std::unordered_map<const Sx *, uint32_t> consts_;     // node -> word
    std::vector<uint32_t> rootCells_;  // addresses of GC root cells
};

} // namespace mxl

#endif // MXLISP_RUNTIME_IMAGE_H_
