#include "core/run.h"

namespace mxl {

RunResult
runUnit(const CompiledUnit &unit, uint64_t maxCycles)
{
    Machine m(unit.prog, unit.memory, unit.opts.hw, unit.scheme.get());
    if (unit.opts.hw.genericArith && unit.arithTrap >= 0)
        m.setTrapHandler(TrapKind::ArithFail, unit.arithTrap);
    if (unit.opts.hw.checkedMemory != CheckedMem::None &&
        unit.tagTrap >= 0)
        m.setTrapHandler(TrapKind::TagMismatch, unit.tagTrap);

    RunResult r;
    r.stop = m.run(unit.entry, maxCycles);
    r.stats = m.stats();
    r.output = m.output();
    r.errorCode = m.errorCode();
    r.exitValue = m.exitValue();
    r.gcCount = m.memory().load(unit.layout.cellAddr(Cell::GcCount));
    r.heapUsed = m.memory().load(unit.layout.cellAddr(Cell::HeapUsed));
    return r;
}

RunResult
compileAndRun(const std::string &source, const CompilerOptions &opts,
              uint64_t maxCycles)
{
    CompiledUnit unit = compileUnit(source, opts);
    return runUnit(unit, maxCycles);
}

} // namespace mxl
