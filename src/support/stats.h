/**
 * @file
 * Summary statistics over small samples (the paper reports means and
 * standard deviations across its ten programs).
 */

#ifndef MXLISP_SUPPORT_STATS_H_
#define MXLISP_SUPPORT_STATS_H_

#include <vector>

namespace mxl {

/** Arithmetic mean; 0 for an empty sample. */
double mean(const std::vector<double> &xs);

/** Population standard deviation; 0 for samples of size < 2. */
double stddev(const std::vector<double> &xs);

/** Minimum; 0 for an empty sample. */
double minOf(const std::vector<double> &xs);

/** Maximum; 0 for an empty sample. */
double maxOf(const std::vector<double> &xs);

} // namespace mxl

#endif // MXLISP_SUPPORT_STATS_H_
