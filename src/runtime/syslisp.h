/**
 * @file
 * The sys-Lisp runtime sources: the copying garbage collector and the
 * generic-arithmetic dispatch/bignum routines. Like PSL's SYSLISP
 * kernel, these are Lisp programs compiled through the normal pipeline,
 * so every runtime cycle — including GC cycles (the dedgc benchmark) —
 * is measured exactly like user code.
 */

#ifndef MXLISP_RUNTIME_SYSLISP_H_
#define MXLISP_RUNTIME_SYSLISP_H_

#include <string>

namespace mxl {

/** MX-Lisp source of the garbage collector. */
const std::string &gcSource();

/** MX-Lisp source of generic arithmetic (dispatch + bignums). */
const std::string &genericArithSource();

} // namespace mxl

#endif // MXLISP_RUNTIME_SYSLISP_H_
