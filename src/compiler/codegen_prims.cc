/**
 * @file
 * Primitive operations of MX-Lisp: list cells, predicates, arithmetic,
 * vectors/strings, symbol cells, I/O, and the sys-Lisp raw-memory layer
 * the runtime (GC) is written in.
 */

#include "compiler/codegen.h"

#include "runtime/layout.h"
#include "support/panic.h"

namespace mxl {

namespace {

bool
isArithOp(const std::string &n)
{
    return n == "+" || n == "-" || n == "*" || n == "quotient" ||
           n == "remainder";
}

bool
isCompareOp(const std::string &n)
{
    return n == "lessp" || n == "greaterp" || n == "leq" || n == "geq" ||
           n == "eqn" || n == "neqn";
}

std::string
negateCompare(const std::string &n)
{
    if (n == "lessp")
        return "geq";
    if (n == "greaterp")
        return "leq";
    if (n == "leq")
        return "greaterp";
    if (n == "geq")
        return "lessp";
    if (n == "eqn")
        return "neqn";
    if (n == "neqn")
        return "eqn";
    panic("negateCompare: ", n);
}

} // namespace

bool
CodeGen::isCxr(const std::string &name) const
{
    if (name.size() < 3 || name.front() != 'c' || name.back() != 'r')
        return false;
    for (size_t i = 1; i + 1 < name.size(); ++i) {
        if (name[i] != 'a' && name[i] != 'd')
            return false;
    }
    return true;
}

void
CodeGen::compileCxr(const std::string &name, Sx *arg, Reg target)
{
    // Alternate between a temp and the target so each load reads from
    // a different register than it writes — loads stay idempotent with
    // no copy (the masked base would have provided this for free; see
    // Figure 2's move/and trade-off).
    int mark = tempMark();
    size_t hops = name.size() - 2; // number of a/d letters
    Reg other = allocTemp();
    Reg cur = (hops % 2 == 0) ? target : other;
    expr(arg, cur);
    // Apply accessors right-to-left: (cadr x) = (car (cdr x)).
    for (size_t i = name.size() - 2; i >= 1; --i) {
        int off = name[i] == 'a' ? 0 : 4;
        Reg dst = cur == target ? other : target;
        emitLoadField(dst, cur, TypeId::Pair, off, CheckCat::List,
                      /*checked=*/true);
        cur = dst;
    }
    MXL_ASSERT(cur == target, "cxr parity");
    freeTempsAbove(mark);
}

// ---------------------------------------------------------------------
// Branch-form predicates
// ---------------------------------------------------------------------

bool
CodeGen::primCondBranch(Sx *e, int label, bool branchIfTrue)
{
    // Constants.
    if (!e->isPair()) {
        if (e->isNil()) {
            if (!branchIfTrue)
                buf_.jump(label, {Purpose::Useful});
            return true;
        }
        if (e->isInt() || e->isStr() || e->isSym("t")) {
            if (branchIfTrue)
                buf_.jump(label, {Purpose::Useful});
            return true;
        }
        return false; // variable: generic evaluate-and-test
    }

    Sx *head = e->car;
    if (!head->isSym())
        return false;
    const std::string &n = head->text;

    if (n == "quote") {
        bool truthy = !listNth(e, 1)->isNil();
        if (truthy == branchIfTrue)
            buf_.jump(label, {Purpose::Useful});
        return true;
    }
    if (n == "not" || n == "null") {
        Sx *arg = listNth(e, 1);
        if (branchIfTrue)
            condBranchFalse(arg, label);
        else
            condBranchTrue(arg, label);
        return true;
    }
    if (n == "and" || n == "or") {
        auto parts = listElems(e->cdr);
        if (parts.empty())
            return primCondBranch(n == "and" ? arena_.t() : arena_.nil(),
                                  label, branchIfTrue);
        bool isAnd = n == "and";
        if (isAnd != branchIfTrue) {
            // and+branchFalse / or+branchTrue: any part decides.
            for (Sx *p : parts) {
                if (isAnd)
                    condBranchFalse(p, label);
                else
                    condBranchTrue(p, label);
            }
        } else {
            int lOut = buf_.newLabel();
            for (size_t i = 0; i + 1 < parts.size(); ++i) {
                if (isAnd)
                    condBranchFalse(parts[i], lOut);
                else
                    condBranchTrue(parts[i], lOut);
            }
            if (isAnd)
                condBranchTrue(parts.back(), label);
            else
                condBranchFalse(parts.back(), label);
            buf_.placeLabel(lOut);
        }
        return true;
    }
    if (n == "eq") {
        int mark = tempMark();
        Reg ra, rb;
        evalTwo(listNth(e, 1), listNth(e, 2), ra, rb);
        buf_.branch(branchIfTrue ? Opcode::Beq : Opcode::Bne, ra, rb,
                    label, {Purpose::Useful});
        freeTempsAbove(mark);
        return true;
    }
    if (n == "atom" || n == "pairp") {
        int mark = tempMark();
        Reg t = allocTemp();
        expr(listNth(e, 1), t);
        bool wantPair = (n == "pairp") == branchIfTrue;
        if (wantPair)
            emitTagBranchEq(t, TypeId::Pair, label, CheckCat::User, false);
        else
            emitTagBranchNe(t, TypeId::Pair, label, CheckCat::User, false,
                            false);
        freeTempsAbove(mark);
        return true;
    }
    if (n == "symbolp" || n == "vectorp" || n == "stringp") {
        TypeId ty = n == "symbolp"  ? TypeId::Symbol
                    : n == "vectorp" ? TypeId::Vector
                                     : TypeId::String;
        int mark = tempMark();
        Reg t = allocTemp();
        expr(listNth(e, 1), t);
        if (branchIfTrue)
            emitTagBranchEq(t, ty, label, CheckCat::User, false);
        else
            emitTagBranchNe(t, ty, label, CheckCat::User, false, false);
        freeTempsAbove(mark);
        return true;
    }
    if (n == "fixp") {
        int mark = tempMark();
        Reg t = allocTemp();
        expr(listNth(e, 1), t);
        if (branchIfTrue)
            emitFixnumBranchIf(t, label, CheckCat::User, false);
        else
            emitFixnumCheckBranch(t, label, CheckCat::User, false);
        freeTempsAbove(mark);
        return true;
    }
    if (n == "zerop" || n == "onep" || n == "minusp") {
        int mark = tempMark();
        Reg t = allocTemp();
        expr(listNth(e, 1), t);
        if (checkingOn())
            emitFixnumCheckBranch(t, rt_.error, CheckCat::Arith, true);
        if (n == "minusp") {
            buf_.branch(branchIfTrue ? Opcode::Blt : Opcode::Bge, t,
                        abi::zero, label, {Purpose::Useful});
        } else {
            int64_t v = n == "zerop" ? 0 : 1;
            buf_.branch(branchIfTrue ? Opcode::Beqi : Opcode::Bnei, t, 0,
                        label, {Purpose::Useful});
            buf_.entries().back().inst.imm =
                static_cast<int64_t>(scheme_.encodeFixnum(v));
        }
        freeTempsAbove(mark);
        return true;
    }
    if (isCompareOp(n)) {
        Sx *a = listNth(e, 1);
        Sx *b = listNth(e, 2);
        if (branchIfTrue)
            emitCompareBranchFalse(negateCompare(n), a, b, label);
        else
            emitCompareBranchFalse(n, a, b, label);
        return true;
    }
    if (n == "sys<" || n == "sys<=" || n == "sys=") {
        int mark = tempMark();
        Reg ra, rb;
        evalTwoSys(listNth(e, 1), listNth(e, 2), ra, rb);
        Opcode bop;
        if (n == "sys<")
            bop = branchIfTrue ? Opcode::Blt : Opcode::Bge;
        else if (n == "sys<=")
            bop = branchIfTrue ? Opcode::Ble : Opcode::Bgt;
        else
            bop = branchIfTrue ? Opcode::Beq : Opcode::Bne;
        buf_.branch(bop, ra, rb, label, {Purpose::Useful});
        freeTempsAbove(mark);
        return true;
    }
    return false;
}

// ---------------------------------------------------------------------
// Value-form primitives
// ---------------------------------------------------------------------

bool
CodeGen::compilePrimitive(const std::string &n,
                          const std::vector<Sx *> &args, Reg target)
{
    auto need = [&](size_t k) {
        if (args.size() != k)
            fatal("primitive ", n, " expects ", k, " args, got ",
                  args.size(), " in ", currentFunction_);
    };

    // Predicates (value position): branch + materialize t/nil.
    if (n == "eq" || n == "null" || n == "not" || n == "atom" ||
        n == "pairp" || n == "symbolp" || n == "vectorp" ||
        n == "stringp" || n == "fixp" || n == "zerop" || n == "onep" ||
        n == "minusp" || n == "sys<" || n == "sys<=" || n == "sys=") {
        Sx *form = arena_.cons(arena_.sym(n), arena_.list(args));
        int lTrue = buf_.newLabel();
        condBranchTrue(form, lTrue);
        materializeBool(lTrue, target);
        return true;
    }

    if (isArithOp(n)) {
        need(2);
        emitArith(n, args[0], args[1], target);
        return true;
    }
    if (n == "add1") {
        need(1);
        emitArith("+", args[0], arena_.num(1), target);
        return true;
    }
    if (n == "sub1") {
        need(1);
        emitArith("-", args[0], arena_.num(1), target);
        return true;
    }
    if (n == "minus") {
        need(1);
        emitArith("-", arena_.num(0), args[0], target);
        return true;
    }
    if (isCompareOp(n)) {
        need(2);
        emitCompare(n, args[0], args[1], target);
        return true;
    }

    if (n == "cons") {
        need(2);
        compileCallTo(rt_.cons, args, target);
        return true;
    }
    if (n == "list") {
        // (list a b c) -> (cons a (cons b (cons c nil)))
        Sx *form = arena_.nil();
        for (auto it = args.rbegin(); it != args.rend(); ++it) {
            form = arena_.cons(arena_.sym("cons"),
                               arena_.list({*it, form}));
        }
        expr(form, target);
        return true;
    }
    if (n == "rplaca" || n == "rplacd") {
        need(2);
        int mark = tempMark();
        Reg ra, rb;
        evalTwo(args[0], args[1], ra, rb);
        emitStoreField(rb, ra, TypeId::Pair, n == "rplaca" ? 0 : 4,
                       CheckCat::List, /*checked=*/true);
        if (target != ra)
            buf_.mov(target, ra, {Purpose::Useful});
        freeTempsAbove(mark);
        return true;
    }

    if (n == "mkvect") {
        need(1);
        compileCallTo(rt_.mkvect, args, target);
        return true;
    }
    if (n == "mkstring") {
        need(1);
        compileCallTo(rt_.mkstring, args, target);
        return true;
    }
    if (n == "getv") {
        need(2);
        emitIndexedLoad(args[0], args[1], target, TypeId::Vector);
        return true;
    }
    if (n == "putv") {
        need(3);
        emitIndexedStore(args[0], args[1], args[2], target,
                         TypeId::Vector);
        return true;
    }
    if (n == "string-ref") {
        need(2);
        emitIndexedLoad(args[0], args[1], target, TypeId::String);
        return true;
    }
    if (n == "string-set") {
        need(3);
        emitIndexedStore(args[0], args[1], args[2], target,
                         TypeId::String);
        return true;
    }
    if (n == "upbv" || n == "string-length") {
        need(1);
        TypeId ty = n == "upbv" ? TypeId::Vector : TypeId::String;
        int mark = tempMark();
        Reg v = allocTemp();
        expr(args[0], v);
        if (checkingOn())
            emitTypeCheck(v, ty, CheckCat::Vector);
        Reg h = allocTemp();
        int adj;
        Reg b = prepareBase(v, ty, adj, h);
        buf_.ld(h, b, adj, {Purpose::Useful});
        buf_.opImm(Opcode::Srli, h, h, 3, {Purpose::Useful});
        if (scheme_.fixnumScale() == 4)
            buf_.opImm(Opcode::Slli, h, h, 2, {Purpose::Useful});
        // upbv returns length-1 (the PSL upper bound); h holds the
        // length in fixnum representation after the scaling above.
        if (n == "upbv")
            buf_.opImm(Opcode::Addi, target, h, -scheme_.fixnumScale(),
                       {Purpose::Useful});
        else
            buf_.mov(target, h, {Purpose::Useful});
        freeTempsAbove(mark);
        return true;
    }

    if (n == "plist" || n == "symbol-name") {
        need(1);
        int off = n == "plist" ? symoff::plist : symoff::name;
        int mark = tempMark();
        Reg s = allocTemp();
        expr(args[0], s);
        if (checkingOn())
            emitTypeCheck(s, TypeId::Symbol, CheckCat::List);
        emitLoadField(target, s, TypeId::Symbol, off, CheckCat::List,
                      /*checked=*/false);
        freeTempsAbove(mark);
        return true;
    }
    if (n == "setplist") {
        need(2);
        int mark = tempMark();
        Reg ra, rb;
        evalTwo(args[0], args[1], ra, rb);
        if (checkingOn())
            emitTypeCheck(ra, TypeId::Symbol, CheckCat::List);
        emitStoreField(rb, ra, TypeId::Symbol, symoff::plist,
                       CheckCat::List, /*checked=*/false);
        if (target != rb)
            buf_.mov(target, rb, {Purpose::Useful});
        freeTempsAbove(mark);
        return true;
    }
    if (n == "subtype") {
        need(1);
        int mark = tempMark();
        Reg v = allocTemp();
        expr(args[0], v);
        emitLoadField(target, v, TypeId::Vector, 0, CheckCat::None,
                      /*checked=*/false);
        buf_.opImm(Opcode::Andi, target, target, 7, {Purpose::Useful});
        if (scheme_.fixnumScale() == 4)
            buf_.opImm(Opcode::Slli, target, target, 2,
                       {Purpose::Useful});
        freeTempsAbove(mark);
        return true;
    }

    if (n == "apply") {
        need(2);
        compileCallTo(rt_.apply, args, target);
        return true;
    }

    if (n == "putfixnum") {
        need(1);
        int mark = tempMark();
        Reg v = allocTemp();
        expr(args[0], v);
        buf_.sys(SysCode::PutFix, v, {Purpose::Useful});
        buf_.mov(target, v, {Purpose::Useful});
        freeTempsAbove(mark);
        return true;
    }
    if (n == "putcharcode") {
        need(1);
        int mark = tempMark();
        Reg v = allocTemp();
        expr(args[0], v);
        if (scheme_.fixnumScale() == 4) {
            Reg r = allocTemp();
            buf_.opImm(Opcode::Srai, r, v, 2, {Purpose::Useful});
            buf_.sys(SysCode::PutChar, r, {Purpose::Useful});
        } else {
            buf_.sys(SysCode::PutChar, v, {Purpose::Useful});
        }
        buf_.mov(target, v, {Purpose::Useful});
        freeTempsAbove(mark);
        return true;
    }
    if (n == "error") {
        need(1);
        int mark = tempMark();
        Reg v = allocTemp();
        expr(args[0], v);
        if (scheme_.fixnumScale() == 4)
            buf_.opImm(Opcode::Srai, v, v, 2, {Purpose::Useful});
        buf_.sys(SysCode::Error, v, {Purpose::Useful});
        buf_.mov(target, abi::nilreg, {Purpose::Useful});
        freeTempsAbove(mark);
        return true;
    }

    // ---- sys-Lisp layer ----
    if (n == "sys-load") {
        need(2);
        MXL_ASSERT(args[1]->isInt(), "sys-load offset must be a literal");
        int mark = tempMark();
        Reg a = allocTemp();
        exprSys(args[0], a);
        buf_.ld(target, a, static_cast<int32_t>(args[1]->ival),
                {Purpose::Useful});
        freeTempsAbove(mark);
        return true;
    }
    if (n == "sys-store") {
        need(3);
        MXL_ASSERT(args[1]->isInt(), "sys-store offset must be a literal");
        int mark = tempMark();
        Reg ra, rv;
        evalTwo(args[0], args[2], ra, rv);
        buf_.st(rv, ra, static_cast<int32_t>(args[1]->ival),
                {Purpose::Useful});
        if (target != rv)
            buf_.mov(target, rv, {Purpose::Useful});
        freeTempsAbove(mark);
        return true;
    }
    if (n == "sys+" || n == "sys-") {
        need(2);
        int mark = tempMark();
        Reg ra, rb;
        evalTwoSys(args[0], args[1], ra, rb);
        buf_.op3(n == "sys+" ? Opcode::Add : Opcode::Sub, target, ra, rb,
                 {Purpose::Useful});
        freeTempsAbove(mark);
        return true;
    }
    if (n == "sys-word") {
        // A raw machine-word literal (the sys-Lisp escape from fixnum
        // representation).
        need(1);
        MXL_ASSERT(args[0]->isInt(), "sys-word takes a literal");
        buf_.li(target, args[0]->ival, {Purpose::Useful});
        return true;
    }
    if (n == "sys-and" || n == "sys-xor") {
        need(2);
        int mark = tempMark();
        Reg ra, rb;
        evalTwoSys(args[0], args[1], ra, rb);
        buf_.op3(n == "sys-and" ? Opcode::And : Opcode::Xor, target, ra,
                 rb, {Purpose::Useful});
        freeTempsAbove(mark);
        return true;
    }
    if (n == "sys-sll" || n == "sys-srl") {
        need(2);
        MXL_ASSERT(args[1]->isInt(), "shift amount must be a literal");
        int mark = tempMark();
        Reg a = allocTemp();
        exprSys(args[0], a);
        buf_.opImm(n == "sys-sll" ? Opcode::Slli : Opcode::Srli, target,
                   a, args[1]->ival, {Purpose::Useful});
        freeTempsAbove(mark);
        return true;
    }
    if (n == "sys-detag") {
        need(1);
        int mark = tempMark();
        Reg a = allocTemp();
        exprSys(args[0], a);
        emitDetag(target, a, TypeId::Pair, {Purpose::Useful});
        freeTempsAbove(mark);
        return true;
    }
    if (n == "sys-cellref") {
        need(1);
        MXL_ASSERT(args[0]->isInt(), "cell index must be a literal");
        uint32_t addr = image_.layout().cellAddr(
            static_cast<Cell>(args[0]->ival));
        buf_.ld(target, abi::zero, addr, {Purpose::Useful});
        return true;
    }
    if (n == "sys-cellset") {
        need(2);
        MXL_ASSERT(args[0]->isInt(), "cell index must be a literal");
        uint32_t addr = image_.layout().cellAddr(
            static_cast<Cell>(args[0]->ival));
        int mark = tempMark();
        Reg v = allocTemp();
        expr(args[1], v);
        buf_.st(v, abi::zero, addr, {Purpose::Useful});
        if (target != v)
            buf_.mov(target, v, {Purpose::Useful});
        freeTempsAbove(mark);
        return true;
    }
    if (n == "sys-reg") {
        need(1);
        MXL_ASSERT(args[0]->isInt(), "register number must be a literal");
        buf_.mov(target, static_cast<Reg>(args[0]->ival),
                 {Purpose::Useful});
        return true;
    }
    if (n == "sys-setreg") {
        need(2);
        MXL_ASSERT(args[0]->isInt(), "register number must be a literal");
        int mark = tempMark();
        Reg v = allocTemp();
        expr(args[1], v);
        buf_.mov(static_cast<Reg>(args[0]->ival), v, {Purpose::Useful});
        if (target != v)
            buf_.mov(target, v, {Purpose::Useful});
        freeTempsAbove(mark);
        return true;
    }

    return false;
}

} // namespace mxl
