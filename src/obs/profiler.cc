#include "obs/profiler.h"

#include <algorithm>

#include "support/format.h"
#include "support/panic.h"
#include "support/table.h"

namespace mxl {

uint64_t
PcProfile::totalCycles() const
{
    uint64_t t = 0;
    for (uint64_t c : cycles)
        t += c;
    return t;
}

uint64_t
PcProfile::totalExecuted() const
{
    uint64_t t = 0;
    for (uint64_t c : execCount)
        t += c;
    return t;
}

std::vector<FunctionProfile>
symbolize(const Program &prog, const PcProfile &profile)
{
    const size_t n = prog.code.size();
    MXL_ASSERT(profile.cycles.size() == n && profile.execCount.size() == n,
               "profile sized for a different program (", n,
               " instructions vs ", profile.cycles.size(), ")");

    // Region boundaries from the label table, in address order.
    std::vector<std::pair<int, std::string>> labels = sortedSymbols(prog);
    std::vector<FunctionProfile> out;
    auto addRegion = [&](const std::string &name, int begin, int end) {
        FunctionProfile f;
        f.name = name;
        f.begin = begin;
        f.end = end;
        for (int pc = begin; pc < end; ++pc) {
            uint64_t c = profile.cycles[static_cast<size_t>(pc)];
            f.cycles += c;
            f.executed += profile.execCount[static_cast<size_t>(pc)];
            const Annotation &ann = prog.code[static_cast<size_t>(pc)].ann;
            f.byPurpose[static_cast<int>(ann.purpose)] += c;
            if (ann.fromChecking)
                f.checkingCycles += c;
        }
        if (f.cycles != 0 || f.executed != 0)
            out.push_back(std::move(f));
    };

    int cursor = 0;
    if (!labels.empty() && labels.front().first > 0)
        addRegion("(unlabeled)", 0, labels.front().first);
    if (labels.empty()) {
        addRegion("(unlabeled)", 0, static_cast<int>(n));
        return out;
    }
    for (size_t i = 0; i < labels.size(); ++i) {
        cursor = labels[i].first;
        int end = i + 1 < labels.size() ? labels[i + 1].first
                                        : static_cast<int>(n);
        addRegion(labels[i].second, cursor, end);
    }
    return out;
}

Json
functionProfileJson(const std::vector<FunctionProfile> &funcs)
{
    std::vector<const FunctionProfile *> sorted;
    sorted.reserve(funcs.size());
    for (const FunctionProfile &f : funcs)
        sorted.push_back(&f);
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const FunctionProfile *a, const FunctionProfile *b) {
                         return a->cycles > b->cycles;
                     });

    Json arr = Json::array();
    for (const FunctionProfile *f : sorted) {
        Json j = Json::object();
        j.set("name", f->name);
        j.set("begin", static_cast<int64_t>(f->begin));
        j.set("end", static_cast<int64_t>(f->end));
        j.set("cycles", f->cycles);
        j.set("executed", f->executed);
        j.set("checkingCycles", f->checkingCycles);
        Json purposes = Json::object();
        for (int p = 0; p < numPurposes; ++p) {
            if (f->byPurpose[p] == 0)
                continue;
            purposes.set(purposeName(static_cast<Purpose>(p)),
                         f->byPurpose[p]);
        }
        j.set("byPurpose", std::move(purposes));
        arr.push(std::move(j));
    }
    return arr;
}

std::string
renderCheckingTax(const std::vector<FunctionProfile> &funcs, size_t top)
{
    std::vector<const FunctionProfile *> sorted;
    uint64_t totalCycles = 0;
    for (const FunctionProfile &f : funcs) {
        sorted.push_back(&f);
        totalCycles += f.cycles;
    }
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const FunctionProfile *a, const FunctionProfile *b) {
                         if (a->checkingCycles != b->checkingCycles)
                             return a->checkingCycles > b->checkingCycles;
                         return a->cycles > b->cycles;
                     });
    if (sorted.size() > top)
        sorted.resize(top);

    TextTable t;
    t.addRow({"function", "cycles", "% of run", "checking", "% of fn"});
    for (const FunctionProfile *f : sorted) {
        double ofRun = totalCycles
                           ? 100.0 * static_cast<double>(f->cycles) /
                                 static_cast<double>(totalCycles)
                           : 0.0;
        double ofFn = f->cycles
                          ? 100.0 * static_cast<double>(f->checkingCycles) /
                                static_cast<double>(f->cycles)
                          : 0.0;
        t.addRow({f->name, strcat(f->cycles), percent(ofRun),
                  strcat(f->checkingCycles), percent(ofFn)});
    }
    return t.render();
}

} // namespace mxl
