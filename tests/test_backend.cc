/**
 * The translated backend's equivalence contract (src/exec/): for every
 * benchmark program, under every Table 2 hardware configuration and
 * both checking levels, the threaded executor must be byte-identical
 * to the reference interpreter — CycleStats, output, stop reason,
 * error code, exit value, fault index, and GC cells. On top of the
 * differential matrix this suite pins the trap paths (the software
 * Addt/Subt overflow fallback, handled and unhandled), cycle-limit
 * stops, the Engine's two-tier Auto policy (backend stamping, the
 * fallback counter, pause/resume equivalence across the tier drop),
 * and the translator's refusal diagnostics.
 */

#include <cstring>

#include <gtest/gtest.h>

#include "compiler/unit.h"
#include "core/engine.h"
#include "core/experiment.h"
#include "core/run.h"
#include "exec/texec.h"
#include "machine/snapshot.h"
#include "programs/programs.h"
#include "support/panic.h"

using namespace mxl;

namespace {

const char *const kLoop =
    "(de tri (n) (if (lessp n 1) 0 (+ n (tri (sub1 n)))))"
    "(print (tri 40))";

RunRequest
request(const char *source, Checking checking)
{
    RunRequest req;
    req.source = source;
    req.opts = baselineOptions(checking);
    return req;
}

/**
 * Field-by-field comparison of the two backends' results. Everything
 * both backends define is compared; the seam-only fields (profile,
 * snapshotTaken, timedOut) are owned by the caller's expectations.
 */
::testing::AssertionResult
sameResult(const RunResult &a, const RunResult &b)
{
    static_assert(std::is_trivially_copyable_v<CycleStats>);
    if (std::memcmp(&a.stats, &b.stats, sizeof(CycleStats)) != 0)
        return ::testing::AssertionFailure()
               << "CycleStats differ: total " << a.stats.total << " vs "
               << b.stats.total << ", instructions "
               << a.stats.instructions << " vs " << b.stats.instructions;
    if (a.output != b.output)
        return ::testing::AssertionFailure()
               << "output differs (" << a.output.size() << " vs "
               << b.output.size() << " bytes)";
    if (a.stop != b.stop)
        return ::testing::AssertionFailure()
               << "stop " << int(a.stop) << " vs " << int(b.stop);
    if (a.errorCode != b.errorCode)
        return ::testing::AssertionFailure()
               << "errorCode " << a.errorCode << " vs " << b.errorCode;
    if (a.exitValue != b.exitValue)
        return ::testing::AssertionFailure()
               << "exitValue " << a.exitValue << " vs " << b.exitValue;
    if (a.faultIndex != b.faultIndex)
        return ::testing::AssertionFailure()
               << "faultIndex " << a.faultIndex << " vs " << b.faultIndex;
    if (a.gcCount != b.gcCount || a.heapUsed != b.heapUsed)
        return ::testing::AssertionFailure()
               << "GC cells differ: " << a.gcCount << "/" << a.heapUsed
               << " vs " << b.gcCount << "/" << b.heapUsed;
    return ::testing::AssertionSuccess();
}

/** Interpreter-vs-translated differential for one compiled cell. */
::testing::AssertionResult
differential(const CompiledUnit &unit, uint64_t maxCycles)
{
    auto tr = translateUnit(unit);
    if (!tr.unit)
        return ::testing::AssertionFailure()
               << "translation refused: " << tr.note;
    RunControls rc;
    rc.maxCycles = maxCycles;
    RunResult a = runUnitOn(unit, unit.memory, rc);
    TranslatedControls tc;
    tc.maxCycles = maxCycles;
    RunResult b = runTranslated(unit, *tr.unit, unit.memory, tc);
    return sameResult(a, b);
}

} // namespace

// ---------------------------------------------------------------------
// The differential matrix: ten programs × (2 baselines + Table 2 rows)
// × both checking levels. One test per program so failures name the
// program and ctest can parallelize the matrix.
// ---------------------------------------------------------------------

class BackendDifferential : public ::testing::TestWithParam<int>
{
};

TEST_P(BackendDifferential, ByteIdenticalAcrossConfigs)
{
    const auto &bp = benchmarkPrograms()[size_t(GetParam())];
    std::vector<CompilerOptions> configs;
    configs.push_back(baselineOptions(Checking::Off));
    configs.push_back(baselineOptions(Checking::Full));
    for (const auto &cfg : table2Configs()) {
        configs.push_back(cfg.withChecking(Checking::Off));
        configs.push_back(cfg.withChecking(Checking::Full));
    }
    ASSERT_GE(configs.size(), 16u);
    for (size_t i = 0; i < configs.size(); ++i) {
        CompilerOptions opts = configs[i];
        opts.heapBytes = bp.heapBytes;
        CompiledUnit unit = compileUnit(bp.source, opts);
        EXPECT_TRUE(differential(unit, bp.maxCycles))
            << bp.name << " config #" << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPrograms, BackendDifferential, ::testing::Range(0, 10),
    [](const ::testing::TestParamInfo<int> &info) {
        return benchmarkPrograms()[size_t(info.param)].name;
    });

TEST(Backend, BenchmarkSuiteHasTenPrograms)
{
    // Keeps the Range(0, 10) instantiation honest.
    EXPECT_EQ(benchmarkPrograms().size(), 10u);
}

// ---------------------------------------------------------------------
// Trap paths. The generic-arithmetic hardware latches the operands and
// vectors to the software bignum fallback; Addt and Subt report
// different trap operation codes (abi::scratch = 1 vs 2), so both
// directions get their own overflow.
// ---------------------------------------------------------------------

TEST(Backend, OverflowTrapPathsMatch)
{
    const char *const sources[] = {
        "(print (+ 40000000 40000000))",  // Addt overflow
        "(print (- -40000000 40000000))", // Subt overflow
        "(print (+ (- -40000000 40000000) (+ 40000000 40000000)))",
    };
    for (const char *src : sources)
        for (ArithMode mode :
             {ArithMode::InlineBiased, ArithMode::ForceDispatch}) {
            CompilerOptions opts;
            opts.scheme = SchemeKind::High5;
            opts.checking = Checking::Full;
            opts.arithMode = mode;
            opts.hw.genericArith = true;
            CompiledUnit unit = compileUnit(src, opts);
            EXPECT_TRUE(differential(unit, kDefaultMaxCycles))
                << src << " mode " << int(mode);
        }
}

TEST(Backend, UnhandledTrapEncodingMatches)
{
    // With handler installation off, the hardware trap must stop the
    // run with the interpreter's exact unhandled-trap error encoding.
    CompilerOptions opts;
    opts.scheme = SchemeKind::High5;
    opts.checking = Checking::Full;
    opts.hw.genericArith = true;
    CompiledUnit unit = compileUnit("(print (+ 40000000 40000000))", opts);
    auto tr = translateUnit(unit);
    ASSERT_TRUE(tr.unit) << tr.note;
    RunControls rc;
    rc.installUnitTrapHandlers = false;
    RunResult a = runUnitOn(unit, unit.memory, rc);
    TranslatedControls tc;
    tc.installTrapHandlers = false;
    RunResult b = runTranslated(unit, *tr.unit, unit.memory, tc);
    EXPECT_EQ(a.stop, StopReason::Errored);
    EXPECT_NE(a.errorCode, 0);
    EXPECT_TRUE(sameResult(a, b));
}

TEST(Backend, CycleLimitStopsAreIdentical)
{
    // A mid-run cycle guard must fire on the same cycle in both
    // backends, even when it lands inside a fused pair or a control
    // group's delay slots.
    CompiledUnit unit =
        compileUnit(kLoop, baselineOptions(Checking::Full));
    for (uint64_t limit : {100ull, 1001ull, 5002ull, 20003ull})
        EXPECT_TRUE(differential(unit, limit)) << "limit " << limit;
}

// ---------------------------------------------------------------------
// The Engine's two-tier policy.
// ---------------------------------------------------------------------

TEST(Backend, EngineStampsBackendAndTiersMatch)
{
    Engine eng(1);
    RunRequest req = request(kLoop, Checking::Full); // default: Auto
    RunReport t = eng.run(req);
    ASSERT_TRUE(t.ok()) << t.status.message;
    EXPECT_EQ(t.backend, Backend::Translated);
    EXPECT_FALSE(t.backendFellBack);

    req.exec.backend = Backend::Interpreter;
    RunReport i = eng.run(req);
    ASSERT_TRUE(i.ok());
    EXPECT_EQ(i.backend, Backend::Interpreter);
    EXPECT_TRUE(sameResult(t.result, i.result));

    req.exec.backend = Backend::Translated;
    RunReport e = eng.run(req);
    ASSERT_TRUE(e.ok());
    EXPECT_EQ(e.backend, Backend::Translated);
    EXPECT_TRUE(sameResult(t.result, e.result));
}

TEST(Backend, AutoFallbackStampsAndCounts)
{
    Engine eng(1);
    Counter &fallbacks = eng.metrics().counter("engine.backend.fallbacks");
    uint64_t before = fallbacks.value();

    RunRequest req = request(kLoop, Checking::Full);
    req.hooks.collectProfile = true; // interpreter-only seam
    RunReport rep = eng.run(req);
    ASSERT_TRUE(rep.ok()) << rep.status.message;
    EXPECT_EQ(rep.backend, Backend::Interpreter);
    EXPECT_TRUE(rep.backendFellBack);
    EXPECT_FALSE(rep.backendNote.empty());
    EXPECT_EQ(fallbacks.value(), before + 1);
    ASSERT_TRUE(rep.result.profile); // the hook was honored
    EXPECT_EQ(rep.result.profile->totalCycles(), rep.result.stats.total);
}

TEST(Backend, ExplicitTranslatedRefusesInterpreterSeams)
{
    Engine eng(1);
    RunRequest req = request(kLoop, Checking::Off);
    req.exec.backend = Backend::Translated;
    req.hooks.collectProfile = true;
    RunReport rep = eng.run(req);
    EXPECT_FALSE(rep.ok());
    EXPECT_EQ(rep.status.code, RunStatus::Code::InternalError);
    EXPECT_NE(rep.status.message.find("translated backend unavailable"),
              std::string::npos)
        << rep.status.message;
}

TEST(Backend, FallbackPreservesPauseResumeSemantics)
{
    // A pause/snapshot request drops the cell to the interpreter tier;
    // the resulting run must still be byte-identical to the translated
    // run of the same cell — the tier fallback composes with PR-5's
    // pause-is-invisible invariant.
    Engine eng(1);
    RunRequest plain = request(kLoop, Checking::Full);
    RunReport t = eng.run(plain);
    ASSERT_TRUE(t.ok());
    ASSERT_EQ(t.backend, Backend::Translated);

    RunRequest paused = plain;
    paused.hooks.pauseAtCycle = 2000;
    bool hooked = false;
    paused.hooks.snapshotHook = [&](MachineSnapshot &,
                                    const CompiledUnit &) { hooked = true; };
    RunReport p = eng.run(paused);
    ASSERT_TRUE(p.ok()) << p.status.message;
    EXPECT_EQ(p.backend, Backend::Interpreter);
    EXPECT_TRUE(p.backendFellBack);
    EXPECT_TRUE(hooked);
    EXPECT_TRUE(p.result.snapshotTaken);
    EXPECT_TRUE(sameResult(t.result, p.result));
}

TEST(Backend, CacheKeysAreTieredByBackend)
{
    CompilerOptions opts = baselineOptions(Checking::Off);
    std::string i = Engine::cacheKey(kLoop, opts, Backend::Interpreter);
    std::string t = Engine::cacheKey(kLoop, opts, Backend::Translated);
    std::string a = Engine::cacheKey(kLoop, opts, Backend::Auto);
    EXPECT_NE(i, t);
    EXPECT_EQ(a, t); // Auto shares the translated tier's entry
}

TEST(Backend, GridMixesBackendsDeterministically)
{
    // One grid with Auto, pinned-interpreter, and fallback cells: the
    // reports must carry per-cell backend stamps and identical stats.
    Engine eng(2);
    std::vector<RunRequest> reqs(3, request(kLoop, Checking::Full));
    reqs[1].exec.backend = Backend::Interpreter;
    reqs[2].hooks.collectProfile = true;
    auto reps = eng.runGrid(reqs);
    ASSERT_EQ(reps.size(), 3u);
    for (const auto &r : reps)
        ASSERT_TRUE(r.ok()) << r.status.message;
    EXPECT_EQ(reps[0].backend, Backend::Translated);
    EXPECT_EQ(reps[1].backend, Backend::Interpreter);
    EXPECT_EQ(reps[2].backend, Backend::Interpreter);
    EXPECT_TRUE(reps[2].backendFellBack);
    EXPECT_TRUE(sameResult(reps[0].result, reps[1].result));
    EXPECT_TRUE(sameResult(reps[0].result, reps[2].result));
}

// ---------------------------------------------------------------------
// Translator refusals: diagnosed, never mistranslated.
// ---------------------------------------------------------------------

TEST(Backend, RefusalsAreDiagnosed)
{
    // CompiledUnit is move-only; compile one per mutation.
    CompiledUnit empty =
        compileUnit(kLoop, baselineOptions(Checking::Off));
    empty.prog.code.clear();
    auto r1 = translateUnit(empty);
    EXPECT_EQ(r1.unit, nullptr);
    EXPECT_NE(r1.note.find("empty"), std::string::npos) << r1.note;

    CompiledUnit bad = compileUnit(kLoop, baselineOptions(Checking::Off));
    bad.entry = int(bad.prog.code.size()) + 7;
    auto r2 = translateUnit(bad);
    EXPECT_EQ(r2.unit, nullptr);
    EXPECT_NE(r2.note.find("entry"), std::string::npos) << r2.note;
}

TEST(Backend, DeadlineExpiresUnderTranslatedBackend)
{
    // The translated executor shares the interpreter's chunked
    // wall-clock deadline (kDeadlineChunkCycles in both run loops): a
    // pinned-Translated spin must time out there, not fall back, and
    // come back with the same Timeout encoding the interpreter uses.
    Engine eng(1);
    RunRequest spin;
    spin.source = "(setq i 0) (while t (setq i (add1 i)))";
    spin.opts = baselineOptions(Checking::Off);
    spin.exec.backend = Backend::Translated;
    spin.exec.deadlineSeconds = 0.2;
    spin.exec.maxCycles = ~0ull; // the deadline, not the budget, stops it
    RunReport rep = eng.run(spin);
    EXPECT_EQ(rep.backend, Backend::Translated);
    EXPECT_FALSE(rep.backendFellBack);
    EXPECT_EQ(rep.status.code, RunStatus::Code::Timeout);
    EXPECT_TRUE(rep.result.timedOut);
    EXPECT_EQ(rep.result.stop, StopReason::CycleLimit);
    EXPECT_EQ(eng.metrics().counter("engine.timeouts").value(), 1u);

    // The engine is not wedged: the same source under a generous
    // deadline completes normally on the translated tier.
    RunRequest fine = spin;
    fine.source = kLoop;
    fine.exec.maxCycles = kDefaultMaxCycles;
    fine.exec.deadlineSeconds = 60;
    RunReport ok = eng.run(fine);
    EXPECT_TRUE(ok.ok());
    EXPECT_EQ(ok.backend, Backend::Translated);
    EXPECT_FALSE(ok.result.timedOut);
}

TEST(Backend, BackendNamesAreStable)
{
    EXPECT_STREQ(backendName(Backend::Auto), "auto");
    EXPECT_STREQ(backendName(Backend::Interpreter), "interpreter");
    EXPECT_STREQ(backendName(Backend::Translated), "translated");
}
