/**
 * @file
 * mxl-client: command-line client for mxl-served (serve/client.h).
 *
 * Sends one request and prints the responses as JSONL, one line per
 * streamed cell report plus a final summary line. Exit status: 0 on
 * "done" with no failed cells, 3 on "done" with failures, 4 when shed
 * ("overloaded"), 1 on server error or transport failure.
 *
 * Usage:
 *   mxl-client --socket PATH [options] [verb]
 *     verbs: health | ping | grid (default grid)
 *     --socket PATH       connect over the Unix-domain socket
 *     --tcp HOST:PORT     connect over TCP instead
 *     --program NAME      add a cell running a built-in benchmark
 *                         (repeatable; default one 'inter' cell)
 *     --source LISP       add a cell running the given forms
 *     --scheme NAME       tag scheme for subsequent cells
 *     --checking off|full checking level for subsequent cells
 *     --deadline-ms N     request deadline, propagated server-side
 *     --id STRING         request id echoed in responses
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "serve/client.h"

using namespace mxl;

namespace {

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s (--socket PATH | --tcp HOST:PORT) [--program NAME]* "
        "[--source LISP]* [--scheme NAME] [--checking off|full] "
        "[--deadline-ms N] [--id STR] [health|ping|grid]\n",
        argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socketPath, tcpHost, id = "cli";
    int tcpPort = 0;
    int64_t deadlineMs = 0;
    std::string verb = "grid";
    std::string scheme, checking;
    std::vector<Json> cells;

    auto makeCell = [&](const char *key, const std::string &value) {
        Json cell = Json::object();
        cell.set(key, value);
        if (!scheme.empty() || !checking.empty()) {
            Json o = Json::object();
            if (!scheme.empty())
                o.set("scheme", scheme);
            if (!checking.empty())
                o.set("checking", checking);
            cell.set("options", std::move(o));
        }
        cells.push_back(std::move(cell));
    };

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--socket")
            socketPath = value();
        else if (arg == "--tcp") {
            std::string hp = value();
            size_t colon = hp.rfind(':');
            if (colon == std::string::npos)
                return usage(argv[0]);
            tcpHost = hp.substr(0, colon);
            tcpPort = std::atoi(hp.c_str() + colon + 1);
        } else if (arg == "--program")
            makeCell("program", value());
        else if (arg == "--source")
            makeCell("source", value());
        else if (arg == "--scheme")
            scheme = value();
        else if (arg == "--checking")
            checking = value();
        else if (arg == "--deadline-ms")
            deadlineMs = std::atol(value());
        else if (arg == "--id")
            id = value();
        else if (arg == "health" || arg == "ping" || arg == "grid")
            verb = arg;
        else
            return usage(argv[0]);
    }
    if (socketPath.empty() && tcpHost.empty())
        return usage(argv[0]);

    ServeClient client;
    std::string err;
    bool ok = socketPath.empty()
                  ? client.connectTcp(tcpHost, tcpPort, &err)
                  : client.connectUnix(socketPath, &err);
    if (!ok) {
        std::fprintf(stderr, "mxl-client: %s\n", err.c_str());
        return 1;
    }

    if (verb == "ping") {
        if (!client.ping(&err)) {
            std::fprintf(stderr, "mxl-client: %s\n", err.c_str());
            return 1;
        }
        std::printf("{\"type\":\"pong\"}\n");
        return 0;
    }
    if (verb == "health") {
        Json health;
        if (!client.health(&health, &err)) {
            std::fprintf(stderr, "mxl-client: %s\n", err.c_str());
            return 1;
        }
        std::printf("%s\n", health.dump().c_str());
        return 0;
    }

    if (cells.empty()) {
        Json cell = Json::object();
        cell.set("program", "inter");
        cells.push_back(std::move(cell));
    }
    ServeClient::GridOutcome outcome = client.runGrid(
        id, cells, deadlineMs, [](size_t index, const Json &report) {
            std::printf("{\"index\":%zu,\"report\":%s}\n", index,
                        report.dump().c_str());
        });
    switch (outcome.kind) {
    case ServeClient::GridOutcome::Kind::Done:
        // traceId is the handle to this request's spans in the server's
        // --trace output and its lines in the --log event stream.
        std::printf("{\"type\":\"done\",\"cells\":%zu,\"failed\":%zu,"
                    "\"traceId\":%s}\n",
                    outcome.cells, outcome.failed,
                    Json(outcome.traceId).dump().c_str());
        return outcome.failed == 0 ? 0 : 3;
    case ServeClient::GridOutcome::Kind::Overloaded:
        std::printf("{\"type\":\"overloaded\",\"retryAfterMs\":%lld}\n",
                    static_cast<long long>(outcome.retryAfterMs));
        return 4;
    case ServeClient::GridOutcome::Kind::Error:
        std::fprintf(stderr, "mxl-client: server error: %s\n",
                     outcome.message.c_str());
        return 1;
    case ServeClient::GridOutcome::Kind::Transport:
        break;
    }
    std::fprintf(stderr, "mxl-client: %s\n", outcome.message.c_str());
    return 1;
}
