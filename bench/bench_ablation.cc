/**
 * Ablations on the design choices DESIGN.md calls out:
 *  - delay-slot filling on/off (how much the scheduler matters);
 *  - §6.2.1 check overlap (protected op in the squashing slots);
 *  - the four tag schemes head to head at both checking settings.
 */

#include <cstdio>

#include "core/engine.h"
#include "core/experiment.h"
#include "core/report.h"
#include "core/run.h"
#include "programs/programs.h"
#include "support/stats.h"
#include "support/format.h"
#include "support/table.h"

using namespace mxl;

namespace {

double
averageCycles(Engine &eng, const CompilerOptions &base)
{
    double sum = 0;
    for (const auto &r : runPrograms(eng, base))
        sum += static_cast<double>(r.stats.total);
    return sum;
}

} // namespace

int
main()
{
    std::printf("Ablations (ten-program aggregate cycles, relative to "
                "the baseline)\n\n");

    Engine eng;
    for (Checking chk : {Checking::Off, Checking::Full}) {
        const char *mode = chk == Checking::Full ? "checking" : "no-check";
        double base = averageCycles(eng, baselineOptions(chk));

        auto rel = [&](CompilerOptions o) {
            return 100.0 * (base - averageCycles(eng, o)) / base;
        };

        TextTable t;
        t.addRow({strcat("variant (", mode, ")"), "cycles saved"});

        CompilerOptions noFill = baselineOptions(chk);
        noFill.fillDelaySlots = false;
        t.addRow({"no delay-slot filling", percent(rel(noFill))});

        CompilerOptions overlap = baselineOptions(chk);
        overlap.overlapChecks = true;
        t.addRow({"6.2.1 check overlap", percent(rel(overlap))});

        for (SchemeKind sk : {SchemeKind::High6, SchemeKind::Low2,
                              SchemeKind::Low3}) {
            CompilerOptions o = baselineOptions(chk);
            o.scheme = sk;
            t.addRow({strcat("scheme ", schemeKindName(sk)),
                      percent(rel(o))});
        }
        std::printf("%s\n", t.render().c_str());
    }

    std::printf("notes:\n");
    std::printf("  - negative numbers mean the variant is slower than "
                "the baseline\n");
    std::printf("  - the low-tag rows are the paper's 'software "
                "schemes ... very attractive' result\n");
    std::printf("  - check overlap approaches the hardware rows "
                "without any hardware\n");
    return 0;
}
