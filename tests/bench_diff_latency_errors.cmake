# Exit-code and diagnostic tests for bench_diff --latency: the p95/p99
# gate over BENCH_serve.json service histograms must keep the tool's
# exit contract (0 pass, 1 regression, 2 bad input/usage) and diagnose
# each bad-input shape distinctly — a missing artifact, a document with
# no service histograms, and a malformed histogram entry are three
# different operator mistakes and must read as such.
#
# ctest can assert PASS/FAIL but not specific exit codes, so this runs
# as a -P script:
#   cmake -DBENCH_DIFF=<path-to-binary> -P bench_diff_latency_errors.cmake

if(NOT DEFINED BENCH_DIFF)
  message(FATAL_ERROR "pass -DBENCH_DIFF=<path to bench_diff>")
endif()

set(workdir "${CMAKE_CURRENT_BINARY_DIR}/bench_diff_latency_errors.tmp")
file(REMOVE_RECURSE "${workdir}")
file(MAKE_DIRECTORY "${workdir}")

file(WRITE "${workdir}/empty.json" "")
file(WRITE "${workdir}/garbage.json" "this is { not json")
file(MAKE_DIRECTORY "${workdir}/a_directory")

# A healthy artifact: p95/p99 land in the 8192-lower-bound bucket,
# clamped to the observed max of 9000us.
file(WRITE "${workdir}/base.json" [=[
{"metrics": {"histograms": {
  "serve.e2e_micros": {"count": 100, "sum": 500000, "max": 9000,
                       "buckets": {"1024": 90, "8192": 10}},
  "serve.exec_micros": {"count": 100, "sum": 400000, "max": 7000,
                        "buckets": {"1024": 95, "4096": 5}}}}}
]=])

# The same shape with tail latency blown out ~200x.
file(WRITE "${workdir}/regressed.json" [=[
{"metrics": {"histograms": {
  "serve.e2e_micros": {"count": 100, "sum": 99000000, "max": 2000000,
                       "buckets": {"1048576": 100}},
  "serve.exec_micros": {"count": 100, "sum": 400000, "max": 7000,
                        "buckets": {"1024": 95, "4096": 5}}}}}
]=])

# Valid JSON that simply is not a BENCH_serve export.
file(WRITE "${workdir}/no_metrics.json" [=[
{"grid": [{"label": "x", "statusOk": true}]}
]=])

# metrics.histograms present but none of the serve.*_micros names.
file(WRITE "${workdir}/no_serve_hists.json" [=[
{"metrics": {"histograms": {"engine.run_micros":
  {"count": 5, "sum": 50, "max": 20, "buckets": {"16": 5}}}}}
]=])

# Two malformed-entry shapes, each with its own diagnostic.
file(WRITE "${workdir}/bad_count.json" [=[
{"metrics": {"histograms": {"serve.e2e_micros":
  {"count": "nope", "buckets": {}}}}}
]=])
file(WRITE "${workdir}/bad_bucket_key.json" [=[
{"metrics": {"histograms": {"serve.e2e_micros":
  {"count": 1, "max": 3, "buckets": {"abc": 1}}}}}
]=])

set(failures 0)

# expect_case(<name> <expected-rc> <output-substring> <args...>)
function(expect_case name expected_rc expected_text)
  execute_process(
    COMMAND "${BENCH_DIFF}" ${ARGN}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  set(ok TRUE)
  if(NOT rc EQUAL ${expected_rc})
    set(ok FALSE)
    message(WARNING "${name}: exit ${rc}, expected ${expected_rc}")
  endif()
  if(NOT "${expected_text}" STREQUAL "" AND
     NOT "${err}${out}" MATCHES "${expected_text}")
    set(ok FALSE)
    message(WARNING
            "${name}: diagnostic missing \"${expected_text}\";\n"
            "output was: ${err}${out}")
  endif()
  if(ok)
    message(STATUS "PASS  ${name}")
  else()
    math(EXPR n "${failures} + 1")
    set(failures ${n} PARENT_SCOPE)
  endif()
endfunction()

set(missing "${workdir}/does_not_exist.json")
set(base "${workdir}/base.json")

# Artifact-loading failures keep their existing distinct diagnostics.
expect_case(latency_missing_before 2 "does_not_exist"
            --latency "${missing}" "${base}")
expect_case(latency_missing_after 2 "does_not_exist"
            --latency "${base}" "${missing}")
expect_case(latency_directory 2 "not a regular file"
            --latency "${workdir}/a_directory" "${base}")
expect_case(latency_empty 2 "is empty"
            --latency "${workdir}/empty.json" "${base}")
expect_case(latency_garbage 2 "not valid JSON"
            --latency "${workdir}/garbage.json" "${base}")

# Valid JSON without service histograms: named as such, never a verdict.
expect_case(latency_no_metrics 2 "no service latency histograms"
            --latency "${workdir}/no_metrics.json" "${base}")
expect_case(latency_no_serve_hists 2 "no service latency histograms"
            --latency "${workdir}/no_serve_hists.json" "${base}")

# Malformed entries are diagnosed per-field, not as a parse error.
expect_case(latency_bad_count 2 "'count' is not a number"
            --latency "${workdir}/bad_count.json" "${base}")
expect_case(latency_bad_bucket_key 2 "not a decimal lower bound"
            --latency "${workdir}/bad_bucket_key.json" "${base}")

# Usage errors: --latency needs exactly two paths and composes with
# neither --coverage nor --backends.
expect_case(latency_one_path 2 "usage" --latency "${base}")
expect_case(latency_with_coverage 2 "usage"
            --latency --coverage "${base}" "${base}")
expect_case(latency_with_backends 2 "usage"
            --latency --backends "${base}")

# Verdict sanity: self-diff passes, a blown-out tail fails even at a
# 50% threshold, and an absurd threshold waves the same pair through.
expect_case(latency_self_diff 0 "PASS" --latency "${base}" "${base}")
expect_case(latency_regression 1 "FAIL"
            --latency --threshold 50 "${base}" "${workdir}/regressed.json")
expect_case(latency_huge_threshold 0 "PASS"
            --latency --threshold 10000000
            "${base}" "${workdir}/regressed.json")

file(REMOVE_RECURSE "${workdir}")

if(failures GREATER 0)
  message(FATAL_ERROR
          "${failures} bench_diff --latency error-path case(s) failed")
endif()
message(STATUS "all bench_diff --latency error-path cases passed")
