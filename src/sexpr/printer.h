/**
 * @file
 * S-expression printer (diagnostics and expected-output generation).
 */

#ifndef MXLISP_SEXPR_PRINTER_H_
#define MXLISP_SEXPR_PRINTER_H_

#include <string>

#include "sexpr/sexpr.h"

namespace mxl {

/** Render @p form in standard list notation. */
std::string printSx(const Sx *form);

} // namespace mxl

#endif // MXLISP_SEXPR_PRINTER_H_
