#include "analysis/checkelim.h"

#include "analysis/cfg.h"
#include "analysis/tagflow.h"
#include "machine/machine.h"
#include "support/format.h"
#include "support/panic.h"

namespace mxl {

namespace {

std::vector<int>
unitRoots(const CompiledUnit &unit)
{
    std::vector<int> roots;
    for (int r : {unit.entry, unit.arithTrap, unit.tagTrap})
        if (r >= 0)
            roots.push_back(r);
    return roots;
}

/**
 * Is @p r provably dead after the (removed) branch at @p from?
 * Scans forward over kept instructions: a read makes it live, a write
 * kills it, a call kills caller-clobbered temps; any other control
 * transfer (after its delay slots) ends the scan conservatively.
 */
bool
regDeadAfter(const Program &prog, const std::vector<bool> &remove,
             int from, Reg r)
{
    const int n = static_cast<int>(prog.code.size());
    int budget = 64;
    auto callClobbers = [&](Reg x) {
        return (x >= abi::tmp0 && x <= abi::tmpLast) || x == abi::scratch;
    };
    for (int i = from; i < n && budget > 0; ++i) {
        if (remove[i])
            continue;
        --budget;
        const Instruction &q = prog.code[i];
        Reg reads[3];
        int nr = 0;
        q.readRegs(reads, nr);
        for (int k = 0; k < nr; ++k)
            if (reads[k] == r)
                return false;
        if (isControl(q.op)) {
            // The two delay slots still execute; inspect them, then
            // give up on following the transfer.
            for (int s = i + 1; s <= i + 2 && s < n; ++s) {
                if (remove[s])
                    continue;
                const Instruction &si = prog.code[s];
                int snr = 0;
                si.readRegs(reads, snr);
                for (int k = 0; k < snr; ++k)
                    if (reads[k] == r)
                        return false;
            }
            for (int s = i + 1; s <= i + 2 && s < n; ++s)
                if (!remove[s] && prog.code[s].writeReg() == int{r})
                    return true;
            if ((q.op == Opcode::Jal || q.op == Opcode::Jalr) &&
                callClobbers(r))
                return true;
            return false;
        }
        if (q.writeReg() == int{r})
            return true;
    }
    return false;
}

} // namespace

CompiledUnit
cloneUnit(const CompiledUnit &unit)
{
    CompiledUnit out;
    out.prog = unit.prog;
    out.memory = unit.memory;
    out.scheme = makeScheme(unit.opts.scheme);
    out.opts = unit.opts;
    out.layout = unit.layout;
    out.entry = unit.entry;
    out.arithTrap = unit.arithTrap;
    out.tagTrap = unit.tagTrap;
    out.fnCells = unit.fnCells;
    out.procedures = unit.procedures;
    out.objectWords = unit.objectWords;
    out.sourceLines = unit.sourceLines;
    return out;
}

ElimStats
eliminateRedundantChecks(CompiledUnit &unit)
{
    ElimStats st;
    Program &prog = unit.prog;
    const int n = static_cast<int>(prog.code.size());
    Cfg cfg = buildCfg(prog, unitRoots(unit));
    if (!cfg.ok()) {
        st.skipped = true;
        st.diagnostic = strcat("malformed CFG (", cfg.malformed.size(),
                               " structural violation(s)); first at pc ",
                               cfg.malformed.front().pc, ": ",
                               cfg.malformed.front().what);
        return st;
    }
    TagFlow flow(prog, cfg, *unit.scheme);
    flow.solve();

    std::vector<bool> remove(static_cast<size_t>(n), false);
    for (size_t b = 0; b < cfg.blocks.size(); ++b) {
        const CfgBlock &blk = cfg.blocks[b];
        if (!cfg.reachable[b] || blk.xfer < 0)
            continue;
        const Instruction &x = prog.code[blk.xfer];
        if (!isCondBranch(x.op) || x.ann.purpose != Purpose::TagCheck ||
            !x.ann.fromChecking)
            continue;
        ++st.checksConsidered;
        const TagState s = flow.stateAtXfer(static_cast<int>(b));
        if (!s.reachable || !flow.edgeDead(s, x, /*taken=*/true))
            continue;

        // The error edge is provably dead: delete the branch and its
        // Noop pads (filled slots carry fall-path work and stay).
        ++st.checksEliminated;
        remove[blk.xfer] = true;
        ++st.instructionsRemoved;
        for (int sidx = blk.xfer + 1; sidx <= blk.xfer + 2; ++sidx) {
            if (prog.code[sidx].op == Opcode::Noop) {
                remove[sidx] = true;
                ++st.padsRemoved;
                ++st.instructionsRemoved;
            }
        }

        // Its tag-extract feeders immediately above die with it when
        // nothing else consumes the extracted temp.
        std::vector<int> feeders;
        for (int f = blk.xfer - 1; f >= blk.first; --f) {
            const Instruction &q = prog.code[f];
            if (cfg.slotOf[f] != -1 || remove[f])
                break;
            if (q.writeReg() != int{x.rs} ||
                q.ann.purpose != Purpose::TagExtract || !q.ann.fromChecking)
                break;
            feeders.push_back(f);
        }
        if (!feeders.empty() &&
            regDeadAfter(prog, remove, blk.xfer + 1, x.rs)) {
            for (int f : feeders) {
                remove[f] = true;
                ++st.extractsRemoved;
                ++st.instructionsRemoved;
            }
        }
    }
    if (st.instructionsRemoved == 0)
        return st;

    // Refuse a unit whose trap-handler table points at an instruction
    // this rewrite would delete: silently renumbering the handler to
    // the next kept instruction would change what runs on a trap.
    // (Branch targets and symbols are safe under that renumbering —
    // execution continues at the next kept instruction either way —
    // but a trap handler entry is an architectural contract.)
    for (const auto &[what, idx] :
         {std::pair<const char *, int>{"entry", unit.entry},
          {"arith trap handler", unit.arithTrap},
          {"tag trap handler", unit.tagTrap}}) {
        if (idx >= 0 && idx < n && remove[idx]) {
            st = ElimStats{};
            st.skipped = true;
            st.diagnostic =
                strcat(what, " at pc ", idx,
                       " references an instruction the rewrite would "
                       "delete; unit refused");
            return st;
        }
    }

    // Renumber: every target/symbol maps to the first kept instruction
    // at or after its old index.
    std::vector<int> mapFwd(static_cast<size_t>(n) + 1, 0);
    int ni = 0;
    for (int i = 0; i < n; ++i) {
        mapFwd[i] = ni;
        if (!remove[i])
            ++ni;
    }
    mapFwd[n] = ni;

    std::vector<Instruction> code;
    code.reserve(static_cast<size_t>(ni));
    for (int i = 0; i < n; ++i) {
        if (remove[i])
            continue;
        Instruction q = prog.code[i];
        if (q.target >= 0 && q.target <= n)
            q.target = mapFwd[q.target];
        code.push_back(q);
    }
    prog.code = std::move(code);
    for (auto &[name, idx] : prog.symbols) {
        (void)name;
        if (idx >= 0 && idx <= n)
            idx = mapFwd[idx];
    }
    auto renum = [&](int &idx) {
        if (idx >= 0 && idx <= n)
            idx = mapFwd[idx];
    };
    renum(unit.entry);
    renum(unit.arithTrap);
    renum(unit.tagTrap);
    unit.objectWords = static_cast<int>(prog.code.size());

    // Function cells in the image hold absolute code addresses.
    for (const auto &[sym, addr] : unit.fnCells) {
        const int idx = prog.symbol(sym);
        MXL_ASSERT(idx >= 0, "function cell for unknown symbol ", sym);
        unit.memory.word(addr >> 2) = Machine::codeAddr(idx);
    }
    return st;
}

std::shared_ptr<const CompiledUnit>
checkElimTransform(const std::shared_ptr<const CompiledUnit> &unit,
                   ElimStats *stats)
{
    auto copy = std::make_shared<CompiledUnit>(cloneUnit(*unit));
    ElimStats st = eliminateRedundantChecks(*copy);
    if (stats)
        *stats = st;
    return copy;
}

} // namespace mxl
