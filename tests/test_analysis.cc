/**
 * Tests for src/analysis/: the delay-slot-aware CFG, the tag-flow
 * dataflow solver, the mxlint verifier, and redundant-check
 * elimination.
 *
 * Hand-assembled programs exercise each layer in isolation (the
 * assembler emits unstamped annotations, so check idioms are annotated
 * by hand where a consumer keys on Purpose/CheckCat); the ten benchmark
 * programs then validate the whole stack: every seed unit lints clean,
 * and the check eliminator's rewrite is output-identical and
 * cycle-cheaper on every program, end to end through mxl::Engine.
 */

#include <gtest/gtest.h>

#include "analysis/cfg.h"
#include "analysis/checkelim.h"
#include "analysis/checkplace.h"
#include "analysis/dom.h"
#include "analysis/lint.h"
#include "analysis/tagflow.h"
#include "analysis/verify.h"
#include "compiler/linker.h"
#include "compiler/unit.h"
#include "core/engine.h"
#include "core/experiment.h"
#include "isa/assembler.h"
#include "machine/machine.h"
#include "programs/programs.h"
#include "support/panic.h"

namespace mxl {
namespace {

// High5: 5 tag bits at the top of the word, pair tag 9, shift 27.
constexpr int kShift = 27;
constexpr int kPair = 9;
constexpr int kSymbol = 5;
constexpr int64_t kPairWord = static_cast<int64_t>(kPair) << kShift;
constexpr int64_t kSymWord = static_cast<int64_t>(kSymbol) << kShift;

Annotation
checkAnn(Purpose p)
{
    return Annotation(p, CheckCat::List, /*fromChecking=*/true);
}

/** Stamp the Srli/Bnei pair at @p extract / @p extract+1 as a check. */
void
stampCheck(Program &p, int extract)
{
    p.code[static_cast<size_t>(extract)].ann =
        checkAnn(Purpose::TagExtract);
    p.code[static_cast<size_t>(extract) + 1].ann =
        checkAnn(Purpose::TagCheck);
}

// ---------------------------------------------------------------- CFG

TEST(Cfg, GroupsAndEdges)
{
    Program p = assemble(R"(
        f:
            add r3, r1, r2
            beq r1, r2, f
            addi r4, r4, 1
            addi r5, r5, 1
            sys halt, r0
    )");
    Cfg cfg = buildCfg(p);
    ASSERT_TRUE(cfg.ok());

    const int b0 = cfg.blockAt(0);
    const CfgBlock &blk = cfg.blocks[b0];
    EXPECT_EQ(blk.first, 0);
    EXPECT_EQ(blk.xfer, 1);
    EXPECT_EQ(blk.last, 3); // the two slots belong to the group
    EXPECT_EQ(cfg.slotOf[2], 1);
    EXPECT_EQ(cfg.slotOf[3], 1);
    EXPECT_EQ(cfg.slotOf[1], -1);

    ASSERT_EQ(blk.out.size(), 2u);
    bool sawTaken = false, sawFall = false;
    for (const CfgEdge &e : blk.out) {
        if (e.kind == CfgEdge::Kind::Taken) {
            sawTaken = true;
            EXPECT_EQ(e.to, b0);
            EXPECT_TRUE(e.slots); // annul Never: slots on both edges
        } else if (e.kind == CfgEdge::Kind::Fall) {
            sawFall = true;
            EXPECT_EQ(e.to, cfg.blockAt(4));
            EXPECT_TRUE(e.slots);
        }
    }
    EXPECT_TRUE(sawTaken && sawFall);
}

TEST(Cfg, SquashEdgesSkipSlots)
{
    Program p = assemble(R"(
        f:  beq.t r1, r2, f
            addi r4, r4, 1
            noop
            beq.nt r1, r2, f
            addi r5, r5, 1
            noop
            sys halt, r0
    )");
    Cfg cfg = buildCfg(p);
    ASSERT_TRUE(cfg.ok());
    for (const CfgEdge &e : cfg.blocks[cfg.blockAt(0)].out) {
        // annul OnTaken: slots execute on the fall-through edge only.
        if (e.kind == CfgEdge::Kind::Taken)
            EXPECT_FALSE(e.slots);
        else
            EXPECT_TRUE(e.slots);
    }
    for (const CfgEdge &e : cfg.blocks[cfg.blockAt(3)].out) {
        // annul OnNotTaken: slots execute on the taken edge only.
        if (e.kind == CfgEdge::Kind::Taken)
            EXPECT_TRUE(e.slots);
        else
            EXPECT_FALSE(e.slots);
    }
}

TEST(Cfg, ControlInDelaySlotIsMalformed)
{
    Program p = assemble(R"(
        f:
            beq r1, r2, f
            jal r31, f
            noop
            sys halt, r0
    )");
    Cfg cfg = buildCfg(p);
    EXPECT_FALSE(cfg.ok());
    ASSERT_FALSE(cfg.malformed.empty());
    EXPECT_EQ(cfg.malformed[0].pc, 1);
}

TEST(Cfg, UnreachableAfterJr)
{
    Program p = assemble(R"(
        f:
            jr r31
            noop
            noop
            addi r3, r3, 1
            sys halt, r0
    )");
    Cfg cfg = buildCfg(p);
    ASSERT_TRUE(cfg.ok());
    EXPECT_TRUE(cfg.reachable[cfg.blockAt(0)]);
    EXPECT_FALSE(cfg.reachable[cfg.blockAt(3)]);
}

// ------------------------------------------------------------ TagFlow

std::unique_ptr<TagScheme>
high5()
{
    return makeScheme(SchemeKind::High5);
}

TEST(TagFlow, ConstantsGiveExactTags)
{
    Program p = assemble("f: sys halt, r0\n");
    Cfg cfg = buildCfg(p);
    auto scheme = high5();
    TagFlow flow(p, cfg, *scheme);

    TagState s = flow.entryState();
    Instruction li;
    li.op = Opcode::Li;
    li.rd = 2;
    li.imm = scheme->encodeFixnum(5);
    flow.applyInst(s, li);
    EXPECT_EQ(s.regs[2].tags, uint64_t{1} << 0);
    EXPECT_TRUE(s.regs[2].fixnum);

    li.imm = kPairWord;
    flow.applyInst(s, li);
    EXPECT_EQ(s.regs[2].tags, uint64_t{1} << kPair);
    EXPECT_FALSE(s.regs[2].fixnum);

    // A negative fixnum carries the all-ones tag under High5.
    li.imm = scheme->encodeFixnum(-3);
    flow.applyInst(s, li);
    EXPECT_TRUE(s.regs[2].fixnum);
    EXPECT_EQ(s.regs[2].tags, uint64_t{1} << 31);
}

TEST(TagFlow, CheckRefinesSourceOnFallEdge)
{
    Program p = assemble(R"(
        f:
            srli r10, r2, 27
            bnei r10, 9, err
            noop
            noop
            ld r3, 0(r2)
            sys halt, r3
        err:
            sys error, r0
    )");
    const int errIdx = p.symbol("err");
    // The error label must not be a reachability root (roots get the
    // all-top entry state joined in, hiding the edge refinement).
    p.symbols.erase("err");
    Cfg cfg = buildCfg(p);
    auto scheme = high5();
    TagFlow flow(p, cfg, *scheme);
    flow.solve();

    // Entry: r2 is an argument register, no facts.
    EXPECT_EQ(flow.blockIn(cfg.blockAt(0)).regs[2].tags, flow.topTags());
    // Falling past `bnei t, 9` proves tag(r2) == 9.
    const TagState &fall = flow.blockIn(cfg.blockAt(4));
    ASSERT_TRUE(fall.reachable);
    EXPECT_EQ(fall.regs[2].tags, uint64_t{1} << kPair);
    // The taken side proves the opposite: tag 9 is excluded.
    const TagState &err = flow.blockIn(cfg.blockAt(errIdx));
    ASSERT_TRUE(err.reachable);
    EXPECT_EQ(err.regs[2].tags & (uint64_t{1} << kPair), 0u);
}

TEST(TagFlow, JoinUnionsTags)
{
    Program p = assemble(R"(
        f:
            beq r1, r0, a
            noop
            noop
            li r2, 1207959552
            j m
            noop
            noop
        a:
            li r2, 671088640
        m:
            add r3, r2, r0
            sys halt, r3
    )");
    ASSERT_EQ(p.code[3].imm, kPairWord);
    ASSERT_EQ(p.code[7].imm, kSymWord);
    const int mIdx = p.symbol("m");
    // Interior labels must not be reachability roots (roots get the
    // all-top entry state joined in).
    p.symbols.erase("a");
    p.symbols.erase("m");

    Cfg cfg = buildCfg(p);
    auto scheme = high5();
    TagFlow flow(p, cfg, *scheme);
    flow.solve();
    const TagState &atM = flow.blockIn(cfg.blockAt(mIdx));
    ASSERT_TRUE(atM.reachable);
    EXPECT_EQ(atM.regs[2].tags,
              (uint64_t{1} << kPair) | (uint64_t{1} << kSymbol));
}

TEST(TagFlow, SecondCheckEdgeIsDead)
{
    Program p = assemble(R"(
        f:
            srli r10, r2, 27
            bnei r10, 9, err
            noop
            noop
            srli r10, r2, 27
            bnei r10, 9, err
            noop
            noop
            sys halt, r0
        err:
            sys error, r0
    )");
    Cfg cfg = buildCfg(p);
    auto scheme = high5();
    TagFlow flow(p, cfg, *scheme);
    flow.solve();

    const int b1 = cfg.blockAt(0);
    const int b2 = cfg.blockAt(4);
    // First check: r2 unknown, either edge possible.
    TagState s1 = flow.stateAtXfer(b1);
    EXPECT_FALSE(flow.edgeDead(s1, p.code[1], /*taken=*/true));
    EXPECT_FALSE(flow.edgeDead(s1, p.code[1], /*taken=*/false));
    // Second check: tag(r2) == 9 is already proven, the error edge is
    // dead.
    TagState s2 = flow.stateAtXfer(b2);
    EXPECT_TRUE(flow.edgeDead(s2, p.code[5], /*taken=*/true));
    EXPECT_FALSE(flow.edgeDead(s2, p.code[5], /*taken=*/false));
}

// --------------------------------------------------------------- lint

CompilerOptions
fullChecking()
{
    CompilerOptions opts;
    opts.checking = Checking::Full;
    return opts;
}

TEST(Lint, MalformedDelayGroupIsError)
{
    Program p = assemble(R"(
        f:
            beq r1, r2, f
            jal r31, f
            noop
            sys halt, r0
    )");
    auto scheme = high5();
    LintReport rep = lintProgram(p, *scheme, fullChecking());
    ASSERT_GE(rep.errors, 1);
    ASSERT_GE(rep.count(LintKind::MalformedDelayGroup), 1);
    const LintFinding &f = rep.findings[0];
    EXPECT_EQ(f.kind, LintKind::MalformedDelayGroup);
    EXPECT_EQ(f.pc, 1);
    EXPECT_EQ(f.where, "f+1");
}

TEST(Lint, UncheckedListAccessCaught)
{
    Program p = assemble(R"(
        f:
            ld r3, 0(r2)
            sys halt, r3
    )");
    p.code[0].ann = Annotation(Purpose::Useful, CheckCat::List);
    auto scheme = high5();
    LintReport rep = lintProgram(p, *scheme, fullChecking());
    ASSERT_EQ(rep.count(LintKind::UncheckedListAccess), 1);
    const LintFinding *f = nullptr;
    for (const auto &x : rep.findings)
        if (x.kind == LintKind::UncheckedListAccess)
            f = &x;
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->severity, LintSeverity::Error);
    EXPECT_EQ(f->pc, 0);
    EXPECT_EQ(f->where, "f");
    // The same access is clean under Checking::Off (there is no
    // promise to verify).
    CompilerOptions off;
    off.checking = Checking::Off;
    EXPECT_EQ(lintProgram(p, *scheme, off).errors, 0);
}

TEST(Lint, DominatedListAccessIsClean)
{
    Program p = assemble(R"(
        f:
            srli r10, r2, 27
            bnei r10, 9, err
            noop
            noop
            ld r3, 0(r2)
            sys halt, r3
        err:
            sys error, r0
    )");
    stampCheck(p, 0);
    p.code[4].ann = Annotation(Purpose::Useful, CheckCat::List);
    auto scheme = high5();
    LintReport rep = lintProgram(p, *scheme, fullChecking());
    EXPECT_EQ(rep.errors, 0);
    // ...and the ld feeds the sys in the next cycle: the interlock
    // stall is reported as Info.
    EXPECT_EQ(rep.count(LintKind::LoadDelayUse), 1);
}

TEST(Lint, TagClobberInSlotWarns)
{
    Program p = assemble(R"(
        f:
            srli r10, r2, 27
            bnei r10, 9, err
            li r2, 7
            noop
            sys halt, r0
        err:
            sys error, r0
    )");
    stampCheck(p, 0);
    auto scheme = high5();
    LintReport rep = lintProgram(p, *scheme, fullChecking());
    ASSERT_EQ(rep.count(LintKind::TagClobberInSlot), 1);
    for (const auto &f : rep.findings)
        if (f.kind == LintKind::TagClobberInSlot) {
            EXPECT_EQ(f.severity, LintSeverity::Warning);
            EXPECT_EQ(f.pc, 2);
            EXPECT_EQ(f.where, "f+2");
        }
}

TEST(Lint, CheckOutcomesProven)
{
    // r2 is a proven fixnum: a pair check on it always fails, and a
    // repeat of a passed check never fails.
    Program p = assemble(R"(
        f:
            li r2, 5
            srli r10, r2, 27
            bnei r10, 0, err
            noop
            noop
            srli r10, r2, 27
            bnei r10, 0, err
            noop
            noop
            srli r10, r2, 27
            bnei r10, 9, err
            noop
            noop
            sys halt, r0
        err:
            sys error, r0
    )");
    stampCheck(p, 1);
    stampCheck(p, 5);
    stampCheck(p, 9);
    auto scheme = high5();
    LintReport rep = lintProgram(p, *scheme, fullChecking());
    // Checks 1 and 2 pass (tag 0), so both are "never fails"; check 3
    // demands tag 9 and always fails.
    EXPECT_EQ(rep.count(LintKind::CheckNeverFails), 2);
    EXPECT_EQ(rep.count(LintKind::CheckAlwaysFails), 1);
}

TEST(Lint, AllSeedProgramsLintClean)
{
    auto lintAt = [](const BenchmarkProgram &bp, Checking checking) {
        CompilerOptions opts = baselineOptions(checking);
        opts.heapBytes = bp.heapBytes;
        CompiledUnit unit = compileUnit(bp.source, opts);
        LintReport rep = lintUnit(unit);
        EXPECT_EQ(rep.errors, 0)
            << bp.name << ": " << rep.render();
        EXPECT_EQ(rep.warnings, 0)
            << bp.name << ": " << rep.render();
    };
    for (const auto &bp : benchmarkPrograms()) {
        lintAt(bp, Checking::Full);
        lintAt(bp, Checking::Off);
    }
}

// ---------------------------------------------------- check elimination

/** A unit around @p p with High5 full-checking options. */
CompiledUnit
handUnit(Program p)
{
    CompiledUnit u;
    u.entry = p.symbol("f");
    u.prog = std::move(p);
    u.memory = Memory(4096);
    u.scheme = makeScheme(SchemeKind::High5);
    u.opts.scheme = SchemeKind::High5;
    u.opts.checking = Checking::Full;
    return u;
}

TEST(CheckElim, DeletesProvenChecksAndRelinks)
{
    Program p = assemble(R"(
        f:
            li r2, 1207959552
            srli r10, r2, 27
            bnei r10, 9, err
            noop
            noop
            srli r10, r2, 27
            bnei r10, 9, err
            noop
            noop
            li r10, 0
            sys halt, r10
        err:
            li r2, 1
            sys error, r2
    )");
    stampCheck(p, 1);
    stampCheck(p, 5);

    CompiledUnit u = handUnit(p);
    Machine before(u.prog, Memory(4096), {}, nullptr);
    before.run(u.entry);

    ElimStats st = eliminateRedundantChecks(u);
    EXPECT_FALSE(st.skipped);
    EXPECT_EQ(st.checksConsidered, 2);
    EXPECT_EQ(st.checksEliminated, 2); // both dominated by the li
    EXPECT_EQ(st.extractsRemoved, 2);
    EXPECT_EQ(st.padsRemoved, 4);
    EXPECT_EQ(st.instructionsRemoved, 8);
    ASSERT_EQ(u.prog.code.size(), 5u);

    // The err label moved with the renumbering.
    EXPECT_EQ(u.prog.symbol("err"), 3);
    EXPECT_EQ(u.prog.symbol("f"), 0);
    EXPECT_EQ(u.entry, 0);

    Machine after(u.prog, Memory(4096), {}, nullptr);
    after.run(u.entry);
    EXPECT_EQ(after.stopReason(), before.stopReason());
    EXPECT_EQ(after.exitValue(), before.exitValue());
    EXPECT_EQ(after.output(), before.output());
    EXPECT_LT(after.stats().total, before.stats().total);
}

TEST(CheckElim, KeepsUnprovenChecks)
{
    // r2 is an argument: nothing is known, the check must stay.
    Program p = assemble(R"(
        f:
            srli r10, r2, 27
            bnei r10, 9, err
            noop
            noop
            sys halt, r0
        err:
            sys error, r0
    )");
    stampCheck(p, 0);
    CompiledUnit u = handUnit(p);
    const size_t n = u.prog.code.size();
    ElimStats st = eliminateRedundantChecks(u);
    EXPECT_EQ(st.checksConsidered, 1);
    EXPECT_EQ(st.checksEliminated, 0);
    EXPECT_EQ(u.prog.code.size(), n);
}

TEST(CheckElim, RefusesMalformedUnits)
{
    Program p = assemble(R"(
        f:
            beq r1, r2, f
            jal r31, f
            noop
            sys halt, r0
    )");
    CompiledUnit u = handUnit(p);
    ElimStats st = eliminateRedundantChecks(u);
    EXPECT_TRUE(st.skipped);
    EXPECT_EQ(st.instructionsRemoved, 0);
}

TEST(CheckElim, ByteIdenticalAcrossSuite)
{
    Engine eng;
    CompilerOptions base = baselineOptions(Checking::Full);
    for (const auto &bp : benchmarkPrograms()) {
        RunRequest req;
        req.source = bp.source;
        req.opts = base;
        req.opts.heapBytes = bp.heapBytes;
        req.exec.maxCycles = bp.maxCycles;
        req.label = bp.name;
        RunReport golden = eng.run(req);
        ASSERT_TRUE(golden.status.ok()) << bp.name;

        ElimStats st;
        RunRequest opt = req;
        opt.hooks.unitTransform =
            [&st](std::shared_ptr<const CompiledUnit> unit) {
                return checkElimTransform(unit, &st);
            };
        RunReport optimized = eng.run(opt);
        ASSERT_TRUE(optimized.status.ok()) << bp.name;

        EXPECT_GT(st.checksEliminated, 0) << bp.name;
        EXPECT_EQ(optimized.result.output, golden.result.output)
            << bp.name;
        EXPECT_EQ(optimized.result.exitValue, golden.result.exitValue)
            << bp.name;
        EXPECT_EQ(optimized.result.stop, golden.result.stop) << bp.name;
        EXPECT_LT(optimized.result.stats.total, golden.result.stats.total)
            << bp.name;
    }
}

// ------------------------------------------------- dominators and loops

TEST(Dom, StraightLineAndLoop)
{
    Program p = assemble(R"(
        f:
            li r2, 0
        loop:
            addi r2, r2, 1
            bnei r2, 3, loop
            noop
            noop
            sys halt, r0
    )");
    // Symbols are CFG roots (they may be call targets); compiled code
    // reaches loop headers through plain branch targets, so drop the
    // assembler's label to model that.
    const int loopPc = p.symbol("loop");
    p.symbols.erase("loop");
    Cfg cfg = buildCfg(p);
    ASSERT_TRUE(cfg.ok());

    const int b0 = cfg.blockAt(0);  // li
    const int b1 = cfg.blockAt(loopPc);
    const int b2 = cfg.blockAt(5);  // sys halt
    ASSERT_NE(b0, b1);
    ASSERT_NE(b1, b2);

    DomTree dom = computeDominators(cfg);
    EXPECT_EQ(dom.idom[b0], -1); // root
    EXPECT_EQ(dom.idom[b1], b0);
    EXPECT_EQ(dom.idom[b2], b1);
    EXPECT_EQ(dom.depth[b0], 0);
    EXPECT_EQ(dom.depth[b1], 1);
    EXPECT_EQ(dom.depth[b2], 2);
    EXPECT_TRUE(dom.dominates(b0, b2));
    EXPECT_TRUE(dom.dominates(b1, b1)); // reflexive
    EXPECT_FALSE(dom.dominates(b2, b1));

    LoopForest loops = findLoops(cfg, dom);
    ASSERT_EQ(loops.loops.size(), 1u);
    const NaturalLoop &l = loops.loops[0];
    EXPECT_EQ(l.header, b1);
    EXPECT_TRUE(l.contains(b1));
    EXPECT_FALSE(l.contains(b0));
    EXPECT_FALSE(l.contains(b2));
    ASSERT_EQ(l.latches.size(), 1u);
    EXPECT_EQ(l.latches[0], b1); // self-loop: header is its own latch
    EXPECT_EQ(l.depth, 1);
    EXPECT_EQ(loops.innermost[b1], 0);
    EXPECT_EQ(loops.innermost[b0], -1);
    EXPECT_EQ(loops.innermost[b2], -1);
}

TEST(Dom, NestedLoopDepths)
{
    Program p = assemble(R"(
        f:
            li r2, 0
        outer:
            li r3, 0
        inner:
            addi r3, r3, 1
            bnei r3, 2, inner
            noop
            noop
            addi r2, r2, 1
            bnei r2, 2, outer
            noop
            noop
            sys halt, r0
    )");
    const int outerPc = p.symbol("outer");
    const int innerPc = p.symbol("inner");
    p.symbols.erase("outer");
    p.symbols.erase("inner");
    Cfg cfg = buildCfg(p);
    ASSERT_TRUE(cfg.ok());
    DomTree dom = computeDominators(cfg);
    LoopForest loops = findLoops(cfg, dom);

    const int bOuter = cfg.blockAt(outerPc);
    const int bInner = cfg.blockAt(innerPc);
    const int bLatch = cfg.blockAt(6); // addi r2 .. bnei outer

    ASSERT_EQ(loops.loops.size(), 2u);
    const NaturalLoop *inner = nullptr, *outer = nullptr;
    for (const NaturalLoop &l : loops.loops) {
        if (l.header == bInner)
            inner = &l;
        else if (l.header == bOuter)
            outer = &l;
    }
    ASSERT_NE(inner, nullptr);
    ASSERT_NE(outer, nullptr);

    EXPECT_EQ(inner->depth, 2);
    EXPECT_EQ(outer->depth, 1);
    EXPECT_TRUE(outer->contains(bInner)); // nest: inner ⊂ outer
    EXPECT_TRUE(outer->contains(bLatch));
    EXPECT_FALSE(inner->contains(bLatch));

    // The innermost map prefers the deeper loop for shared blocks.
    EXPECT_EQ(loops.innermost[bInner],
              static_cast<int>(inner - loops.loops.data()));
    EXPECT_EQ(loops.innermost[bLatch],
              static_cast<int>(outer - loops.loops.data()));

    // Dominance down the nest.
    EXPECT_TRUE(dom.dominates(bOuter, bInner));
    EXPECT_TRUE(dom.dominates(bInner, bLatch));
    EXPECT_FALSE(dom.dominates(bLatch, bInner));
}

// ------------------------------------------------------ check placement

TEST(CheckElim, RefusesTrapTableIntoDeletedInstruction)
{
    // r0's tag field is architecturally 0 (an ABI invariant the flow
    // seeds at every root, trap entries included), so this stamped
    // check branch is provably never taken and deletable — even when
    // the trap table points straight at it.
    Program p = assemble(R"(
        f:
            li r2, 1
            bntag r0, 0, err
            noop
            noop
            sys halt, r2
        err:
            sys error, r2
    )");
    p.code[1].ann = checkAnn(Purpose::TagCheck);

    // Without a trap entry on the branch the rewrite goes through.
    {
        CompiledUnit u = handUnit(p);
        ElimStats st = eliminateRedundantChecks(u);
        EXPECT_FALSE(st.skipped);
        EXPECT_EQ(st.checksEliminated, 1);
    }

    // With the tag-trap handler registered at the branch, renumbering
    // it to the next kept instruction would silently change what runs
    // on a trap: the unit must be refused, untouched, with a
    // diagnostic.
    CompiledUnit u = handUnit(p);
    u.tagTrap = 1;
    const size_t n = u.prog.code.size();
    ElimStats st = eliminateRedundantChecks(u);
    EXPECT_TRUE(st.skipped);
    EXPECT_EQ(st.checksEliminated, 0);
    EXPECT_EQ(st.instructionsRemoved, 0);
    EXPECT_NE(st.diagnostic.find("tag trap handler"), std::string::npos)
        << st.diagnostic;
    EXPECT_NE(st.diagnostic.find("unit refused"), std::string::npos)
        << st.diagnostic;
    EXPECT_EQ(u.prog.code.size(), n); // unit left untouched

    // placeChecks surfaces the same refusal through PlaceStats.
    CompiledUnit v = handUnit(p);
    v.tagTrap = 1;
    PlaceStats pst = placeChecks(v);
    EXPECT_TRUE(pst.skipped);
    EXPECT_NE(pst.diagnostic.find("unit refused"), std::string::npos)
        << pst.diagnostic;
}

TEST(CheckPlace, RefusesMalformedUnits)
{
    Program p = assemble(R"(
        f:
            beq r1, r2, f
            jal r31, f
            noop
            sys halt, r0
    )");
    CompiledUnit u = handUnit(p);
    PlaceStats st = placeChecks(u);
    EXPECT_TRUE(st.skipped);
    EXPECT_EQ(st.hoisted, 0);
    EXPECT_NE(st.diagnostic.find("malformed CFG"), std::string::npos)
        << st.diagnostic;
}

TEST(CheckPlace, ByteIdenticalAcrossSuite)
{
    // The placement pass (hoist + eliminate + cleanup) must preserve
    // observable behavior on every benchmark while running strictly
    // fewer cycles. The Engine re-proves each transformed unit with
    // the independent verifier (Hooks::verifyTransformed defaults on),
    // so a passing run also certifies tag discipline.
    Engine eng;
    CompilerOptions base = baselineOptions(Checking::Full);
    int programsWithHoists = 0;
    for (const auto &bp : benchmarkPrograms()) {
        RunRequest req;
        req.source = bp.source;
        req.opts = base;
        req.opts.heapBytes = bp.heapBytes;
        req.exec.maxCycles = bp.maxCycles;
        req.label = bp.name;
        RunReport golden = eng.run(req);
        ASSERT_TRUE(golden.status.ok()) << bp.name;

        PlaceStats st;
        RunRequest opt = req;
        opt.hooks.unitTransform =
            [&st](std::shared_ptr<const CompiledUnit> unit) {
                return checkPlaceTransform(unit, &st);
            };
        RunReport placed = eng.run(opt);
        ASSERT_TRUE(placed.status.ok())
            << bp.name << ": " << placed.status.message;

        EXPECT_FALSE(st.skipped) << bp.name;
        EXPECT_GT(st.elim.checksEliminated, 0) << bp.name;
        if (st.hoisted > 0)
            ++programsWithHoists;
        EXPECT_EQ(placed.result.output, golden.result.output) << bp.name;
        EXPECT_EQ(placed.result.exitValue, golden.result.exitValue)
            << bp.name;
        EXPECT_EQ(placed.result.stop, golden.result.stop) << bp.name;
        EXPECT_LT(placed.result.stats.total, golden.result.stats.total)
            << bp.name;
    }
    // Loop-invariant hoisting fires on a meaningful slice of the
    // suite (the BENCH_checkelim gate holds the same line).
    EXPECT_GE(programsWithHoists, 4);
}

TEST(CheckPlace, InsertsMissingChecks)
{
    // Strip the list-check branches from the user program, then let
    // mxlint --fix's engine put guards back. The fixed unit must
    // satisfy both the linter and the independent verifier again.
    // fetch's argument is unknown at function entry (functions are
    // roots), so its car access is provable only through the check.
    CompiledUnit u = compileUnit("(de fetch (l) (car l))"
                                 "(print (fetch (quote (1 2))))",
                                 baselineOptions(Checking::Full));
    ASSERT_TRUE(verifyUnit(u).ok());
    const RunResult golden = runUnit(u, 10'000'000);
    ASSERT_TRUE(golden.ok());

    // Blunt only inside fn_fetch — some runtime-library sites have no
    // dead scratch register and are (correctly) reported unfixable,
    // which is not what this test is about.
    int lo = -1, hi = static_cast<int>(u.prog.code.size());
    const auto syms = sortedSymbols(u.prog);
    for (size_t i = 0; i < syms.size(); ++i) {
        if (syms[i].second == "fn_fetch") {
            lo = syms[i].first;
            if (i + 1 < syms.size())
                hi = syms[i + 1].first;
        }
    }
    ASSERT_GE(lo, 0);
    int blunted = 0;
    for (int i = lo; i < hi; ++i) {
        Instruction &q = u.prog.code[i];
        if (isCondBranch(q.op) && q.ann.purpose == Purpose::TagCheck &&
            q.ann.fromChecking && q.ann.cat == CheckCat::List) {
            q = Instruction{};
            q.ann = Annotation(Purpose::Useful);
            ++blunted;
        }
    }
    ASSERT_GT(blunted, 0);
    LintReport broken = lintUnit(u);
    EXPECT_GT(broken.errors, 0);
    EXPECT_FALSE(verifyUnit(u).ok());

    FixStats st = insertMissingChecks(u);
    EXPECT_FALSE(st.skipped);
    EXPECT_GT(st.unproven, 0);
    EXPECT_GT(st.inserted, 0);
    EXPECT_EQ(st.unfixable, 0);
    EXPECT_GE(st.instructionsInserted, 3 * st.inserted);

    LintReport fixed = lintUnit(u);
    EXPECT_EQ(fixed.errors, 0) << fixed.render(true);
    VerifyResult ver = verifyUnit(u);
    EXPECT_TRUE(ver.ok()) << ver.render();

    // The repaired unit still runs and produces the golden output.
    const RunResult fixedRun = runUnit(u, 10'000'000);
    EXPECT_TRUE(fixedRun.ok());
    EXPECT_EQ(fixedRun.output, golden.output);
}

// -------------------------------------------------- linker annotations

TEST(Linker, RequireAnnotationsRejectsUnstamped)
{
    AsmBuffer buf;
    buf.defineSymbol("f");
    buf.li(abi::ret, 1); // default annotation: unstamped
    buf.sys(SysCode::Halt, abi::ret, {Purpose::Useful});
    EXPECT_NO_THROW(link(buf));
    EXPECT_THROW(link(buf, /*requireAnnotations=*/true), MxlError);

    AsmBuffer ok;
    ok.defineSymbol("f");
    ok.li(abi::ret, 1, {Purpose::Useful});
    ok.sys(SysCode::Halt, abi::ret, {Purpose::Useful});
    EXPECT_NO_THROW(link(ok, /*requireAnnotations=*/true));
}

TEST(Linker, CompiledUnitsAreFullyAnnotated)
{
    // unit.cc links with requireAnnotations=true; double-check the
    // stamp survives through scheduling and linking.
    CompiledUnit u =
        compileUnit("(print (car '(1 2)))", baselineOptions(Checking::Full));
    for (size_t i = 0; i < u.prog.code.size(); ++i)
        ASSERT_TRUE(u.prog.code[i].ann.stamped) << "instruction " << i;
}

} // namespace
} // namespace mxl
