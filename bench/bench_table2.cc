/**
 * Reproduces Table 2: percentage of cycles eliminated by each degree
 * of hardware support, for programs with and without run-time
 * checking, relative to the straightforward §2.1 implementation.
 * Rows 5/6 are decomposed into their check/mask components as in the
 * paper. Also prints the row-1 software-equivalent (LowTag3) and the
 * SPUR-style combination the paper discusses in §7.
 *
 * The whole measurement space — (2 baselines + 7 rows × 2 + 2 low-tag
 * + 2 SPUR) × 10 programs — is submitted to mxl::Engine as one grid
 * and fanned out across the worker pool; results come back in request
 * order, so the table is assembled by slicing.
 */

#include <chrono>
#include <cstdio>

#include "bench_export.h"
#include "core/engine.h"
#include "core/experiment.h"
#include "core/paper.h"
#include "core/report.h"
#include "core/run.h"
#include "programs/programs.h"
#include "support/format.h"
#include "support/table.h"

using namespace mxl;

int
main()
{
    std::printf("Table 2: speedup in percent for different degrees of "
                "hardware support\n");
    std::printf("(ten-program average vs the straightforward high-tag "
                "implementation)\n\n");

    Engine eng;

    // Assemble every configuration's ten-program sub-grid into one
    // request list; remember where each slice starts.
    std::vector<RunRequest> all;
    std::vector<size_t> begin;
    size_t stride = benchmarkPrograms().size();
    auto add = [&](const CompilerOptions &base) {
        begin.push_back(all.size());
        auto g = programGrid(base);
        all.insert(all.end(), g.begin(), g.end());
    };

    add(baselineOptions(Checking::Off));   // slice 0
    add(baselineOptions(Checking::Full));  // slice 1
    auto rows = table2Configs();
    for (const auto &cfg : rows) {         // slices 2 .. 2+2n-1
        add(cfg.withChecking(Checking::Off));
        add(cfg.withChecking(Checking::Full));
    }
    add(lowTagSoftwareOptions(Checking::Off));
    add(lowTagSoftwareOptions(Checking::Full));
    CompilerOptions spur = baselineOptions(Checking::Off);
    spur.hw.ignoreTagOnMemory = true;
    spur.hw.branchOnTag = true;
    spur.hw.genericArith = true;
    spur.hw.checkedMemory = CheckedMem::Lists;
    add(spur);
    spur.checking = Checking::Full;
    add(spur);

    // Slices reuse a configuration label across programs; disambiguate
    // the JSON export's cell labels with the slice index.
    for (size_t i = 0; i < all.size(); ++i)
        all[i].label = strcat("s", i / stride, "/", all[i].label);

    auto t0 = std::chrono::steady_clock::now();
    std::vector<RunReport> reports = eng.runGrid(all);
    auto results = unwrapReports(reports);
    double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    auto slice = [&](size_t i) {
        return std::vector<RunResult>(results.begin() + begin[i],
                                      results.begin() + begin[i] + stride);
    };

    auto baseOff = slice(0);
    auto baseFull = slice(1);

    TextTable t;
    t.addRow({"row", "configuration", "no checking", "(paper)",
              "checking", "(paper)"});
    for (size_t i = 0; i < rows.size(); ++i) {
        const auto &cfg = rows[i];
        auto off = table2Average(baseOff, slice(2 + 2 * i));
        auto full = table2Average(baseFull, slice(3 + 2 * i));
        const auto &p = paper::table2()[i];
        t.addRow({cfg.id, cfg.label, percent(off.total),
                  strcat("(", percent(p.noChecking), ")"),
                  percent(full.total),
                  strcat("(", percent(p.withChecking), ")")});
        if (cfg.id == "row5" || cfg.id == "row6") {
            t.addRow({"", "  - check component", "",
                      "", percent(full.check), ""});
            t.addRow({"", "  - mask component", "",
                      "", percent(full.mask), ""});
        }
    }
    std::printf("%s\n", t.render().c_str());

    size_t next = 2 + 2 * rows.size();

    // Row 1's software twin: a 3-bit low-tag scheme, no hardware.
    std::printf("row1 software equivalent (LowTag3 scheme, no "
                "hardware): %s / %s\n",
                percent(table2Average(baseOff, slice(next)).total).c_str(),
                percent(table2Average(baseFull, slice(next + 1)).total)
                    .c_str());

    // §7: the SPUR-style combination (row 7 but lists-only checking).
    std::printf("SPUR-like (row7 with lists-only checked loads): "
                "%s / %s   (paper: 9%% / 21%%)\n",
                percent(table2Average(baseOff, slice(next + 2)).total)
                    .c_str(),
                percent(table2Average(baseFull, slice(next + 3)).total)
                    .c_str());

    auto cs = eng.cacheStats();
    std::printf("\nengine: %u worker(s), %zu cells in %.1fs, cache "
                "%llu hit / %llu miss\n\n",
                eng.threadCount(), all.size(), wall,
                static_cast<unsigned long long>(cs.hits),
                static_cast<unsigned long long>(cs.misses));

    return writeBenchJson("table2", benchDoc("table2",
                                             gridJson(all, reports), &eng))
               ? 0
               : 1;
}
