#include "core/experiment.h"

namespace mxl {

CompilerOptions
baselineOptions(Checking checking)
{
    CompilerOptions o;
    o.scheme = SchemeKind::High5;
    o.checking = checking;
    return o;
}

std::vector<Table2Config>
table2Configs()
{
    std::vector<Table2Config> rows;

    {
        Table2Config c;
        c.id = "row1";
        c.label = "avoid tag masking (software)";
        c.opts = baselineOptions(Checking::Off);
        c.opts.hw.ignoreTagOnMemory = true;
        rows.push_back(c);
    }
    {
        Table2Config c;
        c.id = "row2";
        c.label = "avoid tag extraction";
        c.opts = baselineOptions(Checking::Off);
        c.opts.hw.branchOnTag = true;
        rows.push_back(c);
    }
    {
        Table2Config c;
        c.id = "row3";
        c.label = "avoid masking and extraction";
        c.opts = baselineOptions(Checking::Off);
        c.opts.hw.ignoreTagOnMemory = true;
        c.opts.hw.branchOnTag = true;
        rows.push_back(c);
    }
    {
        Table2Config c;
        c.id = "row4";
        c.label = "support generic arithmetic";
        c.opts = baselineOptions(Checking::Off);
        c.opts.hw.genericArith = true;
        rows.push_back(c);
    }
    {
        Table2Config c;
        c.id = "row5";
        c.label = "avoid tag checking on list ops";
        c.opts = baselineOptions(Checking::Off);
        c.opts.hw.checkedMemory = CheckedMem::Lists;
        rows.push_back(c);
    }
    {
        Table2Config c;
        c.id = "row6";
        c.label = "avoid tag checking (lists+vectors)";
        c.opts = baselineOptions(Checking::Off);
        c.opts.hw.checkedMemory = CheckedMem::All;
        rows.push_back(c);
    }
    {
        Table2Config c;
        c.id = "row7";
        c.label = "all of the above";
        c.opts = baselineOptions(Checking::Off);
        c.opts.hw.ignoreTagOnMemory = true;
        c.opts.hw.branchOnTag = true;
        c.opts.hw.genericArith = true;
        c.opts.hw.checkedMemory = CheckedMem::All;
        rows.push_back(c);
    }
    return rows;
}

CompilerOptions
lowTagSoftwareOptions(Checking checking, SchemeKind scheme)
{
    CompilerOptions o;
    o.scheme = scheme;
    o.checking = checking;
    return o;
}

CompilerOptions
sumCheckOptions(Checking checking)
{
    CompilerOptions o;
    o.scheme = SchemeKind::High6;
    o.checking = checking;
    o.arithMode = ArithMode::SumCheck;
    return o;
}

CompilerOptions
forceDispatchOptions(Checking checking)
{
    CompilerOptions o = baselineOptions(checking);
    o.arithMode = ArithMode::ForceDispatch;
    return o;
}

} // namespace mxl
