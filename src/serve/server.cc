#include "serve/server.h"

#include "programs/programs.h"
#include "support/format.h"
#include "support/panic.h"

#if defined(__unix__) || defined(__APPLE__)
#define MXL_SERVER_POSIX 1
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#include <cerrno>
#include <cstring>
#endif

#include <cstdio>
#include <cstdlib>

namespace mxl {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsUntil(Clock::time_point when)
{
    return std::chrono::duration<double>(when - Clock::now()).count();
}

uint64_t
fieldMs(const Json &o, const char *key)
{
    const Json *v = o.find(key);
    return v && v->isNumber() ? v->asUint(0) : 0;
}

std::string
cellLabel(const Json &cell)
{
    const Json *label = cell.find("label");
    return label && label->isString() ? label->str() : std::string();
}

/** A structured failure report in the same shape reportToJson emits,
 *  so clients parse exactly one report schema. */
std::string
failureReport(const std::string &label, RunStatus::Code code,
              const std::string &message, const std::string &deathKind,
              int termSignal)
{
    Json rep = Json::object();
    rep.set("label", label);
    rep.set("statusOk", false);
    rep.set("statusCode", static_cast<int64_t>(code));
    rep.set("statusMessage", message);
    if (!deathKind.empty()) {
        Json death = Json::object();
        death.set("kind", deathKind);
        death.set("signal", static_cast<int64_t>(termSignal));
        rep.set("workerDeath", std::move(death));
    }
    return rep.dump();
}

#if MXL_SERVER_POSIX
int gSignalStopFd = -1;

void
stopSignalHandler(int)
{
    if (gSignalStopFd >= 0) {
        char b = 's';
        [[maybe_unused]] ssize_t n = ::write(gSignalStopFd, &b, 1);
    }
}

void
setNonBlocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}
#endif

} // namespace

WorkerPoolOptions
Server::makePoolOptions()
{
    WorkerPoolOptions po;
    po.workers = options_.workers;
    po.backoffBaseMs = options_.backoffBaseMs;
    po.backoffCapMs = options_.backoffCapMs;
    po.maxSpawnFailures = options_.maxSpawnFailures;
    po.watchdogGraceMs = options_.watchdogGraceMs;
    po.defaultTaskSeconds = options_.maxCellSeconds;
    po.disableFork = options_.disableFork;
    po.childInit = [this](int slot) {
        // postFork detaches the parent's trace recorder; the worker
        // records into workerTrace_ instead, on its own lane, and
        // baselines the COW-inherited metrics so deltas relay only
        // what this worker does from here on.
        engine_.postFork();
        if (traceEnabled_) {
            workerTrace_.setLane(2 + slot);
            engine_.setTrace(&workerTrace_);
        }
        workerMetricsBaseline_ = engine_.metrics().snapshot();
    };
    po.runCell = [this](const Json &cell, double deadlineSeconds,
                        const std::string &traceId) {
        return runCellPayload(cell, deadlineSeconds, /*inWorker=*/true,
                              traceId);
    };
    po.childCollect = [this](const std::string &traceId) {
        Json aux = Json::object();
        aux.set("metrics",
                engine_.metrics().deltaJson(&workerMetricsBaseline_));
        if (traceEnabled_)
            aux.set("spans", workerTrace_.drainJson(traceId));
        return aux;
    };
    return po;
}

Server::Server(ServerOptions options)
    : options_(std::move(options)), engine_(options_.engineThreads),
      pool_(makePoolOptions(),
            [this](uint64_t id, const std::string &payload) {
                deliverReport(id, payload, /*synthesized=*/false);
            },
            [this](uint64_t id, bool hang, int termSignal) {
                mWorkerDeathCells_.inc();
                if (log_.enabled()) {
                    Json f = Json::object();
                    f.set("taskId", id);
                    auto ti = tasks_.find(id);
                    if (ti != tasks_.end()) {
                        f.set("label", ti->second.label);
                        f.set("traceId", ti->second.traceId);
                        auto ri = requests_.find(ti->second.requestKey);
                        if (ri != requests_.end())
                            f.set("requestId", ri->second.id);
                    }
                    f.set("kind", hang ? "hang" : "signal");
                    f.set("signal", static_cast<int64_t>(termSignal));
                    log_.event(EventLog::Level::Error, "worker.death",
                               f);
                }
                synthesizeFailure(
                    id, hang ? "hang" : "signal", termSignal,
                    hang ? "worker killed by watchdog (hang)"
                         : strcat("worker died (signal ", termSignal,
                                  ")"),
                    hang ? RunStatus::Code::Timeout
                         : RunStatus::Code::InternalError);
            },
            [this](int slot, const Json &aux) {
                (void)slot;
                if (const Json *m = aux.find("metrics"))
                    engine_.metrics().merge(*m);
                if (const Json *spans = aux.find("spans"))
                    if (traceEnabled_)
                        trace_.importJson(*spans);
            }),
      admission_(options_.queueCapacity, options_.workers),
      mRequests_(engine_.metrics().counter("serve.requests")),
      mCells_(engine_.metrics().counter("serve.cells")),
      mShedRequests_(engine_.metrics().counter("serve.shed.requests")),
      mShedCells_(engine_.metrics().counter("serve.shed.cells")),
      mInlineCells_(engine_.metrics().counter("serve.inline.cells")),
      mWorkerDeathCells_(
          engine_.metrics().counter("serve.worker.death_cells")),
      mErrors_(engine_.metrics().counter("serve.errors")),
      gQueueDepth_(engine_.metrics().gauge("serve.queue.depth")),
      gDegraded_(engine_.metrics().gauge("serve.degraded")),
      gConns_(engine_.metrics().gauge("serve.conns")),
      hAdmissionWait_(
          engine_.metrics().histogram("serve.admission_wait_micros")),
      hQueue_(engine_.metrics().histogram("serve.queue_micros")),
      hExec_(engine_.metrics().histogram("serve.exec_micros")),
      hE2e_(engine_.metrics().histogram("serve.e2e_micros"))
{
    traceEnabled_ = !options_.tracePath.empty();
    // One timeline: worker recorders are COW copies of workerTrace_,
    // so their timestamps land directly on the parent trace's clock.
    workerTrace_.alignEpoch(trace_);
}

Server::~Server()
{
#if MXL_SERVER_POSIX
    pool_.shutdown(0);
    for (auto &[fd, conn] : conns_)
        ::close(fd);
    conns_.clear();
    if (unixFd_ >= 0)
        ::close(unixFd_);
    if (tcpFd_ >= 0)
        ::close(tcpFd_);
    if (stopPipe_[0] >= 0)
        ::close(stopPipe_[0]);
    if (stopPipe_[1] >= 0) {
        if (gSignalStopFd == stopPipe_[1])
            gSignalStopFd = -1;
        ::close(stopPipe_[1]);
    }
    if (!options_.unixPath.empty())
        ::unlink(options_.unixPath.c_str());
#endif
}

#if MXL_SERVER_POSIX

bool
Server::listenUnix(std::string *err)
{
    if (options_.unixPath.empty()) {
        *err = "no unix socket path configured";
        return false;
    }
    sockaddr_un addr{};
    if (options_.unixPath.size() >= sizeof addr.sun_path) {
        *err = strcat("unix socket path too long: ", options_.unixPath);
        return false;
    }
    unixFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (unixFd_ < 0) {
        *err = strcat("socket: ", std::strerror(errno));
        return false;
    }
    ::unlink(options_.unixPath.c_str()); // stale socket from a crash
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, options_.unixPath.c_str(),
                 sizeof addr.sun_path - 1);
    if (::bind(unixFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0 ||
        ::listen(unixFd_, options_.listenBacklog) != 0) {
        *err = strcat("bind/listen ", options_.unixPath, ": ",
                      std::strerror(errno));
        return false;
    }
    setNonBlocking(unixFd_);
    return true;
}

bool
Server::listenTcp(std::string *err)
{
    if (options_.tcpPort == 0)
        return true;
    tcpFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (tcpFd_ < 0) {
        *err = strcat("socket: ", std::strerror(errno));
        return false;
    }
    int one = 1;
    ::setsockopt(tcpFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port =
        htons(options_.tcpPort > 0
                  ? static_cast<uint16_t>(options_.tcpPort)
                  : 0);
    if (::bind(tcpFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0 ||
        ::listen(tcpFd_, options_.listenBacklog) != 0) {
        *err = strcat("tcp bind/listen: ", std::strerror(errno));
        return false;
    }
    socklen_t len = sizeof addr;
    ::getsockname(tcpFd_, reinterpret_cast<sockaddr *>(&addr), &len);
    boundTcpPort_ = ntohs(addr.sin_port);
    setNonBlocking(tcpFd_);
    return true;
}

bool
Server::start(std::string *err)
{
    ::signal(SIGPIPE, SIG_IGN);
    if (::pipe(stopPipe_) != 0) {
        *err = strcat("pipe: ", std::strerror(errno));
        return false;
    }
    setNonBlocking(stopPipe_[0]);
    if (!listenUnix(err) || !listenTcp(err))
        return false;
    if (!options_.eventLogPath.empty() &&
        !log_.openFile(options_.eventLogPath, err))
        return false;
    if (traceEnabled_) {
        trace_.nameLane(1, "mxl-served");
        for (int slot = 0; slot < options_.workers; ++slot)
            trace_.nameLane(2 + slot, strcat("worker ", slot));
        // Parent-side engine activity (warm-up compiles, degraded
        // inline runs) records on lane 1; workers re-attach their own
        // recorder after postFork's detach.
        engine_.setTrace(&trace_);
    }
    if (options_.warmCache)
        for (const BenchmarkProgram &p : benchmarkPrograms()) {
            CompilerOptions o;
            o.heapBytes = p.heapBytes;
            engine_.compile(p.source, o);
        }
    pool_.start();
    gDegraded_.set(pool_.degraded() ? 1 : 0);
    refreshPidMirror();
    if (log_.enabled()) {
        Json f = Json::object();
        f.set("socket", options_.unixPath);
        f.set("workers", static_cast<int64_t>(options_.workers));
        f.set("queueCapacity",
              static_cast<uint64_t>(options_.queueCapacity));
        f.set("degraded", pool_.degraded());
        log_.event(EventLog::Level::Info, "server.start", f);
    }
    return true;
}

void
Server::requestStop()
{
    if (stopPipe_[1] >= 0) {
        char b = 's';
        [[maybe_unused]] ssize_t n = ::write(stopPipe_[1], &b, 1);
    }
}

void
Server::installSignalHandlers()
{
    gSignalStopFd = stopPipe_[1];
    ::signal(SIGTERM, stopSignalHandler);
    ::signal(SIGINT, stopSignalHandler);
}

void
Server::acceptReady(int listenFd)
{
    for (;;) {
        int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0)
            return;
        setNonBlocking(fd);
        Conn conn;
        conn.fd = fd;
        conns_.emplace(fd, std::move(conn));
        gConns_.set(static_cast<int64_t>(conns_.size()));
    }
}

void
Server::closeConn(int fd)
{
    auto it = conns_.find(fd);
    if (it == conns_.end())
        return;
    ::close(fd);
    conns_.erase(it);
    gConns_.set(static_cast<int64_t>(conns_.size()));
    // Orphan this connection's open requests: their cells still run
    // (and still resolve the request), the responses just have nowhere
    // to go.
    for (auto &[key, r] : requests_)
        if (r.connFd == fd)
            r.connFd = -1;
}

void
Server::flushConn(Conn &conn)
{
    while (!conn.out.empty()) {
        ssize_t n = ::send(conn.fd, conn.out.data(), conn.out.size(),
                           MSG_NOSIGNAL);
        if (n > 0) {
            conn.out.erase(0, static_cast<size_t>(n));
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return; // POLLOUT will resume
        closeConn(conn.fd);
        return;
    }
}

void
Server::queuePayload(int connFd, const std::string &payload)
{
    if (connFd < 0)
        return; // orphaned request
    auto it = conns_.find(connFd);
    if (it == conns_.end())
        return;
    Conn &conn = it->second;
    conn.out += encodeFrame(payload);
    if (conn.out.size() > kMaxFrameBytes) {
        // A client this far behind is not consuming; shedding it beats
        // buffering without bound.
        closeConn(conn.fd);
        return;
    }
    flushConn(conn);
}

void
Server::readConn(int fd)
{
    auto it = conns_.find(fd);
    if (it == conns_.end())
        return;
    Conn &conn = it->second;
    char buf[8192];
    for (;;) {
        ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n > 0) {
            conn.in.feed(buf, static_cast<size_t>(n));
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            break;
        if (n < 0 && errno == EINTR)
            continue;
        closeConn(fd); // EOF or hard error
        return;
    }
    std::string payload;
    while (true) {
        // handleFrame can close the connection (oversized backlog);
        // re-check it still exists before touching it again.
        auto cur = conns_.find(fd);
        if (cur == conns_.end())
            return;
        if (!cur->second.in.next(&payload))
            break;
        handleFrame(cur->second, payload);
    }
    auto cur = conns_.find(fd);
    if (cur != conns_.end() && cur->second.in.error())
        closeConn(fd); // poisoned framing: the stream is unrecoverable
}

void
Server::handleFrame(Conn &conn, const std::string &payload)
{
    Json j;
    if (!Json::parse(payload, &j) || !j.isObject()) {
        mErrors_.inc();
        queuePayload(conn.fd,
                     "{\"type\":\"error\",\"id\":\"\","
                     "\"message\":\"request is not a JSON object\"}");
        return;
    }
    const Json *type = j.find("type");
    std::string verb = type && type->isString() ? type->str() : "";
    if (verb == "ping") {
        queuePayload(conn.fd, "{\"type\":\"pong\"}");
        return;
    }
    if (verb == "health") {
        sendHealth(conn);
        return;
    }
    if (verb == "grid") {
        handleGrid(conn, j);
        return;
    }
    mErrors_.inc();
    const Json *idj = j.find("id");
    std::string id =
        idj && idj->isString() ? idj->str() : std::string();
    queuePayload(conn.fd,
                 strcat("{\"type\":\"error\",\"id\":", Json(id).dump(),
                        ",\"message\":",
                        Json(strcat("unknown request type '", verb,
                                    "'"))
                            .dump(),
                        "}"));
}

void
Server::sendHealth(Conn &conn)
{
    WorkerPoolStats ps = pool_.stats();
    std::string payload = strcat(
        "{\"type\":\"health\"", ",\"degraded\":",
        pool_.degraded() ? "true" : "false",
        ",\"draining\":", draining_ ? "true" : "false",
        ",\"queueDepth\":", admission_.depth(),
        ",\"queueCapacity\":", admission_.capacity(),
        ",\"workersIdle\":", pool_.idleWorkers(),
        ",\"workersBusy\":", pool_.busyWorkers(),
        ",\"workerSpawns\":", ps.spawns, ",\"workerRespawns\":",
        ps.respawns, ",\"workerDeaths\":", ps.deaths,
        ",\"workerHangKills\":", ps.hangKills, ",\"spawnFailures\":",
        ps.spawnFailures, ",\"metrics\":",
        engine_.metrics().snapshotJson(), "}");
    queuePayload(conn.fd, payload);
}

void
Server::handleGrid(Conn &conn, const Json &j)
{
    uint64_t receivedMicros = trace_.nowMicros();
    const Json *idj = j.find("id");
    std::string id =
        idj && idj->isString() ? idj->str() : std::string();
    std::string idText = Json(id).dump();
    const Json *tj = j.find("traceId");
    std::string traceId = tj && tj->isString() && !tj->str().empty()
                              ? tj->str()
                              : makeTraceId();
    auto terminalError = [&](const std::string &msg) {
        mErrors_.inc();
        if (log_.enabled()) {
            Json f = Json::object();
            f.set("requestId", id);
            f.set("traceId", traceId);
            f.set("message", msg);
            log_.event(EventLog::Level::Warn, "request.error", f);
        }
        queuePayload(conn.fd,
                     strcat("{\"type\":\"error\",\"id\":", idText,
                            ",\"message\":", Json(msg).dump(), "}"));
    };

    if (draining_) {
        terminalError("server is draining");
        return;
    }
    const Json *cells = j.find("cells");
    if (!cells || !cells->isArray() || cells->size() == 0) {
        terminalError("grid request needs a nonempty 'cells' array");
        return;
    }
    size_t n = cells->size();

    // Validate every cell up front: admission is all-or-nothing, and a
    // cell that admits must also parse in the worker (same decoder).
    // Chaos cells skip validation — they never reach parseCell.
    for (size_t i = 0; i < n; ++i) {
        const Json &cj = cells->at(i);
        std::string label = cj.isObject() ? cellLabel(cj) : "";
        if (options_.enableChaosCells &&
            label.rfind("__chaos:", 0) == 0)
            continue;
        WireCell wc;
        std::string err;
        if (!parseCell(cj, &wc, &err)) {
            terminalError(strcat("cell ", i, ": ", err));
            return;
        }
    }

    if (!admission_.canAdmit(n)) {
        admission_.shed(n);
        mShedRequests_.inc();
        mShedCells_.inc(n);
        if (log_.enabled()) {
            Json f = Json::object();
            f.set("requestId", id);
            f.set("traceId", traceId);
            f.set("cells", static_cast<uint64_t>(n));
            f.set("retryAfterMs",
                  static_cast<uint64_t>(admission_.retryAfterMs(n)));
            log_.event(EventLog::Level::Warn, "request.shed", f);
        }
        queuePayload(
            conn.fd,
            strcat("{\"type\":\"overloaded\",\"id\":", idText,
                   ",\"retryAfterMs\":", admission_.retryAfterMs(n),
                   ",\"queueDepth\":", admission_.depth(),
                   ",\"queueCapacity\":", admission_.capacity(), "}"));
        return;
    }
    hAdmissionWait_.observe(trace_.nowMicros() - receivedMicros);

    Request r;
    r.key = nextRequestKey_++;
    r.connFd = conn.fd;
    r.id = id;
    r.traceId = traceId;
    r.receivedMicros = receivedMicros;
    r.cells = n;
    uint64_t deadlineMs = fieldMs(j, "deadlineMs");
    if (deadlineMs > 0) {
        r.hasDeadline = true;
        r.deadline = Clock::now() +
                     std::chrono::milliseconds(
                         static_cast<int64_t>(deadlineMs));
    }
    uint64_t key = r.key;
    requests_.emplace(key, std::move(r));
    mRequests_.inc();
    mCells_.inc(n);

    for (size_t i = 0; i < n; ++i) {
        const Json &cj = cells->at(i);
        Task t;
        t.requestKey = key;
        t.index = i;
        t.label = cellLabel(cj);
        t.traceId = traceId;
        t.queuedMicros = trace_.nowMicros();
        t.cellText = cj.dump();
        uint64_t cellMs = fieldMs(cj, "deadlineMs");
        t.cellDeadlineSeconds =
            cellMs > 0 ? static_cast<double>(cellMs) / 1000.0 : 0;
        uint64_t taskId = nextTaskId_++;
        tasks_.emplace(taskId, std::move(t));
        admission_.push(taskId);
    }
    gQueueDepth_.set(static_cast<int64_t>(admission_.depth()));
    pump();
}

double
Server::effectiveDeadlineSeconds(const Task &t, const Request &r,
                                 bool *expired) const
{
    *expired = false;
    double dl = t.cellDeadlineSeconds;
    if (r.hasDeadline) {
        double remaining = secondsUntil(r.deadline);
        if (remaining <= 0) {
            *expired = true;
            return 0;
        }
        if (dl <= 0 || remaining < dl)
            dl = remaining;
    }
    return dl;
}

std::string
Server::runCellPayload(const Json &cell, double deadlineSeconds,
                       bool inWorker, const std::string &traceId)
{
    std::string label = cell.isObject() ? cellLabel(cell) : "";
    if (label.rfind("__chaos:", 0) == 0) {
        if (inWorker && options_.enableChaosCells) {
            if (label == "__chaos:hang")
                for (;;)
                    ::pause();
            if (label == "__chaos:crash")
                std::abort();
            if (label == "__chaos:exit")
                ::_exit(7);
        }
        // Degraded mode (or chaos disabled): refusing is the honest
        // answer — honoring a hang inline would wedge the loop thread
        // the pool exists to protect.
        return failureReport(label, RunStatus::Code::InternalError,
                             "chaos cell refused outside a worker", "",
                             0);
    }
    WireCell wc;
    std::string err;
    if (!parseCell(cell, &wc, &err))
        return failureReport(label, RunStatus::Code::CompileError, err,
                             "", 0);
    RunRequest &req = wc.request;
    if (deadlineSeconds > 0 && (req.exec.deadlineSeconds == 0 ||
                                req.exec.deadlineSeconds >
                                    deadlineSeconds))
        req.exec.deadlineSeconds = deadlineSeconds;
    // Worker-side "cell" span: wraps the engine's own compile/run
    // spans on this worker's lane; drained home with the result.
    uint64_t t0 = (inWorker && traceEnabled_)
                      ? workerTrace_.nowMicros()
                      : 0;
    RunReport rep = engine_.run(req);
    if (inWorker && traceEnabled_)
        workerTrace_.complete("cell", "serve/worker", 0, t0,
                              workerTrace_.nowMicros() - t0, label,
                              traceId);
    return reportToJson(rep).dump();
}

std::string
Server::execCellInline(const Task &t, double deadlineSeconds)
{
    Json cell;
    if (!Json::parse(t.cellText, &cell))
        return failureReport(t.label, RunStatus::Code::InternalError,
                             "stored cell failed to reparse", "", 0);
    return runCellPayload(cell, deadlineSeconds, /*inWorker=*/false,
                          t.traceId);
}

void
Server::pump()
{
    while (!admission_.empty()) {
        uint64_t taskId = admission_.front();
        auto ti = tasks_.find(taskId);
        if (ti == tasks_.end()) {
            admission_.pop();
            continue;
        }
        Task &t = ti->second;
        auto ri = requests_.find(t.requestKey);
        MXL_ASSERT(ri != requests_.end(),
                   "queued task with no request");
        bool expired = false;
        double dl = effectiveDeadlineSeconds(t, ri->second, &expired);
        if (expired) {
            admission_.pop();
            synthesizeFailure(
                taskId, "deadline", 0,
                "request deadline expired before the cell ran",
                RunStatus::Code::Timeout);
            continue;
        }
        if (!pool_.degraded()) {
            int slot = -1;
            if (!pool_.dispatch(taskId, t.cellText, dl, t.traceId,
                                &slot))
                break; // no idle worker; poll loop will pump again
            t.slot = slot;
            t.dispatchedAt = Clock::now();
            t.dispatchedMicros = trace_.nowMicros();
            hQueue_.observe(t.dispatchedMicros - t.queuedMicros);
            admission_.pop();
        } else {
            admission_.pop();
            t.dispatchedAt = Clock::now();
            t.dispatchedMicros = trace_.nowMicros();
            hQueue_.observe(t.dispatchedMicros - t.queuedMicros);
            mInlineCells_.inc();
            std::string report = execCellInline(t, dl);
            deliverReport(taskId, report, /*synthesized=*/false);
        }
    }
    gQueueDepth_.set(static_cast<int64_t>(admission_.depth()));
}

void
Server::deliverReport(uint64_t taskId, const std::string &reportText,
                      bool synthesized)
{
    auto ti = tasks_.find(taskId);
    if (ti == tasks_.end())
        return; // already resolved (e.g. drain raced a late result)
    Task t = std::move(ti->second);
    tasks_.erase(ti);
    auto ri = requests_.find(t.requestKey);
    if (ri == requests_.end())
        return;
    Request &r = ri->second;

    if (!synthesized)
        admission_.observeServiceSeconds(
            secondsUntil(t.dispatchedAt) * -1.0);

    if (t.dispatchedMicros > 0) {
        uint64_t nowM = trace_.nowMicros();
        hExec_.observe(nowM - t.dispatchedMicros);
        if (traceEnabled_)
            trace_.complete(
                "exec", synthesized ? "serve/synthesized" : "serve/cell",
                t.slot >= 0 ? 1 + t.slot : 1000, t.dispatchedMicros,
                nowM - t.dispatchedMicros, t.label, t.traceId);
    }

    bool failed = true;
    Json rep;
    if (Json::parse(reportText, &rep)) {
        const Json *ok = rep.find("statusOk");
        failed = !(ok && ok->asBool(false));
    }

    queuePayload(r.connFd,
                 strcat("{\"type\":\"cell\",\"id\":", Json(r.id).dump(),
                        ",\"index\":", t.index,
                        ",\"report\":", reportText, "}"));
    ++r.completed;
    if (failed)
        ++r.failed;
    finishRequestIfDone(r);
}

void
Server::synthesizeFailure(uint64_t taskId, const std::string &kind,
                          int termSignal, const std::string &message,
                          RunStatus::Code code)
{
    auto ti = tasks_.find(taskId);
    if (ti == tasks_.end())
        return;
    deliverReport(taskId,
                  failureReport(ti->second.label, code, message, kind,
                                termSignal),
                  /*synthesized=*/true);
}

void
Server::finishRequestIfDone(Request &r)
{
    if (r.completed < r.cells)
        return;
    uint64_t nowM = trace_.nowMicros();
    uint64_t e2e =
        r.receivedMicros > 0 ? nowM - r.receivedMicros : 0;
    hE2e_.observe(e2e);
    if (traceEnabled_ && r.receivedMicros > 0)
        trace_.complete("request", "serve/request", 0, r.receivedMicros,
                        e2e, r.id, r.traceId);
    if (log_.enabled()) {
        uint64_t wallMs = e2e / 1000;
        Json f = Json::object();
        f.set("requestId", r.id);
        f.set("traceId", r.traceId);
        f.set("cells", static_cast<uint64_t>(r.cells));
        f.set("failed", static_cast<uint64_t>(r.failed));
        f.set("wallMs", wallMs);
        log_.event(EventLog::Level::Info, "request.done", f);
        if (options_.slowRequestMs > 0 &&
            wallMs >
                static_cast<uint64_t>(options_.slowRequestMs)) {
            f.set("slowRequestMs",
                  static_cast<uint64_t>(options_.slowRequestMs));
            log_.event(EventLog::Level::Warn, "request.slow", f);
        }
    }
    queuePayload(r.connFd,
                 strcat("{\"type\":\"done\",\"id\":", Json(r.id).dump(),
                        ",\"cells\":", r.cells, ",\"failed\":", r.failed,
                        "}"));
    requests_.erase(r.key);
}

void
Server::beginDrain()
{
    if (draining_)
        return;
    draining_ = true;
    if (log_.enabled()) {
        Json f = Json::object();
        f.set("queued",
              static_cast<uint64_t>(admission_.depth()));
        f.set("inFlight", static_cast<uint64_t>(tasks_.size()));
        log_.event(EventLog::Level::Info, "server.drain.begin", f);
    }
    drainDeadline_ =
        Clock::now() + std::chrono::milliseconds(options_.drainMs);
    if (unixFd_ >= 0) {
        ::close(unixFd_);
        unixFd_ = -1;
    }
    if (tcpFd_ >= 0) {
        ::close(tcpFd_);
        tcpFd_ = -1;
    }
}

void
Server::finishDrain()
{
    // Queued-but-undispatched cells become per-cell timeouts...
    while (!admission_.empty()) {
        uint64_t taskId = admission_.front();
        admission_.pop();
        synthesizeFailure(taskId, "drain", 0,
                          "server drained before the cell ran",
                          RunStatus::Code::Timeout);
    }
    // ...and in-flight workers get the remaining drain budget, then
    // SIGKILL; their tasks resolve through the failure path as hangs.
    int64_t remainingMs = static_cast<int64_t>(
        secondsUntil(drainDeadline_) * 1000.0);
    pool_.shutdown(remainingMs > 0 ? static_cast<int>(remainingMs) : 0);
    // Every task should now be resolved; sweep defensively so the
    // exactly-one-terminal-response invariant holds even for states
    // this code never meant to reach.
    while (!tasks_.empty())
        synthesizeFailure(tasks_.begin()->first, "drain", 0,
                          "server drained before the cell resolved",
                          RunStatus::Code::Timeout);
    std::vector<uint64_t> leftover;
    for (auto &[key, r] : requests_)
        leftover.push_back(key);
    for (uint64_t key : leftover) {
        auto it = requests_.find(key);
        if (it != requests_.end()) {
            it->second.completed = it->second.cells;
            finishRequestIfDone(it->second);
        }
    }
    Clock::time_point flushDeadline =
        Clock::now() + std::chrono::milliseconds(500);
    for (;;) {
        bool pendingOut = false;
        std::vector<int> fds;
        for (auto &[fd, conn] : conns_)
            if (!conn.out.empty()) {
                pendingOut = true;
                fds.push_back(fd);
            }
        if (!pendingOut || Clock::now() >= flushDeadline)
            break;
        for (int fd : fds) {
            auto it = conns_.find(fd);
            if (it != conns_.end())
                flushConn(it->second);
        }
        struct pollfd pf = {fds.empty() ? -1 : fds[0], POLLOUT, 0};
        ::poll(&pf, 1, 10);
    }
    for (auto &[fd, conn] : conns_)
        ::close(fd);
    conns_.clear();
    gConns_.set(0);
    running_ = false;
    stopped_ = true;
    if (log_.enabled()) {
        Json f = Json::object();
        WorkerPoolStats ps = pool_.stats();
        f.set("workerDeaths", static_cast<int64_t>(ps.deaths));
        f.set("hangKills", static_cast<int64_t>(ps.hangKills));
        log_.event(EventLog::Level::Info, "server.drain.end", f);
    }
    writeTraceIfConfigured();
}

void
Server::refreshPidMirror()
{
    std::lock_guard<std::mutex> lock(pidMutex_);
    pidMirror_ = pool_.workerPids();
}

std::vector<int>
Server::workerPids() const
{
    std::lock_guard<std::mutex> lock(pidMutex_);
    return pidMirror_;
}

void
Server::serve()
{
    running_ = true;
    while (running_) {
        std::vector<struct pollfd> fds;
        fds.push_back({stopPipe_[0], POLLIN, 0});
        size_t unixIdx = 0, tcpIdx = 0;
        if (unixFd_ >= 0) {
            unixIdx = fds.size();
            fds.push_back({unixFd_, POLLIN, 0});
        }
        if (tcpFd_ >= 0) {
            tcpIdx = fds.size();
            fds.push_back({tcpFd_, POLLIN, 0});
        }
        size_t connStart = fds.size();
        std::vector<int> connFds;
        for (auto &[fd, conn] : conns_) {
            short events = POLLIN;
            if (!conn.out.empty())
                events |= POLLOUT;
            fds.push_back({fd, events, 0});
            connFds.push_back(fd);
        }
        pool_.collectFds(fds);

        int timeout = pool_.nextDeadlineMs(200);
        if (draining_) {
            int64_t ms = static_cast<int64_t>(
                secondsUntil(drainDeadline_) * 1000.0);
            if (ms < 0)
                ms = 0;
            if (ms < timeout)
                timeout = static_cast<int>(ms);
        }
        int rc = ::poll(fds.data(), fds.size(), timeout);
        if (rc < 0 && errno != EINTR)
            break;

        if (fds[0].revents & POLLIN) {
            char buf[64];
            while (::read(stopPipe_[0], buf, sizeof buf) > 0)
                ;
            beginDrain();
        }
        if (unixFd_ >= 0 && (fds[unixIdx].revents & POLLIN))
            acceptReady(unixFd_);
        if (tcpFd_ >= 0 && (fds[tcpIdx].revents & POLLIN))
            acceptReady(tcpFd_);
        for (size_t i = 0; i < connFds.size(); ++i) {
            short rev = fds[connStart + i].revents;
            if (rev & (POLLIN | POLLHUP | POLLERR))
                readConn(connFds[i]);
            if (rev & POLLOUT) {
                auto it = conns_.find(connFds[i]);
                if (it != conns_.end())
                    flushConn(it->second);
            }
        }

        pool_.onReadable();
        pool_.tick();
        gDegraded_.set(pool_.degraded() ? 1 : 0);
        refreshPidMirror();
        pump();

        if (draining_ &&
            (requests_.empty() || Clock::now() >= drainDeadline_))
            finishDrain();
    }
}

#else // !MXL_SERVER_POSIX

bool
Server::listenUnix(std::string *err)
{
    *err = "serving requires a POSIX platform";
    return false;
}

bool
Server::listenTcp(std::string *err)
{
    *err = "serving requires a POSIX platform";
    return false;
}

bool
Server::start(std::string *err)
{
    *err = "serving requires a POSIX platform";
    return false;
}

void
Server::serve()
{
}

void
Server::requestStop()
{
}

void
Server::installSignalHandlers()
{
}

void
Server::acceptReady(int)
{
}

void
Server::readConn(int)
{
}

void
Server::closeConn(int)
{
}

void
Server::handleFrame(Conn &, const std::string &)
{
}

void
Server::handleGrid(Conn &, const Json &)
{
}

void
Server::sendHealth(Conn &)
{
}

void
Server::queuePayload(int, const std::string &)
{
}

void
Server::flushConn(Conn &)
{
}

void
Server::pump()
{
}

double
Server::effectiveDeadlineSeconds(const Task &, const Request &,
                                 bool *expired) const
{
    *expired = false;
    return 0;
}

std::string
Server::execCellInline(const Task &, double)
{
    return std::string();
}

void
Server::deliverReport(uint64_t, const std::string &, bool)
{
}

void
Server::synthesizeFailure(uint64_t, const std::string &, int,
                          const std::string &, RunStatus::Code)
{
}

void
Server::finishRequestIfDone(Request &)
{
}

void
Server::beginDrain()
{
}

void
Server::finishDrain()
{
}

void
Server::refreshPidMirror()
{
}

std::vector<int>
Server::workerPids() const
{
    return {};
}

std::string
Server::runCellPayload(const Json &, double, bool,
                       const std::string &)
{
    return std::string();
}

#endif // MXL_SERVER_POSIX

// Platform-neutral: the trace is an in-memory structure either way.
void
Server::writeTraceIfConfigured()
{
    if (!traceEnabled_)
        return;
    if (!trace_.writeFile(options_.tracePath))
        std::fprintf(stderr,
                     "mxl-served: failed to write trace to %s\n",
                     options_.tracePath.c_str());
}

} // namespace mxl
