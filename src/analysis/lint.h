/**
 * @file
 * mxlint: static verification of tag discipline in compiled MX units.
 *
 * Built on the CFG (analysis/cfg.h) and the tag-flow solver
 * (analysis/tagflow.h), the linter proves properties the dynamic
 * machinery (obs/) can only sample:
 *
 *   Errors   — violations of the discipline the compiler promises:
 *              structural delay-slot damage (control transfer, trapping
 *              instruction or branch target inside a slot, truncated
 *              groups) and, under Checking::Full, a car/cdr-class
 *              memory access whose base is not proven to carry a single
 *              compatible pointer tag on every path reaching it.
 *   Warnings — suspicious but not fatal: unreachable non-empty blocks,
 *              a delay slot clobbering the very register its check
 *              branch just verified, and checks that *always* fail.
 *   Info     — measurements: checks that can never fail (the redundant
 *              checks analysis/checkelim.h deletes) and uses of a load
 *              result in the load-delay shadow (a one-cycle interlock
 *              stall on MX, not a fault).
 *
 * Diagnostics carry the instruction index, the nearest symbol + offset
 * ("fn_foo+12"), and the disassembled instruction.
 */

#ifndef MXLISP_ANALYSIS_LINT_H_
#define MXLISP_ANALYSIS_LINT_H_

#include <string>
#include <vector>

#include "analysis/cfg.h"
#include "compiler/options.h"
#include "compiler/unit.h"
#include "isa/instruction.h"
#include "tags/tag_scheme.h"

namespace mxl {

enum class LintSeverity : uint8_t { Error, Warning, Info };

enum class LintKind : uint8_t
{
    MalformedDelayGroup, ///< structural violation from Cfg::malformed
    UncheckedListAccess, ///< checked-category load/store with unproven base
    TagClobberInSlot,    ///< delay slot overwrites the checked register
    UnreachableBlock,    ///< non-empty block with no path from any root
    CheckAlwaysFails,    ///< a check branch provably always traps
    CheckNeverFails,     ///< a check branch provably never traps
    LoadDelayUse,        ///< load result used in the next (stall) cycle
};

const char *lintKindName(LintKind k);
const char *lintSeverityName(LintSeverity s);

struct LintFinding
{
    LintKind kind;
    LintSeverity severity;
    int pc = -1;          ///< instruction index
    std::string where;    ///< "symbol+offset" or "@pc"
    std::string text;     ///< disassembled instruction
    std::string message;  ///< what is wrong

    /** "error: UncheckedListAccess at fn_car+3 (@123: ld r1, 0(r10)): ..." */
    std::string render() const;
};

struct LintReport
{
    std::vector<LintFinding> findings;
    int errors = 0;
    int warnings = 0;
    int infos = 0;

    int count(LintKind k) const;
    /** All findings, one per line, ordered by severity then pc. */
    std::string render(bool includeInfo = false) const;
};

/**
 * Lint a linked program. @p opts supplies the scheme and checking level
 * the program was compiled under (UncheckedListAccess only applies at
 * Checking::Full); @p extraRoots adds reachability roots beyond the
 * exported symbols (entry point, trap handlers).
 */
LintReport lintProgram(const Program &prog, const TagScheme &scheme,
                       const CompilerOptions &opts,
                       const std::vector<int> &extraRoots = {});

/** Lint a compiled unit (scheme/options/roots taken from the unit). */
LintReport lintUnit(const CompiledUnit &unit);

/** "symbol+offset" for @p pc, or "@pc" when no symbol precedes it. */
std::string describePc(const Program &prog, int pc);

} // namespace mxl

#endif // MXLISP_ANALYSIS_LINT_H_
