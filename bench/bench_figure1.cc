/**
 * Reproduces Figure 1: percentage of time spent on each tag operation
 * (insertion, removal, extraction, checking), with three bars per
 * operation: without run-time checking, the component added by
 * checking, and with checking. Also the §3.5 summary band (total tag
 * cost 22%-32%, with its standard deviations).
 */

#include <cstdio>

#include "bench_export.h"
#include "core/engine.h"
#include "core/experiment.h"
#include "core/paper.h"
#include "core/report.h"
#include "support/stats.h"
#include "support/format.h"
#include "support/table.h"

using namespace mxl;

int
main()
{
    std::printf("Figure 1: %% of time spent on tag handling operations\n");
    std::printf("(ten-program average; paper bar heights in "
                "parentheses)\n\n");

    Engine eng;
    std::vector<RunRequest> reqs;
    std::vector<RunReport> reports;
    auto ms = measureAll(eng, baselineOptions(Checking::Off), &reqs,
                         &reports);
    auto avg = figure1Average(ms);

    TextTable t;
    t.addRow({"operation", "without rtc", "added by rtc", "with rtc",
              "(paper w/o)", "(paper with)"});
    for (int i = 0; i < fig1Ops; ++i) {
        const auto &p = paper::figure1()[i];
        t.addRow({fig1OpNames[i], percent(avg.withoutRtc[i]),
                  percent(avg.addedByRtc[i]), percent(avg.withRtc[i]),
                  strcat("(", percent(p.withoutRtc), ")"),
                  strcat("(", percent(p.withRtc), ")")});
    }
    std::printf("%s\n", t.render().c_str());

    // §3.5 summary: total cost band and spread across programs.
    std::vector<double> without, with;
    for (const auto &m : ms) {
        auto f = figure1Bars(m);
        without.push_back(f.totalWithout);
        with.push_back(f.totalWith);
    }
    std::printf("Summary (§3.5): total tag handling cost\n");
    std::printf("  without checking: %s (stddev %s)   paper: ~%s "
                "(stddev %s)\n",
                percent(mean(without)).c_str(),
                percent(stddev(without)).c_str(),
                percent(paper::totalCostWithoutRtc).c_str(),
                fixed(paper::stddevWithoutRtc).c_str());
    std::printf("  with checking:    %s (stddev %s)   paper: ~%s "
                "(stddev %s)\n",
                percent(mean(with)).c_str(),
                percent(stddev(with)).c_str(),
                percent(paper::totalCostWithRtc).c_str(),
                fixed(paper::stddevWithRtc).c_str());

    std::printf("\nPer-program totals (without -> with checking):\n");
    for (size_t i = 0; i < ms.size(); ++i) {
        auto f = figure1Bars(ms[i]);
        std::printf("  %-7s %6s -> %6s\n", ms[i].program.c_str(),
                    percent(f.totalWithout).c_str(),
                    percent(f.totalWith).c_str());
    }

    std::printf("\n");
    return writeBenchJson("figure1", benchDoc("figure1",
                                              gridJson(reqs, reports),
                                              &eng))
               ? 0
               : 1;
}
