/**
 * Fault-injection subsystem tests: deterministic seeding, injector
 * behavior on real compiled images, outcome classification, and
 * campaign invariants (replayability, count conservation, and the
 * detection differential between checked and unchecked configurations).
 * Run under -DMXL_SANITIZE=address to check the injectors stay inside
 * the simulated image.
 */

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "compiler/unit.h"
#include "core/engine.h"
#include "core/experiment.h"
#include "faults/campaign.h"
#include "faults/fault_injector.h"
#include "faults/stats.h"
#include "runtime/stubs.h"
#include "support/json.h"
#include "support/panic.h"

using namespace mxl;

namespace {

const char *const kSumList =
    "(de sumlist (l) (if (null l) 0 (+ (car l) (sumlist (cdr l)))))"
    "(print (sumlist (quote (1 2 3 4 5 6 7 8 9 10))))";

const char *const kRev =
    "(de rev (l acc) (if (null l) acc (rev (cdr l) (cons (car l) acc))))"
    "(print (length (rev (quote (a b c d e f g h)) nil)))";

CompilerOptions
uncheckedOpts()
{
    return baselineOptions(Checking::Off);
}

CompilerOptions
checkedAllOpts()
{
    CompilerOptions o = baselineOptions(Checking::Full);
    o.hw.branchOnTag = true;
    o.hw.genericArith = true;
    o.hw.checkedMemory = CheckedMem::All;
    return o;
}

/** A golden-shaped report: clean halt with the given output. */
RunReport
goldenReport(const std::string &output = "55\n", uint32_t exitValue = 0)
{
    RunReport rep;
    rep.result.stop = StopReason::Halted;
    rep.result.output = output;
    rep.result.exitValue = exitValue;
    return rep;
}

} // namespace

// ---- seeding ----------------------------------------------------------

TEST(FaultRng, DeterministicStreams)
{
    FaultRng a(42), b(42), c(43);
    for (int i = 0; i < 16; ++i) {
        uint64_t va = a.next();
        EXPECT_EQ(va, b.next());
        EXPECT_NE(va, c.next()); // astronomically unlikely to collide
    }
    FaultRng d(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_LT(d.below(13), 13u);
    EXPECT_EQ(FaultRng::mix(1, 2), FaultRng::mix(1, 2));
    EXPECT_NE(FaultRng::mix(1, 2), FaultRng::mix(1, 3));
    EXPECT_NE(FaultRng::mix(1, 2), FaultRng::mix(2, 2));
}

TEST(FaultSpec, DescribeNamesClassAndSeed)
{
    FaultSpec spec;
    spec.cls = FaultClass::TagCorrupt;
    spec.seed = 99;
    EXPECT_EQ(spec.describe(), "tag-corrupt(seed=99)");
    EXPECT_STREQ(faultClassName(FaultClass::BitFlip), "bit-flip");
    EXPECT_STREQ(faultClassName(FaultClass::CallArgType), "call-arg-type");
    EXPECT_STREQ(faultClassName(FaultClass::HeapTagCorrupt),
                 "heap-tag-corrupt");
    EXPECT_STREQ(faultClassName(FaultClass::HeapBitFlip), "heap-bit-flip");
}

TEST(FaultSpec, HeapClassesArePauseBased)
{
    EXPECT_FALSE(faultClassIsHeap(FaultClass::TagCorrupt));
    EXPECT_FALSE(faultClassIsHeap(FaultClass::BitFlip));
    EXPECT_FALSE(faultClassIsHeap(FaultClass::CallArgType));
    EXPECT_TRUE(faultClassIsHeap(FaultClass::HeapTagCorrupt));
    EXPECT_TRUE(faultClassIsHeap(FaultClass::HeapBitFlip));

    FaultSpec spec;
    spec.cls = FaultClass::HeapBitFlip;
    spec.seed = 7;
    spec.pauseCycle = 1234;
    EXPECT_EQ(spec.describe(), "heap-bit-flip(seed=7,pause=1234)");
}

// ---- injectors on a real compiled image -------------------------------

TEST(FaultInjector, TagCorruptIsDeterministicAndTagConfined)
{
    CompiledUnit unit = compileUnit(kSumList, uncheckedOpts());
    RunRequest req;
    FaultSpec spec;
    spec.cls = FaultClass::TagCorrupt;
    spec.seed = 5;
    armFault(req, spec);
    ASSERT_TRUE(static_cast<bool>(req.hooks.imageMutator));
    ASSERT_FALSE(static_cast<bool>(req.hooks.machineSetup));

    Memory a = unit.memory;
    Memory b = unit.memory;
    req.hooks.imageMutator(a, unit);
    req.hooks.imageMutator(b, unit);

    const TagScheme &s = *unit.scheme;
    int diffs = 0;
    for (uint32_t i = 0; i < a.size() / 4; ++i) {
        uint32_t before = unit.memory.word(i);
        uint32_t after = a.word(i);
        EXPECT_EQ(after, b.word(i)) << "same seed, different image";
        if (before == after)
            continue;
        ++diffs;
        uint32_t delta = before ^ after;
        // Only the tag field changed; the data part is intact.
        EXPECT_NE(s.primaryTag(before), s.primaryTag(after));
        EXPECT_EQ(delta & ~(((1u << s.tagBits()) - 1u) << s.tagShift()),
                  0u);
    }
    EXPECT_EQ(diffs, 1);
}

TEST(FaultInjector, DistinctSeedsCoverDistinctSites)
{
    CompiledUnit unit = compileUnit(kSumList, uncheckedOpts());
    // Across many seeds, the injector must not collapse onto one site.
    int distinctWords = 0;
    std::vector<uint32_t> firstDiff;
    for (uint64_t seed = 0; seed < 24; ++seed) {
        RunRequest req;
        FaultSpec spec;
        spec.cls = FaultClass::TagCorrupt;
        spec.seed = FaultRng::mix(1, seed);
        armFault(req, spec);
        Memory img = unit.memory;
        req.hooks.imageMutator(img, unit);
        for (uint32_t i = 0; i < img.size() / 4; ++i)
            if (img.word(i) != unit.memory.word(i)) {
                bool seen = false;
                for (uint32_t w : firstDiff)
                    seen |= w == i;
                if (!seen) {
                    firstDiff.push_back(i);
                    ++distinctWords;
                }
                break;
            }
    }
    EXPECT_GE(distinctWords, 3);
}

TEST(FaultInjector, BitFlipFlipsExactlyOneBit)
{
    CompiledUnit unit = compileUnit(kRev, uncheckedOpts());
    RunRequest req;
    FaultSpec spec;
    spec.cls = FaultClass::BitFlip;
    spec.seed = 11;
    armFault(req, spec);
    Memory img = unit.memory;
    req.hooks.imageMutator(img, unit);

    int flippedBits = 0;
    for (uint32_t i = 0; i < img.size() / 4; ++i) {
        uint32_t delta = img.word(i) ^ unit.memory.word(i);
        while (delta) {
            flippedBits += delta & 1u;
            delta >>= 1;
        }
    }
    EXPECT_EQ(flippedBits, 1);
}

TEST(FaultInjector, CallArgTypeInstallsMachineHook)
{
    RunRequest req;
    FaultSpec spec;
    spec.cls = FaultClass::CallArgType;
    spec.seed = 3;
    armFault(req, spec);
    EXPECT_FALSE(static_cast<bool>(req.hooks.imageMutator));
    EXPECT_TRUE(static_cast<bool>(req.hooks.machineSetup));
}

// ---- classification ---------------------------------------------------

TEST(Classify, MaskedVsSilentWrongAnswer)
{
    RunReport golden = goldenReport();
    DetectChannel ch;
    EXPECT_EQ(classifyOutcome(goldenReport(), golden, &ch),
              Outcome::Masked);
    EXPECT_EQ(ch, DetectChannel::None);
    EXPECT_EQ(classifyOutcome(goldenReport("54\n"), golden, nullptr),
              Outcome::SilentWrongAnswer);
    EXPECT_EQ(classifyOutcome(goldenReport("55\n", 1), golden, nullptr),
              Outcome::SilentWrongAnswer);
}

TEST(Classify, DetectionChannels)
{
    RunReport golden = goldenReport();
    DetectChannel ch;

    RunReport swCheck = goldenReport();
    swCheck.result.stop = StopReason::Errored;
    swCheck.result.errorCode = rtcode::typeError;
    EXPECT_EQ(classifyOutcome(swCheck, golden, &ch), Outcome::Detected);
    EXPECT_EQ(ch, DetectChannel::SoftwareCheck);

    swCheck.result.errorCode = rtcode::undefinedFunction;
    EXPECT_EQ(classifyOutcome(swCheck, golden, &ch), Outcome::Detected);
    EXPECT_EQ(ch, DetectChannel::SoftwareCheck);

    RunReport hwHandled = goldenReport();
    hwHandled.result.stop = StopReason::Errored;
    hwHandled.result.errorCode = rtcode::tagTrap;
    EXPECT_EQ(classifyOutcome(hwHandled, golden, &ch), Outcome::Detected);
    EXPECT_EQ(ch, DetectChannel::HardwareTrap);

    RunReport hwBare = goldenReport();
    hwBare.result.stop = StopReason::Errored;
    hwBare.result.errorCode =
        encodeUnhandledTrap(TrapKind::TagMismatch, 123);
    EXPECT_EQ(classifyOutcome(hwBare, golden, &ch), Outcome::Detected);
    EXPECT_EQ(ch, DetectChannel::HardwareTrap);
}

TEST(Classify, CrashesLimitsAndTimeouts)
{
    RunReport golden = goldenReport();

    RunReport wild = goldenReport();
    wild.result.stop = StopReason::IllegalAccess;
    wild.result.errorCode = 0xdead0000;
    EXPECT_EQ(classifyOutcome(wild, golden, nullptr),
              Outcome::CrashIllegalAccess);

    RunReport div0 = goldenReport();
    div0.result.stop = StopReason::Errored;
    div0.result.errorCode = kDivideByZeroCode;
    EXPECT_EQ(classifyOutcome(div0, golden, nullptr),
              Outcome::CrashIllegalAccess);

    RunReport internal = goldenReport();
    internal.status.code = RunStatus::Code::InternalError;
    EXPECT_EQ(classifyOutcome(internal, golden, nullptr),
              Outcome::CrashIllegalAccess);

    RunReport limit = goldenReport();
    limit.result.stop = StopReason::CycleLimit;
    EXPECT_EQ(classifyOutcome(limit, golden, nullptr),
              Outcome::CycleLimit);

    RunReport timeout = goldenReport();
    timeout.status.code = RunStatus::Code::Timeout;
    timeout.result.stop = StopReason::CycleLimit;
    timeout.result.timedOut = true;
    EXPECT_EQ(classifyOutcome(timeout, golden, nullptr),
              Outcome::CycleLimit);
}

// ---- campaigns --------------------------------------------------------

namespace {

Campaign
smallCampaign()
{
    Campaign c;
    c.programs.push_back({"sumlist", kSumList, 5'000'000});
    c.programs.push_back({"rev", kRev, 5'000'000});
    c.configs.push_back({"unchecked", uncheckedOpts()});
    c.configs.push_back({"checked-all", checkedAllOpts()});
    c.classes = {FaultClass::TagCorrupt, FaultClass::BitFlip,
                 FaultClass::CallArgType};
    c.trials = 10;
    c.seed = 2026;
    c.deadlineSeconds = 10;
    return c;
}

} // namespace

TEST(Campaign, CountsAreConserved)
{
    Engine eng(2);
    Campaign c = smallCampaign();
    CampaignResult r = runCampaign(eng, c);

    ASSERT_EQ(r.configCount, c.configs.size());
    ASSERT_EQ(r.classCount, c.classes.size());
    ASSERT_EQ(r.cells.size(), r.configCount * r.classCount);
    ASSERT_EQ(r.trials.size(), c.programs.size() * c.configs.size() *
                                   c.classes.size() *
                                   static_cast<size_t>(c.trials));
    const int perCell = static_cast<int>(c.programs.size()) * c.trials;
    for (size_t cfg = 0; cfg < r.configCount; ++cfg)
        for (size_t cls = 0; cls < r.classCount; ++cls) {
            const CampaignCell &cell = r.cell(cfg, cls);
            EXPECT_EQ(cell.total(), perCell);
            EXPECT_EQ(cell.hardwareTraps + cell.softwareChecks,
                      cell.detected());
        }
}

TEST(Campaign, ReplayIsIdentical)
{
    Campaign c = smallCampaign();
    Engine eng1(2), eng2(3); // thread count must not matter
    CampaignResult a = runCampaign(eng1, c);
    CampaignResult b = runCampaign(eng2, c);

    ASSERT_EQ(a.trials.size(), b.trials.size());
    for (size_t i = 0; i < a.trials.size(); ++i) {
        EXPECT_EQ(a.trials[i].faultSeed, b.trials[i].faultSeed);
        EXPECT_EQ(a.trials[i].outcome, b.trials[i].outcome) << i;
        EXPECT_EQ(a.trials[i].channel, b.trials[i].channel) << i;
        EXPECT_EQ(a.trials[i].errorCode, b.trials[i].errorCode) << i;
    }
    EXPECT_EQ(a.renderMatrix(), b.renderMatrix());
}

TEST(Campaign, SharedFaultPopulationAcrossConfigs)
{
    // The fault seed depends on (program, class, trial) but NOT the
    // configuration, so detection rates compare the same fault set.
    Campaign c = smallCampaign();
    Engine eng(2);
    CampaignResult r = runCampaign(eng, c);
    for (const TrialRecord &t : r.trials)
        for (const TrialRecord &u : r.trials)
            if (t.program == u.program && t.cls == u.cls &&
                t.trial == u.trial)
                EXPECT_EQ(t.faultSeed, u.faultSeed);
}

TEST(Campaign, CheckedHardwareDetectsMoreTagCorruptions)
{
    // The acceptance differential: full checked-memory hardware must
    // detect strictly more injected tag corruptions than the unchecked
    // baseline (which masks tags off addresses and computes on).
    Campaign c = smallCampaign();
    c.trials = 15;
    Engine eng;
    CampaignResult r = runCampaign(eng, c);

    const size_t tagCls = 0; // TagCorrupt is first in smallCampaign()
    int unchecked = r.cell(0, tagCls).detected();
    int checked = r.cell(1, tagCls).detected();
    EXPECT_GT(checked, unchecked)
        << "\n" << r.renderMatrix();
    // And the checked config's detections include hardware traps.
    EXPECT_GT(r.cell(1, tagCls).hardwareTraps, 0);
}

TEST(Campaign, MatrixRendersEveryConfigAndClass)
{
    Campaign c = smallCampaign();
    c.trials = 4;
    Engine eng(2);
    CampaignResult r = runCampaign(eng, c);
    std::string matrix = r.renderMatrix();
    EXPECT_NE(matrix.find("unchecked"), std::string::npos);
    EXPECT_NE(matrix.find("checked-all"), std::string::npos);
    EXPECT_NE(matrix.find("tag-corrupt"), std::string::npos);
    EXPECT_NE(matrix.find("bit-flip"), std::string::npos);
    EXPECT_NE(matrix.find("call-arg-type"), std::string::npos);
}

// ---- heap-resident fault classes --------------------------------------

TEST(FaultInjector, HeapClassesArmThePauseSeamNotTheImage)
{
    RunRequest req;
    FaultSpec spec;
    spec.cls = FaultClass::HeapTagCorrupt;
    spec.seed = 17;
    spec.pauseCycle = 5000;
    armFault(req, spec);
    EXPECT_FALSE(static_cast<bool>(req.hooks.imageMutator));
    EXPECT_FALSE(static_cast<bool>(req.hooks.machineSetup));
    EXPECT_TRUE(static_cast<bool>(req.hooks.snapshotHook));
    EXPECT_EQ(req.hooks.pauseAtCycle, 5000u);

    RunRequest flip;
    spec.cls = FaultClass::HeapBitFlip;
    armFault(flip, spec);
    EXPECT_TRUE(static_cast<bool>(flip.hooks.snapshotHook));
    EXPECT_EQ(flip.hooks.pauseAtCycle, 5000u);
}

TEST(FaultInjector, HeapInjectionIsDeterministicThroughTheEngine)
{
    // The same heap fault spec applied to the same (program, config)
    // must classify identically across runs and engines — the property
    // journal-based resume depends on.
    Engine eng(2);
    RunRequest golden;
    golden.source = kRev;
    golden.opts = checkedAllOpts();
    RunReport goldenRep = eng.run(golden);
    ASSERT_TRUE(goldenRep.ok()) << goldenRep.status.message;
    ASSERT_GT(goldenRep.result.stats.total, 100u);

    FaultSpec spec;
    spec.cls = FaultClass::HeapTagCorrupt;
    spec.seed = FaultRng::mix(2026, 5);
    spec.pauseCycle = goldenRep.result.stats.total / 2;

    RunRequest a = golden, b = golden;
    armFault(a, spec);
    armFault(b, spec);
    RunReport ra = eng.run(a);
    Engine eng2(1);
    RunReport rb = eng2.run(b);
    ASSERT_TRUE(ra.ok()) << ra.status.message;
    EXPECT_TRUE(ra.result.snapshotTaken);
    EXPECT_TRUE(rb.result.snapshotTaken);
    EXPECT_EQ(ra.result.stop, rb.result.stop);
    EXPECT_EQ(ra.result.output, rb.result.output);
    EXPECT_EQ(ra.result.errorCode, rb.result.errorCode);
    EXPECT_EQ(ra.result.stats.total, rb.result.stats.total);
    EXPECT_EQ(classifyOutcome(ra, goldenRep),
              classifyOutcome(rb, goldenRep));
}

namespace {

Campaign
heapCampaign()
{
    Campaign c = smallCampaign();
    c.classes = {FaultClass::TagCorrupt, FaultClass::HeapTagCorrupt,
                 FaultClass::HeapBitFlip};
    c.trials = 5;
    return c;
}

} // namespace

TEST(Campaign, HeapClassesGetMidRunPauseCycles)
{
    Engine eng(2);
    Campaign c = heapCampaign();
    CampaignResult r = runCampaign(eng, c);

    ASSERT_EQ(r.trials.size(), c.programs.size() * c.configs.size() *
                                   c.classes.size() *
                                   static_cast<size_t>(c.trials));
    for (const TrialRecord &t : r.trials) {
        const RunReport &g = r.golden(t.program, t.config);
        ASSERT_TRUE(g.ok());
        if (faultClassIsHeap(c.classes[t.cls])) {
            // Pause lands strictly inside the golden run: the fault
            // perturbs live state, not the initial or final image.
            EXPECT_GT(t.pauseCycle, 0u) << t.program << "/" << t.config;
            EXPECT_LT(t.pauseCycle, g.result.stats.total);
        } else {
            EXPECT_EQ(t.pauseCycle, 0u);
        }
    }
    // Counts are conserved for the heap classes like any other.
    const int perCell = static_cast<int>(c.programs.size()) * c.trials;
    for (size_t cfg = 0; cfg < r.configCount; ++cfg)
        for (size_t cls = 0; cls < r.classCount; ++cls)
            EXPECT_EQ(r.cell(cfg, cls).total(), perCell);
}

TEST(Campaign, HeapPauseCyclesShareSitesAcrossConfigs)
{
    // The site-selection seed is configuration-independent (shared
    // fault population), while the pause cycle scales with each
    // configuration's own golden length.
    Engine eng(2);
    Campaign c = heapCampaign();
    CampaignResult r = runCampaign(eng, c);
    for (const TrialRecord &t : r.trials)
        for (const TrialRecord &u : r.trials)
            if (t.program == u.program && t.cls == u.cls &&
                t.trial == u.trial)
                EXPECT_EQ(t.faultSeed, u.faultSeed);
}

// ---- durability: journal, resume, skip --------------------------------

namespace {

std::string
tempJournal(const char *name)
{
    return testing::TempDir() + name;
}

std::vector<std::string>
readLines(const std::string &path)
{
    std::ifstream in(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        if (!line.empty())
            lines.push_back(line);
    return lines;
}

} // namespace

TEST(Campaign, JournalRecordsHeaderAndEveryTrial)
{
    const std::string path = tempJournal("journal_full.jsonl");
    std::remove(path.c_str());

    Engine eng(2);
    Campaign c = smallCampaign();
    c.trials = 3;
    CampaignRunOptions options;
    options.journalPath = path;
    size_t hookCalls = 0;
    options.onTrial = [&](const TrialRecord &) { ++hookCalls; };
    CampaignResult r = runCampaign(eng, c, options);

    EXPECT_EQ(r.journaled, 0u);
    EXPECT_EQ(hookCalls, r.trials.size());
    std::vector<std::string> lines = readLines(path);
    ASSERT_EQ(lines.size(), 1 + r.trials.size());
    EXPECT_NE(lines[0].find("mxl-campaign"), std::string::npos);
    Json trial;
    ASSERT_TRUE(Json::parse(lines[1], &trial));
    EXPECT_TRUE(trial.find("outcome") != nullptr);
    std::remove(path.c_str());
}

TEST(Campaign, ResumeFromTruncatedJournalConvergesToSameMatrix)
{
    const std::string path = tempJournal("journal_resume.jsonl");
    std::remove(path.c_str());

    Engine eng(2);
    Campaign c = smallCampaign();
    c.trials = 3;
    CampaignRunOptions options;
    options.journalPath = path;
    CampaignResult full = runCampaign(eng, c, options);

    // Simulate a kill: keep the header plus the first half of the
    // trial lines, then resume from the truncated journal.
    std::vector<std::string> lines = readLines(path);
    ASSERT_GT(lines.size(), 3u);
    const size_t keep = (lines.size() - 1) / 2;
    {
        std::ofstream out(path, std::ios::trunc);
        for (size_t i = 0; i <= keep; ++i)
            out << lines[i] << "\n";
    }
    Engine eng2(3); // thread count must not matter
    CampaignResult resumed = resumeCampaign(eng2, c, path);
    EXPECT_EQ(resumed.journaled, keep);
    EXPECT_EQ(resumed.renderMatrix(), full.renderMatrix());
    ASSERT_EQ(resumed.trials.size(), full.trials.size());
    for (size_t i = 0; i < full.trials.size(); ++i) {
        EXPECT_EQ(resumed.trials[i].outcome, full.trials[i].outcome) << i;
        EXPECT_EQ(resumed.trials[i].channel, full.trials[i].channel) << i;
    }
    // The resumed run re-journals the remainder: the journal now covers
    // the full campaign again.
    EXPECT_EQ(readLines(path).size(), 1 + full.trials.size());

    // Resuming a complete journal runs nothing at all.
    Engine eng3(1);
    CampaignResult replay = resumeCampaign(eng3, c, path);
    EXPECT_EQ(replay.journaled, full.trials.size());
    EXPECT_EQ(replay.renderMatrix(), full.renderMatrix());
    EXPECT_EQ(eng3.cacheStats().misses + eng3.cacheStats().hits,
              c.programs.size() * c.configs.size())
        << "a fully journaled campaign should only re-run goldens";
    std::remove(path.c_str());
}

TEST(Campaign, ResumeRejectsJournalFromDifferentCampaign)
{
    const std::string path = tempJournal("journal_mismatch.jsonl");
    std::remove(path.c_str());

    Engine eng(2);
    Campaign c = smallCampaign();
    c.trials = 2;
    CampaignRunOptions options;
    options.journalPath = path;
    runCampaign(eng, c, options);

    Campaign other = c;
    other.seed = c.seed + 1; // different fault population
    EXPECT_THROW(resumeCampaign(eng, other, path), MxlError);
    std::remove(path.c_str());
}

TEST(Campaign, BrokenGoldenSkipsItsTrialsInsteadOfAborting)
{
    Engine eng(2);
    Campaign c = smallCampaign();
    c.trials = 3;
    // An unparsable program: its goldens fail in every configuration,
    // so its trials must come back Skipped while the healthy programs'
    // trials classify normally.
    c.programs.push_back({"broken", "(print (car 1)", 5'000'000});
    CampaignResult r = runCampaign(eng, c);

    ASSERT_EQ(r.trials.size(), c.programs.size() * c.configs.size() *
                                   c.classes.size() *
                                   static_cast<size_t>(c.trials));
    const int brokenIdx = static_cast<int>(c.programs.size()) - 1;
    for (size_t cfg = 0; cfg < c.configs.size(); ++cfg)
        EXPECT_FALSE(r.golden(brokenIdx, cfg).ok());
    int skipped = 0;
    for (const TrialRecord &t : r.trials) {
        if (t.program == brokenIdx) {
            EXPECT_EQ(t.outcome, Outcome::Skipped);
            ++skipped;
        } else {
            EXPECT_NE(t.outcome, Outcome::Skipped);
        }
    }
    EXPECT_EQ(skipped, static_cast<int>(c.configs.size() *
                                        c.classes.size()) *
                           c.trials);
    // The matrix accounts for the hole explicitly.
    for (size_t cfg = 0; cfg < r.configCount; ++cfg)
        for (size_t cls = 0; cls < r.classCount; ++cls)
            EXPECT_EQ(r.cell(cfg, cls).count(Outcome::Skipped), c.trials);
    EXPECT_NE(r.renderMatrix().find("skip"), std::string::npos);
}

TEST(Campaign, OutcomeNamesRoundTrip)
{
    for (int o = 0; o < static_cast<int>(Outcome::NumOutcomes); ++o) {
        Outcome parsed;
        ASSERT_TRUE(
            outcomeFromName(outcomeName(static_cast<Outcome>(o)), &parsed));
        EXPECT_EQ(parsed, static_cast<Outcome>(o));
    }
    Outcome junk;
    EXPECT_FALSE(outcomeFromName("not-an-outcome", &junk));

    for (DetectChannel ch : {DetectChannel::None, DetectChannel::SoftwareCheck,
                             DetectChannel::HardwareTrap}) {
        DetectChannel parsed;
        ASSERT_TRUE(
            detectChannelFromName(detectChannelName(ch), &parsed));
        EXPECT_EQ(parsed, ch);
    }
    DetectChannel junkCh;
    EXPECT_FALSE(detectChannelFromName("not-a-channel", &junkCh));
}

// ---- stack-resident fault classes -------------------------------------

TEST(FaultSpec, StackClassesArePauseBased)
{
    EXPECT_STREQ(faultClassName(FaultClass::StackTagCorrupt),
                 "stack-tag-corrupt");
    EXPECT_STREQ(faultClassName(FaultClass::StackBitFlip),
                 "stack-bit-flip");

    EXPECT_TRUE(faultClassIsStack(FaultClass::StackTagCorrupt));
    EXPECT_TRUE(faultClassIsStack(FaultClass::StackBitFlip));
    EXPECT_FALSE(faultClassIsStack(FaultClass::HeapTagCorrupt));
    EXPECT_FALSE(faultClassIsStack(FaultClass::TagCorrupt));

    // needsPause is exactly heap-or-stack.
    for (FaultClass cls : {FaultClass::TagCorrupt, FaultClass::BitFlip,
                           FaultClass::CallArgType,
                           FaultClass::HeapTagCorrupt,
                           FaultClass::HeapBitFlip,
                           FaultClass::StackTagCorrupt,
                           FaultClass::StackBitFlip})
        EXPECT_EQ(faultClassNeedsPause(cls),
                  faultClassIsHeap(cls) || faultClassIsStack(cls));

    FaultSpec spec;
    spec.cls = FaultClass::StackTagCorrupt;
    spec.seed = 9;
    spec.pauseCycle = 777;
    EXPECT_EQ(spec.describe(), "stack-tag-corrupt(seed=9,pause=777)");
}

TEST(FaultInjector, StackClassesArmThePauseSeamNotTheImage)
{
    for (FaultClass cls :
         {FaultClass::StackTagCorrupt, FaultClass::StackBitFlip}) {
        RunRequest req;
        FaultSpec spec;
        spec.cls = cls;
        spec.seed = 21;
        spec.pauseCycle = 4000;
        armFault(req, spec);
        EXPECT_FALSE(static_cast<bool>(req.hooks.imageMutator));
        EXPECT_FALSE(static_cast<bool>(req.hooks.machineSetup));
        EXPECT_TRUE(static_cast<bool>(req.hooks.snapshotHook));
        EXPECT_EQ(req.hooks.pauseAtCycle, 4000u);
    }
}

TEST(FaultInjector, StackInjectionIsDeterministicThroughTheEngine)
{
    Engine eng(2);
    RunRequest golden;
    golden.source = kRev;
    golden.opts = checkedAllOpts();
    RunReport goldenRep = eng.run(golden);
    ASSERT_TRUE(goldenRep.ok()) << goldenRep.status.message;

    FaultSpec spec;
    spec.cls = FaultClass::StackTagCorrupt;
    spec.seed = FaultRng::mix(2026, 9);
    spec.pauseCycle = goldenRep.result.stats.total / 2;

    RunRequest a = golden, b = golden;
    armFault(a, spec);
    armFault(b, spec);
    RunReport ra = eng.run(a);
    Engine eng2(1);
    RunReport rb = eng2.run(b);
    ASSERT_TRUE(ra.ok()) << ra.status.message;
    EXPECT_TRUE(ra.result.snapshotTaken);
    EXPECT_EQ(ra.result.stop, rb.result.stop);
    EXPECT_EQ(ra.result.output, rb.result.output);
    EXPECT_EQ(ra.result.errorCode, rb.result.errorCode);
    EXPECT_EQ(ra.result.stats.total, rb.result.stats.total);
}

TEST(Campaign, StackClassesGetMidRunPauseCycles)
{
    Engine eng(2);
    Campaign c = smallCampaign();
    c.classes = {FaultClass::TagCorrupt, FaultClass::StackTagCorrupt,
                 FaultClass::StackBitFlip};
    c.trials = 5;
    CampaignResult r = runCampaign(eng, c);

    for (const TrialRecord &t : r.trials) {
        const RunReport &g = r.golden(t.program, t.config);
        ASSERT_TRUE(g.ok());
        if (faultClassIsStack(c.classes[t.cls])) {
            EXPECT_GT(t.pauseCycle, 0u);
            EXPECT_LT(t.pauseCycle, g.result.stats.total);
        } else {
            EXPECT_EQ(t.pauseCycle, 0u);
        }
    }
    const int perCell = static_cast<int>(c.programs.size()) * c.trials;
    for (size_t cfg = 0; cfg < r.configCount; ++cfg)
        for (size_t cls = 0; cls < r.classCount; ++cls)
            EXPECT_EQ(r.cell(cfg, cls).total(), perCell);
}

// ---- classification edge cases ----------------------------------------

TEST(Classify, UnhandledTrapCodeBoundaries)
{
    RunReport golden = goldenReport();
    DetectChannel ch;

    auto errored = [&](int64_t code) {
        RunReport r = goldenReport();
        r.result.stop = StopReason::Errored;
        r.result.errorCode = code;
        return r;
    };

    // The unhandled-trap range is [base + stride, base + 3*stride):
    // kinds ArithFail(1) and TagMismatch(2). Exactly on the lower
    // boundary is a hardware trap; just below it is not.
    const int64_t lo = kUnhandledTrapBase + kUnhandledTrapStride;
    const int64_t hi = kUnhandledTrapBase + 3 * kUnhandledTrapStride;
    EXPECT_EQ(classifyOutcome(errored(lo), golden, &ch),
              Outcome::Detected);
    EXPECT_EQ(ch, DetectChannel::HardwareTrap);
    EXPECT_EQ(classifyOutcome(errored(hi - 1), golden, &ch),
              Outcome::Detected);
    EXPECT_EQ(ch, DetectChannel::HardwareTrap);

    // Below and above the trap range, an unknown error code is a
    // software-side detection (the runtime's own `error` path).
    EXPECT_EQ(classifyOutcome(errored(lo - 1), golden, &ch),
              Outcome::Detected);
    EXPECT_EQ(ch, DetectChannel::SoftwareCheck);
    EXPECT_EQ(classifyOutcome(errored(hi), golden, &ch),
              Outcome::Detected);
    EXPECT_EQ(ch, DetectChannel::SoftwareCheck);
}

TEST(Classify, ErrorCodeCollisions)
{
    // Codes adjacent to the divide-by-zero sentinel must not inherit
    // its crash classification, and the tag-trap software fallback
    // code must stay a hardware-channel detection even though it
    // numerically neighbors the software type-error code.
    RunReport golden = goldenReport();
    DetectChannel ch;

    auto errored = [&](int64_t code) {
        RunReport r = goldenReport();
        r.result.stop = StopReason::Errored;
        r.result.errorCode = code;
        return r;
    };

    EXPECT_EQ(classifyOutcome(errored(kDivideByZeroCode), golden, &ch),
              Outcome::CrashIllegalAccess);
    EXPECT_EQ(ch, DetectChannel::None);
    EXPECT_EQ(classifyOutcome(errored(kDivideByZeroCode - 1), golden, &ch),
              Outcome::Detected);
    EXPECT_EQ(classifyOutcome(errored(kDivideByZeroCode + 1), golden, &ch),
              Outcome::Detected);

    EXPECT_EQ(classifyOutcome(errored(rtcode::tagTrap), golden, &ch),
              Outcome::Detected);
    EXPECT_EQ(ch, DetectChannel::HardwareTrap);
    EXPECT_EQ(classifyOutcome(errored(rtcode::typeError), golden, &ch),
              Outcome::Detected);
    EXPECT_EQ(ch, DetectChannel::SoftwareCheck);
}

TEST(Campaign, GoldenCycleLimitSkipsThatCellsTrials)
{
    // A golden that exhausts its cycle budget (the analogue of a golden
    // wall-clock timeout: not ok(), but not a compile error either)
    // must Skip its trials, while a faulted run hitting the same
    // budget classifies CycleLimit — the two timeouts are distinct.
    Engine eng(2);
    Campaign c = smallCampaign();
    c.trials = 2;
    c.programs = {{"starved", kSumList, 100}}; // golden can't finish
    CampaignResult r = runCampaign(eng, c);

    for (size_t cfg = 0; cfg < c.configs.size(); ++cfg) {
        EXPECT_FALSE(r.golden(0, cfg).ok());
        EXPECT_EQ(r.golden(0, cfg).result.stop, StopReason::CycleLimit);
    }
    for (const TrialRecord &t : r.trials) {
        EXPECT_EQ(t.outcome, Outcome::Skipped);
        EXPECT_EQ(t.channel, DetectChannel::None);
        EXPECT_EQ(t.cycles, 0u);
    }
}

// ---- campaign statistics (faults/stats.h) ------------------------------

TEST(FaultStats, WilsonIntervalProperties)
{
    // No data restricts nothing.
    Interval empty = wilsonInterval(0, 0);
    EXPECT_EQ(empty.lo, 0.0);
    EXPECT_EQ(empty.hi, 1.0);

    // 0/N and N/N stay honest: nondegenerate intervals inside [0, 1].
    Interval zero = wilsonInterval(0, 20);
    EXPECT_EQ(zero.lo, 0.0);
    EXPECT_GT(zero.hi, 0.0);
    EXPECT_LT(zero.hi, 0.5);
    Interval full = wilsonInterval(20, 20);
    EXPECT_NEAR(full.hi, 1.0, 1e-9);
    EXPECT_LT(full.lo, 1.0);
    EXPECT_GT(full.lo, 0.5);

    // The interval contains the point estimate and narrows with N.
    Interval half = wilsonInterval(10, 20);
    EXPECT_LT(half.lo, 0.5);
    EXPECT_GT(half.hi, 0.5);
    Interval bigger = wilsonInterval(100, 200);
    EXPECT_GT(bigger.lo, half.lo);
    EXPECT_LT(bigger.hi, half.hi);
}

TEST(FaultStats, PercentileSummaryNearestRank)
{
    EXPECT_EQ(percentileSummary({}).count, 0u);

    std::vector<uint64_t> sample;
    for (uint64_t v = 100; v >= 1; --v)
        sample.push_back(v); // 100..1, unsorted on purpose
    PercentileSummary s = percentileSummary(sample);
    EXPECT_EQ(s.count, 100u);
    EXPECT_EQ(s.min, 1u);
    EXPECT_EQ(s.p50, 50u);
    EXPECT_EQ(s.p90, 90u);
    EXPECT_EQ(s.p99, 99u);
    EXPECT_EQ(s.max, 100u);

    PercentileSummary one = percentileSummary({42});
    EXPECT_EQ(one.min, 42u);
    EXPECT_EQ(one.p50, 42u);
    EXPECT_EQ(one.max, 42u);
}

TEST(FaultStats, CycleHistogramQuantileBounds)
{
    CycleHistogram h;
    EXPECT_EQ(h.quantileBound(0.5), 0u);

    std::vector<uint64_t> sample;
    for (uint64_t i = 0; i < 1000; ++i)
        sample.push_back(i * 37 + 1);
    for (uint64_t v : sample)
        h.add(v);
    EXPECT_EQ(h.count, sample.size());

    // The bucket bound is an upper bound on the exact quantile and at
    // most one power of two above it.
    PercentileSummary exact = percentileSummary(sample);
    uint64_t bound = h.quantileBound(0.5);
    EXPECT_GE(bound, exact.p50);
    EXPECT_LE(bound, exact.p50 * 2);
    EXPECT_GE(h.quantileBound(0.99), exact.p99);
    EXPECT_GE(h.quantileBound(1.0), exact.max);
}

TEST(FaultStats, CoverageCellJsonRoundTripRecomputes)
{
    CoverageCell cell;
    cell.config = "checked";
    cell.cls = "tag-corrupt";
    cell.detected = 17;
    cell.total = 30;
    cell.skipped = 0;
    finishCoverageCell(&cell);
    EXPECT_NEAR(cell.coverage, 17.0 / 30.0, 1e-9);
    EXPECT_LT(cell.ci.lo, cell.coverage);
    EXPECT_GT(cell.ci.hi, cell.coverage);

    Json doc = Json::object();
    Json matrix = Json::array();
    Json tampered = coverageCellJson(cell);
    tampered.set("coverage", 0.99); // a lie the extractor must ignore
    matrix.push(std::move(tampered));
    doc.set("matrix", std::move(matrix));

    std::vector<CoverageCell> cells;
    std::string err;
    ASSERT_TRUE(extractCoverageCells(doc, &cells, &err)) << err;
    ASSERT_EQ(cells.size(), 1u);
    EXPECT_EQ(cells[0].config, "checked");
    EXPECT_EQ(cells[0].cls, "tag-corrupt");
    EXPECT_NEAR(cells[0].coverage, 17.0 / 30.0, 1e-9);
    EXPECT_NEAR(cells[0].ci.lo, cell.ci.lo, 1e-9);
    EXPECT_NEAR(cells[0].ci.hi, cell.ci.hi, 1e-9);

    // Skipped trials shrink the denominator.
    CoverageCell holey = cell;
    holey.skipped = 10;
    finishCoverageCell(&holey);
    EXPECT_NEAR(holey.coverage, 17.0 / 20.0, 1e-9);

    // A document without a matrix is an error, not an empty result.
    Json bare = Json::object();
    EXPECT_FALSE(extractCoverageCells(bare, &cells, &err));
}

namespace {

CoverageCell
fixtureCell(const char *config, const char *cls, int detected, int total,
            int skipped = 0)
{
    CoverageCell c;
    c.config = config;
    c.cls = cls;
    c.detected = detected;
    c.total = total;
    c.skipped = skipped;
    finishCoverageCell(&c);
    return c;
}

} // namespace

TEST(FaultStats, CompareCoverageGate)
{
    std::vector<CoverageCell> before = {
        fixtureCell("checked", "tag-corrupt", 17, 30),
        fixtureCell("checked", "bit-flip", 3, 30),
    };
    std::string report;

    // Identical coverage passes.
    EXPECT_TRUE(compareCoverage(before, before, &report));

    // A drop within the noise band passes (intervals overlap).
    std::vector<CoverageCell> noisy = {
        fixtureCell("checked", "tag-corrupt", 15, 30),
        fixtureCell("checked", "bit-flip", 3, 30),
    };
    report.clear();
    EXPECT_TRUE(compareCoverage(before, noisy, &report));

    // A statistically unambiguous drop fails: after.hi < before.lo.
    std::vector<CoverageCell> dropped = {
        fixtureCell("checked", "tag-corrupt", 1, 30),
        fixtureCell("checked", "bit-flip", 3, 30),
    };
    report.clear();
    EXPECT_FALSE(compareCoverage(before, dropped, &report));
    EXPECT_NE(report.find("FAIL"), std::string::npos);

    // Growing the skipped count fails even with identical coverage.
    std::vector<CoverageCell> skippedGrew = {
        fixtureCell("checked", "tag-corrupt", 17, 30, 5),
        fixtureCell("checked", "bit-flip", 3, 30),
    };
    report.clear();
    EXPECT_FALSE(compareCoverage(before, skippedGrew, &report));
    EXPECT_NE(report.find("skipped"), std::string::npos);

    // A cell disappearing fails.
    std::vector<CoverageCell> vanished = {
        fixtureCell("checked", "tag-corrupt", 17, 30),
    };
    report.clear();
    EXPECT_FALSE(compareCoverage(before, vanished, &report));
    EXPECT_NE(report.find("disappeared"), std::string::npos);

    // A new cell is reported but never fails.
    std::vector<CoverageCell> extra = before;
    extra.push_back(fixtureCell("memtag", "stack-tag-corrupt", 6, 30));
    report.clear();
    EXPECT_TRUE(compareCoverage(before, extra, &report));
    EXPECT_NE(report.find("new cell"), std::string::npos);
}

// ---- execution backend tier -------------------------------------------

TEST(Campaign, JournalHeaderStampsBackendTier)
{
    const std::string path = tempJournal("journal_backend.jsonl");
    std::remove(path.c_str());

    Engine eng(2);
    Campaign c = smallCampaign();
    c.trials = 2;
    c.backend = Backend::Interpreter;
    CampaignRunOptions options;
    options.journalPath = path;
    CampaignResult r = runCampaign(eng, c, options);

    std::vector<std::string> lines = readLines(path);
    ASSERT_GE(lines.size(), 2u);
    Json header;
    ASSERT_TRUE(Json::parse(lines[0], &header));
    const Json *backend = header.find("backend");
    ASSERT_NE(backend, nullptr);
    EXPECT_EQ(backend->str(), "interpreter");

    // Every trial line records the tier that actually ran it.
    for (size_t i = 1; i < lines.size(); ++i) {
        Json trial;
        ASSERT_TRUE(Json::parse(lines[i], &trial));
        const Json *tb = trial.find("backend");
        ASSERT_NE(tb, nullptr) << lines[i];
        EXPECT_EQ(tb->str(), "interpreter");
        EXPECT_NE(trial.find("cyc"), nullptr) << lines[i];
    }
    (void)r;
    std::remove(path.c_str());
}

TEST(Campaign, ResumeRefusesJournalFromDifferentBackendTier)
{
    const std::string path = tempJournal("journal_tier.jsonl");
    std::remove(path.c_str());

    Engine eng(2);
    Campaign c = smallCampaign();
    c.trials = 2;
    c.backend = Backend::Interpreter;
    CampaignRunOptions options;
    options.journalPath = path;
    runCampaign(eng, c, options);

    Campaign other = c;
    other.backend = Backend::Auto;
    try {
        resumeCampaign(eng, other, path);
        FAIL() << "resume accepted a journal from a different tier";
    } catch (const MxlError &e) {
        // The tier-only mismatch gets the targeted diagnostic, not the
        // generic "different campaign" dump.
        EXPECT_NE(std::string(e.what()).find("backend tier"),
                  std::string::npos)
            << e.what();
    }
    std::remove(path.c_str());
}

TEST(Campaign, TrialRecordsCarryCyclesAndResolvedBackend)
{
    Engine eng(2);
    Campaign c = smallCampaign();
    c.trials = 3;
    CampaignResult r = runCampaign(eng, c);
    for (const TrialRecord &t : r.trials) {
        ASSERT_NE(t.outcome, Outcome::Skipped);
        EXPECT_GT(t.cycles, 0u);
        // The stamped tier is the one that ran, never the Auto request.
        EXPECT_NE(t.backend, Backend::Auto);
    }
}

TEST(Campaign, AutoTierMatchesInterpreterTier)
{
    // The satellite regression: a campaign run under Backend::Auto
    // (translated where possible, interpreter where a hook demands it)
    // must produce golden and faulted classifications identical to an
    // interpreter-only run — tier selection is a performance decision,
    // never a semantic one.
    Campaign c = smallCampaign();
    c.classes = {FaultClass::TagCorrupt, FaultClass::BitFlip,
                 FaultClass::StackTagCorrupt};
    c.trials = 4;

    Campaign interp = c;
    interp.backend = Backend::Interpreter;
    Campaign autoTier = c;
    autoTier.backend = Backend::Auto;

    Engine e1(2), e2(2);
    CampaignResult ri = runCampaign(e1, interp);
    CampaignResult ra = runCampaign(e2, autoTier);

    ASSERT_EQ(ri.goldens.size(), ra.goldens.size());
    for (size_t g = 0; g < ri.goldens.size(); ++g) {
        EXPECT_EQ(ri.goldens[g].result.output, ra.goldens[g].result.output);
        EXPECT_EQ(ri.goldens[g].result.stats.total,
                  ra.goldens[g].result.stats.total);
    }
    ASSERT_EQ(ri.trials.size(), ra.trials.size());
    int translated = 0;
    for (size_t i = 0; i < ri.trials.size(); ++i) {
        EXPECT_EQ(ri.trials[i].outcome, ra.trials[i].outcome) << i;
        EXPECT_EQ(ri.trials[i].channel, ra.trials[i].channel) << i;
        EXPECT_EQ(ri.trials[i].errorCode, ra.trials[i].errorCode) << i;
        EXPECT_EQ(ri.trials[i].cycles, ra.trials[i].cycles) << i;
        EXPECT_EQ(ri.trials[i].backend, Backend::Interpreter);
        translated += ra.trials[i].backend == Backend::Translated;
    }
    EXPECT_EQ(ri.renderMatrix(), ra.renderMatrix());
    // The differential has teeth only if Auto actually promoted some
    // trials (image-mutator classes carry no interpreter-only hook).
    EXPECT_GT(translated, 0);
}
