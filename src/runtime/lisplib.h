/**
 * @file
 * The MX-Lisp standard library: printing, list utilities, property
 * lists, and numeric helpers. Compiled into every image alongside the
 * sys-Lisp runtime, like the "LISP system modules" the paper's object
 * code counts include (Table 3).
 */

#ifndef MXLISP_RUNTIME_LISPLIB_H_
#define MXLISP_RUNTIME_LISPLIB_H_

#include <string>

namespace mxl {

/** MX-Lisp source of the standard library. */
const std::string &lispLibSource();

} // namespace mxl

#endif // MXLISP_RUNTIME_LISPLIB_H_
