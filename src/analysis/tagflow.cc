#include "analysis/tagflow.h"

#include <deque>

#include "support/panic.h"

namespace mxl {

namespace {

/** Does this provenance mention register @p r as its source? */
bool
provMentionsReg(const Prov &p, Reg r)
{
    switch (p.kind) {
      case Prov::Kind::TagExtract:
      case Prov::Kind::SxtPartial:
      case Prov::Kind::SxtOf:
      case Prov::Kind::Detag:
        return p.src == r;
      default:
        return false;
    }
}

} // namespace

TagFlow::TagFlow(const Program &prog, const Cfg &cfg,
                 const TagScheme &scheme)
    : prog_(prog), cfg_(cfg), scheme_(scheme)
{
    const unsigned bits = scheme_.tagBits();
    const uint64_t numTags = 1ull << bits;
    topTags_ = numTags >= 64 ? ~0ull : (1ull << numTags) - 1;
    tagMask_ = static_cast<uint32_t>(numTags - 1);
    high_ = scheme_.placement() == TagPlacement::High;
    // The tags a fixnum *can* carry: non-negative and negative encodings
    // may land in different tag values (High5: 0 and 31; Low3: 0 and 4).
    fixnumTags_ = (1ull << scheme_.primaryTag(scheme_.encodeFixnum(0))) |
                  (1ull << scheme_.primaryTag(scheme_.encodeFixnum(-1)));
    pointerTags_ = (1ull << scheme_.pointerTag(TypeId::Pair)) |
                   (1ull << scheme_.pointerTag(TypeId::Symbol)) |
                   (1ull << scheme_.pointerTag(TypeId::Vector)) |
                   (1ull << scheme_.pointerTag(TypeId::String));
    in_.assign(cfg_.blocks.size(), TagState{});
}

AbsVal
TagFlow::topVal() const
{
    AbsVal v;
    v.tags = topTags_;
    v.fixnum = false;
    v.prov = {};
    return v;
}

TagState
TagFlow::entryState() const
{
    TagState s;
    s.reachable = true;
    for (auto &r : s.regs)
        r = topVal();
    // ABI invariants that hold at every function entry and at the
    // program entry (runtime/stubs.cc establishes them in rt_start and
    // every stub/function preserves them).
    s.regs[abi::zero].tags = 1ull << scheme_.primaryTag(0);
    s.regs[abi::zero].fixnum = true;
    const uint64_t symTag = 1ull << scheme_.pointerTag(TypeId::Symbol);
    s.regs[abi::treg].tags = symTag;
    s.regs[abi::nilreg].tags = symTag;
    if (high_) {
        // maskreg holds the data-part mask: tag field all-zero, but the
        // data sign bit is set, so it is *not* a fixnum.
        s.regs[abi::maskreg].tags = 1ull << 0;
        s.regs[abi::maskreg].fixnum = false;
    }
    // Raw word-aligned addresses: tag field 0 under every scheme (the
    // stack and heap live in the low part of a <=32MiB image, and are
    // at least 4-byte aligned; Low3's tag-4 case needs 8-byte alignment
    // which sp/stkbase keep, while hp may not — leave hp/hl wider).
    s.regs[abi::sp].tags = 1ull << 0;
    s.regs[abi::stkbase].tags = 1ull << 0;
    s.regs[abi::hp].tags = fixnumTags_ | (1ull << 0);
    s.regs[abi::hl].tags = fixnumTags_ | (1ull << 0);
    s.spKnown = true;
    s.spDelta = 0;
    return s;
}

// --- state plumbing -----------------------------------------------------

void
TagFlow::invalidateRegProvs(TagState &s, Reg r) const
{
    for (auto &v : s.regs)
        if (provMentionsReg(v.prov, r))
            v.prov = {};
    for (auto &[off, v] : s.slots) {
        (void)off;
        if (provMentionsReg(v.prov, r))
            v.prov = {};
    }
}

void
TagFlow::invalidateSlotProvs(TagState &s, int32_t off) const
{
    for (auto &v : s.regs)
        if (v.prov.kind == Prov::Kind::Slot && v.prov.slot == off)
            v.prov = {};
}

void
TagFlow::writeRegVal(TagState &s, Reg rd, const AbsVal &v) const
{
    if (rd == abi::sp) {
        // Arbitrary sp write: frame tracking is lost (Addi sp,sp,imm is
        // special-cased in applyInst before calling here).
        s.spKnown = false;
        clearSlots(s);
    }
    invalidateRegProvs(s, rd);
    s.regs[rd] = v;
}

void
TagFlow::clearSlots(TagState &s) const
{
    s.slots.clear();
    for (auto &v : s.regs)
        if (v.prov.kind == Prov::Kind::Slot)
            v.prov = {};
}

void
TagFlow::storeToSlot(TagState &s, int32_t off, Reg src) const
{
    invalidateSlotProvs(s, off);
    AbsVal v = s.regs[src];
    v.prov = {}; // slot facts stand alone; the mirror link lives on the reg
    auto it = s.slots.find(off);
    if (it != s.slots.end())
        it->second = v;
    else if (s.slots.size() < kMaxSlots)
        s.slots.emplace(off, v);
    else
        return; // at capacity: no slot fact, so no mirror link either
    if (src != abi::zero)
        s.regs[src].prov = {Prov::Kind::Slot, 0, 0, off};
}

void
TagFlow::refineReg(TagState &s, Reg r,
                   const std::function<void(AbsVal &)> &f) const
{
    f(s.regs[r]);
    // Low-placement normalization: the tag field *is* the fixnum
    // discriminator, so tags within the fixnum set prove fixnum-ness.
    if (!high_ && s.regs[r].tags != 0 &&
        (s.regs[r].tags & ~fixnumTags_) == 0)
        s.regs[r].fixnum = true;
    if (s.regs[r].prov.kind == Prov::Kind::Slot) {
        const int32_t off = s.regs[r].prov.slot;
        auto it = s.slots.find(off);
        if (it == s.slots.end()) {
            if (s.slots.size() >= kMaxSlots)
                return;
            it = s.slots.emplace(off, topVal()).first;
            it->second.prov = {};
        }
        f(it->second);
        if (!high_ && it->second.tags != 0 &&
            (it->second.tags & ~fixnumTags_) == 0)
            it->second.fixnum = true;
    }
}

bool
TagFlow::joinInto(TagState &dst, const TagState &src) const
{
    if (!src.reachable)
        return false;
    if (!dst.reachable) {
        dst = src;
        return true;
    }
    bool changed = false;
    for (int r = 0; r < 32; ++r) {
        AbsVal &d = dst.regs[r];
        const AbsVal &s = src.regs[r];
        uint64_t tags = d.tags | s.tags;
        bool fixnum = d.fixnum && s.fixnum;
        Prov prov = (d.prov == s.prov) ? d.prov : Prov{};
        if (tags != d.tags || fixnum != d.fixnum || prov != d.prov) {
            d.tags = tags;
            d.fixnum = fixnum;
            d.prov = prov;
            changed = true;
        }
    }
    if (dst.spKnown && (!src.spKnown || src.spDelta != dst.spDelta)) {
        dst.spKnown = false;
        clearSlots(dst);
        changed = true;
    }
    for (auto it = dst.slots.begin(); it != dst.slots.end();) {
        auto sit = src.slots.find(it->first);
        if (sit == src.slots.end()) {
            it = dst.slots.erase(it);
            changed = true;
            continue;
        }
        AbsVal &d = it->second;
        const AbsVal &s = sit->second;
        uint64_t tags = d.tags | s.tags;
        bool fixnum = d.fixnum && s.fixnum;
        Prov prov = (d.prov == s.prov) ? d.prov : Prov{};
        if (tags != d.tags || fixnum != d.fixnum || prov != d.prov) {
            d.tags = tags;
            d.fixnum = fixnum;
            d.prov = prov;
            changed = true;
        }
        ++it;
    }
    return changed;
}

// --- transfer function --------------------------------------------------

void
TagFlow::applyInst(TagState &s, const Instruction &inst) const
{
    if (!s.reachable)
        return;
    switch (inst.op) {
      case Opcode::Li: {
        AbsVal v;
        const uint32_t w = static_cast<uint32_t>(inst.imm);
        v.tags = 1ull << scheme_.primaryTag(w);
        v.fixnum = scheme_.wordIsFixnum(w);
        writeRegVal(s, inst.rd, v);
        return;
      }
      case Opcode::Mov: {
        AbsVal v = s.regs[inst.rs];
        if (provMentionsReg(v.prov, inst.rd))
            v.prov = {}; // the source location is about to be destroyed
        writeRegVal(s, inst.rd, v);
        return;
      }
      case Opcode::And: {
        AbsVal v = topVal();
        if (high_) {
            Reg other = 0;
            bool detag = false;
            if (inst.rs == abi::maskreg) {
                other = inst.rt;
                detag = true;
            } else if (inst.rt == abi::maskreg) {
                other = inst.rs;
                detag = true;
            }
            if (detag && s.regs[abi::maskreg].tags == (1ull << 0) &&
                !s.regs[abi::maskreg].fixnum) {
                // And with the data-part mask: tag field cleared.
                v.tags = 1ull << 0;
                if (other != inst.rd)
                    v.prov = {Prov::Kind::Detag, other, 0, 0};
            }
        }
        writeRegVal(s, inst.rd, v);
        return;
      }
      case Opcode::Andi: {
        AbsVal v = topVal();
        const uint32_t imm = static_cast<uint32_t>(inst.imm);
        if (!high_ && imm == static_cast<uint32_t>(~tagMask_)) {
            // Low-scheme detag: clear the tag bits.
            v.tags = 1ull << 0;
            v.fixnum = false;
            if (inst.rs != inst.rd)
                v.prov = {Prov::Kind::Detag, inst.rs, 0, 0};
        } else if (imm != 0 && (imm & ~static_cast<uint64_t>(tagMask_)) == 0 &&
                   !high_) {
            // Low-scheme tag extraction (Andi t,x,tagMask or Andi t,x,3
            // for the fixnum test under LowTag3).
            if (inst.rs != inst.rd)
                v.prov = {Prov::Kind::TagExtract, inst.rs, imm, 0};
            // The result is a small non-negative integer: a fixnum under
            // high schemes; under low schemes only if its own low bits
            // say so — not worth modeling beyond top tags.
        }
        writeRegVal(s, inst.rd, v);
        return;
      }
      case Opcode::Srli: {
        AbsVal v = topVal();
        if (high_ && inst.imm == static_cast<int64_t>(scheme_.tagShift()) &&
            inst.rs != inst.rd) {
            // High-scheme tag extraction.
            v.prov = {Prov::Kind::TagExtract, inst.rs, tagMask_, 0};
        }
        writeRegVal(s, inst.rd, v);
        return;
      }
      case Opcode::Slli: {
        AbsVal v = topVal();
        if (high_ && inst.imm == static_cast<int64_t>(scheme_.tagBits()) &&
            inst.rs != inst.rd)
            v.prov = {Prov::Kind::SxtPartial, inst.rs, 0, 0};
        writeRegVal(s, inst.rd, v);
        return;
      }
      case Opcode::Srai: {
        AbsVal v = topVal();
        const Prov rsProv = s.regs[inst.rs].prov; // read before the kill
        if (high_ && inst.imm == static_cast<int64_t>(scheme_.tagBits()) &&
            rsProv.kind == Prov::Kind::SxtPartial && rsProv.src != inst.rd) {
            // Slli k; Srai k == signExtend(dataBits(x)): the canonical
            // fixnum image of x. The result itself is always a fixnum.
            v.prov = {Prov::Kind::SxtOf, rsProv.src, 0, 0};
            v.tags = fixnumTags_;
            v.fixnum = true;
        }
        writeRegVal(s, inst.rd, v);
        return;
      }
      case Opcode::Ld: {
        AbsVal v = topVal();
        if (inst.rs == abi::sp && s.spKnown) {
            const int32_t off =
                s.spDelta + static_cast<int32_t>(inst.imm);
            auto it = s.slots.find(off);
            if (it != s.slots.end()) {
                v.tags = it->second.tags;
                v.fixnum = it->second.fixnum;
            }
            v.prov = {Prov::Kind::Slot, 0, 0, off};
        }
        writeRegVal(s, inst.rd, v);
        return;
      }
      case Opcode::Ldt: {
        writeRegVal(s, inst.rd, topVal());
        // Past a checked load, the base register's tag is known (else it
        // would have trapped).
        if (inst.rs != inst.rd) {
            const uint64_t bit = 1ull << inst.timm;
            refineReg(s, inst.rs, [&](AbsVal &a) { a.tags &= bit; });
        }
        return;
      }
      case Opcode::St:
      case Opcode::Stt: {
        if (inst.rs == abi::sp) {
            if (s.spKnown)
                storeToSlot(s, s.spDelta + static_cast<int32_t>(inst.imm),
                            inst.rt);
            // sp unknown: can't name the slot; the join already dropped
            // the slot map when tracking was lost.
        }
        // Non-sp stores don't invalidate slot facts: compiled code
        // addresses its own frame only through sp (docs/ANALYSIS.md).
        if (inst.op == Opcode::Stt) {
            const uint64_t bit = 1ull << inst.timm;
            refineReg(s, inst.rs, [&](AbsVal &a) { a.tags &= bit; });
        }
        return;
      }
      case Opcode::Addi: {
        if (inst.rd == abi::sp && inst.rs == abi::sp && s.spKnown) {
            // Frame push/pop: the slot environment survives.
            s.spDelta += static_cast<int32_t>(inst.imm);
            invalidateRegProvs(s, abi::sp);
            AbsVal v = topVal();
            v.tags = 1ull << 0; // stays a word-aligned stack address
            s.regs[abi::sp] = v;
            return;
        }
        if (inst.imm == 0) {
            // Addi rd, rs, 0 is a move.
            AbsVal v = s.regs[inst.rs];
            if (provMentionsReg(v.prov, inst.rd))
                v.prov = {};
            writeRegVal(s, inst.rd, v);
            return;
        }
        writeRegVal(s, inst.rd, topVal());
        return;
      }
      case Opcode::Ori: {
        AbsVal v = topVal();
        const uint32_t imm = static_cast<uint32_t>(inst.imm);
        const uint32_t fieldMask = tagMask_ << scheme_.tagShift();
        if (imm != 0 && (imm & ~fieldMask) == 0 &&
            s.regs[inst.rs].tags == (1ull << 0)) {
            // Tag insertion onto a clean tag-0 base (e.g. tagging a
            // fresh heap address): the result carries exactly imm's tag.
            v.tags = 1ull << scheme_.primaryTag(imm);
        }
        writeRegVal(s, inst.rd, v);
        return;
      }
      case Opcode::Addt:
      case Opcode::Subt:
        // Result may come back from the bignum slow path: top. The
        // operands are *not* refined (the trap handler accepts
        // non-fixnums).
        writeRegVal(s, inst.rd, topVal());
        return;
      case Opcode::Jal:
      case Opcode::Jalr: {
        AbsVal v = topVal();
        v.tags = fixnumTags_ | (1ull << 0); // word-aligned code address
        writeRegVal(s, inst.rd, v);
        return;
      }
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
      case Opcode::Ble:
      case Opcode::Bgt:
      case Opcode::Beqi:
      case Opcode::Bnei:
      case Opcode::Btag:
      case Opcode::Bntag:
      case Opcode::J:
      case Opcode::Jr:
      case Opcode::Noop:
      case Opcode::Sys:
        return; // no register writes
      default: {
        // Remaining ALU ops (Add, Sub, Or, Xor, shifts, Mul, Div, Rem,
        // Xori, ...): result unknown.
        const int wr = inst.writeReg();
        if (wr >= 0)
            writeRegVal(s, static_cast<Reg>(wr), topVal());
        return;
      }
    }
}

void
TagFlow::applyCallClobber(TagState &s) const
{
    if (!s.reachable)
        return;
    TagState entry = entryState();
    for (int r = 0; r < 32; ++r) {
        switch (r) {
          case abi::zero:
          case abi::treg:
          case abi::nilreg:
          case abi::maskreg:
          case abi::stkbase:
          case abi::sp: {
            // Callee-preserved invariants; drop provenance (it may
            // mention a clobbered register).
            Prov p = s.regs[r].prov;
            if (p.kind != Prov::Kind::Slot && p.kind != Prov::Kind::None)
                s.regs[r].prov = {};
            break;
          }
          case abi::hp:
          case abi::hl:
            // Re-established by the callee's allocations.
            s.regs[r] = entry.regs[r];
            break;
          default:
            s.regs[r] = topVal();
            break;
        }
    }
    // Slot facts survive (frames below the caller's sp only), but any
    // provenance into the clobbered registers must not.
    for (auto &[off, v] : s.slots) {
        (void)off;
        if (v.prov.kind != Prov::Kind::None &&
            v.prov.kind != Prov::Kind::Slot)
            v.prov = {};
    }
}

// --- branch refinement --------------------------------------------------

void
TagFlow::refineEdge(TagState &s, const Instruction &branch,
                    bool taken) const
{
    if (!s.reachable)
        return;
    switch (branch.op) {
      case Opcode::Beqi:
      case Opcode::Bnei: {
        const AbsVal &v = s.regs[branch.rs];
        if (v.prov.kind != Prov::Kind::TagExtract)
            return;
        // Edge on which extracted == imm.
        const bool eqEdge = (branch.op == Opcode::Beqi) == taken;
        const uint32_t imm = static_cast<uint32_t>(branch.imm);
        const uint32_t mask = v.prov.mask;
        const Reg src = v.prov.src;
        refineReg(s, src, [&](AbsVal &a) {
            uint64_t keep = 0;
            for (uint32_t t = 0; t <= tagMask_; ++t)
                if ((a.tags >> t) & 1)
                    if (((t & mask) == imm) == eqEdge)
                        keep |= 1ull << t;
            a.tags = keep;
        });
        if (s.regs[src].tags == 0)
            s.reachable = false;
        return;
      }
      case Opcode::Beq:
      case Opcode::Bne: {
        // The fixnum-check idiom: Slli t,x,k; Srai t,t,k; Bne t,x —
        // equal means x survived sign-extension truncation, i.e. fixnum.
        Reg src;
        const AbsVal &a = s.regs[branch.rs];
        const AbsVal &b = s.regs[branch.rt];
        if (a.prov.kind == Prov::Kind::SxtOf && a.prov.src == branch.rt)
            src = branch.rt;
        else if (b.prov.kind == Prov::Kind::SxtOf &&
                 b.prov.src == branch.rs)
            src = branch.rs;
        else
            return;
        const bool fixEdge = (branch.op == Opcode::Beq) == taken;
        if (fixEdge) {
            refineReg(s, src, [&](AbsVal &x) {
                x.fixnum = true;
                x.tags &= fixnumTags_;
            });
            if (s.regs[src].tags == 0)
                s.reachable = false;
        } else {
            if (s.regs[src].fixnum)
                s.reachable = false;
            else if (!high_) {
                refineReg(s, src, [&](AbsVal &x) {
                    x.tags &= ~fixnumTags_;
                    x.fixnum = false;
                });
                if (s.regs[src].tags == 0)
                    s.reachable = false;
            }
        }
        return;
      }
      case Opcode::Btag:
      case Opcode::Bntag: {
        const bool eqEdge = (branch.op == Opcode::Btag) == taken;
        const uint64_t bit = 1ull << branch.timm;
        refineReg(s, branch.rs, [&](AbsVal &a) {
            a.tags &= eqEdge ? bit : ~bit;
        });
        if (s.regs[branch.rs].tags == 0)
            s.reachable = false;
        return;
      }
      default:
        return;
    }
}

bool
TagFlow::edgeDead(const TagState &atXfer, const Instruction &branch,
                  bool taken) const
{
    if (!atXfer.reachable)
        return true;
    switch (branch.op) {
      case Opcode::Beqi:
      case Opcode::Bnei: {
        const AbsVal &v = atXfer.regs[branch.rs];
        if (v.prov.kind != Prov::Kind::TagExtract)
            return false;
        const uint64_t tags = atXfer.regs[v.prov.src].tags;
        if (tags == 0)
            return true; // source is bottom: edge trivially dead
        const bool eqEdge = (branch.op == Opcode::Beqi) == taken;
        const uint32_t imm = static_cast<uint32_t>(branch.imm);
        const uint32_t mask = v.prov.mask;
        for (uint32_t t = 0; t <= tagMask_; ++t)
            if ((tags >> t) & 1)
                if (((t & mask) == imm) == eqEdge)
                    return false; // some tag takes this edge
        return true;
      }
      case Opcode::Beq:
      case Opcode::Bne: {
        Reg src;
        const AbsVal &a = atXfer.regs[branch.rs];
        const AbsVal &b = atXfer.regs[branch.rt];
        if (a.prov.kind == Prov::Kind::SxtOf && a.prov.src == branch.rt)
            src = branch.rt;
        else if (b.prov.kind == Prov::Kind::SxtOf &&
                 b.prov.src == branch.rs)
            src = branch.rs;
        else
            return false;
        const AbsVal &x = atXfer.regs[src];
        const bool fixEdge = (branch.op == Opcode::Beq) == taken;
        if (fixEdge)
            // Edge requires x to be a fixnum: impossible when no fixnum
            // tag remains.
            return (x.tags & fixnumTags_) == 0;
        // Edge requires x to *not* be a fixnum: impossible when proven.
        return x.fixnum;
      }
      case Opcode::Btag:
      case Opcode::Bntag: {
        const uint64_t tags = atXfer.regs[branch.rs].tags;
        const uint64_t bit = 1ull << branch.timm;
        const bool eqEdge = (branch.op == Opcode::Btag) == taken;
        return eqEdge ? (tags & bit) == 0 : (tags & ~bit) == 0;
      }
      default:
        return false;
    }
}

// --- solver -------------------------------------------------------------

TagState
TagFlow::stateAtXfer(int block) const
{
    const CfgBlock &blk = cfg_.blocks[block];
    TagState s = in_[block];
    const int stop = blk.xfer >= 0 ? blk.xfer : blk.last + 1;
    for (int i = blk.first; i < stop; ++i)
        applyInst(s, prog_.code[i]);
    return s;
}

void
TagFlow::walkBlock(int block,
                   const std::function<void(int, const TagState &)> &f)
    const
{
    const CfgBlock &blk = cfg_.blocks[block];
    TagState s = in_[block];
    for (int i = blk.first; i <= blk.last; ++i) {
        f(i, s);
        applyInst(s, prog_.code[i]);
    }
}

void
TagFlow::solve()
{
    const size_t n = cfg_.blocks.size();
    in_.assign(n, TagState{});
    if (n == 0)
        return;
    std::deque<int> wl;
    std::vector<bool> inWl(n, false);
    const TagState entry = entryState();
    for (int b : cfg_.rootBlocks) {
        joinInto(in_[b], entry);
        if (!inWl[b]) {
            inWl[b] = true;
            wl.push_back(b);
        }
    }
    // The lattice is finite and the transfer monotone, so this
    // terminates; the guard catches implementation bugs, not inputs.
    size_t budget = (n + 1) * 2048;
    while (!wl.empty()) {
        MXL_ASSERT(budget-- > 0, "tagflow worklist failed to converge");
        const int b = wl.front();
        wl.pop_front();
        inWl[b] = false;
        const CfgBlock &blk = cfg_.blocks[b];
        const TagState atXfer = stateAtXfer(b);
        if (!atXfer.reachable)
            continue;
        for (const CfgEdge &e : blk.out) {
            TagState se = atXfer;
            if (blk.xfer >= 0) {
                const Instruction &x = prog_.code[blk.xfer];
                if (isCondBranch(x.op))
                    refineEdge(se, x, e.kind == CfgEdge::Kind::Taken);
                applyInst(se, x); // writes link for Jal/Jalr
                if (e.slots) {
                    applyInst(se, prog_.code[blk.xfer + 1]);
                    applyInst(se, prog_.code[blk.xfer + 2]);
                }
            }
            if (e.kind == CfgEdge::Kind::CallCont)
                applyCallClobber(se);
            if (!se.reachable)
                continue;
            if (joinInto(in_[e.to], se) && !inWl[e.to]) {
                inWl[e.to] = true;
                wl.push_back(e.to);
            }
        }
    }
}

} // namespace mxl
