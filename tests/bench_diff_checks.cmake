# Verdict and exit-code tests for bench_diff --checks, the
# check-placement regression gate over BENCH_checkelim.json exports:
#   exit 0  — proven checks held, verifier still accepts, cycles within
#             the threshold
#   exit 1  — proven-check regression, lost verifier acceptance, or
#             place-cycle growth beyond the threshold
#   exit 2  — document without check-placement cells (a BENCH_*.json
#             from another bench must never pass an empty gate)
#
# ctest can assert PASS/FAIL but not specific exit codes, so this runs
# as a -P script:
#   cmake -DBENCH_DIFF=<path-to-binary> -P bench_diff_checks.cmake

if(NOT DEFINED BENCH_DIFF)
  message(FATAL_ERROR "pass -DBENCH_DIFF=<path to bench_diff>")
endif()

set(workdir "${CMAKE_CURRENT_BINARY_DIR}/bench_diff_checks.tmp")
file(REMOVE_RECURSE "${workdir}")
file(MAKE_DIRECTORY "${workdir}")

# Two-program baseline: the shape bench_checkelim writes.
function(write_doc path p1_proven p1_cycles p1_ver p2_proven p2_cycles)
  file(WRITE "${path}"
       "{\"grid\": ["
       "{\"program\": \"alpha\", \"label\": \"alpha\", "
       "\"stats\": {\"total\": ${p1_cycles}}, "
       "\"provenChecks\": ${p1_proven}, "
       "\"placeCycles\": ${p1_cycles}, "
       "\"verifierAccepts\": ${p1_ver}}, "
       "{\"program\": \"beta\", \"label\": \"beta\", "
       "\"stats\": {\"total\": ${p2_cycles}}, "
       "\"provenChecks\": ${p2_proven}, "
       "\"placeCycles\": ${p2_cycles}, "
       "\"verifierAccepts\": true}"
       "]}")
endfunction()

write_doc("${workdir}/before.json"      150 1000000 true  80 2000000)
write_doc("${workdir}/same.json"        150 1000000 true  80 2000000)
# +0.5% cycles: inside the default 1% tolerance.
write_doc("${workdir}/jitter.json"      150 1005000 true  80 2000000)
# +2% cycles on alpha: a real place-cycle regression.
write_doc("${workdir}/slower.json"      150 1020000 true  80 2000000)
# alpha proves fewer checks than before.
write_doc("${workdir}/fewer.json"       140 1000000 true  80 2000000)
# alpha's transformed unit no longer verifies.
write_doc("${workdir}/unverified.json"  150 1000000 false 80 2000000)

# A valid bench export from a different harness: grid, but no
# provenChecks anywhere.
file(WRITE "${workdir}/other_bench.json"
     "{\"grid\": [{\"label\": \"x\", \"stats\": {\"total\": 100}}]}")

set(failures 0)

# expect_case(<name> <expected-rc> <output-substring> <args...>)
function(expect_case name expected_rc expected_text)
  execute_process(
    COMMAND "${BENCH_DIFF}" ${ARGN}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  set(ok TRUE)
  if(NOT rc EQUAL ${expected_rc})
    set(ok FALSE)
    message(WARNING "${name}: exit ${rc}, expected ${expected_rc}")
  endif()
  if(NOT "${expected_text}" STREQUAL "" AND
     NOT "${err}${out}" MATCHES "${expected_text}")
    set(ok FALSE)
    message(WARNING
            "${name}: output missing \"${expected_text}\";\n"
            "output was: ${err}${out}")
  endif()
  if(ok)
    message(STATUS "PASS  ${name}")
  else()
    math(EXPR n "${failures} + 1")
    set(failures ${n} PARENT_SCOPE)
  endif()
endfunction()

set(before "${workdir}/before.json")

# Identical and within-tolerance documents pass.
expect_case(checks_self_diff 0 "PASS"
            --checks "${before}" "${workdir}/same.json")
expect_case(checks_jitter_within_threshold 0 "PASS"
            --checks "${before}" "${workdir}/jitter.json")

# Each regression class fails with its own wording.
expect_case(checks_cycle_regression 1 "place-cycle regression"
            --checks "${before}" "${workdir}/slower.json")
expect_case(checks_proven_regression 1 "proven-check regression"
            --checks "${before}" "${workdir}/fewer.json")
expect_case(checks_verifier_rejection 1 "verifier no longer accepts"
            --checks "${before}" "${workdir}/unverified.json")

# A tighter threshold turns tolerated jitter into a failure; a looser
# one forgives the 2% growth.
expect_case(checks_tight_threshold 1 "place-cycle regression"
            --checks --threshold 0.1
            "${before}" "${workdir}/jitter.json")
expect_case(checks_loose_threshold 0 "PASS"
            --checks --threshold 5
            "${before}" "${workdir}/slower.json")

# A grid without check-placement cells is an input error, not a pass.
expect_case(checks_wrong_bench 2 "no check-placement cells"
            --checks "${workdir}/other_bench.json" "${before}")
expect_case(checks_wrong_bench_after 2 "no check-placement cells"
            --checks "${before}" "${workdir}/other_bench.json")

# Mode exclusivity keeps exiting 2.
expect_case(checks_and_coverage 2 "usage"
            --checks --coverage "${before}" "${before}")

file(REMOVE_RECURSE "${workdir}")

if(failures GREATER 0)
  message(FATAL_ERROR "${failures} bench_diff --checks case(s) failed")
endif()
message(STATUS "all bench_diff --checks cases passed")
