/**
 * Reproduces Figure 2: the reduction in dynamic instruction
 * frequencies when tag removal is eliminated (loads/stores that ignore
 * the tag bits), for programs with no run-time checking. The paper's
 * signature effects: `and` instructions collapse, `move` instructions
 * rise (idempotent loads), wasted cycles rise (fewer slot fillers),
 * for a net ~5.7% speedup.
 */

#include <cstdio>

#include "bench_export.h"
#include "core/engine.h"
#include "core/experiment.h"
#include "core/paper.h"
#include "core/report.h"
#include "core/run.h"
#include "programs/programs.h"
#include "support/stats.h"
#include "support/format.h"
#include "support/table.h"

using namespace mxl;

int
main()
{
    std::printf("Figure 2: reduction in instruction frequencies when "
                "tag removal is eliminated\n");
    std::printf("(no run-time checking; %% of baseline cycles; negative "
                "= increase)\n\n");

    CompilerOptions base = baselineOptions(Checking::Off);
    CompilerOptions noMask = base;
    noMask.hw.ignoreTagOnMemory = true;

    // Both configurations' ten-program sub-grids in one engine fan-out.
    Engine eng;
    std::vector<RunRequest> grid = programGrid(base);
    auto noMaskGrid = programGrid(noMask);
    for (RunRequest &req : noMaskGrid)
        req.label = "nomask/" + req.label;
    grid.insert(grid.end(), noMaskGrid.begin(), noMaskGrid.end());
    std::vector<RunReport> reports = eng.runGrid(grid);
    auto results = unwrapReports(reports);
    size_t stride = benchmarkPrograms().size();

    std::vector<double> andV, movV, noopV, sqV, totV;
    TextTable t;
    t.addRow({"program", "and", "move", "noop", "squash", "total"});
    for (size_t i = 0; i < stride; ++i) {
        const auto &p = benchmarkPrograms()[i];
        const auto &rb = results[i];
        const auto &rn = results[i + stride];
        auto d = figure2Data(rb, rn);
        t.addRow({p.name, fixed(d.andOps, 2), fixed(d.moveOps, 2),
                  fixed(d.noops, 2), fixed(d.squashed, 2),
                  fixed(d.total, 2)});
        andV.push_back(d.andOps);
        movV.push_back(d.moveOps);
        noopV.push_back(d.noops);
        sqV.push_back(d.squashed);
        totV.push_back(d.total);
    }
    t.addRule();
    t.addRow({"average", fixed(mean(andV), 2), fixed(mean(movV), 2),
              fixed(mean(noopV), 2), fixed(mean(sqV), 2),
              fixed(mean(totV), 2)});
    std::printf("%s\n", t.render().c_str());

    std::printf("paper (read from Figure 2):\n");
    for (const auto &e : paper::figure2())
        std::printf("  %-7s %6s\n", e.category,
                    fixed(e.reduction, 1).c_str());

    std::printf("\nshape checks:\n");
    std::printf("  'and' falls sharply .......... %s\n",
                mean(andV) > 1.0 ? "yes" : "NO");
    std::printf("  'move' increases ............. %s (allocator-"
                "dependent; see EXPERIMENTS.md)\n",
                mean(movV) < 0.0 ? "yes" : "no");
    std::printf("  net speedup ~5%% .............. measured %s "
                "(paper %s)\n\n",
                percent(mean(totV)).c_str(),
                percent(paper::figure2TotalSpeedup).c_str());

    return writeBenchJson("figure2", benchDoc("figure2",
                                              gridJson(grid, reports),
                                              &eng))
               ? 0
               : 1;
}
