#include "compiler/unit.h"

#include <map>

#include "compiler/asm_buffer.h"
#include "compiler/codegen.h"
#include "compiler/linker.h"
#include "compiler/scheduler.h"
#include "machine/machine.h"
#include "runtime/image.h"
#include "runtime/lisplib.h"
#include "runtime/stubs.h"
#include "runtime/syslisp.h"
#include "sexpr/reader.h"
#include "support/panic.h"

namespace mxl {

int
countSourceLines(const std::string &source)
{
    int lines = 0;
    bool content = false;
    bool inComment = false;
    for (char c : source) {
        if (c == '\n') {
            if (content)
                ++lines;
            content = false;
            inComment = false;
        } else if (c == ';') {
            inComment = true;
        } else if (!inComment &&
                   !std::isspace(static_cast<unsigned char>(c))) {
            content = true;
        }
    }
    if (content)
        ++lines;
    return lines;
}

CompiledUnit
compileUnit(const std::string &userSource, const CompilerOptions &opts)
{
    CompiledUnit unit;
    unit.opts = opts;
    unit.scheme = makeScheme(opts.scheme);
    unit.layout = RuntimeLayout::compute(opts);

    SxArena arena;
    ImageBuilder image(unit.layout, *unit.scheme);
    AsmBuffer buf;
    CodeGen cg(arena, image, buf, opts, *unit.scheme);

    // Parse all three layers.
    auto libForms = readAll(arena, lispLibSource());
    auto gcForms = readAll(arena, gcSource());
    auto arithForms = readAll(arena, genericArithSource());
    auto userForms = readAll(arena, userSource);

    // Later definitions override earlier ones (user over library).
    std::map<const Sx *, Sx *> defOf;        // name -> winning def
    std::map<const Sx *, bool> winnerIsLib;  // winner came from runtime
    std::vector<Sx *> defOrder;              // first-appearance order
    std::vector<Sx *> topForms;              // user program body

    auto collect = [&](const std::vector<Sx *> &forms, bool isLib) {
        for (Sx *f : forms) {
            if (f->isPair() && f->car->isSym("de")) {
                Sx *name = listNth(f, 1);
                if (!defOf.count(name))
                    defOrder.push_back(name);
                defOf[name] = f;
                winnerIsLib[name] = isLib;
            } else {
                if (isLib)
                    fatal("library sources must contain only de forms");
                topForms.push_back(f);
            }
        }
    };
    collect(libForms, true);
    collect(gcForms, true);
    collect(arithForms, true);
    collect(userForms, false);

    // Pass 1: declare everything (including main) so calls resolve.
    for (Sx *name : defOrder) {
        Sx *def = defOf[name];
        cg.declareFunction(name, listLength(listNth(def, 2)));
    }
    cg.declareFunction(arena.sym("main"), 0);

    // Stubs first: the undefined-function handler must be instruction 0.
    StubSet stubs = emitStubs(cg, arena);
    cg.setRuntimeLabels(stubs.labels);

    // Pass 2: compile bodies. Runtime/library functions always compile
    // generic arithmetic inline (see setLibArithInline).
    for (Sx *name : defOrder) {
        cg.setLibArithInline(winnerIsLib[name]);
        cg.compileFunction(defOf[name]);
    }
    cg.setLibArithInline(false);
    cg.compileMain(topForms);

    scheduleDelaySlots(buf, opts.fillDelaySlots, opts.overlapChecks);
    const LinkVerify gate{unit.scheme.get(), &opts};
    unit.prog = link(buf, /*requireAnnotations=*/true,
                     opts.verifyLinked ? &gate : nullptr);

    // Patch symbol function cells so `apply` can reach every compiled
    // function through its symbol.
    for (const auto &[sym, idx] : unit.prog.symbols) {
        if (sym.rfind("fn_", 0) == 0) {
            std::string name = sym.substr(3);
            uint32_t addr = image.symbolAddr(name);
            image.setWord(addr + symoff::fn, Machine::codeAddr(idx));
            unit.fnCells.emplace_back(sym, addr + symoff::fn);
        }
    }

    unit.memory = image.finalize();
    unit.entry = unit.prog.symbol("rt_start");
    unit.arithTrap = unit.prog.symbol("rt_arithtrap");
    unit.tagTrap = unit.prog.symbol("rt_tagtrap");
    MXL_ASSERT(unit.entry >= 0, "rt_start missing");

    unit.procedures = cg.proceduresCompiled();
    unit.objectWords = static_cast<int>(unit.prog.code.size());
    unit.sourceLines = countSourceLines(userSource);
    return unit;
}

} // namespace mxl
