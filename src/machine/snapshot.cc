#include "machine/snapshot.h"

#include <cstring>

namespace mxl {

namespace {

// Fixed-order little-endian encoding. The format is versioned so a
// journal of serialized snapshots stays readable across changes.
// 02 appended the memTagLocks vector after the memory words.
const char kMagic[8] = {'M', 'X', 'S', 'N', 'A', 'P', '0', '2'};

void
putU32(std::string &s, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        s += static_cast<char>((v >> (8 * i)) & 0xff);
}

void
putU64(std::string &s, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        s += static_cast<char>((v >> (8 * i)) & 0xff);
}

void
putI32(std::string &s, int32_t v)
{
    putU32(s, static_cast<uint32_t>(v));
}

void
putBytes(std::string &s, const std::string &b)
{
    putU64(s, b.size());
    s += b;
}

struct Cursor
{
    const std::string &s;
    size_t pos = 0;
    bool ok = true;

    bool
    take(void *dst, size_t n)
    {
        if (!ok || pos + n > s.size()) {
            ok = false;
            return false;
        }
        std::memcpy(dst, s.data() + pos, n);
        pos += n;
        return true;
    }

    uint32_t
    u32()
    {
        unsigned char b[4] = {};
        take(b, 4);
        return static_cast<uint32_t>(b[0]) |
               (static_cast<uint32_t>(b[1]) << 8) |
               (static_cast<uint32_t>(b[2]) << 16) |
               (static_cast<uint32_t>(b[3]) << 24);
    }

    uint64_t
    u64()
    {
        uint64_t lo = u32();
        uint64_t hi = u32();
        return lo | (hi << 32);
    }

    int32_t i32() { return static_cast<int32_t>(u32()); }

    std::string
    bytes()
    {
        uint64_t n = u64();
        if (!ok || pos + n > s.size()) {
            ok = false;
            return {};
        }
        std::string out = s.substr(pos, n);
        pos += n;
        return out;
    }
};

void
putStats(std::string &s, const CycleStats &st)
{
    putU64(s, st.total);
    putU64(s, st.instructions);
    for (int p = 0; p < numPurposes; ++p)
        for (int f = 0; f < 2; ++f)
            putU64(s, st.byPurpose[p][f]);
    for (int c = 0; c < numCheckCats; ++c)
        for (int f = 0; f < 2; ++f)
            putU64(s, st.byCat[c][f]);
    putU64(s, st.andOps);
    putU64(s, st.moveOps);
    putU64(s, st.noops);
    putU64(s, st.squashed);
    putU64(s, st.loadStalls);
    putU64(s, st.loads);
    putU64(s, st.stores);
    putU64(s, st.branches);
}

void
takeStats(Cursor &c, CycleStats *st)
{
    st->total = c.u64();
    st->instructions = c.u64();
    for (int p = 0; p < numPurposes; ++p)
        for (int f = 0; f < 2; ++f)
            st->byPurpose[p][f] = c.u64();
    for (int k = 0; k < numCheckCats; ++k)
        for (int f = 0; f < 2; ++f)
            st->byCat[k][f] = c.u64();
    st->andOps = c.u64();
    st->moveOps = c.u64();
    st->noops = c.u64();
    st->squashed = c.u64();
    st->loadStalls = c.u64();
    st->loads = c.u64();
    st->stores = c.u64();
    st->branches = c.u64();
}

} // namespace

std::string
MachineSnapshot::serialize() const
{
    std::string s;
    s.reserve(256 + memory.size() * 4 + output.size());
    s.append(kMagic, sizeof kMagic);

    for (uint32_t r : regs)
        putU32(s, r);
    putI32(s, pc);
    for (int h : trapHandler)
        putI32(s, h);

    putI32(s, pendingLoadReg);
    putI32(s, slotsRemaining);
    putI32(s, branchTaken ? 1 : 0);
    putI32(s, annulSlots ? 1 : 0);
    putI32(s, branchTarget);
    putI32(s, branchIdx);

    putStats(s, stats);
    putBytes(s, output);
    putU32(s, exitValue);
    putU64(s, static_cast<uint64_t>(errorCode));
    putI32(s, static_cast<int32_t>(stop));
    putI32(s, faultIndex);

    putU64(s, memory.size());
    for (uint32_t w : memory)
        putU32(s, w);
    putU64(s, memTagLocks.size());
    s.append(reinterpret_cast<const char *>(memTagLocks.data()),
             memTagLocks.size());
    return s;
}

bool
MachineSnapshot::deserialize(const std::string &bytes, MachineSnapshot *out)
{
    Cursor c{bytes};
    char magic[8] = {};
    if (!c.take(magic, sizeof magic) ||
        std::memcmp(magic, kMagic, sizeof kMagic) != 0)
        return false;

    MachineSnapshot s;
    for (uint32_t &r : s.regs)
        r = c.u32();
    s.pc = c.i32();
    for (int &h : s.trapHandler)
        h = c.i32();

    s.pendingLoadReg = c.i32();
    s.slotsRemaining = c.i32();
    s.branchTaken = c.i32() != 0;
    s.annulSlots = c.i32() != 0;
    s.branchTarget = c.i32();
    s.branchIdx = c.i32();

    takeStats(c, &s.stats);
    s.output = c.bytes();
    s.exitValue = c.u32();
    s.errorCode = static_cast<int64_t>(c.u64());
    int32_t stop = c.i32();
    if (stop < static_cast<int32_t>(StopReason::Running) ||
        stop > static_cast<int32_t>(StopReason::IllegalAccess))
        return false;
    s.stop = static_cast<StopReason>(stop);
    s.faultIndex = c.i32();

    uint64_t words = c.u64();
    if (!c.ok || c.pos + words * 4 > bytes.size())
        return false;
    s.memory.resize(words);
    for (uint64_t i = 0; i < words; ++i)
        s.memory[i] = c.u32();
    uint64_t locks = c.u64();
    if (!c.ok || c.pos + locks > bytes.size())
        return false;
    s.memTagLocks.resize(locks);
    if (locks > 0 && !c.take(s.memTagLocks.data(), locks))
        return false;
    if (!c.ok || c.pos != bytes.size())
        return false;
    *out = std::move(s);
    return true;
}

} // namespace mxl
