/**
 * @file
 * High-tag schemes: the tag occupies the most significant bits.
 *
 * HighTag5 is the paper's baseline (§2.1): 5 tag bits, 27 data bits,
 * positive integers tag 0 and negative integers tag 31, so a fixnum is
 * its own two's-complement machine representation.
 *
 * HighTag6 is the §4.2 variant: 6 tag bits chosen so that a generic add
 * can be implemented as a plain add followed by a single integer test on
 * the result (sumCheckSound() is true).
 */

#ifndef MXLISP_TAGS_HIGH_TAG_H_
#define MXLISP_TAGS_HIGH_TAG_H_

#include "tags/tag_scheme.h"

namespace mxl {

/** Common implementation for high-placed tags of parametric width. */
class HighTagScheme : public TagScheme
{
  public:
    TagPlacement placement() const override { return TagPlacement::High; }
    int fixnumScale() const override { return 1; }

    bool fixnumInRange(int64_t v) const override;
    uint32_t encodeFixnum(int64_t v) const override;
    int64_t decodeFixnum(uint32_t w) const override;
    bool wordIsFixnum(uint32_t w) const override;

    bool headerDiscriminated(TypeId t) const override;
    uint32_t encodePointer(TypeId t, uint32_t addr) const override;
    uint32_t detagAddr(uint32_t w) const override;
    int32_t offsetAdjust(TypeId t) const override;
    uint32_t alignment(TypeId t) const override;

    uint32_t encodeChar(uint32_t code) const override;
    uint32_t charCode(uint32_t w) const override;
};

/** The §2.1 baseline scheme. */
class HighTag5 : public HighTagScheme
{
  public:
    std::string name() const override { return "high5"; }
    unsigned tagBits() const override { return 5; }
    uint32_t pointerTag(TypeId t) const override;
    uint32_t charTag() const override { return 3; }
    bool sumCheckSound() const override { return false; }
};

/**
 * The §4.2 scheme: 6 tag bits; all non-integer tags lie in [8, 23], so
 * tag1 + tag2 (+ carry from the data part) can never equal an integer
 * tag (0 or 63) unless both operands were integers and no overflow
 * occurred.
 */
class HighTag6 : public HighTagScheme
{
  public:
    std::string name() const override { return "high6"; }
    unsigned tagBits() const override { return 6; }
    uint32_t pointerTag(TypeId t) const override;
    uint32_t charTag() const override { return 11; }
    bool sumCheckSound() const override { return true; }
};

} // namespace mxl

#endif // MXLISP_TAGS_HIGH_TAG_H_
