#include "sexpr/printer.h"

#include <sstream>

namespace mxl {

namespace {

void
printTo(std::ostringstream &os, const Sx *form)
{
    switch (form->kind) {
      case SxKind::Int:
        os << form->ival;
        break;
      case SxKind::Sym:
        os << form->text;
        break;
      case SxKind::Str:
        os << '"' << form->text << '"';
        break;
      case SxKind::Pair: {
        os << '(';
        const Sx *p = form;
        bool first = true;
        while (p->isPair()) {
            if (!first)
                os << ' ';
            first = false;
            printTo(os, p->car);
            p = p->cdr;
        }
        if (!p->isNil()) {
            os << " . ";
            printTo(os, p);
        }
        os << ')';
        break;
      }
    }
}

} // namespace

std::string
printSx(const Sx *form)
{
    std::ostringstream os;
    printTo(os, form);
    return os.str();
}

} // namespace mxl
