#include "programs/programs.h"

namespace mxl {

/*
 * frl: "a simple inventory system using the frame representation
 * language".
 *
 * Frames are symbols; each frame's slots live on its property list as
 * (slot . facet-alist) entries with `value` and `default` facets, and
 * `ako` links give inheritance. The inventory builds a category
 * hierarchy, instantiates items, and answers queries that walk the
 * inheritance chain — the plist/assq-heavy profile of FRL programs.
 */
const std::string &
progFrl()
{
    static const std::string src = R"lisp(
;; -- FRL kernel -------------------------------------------------------

(de fput (frame slot facet value)
  (let ((s (assq slot (get frame 'slots))))
    (if (null s)
        (progn
          (setq s (cons slot nil))
          (put frame 'slots (cons s (get frame 'slots)))))
    (let ((f (assq facet (cdr s))))
      (if f
          (rplacd f value)
          (rplacd s (cons (cons facet value) (cdr s))))))
  value)

(de fget-local (frame slot facet)
  (let ((s (assq slot (get frame 'slots))))
    (if s
        (let ((f (assq facet (cdr s))))
          (if f (cdr f) nil))
        nil)))

;; value facet, else inherited value, else default, else inherited default
(de fget (frame slot)
  (or (fget-chain frame slot 'value)
      (fget-chain frame slot 'default)))

(de fget-chain (frame slot facet)
  (if (null frame)
      nil
      (or (fget-local frame slot facet)
          (fget-chain (fget-local frame 'ako 'value) slot facet))))

(de fkindp (frame kind)
  (cond ((null frame) nil)
        ((eq frame kind) t)
        (t (fkindp (fget-local frame 'ako 'value) kind))))

;; -- the inventory -----------------------------------------------------

(de make-kind (name parent)
  (put name 'slots nil)
  (if parent (fput name 'ako 'value parent) nil)
  name)

(de make-item (name kind price qty loc)
  (put name 'slots nil)
  (fput name 'ako 'value kind)
  (fput name 'price 'value price)
  (fput name 'qty 'value qty)
  (fput name 'loc 'value loc)
  (setq *inventory* (cons name *inventory*))
  name)

(de frl-setup ()
  (setq *inventory* nil)
  (make-kind 'thing nil)
  (fput 'thing 'qty 'default 0)
  (fput 'thing 'reorder 'default 10)
  (make-kind 'tool 'thing)
  (fput 'tool 'loc 'default 'shed)
  (make-kind 'powertool 'tool)
  (fput 'powertool 'voltage 'default 220)
  (make-kind 'handtool 'tool)
  (make-kind 'material 'thing)
  (fput 'material 'loc 'default 'yard)
  (make-kind 'fastener 'material)
  (fput 'fastener 'reorder 'default 500)
  (make-item 'hammer1 'handtool 12 4 'rack1)
  (make-item 'hammer2 'handtool 15 2 'rack1)
  (make-item 'saw1 'handtool 23 3 'rack2)
  (make-item 'drill1 'powertool 89 1 'cab1)
  (make-item 'drill2 'powertool 129 2 'cab1)
  (make-item 'sander1 'powertool 75 1 'cab2)
  (make-item 'plank1 'material 7 40 nil)
  (make-item 'plank2 'material 9 25 nil)
  (make-item 'nails1 'fastener 3 800 'bin1)
  (make-item 'nails2 'fastener 4 350 'bin2)
  (make-item 'screws1 'fastener 5 150 'bin3)
  (make-item 'wrench1 'handtool 18 6 'rack3)
  (make-item 'lathe1 'powertool 450 1 'floor)
  (make-item 'glue1 'material 6 12 'shelf1)
  (make-item 'bolts1 'fastener 7 90 'bin4))

(de total-value (items)
  (if (null items)
      0
      (+ (* (fget (car items) 'price) (fget (car items) 'qty))
         (total-value (cdr items)))))

(de count-kind (items kind)
  (let ((n 0))
    (while (pairp items)
      (if (fkindp (car items) kind) (setq n (add1 n)) nil)
      (setq items (cdr items)))
    n))

(de needs-reorder (items)
  (let ((out nil))
    (while (pairp items)
      (if (lessp (fget (car items) 'qty)
                 (fget (car items) 'reorder))
          (setq out (cons (car items) out))
          nil)
      (setq items (cdr items)))
    out))

(de located-at (items where)
  (let ((out nil))
    (while (pairp items)
      (if (eq (fget (car items) 'loc) where)
          (setq out (cons (car items) out))
          nil)
      (setq items (cdr items)))
    out))

(de frl-main (rounds)
  (let ((total 0))
    (while (greaterp rounds 0)
      (frl-setup)
      (setq total (+ total (total-value *inventory*)))
      (setq total (+ total (count-kind *inventory* 'tool)))
      (setq total (+ total (length (needs-reorder *inventory*))))
      (setq total (+ total (length (located-at *inventory* 'yard))))
      (setq total (remainder total 999983))
      (setq rounds (sub1 rounds)))
    (print total)
    (print (fget 'drill1 'voltage))
    (print (fget 'plank1 'loc))
    (print (reverse (needs-reorder *inventory*)))
    (print (count-kind *inventory* 'material))))
)lisp";
    return src;
}

} // namespace mxl
