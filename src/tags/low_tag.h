/**
 * @file
 * Low-tag schemes (§5.2): the tag lives in the bottom bits of the word,
 * where word alignment makes it free for memory accesses — the tag is
 * absorbed by adjusting the access offset, so no masking is ever needed
 * and the full 32-bit address space remains usable.
 */

#ifndef MXLISP_TAGS_LOW_TAG_H_
#define MXLISP_TAGS_LOW_TAG_H_

#include "tags/tag_scheme.h"

namespace mxl {

/** Common implementation for low-placed tags. */
class LowTagScheme : public TagScheme
{
  public:
    TagPlacement placement() const override { return TagPlacement::Low; }
    int fixnumScale() const override { return 4; }

    bool fixnumInRange(int64_t v) const override;
    uint32_t encodeFixnum(int64_t v) const override;
    int64_t decodeFixnum(uint32_t w) const override;

    uint32_t encodePointer(TypeId t, uint32_t addr) const override;
    uint32_t detagAddr(uint32_t w) const override;
    int32_t offsetAdjust(TypeId t) const override;

    uint32_t encodeChar(uint32_t code) const override;
    uint32_t charCode(uint32_t w) const override;
};

/**
 * Two-bit tags: 00 fixnum, 01 pair, 10 heap object with a header word
 * (symbol/vector/string/bignum), 11 escape/immediate. The most frequent
 * types (fixnum, pair) get direct tags; everything else pays a header
 * load on type checks — the trade the paper describes for 2-bit tags.
 */
class LowTag2 : public LowTagScheme
{
  public:
    std::string name() const override { return "low2"; }
    unsigned tagBits() const override { return 2; }
    bool wordIsFixnum(uint32_t w) const override { return (w & 3u) == 0; }
    uint32_t pointerTag(TypeId t) const override;
    bool headerDiscriminated(TypeId t) const override;
    uint32_t alignment(TypeId t) const override;
    uint32_t charTag() const override { return 3; }
    bool sumCheckSound() const override { return false; }
};

/**
 * Three-bit tags: even/odd fixnums 000/100 (so the representation is
 * value*4 and arithmetic plus word indexing stay native), pair 001,
 * symbol 010, vector 101, string 110, escapes x11. Objects with 3-bit
 * tags are aligned on 8-byte boundaries (§5.2: "wasting a word to ensure
 * the alignment is relatively cheap").
 */
class LowTag3 : public LowTagScheme
{
  public:
    std::string name() const override { return "low3"; }
    unsigned tagBits() const override { return 3; }
    bool wordIsFixnum(uint32_t w) const override { return (w & 3u) == 0; }
    uint32_t pointerTag(TypeId t) const override;
    bool headerDiscriminated(TypeId t) const override;
    uint32_t alignment(TypeId t) const override;
    uint32_t charTag() const override { return 3; }
    bool sumCheckSound() const override { return false; }
};

} // namespace mxl

#endif // MXLISP_TAGS_LOW_TAG_H_
