#include "compiler/frame.h"

#include "support/panic.h"

namespace mxl {

void
FrameEnv::pop(int n)
{
    MXL_ASSERT(depth_ >= n, "frame underflow");
    depth_ -= n;
    while (!bindings_.empty() && bindings_.back().depth > depth_)
        bindings_.pop_back();
}

void
FrameEnv::bind(Sx *sym)
{
    MXL_ASSERT(depth_ > 0, "bind with empty frame");
    bindings_.push_back({sym, depth_});
}

void
FrameEnv::bindAt(Sx *sym, int depth)
{
    MXL_ASSERT(depth > 0 && depth <= depth_, "bindAt out of range");
    bindings_.push_back({sym, depth});
}

void
FrameEnv::unbind(int n)
{
    MXL_ASSERT(static_cast<int>(bindings_.size()) >= n, "unbind underflow");
    bindings_.resize(bindings_.size() - static_cast<size_t>(n));
}

int
FrameEnv::offsetOf(const Sx *sym) const
{
    for (auto it = bindings_.rbegin(); it != bindings_.rend(); ++it) {
        if (it->sym == sym)
            return 4 * (depth_ - it->depth);
    }
    return -1;
}

} // namespace mxl
