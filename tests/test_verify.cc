/**
 * Tests for the load-time tag-discipline verifier (analysis/verify.h)
 * and its two enforcement points: the link() gate
 * (CompilerOptions::verifyLinked) and the Engine's re-proof of every
 * Hooks::unitTransform result (Hooks::verifyTransformed).
 *
 * The negative cases are the heart of the suite: four hand-assembled
 * units, each violating the tag discipline in a different way, must be
 * rejected with four *distinct* structured codes — the verifier is the
 * trusted base, so its diagnostics have to say why a proof failed, not
 * just that one did. The matrix case then proves the compiler's own
 * output passes the gate in every configuration of the study, and the
 * engine case proves a buggy (untrusted) rewriter cannot smuggle an
 * unguarded access past the gate into a simulation.
 */

#include <gtest/gtest.h>

#include <set>

#include "analysis/checkplace.h"
#include "analysis/verify.h"
#include "compiler/asm_buffer.h"
#include "compiler/linker.h"
#include "compiler/unit.h"
#include "core/engine.h"
#include "core/experiment.h"
#include "isa/assembler.h"
#include "programs/programs.h"
#include "support/panic.h"

namespace mxl {
namespace {

// High5: 5 tag bits at the top of the word, pair tag 9, shift 27.
constexpr int kShift = 27;
constexpr int kPair = 9;

CompilerOptions
fullOpts()
{
    CompilerOptions o;
    o.scheme = SchemeKind::High5;
    o.checking = Checking::Full;
    return o;
}

/** Stamp the check idiom at @p extract (Srli) / @p extract+1 (Bnei). */
void
stampCheck(Program &p, int extract)
{
    p.code[static_cast<size_t>(extract)].ann =
        Annotation(Purpose::TagExtract, CheckCat::List, true);
    p.code[static_cast<size_t>(extract) + 1].ann =
        Annotation(Purpose::TagCheck, CheckCat::List, true);
}

/** Stamp the Ld/St at @p pc as a protected list access. */
void
stampAccess(Program &p, int pc)
{
    p.code[static_cast<size_t>(pc)].ann =
        Annotation(Purpose::Useful, CheckCat::List, true);
}

VerifyResult
verify(Program &p, const CompilerOptions &opts)
{
    auto scheme = makeScheme(opts.scheme);
    return verifyProgram(p, *scheme, opts);
}

// ------------------------------------------------------------ positives

TEST(Verify, AcceptsGuardedAccess)
{
    Program p = assemble(R"(
        f:
            srli r10, r3, 27
            bnei r10, 9, err
            noop
            noop
            ld r4, 0(r3)
            sys halt, r0
        err:
            sys error, r0
    )");
    stampCheck(p, 0);
    stampAccess(p, 4);
    VerifyResult r = verify(p, fullOpts());
    EXPECT_TRUE(r.ok()) << r.render();
    EXPECT_EQ(r.accessesProven, 1);
}

TEST(Verify, AcceptsHardwareBranchGuard)
{
    // hw.branchOnTag idiom: Bntag jumps to the error path unless the
    // tag matches, so the fall edge proves the base directly.
    Program p = assemble(R"(
        f:
            bntag r3, 9, err
            noop
            noop
            ld r4, 0(r3)
            sys halt, r0
        err:
            sys error, r0
    )");
    p.code[0].ann = Annotation(Purpose::TagCheck, CheckCat::List, true);
    stampAccess(p, 3);
    CompilerOptions o = fullOpts();
    o.hw.branchOnTag = true;
    VerifyResult r = verify(p, o);
    EXPECT_TRUE(r.ok()) << r.render();
    EXPECT_EQ(r.accessesProven, 1);
}

TEST(Verify, CountsCheckedMemoryAsTrusted)
{
    Program p = assemble(R"(
        f:
            ldt r4, 0(r3), 9
            sys halt, r0
    )");
    p.code[0].ann = Annotation(Purpose::Useful, CheckCat::List, true);
    VerifyResult r = verify(p, fullOpts());
    EXPECT_TRUE(r.ok()) << r.render();
    EXPECT_EQ(r.accessesTrusted, 1);
    EXPECT_EQ(r.accessesProven, 0);
}

TEST(Verify, CheckingOffIsStructuralOnly)
{
    // With no checks emitted there is nothing to prove: only the
    // delay-group structure is enforced.
    Program p = assemble(R"(
        f:
            ld r4, 0(r3)
            sys halt, r0
    )");
    stampAccess(p, 0);
    CompilerOptions o = fullOpts();
    o.checking = Checking::Off;
    EXPECT_TRUE(verify(p, o).ok());
}

// ------------------------------------------------------------ negatives
//
// Each unit violates the discipline differently and must come back with
// its own code (the acceptance checklist's "distinct diagnostics").

TEST(Verify, RejectsUnguardedAccess)
{
    Program p = assemble(R"(
        f:
            ld r4, 0(r3)
            sys halt, r0
    )");
    stampAccess(p, 0);
    VerifyResult r = verify(p, fullOpts());
    EXPECT_EQ(r.code, VerifyCode::UnguardedAccess);
    EXPECT_EQ(r.pc, 0);
    EXPECT_NE(r.detail.find("no tag guard"), std::string::npos)
        << r.render();
}

TEST(Verify, RejectsGuardOnWrongRegister)
{
    // The check proves r5; the access dereferences r3.
    Program p = assemble(R"(
        f:
            srli r10, r5, 27
            bnei r10, 9, err
            noop
            noop
            ld r4, 0(r3)
            sys halt, r0
        err:
            sys error, r0
    )");
    stampCheck(p, 0);
    stampAccess(p, 4);
    VerifyResult r = verify(p, fullOpts());
    EXPECT_EQ(r.code, VerifyCode::GuardWrongRegister);
    EXPECT_EQ(r.pc, 4);
    EXPECT_NE(r.detail.find("wrong register"), std::string::npos)
        << r.render();
}

TEST(Verify, RejectsGuardClobberedInDelaySlot)
{
    // The base is re-written in the check's own delay slot, after the
    // branch condition was computed but before the protected access.
    Program p = assemble(R"(
        f:
            srli r10, r3, 27
            bnei r10, 9, err
            add r3, r6, r7
            noop
            ld r4, 0(r3)
            sys halt, r0
        err:
            sys error, r0
    )");
    stampCheck(p, 0);
    stampAccess(p, 4);
    VerifyResult r = verify(p, fullOpts());
    EXPECT_EQ(r.code, VerifyCode::GuardClobbered);
    EXPECT_EQ(r.pc, 4);
    EXPECT_NE(r.detail.find("overwritten"), std::string::npos)
        << r.render();
}

TEST(Verify, RejectsNonDominatingGuard)
{
    // One path runs the check, the other skips it: the access's guard
    // no longer dominates it — the hoist-gone-wrong shape.
    Program p = assemble(R"(
        f:
            beq r6, r7, skip
            noop
            noop
            srli r10, r3, 27
            bnei r10, 9, err
            noop
            noop
        skip:
            ld r4, 0(r3)
            sys halt, r0
        err:
            sys error, r0
    )");
    stampCheck(p, 3);
    stampAccess(p, 7);
    VerifyResult r = verify(p, fullOpts());
    EXPECT_EQ(r.code, VerifyCode::GuardNotDominating);
    EXPECT_EQ(r.pc, 7);
    EXPECT_NE(r.detail.find("every path"), std::string::npos)
        << r.render();
}

TEST(Verify, NegativeDiagnosticsAreDistinct)
{
    // The four negative cases above must map to four different codes —
    // a rejection names the failure mode, not just the failure.
    const std::set<VerifyCode> codes = {
        VerifyCode::UnguardedAccess, VerifyCode::GuardWrongRegister,
        VerifyCode::GuardClobbered, VerifyCode::GuardNotDominating};
    EXPECT_EQ(codes.size(), 4u);
    std::set<std::string> names;
    for (VerifyCode c : codes)
        names.insert(verifyCodeName(c));
    EXPECT_EQ(names.size(), 4u);
}

TEST(Verify, RejectsMalformedStructure)
{
    // Truncated delay group: the branch's second slot is past the end.
    Program p = assemble(R"(
        f:
            beq r1, r2, f
            noop
    )");
    EXPECT_EQ(verify(p, fullOpts()).code, VerifyCode::MalformedUnit);

    // Branch target inside another group's delay slot.
    Program q = assemble(R"(
        f:
            beq r1, r2, g
            noop
            noop
            sys halt, r0
        g:
            noop
            noop
    )");
    q.code[0].target = 2; // retarget into f's own slot
    EXPECT_EQ(verify(q, fullOpts()).code, VerifyCode::MalformedUnit);
}

// ------------------------------------------------------- the link gate

TEST(Verify, LinkerGateRejectsUnguardedBuffer)
{
    AsmBuffer buf;
    buf.defineSymbol("f");
    buf.ld(4, 3, 0, Annotation(Purpose::Useful, CheckCat::List, true));
    buf.sys(SysCode::Halt, abi::zero, Annotation(Purpose::Useful));

    CompilerOptions o = fullOpts();
    auto scheme = makeScheme(o.scheme);
    const LinkVerify gate{scheme.get(), &o};
    EXPECT_THROW(link(buf, /*requireAnnotations=*/false, &gate), MxlError);
    // Without the gate the same buffer links fine.
    EXPECT_NO_THROW(link(buf));
}

TEST(Verify, CompilerOutputPassesLinkGateEverywhere)
{
    // The acceptance matrix: every configuration of the study compiles
    // with the verifier gating link(), i.e. the compiler never emits an
    // unguarded list access. Covers schemes x checking x hardware rows
    // x arithmetic modes x overlapChecks on a source that exercises
    // list traversal, allocation, and arithmetic.
    const std::string src =
        "(de len (l n) (if (atom l) n (len (cdr l) (+ n 1))))"
        "(len (cons 1 (quote (2 3 4))) 0)";

    std::vector<CompilerOptions> cells;
    for (SchemeKind k : {SchemeKind::High5, SchemeKind::High6,
                         SchemeKind::Low2, SchemeKind::Low3}) {
        CompilerOptions o;
        o.scheme = k;
        cells.push_back(o);
        if (makeScheme(k)->sumCheckSound()) {
            o.arithMode = ArithMode::SumCheck;
            cells.push_back(o);
        }
        o.arithMode = ArithMode::ForceDispatch;
        cells.push_back(o);
    }
    for (const Table2Config &row : table2Configs())
        cells.push_back(row.opts);

    size_t verified = 0;
    for (CompilerOptions o : cells) {
        for (Checking c : {Checking::Off, Checking::Full}) {
            for (bool overlap : {false, true}) {
                o.checking = c;
                o.overlapChecks = overlap;
                o.verifyLinked = true;
                CompiledUnit unit;
                ASSERT_NO_THROW(unit = compileUnit(src, o))
                    << o.describe() << " overlap=" << overlap;
                VerifyResult r = verifyUnit(unit);
                EXPECT_TRUE(r.ok())
                    << o.describe() << ": " << r.render();
                ++verified;
            }
        }
    }
    EXPECT_GE(verified, 40u);
}

TEST(Verify, BenchmarkProgramsPassLinkGate)
{
    CompilerOptions o = baselineOptions(Checking::Full);
    o.verifyLinked = true;
    for (const auto &bp : benchmarkPrograms()) {
        o.heapBytes = bp.heapBytes;
        CompiledUnit unit;
        ASSERT_NO_THROW(unit = compileUnit(bp.source, o)) << bp.name;
        VerifyResult r = verifyUnit(unit);
        EXPECT_TRUE(r.ok()) << bp.name << ": " << r.render();
        EXPECT_GT(r.accessesProven, 0) << bp.name;
    }
}

// ----------------------------------------------------- the engine gate

/** Clone @p unit and blunt every full-checking list tag-check branch
 *  into a Noop: the buggy-rewriter stand-in. */
std::shared_ptr<const CompiledUnit>
bluntListChecks(std::shared_ptr<const CompiledUnit> unit)
{
    auto copy = std::make_shared<CompiledUnit>(cloneUnit(*unit));
    for (auto &q : copy->prog.code) {
        if (isCondBranch(q.op) && q.ann.purpose == Purpose::TagCheck &&
            q.ann.fromChecking && q.ann.cat == CheckCat::List) {
            q = Instruction{};
            q.ann = Annotation(Purpose::Useful);
        }
    }
    return copy;
}

TEST(Verify, EngineRejectsUnsoundTransform)
{
    Engine eng;
    RunRequest req;
    req.source = "(car (quote (1 2)))";
    req.opts = baselineOptions(Checking::Full);
    req.hooks.unitTransform = bluntListChecks;

    RunReport rep = eng.run(req);
    EXPECT_EQ(rep.status.code, RunStatus::Code::InternalError);
    EXPECT_NE(rep.status.message.find("rejected"), std::string::npos)
        << rep.status.message;

    // The same broken unit runs "fine" with the gate off (its data
    // happens to be well-typed) — the verifier, not the run, is what
    // catches the missing guard.
    req.hooks.verifyTransformed = false;
    RunReport loose = eng.run(req);
    EXPECT_TRUE(loose.ok()) << loose.status.message;
}

TEST(Verify, EngineAcceptsSoundTransform)
{
    Engine eng;
    RunRequest req;
    req.source = "(car (quote (1 2)))";
    req.opts = baselineOptions(Checking::Full);
    PlaceStats st;
    req.hooks.unitTransform =
        [&st](std::shared_ptr<const CompiledUnit> unit) {
            return checkPlaceTransform(unit, &st);
        };
    RunReport rep = eng.run(req);
    EXPECT_TRUE(rep.ok()) << rep.status.message;
}

} // namespace
} // namespace mxl
