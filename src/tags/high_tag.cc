#include "tags/high_tag.h"

#include "support/bits.h"
#include "support/panic.h"

namespace mxl {

bool
HighTagScheme::fixnumInRange(int64_t v) const
{
    return fitsSigned(v, dataBits());
}

uint32_t
HighTagScheme::encodeFixnum(int64_t v) const
{
    MXL_ASSERT(fixnumInRange(v), "fixnum out of range: ", v);
    // Two's complement: the tag field becomes the sign extension (0 for
    // positive, all-ones for negative), which is exactly the integer tag
    // assignment of §2.1.
    return static_cast<uint32_t>(static_cast<int64_t>(v) & 0xffffffff);
}

int64_t
HighTagScheme::decodeFixnum(uint32_t w) const
{
    return signExtend(w, dataBits());
}

bool
HighTagScheme::wordIsFixnum(uint32_t w) const
{
    // §4.1 method 2: sign-extend the data part and compare with the
    // original word.
    return static_cast<uint32_t>(signExtend(w, dataBits())) == w;
}

bool
HighTagScheme::headerDiscriminated(TypeId) const
{
    return false;
}

uint32_t
HighTagScheme::encodePointer(TypeId t, uint32_t addr) const
{
    MXL_ASSERT((addr >> dataBits()) == 0, "address too large: ", addr);
    return (pointerTag(t) << tagShift()) | addr;
}

uint32_t
HighTagScheme::detagAddr(uint32_t w) const
{
    return w & maskBits(0, dataBits());
}

int32_t
HighTagScheme::offsetAdjust(TypeId) const
{
    return 0; // high tags must be masked, never folded into the offset
}

uint32_t
HighTagScheme::alignment(TypeId) const
{
    return 4;
}

uint32_t
HighTagScheme::encodeChar(uint32_t code) const
{
    return (charTag() << tagShift()) | (code & 0xff);
}

uint32_t
HighTagScheme::charCode(uint32_t w) const
{
    return w & 0xff;
}

uint32_t
HighTag5::pointerTag(TypeId t) const
{
    switch (t) {
      case TypeId::Pair:    return 9;
      case TypeId::Symbol:  return 5;
      case TypeId::Vector:  return 13;
      case TypeId::String:  return 17;
      default:
        panic("pointerTag: not a pointer type: ", typeName(t));
    }
}

uint32_t
HighTag6::pointerTag(TypeId t) const
{
    // All non-integer tags must lie in [8, 23] for sumCheckSound().
    switch (t) {
      case TypeId::Pair:    return 9;
      case TypeId::Symbol:  return 10;
      case TypeId::Vector:  return 13;
      case TypeId::String:  return 17;
      default:
        panic("pointerTag: not a pointer type: ", typeName(t));
    }
}

} // namespace mxl
