/**
 * Tag-scheme tour: one program, every tag implementation and hardware
 * ladder from the paper, side by side. Shows the paper's headline —
 * software low tags and a branch-on-tag instruction capture most of
 * what full Lisp-machine hardware captures.
 */

#include <cstdio>

#include "core/experiment.h"
#include "core/run.h"
#include "support/format.h"
#include "support/table.h"

using namespace mxl;

namespace {

const char *kProgram = R"lisp(
    (de insert (x l)
      (cond ((null l) (cons x nil))
            ((lessp x (car l)) (cons x l))
            (t (cons (car l) (insert x (cdr l))))))
    (de isort (l) (if (null l) nil (insert (car l) (isort (cdr l)))))
    (de shuffle (n) (if (zerop n) nil (cons (random 1000) (shuffle (sub1 n)))))
    (seed-random 42)
    (let ((i 0))
      (while (lessp i 20)
        (isort (shuffle 30))
        (setq i (add1 i))))
    (print (car (isort (shuffle 10))))
)lisp";

uint64_t
cycles(CompilerOptions opts, std::string *out = nullptr)
{
    RunResult r = compileAndRun(kProgram, opts, 400'000'000);
    if (out)
        *out = r.output;
    return r.stats.total;
}

} // namespace

int
main()
{
    std::printf("One insertion-sort workload, every tag "
                "implementation (cycles; checking on):\n\n");

    std::string expected;
    uint64_t base = cycles(baselineOptions(Checking::Full), &expected);

    TextTable t;
    t.addRow({"configuration", "cycles", "vs baseline"});
    t.addRow({"high5 (the paper's baseline)", strcat(base), "--"});

    auto row = [&](const std::string &label, CompilerOptions o) {
        std::string out;
        uint64_t c = cycles(o, &out);
        if (out != expected)
            std::printf("!! output mismatch under %s\n", label.c_str());
        double gain = 100.0 * (static_cast<double>(base) -
                               static_cast<double>(c)) /
                      static_cast<double>(base);
        t.addRow({label, strcat(c), percent(gain)});
    };

    for (SchemeKind sk : {SchemeKind::High6, SchemeKind::Low2,
                          SchemeKind::Low3}) {
        CompilerOptions o = baselineOptions(Checking::Full);
        o.scheme = sk;
        row(strcat("software scheme ", schemeKindName(sk)), o);
    }
    for (const auto &cfg : table2Configs())
        row(strcat("hardware ", cfg.id, ": ", cfg.label),
            cfg.withChecking(Checking::Full));

    std::printf("%s\n", t.render().c_str());
    std::printf("Note how row3 (two cheap features) lands close to "
                "row7 (everything):\nthe paper's point that minimal "
                "support captures most of the benefit.\n");
    return 0;
}
