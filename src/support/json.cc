#include "support/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace mxl {

Json &
Json::set(const std::string &key, Json v)
{
    type_ = Type::Object;
    obj_.emplace_back(key, std::move(v));
    return *this;
}

const Json *
Json::find(const std::string &key) const
{
    const Json *found = nullptr;
    for (const auto &kv : obj_)
        if (kv.first == key)
            found = &kv.second;
    return found;
}

Json &
Json::push(Json v)
{
    type_ = Type::Array;
    arr_.push_back(std::move(v));
    return *this;
}

size_t
Json::size() const
{
    if (type_ == Type::Array)
        return arr_.size();
    if (type_ == Type::Object)
        return obj_.size();
    return 0;
}

bool
Json::asBool(bool dflt) const
{
    return type_ == Type::Bool ? bool_ : dflt;
}

int64_t
Json::asInt(int64_t dflt) const
{
    switch (type_) {
      case Type::Int:
        return int_;
      case Type::Uint:
        return static_cast<int64_t>(uint_);
      case Type::Real:
        return static_cast<int64_t>(real_);
      default:
        return dflt;
    }
}

uint64_t
Json::asUint(uint64_t dflt) const
{
    switch (type_) {
      case Type::Uint:
        return uint_;
      case Type::Int:
        return static_cast<uint64_t>(int_);
      case Type::Real:
        return static_cast<uint64_t>(real_);
      default:
        return dflt;
    }
}

double
Json::asReal(double dflt) const
{
    switch (type_) {
      case Type::Real:
        return real_;
      case Type::Int:
        return static_cast<double>(int_);
      case Type::Uint:
        return static_cast<double>(uint_);
      default:
        return dflt;
    }
}

namespace {

void
escapeTo(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned char>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
newlineIndent(std::string &out, int indent, int depth)
{
    if (indent <= 0)
        return;
    out += '\n';
    out.append(static_cast<size_t>(indent) * depth, ' ');
}

} // namespace

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    switch (type_) {
      case Type::Null:
        out += "null";
        break;
      case Type::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Type::Int:
        out += std::to_string(int_);
        break;
      case Type::Uint:
        out += std::to_string(uint_);
        break;
      case Type::Real: {
        if (std::isfinite(real_)) {
            char buf[32];
            std::snprintf(buf, sizeof buf, "%.17g", real_);
            out += buf;
        } else {
            out += "null"; // JSON has no inf/nan
        }
        break;
      }
      case Type::Str:
        escapeTo(out, str_);
        break;
      case Type::Array: {
        out += '[';
        for (size_t i = 0; i < arr_.size(); ++i) {
            if (i)
                out += indent > 0 ? "," : ", ";
            newlineIndent(out, indent, depth + 1);
            arr_[i].dumpTo(out, indent, depth + 1);
        }
        if (!arr_.empty())
            newlineIndent(out, indent, depth);
        out += ']';
        break;
      }
      case Type::Object: {
        out += '{';
        for (size_t i = 0; i < obj_.size(); ++i) {
            if (i)
                out += indent > 0 ? "," : ", ";
            newlineIndent(out, indent, depth + 1);
            escapeTo(out, obj_[i].first);
            out += ": ";
            obj_[i].second.dumpTo(out, indent, depth + 1);
        }
        if (!obj_.empty())
            newlineIndent(out, indent, depth);
        out += '}';
        break;
      }
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

// ---- parser -----------------------------------------------------------

namespace {

struct Parser
{
    const char *p;
    const char *end;

    void
    ws()
    {
        while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' ||
                           *p == '\r'))
            ++p;
    }

    bool
    lit(const char *s)
    {
        const char *q = p;
        while (*s) {
            if (q >= end || *q != *s)
                return false;
            ++q;
            ++s;
        }
        p = q;
        return true;
    }

    bool
    parseString(std::string *out)
    {
        if (p >= end || *p != '"')
            return false;
        ++p;
        out->clear();
        while (p < end && *p != '"') {
            char c = *p++;
            if (c != '\\') {
                *out += c;
                continue;
            }
            if (p >= end)
                return false;
            char e = *p++;
            switch (e) {
              case '"': *out += '"'; break;
              case '\\': *out += '\\'; break;
              case '/': *out += '/'; break;
              case 'b': *out += '\b'; break;
              case 'f': *out += '\f'; break;
              case 'n': *out += '\n'; break;
              case 'r': *out += '\r'; break;
              case 't': *out += '\t'; break;
              case 'u': {
                if (end - p < 4)
                    return false;
                unsigned v = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = *p++;
                    v <<= 4;
                    if (h >= '0' && h <= '9')
                        v |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        v |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        v |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return false;
                }
                // Minimal UTF-8 encode (no surrogate pairing; the
                // repo's own output never emits non-BMP escapes).
                if (v < 0x80) {
                    *out += static_cast<char>(v);
                } else if (v < 0x800) {
                    *out += static_cast<char>(0xC0 | (v >> 6));
                    *out += static_cast<char>(0x80 | (v & 0x3F));
                } else {
                    *out += static_cast<char>(0xE0 | (v >> 12));
                    *out += static_cast<char>(0x80 | ((v >> 6) & 0x3F));
                    *out += static_cast<char>(0x80 | (v & 0x3F));
                }
                break;
              }
              default:
                return false;
            }
        }
        if (p >= end)
            return false;
        ++p; // closing quote
        return true;
    }

    bool
    parseNumber(Json *out)
    {
        const char *start = p;
        if (p < end && *p == '-')
            ++p;
        bool digits = false;
        while (p < end && std::isdigit(static_cast<unsigned char>(*p))) {
            ++p;
            digits = true;
        }
        bool integral = true;
        if (p < end && *p == '.') {
            integral = false;
            ++p;
            while (p < end &&
                   std::isdigit(static_cast<unsigned char>(*p)))
                ++p;
        }
        if (p < end && (*p == 'e' || *p == 'E')) {
            integral = false;
            ++p;
            if (p < end && (*p == '+' || *p == '-'))
                ++p;
            while (p < end &&
                   std::isdigit(static_cast<unsigned char>(*p)))
                ++p;
        }
        if (!digits)
            return false;
        std::string text(start, p);
        if (integral) {
            errno = 0;
            if (text[0] == '-') {
                int64_t v = std::strtoll(text.c_str(), nullptr, 10);
                if (errno == ERANGE)
                    return false;
                *out = Json(v);
            } else {
                uint64_t v = std::strtoull(text.c_str(), nullptr, 10);
                if (errno == ERANGE)
                    return false;
                *out = Json(v);
            }
        } else {
            *out = Json(std::strtod(text.c_str(), nullptr));
        }
        return true;
    }

    bool
    parseValue(Json *out, int depth)
    {
        if (depth > 64)
            return false; // runaway nesting
        ws();
        if (p >= end)
            return false;
        switch (*p) {
          case 'n':
            if (!lit("null"))
                return false;
            *out = Json();
            return true;
          case 't':
            if (!lit("true"))
                return false;
            *out = Json(true);
            return true;
          case 'f':
            if (!lit("false"))
                return false;
            *out = Json(false);
            return true;
          case '"': {
            std::string s;
            if (!parseString(&s))
                return false;
            *out = Json(std::move(s));
            return true;
          }
          case '[': {
            ++p;
            Json arr = Json::array();
            ws();
            if (p < end && *p == ']') {
                ++p;
                *out = std::move(arr);
                return true;
            }
            for (;;) {
                Json elem;
                if (!parseValue(&elem, depth + 1))
                    return false;
                arr.push(std::move(elem));
                ws();
                if (p < end && *p == ',') {
                    ++p;
                    continue;
                }
                if (p < end && *p == ']') {
                    ++p;
                    *out = std::move(arr);
                    return true;
                }
                return false;
            }
          }
          case '{': {
            ++p;
            Json obj = Json::object();
            ws();
            if (p < end && *p == '}') {
                ++p;
                *out = std::move(obj);
                return true;
            }
            for (;;) {
                ws();
                std::string key;
                if (!parseString(&key))
                    return false;
                ws();
                if (p >= end || *p != ':')
                    return false;
                ++p;
                Json val;
                if (!parseValue(&val, depth + 1))
                    return false;
                obj.set(key, std::move(val));
                ws();
                if (p < end && *p == ',') {
                    ++p;
                    continue;
                }
                if (p < end && *p == '}') {
                    ++p;
                    *out = std::move(obj);
                    return true;
                }
                return false;
            }
          }
          default:
            return parseNumber(out);
        }
    }
};

} // namespace

bool
Json::parse(const std::string &text, Json *out)
{
    Parser pr{text.data(), text.data() + text.size()};
    if (!pr.parseValue(out, 0))
        return false;
    pr.ws();
    return pr.p == pr.end;
}

bool
Json::roundTrips(const Json &j)
{
    const std::string text = j.dump();
    Json back;
    return parse(text, &back) && back.dump() == text;
}

bool
writeJsonFile(const std::string &path, const Json &j, int indent)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    const std::string text = j.dump(indent) + "\n";
    bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
    ok = std::fclose(f) == 0 && ok;
    return ok;
}

} // namespace mxl
