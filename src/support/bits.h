/**
 * @file
 * Bit-manipulation utilities shared by the tag schemes and the machine.
 */

#ifndef MXLISP_SUPPORT_BITS_H_
#define MXLISP_SUPPORT_BITS_H_

#include <cstdint>

namespace mxl {

/** Extract bits [lo, lo+width) of @p v (width < 32). */
constexpr uint32_t
bitsOf(uint32_t v, unsigned lo, unsigned width)
{
    return (v >> lo) & ((1u << width) - 1u);
}

/** A mask with bits [lo, lo+width) set. */
constexpr uint32_t
maskBits(unsigned lo, unsigned width)
{
    return ((width >= 32 ? 0xffffffffu : ((1u << width) - 1u))) << lo;
}

/** Sign-extend the low @p width bits of @p v to a signed 32-bit value. */
constexpr int32_t
signExtend(uint32_t v, unsigned width)
{
    uint32_t m = 1u << (width - 1);
    uint32_t low = v & ((width >= 32) ? 0xffffffffu : ((1u << width) - 1u));
    return static_cast<int32_t>((low ^ m) - m);
}

/** True if @p v fits in a signed field of @p width bits. */
constexpr bool
fitsSigned(int64_t v, unsigned width)
{
    int64_t lim = int64_t{1} << (width - 1);
    return v >= -lim && v < lim;
}

} // namespace mxl

#endif // MXLISP_SUPPORT_BITS_H_
