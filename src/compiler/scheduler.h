/**
 * @file
 * Delay-slot scheduler.
 *
 * MX control transfers have two delay slots (MIPS-X). The scheduler
 * makes the slots explicit and fills them:
 *
 *  - branches hinted rarely-taken (error checks) fill from the
 *    fall-through path and become squashing (annul-on-taken) — this is
 *    §6.2.1's "an operation and its tag check will happen concurrently
 *    if the operation is moved in a delay slot of the branch";
 *  - other transfers fill from the contiguous suffix of independent
 *    instructions before them;
 *  - remaining slots are padded with noops annotated with the branch's
 *    purpose (the paper charges unused delay slots of a tag check to
 *    tag checking).
 *
 * This pass is also what makes Figure 2 reproducible: removing tag
 * masking removes exactly the ALU instructions that used to fill slots,
 * so the noop count rises.
 */

#ifndef MXLISP_COMPILER_SCHEDULER_H_
#define MXLISP_COMPILER_SCHEDULER_H_

#include "compiler/asm_buffer.h"

namespace mxl {

/**
 * Rewrite @p buf in place. @p fill enables slot filling at all;
 * @p overlapChecks additionally allows rarely-taken check branches to
 * pull the protected operations into squashing slots (§6.2.1's
 * overlap, which makes checks almost free — the paper's baseline does
 * not do this, so it is off by default and studied as an ablation).
 */
void scheduleDelaySlots(AsmBuffer &buf, bool fill, bool overlapChecks);

} // namespace mxl

#endif // MXLISP_COMPILER_SCHEDULER_H_
