/**
 * Tests for the src/obs/ observability layer: the instruction
 * profiler's sum invariants on every benchmark program, symbolization
 * against the assembler label table, the metrics registry (including
 * thread safety under Engine::runGrid — run this binary under
 * -DMXL_SANITIZE=thread), histogram percentiles and the cross-process
 * delta/merge relay, Chrome trace parse-back and the fork-boundary
 * drain/import path, the structured event log, and the BENCH_*.json
 * comparison used by tools/bench_diff.
 */

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/experiment.h"
#include "core/report.h"
#include "core/run.h"
#include "obs/bench_compare.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "support/panic.h"

namespace mxl {
namespace {

RunRequest
request(const std::string &source, Checking checking,
        const std::string &label)
{
    RunRequest req;
    req.source = source;
    req.opts = baselineOptions(checking);
    req.label = label;
    return req;
}

/** A hand-built bench cell in the shape runReportJson() produces. */
Json
benchCell(const std::string &label, uint64_t total, bool ok = true)
{
    Json stats = Json::object();
    stats.set("total", total);
    Json c = Json::object();
    c.set("label", label);
    c.set("statusOk", ok);
    c.set("stats", std::move(stats));
    return c;
}

} // namespace

// ---------------------------------------------------------------------
// Instruction profiler
// ---------------------------------------------------------------------

TEST(Profiler, SumInvariantsOnEveryBenchmarkProgram)
{
    Engine eng;
    for (Checking chk : {Checking::Off, Checking::Full}) {
        std::vector<RunRequest> grid = programGrid(baselineOptions(chk));
        for (RunRequest &req : grid)
            req.hooks.collectProfile = true;
        std::vector<RunReport> reports = eng.runGrid(grid);
        ASSERT_EQ(reports.size(), grid.size());
        for (const RunReport &rep : reports) {
            ASSERT_TRUE(rep.ok()) << rep.status.message;
            ASSERT_TRUE(rep.result.profile) << rep.label;
            const PcProfile &p = *rep.result.profile;
            EXPECT_EQ(p.totalCycles(), rep.result.stats.total)
                << rep.label;
            EXPECT_EQ(p.totalExecuted(), rep.result.stats.instructions)
                << rep.label;
        }
    }
}

TEST(Profiler, SymbolizationConservesCyclesAndPurposes)
{
    Engine eng;
    std::vector<RunRequest> grid =
        programGrid(baselineOptions(Checking::Full));
    for (RunRequest &req : grid)
        req.hooks.collectProfile = true;
    std::vector<RunReport> reports = eng.runGrid(grid);
    for (size_t i = 0; i < reports.size(); ++i) {
        ASSERT_TRUE(reports[i].ok());
        // Cache hit: the grid above already compiled this cell.
        auto c = eng.compile(grid[i].source, grid[i].opts);
        auto funcs = symbolize(c.unit->prog, *reports[i].result.profile);
        uint64_t cycles = 0, executed = 0, checking = 0;
        int lastEnd = 0;
        for (const FunctionProfile &f : funcs) {
            EXPECT_LT(f.begin, f.end) << f.name;
            EXPECT_GE(f.begin, lastEnd) << f.name; // address order
            lastEnd = f.end;
            uint64_t byPurpose = 0;
            for (int p = 0; p < numPurposes; ++p)
                byPurpose += f.byPurpose[p];
            EXPECT_EQ(byPurpose, f.cycles) << f.name;
            EXPECT_LE(f.checkingCycles, f.cycles) << f.name;
            cycles += f.cycles;
            executed += f.executed;
            checking += f.checkingCycles;
        }
        EXPECT_EQ(cycles, reports[i].result.stats.total)
            << reports[i].label;
        EXPECT_EQ(executed, reports[i].result.stats.instructions)
            << reports[i].label;
        // Full checking makes *someone* pay the tax on every program.
        EXPECT_GT(checking, 0u) << reports[i].label;
    }
}

TEST(Profiler, SymbolizeMapsKnownLabelToItsPcRange)
{
    Engine eng;
    RunRequest req =
        request("(de myfun (x) (+ x 1)) (print (myfun 41))",
                Checking::Full, "myfun");
    req.hooks.collectProfile = true;
    RunReport rep = eng.run(req);
    ASSERT_TRUE(rep.ok()) << rep.status.message;
    ASSERT_TRUE(rep.result.profile);

    auto c = eng.compile(req.source, req.opts);
    const Program &prog = c.unit->prog;
    int addr = prog.symbol("fn_myfun");
    ASSERT_GE(addr, 0);

    auto funcs = symbolize(prog, *rep.result.profile);
    const FunctionProfile *f = nullptr;
    for (const FunctionProfile &fp : funcs)
        if (fp.name == "fn_myfun")
            f = &fp;
    ASSERT_NE(f, nullptr) << "fn_myfun missing from symbolization";
    EXPECT_EQ(f->begin, addr);
    EXPECT_GT(f->executed, 0u);
    EXPECT_GT(f->cycles, 0u);
    // Every cycle the region was charged lives inside [begin, end).
    uint64_t inRange = 0;
    for (int pc = f->begin; pc < f->end; ++pc)
        inRange += rep.result.profile->cycles[pc];
    EXPECT_EQ(inRange, f->cycles);

    Json j = functionProfileJson(funcs);
    ASSERT_TRUE(j.isArray());
    EXPECT_EQ(j.size(), funcs.size());
    EXPECT_TRUE(Json::roundTrips(j));
    EXPECT_FALSE(renderCheckingTax(funcs, 4).empty());
}

TEST(Profiler, ProfileOnlyWhenRequestedAndNotPartOfCacheKey)
{
    Engine eng;
    RunRequest req = request("(print (add1 1))", Checking::Off, "p");
    RunReport plain = eng.run(req);
    ASSERT_TRUE(plain.ok());
    EXPECT_EQ(plain.result.profile, nullptr);

    // collectProfile is a run-time accessory: the compiled unit is
    // shared (cache hit), the profile still gets collected.
    req.hooks.collectProfile = true;
    RunReport profiled = eng.run(req);
    ASSERT_TRUE(profiled.ok());
    EXPECT_TRUE(profiled.cacheHit);
    ASSERT_TRUE(profiled.result.profile);
    EXPECT_EQ(profiled.result.profile->totalCycles(),
              profiled.result.stats.total);
}

// ---------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------

TEST(Metrics, HistogramBucketsByBitWidth)
{
    Histogram h;
    h.observe(0);    // bit width 0
    h.observe(1);    // bit width 1
    h.observe(2);    // bit width 2
    h.observe(3);    // bit width 2
    h.observe(1000); // bit width 10
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.sum(), 1006u);
    EXPECT_EQ(h.max(), 1000u);
    EXPECT_DOUBLE_EQ(h.mean(), 1006.0 / 5.0);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(2), 2u);
    EXPECT_EQ(h.bucket(10), 1u);
    EXPECT_EQ(h.bucket(3), 0u);
    EXPECT_TRUE(Json::roundTrips(h.toJson()));
}

TEST(Metrics, HandlesAreStableAndKindMismatchPanics)
{
    MetricsRegistry reg;
    Counter &a = reg.counter("x");
    Counter &b = reg.counter("x");
    EXPECT_EQ(&a, &b);
    EXPECT_THROW(reg.gauge("x"), MxlError);
    EXPECT_THROW(reg.histogram("x"), MxlError);

    Gauge &g = reg.gauge("depth");
    g.set(5);
    g.add(-2);
    EXPECT_EQ(g.value(), 3);
}

TEST(Metrics, SnapshotIsDeterministic)
{
    auto build = [] {
        auto reg = std::make_unique<MetricsRegistry>();
        reg->counter("b.count").inc(3);
        reg->counter("a.count").inc(7);
        reg->gauge("depth").set(-4);
        reg->histogram("lat").observe(17);
        return reg;
    };
    auto r1 = build(), r2 = build();
    Json s1 = r1->snapshot(), s2 = r2->snapshot();
    EXPECT_EQ(s1.dump(), s2.dump());
    EXPECT_TRUE(Json::roundTrips(s1));
    const Json *counters = s1.find("counters");
    ASSERT_NE(counters, nullptr);
    const Json *a = counters->find("a.count");
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a->asUint(), 7u);
}

TEST(Metrics, SnapshotJsonRoundTripsByteIdentically)
{
    // snapshotJson() is the health-endpoint export (serve/server.cc):
    // it must be exactly snapshot().dump() — parseable, and re-dumping
    // the parse reproduces the text byte for byte, so two scrapes of
    // an unchanged registry compare equal as strings.
    MetricsRegistry reg;
    reg.counter("serve.requests").inc(12);
    reg.counter("engine.runs").inc(5);
    reg.gauge("serve.queue.depth").set(3);
    reg.histogram("serve.cell_micros").observe(1024);

    std::string text = reg.snapshotJson();
    EXPECT_EQ(text, reg.snapshot().dump());

    Json parsed;
    ASSERT_TRUE(Json::parse(text, &parsed));
    EXPECT_EQ(parsed.dump(), text);
    EXPECT_EQ(parsed.find("counters")->find("serve.requests")->asUint(),
              12u);
    EXPECT_EQ(parsed.find("gauges")->find("serve.queue.depth")->asInt(),
              3);

    // Unchanged registry, second scrape: identical text.
    EXPECT_EQ(reg.snapshotJson(), text);
}

TEST(Metrics, ExactUnderConcurrentBumpsAndLookups)
{
    MetricsRegistry reg;
    Counter &c = reg.counter("shared.counter");
    Gauge &g = reg.gauge("shared.gauge");
    Histogram &h = reg.histogram("shared.hist");

    constexpr int kThreads = 8, kIters = 20'000;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t] {
            // Concurrent first-use registration of a fresh name...
            Counter &mine =
                reg.counter("worker." + std::to_string(t) + ".ops");
            for (int i = 0; i < kIters; ++i) {
                c.inc();
                g.add(1);
                h.observe(static_cast<uint64_t>(i));
                mine.inc();
                // ...and lock-taking lookups racing the hot path.
                if (i % 1000 == 0)
                    reg.counter("shared.counter").inc(0);
            }
            // Snapshots may race the writers (torn totals are fine;
            // data races are not — TSan enforces the distinction).
            Json snap = reg.snapshot();
            EXPECT_TRUE(snap.isObject());
        });
    }
    for (std::thread &w : workers)
        w.join();

    EXPECT_EQ(c.value(), uint64_t(kThreads) * kIters);
    EXPECT_EQ(g.value(), int64_t(kThreads) * kIters);
    EXPECT_EQ(h.count(), uint64_t(kThreads) * kIters);
    for (int t = 0; t < kThreads; ++t) {
        Counter &mine =
            reg.counter("worker." + std::to_string(t) + ".ops");
        EXPECT_EQ(mine.value(), uint64_t(kIters));
    }
}

TEST(Metrics, EngineInstrumentsGridRuns)
{
    Engine eng(4);
    std::vector<RunRequest> grid =
        programGrid(baselineOptions(Checking::Off));
    std::vector<RunReport> first = eng.runGrid(grid);
    for (const RunReport &rep : first)
        ASSERT_TRUE(rep.ok());

    MetricsRegistry &m = eng.metrics();
    const uint64_t cells = grid.size();
    EXPECT_EQ(m.counter("engine.runs").value(), cells);
    EXPECT_EQ(m.counter("engine.cache.misses").value(), cells);
    EXPECT_EQ(m.counter("engine.cache.hits").value(), 0u);
    EXPECT_EQ(m.histogram("engine.queue_wait_micros").count(), cells);
    EXPECT_EQ(m.histogram("engine.cell_micros").count(), cells);

    // Same grid again: all hits, runs double, and the registry view
    // agrees with the engine's own cache accounting.
    eng.runGrid(grid);
    EXPECT_EQ(m.counter("engine.runs").value(), 2 * cells);
    EXPECT_EQ(m.counter("engine.cache.hits").value(), cells);
    auto cs = eng.cacheStats();
    EXPECT_EQ(m.counter("engine.cache.hits").value(), cs.hits);
    EXPECT_EQ(m.counter("engine.cache.misses").value(), cs.misses);

    // Per-worker utilization counters registered by the pool.
    Json snap = m.snapshot();
    const Json *counters = snap.find("counters");
    ASSERT_NE(counters, nullptr);
    EXPECT_NE(counters->find("engine.worker.1.busy_micros"), nullptr);
    EXPECT_TRUE(Json::roundTrips(snap));
}

TEST(Metrics, HistogramPercentileIsNearestRankBucketUpperBound)
{
    Histogram h;
    EXPECT_EQ(h.percentile(0.50), 0u); // empty
    // 10 observations: nine of value 3 (bucket [2,3]) and one of 1000
    // (bucket [512,1023]).
    for (int i = 0; i < 9; ++i)
        h.observe(3);
    h.observe(1000);
    // Ranks 1..9 land in the [2,3] bucket: upper bound 3.
    EXPECT_EQ(h.percentile(0.50), 3u);
    EXPECT_EQ(h.percentile(0.90), 3u);
    // Rank 10 lands in the tail bucket, whose upper bound 1023 is
    // clamped to the exact observed max.
    EXPECT_EQ(h.percentile(0.95), 1000u);
    EXPECT_EQ(h.percentile(0.99), 1000u);
    EXPECT_EQ(h.percentile(1.0), 1000u);
    // Out-of-range p clamps rather than misbehaving.
    EXPECT_EQ(h.percentile(-1.0), 3u);
    EXPECT_EQ(h.percentile(2.0), 1000u);

    // Zero-only histogram: bucket 0's upper bound is 0.
    Histogram z;
    z.observe(0);
    EXPECT_EQ(z.percentile(0.99), 0u);
}

TEST(Metrics, SnapshotExportsPercentilesAndStillRoundTrips)
{
    MetricsRegistry reg;
    Histogram &h = reg.histogram("serve.e2e_micros");
    for (uint64_t v : {10u, 20u, 30u, 4000u})
        h.observe(v);
    Json snap = reg.snapshot();
    const Json *hj = snap.find("histograms")->find("serve.e2e_micros");
    ASSERT_NE(hj, nullptr);
    for (const char *key : {"p50", "p95", "p99"})
        ASSERT_NE(hj->find(key), nullptr) << key;
    EXPECT_EQ(hj->find("p50")->asUint(), h.percentile(0.50));
    EXPECT_EQ(hj->find("p99")->asUint(), h.percentile(0.99));
    // Percentiles are uint64 bucket bounds — the byte-identical
    // round-trip guarantee of the health export is preserved.
    EXPECT_TRUE(Json::roundTrips(snap));
}

TEST(Metrics, DeltaJsonCapturesOnlyGrowthAndAdvancesBaseline)
{
    MetricsRegistry reg;
    reg.counter("engine.runs").inc(3);
    reg.gauge("depth").set(7);
    reg.histogram("lat").observe(100);

    // First delta against an empty baseline: everything appears.
    Json baseline;
    Json d1 = reg.deltaJson(&baseline);
    EXPECT_EQ(d1.find("counters")->find("engine.runs")->asUint(), 3u);
    EXPECT_EQ(d1.find("gauges")->find("depth")->asInt(), 7);
    EXPECT_EQ(
        d1.find("histograms")->find("lat")->find("count")->asUint(),
        1u);

    // Nothing changed: the next delta is empty in every section.
    Json d2 = reg.deltaJson(&baseline);
    EXPECT_EQ(d2.find("counters")->size(), 0u);
    EXPECT_EQ(d2.find("gauges")->size(), 0u);
    EXPECT_EQ(d2.find("histograms")->size(), 0u);

    // Partial change: only the moved metric appears, with the
    // increment (not the absolute) for counters and histograms.
    reg.counter("engine.runs").inc(2);
    reg.histogram("lat").observe(50);
    Json d3 = reg.deltaJson(&baseline);
    EXPECT_EQ(d3.find("counters")->find("engine.runs")->asUint(), 2u);
    EXPECT_EQ(d3.find("gauges")->size(), 0u);
    const Json *lat = d3.find("histograms")->find("lat");
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(lat->find("count")->asUint(), 1u);
    EXPECT_EQ(lat->find("sum")->asUint(), 50u);

    // Merging an empty delta is the identity.
    MetricsRegistry other;
    other.merge(d1);
    std::string before = other.snapshotJson();
    other.merge(d2);
    EXPECT_EQ(other.snapshotJson(), before);
}

TEST(Metrics, MergeIsOrderIndependentAcrossWorkerDeltas)
{
    // Two "workers" produce deltas; the parent may receive them in
    // any order. Counter and histogram merges are additive (max is a
    // join), so the final snapshots must be byte-identical.
    auto workerDelta = [](uint64_t runs, uint64_t lat) {
        MetricsRegistry w;
        w.counter("engine.runs").inc(runs);
        w.histogram("serve.exec_micros").observe(lat);
        Json baseline;
        return w.deltaJson(&baseline);
    };
    Json d1 = workerDelta(3, 100);
    Json d2 = workerDelta(5, 9000);

    MetricsRegistry a, b;
    a.merge(d1);
    a.merge(d2);
    b.merge(d2);
    b.merge(d1);
    EXPECT_EQ(a.snapshotJson(), b.snapshotJson());
    EXPECT_EQ(a.counter("engine.runs").value(), 8u);
    EXPECT_EQ(a.histogram("serve.exec_micros").count(), 2u);
    EXPECT_EQ(a.histogram("serve.exec_micros").max(), 9000u);

    // Merging both deltas at once (a relay that batched them) equals
    // merging them one by one — the delta composition the wire relies
    // on when a worker's aux rides multiple results.
    MetricsRegistry src, c;
    src.merge(d1);
    src.merge(d2);
    Json baseline;
    c.merge(src.deltaJson(&baseline));
    EXPECT_EQ(c.snapshotJson(), a.snapshotJson());
}

// ---------------------------------------------------------------------
// Chrome trace export
// ---------------------------------------------------------------------

TEST(Trace, MultiThreadedRecordingSortsAndParsesBack)
{
    TraceRecorder tr;
    constexpr int kThreads = 4, kEvents = 50;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t] {
            for (int i = 0; i < kEvents; ++i) {
                uint64_t t0 = tr.nowMicros();
                tr.complete("span", "test", t, t0, 1, "cell");
                tr.instant("mark", "test", t);
            }
        });
    }
    for (std::thread &w : workers)
        w.join();
    ASSERT_EQ(tr.size(), size_t(kThreads) * kEvents * 2);

    Json j = tr.toJson();
    ASSERT_TRUE(j.isArray());
    ASSERT_EQ(j.size(), tr.size());
    uint64_t lastTs = 0;
    for (size_t i = 0; i < j.size(); ++i) {
        const Json &e = j.at(i);
        ASSERT_TRUE(e.isObject());
        for (const char *key : {"name", "ph", "ts", "pid", "tid"})
            EXPECT_NE(e.find(key), nullptr) << key;
        uint64_t ts = e.find("ts")->asUint();
        EXPECT_GE(ts, lastTs); // sorted at serialization
        lastTs = ts;
        const std::string &ph = e.find("ph")->str();
        EXPECT_TRUE(ph == "X" || ph == "i") << ph;
    }

    // The export both reparses with our parser and round-trips.
    Json parsed;
    ASSERT_TRUE(Json::parse(j.dump(1), &parsed));
    EXPECT_EQ(parsed.size(), j.size());
    EXPECT_TRUE(Json::roundTrips(j));
}

TEST(Trace, EngineEmitsCompileAndRunSpans)
{
    Engine eng(2);
    TraceRecorder tr;
    eng.setTrace(&tr);

    std::vector<RunRequest> grid;
    for (int i = 0; i < 4; ++i)
        grid.push_back(request("(print " + std::to_string(i) + ")",
                               Checking::Off,
                               "cell" + std::to_string(i)));
    eng.runGrid(grid);

    auto countByName = [&](const std::string &name) {
        Json j = tr.toJson();
        size_t n = 0;
        for (size_t i = 0; i < j.size(); ++i)
            if (j.at(i).find("name")->str() == name)
                ++n;
        return n;
    };
    EXPECT_EQ(countByName("compile"), 4u); // one per cache miss
    EXPECT_EQ(countByName("run"), 4u);     // one per executed cell

    // Warm cache: no new compile spans, four more run spans.
    eng.runGrid(grid);
    EXPECT_EQ(countByName("compile"), 4u);
    EXPECT_EQ(countByName("run"), 8u);

    // Detached recorder sees nothing further.
    eng.setTrace(nullptr);
    size_t frozen = tr.size();
    eng.runGrid(grid);
    EXPECT_EQ(tr.size(), frozen);
}

TEST(Trace, DrainImportRoundTripsLaneTidAndTraceId)
{
    // The fork-boundary relay: a worker-side recorder drains its
    // events to JSON, the parent imports them verbatim.
    TraceRecorder worker;
    worker.setLane(5);
    uint64_t t0 = worker.nowMicros();
    worker.complete("cell", "serve/worker", 0, t0, 42, "labelA",
                    "t123");
    worker.complete("compile", "engine", 2, t0, 7, "labelB");
    Json drained = worker.drainJson("tFill");
    EXPECT_EQ(worker.size(), 0u); // drain removes
    ASSERT_EQ(drained.size(), 2u);

    TraceRecorder parent; // stays on lane 1; imports keep lane 5
    parent.complete("request", "serve/request", 0, 0, 100, "req",
                    "t123");
    parent.importJson(drained);
    Json j = parent.toJson();

    size_t lane5 = 0, filled = 0, kept = 0;
    for (size_t i = 0; i < j.size(); ++i) {
        const Json &e = j.at(i);
        if (e.find("cat") &&
            e.find("cat")->str() == "__metadata")
            continue;
        if (e.find("pid")->asInt() == 5) {
            ++lane5;
            const Json *args = e.find("args");
            const Json *tid = args ? args->find("traceId") : nullptr;
            ASSERT_NE(tid, nullptr);
            // The span recorded with a trace id keeps it; the one
            // without got the drain-time fill (workers run one cell
            // at a time, so everything drained belongs to it).
            if (tid->str() == "t123")
                ++kept;
            else if (tid->str() == "tFill")
                ++filled;
        }
    }
    EXPECT_EQ(lane5, 2u);
    EXPECT_EQ(kept, 1u);
    EXPECT_EQ(filled, 1u);
    EXPECT_TRUE(Json::roundTrips(j));
}

TEST(Trace, LaneNamespacingKeepsWorkerTracksDistinct)
{
    // Two workers record on engine tid 0 in their own processes; the
    // serve layer gives each a distinct lane (2 + slot), so after the
    // merge the (pid, tid) pairs — Perfetto tracks — stay distinct.
    TraceRecorder w0, w1, parent;
    w0.alignEpoch(parent);
    w1.alignEpoch(parent);
    w0.setLane(2);
    w1.setLane(3);
    w0.complete("cell", "serve/worker", 0, 10, 5, "a", "tA");
    w1.complete("cell", "serve/worker", 0, 12, 5, "b", "tB");
    parent.nameLane(1, "mxl-served");
    parent.nameLane(2, "worker 0");
    parent.nameLane(3, "worker 1");
    parent.importJson(w0.drainJson());
    parent.importJson(w1.drainJson());

    Json j = parent.toJson();
    std::vector<std::pair<int64_t, int64_t>> tracks;
    size_t nameRecords = 0;
    for (size_t i = 0; i < j.size(); ++i) {
        const Json &e = j.at(i);
        if (e.find("cat") &&
            e.find("cat")->str() == "__metadata") {
            EXPECT_EQ(e.find("name")->str(), "process_name");
            ++nameRecords;
            continue;
        }
        tracks.emplace_back(e.find("pid")->asInt(),
                            e.find("tid")->asInt());
    }
    EXPECT_EQ(nameRecords, 3u);
    ASSERT_EQ(tracks.size(), 2u);
    EXPECT_NE(tracks[0], tracks[1]); // same tid, different lanes
}

// ---------------------------------------------------------------------
// Structured event log
// ---------------------------------------------------------------------

TEST(EventLog, SchemaRoundTripsAndLevelsFilter)
{
    std::string path = "/tmp/mxl_test_events_" +
                       std::to_string(::getpid()) + ".jsonl";
    ::unlink(path.c_str());
    {
        EventLog log;
        EXPECT_FALSE(log.enabled()); // no sink: events are dropped
        log.event(EventLog::Level::Error, "dropped");

        std::string err;
        ASSERT_TRUE(log.openFile(path, &err)) << err;
        EXPECT_TRUE(log.enabled());
        log.setMinLevel(EventLog::Level::Info);

        Json f = Json::object();
        f.set("requestId", "r1");
        f.set("traceId", "t42");
        f.set("cells", static_cast<uint64_t>(3));
        log.event(EventLog::Level::Info, "request.done", f);
        log.event(EventLog::Level::Debug, "noise"); // below min level
        log.event(EventLog::Level::Error, "worker.death", f);
        EXPECT_EQ(log.emitted(), 2u);
    }

    std::ifstream in(path);
    std::string line;
    std::vector<Json> lines;
    while (std::getline(in, line)) {
        Json e;
        ASSERT_TRUE(Json::parse(line, &e)) << line;
        EXPECT_TRUE(Json::roundTrips(e));
        lines.push_back(std::move(e));
    }
    ASSERT_EQ(lines.size(), 2u);
    // Fixed envelope first (ts, level, event), request-scoped fields
    // after, in the order the caller set them.
    EXPECT_EQ(lines[0].entry(0).first, "ts");
    EXPECT_GT(lines[0].find("ts")->asUint(), 0u);
    EXPECT_EQ(lines[0].find("level")->str(), "info");
    EXPECT_EQ(lines[0].find("event")->str(), "request.done");
    EXPECT_EQ(lines[0].find("requestId")->str(), "r1");
    EXPECT_EQ(lines[0].find("traceId")->str(), "t42");
    EXPECT_EQ(lines[0].find("cells")->asUint(), 3u);
    EXPECT_EQ(lines[1].find("level")->str(), "error");
    EXPECT_EQ(lines[1].find("event")->str(), "worker.death");
    ::unlink(path.c_str());
}

// ---------------------------------------------------------------------
// Bench comparison (tools/bench_diff's engine)
// ---------------------------------------------------------------------

TEST(BenchCompare, SelfComparisonIsZeroRegression)
{
    Engine eng;
    std::vector<RunRequest> grid = {
        request("(print (add1 1))", Checking::Off, "a"),
        request("(print (add1 2))", Checking::Full, "b"),
    };
    std::vector<RunReport> reports = eng.runGrid(grid);
    Json doc = gridJson(grid, reports);

    std::vector<BenchDelta> cells;
    ASSERT_TRUE(extractBenchCells(doc, &cells));
    EXPECT_EQ(cells.size(), 2u);

    BenchComparison cmp = compareBenchJson(doc, doc);
    ASSERT_EQ(cmp.deltas.size(), 2u);
    for (const BenchDelta &d : cmp.deltas) {
        EXPECT_EQ(d.before, d.after);
        EXPECT_EQ(d.pct(), 0.0);
    }
    EXPECT_TRUE(cmp.onlyBefore.empty());
    EXPECT_TRUE(cmp.onlyAfter.empty());
    EXPECT_TRUE(cmp.regressions(0.0).empty());

    bool failed = true;
    std::string rendered = renderComparison(cmp, 0.0, &failed);
    EXPECT_FALSE(failed);
    EXPECT_FALSE(rendered.empty());
}

TEST(BenchCompare, DetectsRegressionsMissingAndNewLabels)
{
    Json before = Json::array();
    before.push(benchCell("a", 100));
    before.push(benchCell("b", 200));
    before.push(benchCell("gone", 5));
    before.push(benchCell("bad", 1, /*ok=*/false)); // skipped

    // The wrapped-object shape the bench harnesses write.
    Json afterGrid = Json::array();
    afterGrid.push(benchCell("a", 110));
    afterGrid.push(benchCell("b", 190));
    afterGrid.push(benchCell("new", 7));
    Json after = Json::object();
    after.set("bench", "synthetic");
    after.set("grid", std::move(afterGrid));

    BenchComparison cmp = compareBenchJson(before, after);
    ASSERT_EQ(cmp.deltas.size(), 2u);
    EXPECT_DOUBLE_EQ(cmp.deltas[0].pct(), 10.0);  // a: 100 -> 110
    EXPECT_DOUBLE_EQ(cmp.deltas[1].pct(), -5.0);  // b: 200 -> 190
    // "bad" carries no cycle count and drops out entirely; only the
    // genuinely removed label is reported missing.
    EXPECT_EQ(cmp.onlyBefore, std::vector<std::string>{"gone"});
    EXPECT_EQ(cmp.onlyAfter, std::vector<std::string>{"new"});

    auto bad = cmp.regressions(5.0);
    ASSERT_EQ(bad.size(), 1u);
    EXPECT_EQ(bad[0].label, "a");
    EXPECT_TRUE(cmp.regressions(15.0).empty());

    bool failed = false;
    renderComparison(cmp, 5.0, &failed);
    EXPECT_TRUE(failed);
}

TEST(BenchCompare, PctEdgeCases)
{
    BenchDelta d;
    d.before = 0;
    d.after = 0;
    EXPECT_EQ(d.pct(), 0.0);
    d.after = 50;
    EXPECT_EQ(d.pct(), 100.0);
    std::vector<BenchDelta> cells;
    EXPECT_FALSE(extractBenchCells(Json("not a grid"), &cells));
}

} // namespace mxl
