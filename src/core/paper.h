/**
 * @file
 * The paper's published numbers (Tables 1-3, Figures 1-2, §4.2 and
 * §6.2.2), kept here so benchmark harnesses can print paper-vs-measured
 * side by side and tests can assert that the reproduced *shape* holds.
 */

#ifndef MXLISP_CORE_PAPER_H_
#define MXLISP_CORE_PAPER_H_

#include <string>
#include <vector>

namespace mxl {
namespace paper {

/** Table 1: % increase in execution time with full run-time checking. */
struct Table1Entry
{
    const char *program;
    double arith;
    double vector;
    double list;
    double total;
};

const std::vector<Table1Entry> &table1();

inline constexpr double table1Average = 24.59;

/** Figure 1 (approximate bar heights, % of execution time). */
struct Figure1Entry
{
    const char *op;
    double withoutRtc;
    double withRtc;
};

const std::vector<Figure1Entry> &figure1();

/** §3.5: total tag-handling cost band and standard deviations. */
inline constexpr double totalCostWithoutRtc = 22.0;
inline constexpr double totalCostWithRtc = 32.0;
inline constexpr double stddevWithoutRtc = 5.6;
inline constexpr double stddevWithRtc = 7.5;

/** Figure 2 (approximate): reduction in frequencies, % of cycles. */
struct Figure2Entry
{
    const char *category;
    double reduction; ///< negative = increase
};

const std::vector<Figure2Entry> &figure2();

inline constexpr double figure2TotalSpeedup = 5.7;

/** Table 2: speedups (%) for the hardware ladder. */
struct Table2Entry
{
    const char *id;
    const char *label;
    double noChecking;
    double withChecking;
};

const std::vector<Table2Entry> &table2();

/** Table 3: program statistics. */
struct Table3Entry
{
    const char *program;
    int procedures;
    int sourceLines;
    int objectWords;
};

const std::vector<Table3Entry> &table3();

/** §4.2 and §6.2.2 generic-arithmetic numbers. */
inline constexpr double genericArithCostBiased = 2.0;   ///< % of time
inline constexpr double genericArithCostSumCheck = 1.6;
inline constexpr double genericArithCostHw = 1.3;
inline constexpr double forcedDispatchOverhead = 2.7;
inline constexpr int genericAddCyclesBiased = 10;
inline constexpr int genericAddCyclesSumCheck = 4;
inline constexpr double ratGenericArithCost = 8.0;

} // namespace paper
} // namespace mxl

#endif // MXLISP_CORE_PAPER_H_
