#include "runtime/syslisp.h"

namespace mxl {

/*
 * Runtime cell indices (keep in sync with runtime/layout.h):
 *   0 FromLo   1 FromHi   2 ToLo   3 ToHi
 *   4 StackTop 5 RootBase 6 RootCount
 *   7 GcCount  8 HeapUsed
 *
 * sys-Lisp conventions: integer literals inside sys-* forms are raw
 * machine words; addresses are raw byte addresses, which are valid
 * fixnum representations (word alignment), so the collector's own
 * globals and stack slots are GC-inert.
 */

const std::string &
gcSource()
{
    static const std::string src = R"lisp(
;;; Two-space copying collector (Cheney scan).
;;;
;;; Invariants relied on:
;;;  - every word in [sp-at-entry, StackTop) is a tagged value
;;;    (return addresses are fixnum-coded code byte-addresses);
;;;  - registers are dead at allocation points except the arguments the
;;;    allocator stubs save on the stack before calling gc-reclaim;
;;;  - static data never points into the heap except through the root
;;;    cells listed in the root list (symbol value/plist cells);
;;;  - object headers can never masquerade as from-space pointers
;;;    (lengths are capped so len*8 < heap base, and the GC's own
;;;    frames lie below the scanned stack range).

(de gc-reclaim ()
  (let ((mutsp (sys-reg 29)))
    (setq *gc-fromlo* (sys-cellref 0))
    (setq *gc-fromhi* (sys-cellref 1))
    (setq *gc-tolo* (sys-cellref 2))
    (setq *gc-tohi* (sys-cellref 3))
    (setq *gc-free* *gc-tolo*)
    ;; Roots: the registered static cells (symbol values and plists).
    (let ((rb (sys-cellref 5)))
      (gc-scan-roots rb (sys+ rb (sys-sll (sys-cellref 6) 2))))
    ;; Roots: the mutator stack (everything above our entry sp).
    (gc-scan-range mutsp (sys-cellref 4))
    ;; Cheney scan of the copied objects. The free pointer advances as
    ;; the scan evacuates children, so re-read it every iteration.
    (let ((scan *gc-tolo*))
      (while (sys< scan *gc-free*)
        (sys-store scan 0 (gc-evacuate (sys-load scan 0)))
        (setq scan (sys+ scan 4))))
    ;; Flip the semispaces.
    (sys-cellset 0 *gc-tolo*)
    (sys-cellset 1 *gc-tohi*)
    (sys-cellset 2 *gc-fromlo*)
    (sys-cellset 3 *gc-fromhi*)
    (sys-setreg 28 *gc-free*)
    (sys-setreg 27 (sys-cellref 1))
    (sys-cellset 7 (sys+ (sys-cellref 7) 1))
    (sys-cellset 8 (sys- *gc-free* *gc-tolo*))
    (if (sys< (sys- (sys-cellref 1) *gc-free*) 64)
        (error 42)                      ; heap exhausted
        nil)))

;; Scan a range of words in place, evacuating what they reference.
(de gc-scan-range (lo hi)
  (while (sys< lo hi)
    (sys-store lo 0 (gc-evacuate (sys-load lo 0)))
    (setq lo (sys+ lo 4))))

;; The root list holds ADDRESSES of root cells; scan indirectly.
(de gc-scan-roots (p end)
  (while (sys< p end)
    (let ((cp (sys-load p 0)))
      (sys-store cp 0 (gc-evacuate (sys-load cp 0))))
    (setq p (sys+ p 4))))

;; Evacuate one word: fixnums and non-heap references pass through;
;; from-space objects are copied (once — a forwarding pointer replaces
;; the first word, recognizable because it points into to-space, which
;; nothing else can).
(de gc-evacuate (w)
  (cond
    ((fixp w) w)
    (t (let ((a (sys-detag w)))
         (cond
           ((sys< a *gc-fromlo*) w)      ; static data, symbols, chars
           ((sys< a *gc-fromhi*)
            (let ((first (sys-load a 0)))
              (cond
                ((and (not (fixp first))
                      (sys<= *gc-tolo* (sys-detag first))
                      (sys< (sys-detag first) *gc-tohi*))
                 first)                  ; already forwarded
                (t (gc-copy w a)))))
           (t w))))))                    ; beyond the heap (code, stack)

(de gc-copy (w a)
  (let ((size (gc-objsize w a))
        (new *gc-free*))
    (gc-copy-words a new size)
    (setq *gc-free* (sys+ new size))
    (let ((fw (sys+ new (sys- w a))))    ; re-apply the original tag bits
      (sys-store a 0 fw)
      fw)))

;; Object size in bytes, rounded to the 8-byte allocation grain.
;; Pairs are two words; everything else carries a header whose upper
;; bits hold the length in words (excluding the header).
(de gc-objsize (w a)
  (cond ((pairp w) (sys-word 8))
        (t (sys-and (sys+ (sys-sll (sys-srl (sys-load a 0) 3) 2) 11)
                    -8))))

(de gc-copy-words (src dst bytes)
  (let ((i 0))
    (while (sys< i bytes)
      (sys-store (sys+ dst i) 0 (sys-load (sys+ src i) 0))
      (setq i (sys+ i 4)))))
)lisp";
    return src;
}

const std::string &
genericArithSource()
{
    static const std::string src = R"lisp(
;;; Generic arithmetic: the out-of-line continuation of the inline
;;; integer-biased sequence (§2.2). Reached when an operand is not a
;;; fixnum, when a fixnum add/sub overflows, or on every operation in
;;; the ForceDispatch experiment (§6.2.2).
;;;
;;; Bignums are ordinary lists: (*bignum* sign d0 d1 ...) with digits
;;; in base 1000, little-endian, no leading zero digit. Base 1000 keeps
;;; every intermediate product below the smallest fixnum range, so the
;;; bignum code itself never re-enters the slow path.

;; Overflow-safe fixnum add/sub using raw machine ops: high-tag schemes
;; reveal overflow as a non-integer result (the §2.1 trick); low-tag
;; schemes wrap, caught by the sign rule. Returns nil on overflow.
(de fix-add-safe (x y)
  (let ((r (sys+ x y)))
    (cond ((not (fixp r)) nil)
          ((sys< (sys-and (sys-xor x r) (sys-xor y r)) 0) nil)
          (t r))))

(de fix-sub-safe (x y)
  (let ((r (sys- x y)))
    (cond ((not (fixp r)) nil)
          ((sys< (sys-and (sys-xor x y) (sys-xor x r)) 0) nil)
          (t r))))

(de bigp (x) (and (pairp x) (eq (car x) '*bignum*)))
(de numberp (x) (or (fixp x) (bigp x)))

(de generic-add (x y)
  (cond ((and (fixp x) (fixp y))
         (let ((r (fix-add-safe x y)))
           (if r r (big-result (big-add (big-of x) (big-of y))))))
        ((and (numberp x) (numberp y))
         (big-result (big-add (big-of x) (big-of y))))
        (t (error 40))))

(de generic-sub (x y)
  (cond ((and (fixp x) (fixp y))
         (let ((r (fix-sub-safe x y)))
           (if r r (big-result (big-add (big-of x) (big-neg (big-of y)))))))
        ((and (numberp x) (numberp y))
         (big-result (big-add (big-of x) (big-neg (big-of y)))))
        (t (error 40))))

(de generic-mul (x y)
  (cond ((and (numberp x) (numberp y))
         (big-result (big-mul (big-of x) (big-of y))))
        (t (error 40))))

(de generic-div (x y)
  (cond ((and (fixp x) (fixp y)) (quotient x y))
        (t (error 43))))                ; bignum division unsupported

(de generic-rem (x y)
  (cond ((and (fixp x) (fixp y)) (remainder x y))
        (t (error 43))))

(de generic-less (x y)
  (cond ((and (fixp x) (fixp y)) (lessp x y))
        ((and (numberp x) (numberp y))
         (big-lessp (big-of x) (big-of y)))
        (t (error 40))))

(de generic-eqn (x y)
  (cond ((and (fixp x) (fixp y)) (eqn x y))
        ((and (numberp x) (numberp y))
         (big-eqnp (big-of x) (big-of y)))
        (t (error 40))))

;;; Working representation: (sign . digits), sign 1 or -1, digits
;;; little-endian base 1000, no trailing zeros (zero => empty digits).

(de big-of (x)
  (cond ((bigp x) (cons (cadr x) (cddr x)))
        ((fixp x)
         (cond ((lessp x 0) (cons -1 (big-digits-of (minus x))))
               (t (cons 1 (big-digits-of x)))))
        (t (error 40))))

(de big-digits-of (m)
  (if (zerop m)
      nil
      (cons (remainder m 1000) (big-digits-of (quotient m 1000)))))

(de big-neg (a) (cons (minus (car a)) (cdr a)))

(de big-result (a)
  (let ((digs (cdr a)))
    (cond ((null digs) 0)
          ((null (cdr digs))
           (if (lessp (car a) 0) (minus (car digs)) (car digs)))
          ((null (cddr digs))
           (let ((v (+ (* (cadr digs) 1000) (car digs))))
             (if (lessp (car a) 0) (minus v) v)))
          ;; Three digits fit every scheme's fixnum range only while
          ;; the value stays below 2^25 (the high6 bound): d2 <= 32.
          ((and (null (cdddr digs)) (lessp (caddr digs) 33))
           (let ((v (+ (* (caddr digs) 1000000)
                       (+ (* (cadr digs) 1000) (car digs)))))
             (if (lessp (car a) 0) (minus v) v)))
          (t (cons '*bignum* a)))))

(de big-add (a b)
  (cond ((eqn (car a) (car b))
         (cons (car a) (big-addmag (cdr a) (cdr b) 0)))
        (t (let ((c (big-cmpmag (cdr a) (cdr b))))
             (cond ((zerop c) (cons 1 nil))
                   ((greaterp c 0)
                    (cons (car a) (big-submag (cdr a) (cdr b) 0)))
                   (t (cons (car b) (big-submag (cdr b) (cdr a) 0))))))))

(de big-addmag (da db carry)
  (cond ((and (null da) (null db))
         (if (zerop carry) nil (cons carry nil)))
        (t (let ((s (+ (+ (if (pairp da) (car da) 0)
                          (if (pairp db) (car db) 0))
                       carry)))
             (cons (remainder s 1000)
                   (big-addmag (if (pairp da) (cdr da) nil)
                               (if (pairp db) (cdr db) nil)
                               (quotient s 1000)))))))

;; da >= db in magnitude.
(de big-submag (da db borrow)
  (cond ((null da) nil)
        (t (let ((d (- (- (car da) (if (pairp db) (car db) 0)) borrow)))
             (big-trim
              (cons (if (lessp d 0) (+ d 1000) d)
                    (big-submag (cdr da)
                                (if (pairp db) (cdr db) nil)
                                (if (lessp d 0) 1 0))))))))

(de big-trim (digs)
  (if (and (pairp digs) (null (cdr digs)) (zerop (car digs)))
      nil
      digs))

;; Compare magnitudes: 1, 0, -1.
(de big-cmpmag (da db)
  (let ((la (length da)) (lb (length db)))
    (cond ((greaterp la lb) 1)
          ((lessp la lb) -1)
          (t (big-cmpmag-rev (reverse da) (reverse db))))))

(de big-cmpmag-rev (ra rb)
  (cond ((null ra) 0)
        ((greaterp (car ra) (car rb)) 1)
        ((lessp (car ra) (car rb)) -1)
        (t (big-cmpmag-rev (cdr ra) (cdr rb)))))

(de big-mul (a b)
  (cons (* (car a) (car b)) (big-mulmag (cdr a) (cdr b))))

(de big-mulmag (da db)
  (cond ((null da) nil)
        (t (big-addmag (big-mulone (car da) db)
                       (cons 0 (big-mulmag (cdr da) db))
                       0))))

(de big-mulone (d db)
  (big-mulone-carry d db 0))

(de big-mulone-carry (d db carry)
  (cond ((null db) (if (zerop carry) nil (cons carry nil)))
        (t (let ((p (+ (* d (car db)) carry)))
             (cons (remainder p 1000)
                   (big-mulone-carry d (cdr db) (quotient p 1000)))))))

(de big-lessp (a b)
  (cond ((lessp (car a) (car b)) t)
        ((greaterp (car a) (car b)) nil)
        ((greaterp (car a) 0) (lessp (big-cmpmag (cdr a) (cdr b)) 0))
        (t (greaterp (big-cmpmag (cdr a) (cdr b)) 0))))

(de big-eqnp (a b)
  (and (eqn (car a) (car b)) (zerop (big-cmpmag (cdr a) (cdr b)))))
)lisp";
    return src;
}

} // namespace mxl
