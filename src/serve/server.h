/**
 * @file
 * mxl-served's core: a single-threaded measurement server with
 * crash-isolated execution, admission control, deadline propagation,
 * and graceful degradation.
 *
 * Architecture — one poll() event loop multiplexing:
 *
 *   listeners ──accept──> connections ──frames──> admission queue
 *        (unix socket, optional 127.0.0.1 TCP)        (bounded)
 *                                                        │ dispatch
 *   worker pool (serve/pool.h: forked, watchdogged) <────┘
 *        │ result / death-evidence frames
 *        └──> per-cell "cell" responses streamed back, then one
 *             terminal "done" — or "overloaded"/"error" at admission.
 *
 * Invariants the tests and bench_serve hold the server to:
 *
 *  - EXACTLY ONE terminal response per request ("done", "overloaded",
 *    or "error"), no matter how many workers die, hang, or how the
 *    server is stopped. Cell results may be lost only by the client's
 *    own disconnect; they are never silently dropped server-side.
 *  - A client deadline ("deadlineMs", request- or cell-level)
 *    propagates into ExecPolicy::deadlineSeconds inside the worker
 *    (the simulator's own chunked wall-clock check) AND arms the
 *    parent-side watchdog at deadline + grace — defense in depth: the
 *    first catches slow simulations, the second catches wedged
 *    workers that can no longer check anything.
 *  - Admission is all-or-nothing per request against a bounded queue;
 *    over-cap requests shed immediately with a backlog-proportional
 *    retry-after hint (serve/admission.h).
 *  - When forking is exhausted the pool's circuit breaker opens and
 *    cells execute in-process on the loop thread: results stay
 *    correct, crash/hang isolation is the documented casualty
 *    (chaos cells are refused rather than honored in this mode).
 *  - requestStop() (or SIGTERM via installSignalHandlers()) starts a
 *    graceful drain: listeners close, new requests get a terminal
 *    "error", queued+running cells finish within drainMs, stragglers
 *    are killed and reported as per-cell timeouts, every open request
 *    still gets its "done", buffers flush, then serve() returns.
 *
 * The loop owns all state; no locks except the tiny mirror that lets
 * other threads read workerPids() and call requestStop() (self-pipe).
 */

#ifndef MXLISP_SERVE_SERVER_H_
#define MXLISP_SERVE_SERVER_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/engine.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "serve/admission.h"
#include "serve/pool.h"
#include "serve/wire.h"

namespace mxl {

struct ServerOptions
{
    /** Unix-domain socket path (always served; required). */
    std::string unixPath;

    /** Optional loopback TCP listener; 0 = off, -1 = ephemeral port
     *  (see Server::boundTcpPort). */
    int tcpPort = 0;

    /** Forked worker complement. */
    int workers = 2;

    /** Admission queue capacity in cells. */
    size_t queueCapacity = 256;

    /** Watchdog for cells that arrive with no deadline at all. */
    double maxCellSeconds = 300;

    /** Graceful-drain bound: queued + in-flight work gets this long
     *  after requestStop() before stragglers become timeouts. */
    int drainMs = 10000;

    /** Honor "__chaos:*" cell labels inside workers (bench/test only:
     *  hang, crash, exit). Refused when degraded. */
    bool enableChaosCells = false;

    /** Test seam: pool forking fails -> circuit breaker -> in-process
     *  execution from the start. */
    bool disableFork = false;

    /** Precompile all built-in benchmark programs before forking so
     *  workers inherit a warm compiled-unit cache copy-on-write. */
    bool warmCache = false;

    /** Threads for the in-process engine (workers use run(), so this
     *  only affects degraded-mode throughput). */
    unsigned engineThreads = 1;

    /** Pool knobs, forwarded. */
    int backoffBaseMs = 50;
    int backoffCapMs = 2000;
    int maxSpawnFailures = 3;
    int watchdogGraceMs = 2000;

    int listenBacklog = 64;

    /**
     * Nonempty: record a service trace — parent request/exec spans
     * plus the compile/run spans each forked worker records and
     * relays home — and write the merged Perfetto JSON here when the
     * drain finishes (mxl-served --trace).
     */
    std::string tracePath;

    /** Nonempty: append structured JSONL events here (obs/log.h;
     *  mxl-served --log). */
    std::string eventLogPath;

    /** Requests slower end-to-end than this log a "request.slow"
     *  event (warn). <= 0 disables the check. */
    int slowRequestMs = 1000;
};

class Server
{
  public:
    explicit Server(ServerOptions options);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind listeners and fork the worker pool. False with @p err on
     *  bind/listen failure. */
    bool start(std::string *err);

    /** Run the event loop; returns after a requested stop completes
     *  its drain. */
    void serve();

    /** Thread- and signal-safe stop request (self-pipe write). */
    void requestStop();

    /** Route SIGTERM/SIGINT to requestStop() for this server. */
    void installSignalHandlers();

    /** Ephemeral TCP port actually bound (after start). */
    int boundTcpPort() const { return boundTcpPort_; }

    /** Live worker pids, readable from any thread (bench chaos). */
    std::vector<int> workerPids() const;

    /** The in-process engine (metrics registry, warm cache). */
    Engine &engine() { return engine_; }

  private:
    struct Conn
    {
        int fd = -1;
        FrameReader in;
        std::string out; ///< pending bytes (POLLOUT while nonempty)
    };

    struct Request
    {
        uint64_t key = 0;
        int connFd = -1; ///< -1 once the client disconnects
        std::string id;  ///< client-chosen, echoed in every response
        std::string traceId; ///< client-stamped (or server-minted)
        size_t cells = 0;
        size_t completed = 0;
        size_t failed = 0;
        bool hasDeadline = false;
        std::chrono::steady_clock::time_point deadline{};
        uint64_t receivedMicros = 0; ///< trace_ clock at arrival
    };

    struct Task
    {
        uint64_t requestKey = 0;
        size_t index = 0;
        std::string label;
        std::string traceId;
        std::string cellText; ///< client cell JSON, forwarded verbatim
        double cellDeadlineSeconds = 0; ///< cell-level only; 0 = none
        std::chrono::steady_clock::time_point dispatchedAt{};
        uint64_t queuedMicros = 0;     ///< trace_ clock at admission
        uint64_t dispatchedMicros = 0; ///< trace_ clock at dispatch
        int slot = -1;                 ///< worker slot (-1 = inline)
    };

    WorkerPoolOptions makePoolOptions();
    bool listenUnix(std::string *err);
    bool listenTcp(std::string *err);
    void acceptReady(int listenFd);
    void readConn(int fd);
    void closeConn(int fd);
    void handleFrame(Conn &conn, const std::string &payload);
    void handleGrid(Conn &conn, const Json &j);
    void sendHealth(Conn &conn);
    void queuePayload(int connFd, const std::string &payload);
    void flushConn(Conn &conn);

    /** Dispatch queued cells to idle workers (or inline, degraded). */
    void pump();
    double effectiveDeadlineSeconds(const Task &t, const Request &r,
                                    bool *expired) const;
    std::string execCellInline(const Task &t, double deadlineSeconds);
    void deliverReport(uint64_t taskId, const std::string &reportText,
                       bool synthesized);
    void synthesizeFailure(uint64_t taskId, const std::string &kind,
                           int termSignal, const std::string &message,
                           RunStatus::Code code);
    void finishRequestIfDone(Request &r);
    void beginDrain();
    void finishDrain();
    void refreshPidMirror();
    void writeTraceIfConfigured();

    /** CHILD SIDE (and degraded inline): run one wire cell. */
    std::string runCellPayload(const Json &cell, double deadlineSeconds,
                               bool inWorker,
                               const std::string &traceId);

    ServerOptions options_;
    Engine engine_;
    WorkerPool pool_;
    AdmissionQueue admission_;

    int unixFd_ = -1;
    int tcpFd_ = -1;
    int boundTcpPort_ = 0;
    int stopPipe_[2] = {-1, -1};

    std::map<int, Conn> conns_;
    std::map<uint64_t, Request> requests_;
    std::map<uint64_t, Task> tasks_;
    uint64_t nextRequestKey_ = 1;
    uint64_t nextTaskId_ = 1;

    bool running_ = false;
    bool draining_ = false;
    bool stopped_ = false;
    std::chrono::steady_clock::time_point drainDeadline_{};

    mutable std::mutex pidMutex_;
    std::vector<int> pidMirror_;

    // Observability: the service trace (lane 1 = this process;
    // workerTrace_ is the recorder forked workers record into on lane
    // 2 + slot, drained back over the result pipe), the structured
    // event log, and the child-side metrics baseline for delta relays.
    bool traceEnabled_ = false;
    TraceRecorder trace_;
    TraceRecorder workerTrace_;
    Json workerMetricsBaseline_; ///< child-side state only
    EventLog log_;

    // Metrics (engine_'s registry, exported by the health endpoint).
    Counter &mRequests_;
    Counter &mCells_;
    Counter &mShedRequests_;
    Counter &mShedCells_;
    Counter &mInlineCells_;
    Counter &mWorkerDeathCells_;
    Counter &mErrors_;
    Gauge &gQueueDepth_;
    Gauge &gDegraded_;
    Gauge &gConns_;
    Histogram &hAdmissionWait_; ///< request arrival -> admission
    Histogram &hQueue_;         ///< cell admission -> dispatch
    Histogram &hExec_;          ///< cell dispatch -> report
    Histogram &hE2e_;           ///< request arrival -> terminal
};

} // namespace mxl

#endif // MXLISP_SERVE_SERVER_H_
