/**
 * Run-time checking semantics (§3): with Checking::Full, ill-typed
 * operations stop with a Lisp-level error; with Checking::Off the same
 * programs run unchecked (and well-typed programs behave identically
 * in both modes).
 */

#include <gtest/gtest.h>

#include "core/run.h"

namespace mxl {
namespace {

RunResult
runWith(const std::string &src, Checking chk,
        SchemeKind scheme = SchemeKind::High5)
{
    CompilerOptions opts;
    opts.scheme = scheme;
    opts.checking = chk;
    return compileAndRun(src, opts, 50'000'000);
}

TEST(Checking, CarOfNonPairErrors)
{
    auto r = runWith("(print (car 5))", Checking::Full);
    EXPECT_EQ(r.stop, StopReason::Errored);
}

TEST(Checking, CdrOfSymbolErrors)
{
    auto r = runWith("(print (cdr 'sym))", Checking::Full);
    EXPECT_EQ(r.stop, StopReason::Errored);
}

TEST(Checking, RplacaOfNonPairErrors)
{
    auto r = runWith("(rplaca 5 1)", Checking::Full);
    EXPECT_EQ(r.stop, StopReason::Errored);
}

TEST(Checking, GetvOnNonVectorErrors)
{
    auto r = runWith("(getv '(1 2) 0)", Checking::Full);
    EXPECT_EQ(r.stop, StopReason::Errored);
}

TEST(Checking, VectorBounds)
{
    EXPECT_EQ(runWith("(getv (mkvect 3) 3)", Checking::Full).stop,
              StopReason::Errored);
    EXPECT_EQ(runWith("(getv (mkvect 3) -1)", Checking::Full).stop,
              StopReason::Errored);
    EXPECT_EQ(runWith("(print (getv (mkvect 3) 2))", Checking::Full).stop,
              StopReason::Halted);
    EXPECT_EQ(runWith("(putv (mkvect 3) 7 1)", Checking::Full).stop,
              StopReason::Errored);
}

TEST(Checking, VectorIndexTypeChecked)
{
    // "the indexing type is legal" — a symbol index is an error.
    auto r = runWith("(getv (mkvect 3) 'a)", Checking::Full);
    EXPECT_EQ(r.stop, StopReason::Errored);
}

TEST(Checking, StringBounds)
{
    EXPECT_EQ(runWith("(string-ref \"ab\" 2)", Checking::Full).stop,
              StopReason::Errored);
    EXPECT_EQ(runWith("(string-ref 'sym 0)", Checking::Full).stop,
              StopReason::Errored);
}

TEST(Checking, ArithmeticOnSymbolErrors)
{
    // Non-numeric operands reach the generic dispatcher, which raises
    // a Lisp-level error (code 40).
    auto r = runWith("(+ 'a 1)", Checking::Full);
    EXPECT_EQ(r.stop, StopReason::Errored);
    EXPECT_EQ(r.errorCode, 40);
}

TEST(Checking, ComparisonOnListErrors)
{
    auto r = runWith("(lessp '(1) 2)", Checking::Full);
    EXPECT_EQ(r.stop, StopReason::Errored);
}

TEST(Checking, ZeropOnSymbolErrors)
{
    auto r = runWith("(zerop 'a)", Checking::Full);
    EXPECT_EQ(r.stop, StopReason::Errored);
}

TEST(Checking, PlistOfNonSymbolErrors)
{
    auto r = runWith("(plist 5)", Checking::Full);
    EXPECT_EQ(r.stop, StopReason::Errored);
}

TEST(Checking, OffModeDoesNotTrap)
{
    // Unchecked car of a fixnum is undefined but must not raise a
    // checked type error (it reads some word of memory).
    auto r = runWith("(car 256) (print 'done)", Checking::Off);
    EXPECT_EQ(r.stop, StopReason::Halted);
    EXPECT_EQ(r.output, "done\n");
}

TEST(Checking, WellTypedProgramsAgree)
{
    const char *src = R"(
        (de tree (n) (if (zerop n) 'leaf (cons (tree (sub1 n)) (tree (sub1 n)))))
        (de count (x) (if (atom x) 1 (+ (count (car x)) (count (cdr x)))))
        (print (count (tree 6)))
    )";
    auto off = runWith(src, Checking::Off);
    auto full = runWith(src, Checking::Full);
    EXPECT_EQ(off.stop, StopReason::Halted);
    EXPECT_EQ(full.stop, StopReason::Halted);
    EXPECT_EQ(off.output, full.output);
    // And checking costs cycles (§3: 25% average slowdown).
    EXPECT_GT(full.stats.total, off.stats.total);
}

TEST(Checking, CheckedCyclesAreAttributed)
{
    const char *src = R"(
        (de walk (l) (if (null l) 0 (add1 (walk (cdr l)))))
        (print (walk '(1 2 3 4 5 6 7 8)))
    )";
    auto full = runWith(src, Checking::Full);
    // List checking must appear in the list category, marked as
    // added-by-checking.
    EXPECT_GT(full.stats.catChecking(CheckCat::List), 0u);
    auto off = runWith(src, Checking::Off);
    EXPECT_EQ(off.stats.catChecking(CheckCat::List), 0u);
}

TEST(Checking, GenericAddCostsTenCycles)
{
    // §2.2/§4.2: "A generic integer add takes 10 cycles: 9 cycles for
    // type and overflow checking, and 1 for adding."
    // Measure the marginal cost of one checked (+ x y) against the
    // same program with the add replaced by a constant reference.
    const char *with = "(de f (x y) (+ x y)) (setq r 0)"
                       "(let ((i 0)) (while (lessp i 100)"
                       " (setq r (f 3 4)) (setq i (add1 i))))";
    const char *without = "(de f (x y) x) (setq r 0)"
                          "(let ((i 0)) (while (lessp i 100)"
                          " (setq r (f 3 4)) (setq i (add1 i))))";
    auto a = runWith(with, Checking::Full);
    auto b = runWith(without, Checking::Full);
    double perIter =
        (static_cast<double>(a.stats.total) -
         static_cast<double>(b.stats.total)) / 100.0;
    // ld of y + the 10-cycle generic add, give or take slot effects.
    EXPECT_GE(perIter, 9.0);
    EXPECT_LE(perIter, 18.0);
}

} // namespace
} // namespace mxl
