/**
 * @file
 * Checkpointed machine state.
 *
 * A MachineSnapshot is the complete, self-contained execution state of
 * a paused Machine: architectural state (registers, memory, trap
 * handlers), pipeline state (pending load delay, in-flight branch and
 * its remaining delay slots), and the accounting that the paper's
 * measurements are made of (CycleStats, output, stop/error state).
 *
 * The defining invariant, enforced by tests/test_snapshots.cc:
 *
 *     run(entry, N); snap = snapshot(); restore(snap); resume(M);
 *
 * is cycle-identical to run(entry, M) — snapshotting is invisible to
 * the simulation, for any pause point N, including pauses between a
 * branch and its delay slots.
 *
 * Snapshots serialize to a deterministic byte stream (fixed field
 * order, little-endian), so equal states produce equal bytes — the
 * foundation for resumable fault campaigns (src/faults/): pause a run
 * at cycle N, perturb the snapshot's live heap, restore, resume.
 */

#ifndef MXLISP_MACHINE_SNAPSHOT_H_
#define MXLISP_MACHINE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "machine/machine.h"

namespace mxl {

struct MachineSnapshot
{
    // Architectural state.
    uint32_t regs[32] = {};
    int pc = 0;
    int trapHandler[3] = {-1, -1, -1};
    std::vector<uint32_t> memory; ///< full image, word-indexed

    /** memTagging per-word locks; empty when the feature is off. */
    std::vector<uint8_t> memTagLocks;

    // Pipeline state (machine.h's in-flight branch fields).
    int pendingLoadReg = -1;
    int slotsRemaining = 0;
    bool branchTaken = false;
    bool annulSlots = false;
    int branchTarget = -1;
    int branchIdx = -1;

    // Accounting and run outcome.
    CycleStats stats;
    std::string output;
    uint32_t exitValue = 0;
    int64_t errorCode = 0;
    StopReason stop = StopReason::Running;
    int faultIndex = -1;

    bool operator==(const MachineSnapshot &) const = default;

    /** Deterministic byte encoding: equal snapshots, equal bytes. */
    std::string serialize() const;

    /** Inverse of serialize(); false on malformed/truncated input. */
    static bool deserialize(const std::string &bytes, MachineSnapshot *out);
};

} // namespace mxl

#endif // MXLISP_MACHINE_SNAPSHOT_H_
