/**
 * @file
 * Error-reporting primitives, in the spirit of gem5's logging.hh.
 *
 * panic()  — an internal invariant was violated (a bug in mxlisp itself).
 * fatal()  — the simulation cannot continue because of user input (bad
 *            Lisp source, malformed configuration, ...).
 *
 * Both throw exceptions rather than aborting so that the library can be
 * exercised from tests; `MxlError::kind` distinguishes the two.
 */

#ifndef MXLISP_SUPPORT_PANIC_H_
#define MXLISP_SUPPORT_PANIC_H_

#include <stdexcept>
#include <string>

#include "support/format.h"

namespace mxl {

/** Exception carrying an mxlisp diagnostic. */
class MxlError : public std::runtime_error
{
  public:
    enum class Kind { Panic, Fatal };

    MxlError(Kind kind, std::string msg)
        : std::runtime_error(std::move(msg)), kind(kind)
    {}

    const Kind kind;
};

/** Raise an internal-invariant violation. */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    throw MxlError(MxlError::Kind::Panic,
                   std::string("panic: ") + strcat(args...));
}

/** Raise a user-input error. */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    throw MxlError(MxlError::Kind::Fatal,
                   std::string("fatal: ") + strcat(args...));
}

} // namespace mxl

/** Assert an internal invariant with a message. */
#define MXL_ASSERT(cond, ...)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::mxl::panic("assertion '", #cond, "' failed at ", __FILE__,    \
                         ":", __LINE__, ": ", ##__VA_ARGS__);               \
        }                                                                   \
    } while (0)

#endif // MXLISP_SUPPORT_PANIC_H_
