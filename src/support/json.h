/**
 * @file
 * Minimal JSON value: build, dump, parse.
 *
 * Just enough JSON for the repo's data interchange needs — the
 * fault-campaign trial journal (faults/campaign.h, JSONL: one value per
 * line) and benchmark report export (core/report.h) — with two
 * properties the standard library cannot give us and a dependency
 * would be overkill for:
 *
 *  - deterministic output: object keys keep insertion order, so equal
 *    construction sequences produce byte-identical text (journals are
 *    compared and diffed);
 *  - exact 64-bit integers: fault seeds are full-width splitmix64
 *    values and cycle counts are uint64; numbers without '.'/'e' parse
 *    and re-serialize exactly, never through double.
 */

#ifndef MXLISP_SUPPORT_JSON_H_
#define MXLISP_SUPPORT_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace mxl {

class Json
{
  public:
    enum class Type
    {
        Null,
        Bool,
        Int,  ///< negative integers
        Uint, ///< non-negative integers (full uint64 width)
        Real,
        Str,
        Array,
        Object,
    };

    Json() : type_(Type::Null) {}
    Json(bool b) : type_(Type::Bool), bool_(b) {}
    Json(int v) : type_(v < 0 ? Type::Int : Type::Uint)
    {
        if (v < 0)
            int_ = v;
        else
            uint_ = static_cast<uint64_t>(v);
    }
    Json(int64_t v) : type_(v < 0 ? Type::Int : Type::Uint)
    {
        if (v < 0)
            int_ = v;
        else
            uint_ = static_cast<uint64_t>(v);
    }
    Json(uint64_t v) : type_(Type::Uint), uint_(v) {}
    Json(uint32_t v) : type_(Type::Uint), uint_(v) {}
    Json(double v) : type_(Type::Real), real_(v) {}
    Json(std::string s) : type_(Type::Str), str_(std::move(s)) {}
    Json(const char *s) : type_(Type::Str), str_(s) {}

    static Json object() { Json j; j.type_ = Type::Object; return j; }
    static Json array() { Json j; j.type_ = Type::Array; return j; }

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isObject() const { return type_ == Type::Object; }
    bool isArray() const { return type_ == Type::Array; }
    bool isString() const { return type_ == Type::Str; }
    bool
    isNumber() const
    {
        return type_ == Type::Int || type_ == Type::Uint ||
               type_ == Type::Real;
    }

    /** Object: set @p key (appends; last set of a repeated key wins on
     *  lookup). Returns *this for chaining. */
    Json &set(const std::string &key, Json v);

    /** Object: the value at @p key, or nullptr. */
    const Json *find(const std::string &key) const;

    /** Array: append an element. Returns *this for chaining. */
    Json &push(Json v);

    /** Array/Object element count; 0 for scalars. */
    size_t size() const;

    /** Array element (unchecked index). */
    const Json &at(size_t i) const { return arr_[i]; }

    /** Object entry by index (unchecked; insertion order). */
    const std::pair<std::string, Json> &entry(size_t i) const
    {
        return obj_[i];
    }

    // Scalar accessors; wrong-type access returns the default.
    bool asBool(bool dflt = false) const;
    int64_t asInt(int64_t dflt = 0) const;
    uint64_t asUint(uint64_t dflt = 0) const;
    double asReal(double dflt = 0) const;
    const std::string &str() const { return str_; }

    /**
     * Serialize. @p indent 0 gives the compact single-line form (the
     * JSONL journal format); positive values pretty-print with that
     * many spaces per level.
     */
    std::string dump(int indent = 0) const;

    /** Parse one JSON value from @p text (trailing whitespace allowed,
     *  other trailing content rejected). False on malformed input. */
    static bool parse(const std::string &text, Json *out);

    /**
     * Dump, reparse, and re-dump @p j, checking the two dumps are
     * byte-identical — the validity gate every BENCH_*.json artifact
     * passes through before a bench harness reports it written
     * (deterministic output makes equality the strongest check).
     */
    static bool roundTrips(const Json &j);

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Type type_;
    bool bool_ = false;
    int64_t int_ = 0;
    uint64_t uint_ = 0;
    double real_ = 0;
    std::string str_;
    std::vector<Json> arr_;
    std::vector<std::pair<std::string, Json>> obj_;
};

/**
 * Serialize @p j to @p path (pretty-printed with @p indent, trailing
 * newline). False on I/O failure. The standard sink for BENCH_*.json
 * and trace exports.
 */
bool writeJsonFile(const std::string &path, const Json &j, int indent = 1);

} // namespace mxl

#endif // MXLISP_SUPPORT_JSON_H_
