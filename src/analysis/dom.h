/**
 * @file
 * Dominator tree and natural-loop nest over the CFG (analysis/cfg.h).
 *
 * The CFG has multiple roots (every exported symbol plus the entry and
 * trap handlers), so dominance is computed against a virtual entry
 * node with an edge to each root: a block dominates another when every
 * path from *any* root passes through it. The iterative algorithm is
 * Cooper–Harvey–Kennedy over a reverse postorder of the reachable
 * blocks.
 *
 * Natural loops are discovered from back edges (an edge u -> h where h
 * dominates u): the loop body is everything that reaches the latch u
 * without passing through the header h. Loops sharing a header are
 * merged. The loop nest feeds the check-placement optimizer
 * (analysis/checkplace.h): a check inside a loop whose operand is
 * loop-invariant can be hoisted to run once before the header.
 */

#ifndef MXLISP_ANALYSIS_DOM_H_
#define MXLISP_ANALYSIS_DOM_H_

#include <vector>

#include "analysis/cfg.h"

namespace mxl {

/** Dominator tree over the reachable blocks of a Cfg. */
struct DomTree
{
    /**
     * Immediate dominator per block id. A root block's idom is the
     * virtual entry, recorded as -1; unreachable blocks are also -1
     * (distinguish via Cfg::reachable).
     */
    std::vector<int> idom;
    /** Depth in the dominator tree (roots at 0, unreachable -1). */
    std::vector<int> depth;
    /** Reverse postorder of the reachable blocks. */
    std::vector<int> rpo;

    /** Does block @p a dominate block @p b (reflexively)? */
    bool dominates(int a, int b) const;
};

/** One natural loop. */
struct NaturalLoop
{
    int header = -1;
    /** Block ids in the loop, header included, sorted ascending. */
    std::vector<int> blocks;
    /** Blocks with a back edge to the header. */
    std::vector<int> latches;
    /** Nest depth: 1 for an outermost loop. */
    int depth = 1;

    bool
    contains(int block) const
    {
        for (int b : blocks)
            if (b == block)
                return true;
        return false;
    }
};

/** The loop forest of a CFG. */
struct LoopForest
{
    std::vector<NaturalLoop> loops;
    /** Block id -> index of its innermost containing loop, or -1. */
    std::vector<int> innermost;
};

/** Compute the dominator tree of @p cfg's reachable blocks. */
DomTree computeDominators(const Cfg &cfg);

/** Find the natural loops of @p cfg under @p dom. */
LoopForest findLoops(const Cfg &cfg, const DomTree &dom);

} // namespace mxl

#endif // MXLISP_ANALYSIS_DOM_H_
