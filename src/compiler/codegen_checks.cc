/**
 * @file
 * Tag-operation code generation: type checks, tagged memory access, and
 * generic arithmetic. This file is the paper's §3–§6 turned into code —
 * every emitted instruction carries the Purpose/CheckCat annotation that
 * the machine's cycle accounting aggregates.
 */

#include "compiler/codegen.h"

#include "support/panic.h"

namespace mxl {

namespace {

/** Header subtype for a header-discriminated type. */
unsigned
subtypeOf(TypeId t)
{
    switch (t) {
      case TypeId::Symbol: return SubtSymbol;
      case TypeId::Vector: return SubtVector;
      case TypeId::String: return SubtString;
      default:
        panic("subtypeOf: ", typeName(t));
    }
}

} // namespace

// ---------------------------------------------------------------------
// Tag tests
// ---------------------------------------------------------------------

void
CodeGen::emitTagBranchNe(Reg x, TypeId t, int label, CheckCat cat,
                         bool fromChecking, bool hintFall)
{
    const bool headered = scheme_.headerDiscriminated(t);
    const uint32_t tag = scheme_.pointerTag(t);
    int mark = tempMark();

    if (opts_.hw.branchOnTag) {
        // §6.1: compare the tag field without extracting it.
        buf_.btag(Opcode::Bntag, x, tag, label,
                  {Purpose::TagCheck, cat, fromChecking}, hintFall);
    } else if (scheme_.placement() == TagPlacement::High) {
        Reg tr = allocTemp();
        buf_.opImm(Opcode::Srli, tr, x, 32 - highShift(),
                   {Purpose::TagExtract, cat, fromChecking});
        buf_.branch(Opcode::Bnei, tr, 0, label,
                    {Purpose::TagCheck, cat, fromChecking}, hintFall);
        // Patch the immediate (branch() has no imm parameter).
        buf_.entries().back().inst.imm = tag;
    } else {
        Reg tr = allocTemp();
        buf_.opImm(Opcode::Andi, tr, x,
                   (1u << scheme_.tagBits()) - 1u,
                   {Purpose::TagExtract, cat, fromChecking});
        buf_.branch(Opcode::Bnei, tr, 0, label,
                    {Purpose::TagCheck, cat, fromChecking}, hintFall);
        buf_.entries().back().inst.imm = tag;
    }

    if (headered) {
        // LowTag2: several types share the heap tag; the object header
        // completes the check.
        Reg h = allocTemp();
        int adj;
        Reg b = prepareBase(x, t, adj, h);
        buf_.ld(h, b, adj, {Purpose::OtherCheck, cat, fromChecking});
        Reg s = allocTemp();
        buf_.opImm(Opcode::Andi, s, h, 7,
                   {Purpose::OtherCheck, cat, fromChecking});
        buf_.branch(Opcode::Bnei, s, 0, label,
                    {Purpose::OtherCheck, cat, fromChecking}, hintFall);
        buf_.entries().back().inst.imm = subtypeOf(t);
    }
    freeTempsAbove(mark);
}

void
CodeGen::emitTagBranchEq(Reg x, TypeId t, int label, CheckCat cat,
                         bool fromChecking)
{
    const bool headered = scheme_.headerDiscriminated(t);
    const uint32_t tag = scheme_.pointerTag(t);
    int mark = tempMark();

    if (!headered) {
        if (opts_.hw.branchOnTag) {
            buf_.btag(Opcode::Btag, x, tag, label,
                      {Purpose::TagCheck, cat, fromChecking});
        } else {
            Reg tr = allocTemp();
            if (scheme_.placement() == TagPlacement::High) {
                buf_.opImm(Opcode::Srli, tr, x, 32 - highShift(),
                           {Purpose::TagExtract, cat, fromChecking});
            } else {
                buf_.opImm(Opcode::Andi, tr, x,
                           (1u << scheme_.tagBits()) - 1u,
                           {Purpose::TagExtract, cat, fromChecking});
            }
            buf_.branch(Opcode::Beqi, tr, 0, label,
                        {Purpose::TagCheck, cat, fromChecking});
            buf_.entries().back().inst.imm = tag;
        }
        freeTempsAbove(mark);
        return;
    }

    // Header-discriminated: both the tag and the subtype must match.
    int lNo = buf_.newLabel();
    if (opts_.hw.branchOnTag) {
        buf_.btag(Opcode::Bntag, x, tag, lNo,
                  {Purpose::TagCheck, cat, fromChecking});
    } else {
        Reg tr = allocTemp();
        buf_.opImm(Opcode::Andi, tr, x, (1u << scheme_.tagBits()) - 1u,
                   {Purpose::TagExtract, cat, fromChecking});
        buf_.branch(Opcode::Bnei, tr, 0, lNo,
                    {Purpose::TagCheck, cat, fromChecking});
        buf_.entries().back().inst.imm = tag;
    }
    Reg h = allocTemp();
    int adj;
    Reg b = prepareBase(x, t, adj, h);
    buf_.ld(h, b, adj, {Purpose::OtherCheck, cat, fromChecking});
    Reg s = allocTemp();
    buf_.opImm(Opcode::Andi, s, h, 7,
               {Purpose::OtherCheck, cat, fromChecking});
    buf_.branch(Opcode::Beqi, s, 0, label,
                {Purpose::OtherCheck, cat, fromChecking});
    buf_.entries().back().inst.imm = subtypeOf(t);
    buf_.placeLabel(lNo);
    freeTempsAbove(mark);
}

void
CodeGen::emitFixnumCheckBranch(Reg x, int label, CheckCat cat,
                               bool fromChecking)
{
    int mark = tempMark();
    if (scheme_.placement() == TagPlacement::High) {
        // §4.1 method 2: sign-extend the data bits; an integer equals
        // its own sign extension. Always 3 cycles.
        Reg tr = allocTemp();
        int k = highShift();
        buf_.opImm(Opcode::Slli, tr, x, k,
                   {Purpose::TagExtract, cat, fromChecking});
        buf_.opImm(Opcode::Srai, tr, tr, k,
                   {Purpose::TagExtract, cat, fromChecking});
        buf_.branch(Opcode::Bne, tr, x, label,
                    {Purpose::TagCheck, cat, fromChecking},
                    /*hintFall=*/true);
    } else {
        // Low tags: integers are the words with both low bits clear.
        Reg tr = allocTemp();
        buf_.opImm(Opcode::Andi, tr, x, 3,
                   {Purpose::TagExtract, cat, fromChecking});
        buf_.branch(Opcode::Bnei, tr, 0, label,
                    {Purpose::TagCheck, cat, fromChecking},
                    /*hintFall=*/true);
    }
    freeTempsAbove(mark);
}

void
CodeGen::emitFixnumBranchIf(Reg x, int label, CheckCat cat,
                            bool fromChecking)
{
    int mark = tempMark();
    if (scheme_.placement() == TagPlacement::High) {
        Reg tr = allocTemp();
        int k = highShift();
        buf_.opImm(Opcode::Slli, tr, x, k,
                   {Purpose::TagExtract, cat, fromChecking});
        buf_.opImm(Opcode::Srai, tr, tr, k,
                   {Purpose::TagExtract, cat, fromChecking});
        buf_.branch(Opcode::Beq, tr, x, label,
                    {Purpose::TagCheck, cat, fromChecking});
    } else {
        Reg tr = allocTemp();
        buf_.opImm(Opcode::Andi, tr, x, 3,
                   {Purpose::TagExtract, cat, fromChecking});
        buf_.branch(Opcode::Beqi, tr, 0, label,
                    {Purpose::TagCheck, cat, fromChecking});
    }
    freeTempsAbove(mark);
}

void
CodeGen::emitTypeCheck(Reg x, TypeId t, CheckCat cat)
{
    if (!checkingOn())
        return;
    if (t == TypeId::Fixnum) {
        emitFixnumCheckBranch(x, rt_.error, cat, /*fromChecking=*/true);
        return;
    }
    emitTagBranchNe(x, t, rt_.error, cat, /*fromChecking=*/true,
                    /*hintFall=*/true);
}

// ---------------------------------------------------------------------
// Tagged memory access
// ---------------------------------------------------------------------

Reg
CodeGen::prepareBase(Reg base, TypeId t, int &adj, Reg avoid)
{
    if (scheme_.placement() == TagPlacement::High &&
        !opts_.hw.ignoreTagOnMemory) {
        // §3.2: mask the tag out with the mask kept in a register
        // (one cycle). The mask target is a fresh temp, so loads from
        // it are naturally idempotent.
        Reg m = allocTemp();
        buf_.op3(Opcode::And, m, base, abi::maskreg,
                 {Purpose::TagRemove});
        adj = 0;
        return m;
    }
    // Low tags (or address hardware): the tag is absorbed by the
    // word-addressed memory and the offset adjustment — no masking
    // (§5.2). Loads must stay idempotent: copy when the target would
    // overwrite the base (the Figure 2 `move` increase).
    adj = opts_.hw.ignoreTagOnMemory ? 0 : scheme_.offsetAdjust(t);
    if (base == avoid) {
        Reg c = allocTemp();
        buf_.mov(c, base, {Purpose::Useful});
        return c;
    }
    return base;
}

void
CodeGen::emitDetag(Reg target, Reg base, TypeId, Annotation ann)
{
    if (scheme_.placement() == TagPlacement::High) {
        buf_.op3(Opcode::And, target, base, abi::maskreg, ann);
    } else {
        uint32_t mask = ~((1u << scheme_.tagBits()) - 1u);
        buf_.opImm(Opcode::Andi, target, base, mask, ann);
    }
}

void
CodeGen::emitLoadField(Reg target, Reg base, TypeId t, int off,
                       CheckCat cat, bool checked)
{
    bool hwChecked =
        opts_.hw.checkedMemory == CheckedMem::All ||
        (opts_.hw.checkedMemory == CheckedMem::Lists && t == TypeId::Pair);

    if (checked && checkingOn() && hwChecked) {
        // §6.2.1: the tag is checked during the address calculation and
        // dropped by the hardware — a single useful cycle.
        if (target == base) {
            Reg c = allocTemp();
            buf_.mov(c, base, {Purpose::Useful});
            buf_.ldt(target, c, off, scheme_.pointerTag(t),
                     {Purpose::Useful, cat});
            freeTemp(c);
        } else {
            buf_.ldt(target, base, off, scheme_.pointerTag(t),
                     {Purpose::Useful, cat});
        }
        return;
    }

    if (checked)
        emitTypeCheck(base, t, cat);

    int mark = tempMark();
    int adj;
    Reg b = prepareBase(base, t, adj, target);
    buf_.ld(target, b, off + adj, {Purpose::Useful, cat});
    freeTempsAbove(mark);
}

void
CodeGen::emitStoreField(Reg value, Reg base, TypeId t, int off,
                        CheckCat cat, bool checked)
{
    bool hwChecked =
        opts_.hw.checkedMemory == CheckedMem::All ||
        (opts_.hw.checkedMemory == CheckedMem::Lists && t == TypeId::Pair);

    if (checked && checkingOn() && hwChecked) {
        buf_.stt(value, base, off, scheme_.pointerTag(t),
                 {Purpose::Useful, cat});
        return;
    }

    if (checked)
        emitTypeCheck(base, t, cat);

    int mark = tempMark();
    int adj;
    Reg b = prepareBase(base, t, adj, /*avoid=*/0);
    buf_.st(value, b, off + adj, {Purpose::Useful, cat});
    freeTempsAbove(mark);
}

// ---------------------------------------------------------------------
// Generic arithmetic (§2.2, §4.2, §6.2.2)
// ---------------------------------------------------------------------

void
CodeGen::emitSlowBinop(int stubLabel, Reg a, Reg b, Reg target,
                       int doneLabel, CheckCat cat)
{
    Annotation ann{Purpose::Dispatch, cat, true};
    buf_.mov(abi::arg0, a, ann);
    buf_.mov(static_cast<Reg>(abi::arg0 + 1), b, ann);
    buf_.jal(abi::link, stubLabel, ann);
    buf_.mov(target, abi::ret, ann);
    buf_.jump(doneLabel, ann);
}

void
CodeGen::emitArith(const std::string &op, Sx *a, Sx *b, Reg target)
{
    Opcode mcOp;
    int stub;
    bool hasOverflow = false; // overflow folds into the type check
    if (op == "+") {
        mcOp = Opcode::Add;
        stub = rt_.genAdd;
        hasOverflow = true;
    } else if (op == "-") {
        mcOp = Opcode::Sub;
        stub = rt_.genSub;
        hasOverflow = true;
    } else if (op == "*") {
        mcOp = Opcode::Mul;
        stub = rt_.genMul;
    } else if (op == "quotient") {
        mcOp = Opcode::Div;
        stub = rt_.genDiv;
    } else if (op == "remainder") {
        mcOp = Opcode::Rem;
        stub = rt_.genRem;
    } else {
        panic("emitArith: ", op);
    }

    int mark = tempMark();
    Reg ra, rb;
    evalTwo(a, b, ra, rb);
    const int scale = scheme_.fixnumScale();

    // The machine operation itself (native on fixnum representations;
    // §2.1: "integer arithmetic ... without any need for reformatting").
    auto emitNativeOp = [&](Reg dst) {
        switch (mcOp) {
          case Opcode::Add:
          case Opcode::Sub:
            buf_.op3(mcOp, dst, ra, rb, {Purpose::Useful});
            break;
          case Opcode::Mul:
            if (scale == 4) {
                // (4a * 4b) needs a /4: pre-shift one operand.
                Reg s = allocTemp();
                buf_.opImm(Opcode::Srai, s, ra, 2, {Purpose::Useful});
                buf_.op3(Opcode::Mul, dst, s, rb, {Purpose::Useful});
                freeTemp(s);
            } else {
                buf_.op3(Opcode::Mul, dst, ra, rb, {Purpose::Useful});
            }
            break;
          case Opcode::Div:
            if (scale == 4) {
                Reg s = allocTemp();
                buf_.op3(Opcode::Div, s, ra, rb, {Purpose::Useful});
                buf_.opImm(Opcode::Slli, dst, s, 2, {Purpose::Useful});
                freeTemp(s);
            } else {
                buf_.op3(Opcode::Div, dst, ra, rb, {Purpose::Useful});
            }
            break;
          case Opcode::Rem:
            // (4a % 4b) == 4*(a % b): exact in either representation.
            buf_.op3(Opcode::Rem, dst, ra, rb, {Purpose::Useful});
            break;
          default:
            panic("emitNativeOp");
        }
    };

    if (!checkingOn()) {
        emitNativeOp(target);
        freeTempsAbove(mark);
        return;
    }

    // --- full run-time checking from here on ---
    Annotation chk{Purpose::TagCheck, CheckCat::Arith, true};
    ArithMode mode =
        libArithInline_ ? ArithMode::InlineBiased : opts_.arithMode;

    if (mode == ArithMode::ForceDispatch) {
        // §6.2.2: "the inline test always fails" — every operation goes
        // through the out-of-line dispatch.
        Annotation ann{Purpose::Dispatch, CheckCat::Arith, true};
        buf_.mov(abi::arg0, ra, ann);
        buf_.mov(static_cast<Reg>(abi::arg0 + 1), rb, ann);
        buf_.jal(abi::link, stub, ann);
        if (target != abi::ret)
            buf_.mov(target, abi::ret, ann);
        freeTempsAbove(mark);
        return;
    }

    if (opts_.hw.genericArith &&
        (mcOp == Opcode::Add || mcOp == Opcode::Sub)) {
        // §6.2.2 hardware: type and overflow checking in parallel with
        // the add; non-integer operands trap to the dispatch handler.
        // The result register is fixed at r1 so the trap handler knows
        // where to deliver the slow-path result.
        buf_.op3(mcOp == Opcode::Add ? Opcode::Addt : Opcode::Subt,
                 abi::ret, ra, rb, {Purpose::Useful, CheckCat::Arith});
        if (target != abi::ret)
            buf_.mov(target, abi::ret, {Purpose::Useful});
        freeTempsAbove(mark);
        return;
    }

    int lSlow = buf_.newLabel();
    int lDone = buf_.newLabel();

    // Result must not overwrite an operand (the slow path re-examines
    // both), so route through a fresh temp when target aliases one.
    bool aliases = target == ra || target == rb;
    Reg rr = aliases ? allocTemp() : target;

    if (mode == ArithMode::SumCheck && mcOp == Opcode::Add &&
        scheme_.sumCheckSound()) {
        // §4.2: add first; one integer test on the result covers both
        // operand types and overflow.
        emitNativeOp(rr);
        Reg tr = allocTemp();
        int k = highShift();
        buf_.opImm(Opcode::Slli, tr, rr, k,
                   {Purpose::TagExtract, CheckCat::Arith, true});
        buf_.opImm(Opcode::Srai, tr, tr, k,
                   {Purpose::TagExtract, CheckCat::Arith, true});
        buf_.branch(Opcode::Bne, tr, rr, lSlow, chk, /*hintFall=*/true);
        freeTemp(tr);
    } else {
        // §2.2 integer-biased inline sequence: test both operands, do
        // the operation, and (for add/sub) detect overflow as a type
        // check on the result. A generic add costs 10 cycles, 9 of
        // them checking — exactly the paper's count. Checks on literal
        // operands are elided (§3: "when the compiler can determine
        // the type of an operand based on the program context ... the
        // type checking operations can be removed").
        if (!a->isInt())
            emitFixnumCheckBranch(ra, lSlow, CheckCat::Arith, true);
        if (!b->isInt())
            emitFixnumCheckBranch(rb, lSlow, CheckCat::Arith, true);
        emitNativeOp(rr);
        if (hasOverflow) {
            if (scheme_.placement() == TagPlacement::High) {
                Reg tr = allocTemp();
                int k = highShift();
                buf_.opImm(Opcode::Slli, tr, rr, k,
                           {Purpose::TagExtract, CheckCat::Arith, true});
                buf_.opImm(Opcode::Srai, tr, tr, k,
                           {Purpose::TagExtract, CheckCat::Arith, true});
                buf_.branch(Opcode::Bne, tr, rr, lSlow, chk,
                            /*hintFall=*/true);
                freeTemp(tr);
            } else {
                // Sign rules: add overflows iff both operands have the
                // sign opposite to the result; sub likewise with the
                // subtrahend negated.
                Annotation oc{Purpose::OtherCheck, CheckCat::Arith, true};
                Reg t1 = allocTemp();
                Reg t2 = allocTemp();
                buf_.op3(Opcode::Xor, t1, ra, rr, oc);
                if (mcOp == Opcode::Add)
                    buf_.op3(Opcode::Xor, t2, rb, rr, oc);
                else
                    buf_.op3(Opcode::Xor, t2, ra, rb, oc);
                buf_.op3(Opcode::And, t1, t1, t2, oc);
                buf_.branch(Opcode::Blt, t1, abi::zero, lSlow, oc,
                            /*hintFall=*/true);
                freeTemp(t2);
                freeTemp(t1);
            }
        }
    }

    if (aliases)
        buf_.mov(target, rr, {Purpose::Useful});
    buf_.placeLabel(lDone);
    freeTempsAbove(mark);

    addCold([this, stub, ra, rb, target, lSlow, lDone]() {
        buf_.placeLabel(lSlow);
        emitSlowBinop(stub, ra, rb, target, lDone, CheckCat::Arith);
    });
}

void
CodeGen::emitCompareBranchFalse(const std::string &op, Sx *a, Sx *b,
                                int falseLabel)
{
    // Inline inverse branch for the all-fixnum fast path. Fixnum
    // representations preserve signed order in every scheme.
    Opcode inv;
    if (op == "lessp")
        inv = Opcode::Bge;
    else if (op == "greaterp")
        inv = Opcode::Ble;
    else if (op == "leq")
        inv = Opcode::Bgt;
    else if (op == "geq")
        inv = Opcode::Blt;
    else if (op == "eqn")
        inv = Opcode::Bne;
    else if (op == "neqn")
        inv = Opcode::Beq;
    else
        panic("emitCompareBranchFalse: ", op);

    int mark = tempMark();
    Reg ra, rb;
    evalTwo(a, b, ra, rb);

    if (!checkingOn()) {
        buf_.branch(inv, ra, rb, falseLabel, {Purpose::Useful});
        freeTempsAbove(mark);
        return;
    }

    int lSlow = buf_.newLabel();
    int lCont = buf_.newLabel();
    bool anyCheck = false;
    if (!a->isInt()) {
        emitFixnumCheckBranch(ra, lSlow, CheckCat::Arith, true);
        anyCheck = true;
    }
    if (!b->isInt()) {
        emitFixnumCheckBranch(rb, lSlow, CheckCat::Arith, true);
        anyCheck = true;
    }
    buf_.branch(inv, ra, rb, falseLabel, {Purpose::Useful});
    buf_.placeLabel(lCont);
    freeTempsAbove(mark);

    if (!anyCheck) {
        // Both operands are literals: the slow path is unreachable,
        // but the label must still be placed for the linker.
        addCold([this, lSlow]() { buf_.placeLabel(lSlow); });
        return;
    }
    addCold([this, op, ra, rb, lSlow, lCont, falseLabel]() {
        buf_.placeLabel(lSlow);
        Annotation ann{Purpose::Dispatch, CheckCat::Arith, true};
        // Map to the two slow predicates: genLess(a,b) and genEqn(a,b).
        bool swap = op == "greaterp" || op == "leq";
        bool invert = op == "leq" || op == "geq" || op == "neqn";
        int stub =
            op == "eqn" || op == "neqn" ? rt_.genEqn : rt_.genLess;
        buf_.mov(abi::arg0, swap ? rb : ra, ann);
        buf_.mov(static_cast<Reg>(abi::arg0 + 1), swap ? ra : rb, ann);
        buf_.jal(abi::link, stub, ann);
        buf_.branch(invert ? Opcode::Bne : Opcode::Beq, abi::ret,
                    abi::nilreg, falseLabel, ann);
        buf_.jump(lCont, ann);
    });
}

void
CodeGen::emitCompare(const std::string &op, Sx *a, Sx *b, Reg target)
{
    int lFalse = buf_.newLabel();
    int lEnd = buf_.newLabel();
    emitCompareBranchFalse(op, a, b, lFalse);
    buf_.mov(target, abi::treg, {Purpose::Useful});
    buf_.jump(lEnd, {Purpose::Useful});
    buf_.placeLabel(lFalse);
    buf_.mov(target, abi::nilreg, {Purpose::Useful});
    buf_.placeLabel(lEnd);
}

// ---------------------------------------------------------------------
// Vector / string access
// ---------------------------------------------------------------------

void
CodeGen::emitIndexedLoad(Sx *vec, Sx *idx, Reg target, TypeId t)
{
    int mark = tempMark();
    Reg rv, ri;
    evalTwo(vec, idx, rv, ri);

    bool hwChecked = opts_.hw.checkedMemory == CheckedMem::All;
    Annotation oc{Purpose::OtherCheck, CheckCat::Vector, true};

    if (checkingOn()) {
        // Full run-time checking: object tag, index type, and bounds
        // ("vector accesses with full run-time checking will not only
        // do bounds checking, but also check that the indexed object is
        // a vector and that the indexing type is legal").
        Reg h = allocTemp();
        if (hwChecked) {
            buf_.ldt(h, rv, 0, scheme_.pointerTag(t),
                     {Purpose::Useful, CheckCat::Vector});
        } else {
            emitTypeCheck(rv, t, CheckCat::Vector);
            int adj;
            Reg b = prepareBase(rv, t, adj, h);
            buf_.ld(h, b, adj, oc);
        }
        emitFixnumCheckBranch(ri, rt_.error, CheckCat::Vector, true);
        buf_.opImm(Opcode::Srli, h, h, 3, oc); // header -> raw length
        if (scheme_.fixnumScale() == 4)
            buf_.opImm(Opcode::Slli, h, h, 2, oc); // scale to repr
        buf_.branch(Opcode::Blt, ri, abi::zero, rt_.error, oc,
                    /*hintFall=*/true);
        buf_.branch(Opcode::Bge, ri, h, rt_.error, oc, /*hintFall=*/true);
    }

    // Element access: address = base + 4 + scaled-index.
    Reg addr = allocTemp();
    if (scheme_.placement() == TagPlacement::High) {
        Reg s = allocTemp();
        if (scheme_.fixnumScale() == 1)
            buf_.opImm(Opcode::Slli, s, ri, 2, {Purpose::Useful});
        else
            buf_.mov(s, ri, {Purpose::Useful});
        if (hwChecked && checkingOn()) {
            buf_.op3(Opcode::Add, addr, rv, s, {Purpose::Useful});
            buf_.ldt(target, addr, 4, scheme_.pointerTag(t),
                     {Purpose::Useful, CheckCat::Vector});
        } else {
            int adj;
            Reg b = prepareBase(rv, t, adj, addr);
            buf_.op3(Opcode::Add, addr, b, s, {Purpose::Useful});
            buf_.ld(target, addr, 4 + adj, {Purpose::Useful});
        }
    } else {
        // Low tags: the fixnum representation is already the byte
        // offset (§5.2: "indexing in word vectors will be fast").
        buf_.op3(Opcode::Add, addr, rv, ri, {Purpose::Useful});
        if (hwChecked && checkingOn()) {
            buf_.ldt(target, addr, 4, scheme_.pointerTag(t),
                     {Purpose::Useful, CheckCat::Vector});
        } else {
            buf_.ld(target, addr, 4 + scheme_.offsetAdjust(t),
                    {Purpose::Useful});
        }
    }
    if (t == TypeId::String && scheme_.fixnumScale() == 4) {
        // Raw char code -> fixnum.
        buf_.opImm(Opcode::Slli, target, target, 2, {Purpose::Useful});
    }
    freeTempsAbove(mark);
}

void
CodeGen::emitIndexedStore(Sx *vec, Sx *idx, Sx *val, Reg target, TypeId t)
{
    int mark = tempMark();

    // Evaluate all three left-to-right with call protection.
    Reg rv, ri;
    Reg rx = 0;
    if (!containsCall(val)) {
        evalTwo(vec, idx, rv, ri);
        rx = allocTemp();
        expr(val, rx);
    } else {
        expr(vec, abi::ret);
        pushReg(abi::ret);
        expr(idx, abi::ret);
        pushReg(abi::ret);
        rx = allocTemp();
        expr(val, rx);
        ri = allocTemp();
        popTo(ri);
        rv = allocTemp();
        popTo(rv);
    }

    bool hwChecked = opts_.hw.checkedMemory == CheckedMem::All;
    Annotation oc{Purpose::OtherCheck, CheckCat::Vector, true};

    if (checkingOn()) {
        Reg h = allocTemp();
        if (hwChecked) {
            buf_.ldt(h, rv, 0, scheme_.pointerTag(t),
                     {Purpose::Useful, CheckCat::Vector});
        } else {
            emitTypeCheck(rv, t, CheckCat::Vector);
            int adj;
            Reg b = prepareBase(rv, t, adj, h);
            buf_.ld(h, b, adj, oc);
        }
        emitFixnumCheckBranch(ri, rt_.error, CheckCat::Vector, true);
        buf_.opImm(Opcode::Srli, h, h, 3, oc);
        if (scheme_.fixnumScale() == 4)
            buf_.opImm(Opcode::Slli, h, h, 2, oc);
        buf_.branch(Opcode::Blt, ri, abi::zero, rt_.error, oc,
                    /*hintFall=*/true);
        buf_.branch(Opcode::Bge, ri, h, rt_.error, oc, /*hintFall=*/true);
    }

    Reg sval = rx;
    if (t == TypeId::String && scheme_.fixnumScale() == 4) {
        sval = allocTemp();
        buf_.opImm(Opcode::Srai, sval, rx, 2, {Purpose::Useful});
    }

    Reg addr = allocTemp();
    if (scheme_.placement() == TagPlacement::High) {
        Reg s = allocTemp();
        if (scheme_.fixnumScale() == 1)
            buf_.opImm(Opcode::Slli, s, ri, 2, {Purpose::Useful});
        else
            buf_.mov(s, ri, {Purpose::Useful});
        if (hwChecked && checkingOn()) {
            buf_.op3(Opcode::Add, addr, rv, s, {Purpose::Useful});
            buf_.stt(sval, addr, 4, scheme_.pointerTag(t),
                     {Purpose::Useful, CheckCat::Vector});
        } else {
            int adj;
            Reg b = prepareBase(rv, t, adj, /*avoid=*/0);
            buf_.op3(Opcode::Add, addr, b, s, {Purpose::Useful});
            buf_.st(sval, addr, 4 + adj, {Purpose::Useful});
        }
    } else {
        buf_.op3(Opcode::Add, addr, rv, ri, {Purpose::Useful});
        if (hwChecked && checkingOn()) {
            buf_.stt(sval, addr, 4, scheme_.pointerTag(t),
                     {Purpose::Useful, CheckCat::Vector});
        } else {
            buf_.st(sval, addr, 4 + scheme_.offsetAdjust(t),
                    {Purpose::Useful});
        }
    }
    if (target != rx)
        buf_.mov(target, rx, {Purpose::Useful});
    freeTempsAbove(mark);
}

} // namespace mxl
