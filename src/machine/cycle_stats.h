/**
 * @file
 * Cycle accounting: the measurement half of the paper.
 *
 * Every executed cycle is attributed to a Purpose (useful work or one of
 * the four tag operations), a CheckCat (Table 1's arith/vector/list
 * split), and whether the instruction exists only because run-time
 * checking is on (Figure 1's added-by-checking component). Dynamic
 * instruction-class counts (Figure 2: and/move/noop/squash) are kept
 * alongside.
 */

#ifndef MXLISP_MACHINE_CYCLE_STATS_H_
#define MXLISP_MACHINE_CYCLE_STATS_H_

#include <cstdint>
#include <string>

#include "isa/annotation.h"
#include "isa/opcode.h"

namespace mxl {

struct CycleStats
{
    /** Total executed cycles (including stalls and squashed slots). */
    uint64_t total = 0;

    /** Dynamic instruction count (excluding stalls/squashes). */
    uint64_t instructions = 0;

    /** cycles[purpose][fromChecking] */
    uint64_t byPurpose[numPurposes][2] = {};

    /** cycles[cat][fromChecking] */
    uint64_t byCat[numCheckCats][2] = {};

    /** Dynamic counts of interesting instruction kinds (Figure 2). */
    uint64_t andOps = 0;    ///< And/Andi instructions (tag masks live here)
    uint64_t moveOps = 0;   ///< Mov instructions
    uint64_t noops = 0;     ///< executed Noop instructions
    uint64_t squashed = 0;  ///< annulled delay-slot cycles
    uint64_t loadStalls = 0; ///< load-delay interlock cycles
    uint64_t loads = 0;
    uint64_t stores = 0;
    uint64_t branches = 0;

    bool operator==(const CycleStats &) const = default;

    /** Charge @p cycles for an executed instruction. */
    void
    charge(const Annotation &ann, int cycles)
    {
        total += static_cast<uint64_t>(cycles);
        int f = ann.fromChecking ? 1 : 0;
        byPurpose[static_cast<int>(ann.purpose)][f] +=
            static_cast<uint64_t>(cycles);
        byCat[static_cast<int>(ann.cat)][f] +=
            static_cast<uint64_t>(cycles);
    }

    /** Cycles spent on @p p across both checking components. */
    uint64_t
    purposeTotal(Purpose p) const
    {
        int i = static_cast<int>(p);
        return byPurpose[i][0] + byPurpose[i][1];
    }

    /** Cycles in category @p c that were added by run-time checking. */
    uint64_t
    catChecking(CheckCat c) const
    {
        return byCat[static_cast<int>(c)][1];
    }

    /** Fraction (0..100) of total cycles spent on @p p. */
    double pctPurpose(Purpose p, bool fromCheckingOnly = false) const;

    /** Human-readable summary. */
    std::string summary() const;
};

} // namespace mxl

#endif // MXLISP_MACHINE_CYCLE_STATS_H_
