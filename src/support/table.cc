#include "support/table.h"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "support/format.h"

namespace mxl {

void
TextTable::addRow(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

void
TextTable::addRule()
{
    if (!rows_.empty())
        ruleAfter_.push_back(rows_.size() - 1);
}

bool
TextTable::looksNumeric(const std::string &s)
{
    if (s.empty())
        return false;
    for (char c : s) {
        if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' &&
            c != '-' && c != '+' && c != '%' && c != 'x')
            return false;
    }
    return true;
}

std::string
TextTable::render() const
{
    size_t ncols = 0;
    for (const auto &r : rows_)
        ncols = std::max(ncols, r.size());

    std::vector<size_t> width(ncols, 0);
    for (const auto &r : rows_) {
        for (size_t c = 0; c < r.size(); ++c)
            width[c] = std::max(width[c], r[c].size());
    }

    size_t total = 0;
    for (size_t w : width)
        total += w + 2;

    std::ostringstream os;
    for (size_t i = 0; i < rows_.size(); ++i) {
        const auto &r = rows_[i];
        for (size_t c = 0; c < r.size(); ++c) {
            const std::string &cell = r[c];
            // First column left-aligns (row labels); numbers right-align.
            if (c > 0 && looksNumeric(cell))
                os << padLeft(cell, width[c]);
            else
                os << padRight(cell, width[c]);
            if (c + 1 < r.size())
                os << "  ";
        }
        os << '\n';
        if (i == 0 || std::count(ruleAfter_.begin(), ruleAfter_.end(), i))
            os << std::string(total, '-') << '\n';
    }
    return os.str();
}

} // namespace mxl
