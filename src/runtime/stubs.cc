#include "runtime/stubs.h"

#include "runtime/layout.h"
#include "support/bits.h"
#include "support/panic.h"

namespace mxl {

namespace {

/** Emit the 1- or 2-cycle tag insertion of §3.1 into @p dst. */
void
emitTagInsert(AsmBuffer &buf, const TagScheme &scheme, Reg dst, Reg rawAddr,
              TypeId t)
{
    Annotation ins{Purpose::TagInsert};
    uint32_t tag = scheme.pointerTag(t);
    if (scheme.placement() == TagPlacement::High) {
        // The shifted tag does not fit an instruction immediate: one
        // cycle to build it, one to or it in (§3.1: "two cycles: one to
        // shift the tag ... and one to 'or'").
        buf.li(dst, static_cast<int64_t>(tag) << scheme.tagShift(), ins);
        buf.op3(Opcode::Or, dst, dst, rawAddr, ins);
    } else {
        buf.opImm(Opcode::Ori, dst, rawAddr, tag, ins);
    }
}

/** Save link + the given registers below sp; returns the frame size. */
int
pushRegs(AsmBuffer &buf, const std::vector<Reg> &regs)
{
    int n = static_cast<int>(regs.size());
    buf.opImm(Opcode::Addi, abi::sp, abi::sp, -4 * n, {Purpose::Useful});
    for (int i = 0; i < n; ++i)
        buf.st(regs[i], abi::sp, 4 * (n - 1 - i), {Purpose::Useful});
    return n;
}

void
popRegs(AsmBuffer &buf, const std::vector<Reg> &regs)
{
    int n = static_cast<int>(regs.size());
    for (int i = 0; i < n; ++i)
        buf.ld(regs[i], abi::sp, 4 * (n - 1 - i), {Purpose::Useful});
    buf.opImm(Opcode::Addi, abi::sp, abi::sp, 4 * n, {Purpose::Useful});
}

const std::vector<Reg> &
tempRegs()
{
    static const std::vector<Reg> regs = [] {
        std::vector<Reg> r;
        for (Reg x = abi::tmp0; x <= abi::tmpLast; ++x)
            r.push_back(x);
        return r;
    }();
    return regs;
}

/** A wrapper around a Lisp binop that preserves the temp registers
 *  (the generic-arithmetic slow path can run with live temps). */
int
emitPreservingWrapper(CodeGen &cg, SxArena &arena, const std::string &name,
                      const std::string &lispFn, CheckCat cat)
{
    AsmBuffer &buf = cg.buf();
    int label = buf.defineSymbol(name);
    Annotation ann{Purpose::Dispatch, cat, true};

    std::vector<Reg> saved = tempRegs();
    saved.push_back(abi::link);
    // pushRegs/popRegs emit plain Useful annotations; re-annotate by
    // emitting manually here for correct attribution.
    int n = static_cast<int>(saved.size());
    buf.opImm(Opcode::Addi, abi::sp, abi::sp, -4 * n, ann);
    for (int i = 0; i < n; ++i)
        buf.st(saved[i], abi::sp, 4 * (n - 1 - i), ann);

    buf.jal(abi::link, cg.functionLabel(arena.sym(lispFn), 2), ann);

    for (int i = 0; i < n; ++i)
        buf.ld(saved[i], abi::sp, 4 * (n - 1 - i), ann);
    buf.opImm(Opcode::Addi, abi::sp, abi::sp, 4 * n, ann);
    buf.jr(abi::link, ann);
    return label;
}

} // namespace

StubSet
emitStubs(CodeGen &cg, SxArena &arena)
{
    AsmBuffer &buf = cg.buf();
    ImageBuilder &image = cg.image();
    const TagScheme &scheme = cg.scheme();
    const RuntimeLayout &layout = image.layout();
    const CompilerOptions &opts = cg.options();
    StubSet out;

    MXL_ASSERT(buf.entries().empty(), "stubs must be emitted first");

    // ---- undefined function (instruction index 0) ----
    buf.defineSymbol("rt_undef");
    buf.li(abi::scratch, rtcode::undefinedFunction, {Purpose::Useful});
    buf.sys(SysCode::Error, abi::scratch, {Purpose::Useful});

    // ---- type/bounds error ----
    out.labels.error = buf.defineSymbol("rt_error");
    buf.li(abi::scratch, rtcode::typeError, {Purpose::Useful});
    buf.sys(SysCode::Error, abi::scratch, {Purpose::Useful});

    // ---- hardware tag-mismatch trap: same as a type error ----
    out.tagTrap = buf.defineSymbol("rt_tagtrap");
    buf.li(abi::scratch, rtcode::tagTrap, {Purpose::Useful});
    buf.sys(SysCode::Error, abi::scratch, {Purpose::Useful});

    int gcFn = cg.functionLabel(arena.sym("gc-reclaim"), 0);

    // ---- rt_cons: car in r2, cdr in r3 -> r1 ----
    {
        out.labels.cons = buf.defineSymbol("rt_cons");
        int lGc = buf.newLabel("rt_cons_gc");
        buf.opImm(Opcode::Addi, abi::scratch, abi::hp, 8, {Purpose::Useful});
        buf.branch(Opcode::Bgt, abi::scratch, abi::hl, lGc, {Purpose::Useful},
                   /*hintFall=*/true);
        buf.st(abi::arg0, abi::hp, 0, {Purpose::Useful});
        buf.st(abi::arg0 + 1, abi::hp, 4, {Purpose::Useful});
        emitTagInsert(buf, scheme, abi::ret, abi::hp, TypeId::Pair);
        buf.mov(abi::hp, abi::scratch, {Purpose::Useful});
        buf.jr(abi::link, {Purpose::Useful});

        buf.placeLabel(lGc);
        pushRegs(buf, {abi::link, abi::arg0, abi::arg0 + 1});
        buf.jal(abi::link, gcFn, {Purpose::Useful});
        popRegs(buf, {abi::link, abi::arg0, abi::arg0 + 1});
        buf.jump(out.labels.cons, {Purpose::Useful}); // retry the allocation after the GC
    }

    // ---- rt_mkvect / rt_mkstring: length fixnum in r2 -> r1 ----
    auto emitMaker = [&](const std::string &name, TypeId t,
                         unsigned subtype, Reg fillValue) {
        int label = buf.defineSymbol(name);
        int lGc = buf.newLabel(name + "_gc");
        int lFill = buf.newLabel(name + "_fill");
        int lFillEnd = buf.newLabel(name + "_fill_end");

        // Raw length into r23.
        if (scheme.fixnumScale() == 4)
            buf.opImm(Opcode::Srai, abi::scratch, abi::arg0, 2, {Purpose::Useful});
        else
            buf.mov(abi::scratch, abi::arg0, {Purpose::Useful});
        // Length cap: keeps headers unmistakable for the collector
        // (len*8 must stay below the heap base; see syslisp.cc).
        buf.li(abi::trapA, 1 << 18, {Purpose::Useful});
        buf.branch(Opcode::Bge, abi::scratch, abi::trapA,
                   out.labels.error, {Purpose::Useful}, /*hintFall=*/true);
        buf.branch(Opcode::Blt, abi::scratch, abi::zero,
                   out.labels.error, {Purpose::Useful}, /*hintFall=*/true);

        // Allocation size: ((len+1)*4 + 7) & ~7.
        buf.opImm(Opcode::Slli, abi::trapA, abi::scratch, 2, {Purpose::Useful});
        buf.opImm(Opcode::Addi, abi::trapA, abi::trapA, 11, {Purpose::Useful});
        buf.opImm(Opcode::Andi, abi::trapA, abi::trapA, 0xFFFFFFF8u, {Purpose::Useful});
        buf.op3(Opcode::Add, abi::trapB, abi::hp, abi::trapA, {Purpose::Useful});
        buf.branch(Opcode::Bgt, abi::trapB, abi::hl, lGc, {Purpose::Useful},
                   /*hintFall=*/true);

        // Header: (len << 3) | subtype.
        buf.opImm(Opcode::Slli, abi::trapA, abi::scratch, 3, {Purpose::Useful});
        buf.opImm(Opcode::Ori, abi::trapA, abi::trapA, subtype, {Purpose::Useful});
        buf.st(abi::trapA, abi::hp, 0, {Purpose::Useful});

        // Fill elements.
        buf.opImm(Opcode::Addi, abi::trapA, abi::hp, 4, {Purpose::Useful});
        buf.placeLabel(lFill);
        buf.branch(Opcode::Bge, abi::trapA, abi::trapB, lFillEnd, {Purpose::Useful});
        buf.st(fillValue, abi::trapA, 0, {Purpose::Useful});
        buf.opImm(Opcode::Addi, abi::trapA, abi::trapA, 4, {Purpose::Useful});
        buf.jump(lFill, {Purpose::Useful});
        buf.placeLabel(lFillEnd);

        emitTagInsert(buf, scheme, abi::ret, abi::hp, t);
        buf.mov(abi::hp, abi::trapB, {Purpose::Useful});
        buf.jr(abi::link, {Purpose::Useful});

        buf.placeLabel(lGc);
        pushRegs(buf, {abi::link, abi::arg0});
        buf.jal(abi::link, gcFn, {Purpose::Useful});
        popRegs(buf, {abi::link, abi::arg0});
        buf.jump(label, {Purpose::Useful}); // retry
        return label;
    };
    out.labels.mkvect =
        emitMaker("rt_mkvect", TypeId::Vector, SubtVector, abi::nilreg);
    out.labels.mkstring =
        emitMaker("rt_mkstring", TypeId::String, SubtString, abi::zero);

    // ---- generic-arithmetic and comparison slow paths ----
    out.labels.genAdd =
        emitPreservingWrapper(cg, arena, "rt_genadd", "generic-add",
                              CheckCat::Arith);
    out.labels.genSub =
        emitPreservingWrapper(cg, arena, "rt_gensub", "generic-sub",
                              CheckCat::Arith);
    out.labels.genMul =
        emitPreservingWrapper(cg, arena, "rt_genmul", "generic-mul",
                              CheckCat::Arith);
    out.labels.genDiv =
        emitPreservingWrapper(cg, arena, "rt_gendiv", "generic-div",
                              CheckCat::Arith);
    out.labels.genRem =
        emitPreservingWrapper(cg, arena, "rt_genrem", "generic-rem",
                              CheckCat::Arith);
    out.labels.genLess =
        emitPreservingWrapper(cg, arena, "rt_genless", "generic-less",
                              CheckCat::Arith);
    out.labels.genEqn =
        emitPreservingWrapper(cg, arena, "rt_geneqn", "generic-eqn",
                              CheckCat::Arith);

    // ---- hardware generic-arith trap handler (§6.2.2) ----
    {
        out.arithTrap = buf.defineSymbol("rt_arithtrap");
        Annotation ann{Purpose::Dispatch, CheckCat::Arith, true};
        std::vector<Reg> saved = tempRegs();
        saved.push_back(abi::link);
        saved.push_back(abi::trapRet);
        int n = static_cast<int>(saved.size());
        buf.opImm(Opcode::Addi, abi::sp, abi::sp, -4 * n, ann);
        for (int i = 0; i < n; ++i)
            buf.st(saved[i], abi::sp, 4 * (n - 1 - i), ann);

        // Operands were latched by the hardware into r21/r22; the op
        // kind (1=add, 2=sub) is in r23.
        int lSub = buf.newLabel("rt_arithtrap_sub");
        int lJoin = buf.newLabel("rt_arithtrap_join");
        buf.mov(abi::arg0, abi::trapA, ann);
        buf.mov(abi::arg0 + 1, abi::trapB, ann);
        buf.branch(Opcode::Beqi, abi::scratch, 0, lSub, ann);
        buf.entries().back().inst.imm = 2;
        buf.jal(abi::link, cg.functionLabel(arena.sym("generic-add"), 2),
                ann);
        buf.jump(lJoin, ann);
        buf.placeLabel(lSub);
        buf.jal(abi::link, cg.functionLabel(arena.sym("generic-sub"), 2),
                ann);
        buf.placeLabel(lJoin);

        for (int i = 0; i < n; ++i)
            buf.ld(saved[i], abi::sp, 4 * (n - 1 - i), ann);
        buf.opImm(Opcode::Addi, abi::sp, abi::sp, 4 * n, ann);
        // Result is in r1 (the compiler fixes addt/subt rd to r1);
        // resume after the trapping instruction.
        buf.jr(abi::trapRet, ann);
    }

    // ---- rt_apply: fn symbol in r2, argument list in r3 -> r1 ----
    {
        out.labels.apply = buf.defineSymbol("rt_apply");
        pushRegs(buf, {abi::link});
        // Function cell -> r23.
        if (scheme.placement() == TagPlacement::High) {
            buf.op3(Opcode::And, abi::trapB, abi::arg0, abi::maskreg,
                    {Purpose::TagRemove});
            buf.ld(abi::scratch, abi::trapB, symoff::fn, {Purpose::Useful});
        } else {
            buf.ld(abi::scratch, abi::arg0,
                   symoff::fn + scheme.offsetAdjust(TypeId::Symbol), {Purpose::Useful});
        }
        // Walk up to 6 list elements into r2..r7. r21 tracks the list.
        buf.mov(abi::trapA, abi::arg0 + 1, {Purpose::Useful});
        int lCall = buf.newLabel("rt_apply_call");
        for (int i = 0; i < 6; ++i) {
            buf.branch(Opcode::Beq, abi::trapA, abi::nilreg, lCall, {Purpose::Useful});
            if (scheme.placement() == TagPlacement::High) {
                buf.op3(Opcode::And, abi::trapB, abi::trapA, abi::maskreg,
                        {Purpose::TagRemove});
                buf.ld(static_cast<Reg>(abi::arg0 + i), abi::trapB, 0, {Purpose::Useful});
                buf.ld(abi::trapA, abi::trapB, 4, {Purpose::Useful});
            } else {
                int adj = scheme.offsetAdjust(TypeId::Pair);
                buf.mov(abi::trapB, abi::trapA, {Purpose::Useful});
                buf.ld(static_cast<Reg>(abi::arg0 + i), abi::trapB,
                       0 + adj, {Purpose::Useful});
                buf.ld(abi::trapA, abi::trapB, 4 + adj, {Purpose::Useful});
            }
        }
        buf.placeLabel(lCall);
        buf.jalr(abi::link, abi::scratch, {Purpose::Useful});
        popRegs(buf, {abi::scratch});
        buf.jr(abi::scratch, {Purpose::Useful});
    }

    // ---- rt_start: register setup, then main ----
    {
        out.start = buf.defineSymbol("rt_start");
        uint32_t mask = scheme.placement() == TagPlacement::High
            ? maskBits(0, scheme.dataBits())
            : ~maskBits(0, scheme.tagBits());
        buf.li(abi::maskreg, mask, {Purpose::Useful});
        buf.li(abi::nilreg, image.symbolWord("nil"), {Purpose::Useful});
        buf.li(abi::treg, image.symbolWord("t"), {Purpose::Useful});
        buf.li(abi::hp, layout.heapABase, {Purpose::Useful});
        buf.li(abi::hl, layout.heapABase + layout.heapBytes, {Purpose::Useful});
        buf.li(abi::sp, layout.stackTop, {Purpose::Useful});
        buf.li(abi::stkbase, layout.stackTop, {Purpose::Useful});
        buf.jal(abi::link, cg.functionLabel(arena.sym("main"), 0), {Purpose::Useful});
        // main halts; if it ever returns, stop cleanly.
        buf.sys(SysCode::Halt, abi::ret, {Purpose::Useful});
    }
    (void)opts;
    return out;
}

} // namespace mxl
