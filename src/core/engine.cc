#include "core/engine.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "analysis/verify.h"
#include "exec/texec.h"
#include "support/panic.h"

namespace mxl {

namespace {

/**
 * A pristine image is almost entirely zeros (the heap and stack start
 * empty; only the static area is populated), so cached units keep just
 * the prefix up to the last nonzero word.
 */
Memory
trimToLivePrefix(const Memory &full)
{
    uint32_t words = full.size() / 4;
    uint32_t live = words;
    while (live > 0 && full.word(live - 1) == 0)
        --live;
    Memory t(live * 4);
    for (uint32_t i = 0; i < live; ++i)
        t.word(i) = full.word(i);
    return t;
}

/** Rebuild the full-size pristine image from a trimmed cached unit. */
Memory
expandImage(const CompiledUnit &unit)
{
    Memory full(unit.layout.memBytes);
    uint32_t live = unit.memory.size() / 4;
    for (uint32_t i = 0; i < live; ++i)
        full.word(i) = unit.memory.word(i);
    return full;
}

/**
 * The engine whose worker pool is executing the current thread, if any.
 * Set once per worker in workerLoop(); runGrid() consults it to refuse
 * re-entrant grids instead of self-deadlocking.
 */
thread_local const Engine *tlsWorkerOwner = nullptr;

/** Trace track id: 1..N on a worker, 0 on any other thread. */
thread_local int tlsWorkerId = 0;

uint64_t
microsSince(std::chrono::steady_clock::time_point t0)
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
}

} // namespace

Engine::Engine(unsigned threads, size_t cacheCapacity, size_t cacheMaxBytes)
    : threads_(threads != 0 ? threads
                            : std::max(1u, std::thread::hardware_concurrency())),
      cacheCapacity_(std::max<size_t>(1, cacheCapacity)),
      cacheMaxBytes_(cacheMaxBytes)
{
}

Engine::~Engine()
{
    {
        std::lock_guard<std::mutex> lk(poolMu_);
        stopping_ = true;
    }
    poolCv_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

const char *
backendName(Backend b)
{
    switch (b) {
      case Backend::Auto: return "auto";
      case Backend::Interpreter: return "interpreter";
      case Backend::Translated: return "translated";
    }
    return "?";
}

std::string
Engine::cacheKey(const std::string &source, const CompilerOptions &o,
                 Backend backend)
{
    // Fixed field order; every independent variable of the compilation
    // participates. maxCycles is a run parameter, not a compile one.
    // Auto and Translated share the translated-tier entry (both want
    // the translation attached); Interpreter entries skip translation.
    std::string k;
    k += backend == Backend::Interpreter ? "I|" : "T|";
    k += schemeKindName(o.scheme);
    k += '|';
    k += o.checking == Checking::Full ? 'F' : 'O';
    k += static_cast<char>('0' + static_cast<int>(o.arithMode));
    k += o.hw.ignoreTagOnMemory ? '1' : '0';
    k += o.hw.branchOnTag ? '1' : '0';
    k += o.hw.genericArith ? '1' : '0';
    k += static_cast<char>('0' + static_cast<int>(o.hw.checkedMemory));
    k += o.hw.memTagging ? '1' : '0';
    k += o.fillDelaySlots ? '1' : '0';
    k += o.overlapChecks ? '1' : '0';
    k += o.verifyLinked ? '1' : '0';
    k += '|';
    k += std::to_string(o.memBytes);
    k += ',';
    k += std::to_string(o.staticBytes);
    k += ',';
    k += std::to_string(o.heapBytes);
    k += '\n';
    k += source;
    return k;
}

Engine::Compiled
Engine::getOrCompile(const std::string &source, const CompilerOptions &opts,
                     Backend backend, bool *cacheHit)
{
    const std::string key = cacheKey(source, opts, backend);
    std::shared_future<Compiled> fut;
    std::promise<Compiled> prom;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lk(cacheMu_);
        auto it = cache_.find(key);
        if (it != cache_.end()) {
            ++hits_;
            mCacheHits_.inc();
            *cacheHit = true;
            lru_.splice(lru_.begin(), lru_, it->second);
            fut = it->second->future;
        } else {
            ++misses_;
            mCacheMisses_.inc();
            *cacheHit = false;
            owner = true;
            fut = prom.get_future().share();
            lru_.push_front(CacheEntry{key, fut, 0});
            cache_[key] = lru_.begin();
            evictOverLimits();
        }
    }
    if (!owner)
        return fut.get();

    // Compile outside the cache lock; waiters block on the future.
    Compiled c;
    try {
        auto unit = std::make_shared<CompiledUnit>(compileUnit(source, opts));
        if (backend != Backend::Interpreter) {
            // Translated-tier entry: attach the translation (or the
            // refusal note) to the cached compilation. Translation is a
            // single linear pass; it is timed separately so sweeps can
            // see its cost next to engine.compile_micros.
            auto tT0 = std::chrono::steady_clock::now();
            TranslateResult tr = translateUnit(*unit);
            mTranslateMicros_.inc(microsSince(tT0));
            c.trans = std::move(tr.unit);
            c.transNote = std::move(tr.note);
        }
        unit->memory = trimToLivePrefix(unit->memory);
        c.unit = std::move(unit);
    } catch (const MxlError &e) {
        c.status.code = e.kind == MxlError::Kind::Fatal
                            ? RunStatus::Code::CompileError
                            : RunStatus::Code::InternalError;
        c.status.message = e.what();
    } catch (const std::exception &e) {
        c.status.code = RunStatus::Code::InternalError;
        c.status.message = e.what();
    }
    prom.set_value(c);

    // Account the entry's bytes now that the unit's size is known, and
    // re-check the byte bound (the entry may already be evicted).
    if (c.unit) {
        std::lock_guard<std::mutex> lk(cacheMu_);
        auto it = cache_.find(key);
        // bytes == 0 guards the evicted-and-reinserted race: only the
        // first finisher for a key accounts the entry.
        if (it != cache_.end() && it->second->bytes == 0) {
            it->second->bytes = c.unit->memory.size();
            cacheBytes_ += it->second->bytes;
            evictOverLimits();
        }
    }
    return c;
}

void
Engine::evictOverLimits()
{
    // LRU back first; the front (most recent) entry always survives, so
    // a unit larger than the whole byte budget is still cached once.
    while (lru_.size() > 1 &&
           (lru_.size() > cacheCapacity_ ||
            (cacheMaxBytes_ > 0 && cacheBytes_ > cacheMaxBytes_))) {
        cacheBytes_ -= lru_.back().bytes;
        cache_.erase(lru_.back().key);
        lru_.pop_back();
        ++evictions_;
        mCacheEvictions_.inc();
    }
}

Engine::CompileOutcome
Engine::compile(const std::string &source, const CompilerOptions &opts)
{
    CompileOutcome out;
    // Share the translated-tier entry: a later default (Auto) run of
    // the same cell then reuses this compilation.
    Compiled c = getOrCompile(source, opts, Backend::Auto, &out.cacheHit);
    out.unit = c.unit;
    out.status = c.status;
    return out;
}

RunReport
Engine::execute(const RunRequest &req)
{
    RunReport rep;
    rep.label = req.label;
    TraceRecorder *tr = trace();
    const int tid = tlsWorkerId;
    auto t0 = std::chrono::steady_clock::now();
    uint64_t trT0 = tr ? tr->nowMicros() : 0;

    const Backend want = req.exec.backend;
    Compiled c = getOrCompile(req.source, req.opts, want, &rep.cacheHit);
    uint64_t compileUs = microsSince(t0);
    mCompileMicros_.inc(compileUs);
    if (tr && !rep.cacheHit)
        tr->complete("compile", "engine", tid, trT0,
                     tr->nowMicros() - trT0, req.label);
    rep.status = c.status;
    if (c.status.ok()) {
        // Tier selection: a non-Interpreter request runs translated
        // when the unit translated and no hook needs the interpreter's
        // seams. Auto falls back (counted + stamped); an explicit
        // Translated request that cannot be satisfied is an error.
        bool useTrans = false;
        std::string note;
        if (want != Backend::Interpreter) {
            if (req.hooks.needsInterpreter())
                note = "request hooks need the interpreter's seams";
            else if (!c.trans)
                note = c.transNote.empty() ? "translation refused"
                                           : c.transNote;
            else
                useTrans = true;
        }
        rep.backend = useTrans ? Backend::Translated
                               : Backend::Interpreter;
        if (want == Backend::Translated && !useTrans) {
            rep.status.code = RunStatus::Code::InternalError;
            rep.status.message =
                strcat("translated backend unavailable: ", note);
        } else {
            if (want == Backend::Auto && !useTrans) {
                rep.backendFellBack = true;
                rep.backendNote = note;
                mFallbacks_.inc();
            }
            try {
                std::shared_ptr<const CompiledUnit> unit = c.unit;
                if (req.hooks.unitTransform) {
                    unit = req.hooks.unitTransform(unit);
                    if (!unit)
                        fatal("unitTransform returned a null unit");
                    if (req.hooks.verifyTransformed && unit != c.unit) {
                        VerifyResult ver = verifyUnit(*unit);
                        if (!ver.ok())
                            fatal("transformed unit rejected by "
                                  "load-time verifier: ",
                                  ver.render());
                    }
                }
                Memory image = expandImage(*unit);
                if (req.hooks.imageMutator)
                    req.hooks.imageMutator(image, *unit);
                const char *runCat = useTrans ? "engine/translated"
                                              : "engine/interpreter";
                auto tRun = std::chrono::steady_clock::now();
                uint64_t trR0 = tr ? tr->nowMicros() : 0;
                if (useTrans) {
                    TranslatedControls controls;
                    controls.maxCycles = req.exec.maxCycles;
                    controls.deadlineSeconds = req.exec.deadlineSeconds;
                    controls.installTrapHandlers =
                        req.exec.installTrapHandlers;
                    rep.result = runTranslated(*unit, *c.trans,
                                               std::move(image), controls);
                } else {
                    RunControls controls;
                    controls.maxCycles = req.exec.maxCycles;
                    controls.deadlineSeconds = req.exec.deadlineSeconds;
                    controls.installUnitTrapHandlers =
                        req.exec.installTrapHandlers;
                    controls.machineSetup = req.hooks.machineSetup;
                    controls.pauseAtCycle = req.hooks.pauseAtCycle;
                    controls.snapshotHook = req.hooks.snapshotHook;
                    controls.collectProfile = req.hooks.collectProfile;
                    if (tr && req.hooks.snapshotHook) {
                        // Mark the pauseAtCycle pause on this worker's
                        // track.
                        auto inner = req.hooks.snapshotHook;
                        std::string label = req.label;
                        controls.snapshotHook =
                            [tr, tid, inner,
                             label](MachineSnapshot &snap,
                                    const CompiledUnit &unit) {
                                tr->instant("snapshot", "engine", tid,
                                            label);
                                inner(snap, unit);
                            };
                    }
                    rep.result =
                        runUnitOn(*unit, std::move(image), controls);
                }
                mRunMicros_.inc(microsSince(tRun));
                if (tr)
                    tr->complete("run", runCat, tid, trR0,
                                 tr->nowMicros() - trR0, req.label);
                if (rep.result.timedOut) {
                    mTimeouts_.inc();
                    rep.status.code = RunStatus::Code::Timeout;
                    rep.status.message =
                        strcat("deadline of ", req.exec.deadlineSeconds,
                               "s exceeded after ", rep.result.stats.total,
                               " cycles");
                }
            } catch (const MxlError &e) {
                rep.status.code = RunStatus::Code::InternalError;
                rep.status.message = e.what();
            }
        }
    }

    mRuns_.inc();
    mCellMicros_.observe(microsSince(t0));
    rep.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return rep;
}

RunReport
Engine::run(const RunRequest &req)
{
    return execute(req);
}

void
Engine::postFork()
{
    trace_.store(nullptr, std::memory_order_release);
    forked_.store(true, std::memory_order_release);
}

std::vector<RunReport>
Engine::runGrid(const std::vector<RunRequest> &reqs,
                const GridProgress &progress)
{
    if (forked_.load(std::memory_order_acquire)) {
        // Child process after postFork(): the worker threads recorded
        // in workers_ died in the fork, so queueing would hang forever.
        std::vector<RunReport> out(reqs.size());
        for (size_t i = 0; i < reqs.size(); ++i) {
            out[i].label = reqs[i].label;
            out[i].status.code = RunStatus::Code::InternalError;
            out[i].status.message =
                "runGrid() called in a forked child (postFork); only "
                "inline run() is available there";
        }
        return out;
    }
    if (tlsWorkerOwner == this) {
        // Re-entrant call from one of our own workers: blocking on the
        // pool here would deadlock (the calling worker can never drain
        // its own queue). Refuse deterministically instead.
        std::vector<RunReport> out(reqs.size());
        for (size_t i = 0; i < reqs.size(); ++i) {
            out[i].label = reqs[i].label;
            out[i].status.code = RunStatus::Code::InternalError;
            out[i].status.message =
                "runGrid() called from an engine worker thread; "
                "use a separate Engine for nested grids";
        }
        return out;
    }

    ensureWorkers();

    std::vector<std::future<RunReport>> futs;
    futs.reserve(reqs.size());
    {
        std::lock_guard<std::mutex> lk(poolMu_);
        auto enqueued = std::chrono::steady_clock::now();
        for (size_t i = 0; i < reqs.size(); ++i) {
            const RunRequest &req = reqs[i];
            auto task = std::make_shared<std::packaged_task<RunReport()>>(
                [this, req, i, progress, enqueued] {
                    mQueueWait_.observe(microsSince(enqueued));
                    RunReport rep = execute(req);
                    if (progress)
                        progress(i, rep);
                    return rep;
                });
            futs.push_back(task->get_future());
            queue_.push_back([task] { (*task)(); });
        }
    }
    poolCv_.notify_all();

    // Collect in request order: results are deterministic regardless of
    // which worker ran which cell.
    std::vector<RunReport> out;
    out.reserve(reqs.size());
    for (auto &f : futs)
        out.push_back(f.get());
    return out;
}

void
Engine::ensureWorkers()
{
    std::lock_guard<std::mutex> lk(poolMu_);
    if (!workers_.empty() || stopping_)
        return;
    workers_.reserve(threads_);
    for (unsigned i = 0; i < threads_; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

void
Engine::workerLoop(unsigned id)
{
    tlsWorkerOwner = this;
    tlsWorkerId = static_cast<int>(id) + 1;
    Counter &busy =
        metrics_.counter(strcat("engine.worker.", id + 1, ".busy_micros"));
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lk(poolMu_);
            poolCv_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
            if (stopping_ && queue_.empty())
                return;
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        auto t0 = std::chrono::steady_clock::now();
        job();
        busy.inc(microsSince(t0));
    }
}

int
Engine::currentWorkerId()
{
    return tlsWorkerId;
}

Engine::CacheStats
Engine::cacheStats() const
{
    std::lock_guard<std::mutex> lk(cacheMu_);
    CacheStats s;
    s.hits = hits_;
    s.misses = misses_;
    s.entries = cache_.size();
    s.bytes = cacheBytes_;
    s.byteLimit = cacheMaxBytes_;
    s.evictions = evictions_;
    return s;
}

void
Engine::clearCache()
{
    std::lock_guard<std::mutex> lk(cacheMu_);
    cache_.clear();
    lru_.clear();
    cacheBytes_ = 0;
}

Engine &
Engine::defaultEngine()
{
    static Engine engine;
    return engine;
}

} // namespace mxl
