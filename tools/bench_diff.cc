/**
 * @file
 * bench_diff — compare two BENCH_*.json exports cell by cell.
 *
 *     bench_diff [--threshold PCT] BEFORE.json AFTER.json
 *     bench_diff --backends FILE.json
 *     bench_diff --coverage BEFORE.json AFTER.json
 *     bench_diff --latency [--threshold PCT] BEFORE.json AFTER.json
 *     bench_diff --checks [--threshold PCT] BEFORE.json AFTER.json
 *
 * Two-file mode pairs grid cells by label and prints each one's
 * simulated-cycle delta (stats.total — deterministic per commit,
 * unlike wall time), then a verdict against the regression threshold
 * (default 0%: any cycle increase fails). Exit status: 0 when no cell
 * regressed beyond the threshold, 1 when one did, 2 on usage or input
 * errors — so CI can gate on `bench_diff baseline.json current.json`.
 *
 * --backends mode reads ONE export whose grid carries both execution
 * backends (labels ending "/interpreter" and "/translated", as
 * bench_backend and bench_simulator write) and reports each pair's
 * wall-time speedup plus the aggregate. Any pair whose cycle counts
 * diverge between backends fails the diff — wall time may move with
 * the host, but the two backends simulating a different cycle count is
 * an equivalence bug, never noise.
 *
 * --coverage mode compares two BENCH_faults.json exports' detection
 * coverage matrices interval-aware (faults/stats.h): a cell fails only
 * when its after-interval lies entirely below its before-interval — a
 * statistically unambiguous coverage drop, not trial noise — or when
 * its skipped count grew (trials silently stopped running). Coverage
 * and Wilson intervals are recomputed from the raw detected/total
 * counts, so a stale or hand-edited "coverage" field cannot fool the
 * gate.
 *
 * --latency mode compares the measurement service's four latency
 * histograms (serve.admission_wait_micros, serve.queue_micros,
 * serve.exec_micros, serve.e2e_micros) between two BENCH_serve.json
 * exports. p95 and p99 are recomputed nearest-rank from the raw
 * power-of-two bucket counts — a stale or hand-edited "p95" field
 * cannot fool the gate — and a histogram fails when its after
 * percentile exceeds before by more than the threshold percentage
 * (plus a 100µs absolute floor, so a 0µs-vs-3µs admission wait is not
 * a regression). Bucketed percentiles are upper bounds: the gate
 * compares like against like, both sides quantized the same way.
 *
 * --checks mode compares two BENCH_checkelim.json exports from the
 * check-placement ladder (bench/bench_checkelim.cc), pairing cells by
 * program. A cell fails when its verifier-proven check count
 * ("provenChecks") dropped — the placement engine stopped proving
 * guards it used to prove — when the independent verifier stopped
 * accepting its transformed unit, or when its place-rung cycle count
 * ("placeCycles") grew by more than the threshold (default 1%, not the
 * two-file mode's 0%: placement interacts with the scheduler, so a
 * little cycle jitter is expected but a real regression is not).
 *
 * Documents that carry an engine metrics snapshot are also checked for
 * static-verifier regressions: any "mxlint.<unit>.errors" counter that
 * increased (or appeared nonzero) between BEFORE and AFTER fails the
 * diff, independent of the cycle threshold.
 */

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <sys/stat.h>

#include "faults/stats.h"
#include "obs/bench_compare.h"

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: bench_diff [--threshold PCT] BEFORE.json "
                 "AFTER.json\n"
                 "       bench_diff --backends FILE.json\n"
                 "       bench_diff --coverage BEFORE.json AFTER.json\n"
                 "       bench_diff --latency [--threshold PCT] "
                 "BEFORE.json AFTER.json\n"
                 "       bench_diff --checks [--threshold PCT] "
                 "BEFORE.json AFTER.json\n");
    return 2;
}

/**
 * Load one BENCH_*.json artifact, diagnosing each failure mode
 * distinctly: a missing path, a directory (which ifstream happily
 * "opens" and then reads nothing from, turning into a misleading
 * parse error), an empty/truncated file, and malformed JSON. Every
 * caller turns `false` into exit status 2 — in all modes, a bad
 * artifact path must never look like a bench verdict.
 */
bool
loadJson(const std::string &path, mxl::Json *out)
{
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) {
        std::fprintf(stderr, "bench_diff: %s: %s\n", path.c_str(),
                     std::strerror(errno));
        return false;
    }
    if (!S_ISREG(st.st_mode)) {
        std::fprintf(stderr,
                     "bench_diff: %s is not a regular file (expected a "
                     "BENCH_*.json artifact)\n",
                     path.c_str());
        return false;
    }
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "bench_diff: cannot open %s: %s\n",
                     path.c_str(), std::strerror(errno));
        return false;
    }
    std::ostringstream text;
    text << in.rdbuf();
    if (in.bad()) {
        std::fprintf(stderr, "bench_diff: read error on %s\n",
                     path.c_str());
        return false;
    }
    const std::string body = text.str();
    if (body.find_first_not_of(" \t\r\n") == std::string::npos) {
        std::fprintf(stderr,
                     "bench_diff: %s is empty (expected a BENCH_*.json "
                     "artifact — did the bench run finish?)\n",
                     path.c_str());
        return false;
    }
    if (!mxl::Json::parse(body, out)) {
        std::fprintf(stderr,
                     "bench_diff: %s is not valid JSON (truncated or "
                     "not a BENCH_*.json artifact)\n",
                     path.c_str());
        return false;
    }
    return true;
}

/** "mxlint.<unit>.errors" counters from a doc's metrics snapshot. */
std::vector<std::pair<std::string, uint64_t>>
lintErrorCounters(const mxl::Json &doc)
{
    std::vector<std::pair<std::string, uint64_t>> out;
    const mxl::Json *metrics = doc.find("metrics");
    const mxl::Json *counters = metrics ? metrics->find("counters") : nullptr;
    if (!counters || !counters->isObject())
        return out;
    for (size_t i = 0; i < counters->size(); ++i) {
        const auto &[name, value] = counters->entry(i);
        if (name.rfind("mxlint.", 0) == 0 &&
            name.size() > 7 + 7 &&
            name.compare(name.size() - 7, 7, ".errors") == 0)
            out.emplace_back(name, value.asUint());
    }
    return out;
}

/**
 * Flag every mxlint error counter that increased (or appeared nonzero)
 * in @p after. Prints one line per flagged counter; true when any was
 * flagged.
 */
bool
diffLintErrors(const mxl::Json &before, const mxl::Json &after)
{
    const auto b = lintErrorCounters(before);
    const auto a = lintErrorCounters(after);
    auto beforeValue = [&](const std::string &name) -> uint64_t {
        for (const auto &kv : b)
            if (kv.first == name)
                return kv.second;
        return 0;
    };
    bool flagged = false;
    for (const auto &[name, count] : a) {
        const uint64_t was = beforeValue(name);
        if (count > was) {
            std::printf("LINT  %s: %llu -> %llu error(s) — new "
                        "tag-discipline violations\n",
                        name.c_str(),
                        static_cast<unsigned long long>(was),
                        static_cast<unsigned long long>(count));
            flagged = true;
        }
    }
    return flagged;
}

/** One backend-paired cell in --backends mode. */
struct BackendPair
{
    std::string stem;
    uint64_t interpCycles = 0, transCycles = 0;
    double interpWall = 0, transWall = 0;
    bool haveInterp = false, haveTrans = false;
};

/**
 * Pair a single document's "<stem>/interpreter" and "<stem>/translated"
 * cells, print per-pair wall-time speedups, and fail on any cycle
 * divergence or unpaired cell. Exit-status semantics match main().
 */
int
diffBackends(const mxl::Json &doc)
{
    const mxl::Json *grid = doc.find("grid");
    if (!grid)
        grid = doc.find("goldens");
    if (!grid && doc.isArray())
        grid = &doc;
    if (!grid || !grid->isArray()) {
        std::fprintf(stderr, "bench_diff: document has no bench grid\n");
        return 2;
    }

    std::vector<BackendPair> pairs;
    auto pairFor = [&](const std::string &stem) -> BackendPair & {
        for (BackendPair &p : pairs)
            if (p.stem == stem)
                return p;
        pairs.push_back({stem});
        return pairs.back();
    };
    for (size_t i = 0; i < grid->size(); ++i) {
        const mxl::Json &cell = grid->at(i);
        const mxl::Json *label = cell.find("label");
        const mxl::Json *stats = cell.find("stats");
        const mxl::Json *ok = cell.find("statusOk");
        if (!label || !label->isString() || !stats ||
            (ok && !ok->asBool()))
            continue;
        const std::string &l = label->str();
        size_t slash = l.rfind('/');
        if (slash == std::string::npos)
            continue;
        const std::string backend = l.substr(slash + 1);
        if (backend != "interpreter" && backend != "translated")
            continue;
        BackendPair &p = pairFor(l.substr(0, slash));
        const mxl::Json *total = stats->find("total");
        const mxl::Json *wall = cell.find("wallSeconds");
        if (backend == "interpreter") {
            p.haveInterp = true;
            p.interpCycles = total ? total->asUint() : 0;
            p.interpWall = wall ? wall->asReal() : 0;
        } else {
            p.haveTrans = true;
            p.transCycles = total ? total->asUint() : 0;
            p.transWall = wall ? wall->asReal() : 0;
        }
    }
    if (pairs.empty()) {
        std::fprintf(stderr, "bench_diff: no */interpreter or "
                             "*/translated cells in the grid\n");
        return 2;
    }

    bool failed = false;
    double interpSum = 0, transSum = 0;
    for (const BackendPair &p : pairs) {
        if (!p.haveInterp || !p.haveTrans) {
            std::printf("FAIL  %s: only the %s cell is present\n",
                        p.stem.c_str(),
                        p.haveInterp ? "interpreter" : "translated");
            failed = true;
            continue;
        }
        if (p.interpCycles != p.transCycles) {
            std::printf("FAIL  %s: cycle divergence — interpreter %llu, "
                        "translated %llu\n",
                        p.stem.c_str(),
                        static_cast<unsigned long long>(p.interpCycles),
                        static_cast<unsigned long long>(p.transCycles));
            failed = true;
            continue;
        }
        interpSum += p.interpWall;
        transSum += p.transWall;
        std::printf("OK    %-24s %12llu cycles   %8.2fms -> %8.2fms   "
                    "%.2fx\n",
                    p.stem.c_str(),
                    static_cast<unsigned long long>(p.interpCycles),
                    p.interpWall * 1e3, p.transWall * 1e3,
                    p.transWall > 0 ? p.interpWall / p.transWall : 0.0);
    }
    if (transSum > 0)
        std::printf("\naggregate wall-time speedup: %.2fx over %zu "
                    "pair(s)\n",
                    interpSum / transSum, pairs.size());
    std::printf("%s  backend cycle equivalence\n",
                failed ? "FAIL" : "PASS");
    return failed ? 1 : 0;
}

/**
 * --coverage mode: interval-aware detection-coverage gate between two
 * BENCH_faults.json documents. Exit-status semantics match main().
 */
int
diffCoverage(const mxl::Json &before, const mxl::Json &after,
             const std::string &beforePath, const std::string &afterPath)
{
    std::vector<mxl::CoverageCell> b, a;
    std::string err;
    if (!mxl::extractCoverageCells(before, &b, &err)) {
        std::fprintf(stderr, "bench_diff: %s: %s\n", beforePath.c_str(),
                     err.c_str());
        return 2;
    }
    if (!mxl::extractCoverageCells(after, &a, &err)) {
        std::fprintf(stderr, "bench_diff: %s: %s\n", afterPath.c_str(),
                     err.c_str());
        return 2;
    }
    std::string report;
    bool ok = mxl::compareCoverage(b, a, &report);
    std::fputs(report.c_str(), stdout);
    std::printf("\n%s  detection coverage (Wilson 95%% interval gate, "
                "%zu cell(s))\n",
                ok ? "PASS" : "FAIL", b.size());
    return ok ? 0 : 1;
}

/** The service latency histograms --latency gates, in export order. */
const char *const kLatencyHistograms[] = {
    "serve.admission_wait_micros",
    "serve.queue_micros",
    "serve.exec_micros",
    "serve.e2e_micros",
};

/** Regressions smaller than this many microseconds never fail the
 *  gate, whatever the percentage: near-zero baselines would otherwise
 *  flag scheduler noise. */
constexpr uint64_t kLatencyFloorMicros = 100;

/** One parsed service latency histogram: raw bucket counts keyed by
 *  lower bound, plus the exact observed max. */
struct LatencyHist
{
    uint64_t count = 0;
    uint64_t max = 0;
    std::vector<std::pair<uint64_t, uint64_t>> buckets; ///< (lo, n)
};

/**
 * Parse one "histograms" entry. False (with a diagnostic naming the
 * histogram and file) on a malformed entry — a count that is not a
 * number, buckets missing or non-object, a bucket key that is not a
 * decimal lower bound.
 */
bool
parseLatencyHist(const mxl::Json &h, const std::string &name,
                 const std::string &path, LatencyHist *out)
{
    auto malformed = [&](const char *what) {
        std::fprintf(stderr,
                     "bench_diff: %s: histogram '%s' is malformed "
                     "(%s)\n",
                     path.c_str(), name.c_str(), what);
        return false;
    };
    if (!h.isObject())
        return malformed("not an object");
    const mxl::Json *count = h.find("count");
    if (!count || !count->isNumber())
        return malformed("'count' is not a number");
    out->count = count->asUint(0);
    const mxl::Json *max = h.find("max");
    out->max = max && max->isNumber() ? max->asUint(0) : 0;
    const mxl::Json *buckets = h.find("buckets");
    if (!buckets || !buckets->isObject())
        return malformed("'buckets' is not an object");
    for (size_t i = 0; i < buckets->size(); ++i) {
        const auto &[lo, n] = buckets->entry(i);
        char *end = nullptr;
        uint64_t loVal = std::strtoull(lo.c_str(), &end, 10);
        if (lo.empty() || !end || *end != '\0')
            return malformed("bucket key is not a decimal lower bound");
        if (!n.isNumber())
            return malformed("bucket count is not a number");
        out->buckets.emplace_back(loVal, n.asUint(0));
    }
    std::sort(out->buckets.begin(), out->buckets.end());
    return true;
}

/**
 * Nearest-rank percentile recomputed from the raw buckets, matching
 * Histogram::percentile: the answer is the covering bucket's upper
 * bound (lo == 0 ? 0 : 2*lo - 1), clamped to the observed max.
 */
uint64_t
latencyPercentile(const LatencyHist &h, double p)
{
    if (h.count == 0)
        return 0;
    uint64_t rank =
        static_cast<uint64_t>(std::ceil(p * static_cast<double>(h.count)));
    if (rank < 1)
        rank = 1;
    if (rank > h.count)
        rank = h.count;
    uint64_t seen = 0;
    for (const auto &[lo, n] : h.buckets) {
        seen += n;
        if (seen >= rank) {
            uint64_t hi = lo == 0 ? 0
                          : lo > (~uint64_t{0} - 1) / 2
                              ? ~uint64_t{0}
                              : 2 * lo - 1;
            return h.max > 0 && hi > h.max ? h.max : hi;
        }
    }
    return h.max;
}

/**
 * --latency mode: p95/p99 regression gate over the service latency
 * histograms. Exit-status semantics match main(): 0 pass, 1 when a
 * percentile regressed beyond the threshold, 2 when either document
 * carries no service latency histograms or one is malformed.
 */
int
diffLatency(const mxl::Json &before, const mxl::Json &after,
            const std::string &beforePath, const std::string &afterPath,
            double thresholdPct)
{
    auto extract = [](const mxl::Json &doc, const std::string &path,
                      std::vector<std::pair<std::string, LatencyHist>> *out)
        -> int {
        const mxl::Json *metrics = doc.find("metrics");
        const mxl::Json *hists =
            metrics ? metrics->find("histograms") : nullptr;
        if (!hists || !hists->isObject()) {
            std::fprintf(stderr,
                         "bench_diff: %s has no service latency "
                         "histograms (expected metrics.histograms in a "
                         "BENCH_serve.json export)\n",
                         path.c_str());
            return 2;
        }
        for (const char *name : kLatencyHistograms) {
            const mxl::Json *h = hists->find(name);
            if (!h)
                continue;
            LatencyHist parsed;
            if (!parseLatencyHist(*h, name, path, &parsed))
                return 2;
            out->emplace_back(name, std::move(parsed));
        }
        if (out->empty()) {
            std::fprintf(stderr,
                         "bench_diff: %s has no service latency "
                         "histograms (none of the serve.*_micros "
                         "histograms present)\n",
                         path.c_str());
            return 2;
        }
        return 0;
    };
    std::vector<std::pair<std::string, LatencyHist>> b, a;
    if (int rc = extract(before, beforePath, &b))
        return rc;
    if (int rc = extract(after, afterPath, &a))
        return rc;
    auto beforeHist = [&](const std::string &name) -> const LatencyHist * {
        for (const auto &kv : b)
            if (kv.first == name)
                return &kv.second;
        return nullptr;
    };

    bool failed = false;
    for (const auto &[name, ah] : a) {
        const LatencyHist *bh = beforeHist(name);
        if (!bh) {
            std::printf("NEW   %-28s (no before data; not gated)\n",
                        name.c_str());
            continue;
        }
        for (double p : {0.95, 0.99}) {
            uint64_t was = latencyPercentile(*bh, p);
            uint64_t now = latencyPercentile(ah, p);
            double limit = static_cast<double>(was) *
                           (1.0 + thresholdPct / 100.0);
            bool regressed =
                static_cast<double>(now) > limit &&
                now > was + kLatencyFloorMicros;
            double pctDelta =
                was > 0 ? (static_cast<double>(now) /
                               static_cast<double>(was) -
                           1.0) * 100.0
                        : 0.0;
            std::printf("%s  %-28s p%-2d %10lluus -> %10lluus "
                        "(%+.1f%%)\n",
                        regressed ? "FAIL" : "OK  ", name.c_str(),
                        static_cast<int>(p * 100),
                        static_cast<unsigned long long>(was),
                        static_cast<unsigned long long>(now), pctDelta);
            failed = failed || regressed;
        }
    }
    std::printf("%s  service latency (p95/p99 gate, threshold %.1f%%, "
                "floor %lluus)\n",
                failed ? "FAIL" : "PASS", thresholdPct,
                static_cast<unsigned long long>(kLatencyFloorMicros));
    return failed ? 1 : 0;
}

/** One check-placement cell parsed from a BENCH_checkelim.json grid. */
struct CheckCell
{
    std::string name;
    uint64_t proven = 0;      ///< verifier-proven guarded accesses
    uint64_t placeCycles = 0; ///< place-rung simulated cycles
    bool verifierAccepts = true;
};

/**
 * Extract the check-placement cells of @p doc (cells carrying a
 * "provenChecks" field). False with a diagnostic when the document has
 * no grid or no such cell — a BENCH_*.json from another bench must
 * exit 2, not pass an empty gate.
 */
bool
extractCheckCells(const mxl::Json &doc, const std::string &path,
                  std::vector<CheckCell> *out)
{
    const mxl::Json *grid = doc.find("grid");
    if (!grid && doc.isArray())
        grid = &doc;
    if (!grid || !grid->isArray()) {
        std::fprintf(stderr, "bench_diff: %s has no bench grid\n",
                     path.c_str());
        return false;
    }
    for (size_t i = 0; i < grid->size(); ++i) {
        const mxl::Json &cell = grid->at(i);
        const mxl::Json *proven = cell.find("provenChecks");
        if (!proven || !proven->isNumber())
            continue;
        CheckCell c;
        const mxl::Json *name = cell.find("program");
        if (!name)
            name = cell.find("label");
        if (!name || !name->isString())
            continue;
        c.name = name->str();
        c.proven = proven->asUint();
        const mxl::Json *cycles = cell.find("placeCycles");
        if (!cycles) {
            const mxl::Json *stats = cell.find("stats");
            cycles = stats ? stats->find("total") : nullptr;
        }
        c.placeCycles = cycles && cycles->isNumber() ? cycles->asUint() : 0;
        const mxl::Json *ver = cell.find("verifierAccepts");
        c.verifierAccepts = !ver || ver->asBool();
        out->push_back(std::move(c));
    }
    if (out->empty()) {
        std::fprintf(stderr,
                     "bench_diff: %s has no check-placement cells "
                     "(expected provenChecks in a BENCH_checkelim.json "
                     "export)\n",
                     path.c_str());
        return false;
    }
    return true;
}

/**
 * --checks mode: proven-check and place-cycle regression gate between
 * two BENCH_checkelim.json documents. Exit-status semantics match
 * main(): 0 pass, 1 when a program lost proven checks, lost verifier
 * acceptance, or grew its place cycles beyond the threshold, 2 on a
 * document without check-placement cells.
 */
int
diffChecks(const mxl::Json &before, const mxl::Json &after,
           const std::string &beforePath, const std::string &afterPath,
           double thresholdPct)
{
    std::vector<CheckCell> b, a;
    if (!extractCheckCells(before, beforePath, &b) ||
        !extractCheckCells(after, afterPath, &a))
        return 2;
    auto beforeCell = [&](const std::string &name) -> const CheckCell * {
        for (const CheckCell &c : b)
            if (c.name == name)
                return &c;
        return nullptr;
    };

    bool failed = false;
    for (const CheckCell &ac : a) {
        const CheckCell *bc = beforeCell(ac.name);
        if (!bc) {
            std::printf("NEW   %-10s %6llu proven (no before data; not "
                        "gated)\n",
                        ac.name.c_str(),
                        static_cast<unsigned long long>(ac.proven));
            continue;
        }
        bool bad = false;
        std::string why;
        if (!ac.verifierAccepts) {
            bad = true;
            why = "verifier no longer accepts the transformed unit";
        } else if (ac.proven < bc->proven) {
            bad = true;
            why = "proven-check regression";
        }
        const double limit = static_cast<double>(bc->placeCycles) *
                             (1.0 + thresholdPct / 100.0);
        const double cyclePct =
            bc->placeCycles
                ? (static_cast<double>(ac.placeCycles) /
                       static_cast<double>(bc->placeCycles) -
                   1.0) * 100.0
                : 0.0;
        if (!bad && bc->placeCycles > 0 &&
            static_cast<double>(ac.placeCycles) > limit) {
            bad = true;
            why = "place-cycle regression";
        }
        std::printf("%s  %-10s proven %4llu -> %4llu   cycles %10llu -> "
                    "%10llu (%+.2f%%)%s%s\n",
                    bad ? "FAIL" : "OK  ", ac.name.c_str(),
                    static_cast<unsigned long long>(bc->proven),
                    static_cast<unsigned long long>(ac.proven),
                    static_cast<unsigned long long>(bc->placeCycles),
                    static_cast<unsigned long long>(ac.placeCycles),
                    cyclePct, bad ? " — " : "", why.c_str());
        failed = failed || bad;
    }
    std::printf("%s  check placement (proven-check + cycle gate, "
                "threshold %.1f%%)\n",
                failed ? "FAIL" : "PASS", thresholdPct);
    return failed ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    double thresholdPct = 0.0;
    bool thresholdSet = false;
    bool backendsMode = false;
    bool coverageMode = false;
    bool latencyMode = false;
    bool checksMode = false;
    std::string paths[2];
    int nPaths = 0;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--backends") {
            backendsMode = true;
        } else if (arg == "--coverage") {
            coverageMode = true;
        } else if (arg == "--latency") {
            latencyMode = true;
        } else if (arg == "--checks") {
            checksMode = true;
        } else if (arg == "--threshold") {
            if (++i >= argc)
                return usage();
            char *end = nullptr;
            thresholdPct = std::strtod(argv[i], &end);
            if (!end || *end != '\0')
                return usage();
            thresholdSet = true;
        } else if (nPaths < 2) {
            paths[nPaths++] = arg;
        } else {
            return usage();
        }
    }
    if (backendsMode) {
        if (nPaths != 1 || coverageMode || latencyMode || checksMode)
            return usage();
        mxl::Json doc;
        if (!loadJson(paths[0], &doc))
            return 2;
        return diffBackends(doc);
    }
    if (nPaths != 2 ||
        (coverageMode + latencyMode + checksMode) > 1)
        return usage();
    if (coverageMode) {
        mxl::Json before, after;
        if (!loadJson(paths[0], &before) || !loadJson(paths[1], &after))
            return 2;
        return diffCoverage(before, after, paths[0], paths[1]);
    }
    if (latencyMode) {
        mxl::Json before, after;
        if (!loadJson(paths[0], &before) || !loadJson(paths[1], &after))
            return 2;
        return diffLatency(before, after, paths[0], paths[1],
                           thresholdPct);
    }
    if (checksMode) {
        mxl::Json before, after;
        if (!loadJson(paths[0], &before) || !loadJson(paths[1], &after))
            return 2;
        // Placement interacts with the delay-slot scheduler, so the
        // check gate tolerates 1% cycle jitter unless told otherwise.
        return diffChecks(before, after, paths[0], paths[1],
                          thresholdSet ? thresholdPct : 1.0);
    }

    mxl::Json before, after;
    if (!loadJson(paths[0], &before) || !loadJson(paths[1], &after))
        return 2;
    std::vector<mxl::BenchDelta> probe;
    if (!mxl::extractBenchCells(before, &probe)) {
        std::fprintf(stderr, "bench_diff: %s has no bench grid\n",
                     paths[0].c_str());
        return 2;
    }
    probe.clear();
    if (!mxl::extractBenchCells(after, &probe)) {
        std::fprintf(stderr, "bench_diff: %s has no bench grid\n",
                     paths[1].c_str());
        return 2;
    }

    mxl::BenchComparison cmp = mxl::compareBenchJson(before, after);
    bool failed = false;
    std::fputs(mxl::renderComparison(cmp, thresholdPct, &failed).c_str(),
               stdout);
    if (diffLintErrors(before, after))
        failed = true;
    return failed ? 1 : 0;
}
