#include "programs/programs.h"

namespace mxl {

/*
 * boyer: "a rewrite-rule-based simplifier combined with a dumb
 * tautology-checker" (Gabriel). This is the classic algorithm —
 * lemmas on property lists, bottom-up rewriting driven by one-way
 * unification, if-normalization, and the assumption-list tautology
 * checker — with a reduced lemma set and test term so a simulated run
 * stays in the millions of cycles.
 */
const std::string &
progBoyer()
{
    static const std::string src = R"lisp(
;; -- one-way unification ----------------------------------------------
;; Pattern atoms are variables (classic Boyer convention).

(de one-way-unify (term pat)
  (setq *unify-subst* nil)
  (one-way-unify1 term pat))

(de one-way-unify1 (term pat)
  (cond ((atom pat)
         (let ((b (assq pat *unify-subst*)))
           (cond (b (equal term (cdr b)))
                 (t (progn
                      (setq *unify-subst*
                            (cons (cons pat term) *unify-subst*))
                      t)))))
        ((atom term) nil)
        ((eq (car term) (car pat))
         (one-way-unify-lst (cdr term) (cdr pat)))
        (t nil)))

(de one-way-unify-lst (terms pats)
  (cond ((null pats) (null terms))
        ((null terms) nil)
        ((one-way-unify1 (car terms) (car pats))
         (one-way-unify-lst (cdr terms) (cdr pats)))
        (t nil)))

(de apply-subst (alist term)
  (cond ((atom term)
         (let ((b (assq term alist)))
           (if b (cdr b) term)))
        (t (cons (car term) (apply-subst-lst alist (cdr term))))))

(de apply-subst-lst (alist terms)
  (if (null terms)
      nil
      (cons (apply-subst alist (car terms))
            (apply-subst-lst alist (cdr terms)))))

;; -- rewriting ----------------------------------------------------------

(de rewrite (term)
  (cond ((atom term) term)
        (t (rewrite-with-lemmas
            (cons (car term) (rewrite-args (cdr term)))
            (get (car term) 'lemmas)))))

(de rewrite-args (terms)
  (if (null terms)
      nil
      (cons (rewrite (car terms)) (rewrite-args (cdr terms)))))

(de rewrite-with-lemmas (term lemmas)
  (cond ((null lemmas) term)
        ((one-way-unify term (cadr (car lemmas)))
         (rewrite (apply-subst *unify-subst* (caddr (car lemmas)))))
        (t (rewrite-with-lemmas term (cdr lemmas)))))

;; -- tautology checking ---------------------------------------------------

(de truep (x lst) (or (equal x '(t)) (member x lst)))
(de falsep (x lst) (or (equal x '(f)) (member x lst)))

(de tautologyp (x true-lst false-lst)
  (cond ((truep x true-lst) t)
        ((falsep x false-lst) nil)
        ((atom x) nil)
        ((eq (car x) 'if)
         (cond ((truep (cadr x) true-lst)
                (tautologyp (caddr x) true-lst false-lst))
               ((falsep (cadr x) false-lst)
                (tautologyp (cadddr x) true-lst false-lst))
               (t (and (tautologyp (caddr x)
                                   (cons (cadr x) true-lst)
                                   false-lst)
                       (tautologyp (cadddr x)
                                   true-lst
                                   (cons (cadr x) false-lst))))))
        (t nil)))

(de tautp (x) (tautologyp (rewrite x) nil nil))

;; -- lemma database ---------------------------------------------------------

(de add-lemma (lemma)
  ;; lemma = (equal lhs rhs); indexed under the lhs head symbol
  (let ((head (car (cadr lemma))))
    (put head 'lemmas (cons lemma (get head 'lemmas)))))

(de boyer-setup ()
  (put 'and 'lemmas nil) (put 'or 'lemmas nil) (put 'not 'lemmas nil)
  (put 'implies 'lemmas nil) (put 'plus 'lemmas nil)
  (put 'times 'lemmas nil) (put 'append 'lemmas nil)
  (put 'reverse 'lemmas nil) (put 'difference 'lemmas nil)
  (put 'equal 'lemmas nil) (put 'remainder 'lemmas nil)
  (put 'if 'lemmas nil)
  ;; if-distribution: flattens composite tests so the tautology
  ;; checker's membership assumptions see atomic tests (this is what
  ;; makes the classic instance come out true).
  (add-lemma '(equal (if (if a b c) d e)
                     (if a (if b d e) (if c d e))))
  (add-lemma '(equal (and p q) (if p (if q (t) (f)) (f))))
  (add-lemma '(equal (or p q) (if p (t) (if q (t) (f)))))
  (add-lemma '(equal (not p) (if p (f) (t))))
  (add-lemma '(equal (implies p q) (if p (if q (t) (f)) (t))))
  (add-lemma '(equal (plus (plus x y) z) (plus x (plus y z))))
  (add-lemma '(equal (equal (plus a b) (zero))
                     (and (equal a (zero)) (equal b (zero)))))
  (add-lemma '(equal (equal (plus a b) (plus a c)) (equal b c)))
  (add-lemma '(equal (difference x x) (zero)))
  (add-lemma '(equal (equal (difference x y) (difference z y))
                     (equal x z)))
  (add-lemma '(equal (append (append x y) z) (append x (append y z))))
  (add-lemma '(equal (reverse (append a b))
                     (append (reverse b) (reverse a))))
  (add-lemma '(equal (times x (plus y z))
                     (plus (times x y) (times x z))))
  (add-lemma '(equal (times (times x y) z) (times x (times y z))))
  (add-lemma '(equal (equal (times x y) (zero))
                     (or (equal x (zero)) (equal y (zero)))))
  (add-lemma '(equal (remainder x x) (zero)))
  (add-lemma '(equal (remainder (times x y) x) (zero))))

;; -- the classic test instance -----------------------------------------------

(de boyer-subst ()
  '((x . (f (plus (plus a b) (plus c (zero)))))
    (y . (f (times (times a b) (plus c d))))
    (z . (equal (plus a b) (difference x y)))
    (w . (lessp (remainder a b) (enumerate a (length b))))))

(de boyer-term ()
  '(implies (and (implies x y)
                 (and (implies y z) (implies z w)))
            (implies x w)))

(de boyer-main (rounds)
  (boyer-setup)
  (let ((term (apply-subst (boyer-subst) (boyer-term)))
        (result t))
    (while (greaterp rounds 0)
      (setq result (and result (tautp term)))
      (setq rounds (sub1 rounds)))
    (print result)
    (print (length (rewrite term)))
    (print (rewrite '(equal (plus (plus a b) (zero))
                            (difference q q))))))
)lisp";
    return src;
}

} // namespace mxl
