/**
 * @file
 * The engine metrics registry: named counters, gauges, and histograms
 * that are safe to bump from every worker of Engine::runGrid.
 *
 * Design constraints, in order:
 *  - the hot path (Counter::inc on a resolved handle) must be one
 *    relaxed atomic add — workers bump cache and utilization counters
 *    once per grid cell, and the registry must stay invisible in the
 *    simulation rate and clean under -DMXL_SANITIZE=thread;
 *  - handles are stable: counter()/gauge()/histogram() return
 *    references that live as long as the registry, so callers resolve
 *    a name once (registry lookup takes the registry mutex) and bump
 *    lock-free afterwards;
 *  - snapshots are deterministic: snapshot() serializes every metric
 *    through support/json.h with names in sorted order, so equal
 *    metric populations produce byte-identical JSON.
 *
 * Histograms use power-of-two buckets (bucket i counts values v with
 * bit_width(v) == i, i.e. 0, 1, 2-3, 4-7, ...): coarse, but cheap
 * enough for the hot path and sufficient for latency distributions
 * whose interesting structure spans decades (queue waits from
 * microseconds to seconds).
 */

#ifndef MXLISP_OBS_METRICS_H_
#define MXLISP_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "support/json.h"

namespace mxl {

/** Monotonic event count. */
class Counter
{
  public:
    void
    inc(uint64_t n = 1)
    {
        v_.fetch_add(n, std::memory_order_relaxed);
    }

    uint64_t value() const { return v_.load(std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> v_{0};
};

/** Point-in-time signed value (e.g. queue depth). */
class Gauge
{
  public:
    void set(int64_t v) { v_.store(v, std::memory_order_relaxed); }

    void
    add(int64_t d)
    {
        v_.fetch_add(d, std::memory_order_relaxed);
    }

    int64_t value() const { return v_.load(std::memory_order_relaxed); }

  private:
    std::atomic<int64_t> v_{0};
};

/** Power-of-two-bucketed distribution of uint64 observations. */
class Histogram
{
  public:
    /** Bucket i counts observations whose bit width is i (0..64). */
    static constexpr int kBuckets = 65;

    void observe(uint64_t v);

    uint64_t count() const { return count_.load(std::memory_order_relaxed); }
    uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
    uint64_t max() const { return max_.load(std::memory_order_relaxed); }
    double mean() const;

    uint64_t
    bucket(int i) const
    {
        return buckets_[i].load(std::memory_order_relaxed);
    }

    /**
     * Nearest-rank percentile over the power-of-two buckets: the
     * value returned is the UPPER bound of the bucket holding the
     * ceil(p * count)-th smallest observation, clamped to the exact
     * observed max — an upper-bound estimate (within 2x of the true
     * rank value) that never understates a latency. @p p is in
     * [0, 1]; an empty histogram reports 0.
     */
    uint64_t percentile(double p) const;

    /** {count, sum, max, mean, p50, p95, p99,
     *  buckets:{"<lo>": n, ...}} with empty buckets omitted; bucket
     *  keys are the range's lower bound. */
    Json toJson() const;

    /**
     * Fold a relayed delta (the count/sum/max/buckets shape toJson
     * emits, with counts as increments and max absolute) into this
     * histogram. Missing fields are treated as zero; unknown bucket
     * keys are ignored. Safe against concurrent observe().
     */
    void mergeDelta(const Json &delta);

  private:
    std::atomic<uint64_t> count_{0};
    std::atomic<uint64_t> sum_{0};
    std::atomic<uint64_t> max_{0};
    std::atomic<uint64_t> buckets_[kBuckets] = {};
};

/**
 * A named family of metrics. Lookup registers on first use; the
 * returned reference stays valid for the registry's lifetime. A name
 * identifies exactly one kind — asking for an existing name as a
 * different kind panics (it is a bug, not a runtime condition).
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    /**
     * Serialize every registered metric:
     * {"counters":{...},"gauges":{...},"histograms":{...}}, names
     * sorted. Concurrent bumps during a snapshot are safe (each value
     * is read atomically); the snapshot is a consistent-enough view
     * for reporting, not a linearizable cut.
     */
    Json snapshot() const;

    /**
     * snapshot() serialized to its compact single-line JSON text —
     * the health endpoint's wire payload (serve/server.h). Sorted
     * metric names plus support/json's insertion-ordered objects make
     * the text deterministic: equal metric populations produce
     * byte-identical strings, and the text reparses to a Json that
     * re-dumps identically (round-trip tested in tests/test_obs.cc).
     */
    std::string snapshotJson() const { return snapshot().dump(); }

    /**
     * The change since @p *baseline (a prior snapshot(); pass an
     * empty/null Json for "everything"), in snapshot() shape:
     * counters and histogram buckets/count/sum carry *increments*,
     * gauges and histogram max carry current absolutes. Entries that
     * did not change are omitted. @p *baseline is advanced to the
     * current snapshot, so successive calls relay disjoint deltas —
     * the worker side of the fork-boundary metrics relay
     * (serve/pool.h): each result batch carries only what happened
     * since the previous one.
     */
    Json deltaJson(Json *baseline) const;

    /**
     * Fold a deltaJson() document into this registry: counters are
     * incremented, gauges set, histograms accumulated via
     * Histogram::mergeDelta. Registers names on first sight; a name
     * already registered as a different kind panics (same contract as
     * direct lookup). Merging is associative across delta groupings
     * and merging an empty delta is the identity, so relays can be
     * batched or replayed in any grouping that preserves per-source
     * order (tests/test_obs.cc).
     */
    void merge(const Json &delta);

  private:
    enum class Kind { Counter, Gauge, Histogram };

    struct Entry
    {
        Kind kind;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    Entry &resolve(const std::string &name, Kind kind);

    mutable std::mutex mu_;
    std::map<std::string, Entry> metrics_; ///< sorted => snapshot order
};

} // namespace mxl

#endif // MXLISP_OBS_METRICS_H_
